package masc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"masc/internal/adjoint"
	"masc/internal/runstate"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// Re-exported journal errors and knobs.
var (
	// ErrNewtonBudget is wrapped into run errors when
	// SimOptions.NewtonBudget expires inside one integration step.
	ErrNewtonBudget = transient.ErrNewtonBudget
	// ErrFetchStalled is wrapped into run errors when
	// SimOptions.FetchStallTimeout expires waiting for one Jacobian fetch.
	ErrFetchStalled = adjoint.ErrFetchStalled
)

// DefaultJournalFsyncEvery is the default journal fsync cadence
// (checkpoints per fsync); see SimOptions.JournalFsyncEvery.
const DefaultJournalFsyncEvery = runstate.DefaultFsyncEvery

// CircuitHash fingerprints an assembled circuit for journal validation:
// FNV-1a over the unknown count and names, the G and C sparsity patterns,
// and every adjustable parameter's name and current value. Resume refuses a
// journal whose recorded hash differs — resuming against a circuit with so
// much as one nudged parameter would silently produce sensitivities of a
// hybrid run that never existed.
func CircuitHash(ckt *Circuit) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(ckt.N))
	for _, n := range ckt.Names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	pat := func(p *sparse.Pattern) {
		u64(uint64(p.NNZ()))
		for _, v := range p.RowPtr {
			u64(uint64(uint32(v)))
		}
		for _, v := range p.ColIdx {
			u64(uint64(uint32(v)))
		}
	}
	pat(ckt.GPat)
	pat(ckt.CPat)
	pars := ckt.Params()
	u64(uint64(len(pars)))
	for i := range pars {
		h.Write([]byte(pars[i].Name))
		h.Write([]byte{0})
		u64(math.Float64bits(pars[i].Get()))
	}
	return h.Sum64()
}

// journalConfig freezes the resolved plan into the journal's config record:
// everything a resumed run must replay identically, including the
// NumCPU-derived window count and anchor cadence.
func (plan *runPlan) journalConfig(ckt *Circuit, opt *SimOptions) *runstate.Config {
	t := &plan.topt
	params := plan.params
	if params == nil {
		params = make([]int, len(ckt.Params()))
		for i := range params {
			params[i] = i
		}
	}
	objs := make([]runstate.ObjectiveRec, len(plan.objectives))
	for i, o := range plan.objectives {
		objs[i] = runstate.ObjectiveRec{Name: o.Name, Node: o.Node,
			Weight: o.Weight, Step: o.Step, Integral: o.Integral}
	}
	return &runstate.Config{
		CircuitHash: CircuitHash(ckt),
		N:           ckt.N,

		Storage:         string(plan.storage),
		Workers:         plan.workers,
		AdjointWorkers:  opt.AdjointWorkers,
		Windows:         plan.windows,
		AnchorEvery:     plan.anchorEvery,
		Async:           opt.Async,
		PipelineDepth:   opt.PipelineDepth,
		DiskBytesPerSec: opt.DiskBytesPerSec,
		DiskDir:         opt.DiskDir,
		MemBudgetBytes:  opt.MemBudgetBytes,
		DisableDegrade:  opt.DisableDegrade,

		TStart:    t.TStart,
		TStep:     t.TStep,
		TStop:     t.TStop,
		MaxNewton: t.MaxNewton,
		AbsTol:    t.AbsTol,
		RelTol:    t.RelTol,
		Gmin:      t.Gmin,
		MaxCuts:   t.MaxCuts,
		DampLimit: t.DampLimit,
		Method:    string(t.Method),
		Adaptive:  t.Adaptive,
		MinStep:   t.MinStep,
		MaxStep:   t.MaxStep,
		LTETol:    t.LTETol,

		Objectives: objs,
		Params:     params,

		FsyncEvery: opt.JournalFsyncEvery,
	}
}

// trajectoryFromSteps rebuilds the forward trajectory prefix a journal's
// checkpoints describe. The states are the journaled bit images, so the
// recompute source re-derives the exact Jacobians the crashed run captured.
func trajectoryFromSteps(steps []runstate.StepRec, method Method) *TransientResult {
	tr := &transient.Result{
		Method: method,
		Times:  make([]float64, len(steps)),
		Hs:     make([]float64, len(steps)),
		States: make([][]float64, len(steps)),
	}
	for i := range steps {
		tr.Times[i] = steps[i].T
		tr.Hs[i] = steps[i].H
		tr.States[i] = steps[i].X
	}
	return tr
}

// Resume continues a journaled run after a crash, kill, or deadline: it
// recovers the journal's trusted prefix (truncating any torn tail),
// revalidates it against ckt, rebuilds the Jacobian store from the
// checkpointed trajectory, re-enters the forward loop after the last
// checkpoint, and replays completed adjoint windows instead of re-sweeping
// them. The resumed run appends to the same journal, so it is itself
// resumable; a journal ending in a done record returns the finished
// sensitivities without replaying anything (Run.Tran is nil in that case).
//
// The run's shape — storage strategy, window count, solver knobs,
// objectives, parameter selection — comes from the journal, not from opt;
// opt contributes only the runtime-side knobs (Obs, Fault, Ctx, Deadline,
// NewtonBudget, FetchStallTimeout, CollectCodecStats). Sensitivities of a
// killed-and-resumed run are bit-identical to an uninterrupted one.
func Resume(ckt *Circuit, journalPath string, opt SimOptions) (*Run, error) {
	rcv, err := runstate.Recover(journalPath)
	if err != nil {
		return nil, err
	}
	cfg := &rcv.Config
	if want := CircuitHash(ckt); cfg.CircuitHash != want {
		return nil, fmt.Errorf("masc: journal %s records circuit hash %#x, this circuit hashes to %#x: refusing to resume against a different circuit",
			journalPath, cfg.CircuitHash, want)
	}
	objectives := make([]Objective, len(cfg.Objectives))
	for i, o := range cfg.Objectives {
		objectives[i] = Objective{Name: o.Name, Node: o.Node,
			Weight: o.Weight, Step: o.Step, Integral: o.Integral}
	}
	if rcv.Done != nil {
		return &Run{
			Storage: Storage(cfg.Storage),
			Sens: &SensitivityResult{DOdp: rcv.Done.DOdp, Params: cfg.Params,
				DegradedSteps: rcv.Done.Degraded},
		}, nil
	}

	plan := &runPlan{
		topt: TransientOptions{
			TStart:    cfg.TStart,
			TStep:     cfg.TStep,
			TStop:     cfg.TStop,
			MaxNewton: cfg.MaxNewton,
			AbsTol:    cfg.AbsTol,
			RelTol:    cfg.RelTol,
			Gmin:      cfg.Gmin,
			MaxCuts:   cfg.MaxCuts,
			DampLimit: cfg.DampLimit,
			Method:    Method(cfg.Method),
			Adaptive:  cfg.Adaptive,
			MinStep:   cfg.MinStep,
			MaxStep:   cfg.MaxStep,
			LTETol:    cfg.LTETol,
		},
		storage:     Storage(cfg.Storage),
		workers:     cfg.Workers,
		windows:     cfg.Windows,
		anchorEvery: cfg.AnchorEvery,
		objectives:  objectives,
		params:      cfg.Params,
	}
	if opt.NewtonBudget > 0 {
		plan.topt.NewtonBudget = opt.NewtonBudget
	}
	// The journaled shape wins; only runtime-side knobs survive from the
	// caller's options.
	ropt := SimOptions{
		Storage:           plan.storage,
		Workers:           cfg.Workers,
		AdjointWorkers:    cfg.AdjointWorkers,
		AdjointWindows:    cfg.Windows,
		Async:             cfg.Async,
		PipelineDepth:     cfg.PipelineDepth,
		DiskBytesPerSec:   cfg.DiskBytesPerSec,
		DiskDir:           cfg.DiskDir,
		MemBudgetBytes:    cfg.MemBudgetBytes,
		DisableDegrade:    cfg.DisableDegrade,
		JournalFsyncEvery: cfg.FsyncEvery,
		Journal:           journalPath,

		Obs:               opt.Obs,
		Fault:             opt.Fault,
		Ctx:               opt.Ctx,
		Deadline:          opt.Deadline,
		NewtonBudget:      opt.NewtonBudget,
		FetchStallTimeout: opt.FetchStallTimeout,
		CollectCodecStats: opt.CollectCodecStats,
	}
	jw, err := runstate.Append(journalPath, rcv.Offset, cfg)
	if err != nil {
		return nil, err
	}
	return plan.execute(ckt, &ropt, jw, rcv)
}
