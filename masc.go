// Package masc is a memory-efficient adjoint transient sensitivity engine
// for circuit simulation, reproducing "MASC: A Memory-Efficient Adjoint
// Sensitivity Analysis through Compression Using Novel Spatiotemporal
// Prediction" (DAC 2024).
//
// The package bundles a complete SPICE-like substrate — netlist parsing,
// MNA assembly with R/C/L/V/I/diode/BJT/MOSFET models, sparse LU, backward
// Euler transient analysis — with discrete adjoint sensitivity analysis
// whose per-timestep Jacobian tensor is retained through one of four
// storage strategies: recomputation (the Xyce-style baseline), raw memory,
// bandwidth-modelled disk spill, or MASC's lossless spatiotemporally
// predicted in-memory compression.
//
// Quick start:
//
//	b := masc.NewBuilder()
//	b.AddVSource("vin", "in", "0", masc.Sin{VA: 1, Freq: 1e3})
//	b.AddResistor("r1", "in", "out", 1e3)
//	b.AddCapacitor("c1", "out", "0", 1e-6)
//	ckt, _ := b.Build()
//	out, _ := b.NodeIndex("out")
//	run, _ := masc.Simulate(ckt, masc.SimOptions{
//		TStep: 2e-6, TStop: 1e-3, Storage: masc.StorageMASC,
//	}, []masc.Objective{{Name: "v(out)", Node: out, Weight: 1}}, nil)
//	fmt.Println(run.Sens.DOdp)
package masc

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/circuit"
	"masc/internal/compress"
	"masc/internal/compress/gzipz"
	"masc/internal/compress/masczip"
	"masc/internal/compress/spicemate"
	"masc/internal/device"
	"masc/internal/faultinject"
	"masc/internal/jactensor"
	"masc/internal/netlist"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/runstate"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Circuit is an assembled circuit ready for analysis.
	Circuit = circuit.Circuit
	// Builder constructs circuits from named nodes.
	Builder = circuit.Builder
	// Objective selects a final-state voltage objective for sensitivity.
	Objective = adjoint.Objective
	// TransientOptions configures the forward analysis.
	TransientOptions = transient.Options
	// TransientResult is the forward trajectory.
	TransientResult = transient.Result
	// SensitivityResult holds dO/dp for every objective × parameter.
	SensitivityResult = adjoint.Result
	// TensorStats describes the Jacobian store footprint and time costs.
	TensorStats = jactensor.Stats
	// Deck is a parsed netlist.
	Deck = netlist.Deck
	// PrintVar is one .print output column of a parsed netlist.
	PrintVar = netlist.PrintVar

	// Waveform source shapes.
	Waveform = device.Waveform
	DC       = device.DC
	Sin      = device.Sin
	Pulse    = device.Pulse
	PWL      = device.PWL

	// Method selects the integration scheme of the forward analysis.
	Method = transient.Method

	// Observer bundles the optional telemetry sinks (metrics + trace).
	Observer = obs.Observer
	// Registry is a concurrent metrics registry with Prometheus and
	// expvar rendering.
	Registry = obs.Registry
	// Tracer writes the per-timestep JSONL event trace.
	Tracer = obs.Tracer
	// Manifest is the run-manifest document written by -manifest.
	Manifest = obs.Manifest
	// MetricsServer is the HTTP endpoint serving /metrics and pprof.
	MetricsServer = obs.Server
	// CodecStats is the predictor-selection statistics of one masczip
	// encoder (J or C), available via SimOptions.CollectCodecStats.
	CodecStats = masczip.Stats
	// CodecTrial is one candidate's scorecard from the "auto" storage
	// selection trial (Run.CodecTrials).
	CodecTrial = compress.TrialResult

	// SpanRecorder is the bounded in-memory recorder of hierarchical run
	// spans (Observer.Spans). Nil recorders are inert everywhere.
	SpanRecorder = span.Recorder
	// SpanRecord is one completed span as stored in the recorder's ring.
	SpanRecord = span.Record
	// SpanID identifies a span; 0 means "no parent" (the run root's parent).
	SpanID = span.ID
	// Broadcaster fans live telemetry out to /events SSE subscribers
	// (Observer.Events).
	Broadcaster = obs.Broadcaster

	// FaultInjector deterministically corrupts blobs and fails I/O for
	// robustness testing (SimOptions.Fault). A nil injector is inert.
	FaultInjector = faultinject.Injector
	// FaultProfile configures what a FaultInjector breaks and how often.
	FaultProfile = faultinject.Profile
)

// NewFaultInjector builds a deterministic fault injector from a profile.
func NewFaultInjector(p FaultProfile) *FaultInjector { return faultinject.New(p) }

// ErrInterrupted is wrapped into Simulate/RunTransient errors when
// TransientOptions.Stop requested a halt (e.g. on SIGINT).
var ErrInterrupted = transient.ErrInterrupted

// Integration schemes (set SimOptions.Transient.Method).
const (
	MethodBE   = transient.MethodBE
	MethodTrap = transient.MethodTrap
)

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return circuit.NewBuilder() }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// OpenTrace opens (truncating) a JSONL trace file.
func OpenTrace(path string) (*Tracer, error) { return obs.OpenTrace(path) }

// NewManifest starts a run manifest for the named tool.
func NewManifest(tool string) *Manifest { return obs.NewManifest(tool) }

// ServeMetrics starts an HTTP listener on addr exposing /metrics
// (Prometheus text format), /debug/vars (expvar) and /debug/pprof.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}

// DefaultSpanCapacity is the span ring size NewSpanRecorder callers
// typically want (large enough for every span of a mid-sized run).
const DefaultSpanCapacity = span.DefaultCapacity

// NewSpanRecorder returns a span recorder with a bounded ring of capacity
// records (<=0 picks DefaultSpanCapacity). Assign it to Observer.Spans.
func NewSpanRecorder(capacity int) *SpanRecorder { return span.NewRecorder(capacity) }

// NewBroadcaster returns an SSE broadcaster for Observer.Events.
func NewBroadcaster() *Broadcaster { return obs.NewBroadcaster() }

// ServeObserver is ServeMetrics plus the observer's span and event
// endpoints: /debug/spans (JSONL, ?format=chrome for a Perfetto-loadable
// trace) and /events (SSE) when the observer carries them.
func ServeObserver(addr string, ob *Observer) (*MetricsServer, error) {
	return obs.ServeObserver(addr, ob)
}

// WriteSpanJSONL writes one JSON object per span record.
func WriteSpanJSONL(w io.Writer, recs []SpanRecord) error { return span.WriteJSONL(w, recs) }

// WriteChromeTrace writes the records as a Chrome trace-event JSON
// document loadable in Perfetto / chrome://tracing.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error { return span.WriteChromeTrace(w, recs) }

// AppendSpanJSON appends r's JSON encoding to dst (allocation-free given
// capacity); the same encoding WriteSpanJSONL uses per line.
func AppendSpanJSON(dst []byte, r *SpanRecord) []byte { return span.AppendJSON(dst, r) }

// ParseNetlist parses a SPICE-subset netlist.
func ParseNetlist(r io.Reader) (*Deck, error) { return netlist.Parse(r) }

// Storage selects how the Jacobian tensor of the forward run is retained
// for the reverse (adjoint) pass.
type Storage string

const (
	// StorageRecompute re-evaluates Jacobians during the reverse pass
	// (the paper's Xyce baseline: no memory, maximum time).
	StorageRecompute Storage = "recompute"
	// StorageMemory keeps raw tensors in RAM (fast, huge footprint).
	StorageMemory Storage = "memory"
	// StorageDisk spills raw tensors to a bandwidth-modelled disk.
	StorageDisk Storage = "disk"
	// StorageMASC keeps MASC-compressed tensors in RAM (best-fit mode).
	StorageMASC Storage = "masc"
	// StorageMASCMarkov is MASC with the Markov model selector.
	StorageMASCMarkov Storage = "masc+markov"
	// StorageAuto trials the codec menu (masc, masc+markov, gzip,
	// spicemate) on the first captured steps, scores each candidate on
	// bytes saved per second of compression, and commits the run to the
	// best lossless codec (ties fall back to masc). The committed blob
	// stream is byte-identical to a run that had selected that codec from
	// step 0, so sensitivities stay bit-exact. Under MemBudgetBytes the
	// tiered store takes over with the MASC codec and the trial is inert.
	StorageAuto Storage = "auto"
)

// SimOptions configures Simulate.
type SimOptions struct {
	// TStep and TStop define the fixed-step time axis (required).
	TStep, TStop float64
	// Storage selects the Jacobian strategy; default StorageMASC.
	Storage Storage
	// Workers bounds the parallel compressor (default 1).
	Workers int
	// AdjointWorkers bounds the reverse sweep's parallelism: values > 1
	// shard the parameter-gradient loop and the per-objective RHS builds
	// across that many workers and overlap Jacobian fetches with the
	// adjoint compute. 0 and 1 both mean fully serial. Sensitivities are
	// bit-identical for every value.
	AdjointWorkers int
	// AdjointWindows splits the reverse sweep in time: W > 1 runs W
	// window-local reverse sweeps concurrently, seeded at the window
	// boundaries (parallel-in-time, on top of AdjointWorkers' within-step
	// parallelism). -1 picks W automatically from the machine width and
	// the step count. 0 and 1 both mean one sweep. For the MASC storage
	// strategies the forward pass then retains one uncompressed anchor
	// frame per window boundary (restarting the prediction chain there),
	// which adds W-1 frames of resident memory. Sensitivities are
	// bit-identical for every value, including degraded runs.
	AdjointWindows int
	// Async pipelines the compressed store: compression runs on a
	// background worker so the transient loop proceeds to step t+1 while
	// step t-1 compresses, and the reverse sweep prefetches the next step
	// during each adjoint solve. Only meaningful for the MASC storage
	// strategies. The stored bytes are byte-identical to sync mode.
	Async bool
	// PipelineDepth bounds how many timesteps the solver may run ahead of
	// the async compressor (default 2). Larger depths hide longer
	// compression bursts at the cost of more resident plaintext copies.
	PipelineDepth int
	// DiskBytesPerSec models the spill-device bandwidth for StorageDisk;
	// 0 means unthrottled. DiskDir defaults to the system temp directory.
	DiskBytesPerSec float64
	DiskDir         string
	// MemBudgetBytes caps the Jacobian store's modelled resident bytes
	// ("finish this sweep in 256 MB"). A positive budget replaces the
	// in-RAM storage strategies (memory, masc, masc+markov, auto) with a
	// tiered
	// store that places each step across hot RAM → compressed RAM → disk
	// spill → deliberate drop-and-recompute, scheduled by a cost model fed
	// with timings measured from the first steps of the run. The selected
	// strategy still picks the codecs (masc+markov enables the Markov
	// selector; memory and masc use the default MASC codec). Every tier is
	// lossless, so sensitivities stay bit-identical to the unlimited-RAM
	// run for any budget, workers, and windows; the budget only trades
	// memory for time. DiskDir/DiskBytesPerSec configure the spill rung.
	// 0 (default) disables tiering; StorageRecompute and StorageDisk
	// ignore the budget (their footprint is already step-count-free).
	// Async and CollectCodecStats are inert under a budget.
	MemBudgetBytes int64
	// Transient exposes the remaining solver knobs; TStep/TStop above
	// override its time axis when set.
	Transient TransientOptions
	// Obs, if non-nil, receives telemetry from every pipeline stage:
	// metric updates into Obs.Reg and per-timestep events into Obs.Trace.
	// A nil Obs (or nil fields) costs nothing on the hot paths.
	Obs *Observer
	// CollectCodecStats enables the masczip encoder-side predictor
	// statistics (Run.CodecStatsJ/C); MASC storage strategies only.
	// Adds one branch plus a few counter increments per element.
	CollectCodecStats bool
	// Fault, if non-nil, wires a deterministic fault injector into the
	// selected storage backend: blob bit rot, spill I/O errors, pipeline
	// worker panics. Testing/chaos use only; nil costs nothing.
	Fault *FaultInjector
	// DisableDegrade turns off the reverse sweep's recompute-on-corruption
	// fallback: a corrupt blob then fails the run instead of degrading.
	DisableDegrade bool
	// Ctx, if non-nil, cancels the run cooperatively: the forward loop and
	// the reverse sweep poll it at step boundaries, and the disk-backed
	// stores' I/O retry sleeps abort on it. The run returns the context's
	// error (wrapped); the forward phase additionally wraps ErrInterrupted.
	Ctx context.Context
	// Deadline, if positive, bounds the whole run's wall time (forward +
	// adjoint + store I/O) by layering a timeout context over Ctx. A run
	// past its deadline fails with context.DeadlineExceeded — and, when
	// journaled, resumes from where it stopped.
	Deadline time.Duration
	// NewtonBudget, if positive, bounds the wall time one integration step
	// may burn in failed Newton attempts before the run aborts with
	// transient.ErrNewtonBudget (see TransientOptions.NewtonBudget).
	NewtonBudget time.Duration
	// FetchStallTimeout, if positive, bounds how long the adjoint sweep
	// waits for one Jacobian fetch before aborting with
	// adjoint.ErrFetchStalled instead of hanging on a wedged read.
	FetchStallTimeout time.Duration
	// Journal, if non-empty, write-ahead journals the run to this path: the
	// resolved configuration, a checkpoint per accepted forward step, and
	// the adjoint engine's per-window progress, fsync'd on a bounded
	// cadence. A run killed at any instant resumes via masc.Resume with
	// bit-identical sensitivities. Journaling pins
	// TransientOptions.FreshFactorPerStep so checkpoints fully determine
	// the solver's downstream trajectory.
	Journal string
	// JournalFsyncEvery overrides the journal fsync cadence (checkpoints
	// per fsync; default runstate.DefaultFsyncEvery). Phase boundaries
	// always fsync. Smaller values shrink the crash window at the cost of
	// forward throughput.
	JournalFsyncEvery int
}

// Run bundles everything a sensitivity simulation produces.
type Run struct {
	Tran        *TransientResult
	Sens        *SensitivityResult
	TensorStats TensorStats
	Storage     Storage
	// CodecStatsJ/C are the predictor-selection statistics of the J and C
	// encoders; valid only when HasCodecStats (MASC storage with
	// SimOptions.CollectCodecStats set).
	CodecStatsJ, CodecStatsC CodecStats
	HasCodecStats            bool
	// SelectedCodec names the codec the "auto" storage committed the run
	// to; empty for every other storage strategy (and for budget-tiered
	// auto runs, where the trial is inert). CodecTrials holds the
	// per-candidate scorecards behind the selection.
	SelectedCodec string
	CodecTrials   []CodecTrial
}

// runPlan is the fully resolved shape of one simulation: the merged solver
// options plus the storage and parallelism choices Simulate derives from
// SimOptions (some of which depend on runtime.NumCPU). Resolving the plan
// once — and journaling the resolved values — is what lets Resume replay an
// identical shape on a different machine.
type runPlan struct {
	topt        TransientOptions
	storage     Storage
	workers     int
	windows     int
	anchorEvery int
	objectives  []Objective
	params      []int
}

// newRunPlan resolves opt into a concrete plan.
func newRunPlan(opt *SimOptions, objectives []Objective, params []int) (*runPlan, error) {
	if len(objectives) == 0 {
		return nil, fmt.Errorf("masc: at least one objective is required")
	}
	topt := opt.Transient
	if opt.TStep != 0 {
		topt.TStep = opt.TStep
	}
	if opt.TStop != 0 {
		topt.TStop = opt.TStop
	}
	if opt.NewtonBudget > 0 {
		topt.NewtonBudget = opt.NewtonBudget
	}
	storage := opt.Storage
	if storage == "" {
		storage = StorageMASC
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	windows := resolveAdjointWindows(opt.AdjointWindows, topt.EstimatedSteps())
	anchorEvery := 0
	if windows > 1 {
		// Pin ~W anchor steps so window boundaries land on self-contained
		// frames the reverse sweeps restart from (and, under a budget,
		// frames the scheduler demotes last and never drops).
		if est := topt.EstimatedSteps(); est > 0 {
			anchorEvery = est / windows
			if anchorEvery < 1 {
				anchorEvery = 1
			}
		}
	}
	return &runPlan{topt: topt, storage: storage, workers: workers, windows: windows,
		anchorEvery: anchorEvery, objectives: objectives, params: params}, nil
}

// Simulate runs the full MASC pipeline on ckt: forward transient analysis
// with Jacobian capture under the selected storage strategy, then the
// reverse adjoint sweep for the given objectives. params selects parameter
// indices from ckt.Params(); nil means all parameters.
func Simulate(ckt *Circuit, opt SimOptions, objectives []Objective, params []int) (*Run, error) {
	plan, err := newRunPlan(&opt, objectives, params)
	if err != nil {
		return nil, err
	}
	var jw *runstate.Writer
	if opt.Journal != "" {
		jw, err = runstate.Create(opt.Journal, plan.journalConfig(ckt, &opt))
		if err != nil {
			return nil, err
		}
	}
	return plan.execute(ckt, &opt, jw, nil)
}

// execute runs a resolved plan. jw, if non-nil, receives the write-ahead
// journal records; rec, if non-nil, is recovered journal state to resume
// from (the store is re-seeded from its checkpoints, the forward loop
// re-enters after the last one, and completed adjoint windows are replayed
// instead of re-swept).
func (plan *runPlan) execute(ckt *Circuit, opt *SimOptions, jw *runstate.Writer, rcv *runstate.Recovered) (*Run, error) {
	topt := plan.topt
	storage, workers, windows := plan.storage, plan.workers, plan.windows
	objectives, params := plan.objectives, plan.params

	// One context governs the forward loop, the reverse sweep, and the
	// disk-backed stores' retry sleeps.
	ctx := opt.Ctx
	if opt.Deadline > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, opt.Deadline)
		defer cancel()
	}
	topt.Ctx = ctx

	// The re-derivation gmin must match the forward solver's effective
	// value or recomputed step-0 Jacobians diverge from captured ones.
	gmin := topt.Gmin
	if gmin == 0 {
		gmin = 1e-12
	}

	// The run root span: every forward/adjoint/store span of this simulation
	// nests under it. Inert (zero span, ID 0) without a recorder.
	rec := opt.Obs.SpanRecorder()
	rsp := rec.Start(0, span.Run, -1)
	rsp.Attr("workers", int64(workers))
	rsp.Attr("windows", int64(windows))
	defer rsp.End()

	var store jactensor.Store
	var tiered *jactensor.TieredStore
	if opt.MemBudgetBytes > 0 {
		switch storage {
		case StorageMemory, StorageMASC, StorageMASCMarkov, StorageAuto:
			// Under a budget the tiered store owns residency policy, so the
			// auto trial is inert (like Async/CollectCodecStats) and the
			// codec is the best-fit MASC pair.
			mo := masczip.Options{Markov: storage == StorageMASCMarkov, Workers: workers}
			jc, cc := masczip.New(ckt.JPat, mo), masczip.New(ckt.CPat, mo)
			tiered = jactensor.NewTieredStore(jc, cc, jactensor.TieredConfig{
				BudgetBytes:     opt.MemBudgetBytes,
				DiskDir:         opt.DiskDir,
				DiskBytesPerSec: opt.DiskBytesPerSec,
			})
			if plan.anchorEvery > 0 {
				tiered.SetAnchorEvery(plan.anchorEvery)
			}
			// The solver's per-step wall time is the cost model's
			// recompute-price proxy, sampled from the first steps on.
			prevCost := topt.StepCost
			topt.StepCost = func(step int, d time.Duration) {
				if prevCost != nil {
					prevCost(step, d)
				}
				tiered.ObserveStepCost(d)
			}
			store = tiered
		}
	}
	switch {
	case store != nil:
		// Tiered store already built above.
	case storage == StorageRecompute:
		store = nil
	case storage == StorageMemory:
		store = jactensor.NewMemStore()
	case storage == StorageDisk:
		ds, err := jactensor.NewDiskStore(opt.DiskDir, opt.DiskBytesPerSec)
		if err != nil {
			return nil, err
		}
		store = ds
	case storage == StorageMASC || storage == StorageMASCMarkov:
		mo := masczip.Options{
			Markov:       storage == StorageMASCMarkov,
			Workers:      workers,
			CollectStats: opt.CollectCodecStats,
		}
		jc, cc := masczip.New(ckt.JPat, mo), masczip.New(ckt.CPat, mo)
		var cs *jactensor.CompressedStore
		if opt.Async {
			cs = jactensor.NewCompressedStoreAsync(jc, cc, ckt.JPat, ckt.CPat, opt.PipelineDepth)
		} else {
			cs = jactensor.NewCompressedStore(jc, cc, ckt.JPat, ckt.CPat)
		}
		if plan.anchorEvery > 0 {
			// Cut the prediction chain so every window boundary lands on a
			// self-contained anchor frame the reverse sweeps can restart
			// from. ~W anchors across the estimated trajectory.
			cs.SetAnchorEvery(plan.anchorEvery)
		}
		store = cs
	case storage == StorageAuto:
		// Adaptive codec selection: trial the menu on the first captured
		// steps, commit to the best lossless codec by bytes saved per second.
		// The MASC pairs are listed first so "nothing is measurably better"
		// falls back to masczip; spicemate is lossy and therefore trialed for
		// telemetry only, never committed.
		mascPair := func(markov bool) func() (compress.Compressor, compress.Compressor) {
			return func() (compress.Compressor, compress.Compressor) {
				mo := masczip.Options{
					Markov:       markov,
					Workers:      workers,
					CollectStats: opt.CollectCodecStats,
				}
				return masczip.New(ckt.JPat, mo), masczip.New(ckt.CPat, mo)
			}
		}
		as, err := jactensor.NewAutoStore(jactensor.AutoConfig{
			Candidates: []jactensor.AutoCandidate{
				{Name: string(StorageMASC), New: mascPair(false)},
				{Name: string(StorageMASCMarkov), New: mascPair(true)},
				{Name: "gzip", New: func() (compress.Compressor, compress.Compressor) {
					return gzipz.New(), gzipz.New()
				}},
				{Name: "spicemate", New: func() (compress.Compressor, compress.Compressor) {
					return spicemate.New(), spicemate.New()
				}},
			},
			Async:         opt.Async,
			PipelineDepth: opt.PipelineDepth,
			JPat:          ckt.JPat,
			CPat:          ckt.CPat,
		})
		if err != nil {
			return nil, err
		}
		if plan.anchorEvery > 0 {
			as.SetAnchorEvery(plan.anchorEvery)
		}
		store = as
	default:
		return nil, fmt.Errorf("masc: unknown storage strategy %q", storage)
	}

	if store != nil && opt.Obs != nil {
		if so, ok := store.(interface{ SetObserver(*obs.Observer) }); ok {
			so.SetObserver(opt.Obs)
		}
		if ss, ok := store.(interface{ SetSpanScope(span.ID) }); ok {
			// Fallback parent for store-side spans emitted outside any
			// forward step scope (EndForward, adjoint-phase promotes).
			ss.SetSpanScope(rsp.ID())
		}
	}
	if store != nil && opt.Fault != nil {
		if sf, ok := store.(interface{ SetFault(*faultinject.Injector) }); ok {
			sf.SetFault(opt.Fault)
		}
	}
	if store != nil && ctx != nil {
		if sc, ok := store.(interface{ SetContext(context.Context) }); ok {
			sc.SetContext(ctx)
		}
	}
	if jw != nil && store != nil {
		// Spill blobs a durable checkpoint logically covers must reach
		// stable storage before the checkpoint record does.
		if sy, ok := store.(interface{ SyncSpill() error }); ok {
			jw.SetPreSync(sy.SyncSpill)
		}
	}
	topt.Obs = opt.Obs
	topt.SpanParent = rsp.ID()

	if store != nil {
		prev := topt.Capture
		topt.Capture = func(step int, tm float64, x []float64, J, C *sparse.Matrix) error {
			if prev != nil {
				if err := prev(step, tm, x, J, C); err != nil {
					return err
				}
			}
			if err := store.Put(step, J.Val, C.Val); err != nil {
				return fmt.Errorf("masc: tensor capture: %w", err)
			}
			return nil
		}
	}

	// fail syncs and closes everything on an error path; the journal stays a
	// valid, resumable prefix of the work accepted so far. The journal closes
	// first: its final sync runs the spill pre-sync hook, which needs the
	// store still open.
	fail := func(err error) (*Run, error) {
		if jw != nil {
			jw.Close()
		}
		if store != nil {
			store.Close() // shuts down any async pipeline worker
		}
		return nil, err
	}

	if jw != nil {
		// Checkpoint every accepted step. FreshFactorPerStep pins the LU
		// pivot discipline so a checkpoint fully determines the resumed
		// solver's downstream trajectory.
		topt.FreshFactorPerStep = true
		prevAfter := topt.AfterStep
		topt.AfterStep = func(step int, t, h, nextH float64, cuts int, x []float64) error {
			if prevAfter != nil {
				if err := prevAfter(step, t, h, nextH, cuts, x); err != nil {
					return err
				}
			}
			return jw.AppendStep(&runstate.StepRec{Step: step, T: t, H: h,
				NextH: nextH, Cuts: cuts, X: x})
		}
	}

	// Resume seeding: re-derive the journaled prefix's Jacobians into the
	// fresh store (bit-exact, via the recompute source), then either
	// re-enter the forward loop after the last checkpoint or, when the
	// forward phase already completed, skip it entirely.
	var tr *transient.Result
	if rcv != nil && len(rcv.Steps) > 0 {
		method := topt.Method
		if method == "" {
			method = MethodBE
		}
		seeded := trajectoryFromSteps(rcv.Steps, method)
		if store != nil {
			rs := adjoint.NewRecomputeSource(ckt, seeded)
			rs.SetGmin(gmin)
			for i := range rcv.Steps {
				jv, cv, err := rs.Fetch(i)
				if err != nil {
					return fail(fmt.Errorf("masc: resume: re-derive step %d: %w", i, err))
				}
				if err := store.Put(i, jv, cv); err != nil {
					return fail(fmt.Errorf("masc: resume: re-seed step %d: %w", i, err))
				}
			}
		}
		if rcv.ForwardDone {
			tr = seeded
		} else {
			last := rcv.LastStep()
			topt.Resume = &transient.ResumeState{Times: seeded.Times, Hs: seeded.Hs,
				States: seeded.States, NextH: last.NextH, Cuts: last.Cuts}
		}
	}

	if tr == nil {
		fresh, err := transient.Run(ckt, topt)
		if err != nil {
			return fail(err)
		}
		tr = fresh
		if jw != nil {
			if err := jw.ForwardDone(tr.Steps()); err != nil {
				return fail(err)
			}
		}
	}
	run := &Run{Tran: tr, Storage: storage}
	if tiered != nil {
		// The trajectory now exists: give the tiered store the bit-exact
		// recompute path for deliberately dropped steps — the same
		// re-derivation the degradation ladder uses for corruption, but
		// wired inside the store so planned drops never count as degraded.
		rs := adjoint.NewRecomputeSource(ckt, tr)
		rs.SetGmin(gmin)
		tiered.SetRecompute(rs.Fetch)
	}

	var src adjoint.JacobianSource
	if store != nil {
		if err := store.EndForward(); err != nil {
			return fail(err)
		}
		src = store
	} else {
		rs := adjoint.NewRecomputeSource(ckt, tr)
		rs.SetGmin(gmin)
		src = rs
	}
	aopt := adjoint.Options{Params: params, Obs: opt.Obs, DisableDegrade: opt.DisableDegrade,
		Workers: opt.AdjointWorkers, Windows: windows, SpanParent: rsp.ID(),
		Ctx: ctx, FetchStallTimeout: opt.FetchStallTimeout}
	if jw != nil && windows > 1 {
		rowLen := len(objectives) * paramCount(ckt, params)
		aopt.WindowDone = func(j, lo, hi int, rows [][]float64, degraded []int) error {
			return jw.WindowDone(&runstate.WindowRec{J: j, Lo: lo, Hi: hi,
				RowLen: rowLen, Rows: rows, Degraded: degraded})
		}
	}
	if rcv != nil && len(rcv.Windows) > 0 {
		aopt.Completed = make(map[int]*adjoint.WindowProgress, len(rcv.Windows))
		for j, wr := range rcv.Windows {
			aopt.Completed[j] = &adjoint.WindowProgress{Lo: wr.Lo, Hi: wr.Hi,
				Rows: wr.Rows, Degraded: wr.Degraded}
		}
	}
	sens, err := adjoint.Sensitivities(ckt, tr, src, objectives, aopt)
	if err != nil {
		return fail(err)
	}
	run.Sens = sens
	if jw != nil {
		if err := jw.Done(sens.DOdp, sens.DegradedSteps); err != nil {
			return fail(err)
		}
		if opt.Obs != nil {
			reg := opt.Obs.Registry()
			reg.Gauge("masc_journal_fsync_seconds",
				"Cumulative wall time spent in run-journal fsyncs.").Set(jw.FsyncTime().Seconds())
			reg.Counter("masc_journal_fsyncs_total",
				"Run-journal fsyncs performed.").Add(float64(jw.Fsyncs()))
		}
	}
	if store != nil {
		run.TensorStats = store.Stats()
		if as, ok := store.(*jactensor.AutoStore); ok {
			if name, trials, ok := as.Selected(); ok {
				run.SelectedCodec, run.CodecTrials = name, trials
			}
		}
		if cs, ok := store.(interface {
			PredictorStats() (masczip.Stats, masczip.Stats, bool)
		}); ok {
			if j, c, ok := cs.PredictorStats(); ok {
				run.CodecStatsJ, run.CodecStatsC = j, c
				run.HasCodecStats = true
				if opt.Obs != nil {
					jactensor.PublishCodecStats(opt.Obs.Registry(), "j", j)
					jactensor.PublishCodecStats(opt.Obs.Registry(), "c", c)
				}
			}
		}
	}
	// Journal before store: the journal's closing sync drives the spill
	// pre-sync hook, which needs the store still open.
	if jw != nil {
		if err := jw.Close(); err != nil {
			if store != nil {
				store.Close()
			}
			return nil, err
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// paramCount resolves the effective parameter count of a params selection.
func paramCount(ckt *Circuit, params []int) int {
	if params == nil {
		return len(ckt.Params())
	}
	return len(params)
}

// resolveAdjointWindows maps the SimOptions.AdjointWindows knob to a
// concrete window count: -1 = auto (one window per CPU, but at least ~8
// steps per window so seeding overhead cannot dominate), 0/1 = one sweep.
func resolveAdjointWindows(w, estSteps int) int {
	if w >= 0 {
		return w
	}
	aw := runtime.NumCPU()
	if max := estSteps / 8; aw > max {
		aw = max
	}
	if aw < 1 {
		aw = 1
	}
	return aw
}

// ParseByteSize parses a human byte-size string for SimOptions.
// MemBudgetBytes / masc -mem-budget: a non-negative number with an optional
// K/M/G/T suffix (binary multiples; "KiB"/"MB" spellings and lower case
// accepted, so "256M", "256MiB" and "268435456" all work). 0 means
// unlimited.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("masc: empty byte size")
	}
	mult := int64(1)
	t = strings.TrimSuffix(t, "B")
	t = strings.TrimSuffix(t, "I")
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, t[:len(t)-1]
	case strings.HasSuffix(t, "T"):
		mult, t = 1<<40, t[:len(t)-1]
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("masc: bad byte size %q", s)
	}
	return int64(n * float64(mult)), nil
}

// RunTransient runs only the forward analysis.
func RunTransient(ckt *Circuit, opt TransientOptions) (*TransientResult, error) {
	return transient.Run(ckt, opt)
}

// DirectSensitivities runs the forward (direct) sensitivity method — the
// O(#params) baseline the adjoint method replaces.
func DirectSensitivities(ckt *Circuit, tr *TransientResult, objectives []Objective, params []int) (*SensitivityResult, error) {
	return adjoint.DirectSensitivities(ckt, tr, objectives, adjoint.Options{Params: params})
}
