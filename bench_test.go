package masc

// One testing.B benchmark per table and figure of the paper. These run the
// same experiment code as cmd/masc-bench at a reduced scale so that
// `go test -bench=. -benchmem` finishes in minutes; run
// `masc-bench -experiment all -scale 1` for the full-size numbers recorded
// in EXPERIMENTS.md.

import (
	"testing"

	"masc/internal/bench"
	"masc/internal/workload"
)

// benchScale trades fidelity for wall time in the -bench=. run.
const benchScale = 0.12

func BenchmarkTable1SensVsTran(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1([]string{"CHIP_01", "ram2k", "RC_02"}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("row count")
		}
	}
}

func BenchmarkFig1MemoryCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig1(nil, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2GzipBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2([]string{"add20", "MOS_T5"}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 measures every codec on one captured tensor; each codec
// gets a sub-benchmark so -bench output carries per-codec ns and MB/s.
func BenchmarkTable3(b *testing.B) {
	ds, err := workload.Build("add20", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := bench.CaptureTensor(ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, codec := range bench.CodecNames() {
		codec := codec
		b.Run(codec, func(b *testing.B) {
			b.SetBytes(tn.RawBytes())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pair, err := bench.NewCodecPair(codec, tn, 1, false)
				if err != nil {
					b.Fatal(err)
				}
				r, err := bench.MeasureCodec(pair, tn)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(r.CR, "CR")
				}
			}
		})
	}
}

func BenchmarkFig5b6Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFig5b6([]string{"add20"}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 runs the end-to-end strategies as sub-benchmarks.
func BenchmarkFig7(b *testing.B) {
	ds, err := workload.Build("add20", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	node := ds.Objectives[0]
	for _, storage := range []Storage{StorageRecompute, StorageDisk, StorageMASCMarkov} {
		storage := storage
		b.Run(string(storage), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := Simulate(ds.Ckt, SimOptions{
					TStep:           ds.Tran.TStep,
					TStop:           ds.Tran.TStop,
					Storage:         storage,
					Workers:         4,
					DiskBytesPerSec: bench.DefaultDiskBps,
				}, []Objective{node}, ds.Params)
				if err != nil {
					b.Fatal(err)
				}
				if run.Sens == nil {
					b.Fatal("no sensitivities")
				}
			}
		})
	}
}

// BenchmarkParallelCompress is the §6.4 thread-scaling study.
func BenchmarkParallelCompress(b *testing.B) {
	ds, err := workload.Build("MOS_T5", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := bench.CaptureTensor(ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		workers := workers
		b.Run(benchName(workers), func(b *testing.B) {
			pair, err := bench.NewCodecPair("masc", tn, workers, false)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(tn.RawBytes())
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureCodec(pair, tn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	const digits = "0123456789"
	if workers < 10 {
		return "workers-" + digits[workers:workers+1]
	}
	return "workers-" + digits[workers/10:workers/10+1] + digits[workers%10:workers%10+1]
}

// BenchmarkAblation measures the MASC design-choice variants.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation([]string{"add20"}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatePipeline is the headline end-user operation: transient
// plus adjoint with MASC storage.
func BenchmarkSimulatePipeline(b *testing.B) {
	ds, err := workload.Build("CHIP_01", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ds.Ckt, SimOptions{
			TStep: ds.Tran.TStep, TStop: ds.Tran.TStop, Storage: StorageMASC,
		}, ds.Objectives[:1], ds.Params[:4]); err != nil {
			b.Fatal(err)
		}
	}
}
