package masc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"masc/internal/blobframe"
)

// journalFrameEnds scans a journal's frame boundaries: every frame end is a
// clean truncation point, every end plus a few bytes a torn one.
func journalFrameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(data) {
		_, _, plen, err := blobframe.Peek(data[off:])
		if err != nil {
			t.Fatalf("bad frame at offset %d: %v", off, err)
		}
		off += blobframe.HeaderSize + plen
		if off > len(data) {
			t.Fatal("journal ends mid-frame")
		}
		ends = append(ends, off)
	}
	return ends
}

func sameBits(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d objectives, want %d", label, len(got), len(want))
	}
	for o := range want {
		for k := range want[o] {
			if math.Float64bits(got[o][k]) != math.Float64bits(want[o][k]) {
				t.Fatalf("%s: DOdp[%d][%d] = %x, want %x", label, o, k,
					math.Float64bits(got[o][k]), math.Float64bits(want[o][k]))
			}
		}
	}
}

// TestJournalResumeTruncateAnywhere is the tentpole property at the facade:
// a journaled run's journal, truncated at ANY point — frame boundaries, torn
// mid-frame, mid-forward, after forward-done, between adjoint window records,
// or complete — either refuses to resume (nothing recovered) or resumes to
// bit-identical sensitivities.
func TestJournalResumeTruncateAnywhere(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.journal")
	opt := SimOptions{TStep: 2e-6, TStop: 2e-4, Storage: StorageMASC,
		AdjointWindows: 3, Journal: refPath, JournalFsyncEvery: 8}
	objs := []Objective{obj, {Name: "int(v)", Node: obj.Node, Weight: 2, Integral: true}}
	ref, err := Simulate(ckt, opt, objs, nil)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := journalFrameEnds(t, data)
	if len(ends) < 10 {
		t.Fatalf("journal has only %d frames", len(ends))
	}

	cuts := map[int]bool{0: true, 1: true, ends[0] - 3: true}
	for _, i := range []int{0, 1, len(ends) / 4, len(ends) / 2,
		len(ends) - 5, len(ends) - 4, len(ends) - 3, len(ends) - 2, len(ends) - 1} {
		if i < 0 || i >= len(ends) {
			continue
		}
		cuts[ends[i]] = true   // clean cut after a frame
		cuts[ends[i]+7] = true // torn a few bytes into the next frame
	}
	for cut := range cuts {
		if cut > len(data) {
			cut = len(data)
		}
		p := filepath.Join(dir, fmt.Sprintf("cut%d.journal", cut))
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		run, err := Resume(ckt, p, SimOptions{})
		if cut < ends[0] {
			if err == nil {
				t.Fatalf("cut %d inside the config frame resumed anyway", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		sameBits(t, fmt.Sprintf("cut %d", cut), run.Sens.DOdp, ref.Sens.DOdp)

		// The healed journal ends in a done record now: resuming again must
		// short-circuit to the same result without replaying anything.
		again, err := Resume(ckt, p, SimOptions{})
		if err != nil {
			t.Fatalf("cut %d: second resume: %v", cut, err)
		}
		if again.Tran != nil {
			t.Fatalf("cut %d: second resume replayed the forward phase", cut)
		}
		sameBits(t, fmt.Sprintf("cut %d (short-circuit)", cut), again.Sens.DOdp, ref.Sens.DOdp)
	}
}

// TestJournalResumeAfterForwardCrash aborts a journaled run mid-forward (the
// in-process stand-in for a kill) and resumes it in place.
func TestJournalResumeAfterForwardCrash(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	dir := t.TempDir()
	opt := SimOptions{TStep: 2e-6, TStop: 1e-4, Storage: StorageMASC, AdjointWindows: 2}
	objs := []Objective{obj}

	opt.Journal = filepath.Join(dir, "ref.journal")
	ref, err := Simulate(ckt, opt, objs, nil)
	if err != nil {
		t.Fatal(err)
	}

	opt.Journal = filepath.Join(dir, "crash.journal")
	copt := opt
	copt.Transient.AfterStep = func(step int, _, _, _ float64, _ int, _ []float64) error {
		if step == 25 {
			return errors.New("simulated crash")
		}
		return nil
	}
	if _, err := Simulate(ckt, copt, objs, nil); err == nil {
		t.Fatal("crashing run succeeded")
	}
	run, err := Resume(ckt, opt.Journal, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "resume after crash", run.Sens.DOdp, ref.Sens.DOdp)
}

// TestResumeRejectsForeignCircuit: a journal must not resume against a
// circuit whose topology or parameter values differ.
func TestResumeRejectsForeignCircuit(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	path := filepath.Join(t.TempDir(), "run.journal")
	if _, err := Simulate(ckt, SimOptions{TStep: 2e-6, TStop: 5e-5, Journal: path},
		[]Objective{obj}, nil); err != nil {
		t.Fatal(err)
	}

	b := NewBuilder()
	b.AddVSource("vin", "in", "0", Sin{VA: 1, Freq: 5e3})
	b.AddResistor("r1", "in", "mid", 999) // nudged value
	b.AddCapacitor("c1", "mid", "0", 1e-8)
	b.AddDiode("d1", "mid", "out")
	b.AddResistor("r2", "out", "0", 5e3)
	b.AddCapacitor("c2", "out", "0", 2e-8)
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(other, path, SimOptions{}); err == nil {
		t.Fatal("resume accepted a circuit with a nudged parameter")
	}
	if _, err := Resume(ckt, path, SimOptions{}); err != nil {
		t.Fatalf("resume rejected the original circuit: %v", err)
	}
}

// TestSimulateCancellation: a pre-canceled context and an expired deadline
// both surface as the context error from Simulate, and a journaled run
// interrupted that way stays resumable.
func TestSimulateCancellation(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	objs := []Objective{obj}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ckt, SimOptions{TStep: 2e-6, TStop: 1e-4, Ctx: ctx},
		objs, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	dir := t.TempDir()
	opt := SimOptions{TStep: 2e-6, TStop: 1e-4, Journal: filepath.Join(dir, "ref.journal")}
	ref, err := Simulate(ckt, opt, objs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel mid-forward via the user AfterStep hook (which the journal
	// chains after), then resume to completion.
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	copt := opt
	copt.Ctx = cctx
	copt.Journal = filepath.Join(dir, "canceled.journal")
	copt.Transient.AfterStep = func(step int, _, _, _ float64, _ int, _ []float64) error {
		if step == 10 {
			ccancel()
		}
		return nil
	}
	if _, err := Simulate(ckt, copt, objs, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	run, err := Resume(ckt, copt.Journal, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "resume after cancel", run.Sens.DOdp, ref.Sens.DOdp)
}
