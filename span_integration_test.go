package masc

import (
	"bytes"
	"encoding/json"
	"testing"

	"masc/internal/obs/span"
)

// TestSimulateSpanTree runs the full pipeline with a span recorder attached
// and checks the causal structure of the result: one run root, every span
// reachable from it through parent links, and a span population covering
// the forward, storage, and adjoint layers.
func TestSimulateSpanTree(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	ob := &Observer{Spans: NewSpanRecorder(0)}
	_, err := Simulate(ckt, SimOptions{
		TStep: 2e-6, TStop: 4e-4,
		Storage:        StorageMASC,
		AdjointWorkers: 2,
		AdjointWindows: 2,
		Obs:            ob,
	}, []Objective{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := ob.Spans.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no spans recorded")
	}

	byID := make(map[SpanID]*SpanRecord, len(recs))
	var root SpanID
	roots := 0
	for i := range recs {
		r := &recs[i]
		byID[r.ID] = r
		if r.Parent == 0 {
			roots++
			root = r.ID
			if r.Kind != span.Run {
				t.Fatalf("parentless span is %s, want run", r.Kind)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("want exactly one run root span, got %d", roots)
	}

	// Every span must chain up to the run root through resolvable parents.
	kinds := map[span.Kind]bool{}
	for i := range recs {
		r := &recs[i]
		kinds[r.Kind] = true
		seen := 0
		for id := r.ID; id != root; seen++ {
			p, ok := byID[id]
			if !ok {
				t.Fatalf("span %d (%s) has unresolvable ancestor %d", r.ID, r.Kind, id)
			}
			if seen > len(recs) {
				t.Fatalf("parent cycle at span %d (%s)", r.ID, r.Kind)
			}
			id = p.Parent
		}
		if r.End < r.Start {
			t.Fatalf("span %d (%s) ends before it starts", r.ID, r.Kind)
		}
	}
	// The tentpole wants the tree to cover the pipeline, not just exist:
	// forward + storage + adjoint layers must all contribute kinds.
	for _, k := range []span.Kind{
		span.Run, span.Forward, span.Step, span.Put, span.Compress,
		span.Adjoint, span.Window, span.Sweep, span.Fetch, span.Solve,
	} {
		if !kinds[k] {
			t.Errorf("missing span kind %s", k)
		}
	}
	if len(kinds) < 5 {
		t.Fatalf("only %d span kinds recorded, want >= 5", len(kinds))
	}

	// The Chrome trace export of a real run must be well-formed JSON with
	// one event per recorded span.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	xEvents := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			xEvents++
		}
	}
	if xEvents != len(recs) {
		t.Fatalf("chrome trace has %d X events for %d spans", xEvents, len(recs))
	}
}

// TestSimulateSpanTreeTiered checks that the tiered store's demote /
// promote / tier-decision spans land in the same causal tree when a
// memory budget forces spills.
func TestSimulateSpanTreeTiered(t *testing.T) {
	ckt, _, obj := buildTestCircuit(t)
	ob := &Observer{Spans: NewSpanRecorder(0)}
	_, err := Simulate(ckt, SimOptions{
		TStep: 2e-6, TStop: 4e-4,
		Storage:        StorageMASC,
		MemBudgetBytes: 4 << 10,
		DiskDir:        t.TempDir(),
		Obs:            ob,
	}, []Objective{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[span.Kind]bool{}
	for _, r := range ob.Spans.Snapshot() {
		kinds[r.Kind] = true
	}
	for _, k := range []span.Kind{span.Demote, span.TierDecision, span.Promote} {
		if !kinds[k] {
			t.Errorf("tiered run missing span kind %s", k)
		}
	}
}
