module masc

go 1.22
