package transient

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"masc/internal/circuit"
	"masc/internal/device"
)

// buildDiodeRC is a mildly nonlinear fixture (several Newton iterations per
// step) so resume tests exercise real solver state, not a linear shortcut.
func buildDiodeRC(t testing.TB) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Sin{VA: 2, Freq: 5e3})
	b.AddResistor("r1", "in", "a", 500)
	b.AddDiode("d1", "a", "out")
	b.AddCapacitor("c1", "out", "0", 1e-7)
	b.AddResistor("rl", "out", "0", 2e3)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// snapshot is what a journal would hold at checkpoint C: the accepted
// trajectory prefix plus the loop-carried nextH and cuts.
type snapshot struct {
	times  []float64
	hs     []float64
	states [][]float64
	nextH  float64
	cuts   int
}

// TestResumeBitIdenticalTrajectory is the core crash-durability property at
// the transient layer: for every checkpoint C, running to C, snapshotting
// the AfterStep tuple, and resuming must reproduce the uninterrupted
// trajectory bit for bit. FreshFactorPerStep is on for both runs, exactly
// as a journaled run sets it.
func TestResumeBitIdenticalTrajectory(t *testing.T) {
	opts := Options{TStop: 2e-4, TStep: 2e-6, FreshFactorPerStep: true}

	// Uninterrupted reference, recording every AfterStep tuple.
	var snaps []snapshot
	ref := func() *Result {
		ckt := buildDiodeRC(t)
		o := opts
		o.AfterStep = func(step int, tm, h, nextH float64, cuts int, x []float64) error {
			var sn snapshot
			if len(snaps) > 0 {
				prev := snaps[len(snaps)-1]
				sn.times = append([]float64(nil), prev.times...)
				sn.hs = append([]float64(nil), prev.hs...)
				sn.states = append([][]float64(nil), prev.states...)
			}
			sn.times = append(sn.times, tm)
			sn.hs = append(sn.hs, h)
			sn.states = append(sn.states, append([]float64(nil), x...))
			sn.nextH = nextH
			sn.cuts = cuts
			snaps = append(snaps, sn)
			return nil
		}
		res, err := Run(ckt, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	if len(snaps) < 10 {
		t.Fatalf("only %d checkpoints recorded", len(snaps))
	}

	// Resume from a spread of checkpoints, including 0 (right after DC) and
	// the final one (forward already complete).
	picks := []int{0, 1, len(snaps) / 3, len(snaps) / 2, len(snaps) - 2, len(snaps) - 1}
	for _, c := range picks {
		sn := snaps[c]
		ckt := buildDiodeRC(t)
		o := opts
		o.Resume = &ResumeState{Times: sn.times, Hs: sn.hs, States: sn.states,
			NextH: sn.nextH, Cuts: sn.cuts}
		res, err := Run(ckt, o)
		if err != nil {
			t.Fatalf("resume at %d: %v", c, err)
		}
		if len(res.Times) != len(ref.Times) {
			t.Fatalf("resume at %d: %d steps, reference has %d", c, len(res.Times), len(ref.Times))
		}
		for i := range ref.Times {
			if res.Times[i] != ref.Times[i] || res.Hs[i] != ref.Hs[i] {
				t.Fatalf("resume at %d: time axis diverges at step %d", c, i)
			}
			for k := range ref.States[i] {
				if math.Float64bits(res.States[i][k]) != math.Float64bits(ref.States[i][k]) {
					t.Fatalf("resume at %d: state[%d][%d] = %x, want %x",
						c, i, k, math.Float64bits(res.States[i][k]), math.Float64bits(ref.States[i][k]))
				}
			}
		}
	}
}

// TestResumeSkipsSeededCaptures: Capture and AfterStep must fire only for
// newly integrated steps, starting at C+1.
func TestResumeSkipsSeededCaptures(t *testing.T) {
	ckt := buildDiodeRC(t)
	var sn snapshot
	o := Options{TStop: 5e-5, TStep: 2e-6, FreshFactorPerStep: true}
	o.AfterStep = func(step int, tm, h, nextH float64, cuts int, x []float64) error {
		sn.times = append(sn.times, tm)
		sn.hs = append(sn.hs, h)
		sn.states = append(sn.states, append([]float64(nil), x...))
		sn.nextH, sn.cuts = nextH, cuts
		if step == 5 {
			return errors.New("simulated crash")
		}
		return nil
	}
	if _, err := Run(ckt, o); err == nil {
		t.Fatal("expected the AfterStep abort to surface")
	}
	first := -1
	o2 := Options{TStop: 5e-5, TStep: 2e-6, FreshFactorPerStep: true}
	o2.Resume = &ResumeState{Times: sn.times, Hs: sn.hs, States: sn.states,
		NextH: sn.nextH, Cuts: sn.cuts}
	o2.AfterStep = func(step int, _, _, _ float64, _ int, _ []float64) error {
		if first < 0 {
			first = step
		}
		return nil
	}
	if _, err := Run(buildDiodeRC(t), o2); err != nil {
		t.Fatal(err)
	}
	if first != 6 {
		t.Fatalf("first AfterStep on resume fired for step %d, want 6", first)
	}
}

// TestResumePastTStop: a checkpoint taken at the final step resumes into a
// loop that exits immediately, returning the seeded trajectory unchanged.
func TestResumePastTStop(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	res, err := Run(ckt, Options{TStop: 1e-4, TStep: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(ckt, Options{TStop: 1e-4, TStep: 1e-5, Resume: &ResumeState{
		Times: res.Times, Hs: res.Hs, States: res.States, NextH: 1e-5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Times) != len(res.Times) {
		t.Fatalf("resume past TStop integrated %d extra steps", len(res2.Times)-len(res.Times))
	}
	if res2.Stats.StepsAccepted != 0 {
		t.Fatalf("resume past TStop accepted %d steps", res2.Stats.StepsAccepted)
	}
}

func TestResumeRejectsMalformedState(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	bad := []*ResumeState{
		{}, // empty
		{Times: []float64{0}, Hs: []float64{0}, States: [][]float64{{1, 2, 3}}, NextH: 0}, // no step size
		{Times: []float64{0, 1}, Hs: []float64{0}, States: [][]float64{{1}}, NextH: 1e-5}, // ragged
		{Times: []float64{0}, Hs: []float64{0}, States: [][]float64{{1}}, NextH: 1e-5},    // wrong N
	}
	for i, rs := range bad {
		if _, err := Run(ckt, Options{TStop: 1e-4, TStep: 1e-5, Resume: rs}); err == nil {
			t.Fatalf("case %d: malformed resume state accepted", i)
		}
	}
}

// TestContextCancelStopsRun: cancellation is observed at a step boundary and
// surfaces as ErrInterrupted plus the context cause, with the partial
// trajectory intact.
func TestContextCancelStopsRun(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	ctx, cancel := context.WithCancel(context.Background())
	captured := 0
	res, err := Run(ckt, Options{
		TStop: 1e-4, TStep: 1e-5, Ctx: ctx,
		AfterStep: func(step int, _, _, _ float64, _ int, _ []float64) error {
			captured++
			if captured == 3 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrInterrupted wrapping context.Canceled, got %v", err)
	}
	if res == nil || len(res.Times) != captured {
		t.Fatalf("partial result mismatch: %v", res)
	}
}

// TestContextDeadlineStopsRun: an already-expired deadline halts before the
// first new step and reports DeadlineExceeded.
func TestContextDeadlineStopsRun(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	res, err := Run(ckt, Options{TStop: 1e-4, TStep: 1e-5, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res == nil || res.Stats.StepsAccepted != 0 {
		t.Fatalf("deadline run accepted steps: %+v", res)
	}
}
