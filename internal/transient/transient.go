// Package transient implements the forward time-domain analysis: a DC
// operating point via gmin stepping followed by fixed-step backward-Euler
// integration with a damped Newton–Raphson solve at every timestep. The
// Capture hook hands the converged per-step Jacobians (J = G + C/h and
// C = ∂q/∂x) to the caller — this is where MASC's compression pipeline
// attaches during forward integration.
package transient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"masc/internal/circuit"
	"masc/internal/lu"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/sparse"
)

// Options configures a transient run.
type Options struct {
	TStop  float64 // end time (required, > TStart)
	TStep  float64 // base step size (required, > 0)
	TStart float64 // start time, default 0

	MaxNewton int     // Newton iteration cap per solve, default 60
	AbsTol    float64 // absolute state-delta tolerance, default 1e-9
	RelTol    float64 // relative state-delta tolerance, default 1e-6
	Gmin      float64 // diagonal conductance floor in DC, default 1e-12
	MaxCuts   int     // max step halvings on Newton failure, default 8
	DampLimit float64 // max Newton update ∞-norm per iteration, default 2.0

	// Method selects the integration scheme: MethodBE (default, the
	// paper's setting) or MethodTrap (trapezoidal, second order — the
	// Xyce default). The adjoint package understands both.
	Method Method

	// Adaptive enables local-truncation-error step control: TStep becomes
	// the initial step, bounded by [MinStep, MaxStep] (defaults TStep/128
	// and 8·TStep). The LTE is estimated from a forward-Euler predictor;
	// steps with scaled error above 1 are rejected and halved, smooth
	// stretches grow the step. Off by default: the paper's experiments use
	// the fixed-step grid.
	Adaptive bool
	MinStep  float64
	MaxStep  float64
	// LTETol scales the acceptable predictor-corrector gap relative to the
	// Newton tolerances; default 1000 (the usual trtol-like relaxation).
	LTETol float64

	// Capture, if non-nil, is called after every accepted solution:
	// step 0 is the DC operating point (J is the DC Jacobian, h=0), and
	// step i ≥ 1 carries J = G + C/h at the converged state. The matrices
	// are reused between calls — the callee must copy what it keeps. A
	// non-nil error aborts the run: storage failures (disk full, a poisoned
	// compression pipeline) surface here instead of panicking mid-solve.
	Capture func(step int, t float64, x []float64, J, C *sparse.Matrix) error

	// StepCost, if non-nil, receives the wall time of every accepted
	// integration step (step >= 1; the DC solve is excluded — it prices
	// differently). This is the capture-side sampling hook a tiered
	// Jacobian store's cost model uses to learn what recomputing one step
	// costs, without the store reaching into the solver.
	StepCost func(step int, d time.Duration)

	// Stop, if non-nil, is polled at every step boundary. When it returns
	// true the run halts cleanly: Run returns the partial trajectory
	// accepted so far together with an error wrapping ErrInterrupted. This
	// is the hook for SIGINT handling — the solver never observes a signal
	// mid-Newton, only between steps.
	Stop func() bool

	// Ctx, if non-nil, cancels the run between steps. The loop polls it at
	// every step boundary exactly like Stop, so a deadline or an explicit
	// cancel halts cleanly with the partial trajectory and an error that
	// wraps both ErrInterrupted and the context's error. The solver never
	// observes cancellation mid-Newton.
	Ctx context.Context

	// Resume, if non-nil, restarts the integration from a checkpointed
	// trajectory prefix instead of solving the DC operating point: the
	// prefix is copied into the Result and the loop enters at the step
	// after the checkpoint, carrying the recorded step size and cut count.
	// Capture and AfterStep are NOT replayed for the seeded steps —
	// rebuilding a Jacobian store for them is the caller's job (see
	// adjoint.RecomputeSource).
	Resume *ResumeState

	// AfterStep, if non-nil, runs after each accepted step has been
	// recorded and captured, receiving the exact loop-carried state: the
	// accepted step index and time, the step size h just taken, the step
	// size nextH the loop will try next, the carried cut count, and the
	// converged solution. The tuple is sufficient to re-enter the loop
	// bit-identically through Resume — this is the write-ahead journal's
	// checkpoint hook. Step 0 (the DC point) is reported with h=0. A
	// non-nil error aborts the run with the partial trajectory.
	AfterStep func(step int, t, h, nextH float64, cuts int, x []float64) error

	// FreshFactorPerStep drops the LU pivot recipe before every step
	// attempt, so each solve factors from scratch. Pivot reuse chains
	// factorization state across the whole step history, which a
	// checkpoint cannot capture; journaled runs set this so a resumed run
	// takes bit-identical Newton trajectories, trading a few percent of
	// forward time for replayability.
	FreshFactorPerStep bool

	// NewtonBudget, if positive, bounds the wall time one integration step
	// may spend in *failed* Newton attempts across its step cuts. A step
	// that exhausts the budget aborts the run with an error wrapping
	// ErrNewtonBudget instead of grinding through MaxCuts halvings against
	// a solve that will never converge — the watchdog that turns a hung
	// forward phase into a typed error.
	NewtonBudget time.Duration

	// Obs, if non-nil, receives per-step telemetry: the
	// masc_transient_* metric families and one trace event per solve
	// attempt ("dc", "solve", "step_cut").
	Obs *obs.Observer

	// SpanParent is the span the forward pass nests under (normally the
	// run root). Spans are recorded only when Obs carries a recorder.
	SpanParent span.ID
}

// EstimatedSteps predicts the integration step count of the fixed-step
// grid: round((TStop-TStart)/TStep). Adaptive runs and Newton step cuts can
// land elsewhere — callers (anchor placement, window sizing) treat this as
// a planning hint, not a promise.
func (o *Options) EstimatedSteps() int {
	if o.TStep <= 0 || o.TStop <= o.TStart {
		return 0
	}
	return int((o.TStop-o.TStart)/o.TStep + 0.5)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxNewton == 0 {
		out.MaxNewton = 60
	}
	if out.AbsTol == 0 {
		out.AbsTol = 1e-9
	}
	if out.RelTol == 0 {
		out.RelTol = 1e-6
	}
	if out.Gmin == 0 {
		out.Gmin = 1e-12
	}
	if out.MaxCuts == 0 {
		out.MaxCuts = 8
	}
	if out.DampLimit == 0 {
		out.DampLimit = 2.0
	}
	if out.Method == "" {
		out.Method = MethodBE
	}
	if out.Adaptive {
		if out.MinStep == 0 {
			out.MinStep = out.TStep / 128
		}
		if out.MaxStep == 0 {
			out.MaxStep = 8 * out.TStep
		}
		if out.LTETol == 0 {
			out.LTETol = 1000
		}
	}
	return out
}

// ErrInterrupted is wrapped into Run's error when Options.Stop requests a
// halt. The partial Result is still returned alongside it: every step
// recorded in it was fully accepted and captured before the stop.
var ErrInterrupted = errors.New("transient: interrupted")

// ErrNewtonBudget is wrapped into Run's error when a single step burns more
// wall time in failed Newton solves than Options.NewtonBudget allows.
var ErrNewtonBudget = errors.New("transient: newton budget exhausted")

// ResumeState seeds Run mid-trajectory from a recovered journal: the
// accepted prefix (steps 0..C of Times/Hs/States) plus the loop-carried
// step size and cut count journaled with checkpoint C.
type ResumeState struct {
	Times  []float64
	Hs     []float64
	States [][]float64
	NextH  float64 // step size the loop tries next
	Cuts   int     // carried cut count at the checkpoint
}

// Method is a numerical integration scheme.
type Method string

const (
	// MethodBE is backward Euler: first order, L-stable, the scheme the
	// MASC paper's adjoint formulation (Eq. 4) assumes.
	MethodBE Method = "be"
	// MethodTrap is the trapezoidal rule: second order, A-stable.
	MethodTrap Method = "trap"
)

// Stats aggregates solver work counters.
type Stats struct {
	NewtonIters      int
	Factorizations   int
	Refactorizations int
	StepsAccepted    int
	StepsCut         int
}

// runObs is the resolved telemetry bundle of one transient run. The zero
// value (nil handles) is a no-op, so Run carries no telemetry branches
// beyond a couple of time.Now calls guarded by `on`.
type runObs struct {
	on      bool
	tr      *obs.Tracer
	rec     *span.Recorder
	steps   *obs.Counter
	cuts    *obs.Counter
	newton  *obs.Counter
	facts   *obs.Counter
	stepSec *obs.Histogram
	simTime *obs.Gauge
}

func newRunObs(o *obs.Observer) runObs {
	if o == nil {
		return runObs{}
	}
	reg := o.Registry()
	return runObs{
		on:      true,
		tr:      o.Tracer(),
		rec:     o.SpanRecorder(),
		steps:   reg.Counter("masc_transient_steps_total", "Accepted integration steps."),
		cuts:    reg.Counter("masc_transient_step_cuts_total", "Step halvings after Newton failure or LTE rejection."),
		newton:  reg.Counter("masc_transient_newton_iters_total", "Newton iterations across all solves."),
		facts:   reg.Counter("masc_transient_factorizations_total", "LU factorizations plus pivot-reusing refactorizations."),
		stepSec: reg.Histogram("masc_transient_step_seconds", "Wall time per timestep solve attempt.", obs.TimingBuckets()),
		simTime: reg.Gauge("masc_transient_sim_time_seconds", "Simulation time reached by the forward analysis."),
	}
}

// Result is the forward trajectory.
type Result struct {
	Times  []float64   // t_0 .. t_n (t_0 is the DC point)
	Hs     []float64   // Hs[i] = Times[i]-Times[i-1]; Hs[0] = 0
	States [][]float64 // converged states, States[i] aligned with Times[i]
	Method Method      // integration scheme that produced the trajectory
	Stats  Stats
}

// Steps returns n, the number of integration steps (len(Times)-1).
func (r *Result) Steps() int { return len(r.Times) - 1 }

// solver carries the reusable machinery of Newton solves.
type solver struct {
	ckt  *circuit.Circuit
	ev   *circuit.Eval
	opt  Options
	J    *sparse.Matrix
	fact *lu.LU
	perm []int32
	res  []float64 // Newton residual / solution buffer
	dx   []float64 // line-search direction
	xTry []float64 // line-search trial point
	st   *Stats
}

func newSolver(ckt *circuit.Circuit, opt Options, st *Stats) *solver {
	return &solver{
		ckt:  ckt,
		ev:   circuit.NewEval(ckt),
		opt:  opt,
		J:    sparse.NewMatrix(ckt.JPat),
		perm: ckt.JPerm(),
		res:  make([]float64, ckt.N),
		st:   st,
	}
}

// factorize (re)factors s.J, falling back to a fresh pivot search when the
// recorded pivots degrade.
func (s *solver) factorize() error {
	if s.fact != nil {
		err := s.fact.Refactor(s.J)
		if err == nil {
			s.st.Refactorizations++
			return nil
		}
		if !errors.Is(err, lu.ErrPivotDegraded) {
			return err
		}
	}
	f, err := lu.Factor(s.J, lu.Options{ColPerm: s.perm})
	if err != nil {
		return err
	}
	s.st.Factorizations++
	s.fact = f
	return nil
}

// newton solves the nonlinear system whose residual and Jacobian are
// produced by eval(x) into s.ev/s.res/s.J, updating x in place. A
// backtracking line search on the residual ∞-norm tames the on/off
// oscillation of exponential junctions that plain damped Newton falls into.
func (s *solver) newton(x []float64, eval func(x []float64)) error {
	opt := &s.opt
	resNorm := func() float64 {
		worst := 0.0
		for _, r := range s.res {
			if a := math.Abs(r); a > worst {
				worst = a
			}
		}
		return worst
	}
	if s.dx == nil {
		s.dx = make([]float64, len(x))
		s.xTry = make([]float64, len(x))
	}
	eval(x)
	rnorm := resNorm()
	for iter := 0; iter < opt.MaxNewton; iter++ {
		s.st.NewtonIters++
		if err := s.factorize(); err != nil {
			return fmt.Errorf("transient: newton iteration %d: %w", iter, err)
		}
		s.fact.Solve(s.res) // res now holds dx = J⁻¹ r
		copy(s.dx, s.res)
		// Convergence test on the undamped update. Damping considers node
		// voltages only: branch currents may legitimately jump by amperes
		// in one iteration (e.g. a source feeding an exponential junction)
		// and clamping them stalls the solve.
		worst := 0.0
		maxdv := 0.0
		for i, dx := range s.dx {
			lim := opt.AbsTol + opt.RelTol*math.Abs(x[i])
			if r := math.Abs(dx) / lim; r > worst {
				worst = r
			}
			if s.ckt.VoltageUnknown[i] {
				if a := math.Abs(dx); a > maxdv {
					maxdv = a
				}
			}
		}
		if worst < 1 {
			// The Newton update is below tolerance everywhere: converged.
			// Take the full update so the final state is as exact as the
			// linearization allows.
			for i := range x {
				x[i] -= s.dx[i]
			}
			eval(x)
			return nil
		}
		// Initial step scale: cap the voltage-update ∞-norm.
		t0 := 1.0
		if maxdv > opt.DampLimit {
			t0 = opt.DampLimit / maxdv
		}
		// Backtracking line search on the residual ∞-norm, with a
		// nonmonotone fallback: exponential-junction residuals can rise
		// transiently along a perfectly good Newton direction, so after a
		// failed search we take the full damped step rather than creep.
		t := t0
		accepted := false
		var rTry float64
		for ls := 0; ls < 8; ls++ {
			for i := range x {
				s.xTry[i] = x[i] - t*s.dx[i]
			}
			eval(s.xTry)
			rTry = resNorm()
			if rTry <= rnorm*(1-1e-4*t)+1e-300 {
				accepted = true
				break
			}
			t /= 2
		}
		if !accepted {
			t = t0
			for i := range x {
				s.xTry[i] = x[i] - t*s.dx[i]
			}
			eval(s.xTry)
			rTry = resNorm()
		}
		copy(x, s.xTry)
		rnorm = rTry
	}
	return fmt.Errorf("transient: newton did not converge in %d iterations", opt.MaxNewton)
}

// DCOperatingPoint solves f(x, t) + gmin·x = 0 with gmin stepping, starting
// from the zero state.
func DCOperatingPoint(ckt *circuit.Circuit, t float64, opt Options) ([]float64, Stats, error) {
	opt = opt.withDefaults()
	var st Stats
	s := newSolver(ckt, opt, &st)
	x := make([]float64, ckt.N)
	// Descend the gmin ladder; each rung starts from the previous solution.
	ladder := []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, opt.Gmin}
	for _, g := range ladder {
		eval := func(xx []float64) {
			s.ev.Run(xx, t)
			for i := range s.res {
				s.res[i] = s.ev.F[i] + g*xx[i]
			}
			s.ev.BuildJ(s.J, 0)
			ckt.AddGmin(s.J, g)
		}
		if err := s.newton(x, eval); err != nil {
			return nil, st, fmt.Errorf("transient: DC at gmin=%g: %w", g, err)
		}
	}
	return x, st, nil
}

// Run performs the full analysis: DC point, then backward-Euler steps until
// TStop, invoking opt.Capture after every accepted solution.
func Run(ckt *circuit.Circuit, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.TStep <= 0 || opt.TStop <= opt.TStart {
		return nil, fmt.Errorf("transient: bad time axis [%g, %g] step %g", opt.TStart, opt.TStop, opt.TStep)
	}
	if opt.Method != MethodBE && opt.Method != MethodTrap {
		return nil, fmt.Errorf("transient: unknown integration method %q", opt.Method)
	}
	trap := opt.Method == MethodTrap
	res := &Result{Method: opt.Method}
	ro := newRunObs(opt.Obs)
	fsp := ro.rec.Start(opt.SpanParent, span.Forward, -1)
	defer fsp.End()
	// The forward loop publishes its current step span as the recorder's
	// dynamic scope so store-side spans (put/compress) nest causally under
	// the step that triggered them; clear it however the loop exits.
	defer ro.rec.SetScope(0)
	record := func(t, h float64, xx []float64) {
		res.Times = append(res.Times, t)
		res.Hs = append(res.Hs, h)
		res.States = append(res.States, append([]float64(nil), xx...))
	}

	var (
		s            *solver
		x            []float64
		qPrev, fPrev []float64
		t, h         float64
		cuts         int
		xPrev        []float64 // previous accepted state, for the LTE predictor
		hPrev        float64
		startStep    int
	)
	if rs := opt.Resume; rs != nil {
		C := len(rs.States) - 1
		if C < 0 || len(rs.Times) != C+1 || len(rs.Hs) != C+1 || rs.NextH <= 0 {
			return nil, fmt.Errorf("transient: malformed resume state: %d states, %d times, %d step sizes, next h %g",
				len(rs.States), len(rs.Times), len(rs.Hs), rs.NextH)
		}
		for i, st := range rs.States {
			if len(st) != ckt.N {
				return nil, fmt.Errorf("transient: resume state %d has %d unknowns, circuit has %d", i, len(st), ckt.N)
			}
			record(rs.Times[i], rs.Hs[i], st)
		}
		s = newSolver(ckt, opt, &res.Stats)
		x = append([]float64(nil), rs.States[C]...)
		// Re-evaluating the checkpoint state regenerates the integrator's
		// charge/current history: Eval is stateless, so Q and F come back
		// bit-identical to what the original run carried at step C.
		s.ev.Run(x, rs.Times[C])
		qPrev = append([]float64(nil), s.ev.Q...)
		fPrev = append([]float64(nil), s.ev.F...)
		t = rs.Times[C]
		h = rs.NextH
		cuts = rs.Cuts
		xPrev = append([]float64(nil), rs.States[max(C-1, 0)]...)
		hPrev = rs.Hs[C]
		startStep = C + 1
	} else {
		var dcStart time.Time
		if ro.on {
			dcStart = time.Now()
		}
		dsp := ro.rec.Start(fsp.ID(), span.DC, 0)
		dcX, dcStats, err := DCOperatingPoint(ckt, opt.TStart, opt)
		if err != nil {
			dsp.End()
			return nil, err
		}
		dsp.Attr("iters", int64(dcStats.NewtonIters))
		dsp.End()
		res.Stats = dcStats
		if ro.on {
			d := time.Since(dcStart)
			ro.steps.Inc()
			ro.newton.Add(float64(dcStats.NewtonIters))
			ro.facts.Add(float64(dcStats.Factorizations + dcStats.Refactorizations))
			ro.stepSec.Observe(d.Seconds())
			ro.simTime.Set(opt.TStart)
			ro.tr.Emit(obs.Event{Step: 0, Phase: "dc", T: opt.TStart, Dur: d,
				Key: "iters", N: int64(dcStats.NewtonIters)})
		}
		s = newSolver(ckt, opt, &res.Stats)
		x = dcX

		// Accept the DC point as step 0 and hand it to Capture.
		s.ev.Run(x, opt.TStart)
		s.ev.BuildJ(s.J, 0)
		ckt.AddGmin(s.J, opt.Gmin)
		record(opt.TStart, 0, x)
		if opt.Capture != nil {
			s0 := ro.rec.Start(fsp.ID(), span.Step, 0)
			ro.rec.SetScope(s0.ID())
			err := opt.Capture(0, opt.TStart, x, s.J, s.ev.C)
			ro.rec.SetScope(0)
			s0.End()
			if err != nil {
				return nil, fmt.Errorf("transient: capture step 0: %w", err)
			}
		}
		if opt.AfterStep != nil {
			if err := opt.AfterStep(0, opt.TStart, 0, opt.TStep, 0, x); err != nil {
				return res, fmt.Errorf("transient: after step 0: %w", err)
			}
		}
		qPrev = append([]float64(nil), s.ev.Q...)
		// The trapezoidal residual needs the previous step's static currents.
		fPrev = append([]float64(nil), s.ev.F...)
		t = opt.TStart
		h = opt.TStep
		xPrev = append([]float64(nil), x...)
		startStep = 1
	}

	xTrial := make([]float64, ckt.N)
	// Wall time burnt in failed Newton attempts for the current step, for
	// the NewtonBudget watchdog; reset on every acceptance.
	var failedSolveTime time.Duration
	for step := startStep; t < opt.TStop-1e-12*opt.TStop; {
		if opt.Stop != nil && opt.Stop() {
			return res, fmt.Errorf("transient: stopped at t=%g after %d accepted steps: %w",
				t, res.Stats.StepsAccepted, ErrInterrupted)
		}
		if opt.Ctx != nil {
			if cerr := opt.Ctx.Err(); cerr != nil {
				return res, fmt.Errorf("transient: canceled at t=%g after %d accepted steps: %w: %w",
					t, res.Stats.StepsAccepted, ErrInterrupted, cerr)
			}
		}
		if t+h > opt.TStop {
			h = opt.TStop - t
		}
		tNext := t + h
		invH := 1 / h
		copy(xTrial, x)
		itersBefore := res.Stats.NewtonIters
		factsBefore := res.Stats.Factorizations + res.Stats.Refactorizations
		var attemptStart time.Time
		if ro.on || opt.StepCost != nil || opt.NewtonBudget > 0 {
			attemptStart = time.Now()
		}
		if opt.FreshFactorPerStep {
			s.fact = nil
		}
		ssp := ro.rec.Start(fsp.ID(), span.Step, step)
		ro.rec.SetScope(ssp.ID())
		var eval func(xx []float64)
		if trap {
			// (q_i - q_{i-1})/h + (f_i + f_{i-1})/2 = 0.
			eval = func(xx []float64) {
				s.ev.Run(xx, tNext)
				for i := range s.res {
					s.res[i] = 0.5*(s.ev.F[i]+fPrev[i]) + invH*(s.ev.Q[i]-qPrev[i])
				}
				s.ev.BuildJWeighted(s.J, 0.5, invH)
			}
		} else {
			eval = func(xx []float64) {
				s.ev.Run(xx, tNext)
				for i := range s.res {
					s.res[i] = s.ev.F[i] + invH*(s.ev.Q[i]-qPrev[i])
				}
				s.ev.BuildJ(s.J, invH)
			}
		}
		if err := s.newton(xTrial, eval); err != nil {
			ro.rec.SetScope(0)
			ssp.Attr("cut", 1)
			ssp.End()
			cuts++
			res.Stats.StepsCut++
			if ro.on {
				ro.cuts.Inc()
				ro.newton.Add(float64(res.Stats.NewtonIters - itersBefore))
				ro.facts.Add(float64(res.Stats.Factorizations + res.Stats.Refactorizations - factsBefore))
				ro.tr.Emit(obs.Event{Step: step, Phase: "step_cut", T: tNext,
					Dur: time.Since(attemptStart), Key: "cuts", N: int64(cuts)})
			}
			if opt.NewtonBudget > 0 {
				failedSolveTime += time.Since(attemptStart)
				if failedSolveTime > opt.NewtonBudget {
					return nil, fmt.Errorf("transient: step at t=%g spent %v in failed newton solves (budget %v): %w",
						t, failedSolveTime.Round(time.Millisecond), opt.NewtonBudget, ErrNewtonBudget)
				}
			}
			if cuts > opt.MaxCuts {
				return nil, fmt.Errorf("transient: step at t=%g failed after %d cuts: %w", t, cuts, err)
			}
			h /= 2
			continue
		}
		grow := false
		if opt.Adaptive && hPrev > 0 {
			// Forward-Euler predictor from the last accepted slope; the
			// gap to the backward-Euler corrector estimates the LTE.
			worst := 0.0
			for i := range xTrial {
				pred := x[i] + h*(x[i]-xPrev[i])/hPrev
				lim := opt.LTETol * (opt.AbsTol + opt.RelTol*math.Abs(xTrial[i]))
				if e := math.Abs(xTrial[i]-pred) / lim; e > worst {
					worst = e
				}
			}
			if worst > 1 && h > opt.MinStep {
				ro.rec.SetScope(0)
				ssp.Attr("cut", 1)
				ssp.End()
				res.Stats.StepsCut++
				if ro.on {
					ro.cuts.Inc()
					ro.tr.Emit(obs.Event{Step: step, Phase: "step_cut", T: tNext,
						Dur: time.Since(attemptStart), Key: "lte", N: 1})
				}
				h = math.Max(h/2, opt.MinStep)
				continue
			}
			grow = worst < 0.1
		}
		copy(xPrev, x)
		hPrev = h
		copy(x, xTrial)
		// Re-evaluate at the converged state so the captured J and C are
		// clean (the last Newton evaluation was at the pre-update iterate).
		s.ev.Run(x, tNext)
		if trap {
			s.ev.BuildJWeighted(s.J, 0.5, invH)
		} else {
			s.ev.BuildJ(s.J, invH)
		}
		record(tNext, h, x)
		res.Stats.StepsAccepted++
		if ro.on {
			d := time.Since(attemptStart)
			iters := res.Stats.NewtonIters - itersBefore
			ro.steps.Inc()
			ro.newton.Add(float64(iters))
			ro.facts.Add(float64(res.Stats.Factorizations + res.Stats.Refactorizations - factsBefore))
			ro.stepSec.Observe(d.Seconds())
			ro.simTime.Set(tNext)
			ro.tr.Emit(obs.Event{Step: step, Phase: "solve", T: tNext, Dur: d,
				Key: "iters", N: int64(iters)})
		}
		if opt.StepCost != nil {
			opt.StepCost(step, time.Since(attemptStart))
		}
		if opt.Capture != nil {
			if err := opt.Capture(step, tNext, x, s.J, s.ev.C); err != nil {
				ssp.End()
				return nil, fmt.Errorf("transient: capture step %d: %w", step, err)
			}
		}
		ro.rec.SetScope(0)
		ssp.Attr("iters", int64(res.Stats.NewtonIters-itersBefore))
		ssp.End()
		copy(qPrev, s.ev.Q)
		copy(fPrev, s.ev.F)
		t = tNext
		failedSolveTime = 0
		accepted := step
		step++
		if opt.Adaptive {
			cuts = 0
			if grow {
				h = math.Min(h*1.5, opt.MaxStep)
			}
		} else if cuts > 0 && h < opt.TStep {
			// Recover the base step after successful cuts.
			h = math.Min(h*2, opt.TStep)
		} else {
			h = opt.TStep
			cuts = 0
		}
		if opt.AfterStep != nil {
			// hPrev still holds the step size just taken; h and cuts now
			// carry what the next iteration will start from.
			if err := opt.AfterStep(accepted, t, hPrev, h, cuts, x); err != nil {
				return res, fmt.Errorf("transient: after step %d: %w", accepted, err)
			}
		}
	}
	fsp.Attr("steps", int64(res.Stats.StepsAccepted))
	return res, nil
}
