package transient

import (
	"errors"
	"strings"
	"testing"

	"masc/internal/sparse"
)

// TestStopReturnsPartialResult pins the graceful-shutdown contract: a Stop
// that fires after k accepted steps returns the partial trajectory (every
// accepted step captured, none half-done) and an error wrapping
// ErrInterrupted.
func TestStopReturnsPartialResult(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	for _, k := range []int{0, 1, 3} {
		captured := 0
		res, err := Run(ckt, Options{
			TStop: 1e-4, TStep: 1e-5,
			Stop: func() bool { return captured > k },
			Capture: func(step int, _ float64, _ []float64, _, _ *sparse.Matrix) error {
				captured++
				return nil
			},
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("k=%d: want ErrInterrupted, got %v", k, err)
		}
		if res == nil {
			t.Fatalf("k=%d: partial result must be returned alongside ErrInterrupted", k)
		}
		// Every recorded step was captured; nothing was recorded past the stop.
		if len(res.Times) != captured {
			t.Fatalf("k=%d: recorded %d steps but captured %d", k, len(res.Times), captured)
		}
		if captured != k+1 {
			t.Fatalf("k=%d: run did not stop at the step boundary: %d captures", k, captured)
		}
	}
}

// TestStopNeverFiringIsHarmless: a Stop hook that always returns false must
// not perturb the run.
func TestStopNeverFiringIsHarmless(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	res, err := Run(ckt, Options{TStop: 1e-4, TStep: 1e-5, Stop: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", res.Steps())
	}
}

// TestCaptureErrorAbortsRun: a failing Capture (e.g. disk full in the
// storage backend) must abort the run with a wrapped error naming the step.
func TestCaptureErrorAbortsRun(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	boom := errors.New("spill device gone")
	for _, failAt := range []int{0, 2, 5} {
		_, err := Run(ckt, Options{
			TStop: 1e-4, TStep: 1e-5,
			Capture: func(step int, _ float64, _ []float64, _, _ *sparse.Matrix) error {
				if step == failAt {
					return boom
				}
				return nil
			},
		})
		if !errors.Is(err, boom) {
			t.Fatalf("failAt=%d: capture error not propagated: %v", failAt, err)
		}
		if !strings.Contains(err.Error(), "capture step") {
			t.Fatalf("failAt=%d: error does not name the capture step: %v", failAt, err)
		}
	}
}
