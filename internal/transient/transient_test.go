package transient

import (
	"math"
	"testing"
	"time"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/sparse"
)

func buildRC(t testing.TB, r, c float64) (*circuit.Circuit, int32) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.DC(1))
	b.AddResistor("r1", "in", "out", r)
	b.AddCapacitor("c1", "out", "0", c)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err2 := b.NodeIndex("out")
	if err2 != nil {
		t.Fatal(err2)
	}
	return ckt, out
}

func TestDCVoltageDivider(t *testing.T) {
	b := circuit.NewBuilder()
	b.AddVSource("v1", "top", "0", device.DC(10))
	b.AddResistor("r1", "top", "mid", 1e3)
	b.AddResistor("r2", "mid", "0", 3e3)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := DCOperatingPoint(ckt, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := b.NodeIndex("mid")
	if got, want := x[mid], 7.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("v(mid) = %g, want %g", got, want)
	}
}

func TestRCStepResponse(t *testing.T) {
	// v_out(t) = 1 - exp(-t/RC) for a unit step on a zero-initial cap...
	// with a DC source the DC point already charges the cap, so drive with
	// a pulse that starts at 0.
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 1, TD: 0, TR: 1e-9, PW: 1, PE: 2})
	b.AddResistor("r1", "in", "out", 1e3)
	b.AddCapacitor("c1", "out", "0", 1e-6)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := b.NodeIndex("out")
	tau := 1e-3
	res, err := Run(ckt, Options{TStop: 3 * tau, TStep: tau / 400})
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Times {
		if tm < 10e-9 {
			continue
		}
		want := 1 - math.Exp(-tm/tau)
		got := res.States[i][out]
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("v(out) at t=%g: got %g, want %g", tm, got, want)
		}
	}
	if res.Stats.StepsAccepted < 1000 {
		t.Fatalf("accepted %d steps, expected ~1200", res.Stats.StepsAccepted)
	}
}

func TestBEConvergenceOrder(t *testing.T) {
	// Backward Euler is first order: halving h should roughly halve the
	// final-time error on a smooth problem.
	errAt := func(h float64) float64 {
		b := circuit.NewBuilder()
		b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 1, TR: 1e-12, PW: 1, PE: 2})
		b.AddResistor("r1", "in", "out", 1e3)
		b.AddCapacitor("c1", "out", "0", 1e-6)
		ckt, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out, _ := b.NodeIndex("out")
		res, err := Run(ckt, Options{TStop: 1e-3, TStep: h})
		if err != nil {
			t.Fatal(err)
		}
		last := res.States[len(res.States)-1][out]
		want := 1 - math.Exp(-1)
		return math.Abs(last - want)
	}
	e1 := errAt(1e-5)
	e2 := errAt(5e-6)
	ratio := e1 / e2
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("error ratio %g (e1=%g e2=%g), want ≈2 for first order", ratio, e1, e2)
	}
}

func TestDiodeRectifier(t *testing.T) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Sin{VA: 5, Freq: 1e3})
	b.AddDiode("d1", "in", "out")
	b.AddResistor("rl", "out", "0", 1e3)
	b.AddCapacitor("cl", "out", "0", 1e-6)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := b.NodeIndex("out")
	res, err := Run(ckt, Options{TStop: 3e-3, TStep: 2e-6})
	if err != nil {
		t.Fatal(err)
	}
	// With τ = RC equal to one period the output droops between crests;
	// the *peak* over the last cycle should be ≈ 5 V - V_diode.
	peak := 0.0
	for i, tm := range res.Times {
		if tm > 2e-3 && res.States[i][out] > peak {
			peak = res.States[i][out]
		}
	}
	if peak < 3.8 || peak > 5.0 {
		t.Fatalf("rectified peak %g, want in (3.8, 5.0)", peak)
	}
	// Output must never go meaningfully negative.
	for i, st := range res.States {
		if st[out] < -0.1 {
			t.Fatalf("output negative (%g) at t=%g", st[out], res.Times[i])
		}
	}
}

func TestRLCRinging(t *testing.T) {
	// Series RLC driven by a step: check the damped oscillation frequency
	// loosely via zero crossings of the inductor current.
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 1, TR: 1e-9, PW: 1, PE: 2})
	b.AddResistor("r1", "in", "n1", 10)
	b.AddInductor("l1", "n1", "n2", 1e-3)
	b.AddCapacitor("c1", "n2", "0", 1e-6)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := b.NodeIndex("n2")
	res, err := Run(ckt, Options{TStop: 2e-3, TStep: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// ω₀ = 1/√(LC) ≈ 31.6 krad/s → f₀ ≈ 5.03 kHz; underdamped (ζ≈0.16).
	// Count maxima of v(n2): expect several oscillations.
	peaks := 0
	for i := 1; i+1 < len(res.States); i++ {
		a, bm, c := res.States[i-1][n2], res.States[i][n2], res.States[i+1][n2]
		if bm > a && bm > c && bm > 1.01 {
			peaks++
		}
	}
	if peaks < 3 {
		t.Fatalf("expected ringing with ≥3 overshoot peaks, got %d", peaks)
	}
}

func TestCaptureHook(t *testing.T) {
	ckt, out := buildRC(t, 1e3, 1e-6)
	_ = out
	var steps []int
	var lastJ, lastC *sparse.Matrix
	var hGot float64
	res, err := Run(ckt, Options{
		TStop: 1e-4, TStep: 1e-5,
		Capture: func(step int, tm float64, x []float64, J, C *sparse.Matrix) error {
			steps = append(steps, step)
			if step == 3 {
				lastJ = J.Clone()
				lastC = C.Clone()
			}
			hGot = 1e-5
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(res.Times) {
		t.Fatalf("capture called %d times, want %d", len(steps), len(res.Times))
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("capture steps out of order: %v", steps)
		}
	}
	// Verify J = G + C/h at the recorded state.
	e := circuit.NewEval(ckt)
	e.Run(res.States[3], res.Times[3])
	j2 := sparse.NewMatrix(ckt.JPat)
	e.BuildJ(j2, 1/res.Hs[3])
	_ = hGot
	jd, j2d := lastJ.Dense(), j2.Dense()
	cd, c2d := lastC.Dense(), e.C.Dense()
	for i := 0; i < ckt.N; i++ {
		for jj := 0; jj < ckt.N; jj++ {
			if math.Abs(jd[i][jj]-j2d[i][jj]) > 1e-9*math.Abs(j2d[i][jj])+1e-12 {
				t.Fatalf("captured J mismatch at (%d,%d): %g vs %g", i, jj, jd[i][jj], j2d[i][jj])
			}
			if math.Abs(cd[i][jj]-c2d[i][jj]) > 1e-15 {
				t.Fatalf("captured C mismatch at (%d,%d)", i, jj)
			}
		}
	}
}

func TestMOSInverterTransient(t *testing.T) {
	// NMOS inverter with resistive pull-up, driven by a pulse.
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(3))
	b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 3, TD: 1e-6, TR: 1e-7, PW: 4e-6, PE: 10e-6})
	b.AddResistor("rd", "vdd", "out", 10e3)
	m := b.AddMOSFET("m1", "out", "in", "0")
	m.KP = 1e-3
	b.AddCapacitor("cl", "out", "0", 1e-12)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := b.NodeIndex("out")
	res, err := Run(ckt, Options{TStop: 8e-6, TStep: 2e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Before the pulse: output high (≈3 V). During the pulse: output low.
	var vHigh, vLow float64 = -1, 99
	for i, tm := range res.Times {
		v := res.States[i][out]
		if tm < 0.9e-6 && v > vHigh {
			vHigh = v
		}
		if tm > 2e-6 && tm < 4.5e-6 && v < vLow {
			vLow = v
		}
	}
	if vHigh < 2.9 {
		t.Fatalf("inverter idle output %g, want ≈3", vHigh)
	}
	if vLow > 0.5 {
		t.Fatalf("inverter driven output %g, want < 0.5", vLow)
	}
}

func TestBJTAmplifierDC(t *testing.T) {
	// Common-emitter stage: check a sane bias point (collector between
	// rails, forward-active junction).
	b := circuit.NewBuilder()
	b.AddVSource("vcc", "vcc", "0", device.DC(12))
	b.AddResistor("rb1", "vcc", "base", 100e3)
	b.AddResistor("rb2", "base", "0", 20e3)
	b.AddResistor("rc", "vcc", "col", 4.7e3)
	b.AddResistor("re", "em", "0", 1e3)
	b.AddBJT("q1", "col", "base", "em")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := DCOperatingPoint(ckt, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := b.NodeIndex("base")
	col, _ := b.NodeIndex("col")
	em, _ := b.NodeIndex("em")
	vbe := x[base] - x[em]
	// Is = 1e-16 puts VBE ≈ Vt·ln(IC/Is) ≈ 0.78 at mA-level collector
	// currents.
	if vbe < 0.55 || vbe > 0.85 {
		t.Fatalf("VBE = %g, want ≈0.6-0.8", vbe)
	}
	if x[col] < 2 || x[col] > 11 {
		t.Fatalf("collector voltage %g, want inside the rails with drop", x[col])
	}
}

func TestBadOptionsRejected(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	if _, err := Run(ckt, Options{TStop: 0, TStep: 1e-6}); err == nil {
		t.Fatal("expected error for TStop=0")
	}
	if _, err := Run(ckt, Options{TStop: 1e-3, TStep: 0}); err == nil {
		t.Fatal("expected error for TStep=0")
	}
}

func TestFinalTimeHit(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	res, err := Run(ckt, Options{TStop: 1.05e-4, TStep: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Times[len(res.Times)-1]
	if math.Abs(last-1.05e-4) > 1e-12 {
		t.Fatalf("final time %g, want 1.05e-4", last)
	}
	// Hs must sum to the span.
	sum := 0.0
	for _, h := range res.Hs {
		sum += h
	}
	if math.Abs(sum-1.05e-4) > 1e-12 {
		t.Fatalf("Σh = %g, want 1.05e-4", sum)
	}
}

func TestAdaptiveStepping(t *testing.T) {
	// A pulse followed by a long settle: adaptive stepping should spend
	// steps on the edges and glide through the tail.
	build := func() (*circuit.Circuit, int32) {
		b := circuit.NewBuilder()
		b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 1, TD: 1e-6, TR: 1e-8, PW: 2e-6, PE: 1})
		b.AddResistor("r1", "in", "out", 1e3)
		b.AddCapacitor("c1", "out", "0", 1e-9)
		ckt, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out, _ := b.NodeIndex("out")
		return ckt, out
	}
	ckt, out := build()
	fixed, err := Run(ckt, Options{TStop: 2e-5, TStep: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ckt2, out2 := build()
	adaptive, err := Run(ckt2, Options{TStop: 2e-5, TStep: 1e-8, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Steps() >= fixed.Steps() {
		t.Fatalf("adaptive used %d steps, fixed %d — no savings", adaptive.Steps(), fixed.Steps())
	}
	// Compare the final settled value.
	a := adaptive.States[len(adaptive.States)-1][out2]
	f := fixed.States[len(fixed.States)-1][out]
	if math.Abs(a-f) > 5e-3 {
		t.Fatalf("adaptive final %g vs fixed %g", a, f)
	}
	// Step sizes must respect the bounds and sum to the span.
	sum := 0.0
	for i, h := range adaptive.Hs {
		if i == 0 {
			continue
		}
		sum += h
		if h > 8*1e-8+1e-15 {
			t.Fatalf("step %d exceeded MaxStep: %g", i, h)
		}
	}
	if math.Abs(sum-2e-5) > 1e-12 {
		t.Fatalf("adaptive steps sum to %g", sum)
	}
}

func TestTrapezoidalSecondOrder(t *testing.T) {
	// The trapezoidal rule is second order on smooth problems. A sine-
	// driven RC from a consistent DC start has the analytic solution
	// v(t) = (ωτ·e^{-t/τ} − ωτ·cos ωt + sin ωt)/(1+ω²τ²).
	const (
		r    = 1e3
		c    = 1e-7
		tau  = r * c
		freq = 1e3
		tEnd = 5e-4
	)
	omega := 2 * math.Pi * freq
	analytic := func(tm float64) float64 {
		wt := omega * tau
		return (wt*math.Exp(-tm/tau) - wt*math.Cos(omega*tm) + math.Sin(omega*tm)) / (1 + wt*wt)
	}
	errAt := func(h float64) float64 {
		b := circuit.NewBuilder()
		b.AddVSource("vin", "in", "0", device.Sin{VA: 1, Freq: freq})
		b.AddResistor("r1", "in", "out", r)
		b.AddCapacitor("c1", "out", "0", c)
		ckt, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out, _ := b.NodeIndex("out")
		res, err := Run(ckt, Options{TStop: tEnd, TStep: h, Method: MethodTrap})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.States[len(res.States)-1][out] - analytic(tEnd))
	}
	e1 := errAt(2e-6)
	e2 := errAt(1e-6)
	ratio := e1 / e2
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("error ratio %g (e1=%g e2=%g), want ≈4 for second order", ratio, e1, e2)
	}
}

func TestTrapMoreAccurateThanBE(t *testing.T) {
	run := func(m Method) float64 {
		b := circuit.NewBuilder()
		b.AddVSource("vin", "in", "0", device.Sin{VA: 1, Freq: 1e3})
		b.AddResistor("r1", "in", "out", 1e3)
		b.AddCapacitor("c1", "out", "0", 1e-7)
		ckt, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out, _ := b.NodeIndex("out")
		res, err := Run(ckt, Options{TStop: 1e-3, TStep: 1e-5, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		// Analytic steady-state for the driven RC at t=1ms (full period):
		// compare both methods against a very fine BE reference instead.
		ref, err := Run(ckt, Options{TStop: 1e-3, TStep: 1e-7})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.States[len(res.States)-1][out] - ref.States[len(ref.States)-1][out])
	}
	be := run(MethodBE)
	tr := run(MethodTrap)
	if tr >= be {
		t.Fatalf("trapezoidal error %g not below BE %g", tr, be)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	b := circuit.NewBuilder()
	b.AddVSource("v", "a", "0", device.DC(1))
	b.AddResistor("r", "a", "0", 1e3)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ckt, Options{TStop: 1e-6, TStep: 1e-7, Method: "rk4"}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

// TestStepCostHook pins the capture-side sampling contract of
// Options.StepCost: one callback per accepted integration step (never the
// DC point — it prices differently than a recomputation), in step order,
// with a positive wall-time sample, independent of whether telemetry is on.
func TestStepCostHook(t *testing.T) {
	ckt, _ := buildRC(t, 1e3, 1e-6)
	var steps []int
	res, err := Run(ckt, Options{
		TStop: 1e-4, TStep: 1e-5,
		StepCost: func(step int, d time.Duration) {
			if d <= 0 {
				t.Fatalf("step %d: non-positive cost sample %v", step, d)
			}
			steps = append(steps, step)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != res.Steps() {
		t.Fatalf("StepCost fired %d times, want %d accepted steps", len(steps), res.Steps())
	}
	for i, s := range steps {
		if s != i+1 {
			t.Fatalf("StepCost steps = %v, want 1..%d in order", steps, res.Steps())
		}
	}
}
