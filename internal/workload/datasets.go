package workload

import (
	"fmt"
	"math"

	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// Table2Names lists the seven compression datasets of the paper's Table 2,
// in paper order.
func Table2Names() []string {
	return []string{"add20", "smult20", "mem_plus", "MOS_T5", "MOS_T7", "MOS_T8", "MOS_T10"}
}

// Table1Names lists the circuits of the paper's Table 1 (a size ladder of
// BJT designs plus MOS and RC workloads).
func Table1Names() []string {
	return []string{
		"CHIP_01", "CHIP_02", "CHIP_03", "CHIP_04", "CHIP_05",
		"CHIP_06", "CHIP_07", "CHIP_08", "CHIP_09",
		"ram2k", "smult20", "RC_01", "RC_02",
	}
}

// scaleInt scales a base count, keeping a sane minimum.
func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// scaleSide scales a 2-D grid side by √scale so element counts track scale.
func scaleSide(base int, scale float64, min int) int {
	v := int(float64(base) * math.Sqrt(scale))
	if v < min {
		v = min
	}
	return v
}

// Build constructs a named dataset at the given scale. Scale 1 is the
// benchmark size (seconds to minutes per simulation on a laptop); tests use
// much smaller scales. Unknown names are an error.
func Build(name string, scale float64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	// ---- Table 2 compression datasets -------------------------------
	case "add20":
		return DiodeNet(name, scaleInt(800, scale, 24), scaleInt(1500, scale, 12), 8, 40, 20)
	case "smult20":
		s := scaleSide(22, scale, 3)
		return MOSArray(name, s, s, scaleInt(400, scale, 10), 12, 50)
	case "mem_plus":
		return MOSRam(name, scaleSide(36, scale, 3), scaleSide(26, scale, 3), scaleInt(400, scale, 10), 12, 40)
	case "MOS_T5":
		s := scaleSide(32, scale, 3)
		return MOSArray(name, s, s, scaleInt(250, scale, 10), 10, 40)
	case "MOS_T7":
		return MOSRam(name, scaleSide(28, scale, 3), scaleSide(20, scale, 3), scaleInt(900, scale, 12), 10, 40)
	case "MOS_T8":
		s := scaleSide(27, scale, 3)
		return MOSArray(name, s, s, scaleInt(500, scale, 10), 10, 40)
	case "MOS_T10":
		return MOSRam(name, scaleSide(32, scale, 3), scaleSide(22, scale, 3), scaleInt(700, scale, 12), 10, 40)

	// ---- Table 1 timing circuits ------------------------------------
	case "CHIP_01":
		return BJTChain(name, scaleInt(30, scale, 2), scaleInt(350, scale, 10), 8, 30)
	case "CHIP_02":
		return BJTChain(name, scaleInt(45, scale, 2), scaleInt(500, scale, 10), 12, 40)
	case "CHIP_03":
		return BJTChain(name, scaleInt(75, scale, 2), scaleInt(280, scale, 10), 21, 60)
	case "CHIP_04":
		return BJTChain(name, scaleInt(100, scale, 2), scaleInt(160, scale, 10), 27, 70)
	case "CHIP_05":
		return BJTChain(name, scaleInt(125, scale, 2), scaleInt(120, scale, 10), 32, 80)
	case "CHIP_06":
		return BJTChain(name, scaleInt(160, scale, 2), scaleInt(60, scale, 10), 30, 80)
	case "CHIP_07":
		return BJTChain(name, scaleInt(200, scale, 2), scaleInt(260, scale, 10), 38, 100)
	case "CHIP_08":
		return BJTChain(name, scaleInt(250, scale, 2), scaleInt(350, scale, 10), 40, 110)
	case "CHIP_09":
		return BJTChain(name, scaleInt(280, scale, 2), scaleInt(660, scale, 10), 48, 130)
	case "ram2k":
		return MOSRam(name, scaleSide(16, scale, 2), scaleSide(12, scale, 2), scaleInt(250, scale, 10), 12, 30)
	case "RC_01":
		s := scaleSide(24, scale, 3)
		return RCMesh(name, s, s, scaleInt(520, scale, 10), 20, 40)
	case "RC_02":
		return RCLadder(name, scaleInt(700, scale, 10), scaleInt(220, scale, 10), 20, 40)

	// ---- extra families (not in the paper's tables) -------------------
	case "ringosc":
		return RingOscillator(name, scaleInt(15, scale, 3), scaleInt(800, scale, 20), 5, 20)
	case "adder":
		return AdderArray(name, scaleInt(20, scale, 2), scaleInt(600, scale, 20), 8, 30)
	default:
		return nil, fmt.Errorf("workload: unknown dataset %q", name)
	}
}

// CaptureInto returns the dataset's transient options with the Jacobian
// tensor capture wired into store.
func (d *Dataset) CaptureInto(store jactensor.Store) transient.Options {
	opt := d.Tran
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		if err := store.Put(step, J.Val, C.Val); err != nil {
			return fmt.Errorf("workload: tensor capture: %w", err)
		}
		return nil
	}
	return opt
}

// RunForward simulates the dataset, capturing the tensor into store (which
// may be nil for a plain run). EndForward is called on success.
func (d *Dataset) RunForward(store jactensor.Store) (*transient.Result, error) {
	opt := d.Tran
	if store != nil {
		opt = d.CaptureInto(store)
	}
	res, err := transient.Run(d.Ckt, opt)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", d.Name, err)
	}
	if store != nil {
		if err := store.EndForward(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// CSRBytes returns the paper's S_CSR for this dataset's tensor over the
// given number of steps: per step, 8 bytes per nonzero plus 4-byte row/col
// indices (stored once per step in the naive accounting the paper uses).
func (d *Dataset) CSRBytes(steps int) int64 {
	jnnz := int64(d.Ckt.JPat.NNZ())
	cnnz := int64(d.Ckt.CPat.NNZ())
	perStep := 8*(jnnz+cnnz) + // values
		4*(jnnz+cnnz) + // column indices
		4*int64(d.Ckt.JPat.N+1) + 4*int64(d.Ckt.CPat.N+1) // row pointers
	return perStep * int64(steps)
}

// NZBytes returns the paper's S_NZ: the value payload alone.
func (d *Dataset) NZBytes(steps int) int64 {
	return 8 * int64(d.Ckt.JPat.NNZ()+d.Ckt.CPat.NNZ()) * int64(steps)
}
