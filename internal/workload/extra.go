package workload

import (
	"fmt"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/transient"
)

// ExtraNames lists additional workload families beyond the paper's tables:
// a MOS ring oscillator (autonomous, continuously active — the worst case
// for temporal prediction) and a ripple-carry adder array (the namesake of
// the original add20 benchmark).
func ExtraNames() []string {
	return []string{"ringosc", "adder"}
}

// RingOscillator builds an odd-length chain of resistor-load NMOS
// inverters closed into a loop. It self-oscillates: every Jacobian entry
// moves at every timestep.
func RingOscillator(name string, stages, steps, nObj, nPar int) (*Dataset, error) {
	if stages%2 == 0 {
		stages++
	}
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(3))
	// A kick-start pulse breaks the symmetric (metastable) DC point.
	b.AddISource("ikick", node("g", 0), "0", device.Pulse{
		V1: 0, V2: 2e-4, TD: 1e-10, TR: 1e-11, TF: 1e-11, PW: 3e-10, PE: 1,
	})
	for s := 0; s < stages; s++ {
		in := node("g", (s+stages-1)%stages)
		out := node("g", s)
		b.AddResistor(fmt.Sprintf("rl%d", s), "vdd", out, 12e3)
		m := b.AddMOSFET(fmt.Sprintf("m%d", s), out, in, "0")
		m.KP = 8e-4
		b.AddCapacitor(fmt.Sprintf("cl%d", s), out, "0", 5e-14)
	}
	tran := transient.Options{TStop: float64(steps) * 2e-10, TStep: 2e-10}
	return finish(name, "MOS", b, tran, nObj, nPar)
}

// AdderArray builds a diode-logic ripple "adder": each bit cell combines
// two pulse inputs and a carry through diode AND/OR networks with an RC
// restoring stage — an irregular nonlinear network in the add20 spirit.
func AdderArray(name string, bits, steps, nObj, nPar int) (*Dataset, error) {
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(5))
	for i := 0; i < bits; i++ {
		b.AddVSource(fmt.Sprintf("va%d", i), node("a", i), "0", device.Pulse{
			V1: 0, V2: 5, TD: float64(i) * 3e-9, TR: 3e-10, TF: 3e-10,
			PW: float64(2+i%3) * 4e-9, PE: float64(bits) * 6e-9,
		})
		b.AddVSource(fmt.Sprintf("vb%d", i), node("b", i), "0", device.Pulse{
			V1: 0, V2: 5, TD: float64(i) * 5e-9, TR: 3e-10, TF: 3e-10,
			PW: float64(3+i%2) * 4e-9, PE: float64(bits) * 7e-9,
		})
	}
	carry := "0"
	for i := 0; i < bits; i++ {
		sum := node("s", i)
		cNext := node("c", i)
		// Diode-OR of the inputs into the sum node with an RC restorer.
		b.AddDiode(fmt.Sprintf("dsa%d", i), node("a", i), sum)
		b.AddDiode(fmt.Sprintf("dsb%d", i), node("b", i), sum)
		if carry != "0" {
			b.AddDiode(fmt.Sprintf("dsc%d", i), carry, sum)
		}
		b.AddResistor(fmt.Sprintf("rs%d", i), sum, "0", 4.7e3)
		b.AddCapacitor(fmt.Sprintf("cs%d", i), sum, "0", 2e-13)
		// Carry generation: diode-AND through a pull-up.
		b.AddResistor(fmt.Sprintf("rc%d", i), "vdd", cNext, 10e3)
		b.AddDiode(fmt.Sprintf("dca%d", i), cNext, node("a", i))
		b.AddDiode(fmt.Sprintf("dcb%d", i), cNext, node("b", i))
		b.AddCapacitor(fmt.Sprintf("cc%d", i), cNext, "0", 1.5e-13)
		carry = cNext
	}
	tran := transient.Options{TStop: float64(steps) * 2e-10, TStep: 2e-10}
	return finish(name, "DIODE", b, tran, nObj, nPar)
}
