// Package workload generates the benchmark circuits of the MASC
// reproduction. The paper evaluates on proprietary BJT chips, MOS
// RAM/multiplier netlists and RC parasitic networks; this package builds
// open synthetic circuits of the same device classes and topology families,
// scaled so that a laptop regenerates every table and figure in minutes.
// Every dataset is produced "from an actual simulation": the tensors come
// out of transient.Run on these circuits, never from synthetic value
// streams.
package workload

import (
	"fmt"
	"math/rand"

	"masc/internal/adjoint"
	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/transient"
)

// Dataset is a ready-to-simulate benchmark circuit.
type Dataset struct {
	Name string
	Kind string // "BJT", "MOS", "RC", "DIODE"
	Ckt  *circuit.Circuit
	Bld  *circuit.Builder
	Tran transient.Options
	// Objectives for sensitivity analysis (the paper's #Obj).
	Objectives []adjoint.Objective
	// Params is the analyzed parameter subset (the paper's #Param).
	Params []int
	// Elems is the circuit element count (the paper's #CirElem).
	Elems int
}

// node constructs a stable node name.
func node(parts ...interface{}) string {
	s := "n"
	for _, p := range parts {
		s += fmt.Sprintf("_%v", p)
	}
	return s
}

// pickObjectives selects count spread-out node unknowns as objectives,
// anchored at time points spread across the run — the "objective functions
// associated to many time points" workload of the paper's Table 1.
func pickObjectives(ckt *circuit.Circuit, count, steps int) []adjoint.Objective {
	if count > ckt.N {
		count = ckt.N
	}
	objs := make([]adjoint.Objective, 0, count)
	for i := 0; i < count; i++ {
		n := int32(i * ckt.N / count)
		objs = append(objs, adjoint.Objective{
			Name:   ckt.Names[n],
			Node:   n,
			Weight: 1,
			Step:   (i + 1) * steps / count, // spread over the trajectory
		})
	}
	return objs
}

// pickParams selects count evenly spaced parameters.
func pickParams(ckt *circuit.Circuit, count int) []int {
	total := len(ckt.Params())
	if count >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, count)
	for i := range out {
		out[i] = i * total / count
	}
	return out
}

// finish assembles a Dataset from a built circuit.
func finish(name, kind string, b *circuit.Builder, tran transient.Options, nObj, nPar int) (*Dataset, error) {
	ckt, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	steps := int(tran.TStop/tran.TStep + 0.5)
	return &Dataset{
		Name:       name,
		Kind:       kind,
		Ckt:        ckt,
		Bld:        b,
		Tran:       tran,
		Objectives: pickObjectives(ckt, nObj, steps),
		Params:     pickParams(ckt, nPar),
		Elems:      len(ckt.Devices),
	}, nil
}

// RCLadder builds an n-stage RC transmission-line ladder driven by a pulse:
// the RC_01/RC_02 analogue (parasitic network extraction output).
func RCLadder(name string, n, steps, nObj, nPar int) (*Dataset, error) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", node(0), "0", device.Pulse{V1: 0, V2: 1, TD: 0, TR: 1e-9, PW: 1, PE: 2})
	for i := 0; i < n; i++ {
		b.AddResistor(fmt.Sprintf("r%d", i), node(i), node(i+1), 10+float64(i%7))
		b.AddCapacitor(fmt.Sprintf("c%d", i), node(i+1), "0", 1e-12*(1+0.3*float64(i%5)))
	}
	tran := transient.Options{TStop: float64(steps) * 2e-11, TStep: 2e-11}
	return finish(name, "RC", b, tran, nObj, nPar)
}

// RCMesh builds a rows×cols resistor grid with node capacitors — a 2-D
// parasitic mesh with interesting LU fill.
func RCMesh(name string, rows, cols, steps, nObj, nPar int) (*Dataset, error) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", node(0, 0), "0", device.Pulse{V1: 0, V2: 1, TD: 0, TR: 1e-9, PW: 1, PE: 2})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddResistor(fmt.Sprintf("rh%d_%d", r, c), node(r, c), node(r, c+1), 20+float64((r+c)%9))
			}
			if r+1 < rows {
				b.AddResistor(fmt.Sprintf("rv%d_%d", r, c), node(r, c), node(r+1, c), 20+float64((r*3+c)%9))
			}
			b.AddCapacitor(fmt.Sprintf("c%d_%d", r, c), node(r, c), "0", 1e-13*(1+0.2*float64((r+2*c)%7)))
		}
	}
	tran := transient.Options{TStop: float64(steps) * 5e-12, TStep: 5e-12}
	return finish(name, "RC", b, tran, nObj, nPar)
}

// DiodeNet builds a random conductance network with diode loads — the
// add20 analogue (an irregular nonlinear circuit matrix).
func DiodeNet(name string, n, steps, nObj, nPar int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	// Real netlists draw component values from a handful of catalog
	// values; that value repetition is part of what the paper's
	// compressors exploit.
	rSeries := []float64{100, 220, 470, 1000}
	cSeries := []float64{1e-12, 2.2e-12, 4.7e-12}
	b := circuit.NewBuilder()
	b.AddVSource("vin1", node(0), "0", device.Sin{VA: 2, Freq: 1e6})
	b.AddVSource("vin2", node(n/2), "0", device.Sin{VA: 1.5, Freq: 1.7e6})
	for i := 0; i < n; i++ {
		b.AddResistor(fmt.Sprintf("rr%d", i), node(i), node((i+1)%n), rSeries[rng.Intn(len(rSeries))])
		if i%4 == 0 {
			j := rng.Intn(n)
			if j != i {
				b.AddResistor(fmt.Sprintf("rc%d", i), node(i), node(j), 10*rSeries[rng.Intn(len(rSeries))])
			}
		}
		if i%3 == 0 {
			// Floating junctions (between internal nodes) give the diode
			// stamp its full 4-entry reciprocal pattern — the structure
			// the stamp-based spatial predictor exploits.
			b.AddDiode(fmt.Sprintf("d%d", i), node(i), node((i+5)%n))
		}
		if i%2 == 0 {
			b.AddCapacitor(fmt.Sprintf("cc%d", i), node(i), "0", cSeries[rng.Intn(len(cSeries))])
		}
	}
	tran := transient.Options{TStop: float64(steps) * 2e-9, TStep: 2e-9}
	return finish(name, "DIODE", b, tran, nObj, nPar)
}

// BJTChain builds a cascade of common-emitter amplifier stages — the
// CHIP_xx analogue (large bipolar designs).
func BJTChain(name string, stages, steps, nObj, nPar int) (*Dataset, error) {
	rng := rand.New(rand.NewSource(int64(stages)*3_000_017 + 7))
	b := circuit.NewBuilder()
	b.AddVSource("vcc", "vcc", "0", device.DC(9))
	b.AddVSource("vin", node("in"), "0", device.Sin{VA: 0.02, Freq: 2e6})
	// Stages are grouped into independent two-stage blocks, each driven
	// from the common input: a long open cascade would have ~gain^stages
	// loop transmission, which no real chip (and no Newton solver) has.
	prev := node("in")
	for s := 0; s < stages; s++ {
		base := node("b", s)
		col := node("c", s)
		em := node("e", s)
		if s%2 == 0 {
			prev = node("in")
			// Attenuated drive into each block keeps its output in the
			// active region.
			b.AddResistor(fmt.Sprintf("rs%d", s), prev, node("bb", s), disperse(rng, 47e3, 0.03))
			prev = node("bb", s)
		}
		b.AddCapacitor(fmt.Sprintf("cc%d", s), prev, base, disperse(rng, 1e-9, 0.03))
		b.AddResistor(fmt.Sprintf("rb1_%d", s), "vcc", base, disperse(rng, 68e3, 0.03))
		b.AddResistor(fmt.Sprintf("rb2_%d", s), base, "0", disperse(rng, 12e3, 0.03))
		b.AddResistor(fmt.Sprintf("rc%d", s), "vcc", col, disperse(rng, 3.3e3, 0.03))
		b.AddResistor(fmt.Sprintf("re%d", s), em, "0", disperse(rng, 680, 0.03))
		b.AddCapacitor(fmt.Sprintf("ce%d", s), em, "0", disperse(rng, 1e-8, 0.03))
		q := b.AddBJT(fmt.Sprintf("q%d", s), col, base, em)
		q.Is = disperse(rng, 1e-16, 0.05)
		q.BF = disperse(rng, 100, 0.05)
		q.CJE = disperse(rng, q.CJE, 0.03)
		q.CJC = disperse(rng, q.CJC, 0.03)
		// Weak lateral tie between neighbouring blocks keeps the matrix
		// irreducible without creating a gain path.
		if s >= 2 && s%2 == 0 {
			b.AddResistor(fmt.Sprintf("rt%d", s), node("c", s-2), col, disperse(rng, 1e6, 0.03))
		}
		prev = col
	}
	tran := transient.Options{TStop: float64(steps) * 5e-9, TStep: 5e-9}
	return finish(name, "BJT", b, tran, nObj, nPar)
}

// disperse applies a static per-device "process variation" factor. Real
// extracted netlists have no two bit-identical element values; this is what
// keeps byte-level dictionary compressors (gzip) from trivially deduplicating
// whole matrices while leaving the temporal structure untouched.
func disperse(rng *rand.Rand, v, sigma float64) float64 {
	return v * (1 + sigma*rng.NormFloat64())
}

// MOSRam builds a rows×cols array of 1T1C cells with pulsed word lines —
// the ram2k / mem_plus analogue.
func MOSRam(name string, rows, cols, steps, nObj, nPar int) (*Dataset, error) {
	rng := rand.New(rand.NewSource(int64(rows)*1_000_003 + int64(cols)))
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(3))
	for r := 0; r < rows; r++ {
		// One word line is active at a time, like a real access pattern:
		// the rest of the array idles and its Jacobian entries freeze —
		// the localized-activity structure MASC's temporal model exploits.
		b.AddVSource(fmt.Sprintf("vwl%d", r), node("wl", r), "0", device.Pulse{
			V1: 0, V2: 3,
			TD: float64(r) * 6e-9, TR: 5e-10, TF: 5e-10,
			PW: 4e-9, PE: float64(rows) * 6e-9,
		})
	}
	for c := 0; c < cols; c++ {
		b.AddResistor(fmt.Sprintf("rbl%d", c), "vdd", node("bl", c), disperse(rng, 10e3, 0.03))
		b.AddCapacitor(fmt.Sprintf("cbl%d", c), node("bl", c), "0", disperse(rng, 5e-14, 0.03))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := node("s", r, c)
			m := b.AddMOSFET(fmt.Sprintf("m%d_%d", r, c), node("bl", c), node("wl", r), cell)
			m.KP = disperse(rng, 4e-4, 0.05)
			m.VTO = disperse(rng, 0.7, 0.02)
			m.CGS = disperse(rng, m.CGS, 0.03)
			m.CGD = disperse(rng, m.CGD, 0.03)
			b.AddCapacitor(fmt.Sprintf("cs%d_%d", r, c), cell, "0", disperse(rng, 2e-14, 0.03))
		}
	}
	tran := transient.Options{TStop: float64(steps) * 1e-10, TStep: 1e-10}
	return finish(name, "MOS", b, tran, nObj, nPar)
}

// MOSArray builds a grid of resistor-load NMOS inverters with row-to-row
// ripple — the smult20 / MOS_Tx analogue (dense switching logic).
func MOSArray(name string, rows, cols, steps, nObj, nPar int) (*Dataset, error) {
	rng := rand.New(rand.NewSource(int64(rows)*2_000_003 + int64(cols)))
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(3))
	for c := 0; c < cols; c++ {
		// Only a few columns toggle; the rest hold a DC level. Activity
		// then propagates as a localized wave through the rows, as in a
		// real arithmetic array where most of the logic is idle per cycle.
		if c%4 == 0 {
			b.AddVSource(fmt.Sprintf("vin%d", c), node("in", c), "0", device.Pulse{
				V1: 0, V2: 3,
				TD: float64(c) * 4e-9, TR: 3e-10, TF: 3e-10,
				PW: 3e-9, PE: float64(cols) * 5e-9,
			})
		} else {
			b.AddVSource(fmt.Sprintf("vin%d", c), node("in", c), "0", device.DC(float64(c%2)*3))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Two-deep ripple blocks: even rows are driven by the column
			// inputs, odd rows by the row above. Deeper DC cascades of
			// high-gain inverters are numerically (and physically)
			// degenerate — real arrays re-buffer every couple of stages.
			in := node("g", r-1, c)
			if r%2 == 0 {
				in = node("in", c)
			}
			out := node("g", r, c)
			b.AddResistor(fmt.Sprintf("rl%d_%d", r, c), "vdd", out, disperse(rng, 15e3, 0.03))
			m := b.AddMOSFET(fmt.Sprintf("m%d_%d", r, c), out, in, "0")
			m.KP = disperse(rng, 6e-4, 0.05)
			m.VTO = disperse(rng, 0.7, 0.02)
			m.CGS = disperse(rng, m.CGS, 0.03)
			m.CGD = disperse(rng, m.CGD, 0.03)
			b.AddCapacitor(fmt.Sprintf("cl%d_%d", r, c), out, "0", disperse(rng, 3e-14, 0.03))
			// Weak lateral coupling keeps columns interacting.
			if c+1 < cols {
				b.AddResistor(fmt.Sprintf("rx%d_%d", r, c), out, node("g", r, c+1), disperse(rng, 120e3, 0.03))
			}
		}
	}
	tran := transient.Options{TStop: float64(steps) * 1e-10, TStep: 1e-10}
	return finish(name, "MOS", b, tran, nObj, nPar)
}
