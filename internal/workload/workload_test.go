package workload

import (
	"math"
	"testing"

	"masc/internal/adjoint"
	"masc/internal/jactensor"
)

func TestAllDatasetsBuildAndSimulate(t *testing.T) {
	names := append(Table2Names(), Table1Names()...)
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := Build(name, 0.04)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Elems == 0 || len(ds.Objectives) == 0 || len(ds.Params) == 0 {
				t.Fatalf("degenerate dataset: %+v", ds)
			}
			store := jactensor.NewMemStore()
			res, err := ds.RunForward(store)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps() < 5 {
				t.Fatalf("only %d steps simulated", res.Steps())
			}
			for _, x := range res.States[len(res.States)-1] {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatal("non-finite final state")
				}
			}
			if store.Stats().Steps != res.Steps()+1 {
				t.Fatalf("captured %d tensor steps for %d transient steps",
					store.Stats().Steps, res.Steps())
			}
			if ds.CSRBytes(res.Steps()) <= ds.NZBytes(res.Steps()) {
				t.Fatal("S_CSR must exceed S_NZ")
			}
		})
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	if _, err := Build("nope", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestScaleChangesSize(t *testing.T) {
	small, err := Build("add20", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build("add20", 0.12)
	if err != nil {
		t.Fatal(err)
	}
	if big.Elems <= small.Elems {
		t.Fatalf("scaling up did not grow the circuit: %d vs %d", big.Elems, small.Elems)
	}
}

// TestDatasetSensitivityPipeline smoke-tests the full pipeline on one
// dataset: simulate, capture, adjoint over the captured tensor, and check
// against the recompute source.
func TestDatasetSensitivityPipeline(t *testing.T) {
	ds, err := Build("CHIP_01", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	store := jactensor.NewMemStore()
	res, err := ds.RunForward(store)
	if err != nil {
		t.Fatal(err)
	}
	objs := ds.Objectives[:2]
	opt := adjoint.Options{Params: ds.Params[:5]}
	a1, err := adjoint.Sensitivities(ds.Ckt, res, store, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := adjoint.Sensitivities(ds.Ckt, res, adjoint.NewRecomputeSource(ds.Ckt, res), objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for o := range a1.DOdp {
		for k := range a1.DOdp[o] {
			d := math.Abs(a1.DOdp[o][k] - a2.DOdp[o][k])
			if d > 1e-9*math.Max(1, math.Abs(a2.DOdp[o][k])) {
				t.Fatalf("stored vs recompute mismatch at obj %d param %d", o, k)
			}
		}
	}
}

func TestExtraWorkloads(t *testing.T) {
	for _, name := range ExtraNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := Build(name, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			store := jactensor.NewMemStore()
			res, err := ds.RunForward(store)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps() < 10 {
				t.Fatalf("only %d steps", res.Steps())
			}
			for _, x := range res.States[len(res.States)-1] {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatal("non-finite state")
				}
			}
		})
	}
}

func TestRingOscillatorActuallyOscillates(t *testing.T) {
	ds, err := Build("ringosc", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.RunForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count rail-to-rail transitions of one inverter output in the second
	// half of the run.
	node, err2 := ds.Bld.NodeIndex("n_g_1")
	if err2 != nil {
		t.Fatal(err2)
	}
	crossings := 0
	mid := 1.5
	for i := len(res.States)/2 + 1; i < len(res.States); i++ {
		a := res.States[i-1][node] - mid
		b := res.States[i][node] - mid
		if a*b < 0 {
			crossings++
		}
	}
	if crossings < 4 {
		t.Fatalf("ring oscillator has %d mid-rail crossings, want ≥4", crossings)
	}
}
