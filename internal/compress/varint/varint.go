// Package varint implements the shared-indices compression path of MASC:
// delta encoding of monotone (or per-row monotone) integer index arrays
// followed by unsigned LEB128 variable-length byte codes. It is used to
// compress the CSR row-pointer and column-index arrays that all Jacobian
// matrices of a simulation share.
package varint

import (
	"encoding/binary"
	"fmt"
)

// AppendUvarint appends the LEB128 encoding of v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// zigzag maps signed deltas to unsigned codes, small magnitudes first.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeDeltas compresses a slice of int32 values by zigzag-coding the
// difference between consecutive elements. The first element is coded as a
// delta from zero. It returns the encoded bytes appended to dst.
func EncodeDeltas(dst []byte, xs []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	prev := int64(0)
	for _, x := range xs {
		dst = binary.AppendUvarint(dst, zigzag(int64(x)-prev))
		prev = int64(x)
	}
	return dst
}

// DecodeDeltas reverses EncodeDeltas. It returns the decoded slice and the
// number of bytes consumed.
func DecodeDeltas(src []byte) ([]int32, int, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, 0, fmt.Errorf("varint: bad length header")
	}
	off := k
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		u, k := binary.Uvarint(src[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("varint: truncated stream at element %d", i)
		}
		off += k
		prev += unzigzag(u)
		out[i] = int32(prev)
	}
	return out, off, nil
}

// EncodeCSRIndices compresses a CSR index pair (rowPtr, colIdx).
// Row pointers are monotone, so consecutive deltas are the per-row counts;
// column indices restart their delta chain at each row (columns within a row
// are sorted ascending), which keeps every delta small and non-negative.
func EncodeCSRIndices(rowPtr, colIdx []int32) []byte {
	dst := make([]byte, 0, len(rowPtr)+len(colIdx))
	dst = binary.AppendUvarint(dst, uint64(len(rowPtr)))
	prev := int32(0)
	for _, p := range rowPtr {
		dst = binary.AppendUvarint(dst, uint64(p-prev))
		prev = p
	}
	dst = binary.AppendUvarint(dst, uint64(len(colIdx)))
	nrows := len(rowPtr) - 1
	for r := 0; r < nrows; r++ {
		prevCol := int64(0)
		for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
			c := int64(colIdx[k])
			dst = binary.AppendUvarint(dst, zigzag(c-prevCol))
			prevCol = c
		}
	}
	return dst
}

// DecodeCSRIndices reverses EncodeCSRIndices.
func DecodeCSRIndices(src []byte) (rowPtr, colIdx []int32, err error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("varint: bad rowPtr length")
	}
	off := k
	rowPtr = make([]int32, n)
	prev := int32(0)
	for i := range rowPtr {
		u, k := binary.Uvarint(src[off:])
		if k <= 0 {
			return nil, nil, fmt.Errorf("varint: truncated rowPtr at %d", i)
		}
		off += k
		prev += int32(u)
		rowPtr[i] = prev
	}
	m, k := binary.Uvarint(src[off:])
	if k <= 0 {
		return nil, nil, fmt.Errorf("varint: bad colIdx length")
	}
	off += k
	colIdx = make([]int32, m)
	if len(rowPtr) == 0 {
		if m != 0 {
			return nil, nil, fmt.Errorf("varint: colIdx without rows")
		}
		return rowPtr, colIdx, nil
	}
	nrows := len(rowPtr) - 1
	idx := 0
	for r := 0; r < nrows; r++ {
		prevCol := int64(0)
		for cnt := rowPtr[r+1] - rowPtr[r]; cnt > 0; cnt-- {
			if idx >= len(colIdx) {
				return nil, nil, fmt.Errorf("varint: rowPtr/colIdx length mismatch")
			}
			u, k := binary.Uvarint(src[off:])
			if k <= 0 {
				return nil, nil, fmt.Errorf("varint: truncated colIdx at %d", idx)
			}
			off += k
			prevCol += unzigzag(u)
			colIdx[idx] = int32(prevCol)
			idx++
		}
	}
	if idx != len(colIdx) {
		return nil, nil, fmt.Errorf("varint: decoded %d column indices, header said %d", idx, len(colIdx))
	}
	return rowPtr, colIdx, nil
}
