package varint

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeltasRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{},
		{0},
		{5},
		{-3},
		{1, 2, 3, 4, 5},
		{100, 50, 200, -7, 0},
		{1 << 30, -(1 << 30), 0},
	}
	for i, xs := range cases {
		enc := EncodeDeltas(nil, xs)
		got, n, err := DecodeDeltas(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if len(xs) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, xs) {
			t.Fatalf("case %d: got %v, want %v", i, got, xs)
		}
	}
}

func TestDeltasQuick(t *testing.T) {
	f := func(xs []int32) bool {
		enc := EncodeDeltas(nil, xs)
		got, _, err := DecodeDeltas(enc)
		if err != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomCSR(rng *rand.Rand, nrows, maxCols int) (rowPtr, colIdx []int32) {
	rowPtr = make([]int32, nrows+1)
	for r := 0; r < nrows; r++ {
		ncols := rng.Intn(maxCols + 1)
		seen := map[int32]bool{}
		var cols []int32
		for len(cols) < ncols {
			c := int32(rng.Intn(maxCols * 4))
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		colIdx = append(colIdx, cols...)
		rowPtr[r+1] = rowPtr[r] + int32(len(cols))
	}
	return rowPtr, colIdx
}

func TestCSRIndicesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		nrows := rng.Intn(50)
		rowPtr, colIdx := randomCSR(rng, nrows, 30)
		enc := EncodeCSRIndices(rowPtr, colIdx)
		gotRP, gotCI, err := DecodeCSRIndices(enc)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(gotRP, rowPtr) {
			t.Fatalf("iter %d: rowPtr mismatch", iter)
		}
		if len(gotCI) != len(colIdx) {
			t.Fatalf("iter %d: colIdx length %d want %d", iter, len(gotCI), len(colIdx))
		}
		for i := range colIdx {
			if gotCI[i] != colIdx[i] {
				t.Fatalf("iter %d: colIdx[%d] = %d want %d", iter, i, gotCI[i], colIdx[i])
			}
		}
	}
}

func TestCSRIndicesEmpty(t *testing.T) {
	enc := EncodeCSRIndices([]int32{0}, nil)
	rp, ci, err := DecodeCSRIndices(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp) != 1 || rp[0] != 0 || len(ci) != 0 {
		t.Fatalf("got rowPtr=%v colIdx=%v", rp, ci)
	}
}

func TestCSRIndicesCompressionRatio(t *testing.T) {
	// A banded pattern should compress far below the raw 4 bytes/index.
	nrows := 1000
	rowPtr := make([]int32, nrows+1)
	var colIdx []int32
	for r := 0; r < nrows; r++ {
		for d := -2; d <= 2; d++ {
			c := r + d
			if c >= 0 && c < nrows {
				colIdx = append(colIdx, int32(c))
			}
		}
		rowPtr[r+1] = int32(len(colIdx))
	}
	enc := EncodeCSRIndices(rowPtr, colIdx)
	raw := 4 * (len(rowPtr) + len(colIdx))
	if len(enc)*2 > raw {
		t.Fatalf("banded CSR indices barely compressed: %d of %d raw bytes", len(enc), raw)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDeltas(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	enc := EncodeDeltas(nil, []int32{1, 2, 3})
	if _, _, err := DecodeDeltas(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected error on truncated input")
	}
	if _, _, err := DecodeCSRIndices(nil); err == nil {
		t.Fatal("expected error on empty CSR input")
	}
	full := EncodeCSRIndices([]int32{0, 2, 3}, []int32{0, 1, 2})
	if _, _, err := DecodeCSRIndices(full[:len(full)-1]); err == nil {
		t.Fatal("expected error on truncated CSR input")
	}
}
