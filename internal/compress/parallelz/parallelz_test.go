package parallelz

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/chimpz"
	"masc/internal/compress/codectest"
	"masc/internal/compress/fpzipz"
	"masc/internal/compress/gzipz"
)

func factories() map[string]func() compress.Compressor {
	return map[string]func() compress.Compressor{
		"gzip":  func() compress.Compressor { return gzipz.New() },
		"fpzip": func() compress.Compressor { return fpzipz.New() },
		"chimp": func() compress.Compressor { return chimpz.NewTemporal() },
	}
}

func TestConformanceAllInners(t *testing.T) {
	for name, mk := range factories() {
		for _, w := range []int{1, 2, 4, 7} {
			c := New(mk, w)
			t.Run(c.Name(), func(t *testing.T) {
				codectest.RunLossless(t, c)
				codectest.RunAppend(t, c)
			})
		}
		_ = name
	}
}

func TestCrossWorkerDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 5000)
	ref := make([]float64, 5000)
	for i := range vals {
		ref[i] = rng.NormFloat64()
		vals[i] = ref[i] * (1 + 1e-9*rng.NormFloat64())
	}
	enc := New(func() compress.Compressor { return chimpz.NewTemporal() }, 5)
	blob := enc.Compress(nil, vals, ref)
	// A decoder configured with a different worker count must still work:
	// the chunk layout travels in the blob.
	dec := New(func() compress.Compressor { return chimpz.NewTemporal() }, 2)
	got := make([]float64, len(vals))
	if err := dec.Decompress(got, blob, ref); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	// A zero-length value array must round-trip cleanly through every
	// inner codec: the blob carries zero chunks instead of a degenerate
	// empty chunk.
	for name, mk := range factories() {
		for _, vals := range [][]float64{nil, {}} {
			c := New(mk, 3)
			blob := c.Compress(nil, vals, nil)
			if len(blob) == 0 {
				t.Fatalf("%s: empty input produced empty blob (no header)", name)
			}
			if err := c.Decompress(nil, blob, nil); err != nil {
				t.Fatalf("%s: decompress empty: %v", name, err)
			}
			// An empty blob header must reject a non-empty destination.
			got := make([]float64, 4)
			if err := c.Decompress(got, blob, nil); err == nil {
				t.Fatalf("%s: empty blob accepted for 4-value destination", name)
			}
		}
	}
}

func TestCorruptBlobs(t *testing.T) {
	c := New(func() compress.Compressor { return gzipz.New() }, 3)
	vals := []float64{1, 2, 3, 4, 5, 6}
	blob := c.Compress(nil, vals, nil)
	got := make([]float64, len(vals))
	if err := c.Decompress(got, nil, nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
	if err := c.Decompress(got[:2], blob, nil); err == nil {
		t.Fatal("expected error on wrong length")
	}
	if err := c.Decompress(got, blob[:4], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
}

func TestNameAndLosslessPropagate(t *testing.T) {
	c := New(func() compress.Compressor { return gzipz.New() }, 4)
	if c.Name() != "parallel(gzip,4)" {
		t.Fatalf("name = %q", c.Name())
	}
	if !c.Lossless() {
		t.Fatal("gzip wrapper must report lossless")
	}
}
