package parallelz

import (
	"encoding/binary"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
	"masc/internal/compress/gzipz"
)

func TestConformanceMatrix(t *testing.T) {
	for _, w := range []int{1, 3} {
		codectest.RunMatrix(t, codectest.Config{
			New: func() compress.Compressor {
				return New(func() compress.Compressor { return gzipz.New() }, w)
			},
		})
	}
}

// FuzzDecompress feeds arbitrary bytes to the chunk-header parser: corrupt
// counts and lengths must be rejected before any inner decode can slice
// past the blob.
func FuzzDecompress(f *testing.F) {
	c := New(func() compress.Compressor { return gzipz.New() }, 3)
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	// 64 values in 2^40 chunks.
	huge := binary.AppendUvarint(nil, 64)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 64} {
			out := make([]float64, n)
			_ = New(func() compress.Compressor { return gzipz.New() }, 3).Decompress(out, blob, nil)
		}
	})
}
