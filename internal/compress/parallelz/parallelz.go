// Package parallelz wraps any pattern-free codec with chunk parallelism:
// the value array is split into contiguous chunks compressed by independent
// goroutines, mirroring the OpenMP parallelization of the paper's §6.4 for
// the baseline codecs. (MASC itself parallelizes internally with
// row-aligned chunks; this wrapper is for stream codecs like gzip, fpzip
// or chimp whose state simply restarts per chunk.)
package parallelz

import (
	"encoding/binary"
	"fmt"

	"masc/internal/compress"
	"masc/internal/compress/workpool"
)

// Compressor implements compress.Compressor by fanning out to an inner
// codec factory. A factory (rather than a shared instance) keeps per-chunk
// state isolated without demanding thread safety from the inner codec.
type Compressor struct {
	newInner func() compress.Compressor
	workers  int
	name     string
	lossless bool
}

// New wraps the codec produced by factory with `workers`-way chunking.
func New(factory func() compress.Compressor, workers int) *Compressor {
	if workers < 1 {
		workers = 1
	}
	probe := factory()
	return &Compressor{
		newInner: factory,
		workers:  workers,
		name:     fmt.Sprintf("parallel(%s,%d)", probe.Name(), workers),
		lossless: probe.Lossless(),
	}
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return c.name }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return c.lossless }

// bounds returns the w-way chunk boundaries for n values.
func bounds(n, w int) []int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	b := make([]int, w+1)
	for i := 0; i <= w; i++ {
		b[i] = i * n / w
	}
	return b
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	if len(cur) == 0 {
		// An empty value array gets a bare header (zero chunks) rather
		// than one degenerate zero-length chunk, so the round trip is
		// well-defined for every inner codec.
		dst = binary.AppendUvarint(dst, 0)
		dst = binary.AppendUvarint(dst, 0)
		return dst
	}
	bounds := bounds(len(cur), c.workers)
	nchunks := len(bounds) - 1
	payloads := make([][]byte, nchunks)
	workpool.Do(nchunks, func(i int) {
		lo, hi := bounds[i], bounds[i+1]
		var r []float64
		if ref != nil {
			r = ref[lo:hi]
		}
		payloads[i] = c.newInner().Compress(nil, cur[lo:hi], r)
	})
	dst = binary.AppendUvarint(dst, uint64(len(cur)))
	dst = binary.AppendUvarint(dst, uint64(nchunks))
	for _, p := range payloads {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
	}
	for _, p := range payloads {
		dst = append(dst, p...)
	}
	return dst
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	if ref != nil && len(ref) != len(cur) {
		return fmt.Errorf("parallelz: reference holds %d values, want %d", len(ref), len(cur))
	}
	n64, k := binary.Uvarint(blob)
	if k <= 0 {
		return fmt.Errorf("parallelz: bad header")
	}
	off := k
	if int(n64) != len(cur) {
		return fmt.Errorf("parallelz: blob holds %d values, want %d", n64, len(cur))
	}
	nc64, k := binary.Uvarint(blob[off:])
	if k <= 0 {
		return fmt.Errorf("parallelz: bad chunk count")
	}
	off += k
	nchunks := int(nc64)
	if len(cur) == 0 {
		if nchunks != 0 {
			return fmt.Errorf("parallelz: %d chunks for empty value array", nchunks)
		}
		return nil
	}
	if nchunks < 1 || nchunks > len(cur)+1 {
		return fmt.Errorf("parallelz: implausible chunk count %d", nchunks)
	}
	lens := make([]int, nchunks)
	for i := range lens {
		l, k := binary.Uvarint(blob[off:])
		if k <= 0 {
			return fmt.Errorf("parallelz: bad chunk length %d", i)
		}
		if l > uint64(len(blob)) {
			return fmt.Errorf("parallelz: chunk %d length %d exceeds blob", i, l)
		}
		off += k
		lens[i] = int(l)
	}
	starts := make([]int, nchunks)
	for i := range lens {
		starts[i] = off
		off += lens[i]
		if off > len(blob) {
			return fmt.Errorf("parallelz: truncated payload")
		}
	}
	// The encoder's chunk count is authoritative from the blob.
	bounds := bounds(len(cur), nchunks)
	if len(bounds)-1 != nchunks {
		return fmt.Errorf("parallelz: chunk layout mismatch")
	}
	errs := make([]error, nchunks)
	workpool.Do(nchunks, func(i int) {
		lo, hi := bounds[i], bounds[i+1]
		var r []float64
		if ref != nil {
			r = ref[lo:hi]
		}
		errs[i] = c.newInner().Decompress(cur[lo:hi], blob[starts[i]:starts[i]+lens[i]], r)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parallelz: chunk %d: %w", i, err)
		}
	}
	return nil
}
