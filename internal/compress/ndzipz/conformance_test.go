package ndzipz

import (
	"encoding/binary"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

// FuzzDecompress feeds arbitrary bytes to the block/bitmap decoder: bitmaps
// promising more nonzero words than the blob holds must error, not read
// past the end.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	// All-ones bitmap with no payload behind it.
	full := binary.LittleEndian.AppendUint64(nil, ^uint64(0))
	f.Add(full)
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 63, 64, 65, 130} {
			out := make([]float64, n)
			_ = New().Decompress(out, blob, nil)
		}
	})
}
