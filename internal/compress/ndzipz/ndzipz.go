// Package ndzipz is an NDZIP-family baseline (Knorr et al., DCC'21): an
// integer-Lorenzo transform (XOR with the previous element), bit
// transposition of 64-value blocks (a 64×64 bit-matrix transpose), and
// zero-word run suppression via a per-block bitmap. NDZIP targets
// grid-structured HPC data; on sparse-Jacobian value streams its shuffle
// rarely produces zero words, reproducing the paper's CR ≈ 1 result.
package ndzipz

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compressor implements compress.Compressor.
type Compressor struct{}

// New returns an NDZIP-like codec.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "ndzip" }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

const blockVals = 64

// transpose64 transposes a 64×64 bit matrix in place
// (Hacker's Delight §7-3, block-swap form).
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := 0; k < 64; k = ((k | int(j)) + 1) &^ int(j) {
			t := (a[k] ^ (a[k|int(j)] >> j)) & m
			a[k] ^= t
			a[k|int(j)] ^= t << j
		}
		// The mask for the next (halved) block size.
		m ^= m << (j >> 1)
	}
}

// Compress implements compress.Compressor. ref is ignored.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	var prev uint64
	var blk [64]uint64
	n := len(cur)
	for base := 0; base < n; base += blockVals {
		m := n - base
		if m > blockVals {
			m = blockVals
		}
		for i := 0; i < m; i++ {
			b := math.Float64bits(cur[base+i])
			blk[i] = b ^ prev
			prev = b
		}
		for i := m; i < blockVals; i++ {
			blk[i] = 0
		}
		transpose64(&blk)
		// Bitmap of nonzero words followed by the nonzero words.
		var bitmap uint64
		for i, w := range blk {
			if w != 0 {
				bitmap |= 1 << uint(i)
			}
		}
		dst = binary.LittleEndian.AppendUint64(dst, bitmap)
		for _, w := range blk {
			if w != 0 {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	}
	return dst
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	var prev uint64
	var blk [64]uint64
	off := 0
	n := len(cur)
	for base := 0; base < n; base += blockVals {
		if off+8 > len(blob) {
			return fmt.Errorf("ndzipz: truncated bitmap at element %d", base)
		}
		bitmap := binary.LittleEndian.Uint64(blob[off:])
		off += 8
		for i := 0; i < blockVals; i++ {
			if bitmap&(1<<uint(i)) != 0 {
				if off+8 > len(blob) {
					return fmt.Errorf("ndzipz: truncated word at element %d", base)
				}
				blk[i] = binary.LittleEndian.Uint64(blob[off:])
				off += 8
			} else {
				blk[i] = 0
			}
		}
		transpose64(&blk)
		m := n - base
		if m > blockVals {
			m = blockVals
		}
		for i := 0; i < m; i++ {
			b := blk[i] ^ prev
			prev = b
			cur[base+i] = math.Float64frombits(b)
		}
	}
	return nil
}
