package ndzipz

import (
	"math/rand"
	"testing"

	"masc/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	b = a
	transpose64(&b)
	// Spot-check the transpose property: bit (i,j) of b equals (j,i) of a.
	for i := 0; i < 64; i += 7 {
		for j := 0; j < 64; j += 5 {
			orig := (a[i] >> uint(63-j)) & 1
			tr := (b[j] >> uint(63-i)) & 1
			if orig != tr {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	transpose64(&b)
	if a != b {
		t.Fatal("transpose is not an involution")
	}
}

func TestConstantBlockShrinks(t *testing.T) {
	// A constant stream XORs to zero after the first value: the shuffle
	// produces mostly zero words, so blocks collapse to their bitmaps.
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 7.5
	}
	blob := New().Compress(nil, vals, nil)
	if len(blob)*4 > 8*len(vals) {
		t.Fatalf("constant stream compressed to %d of %d bytes", len(blob), 8*len(vals))
	}
}

func TestTruncatedBlob(t *testing.T) {
	c := New()
	blob := c.Compress(nil, []float64{1, 2, 3, 4}, nil)
	got := make([]float64, 4)
	if err := c.Decompress(got, blob[:4], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
	if err := c.Decompress(got, nil, nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
}
