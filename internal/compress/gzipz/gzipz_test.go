package gzipz

import (
	"testing"

	"masc/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	got := make([]float64, 4)
	if err := c.Decompress(got, []byte{1, 2, 3}, nil); err == nil {
		t.Fatal("expected error on garbage blob")
	}
	blob := c.Compress(nil, []float64{1, 2}, nil)
	if err := c.Decompress(got, blob, nil); err == nil {
		t.Fatal("expected error when blob holds fewer values than requested")
	}
}

func TestRepeatedDataCompresses(t *testing.T) {
	c := New()
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 3.25
	}
	blob := c.Compress(nil, vals, nil)
	if len(blob)*20 > 8*len(vals) {
		t.Fatalf("constant array compressed to %d of %d bytes", len(blob), 8*len(vals))
	}
}
