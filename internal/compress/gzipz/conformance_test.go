package gzipz

import (
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

// FuzzDecompress feeds arbitrary bytes to the gzip wrapper — the stdlib
// flate machinery does the parsing, but the wrapper's length handling and
// error paths are ours.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	f.Add([]byte{0x1F, 0x8B, 0x08, 0x00}) // truncated gzip header
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 64} {
			out := make([]float64, n)
			_ = New().Decompress(out, blob, nil)
		}
	})
}
