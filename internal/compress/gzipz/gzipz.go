// Package gzipz wraps the standard library's DEFLATE (gzip) as a baseline
// compressor over the raw little-endian bytes of the value array — the
// paper's general-purpose GZIP reference point.
package gzipz

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"masc/internal/compress"
)

// Compressor implements compress.Compressor with stdlib gzip.
type Compressor struct {
	// Level is the gzip compression level; 0 means gzip.DefaultCompression.
	Level int
}

// New returns a gzip codec at the default level.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "gzip" }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

// Fork returns an independent decoder instance for window-local store
// slices. The codec is stateless (every blob is self-contained), so a copy
// at the same level suffices.
func (c *Compressor) Fork() compress.Compressor {
	cp := *c
	return &cp
}

// Compress implements compress.Compressor. ref is ignored: classic gzip
// sees only the raw byte stream.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	raw := make([]byte, 8*len(cur))
	for i, v := range cur {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	var buf bytes.Buffer
	level := c.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		panic(err) // invalid level is a programming error
	}
	if _, err := w.Write(raw); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return append(dst, buf.Bytes()...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	r, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("gzipz: %w", err)
	}
	raw := make([]byte, 8*len(cur))
	if _, err := io.ReadFull(r, raw); err != nil {
		return fmt.Errorf("gzipz: short payload: %w", err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("gzipz: %w", err)
	}
	for i := range cur {
		cur[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return nil
}
