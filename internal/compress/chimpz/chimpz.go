// Package chimpz is a Gorilla/Chimp-family streaming XOR codec: each value
// is XORed with its predecessor in the stream and the residual encoded with
// a leading-zero window. It represents the time-series-database lineage the
// MASC paper builds on (Chimp, VLDB'22) but, applied to a matrix value
// stream, sees only 1-D spatial correlation.
package chimpz

import (
	"fmt"
	"math"
	"math/bits"

	"masc/internal/compress/bitstream"
)

// Compressor implements compress.Compressor.
type Compressor struct {
	// UseRef, when set, XORs against the reference matrix (temporal
	// predecessor) instead of the stream predecessor — the "temporal
	// Chimp" variant used in ablation studies.
	UseRef bool
}

// New returns the stream-predecessor variant.
func New() *Compressor { return &Compressor{} }

// NewTemporal returns the reference-matrix variant.
func NewTemporal() *Compressor { return &Compressor{UseRef: true} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string {
	if c.UseRef {
		return "chimp-temporal"
	}
	return "chimp"
}

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

// predecessor returns the prediction bits for element i.
func (c *Compressor) predecessor(i int, prev uint64, ref []float64) uint64 {
	if c.UseRef && ref != nil {
		return math.Float64bits(ref[i])
	}
	return prev
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	w := bitstream.NewWriter(len(cur))
	var prev uint64
	var winLZ, winLen uint
	for i, v := range cur {
		vb := math.Float64bits(v)
		x := vb ^ c.predecessor(i, prev, ref)
		prev = vb
		if x == 0 {
			w.WriteBit(0)
			continue
		}
		lz := uint(bits.LeadingZeros64(x))
		if lz > 31 {
			lz = 31
		}
		tz := uint(bits.TrailingZeros64(x))
		if winLen > 0 && lz >= winLZ && tz >= 64-winLZ-winLen {
			w.WriteBits(0b10, 2)
			w.WriteBits(x>>(64-winLZ-winLen), winLen)
			continue
		}
		length := 64 - lz - tz
		w.WriteBits(0b11, 2)
		w.WriteBits(uint64(lz), 5)
		w.WriteBits(uint64(length-1), 6)
		w.WriteBits(x>>tz, length)
		winLZ, winLen = lz, length
	}
	return append(dst, w.Bytes()...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	if c.UseRef && ref != nil && len(ref) != len(cur) {
		return fmt.Errorf("chimpz: reference holds %d values, want %d", len(ref), len(cur))
	}
	r := bitstream.NewReader(blob)
	var prev uint64
	var winLZ, winLen uint
	for i := range cur {
		pred := c.predecessor(i, prev, ref)
		if r.ReadBit() == 0 {
			prev = pred
			cur[i] = math.Float64frombits(pred)
			continue
		}
		var x uint64
		if r.ReadBit() == 0 { // shared window
			x = r.ReadBits(winLen) << (64 - winLZ - winLen)
		} else {
			lz := uint(r.ReadBits(5))
			length := uint(r.ReadBits(6)) + 1
			x = r.ReadBits(length) << (64 - lz - length)
			winLZ, winLen = lz, length
		}
		vb := pred ^ x
		prev = vb
		cur[i] = math.Float64frombits(vb)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("chimpz: %w", err)
	}
	return nil
}
