package chimpz

import (
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrixStream(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

func TestConformanceMatrixTemporal(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return NewTemporal() },
	})
}

// FuzzDecompress feeds arbitrary bytes to both XOR-decoder variants; with
// and without a reference they must never panic, whatever the bit stream
// claims about window sizes or leading-zero counts.
func FuzzDecompress(f *testing.F) {
	for _, pair := range codectest.Sequences(99) {
		f.Add(New().Compress(nil, pair[0], pair[1]))
		f.Add(NewTemporal().Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, blob []byte) {
		out := make([]float64, 64)
		ref := make([]float64, 64)
		_ = New().Decompress(out, blob, nil)
		_ = NewTemporal().Decompress(out, blob, ref)
		_ = NewTemporal().Decompress(out, blob, nil)
	})
}
