package chimpz

import (
	"math"
	"testing"

	"masc/internal/compress/codectest"
)

func TestConformanceStream(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestConformanceTemporal(t *testing.T) {
	codectest.RunLossless(t, NewTemporal())
	codectest.RunAppend(t, NewTemporal())
}

func TestTemporalBeatsStreamOnSmoothTensor(t *testing.T) {
	// When consecutive matrices are nearly identical, the temporal variant
	// should produce a much smaller stream than the spatial one.
	n := 2048
	ref := make([]float64, n)
	cur := make([]float64, n)
	for i := range ref {
		ref[i] = math.Sin(float64(i)) * 1e3 * float64(1+i%17)
		cur[i] = ref[i]
	}
	for i := 0; i < n/100; i++ {
		cur[i*97%n] *= 1 + 1e-12
	}
	st := len(New().Compress(nil, cur, ref))
	tp := len(NewTemporal().Compress(nil, cur, ref))
	if tp*2 > st {
		t.Fatalf("temporal %d bytes not clearly smaller than stream %d bytes", tp, st)
	}
}

func TestTruncatedBlob(t *testing.T) {
	c := New()
	blob := c.Compress(nil, []float64{1.5, 2.5, 3.5, math.Pi}, nil)
	got := make([]float64, 4)
	if err := c.Decompress(got, blob[:1], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
}
