// Package codectest provides the conformance harness shared by every codec
// package's tests: bit-exact roundtrips for lossless codecs, bounded-error
// roundtrips for lossy ones, on data shaped like real Jacobian tensors.
package codectest

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/compress"
)

// Sequences returns a family of test value sequences: (current, reference)
// pairs with the temporal/spatial structure the codecs are designed around.
func Sequences(seed int64) [][2][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][2][]float64
	add := func(cur, ref []float64) {
		out = append(out, [2][]float64{cur, ref})
	}
	// Smooth temporally correlated pair.
	n := 512
	ref := make([]float64, n)
	cur := make([]float64, n)
	for i := range ref {
		ref[i] = math.Sin(float64(i)/7) * math.Exp(float64(i%13))
		cur[i] = ref[i] * (1 + 1e-9*rng.NormFloat64())
	}
	add(cur, ref)
	// Identical pair (fully static tensor).
	same := make([]float64, n)
	copy(same, ref)
	add(same, ref)
	// No reference.
	add(append([]float64(nil), cur...), nil)
	// Random white noise (incompressible).
	noisy := make([]float64, 200)
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
	add(noisy, nil)
	// Special values.
	specials := []float64{0, math.Copysign(0, -1), 1, -1,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.MaxFloat64}
	add(append([]float64(nil), specials...), nil)
	// Tiny arrays.
	add([]float64{42}, nil)
	add([]float64{}, nil)
	return out
}

// RunLossless verifies bit-exact roundtrips over all Sequences.
func RunLossless(t *testing.T, c compress.Compressor) {
	t.Helper()
	if !c.Lossless() {
		t.Fatalf("%s does not claim losslessness", c.Name())
	}
	for si, pair := range Sequences(1234) {
		cur, ref := pair[0], pair[1]
		blob := c.Compress(nil, cur, ref)
		got := make([]float64, len(cur))
		if err := c.Decompress(got, blob, ref); err != nil {
			t.Fatalf("%s: sequence %d: decompress: %v", c.Name(), si, err)
		}
		for i := range cur {
			if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
				t.Fatalf("%s: sequence %d: value %d: got %x, want %x",
					c.Name(), si, i, math.Float64bits(got[i]), math.Float64bits(cur[i]))
			}
		}
	}
}

// RunLossy verifies roundtrips within a relative error bound.
func RunLossy(t *testing.T, c compress.Compressor, relTol float64) {
	t.Helper()
	for si, pair := range Sequences(99) {
		cur, ref := pair[0], pair[1]
		blob := c.Compress(nil, cur, ref)
		got := make([]float64, len(cur))
		if err := c.Decompress(got, blob, ref); err != nil {
			t.Fatalf("%s: sequence %d: decompress: %v", c.Name(), si, err)
		}
		for i := range cur {
			w := cur[i]
			g := got[i]
			if math.IsNaN(w) {
				if !math.IsNaN(g) {
					t.Fatalf("%s: sequence %d: NaN not preserved", c.Name(), si)
				}
				continue
			}
			if math.IsInf(w, 0) {
				if g != w {
					t.Fatalf("%s: sequence %d: Inf not preserved", c.Name(), si)
				}
				continue
			}
			err := math.Abs(g - w)
			if err > relTol*math.Abs(w)+1e-300 {
				t.Fatalf("%s: sequence %d: value %d: %g vs %g exceeds rel %g",
					c.Name(), si, i, g, w, relTol)
			}
		}
	}
}

// RunAppend checks that Compress truly appends to dst.
func RunAppend(t *testing.T, c compress.Compressor) {
	t.Helper()
	cur := []float64{1, 2, 3, 4}
	prefix := []byte{0xAA, 0xBB}
	out := c.Compress(append([]byte(nil), prefix...), cur, nil)
	if len(out) <= len(prefix) || out[0] != 0xAA || out[1] != 0xBB {
		t.Fatalf("%s: Compress does not append to dst", c.Name())
	}
	got := make([]float64, len(cur))
	if err := c.Decompress(got, out[len(prefix):], nil); err != nil {
		t.Fatalf("%s: decompress after append: %v", c.Name(), err)
	}
}
