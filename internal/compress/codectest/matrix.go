package codectest

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"masc/internal/compress"
)

// Config describes one codec's conformance profile for RunMatrix. The
// factory form (rather than a shared instance) lets the matrix verify that
// encoding is a pure function of the input — two fresh instances must emit
// identical bytes — and keeps stateful codecs from leaking calibration
// across probes.
type Config struct {
	// New returns a fresh codec instance.
	New func() compress.Compressor
	// FixedLen, when > 0, pins every generated sequence to exactly that
	// element count — for pattern-bound codecs (masczip) whose value-array
	// length is fixed by construction. The variable-length and empty-input
	// probes are skipped.
	FixedLen int
	// RelTol, when > 0, runs the lossy roundtrip contract with this
	// relative bound instead of requiring bit-exactness. NaN and ±Inf must
	// still be preserved exactly.
	RelTol float64
}

// matrixSequences returns the (cur, ref) pairs the matrix probes exercise.
// With fixedLen > 0 every pair has exactly that many elements.
func matrixSequences(seed int64, fixedLen int) [][2][]float64 {
	if fixedLen <= 0 {
		seqs := Sequences(seed)
		// Denormal-heavy sequence: gradual-underflow bit patterns stress
		// mantissa-oriented predictors differently from normals.
		rng := rand.New(rand.NewSource(seed + 1))
		den := make([]float64, 300)
		for i := range den {
			den[i] = math.Float64frombits(uint64(rng.Int63()) & ((1 << 52) - 1))
			if i%3 == 0 {
				den[i] = -den[i]
			}
		}
		return append(seqs, [2][]float64{den, nil})
	}
	rng := rand.New(rand.NewSource(seed))
	var out [][2][]float64
	mk := func(fill func(i int) (c, r float64), withRef bool) {
		cur := make([]float64, fixedLen)
		ref := make([]float64, fixedLen)
		for i := range cur {
			cur[i], ref[i] = fill(i)
		}
		if !withRef {
			ref = nil
		}
		out = append(out, [2][]float64{cur, ref})
	}
	// Smooth temporally correlated pair.
	mk(func(i int) (float64, float64) {
		r := math.Sin(float64(i)/7) * math.Exp(float64(i%13))
		return r * (1 + 1e-9*rng.NormFloat64()), r
	}, true)
	// Fully static tensor.
	mk(func(i int) (float64, float64) {
		v := math.Cos(float64(i)) * 1e3
		return v, v
	}, true)
	// No reference.
	mk(func(i int) (float64, float64) {
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20)), 0
	}, false)
	// Specials scattered through an otherwise smooth tensor.
	specials := []float64{0, math.Copysign(0, -1),
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.MaxFloat64}
	mk(func(i int) (float64, float64) {
		r := float64(i) * 0.25
		c := r
		if i%5 == 0 {
			c = specials[(i/5)%len(specials)]
		}
		return c, r
	}, true)
	return out
}

// checkRoundtrip asserts the decode of blob matches cur under the profile's
// loss contract.
func checkRoundtrip(t *testing.T, cfg Config, label string, cur, ref []float64, blob []byte) {
	t.Helper()
	c := cfg.New()
	got := make([]float64, len(cur))
	if err := c.Decompress(got, blob, ref); err != nil {
		t.Fatalf("%s: %s: decompress: %v", c.Name(), label, err)
	}
	for i := range cur {
		w, g := cur[i], got[i]
		if cfg.RelTol == 0 {
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: %s: value %d: got %x, want %x",
					c.Name(), label, i, math.Float64bits(g), math.Float64bits(w))
			}
			continue
		}
		switch {
		case math.IsNaN(w):
			if !math.IsNaN(g) {
				t.Fatalf("%s: %s: value %d: NaN not preserved", c.Name(), label, i)
			}
		case math.IsInf(w, 0):
			if g != w {
				t.Fatalf("%s: %s: value %d: Inf not preserved", c.Name(), label, i)
			}
		default:
			if math.Abs(g-w) > cfg.RelTol*math.Abs(w)+1e-300 {
				t.Fatalf("%s: %s: value %d: %g vs %g exceeds rel %g",
					c.Name(), label, i, g, w, cfg.RelTol)
			}
		}
	}
}

// decodeMustNotPanic runs one Decompress call, converting a panic into a
// test failure. Decoders face attacker-controlled bytes (blobs come off
// disk); whatever the input, the only acceptable outcomes are an error or
// garbage values.
func decodeMustNotPanic(t *testing.T, c compress.Compressor, cur []float64, blob []byte, ref []float64, label string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: %s: decoder panicked: %v", c.Name(), label, r)
		}
	}()
	_ = c.Decompress(cur, blob, ref)
}

// RunMatrix runs the full codec conformance matrix: roundtrips under the
// loss contract, empty input, special values, reference-length mismatches,
// truncated and corrupted blobs, and encode determinism.
func RunMatrix(t *testing.T, cfg Config) {
	t.Helper()
	probe := cfg.New()
	if cfg.RelTol == 0 && !probe.Lossless() {
		t.Fatalf("%s: lossy codec needs Config.RelTol", probe.Name())
	}
	if cfg.RelTol > 0 && probe.Lossless() {
		t.Fatalf("%s: lossless codec must not set Config.RelTol", probe.Name())
	}
	seqs := matrixSequences(4321, cfg.FixedLen)

	t.Run("Roundtrip", func(t *testing.T) {
		for _, pair := range seqs {
			cur, ref := pair[0], pair[1]
			blob := cfg.New().Compress(nil, cur, ref)
			checkRoundtrip(t, cfg, "roundtrip", cur, ref, blob)
		}
	})

	if cfg.FixedLen <= 0 {
		t.Run("Empty", func(t *testing.T) {
			c := cfg.New()
			blob := c.Compress(nil, nil, nil)
			if err := c.Decompress(nil, blob, nil); err != nil {
				t.Fatalf("%s: empty roundtrip: %v", c.Name(), err)
			}
			// Decoding an empty blob into an empty array must also hold:
			// a zero-step store legitimately produces zero bytes.
			decodeMustNotPanic(t, cfg.New(), nil, nil, nil, "nil blob")
		})
	}

	t.Run("RefLenMismatch", func(t *testing.T) {
		pair := seqs[0]
		cur, ref := pair[0], pair[1]
		if ref == nil {
			ref = make([]float64, len(cur))
		}
		blob := cfg.New().Compress(nil, cur, ref)
		out := make([]float64, len(cur))
		// Short, long, and nil references: none may panic the decoder.
		if len(ref) > 1 {
			decodeMustNotPanic(t, cfg.New(), out, blob, ref[:len(ref)/2], "short ref")
		}
		long := make([]float64, len(ref)+7)
		copy(long, ref)
		decodeMustNotPanic(t, cfg.New(), out, blob, long, "long ref")
		decodeMustNotPanic(t, cfg.New(), out, blob, nil, "nil ref")
	})

	t.Run("Truncated", func(t *testing.T) {
		for _, pair := range seqs {
			cur, ref := pair[0], pair[1]
			blob := cfg.New().Compress(nil, cur, ref)
			out := make([]float64, len(cur))
			// Every prefix: exhaustively for short blobs, strided for long.
			stride := 1
			if len(blob) > 256 {
				stride = len(blob) / 256
			}
			for k := 0; k < len(blob); k += stride {
				decodeMustNotPanic(t, cfg.New(), out, blob[:k], ref, "truncated blob")
			}
		}
	})

	t.Run("Corrupt", func(t *testing.T) {
		rng := rand.New(rand.NewSource(777))
		for _, pair := range seqs {
			cur, ref := pair[0], pair[1]
			blob := cfg.New().Compress(nil, cur, ref)
			if len(blob) == 0 {
				continue
			}
			out := make([]float64, len(cur))
			// Single-byte corruptions at random offsets, plus header bytes
			// forced to extremes (length fields and flags live up front).
			for trial := 0; trial < 64; trial++ {
				mut := append([]byte(nil), blob...)
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				decodeMustNotPanic(t, cfg.New(), out, mut, ref, "corrupt blob")
			}
			for k := 0; k < len(blob) && k < 12; k++ {
				for _, v := range []byte{0x00, 0x7F, 0x80, 0xFF} {
					mut := append([]byte(nil), blob...)
					mut[k] = v
					decodeMustNotPanic(t, cfg.New(), out, mut, ref, "corrupt header")
				}
			}
		}
	})

	t.Run("Determinism", func(t *testing.T) {
		for si, pair := range seqs {
			cur, ref := pair[0], pair[1]
			a := cfg.New().Compress(nil, cur, ref)
			b := cfg.New().Compress(nil, cur, ref)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: sequence %d: two fresh instances emitted different bytes (%d vs %d)",
					probe.Name(), si, len(a), len(b))
			}
			// The same instance must also be history-independent for the
			// first call after construction — and appending to a prefix
			// must not change the emitted suffix.
			withPrefix := cfg.New().Compress([]byte{0xA5, 0x5A}, cur, ref)
			if !bytes.Equal(withPrefix[2:], a) {
				t.Fatalf("%s: sequence %d: dst prefix changed the encoding", probe.Name(), si)
			}
		}
	})
}
