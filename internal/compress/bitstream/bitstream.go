// Package bitstream implements MSB-first bit-granular writers and readers
// used by the residual coders. The writer accumulates bits into a 64-bit
// register and spills whole bytes; the reader mirrors the layout exactly, so
// a stream produced by Writer is consumed bit-for-bit by Reader.
package bitstream

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// ErrOverrun is reported by Reader when a read extends past the end of the
// underlying buffer.
var ErrOverrun = errors.New("bitstream: read past end of stream")

// Writer appends bits MSB-first to a growing byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf   []byte
	acc   uint64 // pending bits, left-aligned within the low `n` bits
	n     uint   // number of pending bits in acc (0..7 after spill)
	total int    // total bits written
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Reset discards all written bits, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
	w.total = 0
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint64) {
	w.total++
	w.acc = w.acc<<1 | b&1
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.n = 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
//
// The hot path is word-parallel: after topping off any partial byte, whole
// bytes of v are appended directly (a single 8-byte store for full-word
// writes) instead of being threaded through the accumulator bit by bit.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.total += int(n)
	if w.n != 0 {
		space := 8 - w.n // bits until the current byte completes
		if n < space {
			w.acc = w.acc<<n | v
			w.n += n
			return
		}
		n -= space
		w.buf = append(w.buf, byte(w.acc<<space|v>>n))
		w.acc = 0
		w.n = 0
	}
	// Byte-aligned from here: spill whole bytes straight from v.
	if n == 64 {
		w.buf = binary.BigEndian.AppendUint64(w.buf, v)
		return
	}
	for n >= 8 {
		n -= 8
		w.buf = append(w.buf, byte(v>>n))
	}
	if n > 0 {
		w.acc = v & ((1 << n) - 1)
		w.n = n
	}
}

// WriteOnes appends n '1' bits as word-parallel writes: a run of exact
// temporal hits in the residual coder becomes a handful of 8-byte stores
// instead of n accumulator round-trips.
func (w *Writer) WriteOnes(n int) {
	for ; n >= 64; n -= 64 {
		w.WriteBits(^uint64(0), 64)
	}
	if n > 0 {
		w.WriteBits(^uint64(0), uint(n))
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return w.total }

// Bytes returns the encoded stream, padding the final partial byte with
// zero bits. The returned slice aliases the Writer's buffer until the next
// Write or Reset.
func (w *Writer) Bytes() []byte {
	if w.n == 0 {
		return w.buf
	}
	pad := 8 - w.n
	last := byte(w.acc << pad)
	return append(w.buf, last)
}

// AppendTo appends the encoded stream (including the zero-padded final
// partial byte) to dst and returns the extended slice. Unlike Bytes it
// never touches the Writer's own buffer, so the result cannot alias
// subsequently written data — the copy into dst is the only one made,
// which is what lets callers reuse one Writer per chunk across calls
// without a defensive payload copy.
func (w *Writer) AppendTo(dst []byte) []byte {
	dst = append(dst, w.buf...)
	if w.n != 0 {
		dst = append(dst, byte(w.acc<<(8-w.n)))
	}
	return dst
}

// Len reports the length in bytes of the stream Bytes would return.
func (w *Writer) Len() int { return (w.total + 7) / 8 }

// Reader consumes bits MSB-first from a byte buffer.
type Reader struct {
	buf   []byte
	pos   int    // next byte index
	acc   uint64 // buffered bits, right-aligned
	n     uint   // number of buffered bits (0..7 between calls)
	err   error
	total int // bits consumed
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset re-points the reader at buf and clears any error.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.acc = 0
	r.n = 0
	r.err = nil
	r.total = 0
}

// Err returns the first overrun error encountered, if any.
func (r *Reader) Err() error { return r.err }

// BitsRead reports the total number of bits consumed.
func (r *Reader) BitsRead() int { return r.total }

// ReadBit reads a single bit, returning 0 or 1.
func (r *Reader) ReadBit() uint64 {
	r.total++
	if r.n == 0 {
		if r.pos >= len(r.buf) {
			r.err = ErrOverrun
			return 0
		}
		r.acc = uint64(r.buf[r.pos])
		r.pos++
		r.n = 8
	}
	r.n--
	bit := r.acc >> r.n
	r.acc &= (1 << r.n) - 1
	return bit
}

// Peek64 returns the next up-to-64 bits of the stream left-aligned in a
// word, without consuming them, plus the number of valid bits. Bits past the
// end of the stream are zero — the same padding Bytes applies to the final
// partial byte on the write side — so callers that extract fields from the
// word see exactly what sequential ReadBit/ReadBits calls would have
// returned (modulo the deferred ErrOverrun, which the eventual Skip or read
// still reports).
func (r *Reader) Peek64() (uint64, uint) {
	w := r.acc << (64 - r.n) // r.n == 0 shifts by 64 and yields 0
	valid := r.n
	pos := r.pos
	if pos+8 <= len(r.buf) {
		// Common case: one 8-byte load tops the window up to 64 bits.
		return w | binary.BigEndian.Uint64(r.buf[pos:])>>valid, 64
	}
	for valid <= 56 && pos < len(r.buf) {
		w |= uint64(r.buf[pos]) << (56 - valid)
		pos++
		valid += 8
	}
	if valid < 64 && pos < len(r.buf) {
		w |= uint64(r.buf[pos]) >> (valid - 56)
		valid = 64
	}
	return w, valid
}

// PeekBits returns the next n bits (n in [0,64]) right-aligned without
// consuming them, zero-padded past the end of the stream.
func (r *Reader) PeekBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	w, _ := r.Peek64()
	return w >> (64 - n)
}

// Skip discards n bits, recording ErrOverrun if the stream ends first.
func (r *Reader) Skip(n uint) {
	r.total += int(n)
	if n <= r.n {
		r.n -= n
		r.acc &= (1 << r.n) - 1
		return
	}
	n -= r.n
	r.acc = 0
	r.n = 0
	whole := int(n / 8)
	if r.pos+whole > len(r.buf) {
		r.pos = len(r.buf)
		r.err = ErrOverrun
		return
	}
	r.pos += whole
	if rem := n % 8; rem != 0 {
		if r.pos >= len(r.buf) {
			r.err = ErrOverrun
			return
		}
		b := uint64(r.buf[r.pos])
		r.pos++
		r.n = 8 - rem
		r.acc = b & ((1 << r.n) - 1)
	}
}

// RunOfOnes counts and consumes a maximal run of '1' bits, at most max. The
// run ends at the first '0' bit (which stays unconsumed) or at the end of
// the stream. A whole word of the run is counted with one
// LeadingZeros64(^w) instead of per-bit reads; zero padding past the end of
// the stream terminates the count, so the run never overruns the buffer.
func (r *Reader) RunOfOnes(max int) int {
	n := 0
	for n < max {
		w, valid := r.Peek64()
		if valid == 0 {
			break
		}
		ones := bits.LeadingZeros64(^w)
		if uint(ones) > valid {
			ones = int(valid)
		}
		if rem := max - n; ones > rem {
			ones = rem
		}
		if ones == 0 {
			break
		}
		r.Skip(uint(ones))
		n += ones
		if uint(ones) < valid {
			break // stopped at a genuine '0' bit within the window
		}
	}
	return n
}

// ReadBits reads n bits (n in [0,64]) MSB-first and returns them
// right-aligned. On overrun it records ErrOverrun and returns the bits that
// were available padded with zeros.
//
// Mirrors WriteBits: drain the partial accumulator, then consume whole
// bytes (a single 8-byte load for aligned full-word reads).
func (r *Reader) ReadBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	r.total += int(n)
	var out uint64
	if r.n != 0 {
		if n <= r.n {
			shift := r.n - n
			out = r.acc >> shift
			r.n = shift
			r.acc &= (1 << shift) - 1
			return out
		}
		out = r.acc
		n -= r.n
		r.acc = 0
		r.n = 0
	}
	// Byte-aligned from here. n == 64 implies the accumulator was empty on
	// entry (n never exceeds 64), so out is still zero.
	if n == 64 && r.pos+8 <= len(r.buf) {
		out = binary.BigEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
		return out
	}
	for n >= 8 {
		if r.pos >= len(r.buf) {
			r.err = ErrOverrun
			return out << n // pad with zeros
		}
		out = out<<8 | uint64(r.buf[r.pos])
		r.pos++
		n -= 8
	}
	if n > 0 {
		if r.pos >= len(r.buf) {
			r.err = ErrOverrun
			return out << n
		}
		b := uint64(r.buf[r.pos])
		r.pos++
		out = out<<n | b>>(8-n)
		r.n = 8 - n
		r.acc = b & ((1 << r.n) - 1)
	}
	return out
}
