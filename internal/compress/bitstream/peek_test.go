package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPeek64(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0x0123456789ABCDEF, 64)
	data := w.Bytes()

	r := NewReader(data)
	word, valid := r.Peek64()
	if valid != 64 {
		t.Fatalf("valid = %d, want 64", valid)
	}
	if want := uint64(0xDEADBEEF)<<32 | 0x01234567; word != want {
		t.Fatalf("word = %#x, want %#x", word, want)
	}
	// Peek must not consume anything.
	if got := r.ReadBits(32); got != 0xDEADBEEF {
		t.Fatalf("ReadBits after Peek64 = %#x", got)
	}
	// Misaligned peek.
	r.ReadBits(4)
	word, valid = r.Peek64()
	if valid != 60 {
		t.Fatalf("valid = %d, want 60", valid)
	}
	if want := uint64(0x123456789ABCDEF) << 4; word != want {
		t.Fatalf("misaligned word = %#x, want %#x", word, want)
	}
}

func TestPeek64PadsPastEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x7, 3)
	r := NewReader(w.Bytes())
	word, valid := r.Peek64()
	if valid != 8 {
		t.Fatalf("valid = %d, want 8 (one padded byte)", valid)
	}
	if word != 0xE0<<56 {
		t.Fatalf("word = %#x, want 0xE0 left-aligned", word)
	}
	r.ReadBits(8)
	if word, valid = r.Peek64(); valid != 0 || word != 0 {
		t.Fatalf("exhausted peek = (%#x, %d), want (0, 0)", word, valid)
	}
}

func TestPeekBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xA5, 8)
	w.WriteBits(0x3C, 8)
	r := NewReader(w.Bytes())
	if got := r.PeekBits(0); got != 0 {
		t.Fatalf("PeekBits(0) = %#x", got)
	}
	if got := r.PeekBits(4); got != 0xA {
		t.Fatalf("PeekBits(4) = %#x, want 0xA", got)
	}
	if got := r.PeekBits(12); got != 0xA53 {
		t.Fatalf("PeekBits(12) = %#x, want 0xA53", got)
	}
	if got := r.ReadBits(16); got != 0xA53C {
		t.Fatalf("stream advanced by PeekBits: ReadBits = %#x", got)
	}
}

// TestSkipMatchesReadBits checks Skip against the reference implementation
// (discarding via ReadBits) for every alignment and width, including
// overruns.
func TestSkipMatchesReadBits(t *testing.T) {
	f := func(seed int64, pre uint8, skip uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(0)
		nbits := rng.Intn(300)
		for i := 0; i < nbits; i++ {
			w.WriteBit(rng.Uint64())
		}
		data := w.Bytes()

		a := NewReader(data)
		b := NewReader(data)
		preBits := uint(pre % 16)
		a.ReadBits(preBits)
		b.ReadBits(preBits)
		n := uint(skip % 512)
		a.Skip(n)
		for rem := n; rem > 0; {
			step := rem
			if step > 64 {
				step = 64
			}
			b.ReadBits(step)
			rem -= step
		}
		if a.BitsRead() != b.BitsRead() {
			return false
		}
		if (a.Err() == nil) != (b.Err() == nil) {
			return false
		}
		// Both readers must agree on everything that follows.
		for i := 0; i < 8; i++ {
			if a.ReadBit() != b.ReadBit() {
				return false
			}
		}
		return (a.Err() == nil) == (b.Err() == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRunOfOnesMatchesScalar checks RunOfOnes against a per-bit reference on
// random streams with long runs.
func TestRunOfOnesMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(0)
		total := 0
		for total < 400 {
			run := rng.Intn(150) + 1
			w.WriteOnes(run)
			w.WriteBit(0)
			total += run + 1
		}
		data := w.Bytes()

		fast := NewReader(data)
		slow := NewReader(data)
		for i := 0; i < 40; i++ {
			max := rng.Intn(200)
			got := fast.RunOfOnes(max)
			// Scalar reference: count '1' bits up to max, stop before the
			// first '0' (re-reading it is impossible scalar-side, so track
			// position by probing a fresh reader each time — instead emulate
			// by reading and remembering the terminator).
			want := 0
			for want < max {
				if slow.PeekBits(1) != 1 || slow.Err() != nil {
					break
				}
				slow.Skip(1)
				want++
			}
			if got != want || fast.BitsRead() != slow.BitsRead() {
				return false
			}
			// Consume the terminator on both, if any stream remains.
			if fast.PeekBits(1) == 0 {
				fast.Skip(1)
				slow.Skip(1)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteOnes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 128, 200} {
		w := NewWriter(0)
		w.WriteBits(0, 3) // misalign
		w.WriteOnes(n)
		w.WriteBit(0)
		r := NewReader(w.Bytes())
		r.ReadBits(3)
		if got := r.RunOfOnes(n + 10); got != n {
			t.Fatalf("WriteOnes(%d): RunOfOnes = %d", n, got)
		}
		if bit := r.ReadBit(); bit != 0 || r.Err() != nil {
			t.Fatalf("WriteOnes(%d): terminator = %d err %v", n, bit, r.Err())
		}
	}
}

// TestPeekSkipAllocsPinnedZero pins the new word-parallel reader paths at
// zero allocations, matching the guarantee of the scalar paths.
func TestPeekSkipAllocsPinnedZero(t *testing.T) {
	w := NewWriter(1 << 16)
	for i := 0; i < 100; i++ {
		w.WriteOnes(50)
		w.WriteBit(0)
		w.WriteBits(uint64(i), 13)
	}
	data := w.Bytes()
	r := NewReader(data)
	if avg := testing.AllocsPerRun(1000, func() {
		r.Reset(data)
		for r.BitsRead() < len(data)*8-64 {
			r.RunOfOnes(64)
			r.Peek64()
			r.Skip(1)
			r.ReadBits(13)
		}
	}); avg != 0 {
		t.Fatalf("peek/skip hot path allocates %.1f per run, want 0", avg)
	}
}

// BenchmarkRunOfOnes measures the word-parallel hit-run path against the
// per-bit loop it replaces.
func BenchmarkRunOfOnes(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 10000; i++ {
		w.WriteOnes(63)
		w.WriteBit(0)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			r.Reset(data)
		}
		r.RunOfOnes(63)
		r.Skip(1)
	}
}
