package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint64{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.BitLen(); got != len(pattern) {
		t.Fatalf("BitLen = %d, want %d", got, len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestWriteBitsAlignment(t *testing.T) {
	// Write widths that straddle byte boundaries in every way.
	widths := []uint{1, 3, 7, 8, 9, 13, 16, 17, 31, 32, 33, 63, 64}
	vals := []uint64{0, 1, 0xA5, 0xFFFF, 0xDEADBEEF, 0x0123456789ABCDEF, ^uint64(0)}
	w := NewWriter(0)
	type rec struct {
		v uint64
		n uint
	}
	var recs []rec
	for _, n := range widths {
		for _, v := range vals {
			masked := v
			if n < 64 {
				masked &= (1 << n) - 1
			}
			w.WriteBits(v, n)
			recs = append(recs, rec{masked, n})
		}
	}
	r := NewReader(w.Bytes())
	for i, rc := range recs {
		if got := r.ReadBits(rc.n); got != rc.v {
			t.Fatalf("record %d (width %d): got %#x, want %#x", i, rc.n, got, rc.v)
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 0)
	if w.BitLen() != 0 {
		t.Fatalf("zero-width write changed BitLen to %d", w.BitLen())
	}
	r := NewReader(nil)
	if got := r.ReadBits(0); got != 0 {
		t.Fatalf("zero-width read = %d", got)
	}
	if r.Err() != nil {
		t.Fatalf("zero-width read errored: %v", r.Err())
	}
}

func TestOverrun(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes())
	r.ReadBits(8) // reads the single padded byte
	r.ReadBits(4) // past the end
	if r.Err() != ErrOverrun {
		t.Fatalf("expected ErrOverrun, got %v", r.Err())
	}
}

func TestPaddingIsZero(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x7, 3)
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len = %d, want 1", len(b))
	}
	if b[0] != 0xE0 {
		t.Fatalf("byte = %#x, want 0xE0 (111 followed by zero padding)", b[0])
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xABCD, 16)
	w.Reset()
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0x5 {
		t.Fatalf("after reset got %#x, want 0x5", got)
	}
	r.Reset(w.Bytes())
	if got := r.ReadBits(3); got != 0x5 {
		t.Fatalf("after reader reset got %#x, want 0x5", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%200) + 1
		type rec struct {
			v uint64
			w uint
		}
		recs := make([]rec, n)
		wtr := NewWriter(0)
		for i := range recs {
			width := uint(rng.Intn(64)) + 1
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			recs[i] = rec{v, width}
			wtr.WriteBits(v, width)
		}
		r := NewReader(wtr.Bytes())
		for _, rc := range recs {
			if r.ReadBits(rc.w) != rc.v {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, uint(i%64)+1)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 100000; i++ {
		w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, uint(i%64)+1)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			r.Reset(data)
		}
		r.ReadBits(uint(i%64) + 1)
	}
}

// TestAllocsPinnedZero pins the hot paths at zero allocations per op (with
// the writer's buffer pre-grown): the codec compresses thousands of
// matrices through one Writer/Reader pair, so any per-call allocation is a
// regression.
func TestAllocsPinnedZero(t *testing.T) {
	w := NewWriter(1 << 16)
	if avg := testing.AllocsPerRun(1000, func() {
		w.Reset()
		for i := 0; i < 64; i++ {
			w.WriteBit(uint64(i) & 1)
			w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, uint(i%64)+1)
		}
	}); avg != 0 {
		t.Fatalf("Writer hot path allocates %.1f per run, want 0", avg)
	}
	data := w.Bytes()
	r := NewReader(data)
	if avg := testing.AllocsPerRun(1000, func() {
		r.Reset(data)
		for i := 0; i < 64; i++ {
			r.ReadBit()
			r.ReadBits(uint(i%64) + 1)
		}
	}); avg != 0 {
		t.Fatalf("Reader hot path allocates %.1f per run, want 0", avg)
	}
}

// BenchmarkWriteBitsWord measures the whole-word residual path (64-bit
// writes, arbitrary starting alignment) that dominates poorly-predicted
// chunks.
func BenchmarkWriteBitsWord(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
			w.WriteBits(0, 3) // misalign
		}
		w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, 64)
	}
}

// BenchmarkReadBitsWord mirrors BenchmarkWriteBitsWord on the decode side.
func BenchmarkReadBitsWord(b *testing.B) {
	w := NewWriter(1 << 20)
	w.WriteBits(0, 3)
	for i := 0; i < 100000; i++ {
		w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, 64)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			r.Reset(data)
			r.ReadBits(3)
		}
		r.ReadBits(64)
	}
}
