package compress

import (
	"math"
	"testing"
	"time"

	"masc/internal/tiersched"
)

// fakeCodec is a deterministic stand-in: every Compress emits outBytes
// bytes regardless of input, so trial scores depend only on the injected
// clock and the configured size.
type fakeCodec struct {
	name     string
	outBytes int
	lossless bool
	calls    int
}

func (f *fakeCodec) Name() string   { return f.name }
func (f *fakeCodec) Lossless() bool { return f.lossless }
func (f *fakeCodec) Compress(dst []byte, cur, ref []float64) []byte {
	f.calls++
	return append(dst, make([]byte, f.outBytes)...)
}
func (f *fakeCodec) Decompress(cur []float64, blob []byte, ref []float64) error { return nil }

func frames(n, vals int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, vals)
		for k := range out[i] {
			out[i][k] = float64(i*vals + k)
		}
	}
	return out
}

func TestRunTrialDeterministic(t *testing.T) {
	j := &fakeCodec{name: "x", outBytes: 10, lossless: true}
	c := &fakeCodec{name: "x", outBytes: 10, lossless: true}
	jF, cF := frames(4, 8), frames(4, 8)
	clk := tiersched.NewFakeClock(time.Millisecond)
	res := RunTrial(NewCandidate("x", j, c), jF, cF, clk)

	// 4 warm-up + 3×4 scored calls per tensor.
	if j.calls != 16 || c.calls != 16 {
		t.Fatalf("compress calls J=%d C=%d, want 16/16", j.calls, c.calls)
	}
	if res.RawBytes != 2*4*8*8 {
		t.Fatalf("RawBytes = %d, want %d", res.RawBytes, 2*4*8*8)
	}
	if res.CompressedBytes != 2*4*10 {
		t.Fatalf("CompressedBytes = %d, want %d", res.CompressedBytes, 2*4*10)
	}
	// FakeClock ticks 1ms per Now; each of the 8 Compress calls is bracketed
	// by two Now calls, so the meter sees exactly 8ms.
	wantSec := 8 * time.Millisecond.Seconds()
	wantScore := float64(res.RawBytes-res.CompressedBytes) / wantSec
	if math.Abs(res.Score-wantScore) > 1e-9*wantScore {
		t.Fatalf("Score = %g, want %g", res.Score, wantScore)
	}
	if !res.Committable {
		t.Fatalf("lossless pair must be committable")
	}

	// Identical run, identical result — selection is deterministic under an
	// injected clock.
	j2 := &fakeCodec{name: "x", outBytes: 10, lossless: true}
	c2 := &fakeCodec{name: "x", outBytes: 10, lossless: true}
	res2 := RunTrial(NewCandidate("x", j2, c2), jF, cF, tiersched.NewFakeClock(time.Millisecond))
	if res2 != res {
		t.Fatalf("repeat trial diverged: %+v vs %+v", res2, res)
	}
}

func TestRunTrialInflation(t *testing.T) {
	// A codec that inflates (emits more than raw) must score negative, never
	// win against a shrinking one.
	big := &fakeCodec{name: "bloat", outBytes: 1000, lossless: true}
	bigC := &fakeCodec{name: "bloat", outBytes: 1000, lossless: true}
	res := RunTrial(NewCandidate("bloat", big, bigC), frames(3, 4), frames(3, 4),
		tiersched.NewFakeClock(time.Millisecond))
	if res.Score >= 0 {
		t.Fatalf("inflating codec scored %g, want negative", res.Score)
	}
}

func TestPickPrefersEarlierOnTie(t *testing.T) {
	results := []TrialResult{
		{Name: "masc", Committable: true, Score: 100},
		{Name: "gzip", Committable: true, Score: 100},
	}
	if got := Pick(results); got != 0 {
		t.Fatalf("tie picked index %d, want 0 (earlier entry)", got)
	}
}

func TestPickSkipsLossy(t *testing.T) {
	results := []TrialResult{
		{Name: "masc", Committable: true, Score: 10},
		{Name: "spicemate", Committable: false, Score: 1e12},
	}
	if got := Pick(results); got != 0 {
		t.Fatalf("lossy candidate won (index %d); must never be committable", got)
	}
	if got := Pick([]TrialResult{{Name: "spicemate", Committable: false, Score: 1}}); got != -1 {
		t.Fatalf("all-lossy menu picked %d, want -1", got)
	}
}

func TestPickHigherScoreWins(t *testing.T) {
	results := []TrialResult{
		{Name: "masc", Committable: true, Score: 10},
		{Name: "gzip", Committable: true, Score: 50},
		{Name: "markov", Committable: true, Score: 30},
	}
	if got := Pick(results); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestTrialResultRatio(t *testing.T) {
	if r := (TrialResult{RawBytes: 100, CompressedBytes: 25}).Ratio(); r != 4 {
		t.Fatalf("Ratio = %g, want 4", r)
	}
	if r := (TrialResult{RawBytes: 100}).Ratio(); r != 0 {
		t.Fatalf("empty Ratio = %g, want 0", r)
	}
}
