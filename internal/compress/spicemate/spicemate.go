// Package spicemate is a SpiceMate-family baseline (Li & Yu, TCAD'21):
// an error-bounded *lossy* waveform compressor from the EDA domain. Values
// are truncated to the mantissa precision that meets a relative error
// bound, and the sparser truncated byte stream is DEFLATE-coded. The MASC
// paper uses SpiceMate to show that even a domain lossy compressor loses
// to lossless spatiotemporal prediction on Jacobian tensors.
package spicemate

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"

	"masc/internal/compress"
)

// Compressor implements compress.Compressor (lossy).
type Compressor struct {
	// RelTol is the relative error bound; default 1e-6.
	RelTol float64
	// keepBits caches the mantissa bits needed for RelTol.
	keepBits uint
}

// New returns a SpiceMate-like codec with the default 1e-9 bound — tight
// enough that decompressed Jacobians do not visibly perturb Newton or
// adjoint solves (the accumulation-of-error concern §3.2 raises is exactly
// why the paper rejects lossy compression here).
func New() *Compressor { return NewWithTolerance(1e-9) }

// NewWithTolerance returns a codec honouring the given relative error.
func NewWithTolerance(tol float64) *Compressor {
	if tol <= 0 || tol >= 1 {
		tol = 1e-6
	}
	// A mantissa truncated to k bits has relative error ≤ 2^-k.
	k := uint(math.Ceil(-math.Log2(tol)))
	if k > 52 {
		k = 52
	}
	return &Compressor{RelTol: tol, keepBits: k}
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "spicemate" }

// Lossless implements compress.Compressor: this codec is lossy by design.
func (c *Compressor) Lossless() bool { return false }

// Fork returns an independent decoder instance for window-local store
// slices. The codec is stateless (every blob is self-contained), so a copy
// with the same tolerance suffices.
func (c *Compressor) Fork() compress.Compressor {
	cp := *c
	return &cp
}

// Compress implements compress.Compressor. Each value is delta-predicted
// from the reference (temporal) when available, truncated to the error
// bound, and the truncated bit stream deflated.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	drop := 52 - c.keepBits
	mask := ^uint64(0) << drop
	raw := make([]byte, 0, 8*len(cur))
	for _, v := range cur {
		b := math.Float64bits(v) & mask
		// Variable-width little-endian: the low `drop` bits are zero, so
		// shift them out and emit only the meaningful bytes.
		s := b >> drop
		nbytes := (64 - int(drop) + 7) / 8
		for k := 0; k < nbytes; k++ {
			raw = append(raw, byte(s>>(8*uint(k))))
		}
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(err)
	}
	if _, err := w.Write(raw); err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return append(dst, buf.Bytes()...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	drop := 52 - c.keepBits
	nbytes := (64 - int(drop) + 7) / 8
	r := flate.NewReader(bytes.NewReader(blob))
	raw := make([]byte, nbytes*len(cur))
	if _, err := io.ReadFull(r, raw); err != nil {
		return fmt.Errorf("spicemate: short payload: %w", err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("spicemate: %w", err)
	}
	for i := range cur {
		var s uint64
		for k := 0; k < nbytes; k++ {
			s |= uint64(raw[i*nbytes+k]) << (8 * uint(k))
		}
		cur[i] = math.Float64frombits(s << drop)
	}
	return nil
}
