package spicemate

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/compress/codectest"
)

func TestConformanceLossy(t *testing.T) {
	codectest.RunLossy(t, New(), 1e-6)
	codectest.RunAppend(t, New())
}

func TestTightToleranceIsNearlyLossless(t *testing.T) {
	c := NewWithTolerance(1e-15)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e6
	}
	blob := c.Compress(nil, vals, nil)
	got := make([]float64, len(vals))
	if err := c.Decompress(got, blob, nil); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-15*math.Abs(vals[i]) {
			t.Fatalf("value %d: %g vs %g", i, got[i], vals[i])
		}
	}
}

func TestLooserToleranceCompressesBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = (1 + rng.Float64()) * 1e-9
	}
	tight := NewWithTolerance(1e-12).Compress(nil, vals, nil)
	loose := NewWithTolerance(1e-3).Compress(nil, vals, nil)
	if len(loose) >= len(tight) {
		t.Fatalf("loose tolerance (%d bytes) not smaller than tight (%d bytes)", len(loose), len(tight))
	}
}

func TestNotLossless(t *testing.T) {
	if New().Lossless() {
		t.Fatal("spicemate must report itself lossy")
	}
}

func TestBadToleranceDefaults(t *testing.T) {
	for _, tol := range []float64{0, -1, 2} {
		c := NewWithTolerance(tol)
		if c.RelTol != 1e-6 {
			t.Fatalf("tolerance %g should default to 1e-6, got %g", tol, c.RelTol)
		}
	}
}

func TestTruncatedBlob(t *testing.T) {
	c := New()
	blob := c.Compress(nil, []float64{1, 2, 3}, nil)
	got := make([]float64, 3)
	if err := c.Decompress(got, blob[:1], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
}
