package spicemate

import (
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	// The default tolerance keeps k = 30 mantissa bits, so the relative
	// error is bounded by 2^-30 < 1e-9.
	codectest.RunMatrix(t, codectest.Config{
		New:    func() compress.Compressor { return New() },
		RelTol: 1e-9,
	})
}

// FuzzDecompress feeds arbitrary bytes to the truncated-mantissa decoder —
// the flate layer parses the stream, the byte-reassembly loop is ours.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 64} {
			out := make([]float64, n)
			_ = New().Decompress(out, blob, nil)
			_ = NewWithTolerance(1e-3).Decompress(out, blob, nil)
		}
	})
}
