// Package workpool provides a process-wide pool of persistent worker
// goroutines for the chunk-parallel codecs. The per-timestep hot path of a
// MASC run compresses thousands of matrices; spawning Workers goroutines
// per matrix (the seed behaviour of masczip and parallelz) costs a stack
// and scheduler churn every call. The pool starts GOMAXPROCS workers once,
// on first use, and fans chunk indices out to them.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// batch tracks one Do call: how many indices are outstanding and a
// single-token channel signalled when the count reaches zero. Batches are
// pooled so a steady-state Do performs no allocation.
type batch struct {
	pending int32
	fn      func(int)
	done    chan struct{}
}

func (b *batch) run(idx int) {
	b.fn(idx)
	if atomic.AddInt32(&b.pending, -1) == 0 {
		b.done <- struct{}{}
	}
}

type task struct {
	b   *batch
	idx int
}

var (
	once  sync.Once
	tasks chan task

	batchPool = sync.Pool{New: func() any {
		return &batch{done: make(chan struct{}, 1)}
	}}
)

func start() {
	n := runtime.GOMAXPROCS(0)
	// A modest buffer lets a caller hand off all of its chunks without
	// blocking even when every worker is mid-task.
	tasks = make(chan task, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range tasks {
				t.b.run(t.idx)
			}
		}()
	}
}

// Do invokes fn(i) for every i in [0, n) and returns when all invocations
// have completed. Indices other than the last are offered to the pool;
// whatever the pool cannot accept immediately — and always the final index
// — runs on the calling goroutine. While waiting for its own batch the
// caller helps drain the global queue, so nested Do calls (a pool worker
// fanning out again) cannot deadlock: queued work always has at least one
// non-blocked executor.
func Do(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	once.Do(start)
	b := batchPool.Get().(*batch)
	b.pending = int32(n)
	b.fn = fn
	for i := 0; i < n-1; i++ {
		select {
		case tasks <- task{b: b, idx: i}:
		default:
			b.run(i)
		}
	}
	b.run(n - 1)
	for {
		select {
		case t := <-tasks:
			t.b.run(t.idx)
		case <-b.done:
			b.fn = nil
			batchPool.Put(b)
			return
		}
	}
}
