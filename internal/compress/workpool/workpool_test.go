package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		hits := make([]int32, n)
		Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestDoNested(t *testing.T) {
	// Nested Do from inside pool workers must not deadlock: excess work
	// runs inline on the caller.
	var total int64
	Do(8, func(i int) {
		Do(8, func(j int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != 64 {
		t.Fatalf("nested Do ran %d of 64 tasks", total)
	}
}

func TestDoConcurrentCallers(t *testing.T) {
	// Many goroutines sharing the pool at once: every caller still sees
	// exactly its own n invocations.
	const callers = 16
	done := make(chan int64, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var sum int64
			Do(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
			done <- sum
		}()
	}
	for c := 0; c < callers; c++ {
		if got := <-done; got != 4950 {
			t.Fatalf("caller saw partial work: sum %d, want 4950", got)
		}
	}
}

func TestDoParallelismBounded(t *testing.T) {
	// Do must not run more tasks concurrently than GOMAXPROCS + 1 (the
	// pool plus the calling goroutine).
	limit := int32(runtime.GOMAXPROCS(0) + 1)
	var cur, peak int32
	Do(256, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", peak, limit)
	}
}
