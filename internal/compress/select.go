package compress

import (
	"time"

	"masc/internal/tiersched"
)

// Codec auto-selection ("auto" storage): before committing a run to one
// compressor, the store trials each candidate on the first captured steps
// and scores it on bytes saved per second of compression — the quantity the
// MASC paper's Table 3 trades off (compression ratio is worthless if the
// codec cannot keep up with the solver, and raw speed is worthless if
// nothing shrinks). The winner re-encodes the trial frames and carries the
// rest of the run.

// Candidate is one codec pair entered into an auto-selection trial: a J
// and a C compressor, fresh instances private to the trial (codec state is
// per-run). Committable reports whether the pair may carry the run — lossy
// codecs are trialed for the scoreboard but never committed, since the
// store's contract is bit-exact sensitivities.
type Candidate struct {
	Name string
	J, C Compressor
	// Committable is resolved by NewCandidate from the codecs' Lossless.
	Committable bool
}

// NewCandidate bundles a codec pair, deriving Committable from losslessness.
func NewCandidate(name string, j, c Compressor) Candidate {
	return Candidate{Name: name, J: j, C: c,
		Committable: j.Lossless() && c.Lossless()}
}

// TrialResult is one candidate's scorecard over the trial frames.
type TrialResult struct {
	Name        string
	Committable bool
	// RawBytes / CompressedBytes are the trial totals over both tensors.
	RawBytes        int64
	CompressedBytes int64
	// CompressTime is the wall time the trial's Compress calls took.
	CompressTime time.Duration
	// Score is bytes saved per second of compression: (raw − compressed) /
	// seconds. A codec that inflates scores negative; one whose timing was
	// too fast to resolve is scored on a one-nanosecond floor.
	Score float64
}

// Ratio returns the trial compression ratio (raw/compressed), 0 if empty.
func (t TrialResult) Ratio() float64 {
	if t.CompressedBytes == 0 {
		return 0
	}
	return float64(t.RawBytes) / float64(t.CompressedBytes)
}

// RunTrial scores one candidate over the buffered forward frames, feeding
// the codec pair exactly the call sequence the compressed store's forward
// pass would issue: frame i compressed against frame i+1 as the prediction
// reference (Algorithm 2's direction), head frame unreferenced. jFrames
// and cFrames hold the same steps of the two tensors. clock injects time
// (nil = wall clock) so tests can score deterministically.
//
// Each tensor gets one unscored warm-up pass before the scored one. The
// warm-up serves two ends: caches and branch predictors are hot when the
// timer runs (otherwise the first candidate in a menu pays the page-in cost
// for everyone), and calibrating codecs (the Markov selector) score with a
// warmed model — the selection should reflect the steady state that
// dominates a long run, not the first-K-steps cold start. The trial pair is
// discarded after scoring, so the extra codec state the warm-up accumulates
// never reaches the committed store.
func RunTrial(cand Candidate, jFrames, cFrames [][]float64, clock tiersched.Clock) TrialResult {
	if clock == nil {
		clock = tiersched.Wall()
	}
	res := TrialResult{Name: cand.Name, Committable: cand.Committable}
	// One pass accumulator per scored repetition; the best pass (highest
	// score) is the candidate's result, so a scheduler hiccup in one pass
	// cannot misrank codecs whose true rates are close.
	type pass struct {
		meter     tiersched.RateMeter
		raw, comp int64
	}
	passes := make([]pass, trialReps)
	encode := func(codec Compressor, frames [][]float64, p *pass) {
		var dst []byte
		for i := 0; i < len(frames); i++ {
			var ref []float64
			if i+1 < len(frames) {
				ref = frames[i+1]
			}
			if p == nil {
				dst = codec.Compress(dst[:0], frames[i], ref)
				continue
			}
			start := clock.Now()
			dst = codec.Compress(dst[:0], frames[i], ref)
			p.meter.Observe(8*len(frames[i]), clock.Now().Sub(start))
			p.raw += int64(8 * len(frames[i]))
			p.comp += int64(len(dst))
		}
	}
	encode(cand.J, jFrames, nil)
	for r := range passes {
		encode(cand.J, jFrames, &passes[r])
	}
	encode(cand.C, cFrames, nil)
	for r := range passes {
		encode(cand.C, cFrames, &passes[r])
	}
	best := -1
	bestScore := 0.0
	for r := range passes {
		sec := passes[r].meter.Seconds()
		if sec <= 0 {
			sec = 1e-9 // clock too coarse to resolve the pass: floor, not inf
		}
		score := float64(passes[r].raw-passes[r].comp) / sec
		if best < 0 || score > bestScore {
			best, bestScore = r, score
		}
	}
	res.RawBytes = passes[best].raw
	res.CompressedBytes = passes[best].comp
	res.CompressTime = time.Duration(passes[best].meter.Seconds() * 1e9)
	res.Score = bestScore
	return res
}

// trialReps is the number of scored passes per candidate; the best pass
// wins, squeezing scheduler noise out of the timing comparison.
const trialReps = 3

// Pick returns the index of the winning candidate among the trial results:
// the committable result with the strictly greatest Score. Earlier entries
// win ties — callers list the MASC default first, so "no codec is
// measurably better" falls back to masczip. Returns -1 when no result is
// committable (callers then keep their built-in default).
func Pick(results []TrialResult) int {
	best := -1
	for i, r := range results {
		if !r.Committable {
			continue
		}
		if best < 0 || r.Score > results[best].Score {
			best = i
		}
	}
	return best
}
