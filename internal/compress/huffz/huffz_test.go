package huffz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"masc/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestCanonicalCodesArePrefixFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var hist [256]uint64
		for i := 0; i < 1000; i++ {
			// Zipf-ish skew.
			hist[rng.Intn(1+rng.Intn(256))]++
		}
		lens := codeLengths(&hist)
		codes := canonicalCodes(&lens)
		// No code may be a prefix of another.
		for a := 0; a < 256; a++ {
			if lens[a] == 0 {
				continue
			}
			for b := 0; b < 256; b++ {
				if a == b || lens[b] == 0 || lens[a] > lens[b] {
					continue
				}
				if codes[b]>>(lens[b]-lens[a]) == codes[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKraftInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var hist [256]uint64
	for i := 0; i < 256; i++ {
		hist[i] = uint64(rng.Intn(10000)) + 1
	}
	lens := codeLengths(&hist)
	sum := 0.0
	for _, l := range lens {
		if l > 0 {
			sum += math.Pow(2, -float64(l))
		}
	}
	if sum > 1+1e-12 {
		t.Fatalf("Kraft sum %g > 1", sum)
	}
	if sum < 1-1e-12 {
		t.Fatalf("Kraft sum %g < 1: tree not full", sum)
	}
}

func TestDepthCapRespected(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the damping loop must
	// cap lengths at maxCodeLen.
	var hist [256]uint64
	a, b := uint64(1), uint64(1)
	for i := 0; i < 40; i++ {
		hist[i] = a
		a, b = b, a+b
	}
	lens := codeLengths(&hist)
	for s, l := range lens {
		if l > maxCodeLen {
			t.Fatalf("symbol %d got length %d", s, l)
		}
		if hist[s] > 0 && l == 0 {
			t.Fatalf("symbol %d starved", s)
		}
	}
}

func TestSkewedStreamCompresses(t *testing.T) {
	vals := make([]float64, 4096)
	for i := range vals {
		if i%10 == 0 {
			vals[i] = 1e-30
		}
	}
	blob := New().Compress(nil, vals, nil)
	if len(blob)*4 > 8*len(vals) {
		t.Fatalf("skewed stream compressed to %d of %d bytes", len(blob), 8*len(vals))
	}
}

func TestSingleSymbolStream(t *testing.T) {
	vals := make([]float64, 100) // all zero: a single-symbol alphabet
	blob := New().Compress(nil, vals, nil)
	got := make([]float64, len(vals))
	if err := New().Decompress(got, blob, nil); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != 0 {
			t.Fatal("single-symbol roundtrip broken")
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	blob := c.Compress(nil, []float64{1, 2, 3}, nil)
	got := make([]float64, 3)
	if err := c.Decompress(got, nil, nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
	if err := c.Decompress(got[:1], blob, nil); err == nil {
		t.Fatal("expected error on wrong length")
	}
	if err := c.Decompress(got, blob[:40], nil); err == nil {
		t.Fatal("expected error on truncated table")
	}
}
