// Package huffz implements a canonical Huffman byte codec — the classical
// entropy coder the MASC paper's §2.2 contrasts with ANS. Like ansz it is
// an order-0 coder over the raw value bytes: simpler and slightly weaker
// than rANS, exactly the trade the paper describes.
package huffz

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"

	"masc/internal/compress/bitstream"
)

// maxCodeLen caps code lengths so the canonical tables stay small; 15 bits
// suffices for any 256-symbol alphabet of ≥ 2-symbol blobs after the
// package-merge-style rebalancing below.
const maxCodeLen = 15

// Compressor implements compress.Compressor.
type Compressor struct{}

// New returns a canonical Huffman byte codec.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "huffman" }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

type hnode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right *hnode
}

type hheap []*hnode

func (h hheap) Len() int            { return len(h) }
func (h hheap) Less(i, j int) bool  { return h[i].freq < h[j].freq }
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths builds Huffman code lengths from a histogram, then flattens
// any length above maxCodeLen (rare; handled by re-running with damped
// frequencies, which strictly reduces depth).
func codeLengths(hist *[256]uint64) [256]uint8 {
	var lens [256]uint8
	damped := *hist
	for {
		h := &hheap{}
		for s, f := range damped {
			if f > 0 {
				heap.Push(h, &hnode{freq: f, sym: s})
			}
		}
		if h.Len() == 0 {
			return lens
		}
		if h.Len() == 1 {
			lens[(*h)[0].sym] = 1
			return lens
		}
		for h.Len() > 1 {
			a := heap.Pop(h).(*hnode)
			b := heap.Pop(h).(*hnode)
			heap.Push(h, &hnode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
		}
		root := heap.Pop(h).(*hnode)
		lens = [256]uint8{}
		depth := assignDepths(root, 0, &lens)
		if depth <= maxCodeLen {
			return lens
		}
		// Damp the histogram (halve, keep ≥1) and retry: flattens the tree.
		for s := range damped {
			if damped[s] > 1 {
				damped[s] = (damped[s] + 1) / 2
			}
		}
	}
}

func assignDepths(n *hnode, d uint8, lens *[256]uint8) uint8 {
	if n.sym >= 0 {
		lens[n.sym] = d
		return d
	}
	l := assignDepths(n.left, d+1, lens)
	r := assignDepths(n.right, d+1, lens)
	if r > l {
		return r
	}
	return l
}

// canonicalCodes assigns canonical codes from lengths: symbols sorted by
// (length, value) receive consecutive codes.
func canonicalCodes(lens *[256]uint8) (codes [256]uint32) {
	var countPerLen [maxCodeLen + 1]uint32
	for _, l := range lens {
		countPerLen[l]++
	}
	var nextCode [maxCodeLen + 2]uint32
	code := uint32(0)
	countPerLen[0] = 0
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + countPerLen[l-1]) << 1
		nextCode[l] = code
	}
	for s := 0; s < 256; s++ {
		if l := lens[s]; l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return
}

// Compress implements compress.Compressor. ref is ignored.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	raw := make([]byte, 8*len(cur))
	for i, v := range cur {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	var hist [256]uint64
	for _, b := range raw {
		hist[b]++
	}
	lens := codeLengths(&hist)
	codes := canonicalCodes(&lens)

	dst = binary.AppendUvarint(dst, uint64(len(cur)))
	// Header: 256 nibble-packed code lengths (4 bits each, ≤ 15).
	for s := 0; s < 256; s += 2 {
		dst = append(dst, lens[s]<<4|lens[s+1])
	}
	w := bitstream.NewWriter(len(raw) / 2)
	for _, b := range raw {
		w.WriteBits(uint64(codes[b]), uint(lens[b]))
	}
	return append(dst, w.Bytes()...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	n64, k := binary.Uvarint(blob)
	if k <= 0 {
		return fmt.Errorf("huffz: bad element count")
	}
	off := k
	if int(n64) != len(cur) {
		return fmt.Errorf("huffz: blob holds %d elements, want %d", n64, len(cur))
	}
	if len(blob) < off+128 {
		return fmt.Errorf("huffz: truncated length table")
	}
	var lens [256]uint8
	for s := 0; s < 256; s += 2 {
		b := blob[off+s/2]
		lens[s] = b >> 4
		lens[s+1] = b & 0x0F
	}
	off += 128
	codes := canonicalCodes(&lens)

	// Build a (length → first code, first symbol index) canonical decode
	// table over symbols sorted by (length, value).
	type lenGroup struct {
		first uint32 // first canonical code of this length
		count uint32
		base  int // index into ordered symbol list
	}
	var groups [maxCodeLen + 1]lenGroup
	var ordered []byte
	for l := uint8(1); l <= maxCodeLen; l++ {
		g := &groups[l]
		g.base = len(ordered)
		first := uint32(math.MaxUint32)
		for s := 0; s < 256; s++ {
			if lens[s] == l {
				if codes[s] < first {
					first = codes[s]
				}
				ordered = append(ordered, byte(s))
				g.count++
			}
		}
		g.first = first
	}

	r := bitstream.NewReader(blob[off:])
	raw := make([]byte, 8*len(cur))
	for i := range raw {
		code := uint32(0)
		length := uint8(0)
		for {
			code = code<<1 | uint32(r.ReadBit())
			length++
			if length > maxCodeLen {
				return fmt.Errorf("huffz: invalid code at byte %d", i)
			}
			g := &groups[length]
			if g.count > 0 && code >= g.first && code-g.first < g.count {
				raw[i] = ordered[g.base+int(code-g.first)]
				break
			}
		}
	}
	if r.Err() != nil {
		return fmt.Errorf("huffz: %w", r.Err())
	}
	for i := range cur {
		cur[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return nil
}
