package huffz

import (
	"encoding/binary"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

// FuzzDecompress feeds arbitrary bytes to the canonical-Huffman decoder:
// corrupt length tables must not let a code index past the ordered-symbol
// array or spin past maxCodeLen.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	// A header claiming every symbol has a 15-bit code — an impossible
	// (oversubscribed-complement) table the decoder must survive.
	bad := binary.AppendUvarint(nil, 4)
	for i := 0; i < 128; i++ {
		bad = append(bad, 0xFF)
	}
	bad = append(bad, 0xAA, 0x55, 0xAA, 0x55)
	f.Add(bad)
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 64} {
			out := make([]float64, n)
			_ = New().Decompress(out, blob, nil)
		}
	})
}
