// Package compress defines the compressor contract shared by MASC and all
// baseline codecs. A Compressor encodes one matrix's value array, optionally
// predicting from a reference array (the temporally adjacent matrix in the
// MASC scheme). Implementations live in subpackages; Registry-style lookup
// for benchmarks is provided by the parent masc module.
package compress

// Compressor encodes/decodes fixed-length float64 value arrays.
//
// Compress appends the encoding of cur to dst and returns the extended
// slice. ref, when non-nil, is the prediction reference (same length as
// cur); codecs that do not exploit a reference may ignore it, but every
// codec must produce a stream that Decompress can invert given the same
// ref. Decompress fills cur (len(cur) tells the codec the element count).
type Compressor interface {
	Name() string
	Compress(dst []byte, cur, ref []float64) []byte
	Decompress(cur []float64, blob []byte, ref []float64) error
	// Lossless reports whether Decompress reproduces bit-exact values.
	Lossless() bool
}
