package fpzipz

import (
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

// FuzzDecompress feeds arbitrary bytes to the Lorenzo/zigzag decoder: bogus
// residual bit-lengths must not panic the bit reader or shift machinery.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, blob []byte) {
		out := make([]float64, 64)
		_ = New().Decompress(out, blob, nil)
	})
}
