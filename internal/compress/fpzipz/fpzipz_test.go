package fpzipz

import (
	"math"
	"testing"
	"testing/quick"

	"masc/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestOrderedMapMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := toOrdered(vals[i-1]), toOrdered(vals[i])
		if a > b {
			t.Fatalf("ordering violated between %g and %g", vals[i-1], vals[i])
		}
	}
}

func TestOrderedMapInvertible(t *testing.T) {
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		return math.Float64bits(fromOrdered(toOrdered(v))) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothSequenceCompresses(t *testing.T) {
	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		// Very smooth: neighbouring values differ only in low mantissa
		// bits, which is the regime the Lorenzo predictor targets.
		vals[i] = 1000 + math.Sin(float64(i)/100)*1e-9
	}
	blob := New().Compress(nil, vals, nil)
	if len(blob)*2 > 8*n {
		t.Fatalf("smooth sequence compressed to %d of %d bytes", len(blob), 8*n)
	}
}

func TestTruncatedBlob(t *testing.T) {
	c := New()
	blob := c.Compress(nil, []float64{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	got := make([]float64, 8)
	if err := c.Decompress(got, blob[:1], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
}
