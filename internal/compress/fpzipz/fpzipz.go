// Package fpzipz is an FPZIP-family baseline (Lindstrom & Isenburg, 2006):
// a spatial Lorenzo prediction (the previous element, the 1-D Lorenzo
// stencil) followed by a monotone float→integer map, an integer residual
// and a bit-length-grouped entropy-light code. Like the original it is a
// purely spatial predictive coder — it never sees the temporal neighbour —
// which is exactly the gap MASC's spatiotemporal predictor closes.
package fpzipz

import (
	"fmt"
	"math"
	"math/bits"

	"masc/internal/compress/bitstream"
)

// Compressor implements compress.Compressor.
type Compressor struct{}

// New returns an FPZIP-like codec.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "fpzip" }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

// toOrdered maps IEEE-754 bits to an order-preserving unsigned integer:
// negative floats map below positive ones and ordering matches numeric
// ordering (NaNs map consistently by bit pattern).
func toOrdered(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

func fromOrdered(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// Compress implements compress.Compressor. ref is ignored (spatial-only).
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	w := bitstream.NewWriter(len(cur))
	prev := uint64(1 << 63) // ordered code of +0
	for _, v := range cur {
		o := toOrdered(v)
		d := o - prev
		prev = o
		// Zigzag the two's-complement difference.
		z := (d << 1) ^ uint64(int64(d)>>63)
		if z == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		n := uint(64 - bits.LeadingZeros64(z))
		w.WriteBits(uint64(n-1), 6)
		// The top bit of z is implicitly 1.
		if n > 1 {
			w.WriteBits(z&((1<<(n-1))-1), n-1)
		}
	}
	return append(dst, w.Bytes()...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	r := bitstream.NewReader(blob)
	prev := uint64(1 << 63)
	for i := range cur {
		var z uint64
		if r.ReadBit() == 1 {
			n := uint(r.ReadBits(6)) + 1
			z = 1
			if n > 1 {
				z = 1<<(n-1) | r.ReadBits(n-1)
			}
		}
		d := (z >> 1) ^ uint64(-int64(z&1))
		o := prev + d
		prev = o
		cur[i] = fromOrdered(o)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("fpzipz: %w", err)
	}
	return nil
}
