// Package ansz implements a byte-oriented rANS (range Asymmetric Numeral
// Systems, Duda 2013) entropy coder — the modern entropy stage the MASC
// paper's §2.2 surveys. As a compress.Compressor it encodes the raw bytes
// of the value array against a per-blob adaptive byte histogram; it is a
// pure entropy coder with no decorrelation, so on Jacobian tensors it
// measures how much of the redundancy is visible to order-0 statistics
// alone.
package ansz

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding parameters: 12-bit cumulative frequency precision, 32-bit state
// renormalized a byte at a time with a 2^23 lower bound.
const (
	probBits  = 12
	probScale = 1 << probBits
	ransLow   = 1 << 23
)

// Compressor implements compress.Compressor with order-0 rANS over the
// little-endian bytes of the float64 stream.
type Compressor struct{}

// New returns an rANS byte codec.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "rans" }

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

// normalizeFreqs scales a byte histogram to sum exactly to probScale with
// every present symbol keeping frequency ≥ 1.
func normalizeFreqs(hist *[256]uint32, total int) (freqs [256]uint32) {
	if total == 0 {
		return
	}
	remaining := uint32(probScale)
	nonzero := 0
	for _, h := range hist {
		if h > 0 {
			nonzero++
		}
	}
	seen := 0
	for s, h := range hist {
		if h == 0 {
			continue
		}
		seen++
		var f uint32
		if seen == nonzero {
			f = remaining // the last symbol absorbs rounding
		} else {
			f = uint32(uint64(h) * probScale / uint64(total))
			if f == 0 {
				f = 1
			}
			// Never starve the remaining symbols.
			if maxF := remaining - uint32(nonzero-seen); f > maxF {
				f = maxF
			}
		}
		freqs[s] = f
		remaining -= f
	}
	return
}

// buildTables derives cumulative frequencies and the decode slot table.
func buildTables(freqs *[256]uint32) (cum [257]uint32, slots []byte) {
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + freqs[s]
	}
	slots = make([]byte, probScale)
	for s := 0; s < 256; s++ {
		for i := cum[s]; i < cum[s+1]; i++ {
			slots[i] = byte(s)
		}
	}
	return
}

// Compress implements compress.Compressor. ref is ignored.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	raw := make([]byte, 8*len(cur))
	for i, v := range cur {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	var hist [256]uint32
	for _, b := range raw {
		hist[b]++
	}
	freqs := normalizeFreqs(&hist, len(raw))
	cum, _ := buildTables(&freqs)

	// Header: element count + the 256 frequencies (delta-free uvarints —
	// mostly zeros, cheap).
	dst = binary.AppendUvarint(dst, uint64(len(cur)))
	for s := 0; s < 256; s++ {
		dst = binary.AppendUvarint(dst, uint64(freqs[s]))
	}

	// rANS encodes back-to-front; the byte stream comes out reversed.
	out := make([]byte, 0, len(raw)/2+16)
	state := uint32(ransLow)
	// Renormalization bound: the decoder keeps its state in
	// [ransLow, ransLow<<8); encoding symbol s from a state below
	// ((ransLow>>probBits)<<8)·f lands back inside that interval.
	for i := len(raw) - 1; i >= 0; i-- {
		s := raw[i]
		f := freqs[s]
		for state >= ((ransLow>>probBits)<<8)*f {
			out = append(out, byte(state))
			state >>= 8
		}
		state = (state/f)<<probBits + state%f + cum[s]
	}
	var st [4]byte
	binary.LittleEndian.PutUint32(st[:], state)
	dst = append(dst, st[:]...)
	// Reverse the emitted bytes so the decoder reads forward.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return append(dst, out...)
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	n64, k := binary.Uvarint(blob)
	if k <= 0 {
		return fmt.Errorf("ansz: bad element count")
	}
	off := k
	if int(n64) != len(cur) {
		return fmt.Errorf("ansz: blob holds %d elements, want %d", n64, len(cur))
	}
	var freqs [256]uint32
	sum := 0
	for s := 0; s < 256; s++ {
		f, k := binary.Uvarint(blob[off:])
		if k <= 0 {
			return fmt.Errorf("ansz: truncated frequency table")
		}
		off += k
		// Reject frequencies a valid encoder can never emit before they
		// reach buildTables: a corrupt table whose (wrapping) sum happened
		// to land on probScale would otherwise index past the slot array.
		if f > probScale {
			return fmt.Errorf("ansz: frequency %d of symbol %d exceeds scale", f, s)
		}
		freqs[s] = uint32(f)
		sum += int(f)
	}
	nraw := 8 * len(cur)
	if len(blob) < off+4 {
		return fmt.Errorf("ansz: truncated state")
	}
	if nraw == 0 {
		return nil
	}
	if sum != probScale {
		return fmt.Errorf("ansz: frequency table sums to %d", sum)
	}
	cum, slots := buildTables(&freqs)
	state := binary.LittleEndian.Uint32(blob[off:])
	off += 4

	raw := make([]byte, nraw)
	for i := 0; i < nraw; i++ {
		slot := state & (probScale - 1)
		s := slots[slot]
		raw[i] = s
		state = freqs[s]*(state>>probBits) + slot - cum[s]
		for state < ransLow {
			if off >= len(blob) {
				return fmt.Errorf("ansz: truncated stream at byte %d", i)
			}
			state = state<<8 | uint32(blob[off])
			off++
		}
	}
	for i := range cur {
		cur[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return nil
}
