package ansz

import (
	"encoding/binary"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

func TestConformanceMatrix(t *testing.T) {
	codectest.RunMatrix(t, codectest.Config{
		New: func() compress.Compressor { return New() },
	})
}

// FuzzDecompress feeds arbitrary bytes to the rANS decoder: whatever the
// input, it must return an error or garbage values, never panic or index
// past the slot table.
func FuzzDecompress(f *testing.F) {
	c := New()
	for _, pair := range codectest.Sequences(99) {
		f.Add(c.Compress(nil, pair[0], pair[1]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Regression: a frequency table whose entries wrap through uint32 so the
	// (wrapping) sum lands back on probScale. The pre-hardened decoder built
	// slot tables from it and indexed out of bounds; the per-symbol bound
	// check must reject it before buildTables runs.
	wrap := binary.AppendUvarint(nil, 1) // one element (8 raw bytes)
	wrap = binary.AppendUvarint(wrap, 1<<32|probScale)
	for s := 1; s < 256; s++ {
		wrap = binary.AppendUvarint(wrap, 0)
	}
	wrap = append(wrap, 0, 0, 0x80, 0) // decoder state
	f.Add(wrap)
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, n := range []int{0, 1, 64} {
			out := make([]float64, n)
			_ = New().Decompress(out, blob, nil)
		}
	})
}
