package ansz

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"masc/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunLossless(t, New())
	codectest.RunAppend(t, New())
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// A stream whose bytes are mostly zero must approach the entropy bound:
	// values like 1e-30 * small ints share exponent bytes and zero bytes.
	vals := make([]float64, 4096)
	for i := range vals {
		if i%10 == 0 {
			vals[i] = 1e-30
		}
	}
	blob := New().Compress(nil, vals, nil)
	if len(blob)*4 > 8*len(vals) {
		t.Fatalf("skewed stream compressed to %d of %d bytes", len(blob), 8*len(vals))
	}
}

func TestUniformBytesDoNotExplode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	blob := New().Compress(nil, vals, nil)
	// Incompressible input: allow a few percent overhead plus the table.
	if len(blob) > 8*len(vals)+8*len(vals)/16+600 {
		t.Fatalf("uniform stream exploded: %d of %d bytes", len(blob), 8*len(vals))
	}
	got := make([]float64, len(vals))
	if err := New().Decompress(got, blob, nil); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestNormalizeFreqsInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var hist [256]uint32
		total := 0
		for i := 0; i < int(n)+1; i++ {
			b := rng.Intn(256)
			hist[b]++
			total++
		}
		freqs := normalizeFreqs(&hist, total)
		var sum uint32
		for s := 0; s < 256; s++ {
			if hist[s] > 0 && freqs[s] == 0 {
				return false // present symbol starved
			}
			if hist[s] == 0 && freqs[s] != 0 {
				return false // absent symbol granted mass
			}
			sum += freqs[s]
		}
		return sum == probScale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	vals := []float64{1, 2, 3, 4}
	blob := c.Compress(nil, vals, nil)
	got := make([]float64, 4)
	if err := c.Decompress(got, nil, nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
	if err := c.Decompress(got[:2], blob, nil); err == nil {
		t.Fatal("expected error on wrong length")
	}
	if err := c.Decompress(got, blob[:len(blob)-3], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
	// Corrupt the frequency table so it no longer sums to probScale.
	bad := append([]byte(nil), blob...)
	_, k := binary.Uvarint(bad)
	bad[k] ^= 0x7F
	if err := c.Decompress(got, bad, nil); err == nil {
		t.Fatal("expected error on corrupt frequency table")
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1<<14)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e-9
	}
	b.SetBytes(int64(8 * len(vals)))
	var blob []byte
	for i := 0; i < b.N; i++ {
		blob = New().Compress(blob[:0], vals, nil)
	}
}
