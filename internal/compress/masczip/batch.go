package masczip

import (
	"math"
	"math/bits"

	"masc/internal/compress/bitstream"
)

// Batched region coders: the word-parallel counterpart of runRegions.
//
// The dominant symbol in idle circuit regions is the 1-bit temporal-exact
// hit (the paper's 1-bit scenario), so instead of dispatching every element
// through codeElement — one WriteBit/ReadBit plus a candidate computation
// per hit — the encoder scans ahead for the run of bit-exact hits and emits
// it as whole words of '1' bits, and the decoder counts a run with one
// LeadingZeros64(^word) over a peeked window and materializes it as bulk
// stores from the reference slice. Misses are fused too: the encoder packs
// marker + selector + residual flags + payload into a single WriteBits
// word, and the decoder extracts all of them branchlessly from the same
// peeked window that delimited the preceding run, consuming run and miss
// with one Skip. Candidate predictions are only computed for misses, which
// also skips region D's off-diagonal row sum on every hit.
//
// The wire format is untouched: both paths produce and consume the exact
// same bit sequence (the property test in batch_test.go flips useBatched
// off to prove byte identity across the fixture matrix, and the golden-runs
// corpus pins run-heavy blobs on disk).

// maxFusedRun bounds the run length the decoder handles inside one peeked
// window: after the run there must still be room for the miss marker, the
// selector (≤2 bits) and the 11-bit residual descriptor, so every fixed
// field is extracted from real stream bits (50 + 1 + 2 + 11 = 64). Longer
// runs take the generic RunOfOnes path and re-peek for the miss.
const maxFusedRun = 50

// noteHits tallies a run of temporal-exact hits: each costs one '1' payload
// bit and lands in the zero-residual histogram bucket, exactly as the
// per-element fast path in codeElement accounts them.
func (cc *chunkCoder) noteHits(n int64) {
	cc.stats.Elements += n
	cc.stats.PayloadBits += n
	cc.stats.LZHist[8] += n
}

// encodeMiss writes one element whose temporal prediction was not bit-exact:
// the '0' marker, the selector (best-fit matrices only) and the window-coded
// XOR residual, packed into a single WriteBits word whenever marker +
// selector + flags + descriptor + payload fit in 64 bits (payloads long
// enough to spill are written with one extra call). Bit sequence and
// statistics accounting are identical to the codeElement reference path.
func (cc *chunkCoder) encodeMiss(w *bitstream.Writer, val float64,
	cands *[4]float64, nSyms int, prev *uint8,
	table []uint8, counts func(prev, sym uint8)) uint8 {

	var sym uint8
	pre := uint64(0) // '0' marker plus selector bits, MSB-first
	preN := uint(1)
	if cc.calib {
		sym = bestSym(val, cands, nSyms)
		bitsN := uint(2)
		if nSyms == 2 {
			bitsN = 1
		}
		pre = uint64(sym) // the marker bit above it stays 0
		preN = 1 + bitsN
		if counts != nil {
			counts(*prev, sym)
		}
		cc.stats.SelectorBits += int64(bitsN)
	} else {
		sym = table[*prev]
		if cc.statsOn {
			cc.stats.MarkovPredicted++
			if math.Float64bits(val) == math.Float64bits(cands[sym]) {
				cc.stats.MarkovExact++
			}
		}
	}
	*prev = sym

	x := math.Float64bits(val) ^ math.Float64bits(cands[sym])
	if x == 0 {
		w.WriteBits(pre<<1|1, preN+1) // residual '1': prediction is exact
		cc.stats.LZHist[8]++
		cc.stats.PayloadBits++
		return sym
	}
	lz := uint(bits.LeadingZeros64(x))
	lz8 := lz &^ 7 // byte-class: x != 0 bounds lz at 63, so already ≤ 56
	tz := uint(bits.TrailingZeros64(x))
	length := 64 - lz8 - tz
	prevShift := 64 - cc.win.lz8 - cc.win.len
	// Share the previous window only when the residual fits it AND the
	// shared form is no longer than re-describing a tight window (1+len
	// shared vs 10+len fresh): a stale wide window wastes bits.
	fits := !cc.opt.DisableSharedWindow && cc.win.len > 0 &&
		lz >= cc.win.lz8 && tz >= prevShift && cc.win.len <= length+9
	if fits {
		wl := cc.win.len
		payload := x >> prevShift // < 2^wl: lz ≥ win.lz8 bounds the top bit
		if n := preN + 2 + wl; n <= 64 {
			w.WriteBits(pre<<(2+wl)|1<<wl|payload, n)
		} else {
			w.WriteBits(pre<<2|1, preN+2)
			w.WriteBits(payload, wl)
		}
		cc.stats.LZHist[lz8>>3]++
		cc.stats.PayloadBits += int64(2 + wl)
		return sym
	}
	desc := uint64(lz8>>3)<<6 | uint64(length-1) // 9 bits under the two '0' flags
	payload := x >> tz                           // < 2^length
	if n := preN + 11 + length; n <= 64 {
		w.WriteBits(pre<<(11+length)|desc<<length|payload, n)
	} else {
		w.WriteBits(pre<<11|desc, preN+11)
		w.WriteBits(payload, length)
	}
	cc.win.lz8 = lz8
	cc.win.len = length
	cc.stats.LZHist[lz8>>3]++
	cc.stats.PayloadBits += int64(11 + length)
	return sym
}

// decodeMissAt decodes one miss whose '0' marker sits at bit offset pre of
// the peeked window (w, valid) — pre counts the run of '1' hit bits the
// caller identified in the same window but has not consumed. Selector and
// residual fields are extracted branchlessly from the word; run, marker,
// selector and residual are consumed with a single Skip. The caller
// guarantees pre ≤ maxFusedRun, so every fixed field lies inside the
// window; only a long payload needs the ReadBits spill. Zero padding past
// the end of the stream reproduces exactly the zero-extended fields the
// sequential reference reads would decode, with ErrOverrun surfacing from
// Skip/ReadBits as before.
func (cc *chunkCoder) decodeMissAt(r *bitstream.Reader, pre uint, w uint64,
	cands *[4]float64, nSyms int, prev *uint8, table []uint8) float64 {

	off := pre + 1 // past the run and the '0' marker
	var sym uint8
	if cc.calib {
		bitsN := uint(2)
		if nSyms == 2 {
			bitsN = 1
		}
		sym = uint8((w << off) >> (64 - bitsN))
		off += bitsN
	} else {
		sym = table[*prev]
	}
	*prev = sym
	pred := cands[sym]

	wres := w << off // residual view, flags at the top
	var x uint64
	if wres&(1<<63) != 0 { // '1': zero residual
		r.Skip(off + 1)
		return pred
	}
	if wres&(1<<62) != 0 { // '0'+'1': payload reuses the previous window
		wl := cc.win.len
		prevShift := 64 - cc.win.lz8 - wl
		if n := off + 2 + wl; n <= 64 {
			x = ((wres << 2) >> (64 - wl)) << prevShift
			r.Skip(n)
		} else {
			r.Skip(off + 2)
			x = r.ReadBits(wl) << prevShift
		}
	} else { // '0'+'0': fresh 3-bit class + 6-bit length, then the payload
		lz8 := uint(wres>>59) & 7 << 3
		length := uint(wres>>53)&0x3f + 1
		if n := off + 11 + length; n <= 64 {
			x = ((wres << 11) >> (64 - length)) << (64 - lz8 - length)
			r.Skip(n)
		} else {
			r.Skip(off + 11)
			x = r.ReadBits(length) << (64 - lz8 - length)
		}
		cc.win.lz8 = lz8
		cc.win.len = length
	}
	return math.Float64frombits(math.Float64bits(pred) ^ x)
}

// encodeRegions writes the chunk's three regions (U, L, D) to w with
// hit-run batching.
func (cc *chunkCoder) encodeRegions(w *bitstream.Writer) {
	pl := cc.plan
	cur, ref := cc.cur, cc.ref
	var cands [4]float64

	countU := func(p, s uint8) { cc.counts.u[p][s]++ }
	countL := func(p, s uint8) { cc.counts.l[p][s]++ }
	countD := func(p, s uint8) { cc.counts.d[p][s]++ }
	if cc.counts == nil {
		countU, countL, countD = nil, nil, nil
	}

	// Region U.
	cc.win = window{}
	lo, hi := pl.uRowPtr[cc.rowLo], pl.uRowPtr[cc.rowHi]
	for k := lo; k < hi; {
		run := int32(0)
		for k+run < hi {
			slot := pl.uSlots[k+run]
			if math.Float64bits(cur[slot]) != math.Float64bits(ref[slot]) {
				break
			}
			run++
		}
		if run > 0 {
			w.WriteOnes(int(run))
			cc.noteHits(int64(run))
			cc.prevU = 0
			k += run
			if k >= hi {
				break
			}
		}
		slot := pl.uSlots[k]
		n := cc.candsU(slot, &cands)
		sym := cc.encodeMiss(w, cur[slot], &cands, n, &cc.prevU, cc.tables.u[:], countU)
		cc.note(sym, regionU)
		k++
	}

	// Region L: per-row last-value chaining. A hit's decoded value is the
	// reference value, so after a run the last-value candidate is simply
	// ref at the final slot of the run.
	cc.win = window{}
	for row := cc.rowLo; row < cc.rowHi; row++ {
		lastVal := 0.0
		haveLast := false
		rlo, rhi := pl.lRowPtr[row], pl.lRowPtr[row+1]
		for k := rlo; k < rhi; {
			run := int32(0)
			for k+run < rhi {
				slot := pl.lSlots[k+run]
				if math.Float64bits(cur[slot]) != math.Float64bits(ref[slot]) {
					break
				}
				run++
			}
			if run > 0 {
				w.WriteOnes(int(run))
				cc.noteHits(int64(run))
				cc.prevL = 0
				lastVal, haveLast = ref[pl.lSlots[k+run-1]], true
				k += run
				if k >= rhi {
					break
				}
			}
			slot := pl.lSlots[k]
			n := cc.candsL(slot, lastVal, haveLast, &cands)
			val := cur[slot]
			sym := cc.encodeMiss(w, val, &cands, n, &cc.prevL, cc.tables.l[:], countL)
			cc.note(sym, regionL)
			lastVal, haveLast = val, true
			k++
		}
	}

	// Region D over the packed diagonal slots: skipping candsD on hits also
	// skips the off-diagonal row sum, the most expensive candidate.
	cc.win = window{}
	dlo, dhi := pl.dRowPtr[cc.rowLo], pl.dRowPtr[cc.rowHi]
	for k := dlo; k < dhi; {
		run := int32(0)
		for k+run < dhi {
			slot := pl.dSlots[k+run]
			if math.Float64bits(cur[slot]) != math.Float64bits(ref[slot]) {
				break
			}
			run++
		}
		if run > 0 {
			w.WriteOnes(int(run))
			cc.noteHits(int64(run))
			cc.prevD = 0
			k += run
			if k >= dhi {
				break
			}
		}
		slot := pl.dSlots[k]
		n := cc.candsD(pl.dRows[k], slot, &cands)
		sym := cc.encodeMiss(w, cur[slot], &cands, n, &cc.prevD, cc.tables.d[:], countD)
		cc.note(sym, regionD)
		k++
	}
}

// decodeRegions fills cc.cur for the chunk's rows from r with hit-run
// batching. Each loop iteration peeks one 64-bit window, counts the run of
// '1' hits with a LeadingZeros64, and — when the following miss's fixed
// fields fit in the same window — decodes run and miss with a single Skip.
// Runs reaching the segment end, the window edge, or maxFusedRun fall back
// to the generic RunOfOnes path and re-peek. On a corrupt or truncated
// stream it follows the same zeros-past-the-end decode the scalar path
// performs, with ErrOverrun surfacing through r.Err() as before.
func (cc *chunkCoder) decodeRegions(r *bitstream.Reader) {
	pl := cc.plan
	cur, ref := cc.cur, cc.ref
	var cands [4]float64

	// Region U.
	cc.win = window{}
	lo, hi := pl.uRowPtr[cc.rowLo], pl.uRowPtr[cc.rowHi]
	for k := lo; k < hi; {
		w, valid := r.Peek64()
		ones := uint(bits.LeadingZeros64(^w))
		if ones > valid {
			ones = valid
		}
		rem := uint(hi - k)
		if ones < rem && ones <= maxFusedRun && ones < valid {
			// Fused path: the run and the following miss share this window.
			if ones > 0 {
				for i := uint(0); i < ones; i++ {
					slot := pl.uSlots[k+int32(i)]
					cur[slot] = ref[slot]
				}
				cc.noteHits(int64(ones))
				cc.prevU = 0
				k += int32(ones)
			}
			slot := pl.uSlots[k]
			n := cc.candsU(slot, &cands)
			cur[slot] = cc.decodeMissAt(r, ones, w, &cands, n, &cc.prevU, cc.tables.u[:])
			k++
			continue
		}
		run := int32(r.RunOfOnes(int(rem)))
		for i := int32(0); i < run; i++ {
			slot := pl.uSlots[k+i]
			cur[slot] = ref[slot]
		}
		if run > 0 {
			cc.noteHits(int64(run))
			cc.prevU = 0
			k += run
		} else if valid == 0 {
			// Exhausted stream: decode the miss from zero padding so the
			// loop advances exactly as the scalar reference does.
			slot := pl.uSlots[k]
			n := cc.candsU(slot, &cands)
			cur[slot] = cc.decodeMissAt(r, 0, 0, &cands, n, &cc.prevU, cc.tables.u[:])
			k++
		}
	}

	// Region L.
	cc.win = window{}
	for row := cc.rowLo; row < cc.rowHi; row++ {
		lastVal := 0.0
		haveLast := false
		rlo, rhi := pl.lRowPtr[row], pl.lRowPtr[row+1]
		for k := rlo; k < rhi; {
			w, valid := r.Peek64()
			ones := uint(bits.LeadingZeros64(^w))
			if ones > valid {
				ones = valid
			}
			rem := uint(rhi - k)
			if ones < rem && ones <= maxFusedRun && ones < valid {
				if ones > 0 {
					var slot int32
					for i := uint(0); i < ones; i++ {
						slot = pl.lSlots[k+int32(i)]
						cur[slot] = ref[slot]
					}
					cc.noteHits(int64(ones))
					cc.prevL = 0
					lastVal, haveLast = cur[slot], true
					k += int32(ones)
				}
				slot := pl.lSlots[k]
				n := cc.candsL(slot, lastVal, haveLast, &cands)
				v := cc.decodeMissAt(r, ones, w, &cands, n, &cc.prevL, cc.tables.l[:])
				cur[slot] = v
				lastVal, haveLast = v, true
				k++
				continue
			}
			run := int32(r.RunOfOnes(int(rem)))
			if run > 0 {
				var slot int32
				for i := int32(0); i < run; i++ {
					slot = pl.lSlots[k+i]
					cur[slot] = ref[slot]
				}
				cc.noteHits(int64(run))
				cc.prevL = 0
				lastVal, haveLast = cur[slot], true
				k += run
			} else if valid == 0 {
				slot := pl.lSlots[k]
				n := cc.candsL(slot, lastVal, haveLast, &cands)
				v := cc.decodeMissAt(r, 0, 0, &cands, n, &cc.prevL, cc.tables.l[:])
				cur[slot] = v
				lastVal, haveLast = v, true
				k++
			}
		}
	}

	// Region D.
	cc.win = window{}
	dlo, dhi := pl.dRowPtr[cc.rowLo], pl.dRowPtr[cc.rowHi]
	for k := dlo; k < dhi; {
		w, valid := r.Peek64()
		ones := uint(bits.LeadingZeros64(^w))
		if ones > valid {
			ones = valid
		}
		rem := uint(dhi - k)
		if ones < rem && ones <= maxFusedRun && ones < valid {
			if ones > 0 {
				for i := uint(0); i < ones; i++ {
					slot := pl.dSlots[k+int32(i)]
					cur[slot] = ref[slot]
				}
				cc.noteHits(int64(ones))
				cc.prevD = 0
				k += int32(ones)
			}
			slot := pl.dSlots[k]
			n := cc.candsD(pl.dRows[k], slot, &cands)
			cur[slot] = cc.decodeMissAt(r, ones, w, &cands, n, &cc.prevD, cc.tables.d[:])
			k++
			continue
		}
		run := int32(r.RunOfOnes(int(rem)))
		for i := int32(0); i < run; i++ {
			slot := pl.dSlots[k+i]
			cur[slot] = ref[slot]
		}
		if run > 0 {
			cc.noteHits(int64(run))
			cc.prevD = 0
			k += run
		} else if valid == 0 {
			slot := pl.dSlots[k]
			n := cc.candsD(pl.dRows[k], slot, &cands)
			cur[slot] = cc.decodeMissAt(r, 0, 0, &cands, n, &cc.prevD, cc.tables.d[:])
			k++
		}
	}
}
