package masczip

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"masc/internal/atomicio"
	"masc/internal/sparse"
)

// goldenFrames returns the deterministic pattern and frame sequence the
// golden corpus is built from. math/rand's sequence for a fixed seed is
// covered by the Go 1 compatibility promise, so these values are stable
// across toolchains.
func goldenFrames() (*sparse.Pattern, [][]float64) {
	rng := rand.New(rand.NewSource(42))
	p := mnaPattern(rng, 16, 20)
	v := mnaValues(rng, p, 0.05)
	frames := [][]float64{v}
	for i := 0; i < 4; i++ {
		v = evolve(rng, v, 1e-6)
		frames = append(frames, v)
	}
	return p, frames
}

// goldenRunFrames returns the deterministic run-heavy frame chain behind
// the golden-runs corpora: long exact-hit runs and window-shared residual
// streaks, the inputs the word-parallel batched coder specializes for.
func goldenRunFrames() (*sparse.Pattern, [][]float64) {
	rng := rand.New(rand.NewSource(43))
	p := mnaPattern(rng, 24, 30)
	return p, runHeavyFrames(rng, p, 6)
}

// writeCorpus serializes blobs as: uvarint count, then per blob uvarint
// length + bytes. Written atomically so an interrupted MASC_UPDATE_GOLDEN
// run cannot leave a torn corpus that later runs trust.
func writeCorpus(path string, blobs [][]byte) error {
	out := binary.AppendUvarint(nil, uint64(len(blobs)))
	for _, b := range blobs {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return atomicio.WriteFile(path, out, 0o644)
}

func readCorpus(path string) ([][]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cnt, k := binary.Uvarint(raw)
	if k <= 0 {
		return nil, fmt.Errorf("bad corpus header")
	}
	off := k
	blobs := make([][]byte, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, k := binary.Uvarint(raw[off:])
		if k <= 0 || off+k+int(l) > len(raw) {
			return nil, fmt.Errorf("truncated corpus at blob %d", i)
		}
		off += k
		blobs = append(blobs, raw[off:off+int(l)])
		off += int(l)
	}
	return blobs, nil
}

// TestGoldenFormat pins the masczip on-disk format: the checked-in blobs
// must decode to the exact deterministic frame sequence (decode
// compatibility — old archives stay readable), and a fresh encoder over the
// same frames must reproduce the blobs byte for byte (encode identity — the
// format has not silently drifted). Regenerate after a deliberate format
// change with MASC_UPDATE_GOLDEN=1 go test ./internal/compress/masczip
// -run TestGoldenFormat, and say so in the commit message.
func TestGoldenFormat(t *testing.T) {
	goldenCorpusTest(t, goldenFrames, []goldenProfile{
		{"plain", Options{}},
		{"markov", Options{Markov: true, CalibEvery: 2}},
		{"chunked", Options{Workers: 3}},
	})
}

// TestGoldenRuns pins the format over the run-heavy corpus: blobs dominated
// by long '1'-bit hit runs and shared-window residual streaks, the exact
// shapes the batched word-parallel paths rewrite. Any drift in run batching
// shows up here as an encode-identity failure.
func TestGoldenRuns(t *testing.T) {
	goldenCorpusTest(t, goldenRunFrames, []goldenProfile{
		{"runs", Options{}},
		{"runs-markov", Options{Markov: true, CalibEvery: 3}},
		{"runs-chunked", Options{Workers: 4}},
	})
}

type goldenProfile struct {
	name string
	opt  Options
}

func goldenCorpusTest(t *testing.T, mk func() (*sparse.Pattern, [][]float64), profiles []goldenProfile) {
	p, frames := mk()
	for _, prof := range profiles {
		t.Run(prof.name, func(t *testing.T) {
			// Encode the frame chain the way the store does: frame i against
			// frame i+1 as reference, head frame unreferenced.
			c := New(p, prof.opt)
			var blobs [][]byte
			for i := 0; i < len(frames)-1; i++ {
				blobs = append(blobs, c.Compress(nil, frames[i], frames[i+1]))
			}
			blobs = append(blobs, c.Compress(nil, frames[len(frames)-1], nil))

			path := filepath.Join("testdata", "golden-"+prof.name+".bin")
			if os.Getenv("MASC_UPDATE_GOLDEN") != "" {
				if err := writeCorpus(path, blobs); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := readCorpus(path)
			if err != nil {
				t.Fatalf("reading %s (regenerate with MASC_UPDATE_GOLDEN=1): %v", path, err)
			}

			// Encode identity.
			if len(golden) != len(blobs) {
				t.Fatalf("golden holds %d blobs, encoder produced %d", len(golden), len(blobs))
			}
			for i := range blobs {
				if !bytes.Equal(blobs[i], golden[i]) {
					t.Fatalf("blob %d: encoder output diverged from golden corpus (%d vs %d bytes);\n"+
						"if the format change is deliberate, regenerate with MASC_UPDATE_GOLDEN=1",
						i, len(blobs[i]), len(golden[i]))
				}
			}

			// Decode compatibility: a fresh decoder must invert the
			// checked-in corpus bit-exactly.
			d := New(p, prof.opt)
			got := make([]float64, p.NNZ())
			for i := range golden {
				var ref []float64
				if i < len(frames)-1 {
					ref = frames[i+1]
				}
				if err := d.Decompress(got, golden[i], ref); err != nil {
					t.Fatalf("golden blob %d: %v", i, err)
				}
				for k := range got {
					if math.Float64bits(got[k]) != math.Float64bits(frames[i][k]) {
						t.Fatalf("golden blob %d value %d: got %x want %x",
							i, k, math.Float64bits(got[k]), math.Float64bits(frames[i][k]))
					}
				}
			}
		})
	}
}
