package masczip

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"masc/internal/sparse"
)

// runHeavyFrames builds a deterministic frame chain dominated by bit-exact
// temporal hits: most steps touch only a handful of slots (long exact-hit
// runs for the batched coder), and every third step perturbs a contiguous
// band with like-magnitude relative deltas so consecutive residuals share a
// leading-zero window (window-shared streaks).
func runHeavyFrames(rng *rand.Rand, p *sparse.Pattern, steps int) [][]float64 {
	nnz := p.NNZ()
	frames := [][]float64{mnaValues(rng, p, 0.05)}
	for s := 0; s < steps; s++ {
		nv := append([]float64(nil), frames[len(frames)-1]...)
		if s%3 == 2 {
			lo := rng.Intn(nnz)
			n := rng.Intn(nnz/4+1) + 4
			for i := lo; i < lo+n && i < nnz; i++ {
				nv[i] *= 1 + 1e-7*(1+rng.Float64())
			}
		} else {
			for t := 0; t < 3; t++ {
				nv[rng.Intn(nnz)] *= 1 + 1e-6*rng.NormFloat64()
			}
		}
		frames = append(frames, nv)
	}
	return frames
}

// batchFixtures returns the (options, frame-chain) matrix the wire-identity
// property test runs over: every coding mode (best-fit, Markov with a short
// calibration period, chunked) and every ablation switch, crossed with a
// generic evolving chain, a run-heavy chain, a fully static chain, and a
// specials-laced chain.
func batchFixtures() []struct {
	name   string
	opt    Options
	p      *sparse.Pattern
	frames [][]float64
} {
	type fix = struct {
		name   string
		opt    Options
		p      *sparse.Pattern
		frames [][]float64
	}
	var out []fix

	opts := []struct {
		name string
		opt  Options
	}{
		{"plain", Options{}},
		{"markov", Options{Markov: true, CalibEvery: 2}},
		{"chunked", Options{Workers: 3}},
		{"markov-chunked", Options{Markov: true, CalibEvery: 3, Workers: 4}},
		{"stats", Options{CollectStats: true}},
		{"no-stamp", Options{DisableStamp: true}},
		{"no-lastvalue", Options{DisableLastValue: true}},
		{"no-window", Options{DisableSharedWindow: true}},
	}
	chains := []struct {
		name  string
		build func(rng *rand.Rand, p *sparse.Pattern) [][]float64
	}{
		{"evolving", func(rng *rand.Rand, p *sparse.Pattern) [][]float64 {
			v := mnaValues(rng, p, 0.05)
			fr := [][]float64{v}
			for i := 0; i < 5; i++ {
				v = evolve(rng, v, 1e-6)
				fr = append(fr, v)
			}
			return fr
		}},
		{"run-heavy", func(rng *rand.Rand, p *sparse.Pattern) [][]float64 {
			return runHeavyFrames(rng, p, 7)
		}},
		{"static", func(rng *rand.Rand, p *sparse.Pattern) [][]float64 {
			v := mnaValues(rng, p, 0.01)
			return [][]float64{v, v, v}
		}},
		{"specials", func(rng *rand.Rand, p *sparse.Pattern) [][]float64 {
			v := mnaValues(rng, p, 0.05)
			specials := []float64{0, math.Copysign(0, -1),
				math.Inf(1), math.Inf(-1), math.NaN(),
				math.MaxFloat64, math.SmallestNonzeroFloat64}
			w := append([]float64(nil), v...)
			for i := 0; i < len(w); i += 5 {
				w[i] = specials[(i/5)%len(specials)]
			}
			return [][]float64{w, v, w}
		}},
	}
	for _, o := range opts {
		for _, ch := range chains {
			rng := rand.New(rand.NewSource(99))
			p := mnaPattern(rng, 18, 22)
			out = append(out, fix{o.name + "/" + ch.name, o.opt, p, ch.build(rng, p)})
		}
	}
	return out
}

// withScalarPaths runs f with the batched region coders disabled, restoring
// them afterwards. Tests using it cannot run in parallel with each other.
func withScalarPaths(f func()) {
	useBatched = false
	defer func() { useBatched = true }()
	f()
}

// TestBatchedWireIdentity is the property test gating the word-parallel
// paths: across every fixture, the batched encoder must emit byte-identical
// blobs to the element-at-a-time reference path, each decoder must invert
// the other's blobs bit-exactly, and the encoder statistics must agree.
func TestBatchedWireIdentity(t *testing.T) {
	for _, fx := range batchFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			encodeChain := func() ([][]byte, Stats) {
				c := New(fx.p, fx.opt)
				var blobs [][]byte
				for i := 0; i < len(fx.frames)-1; i++ {
					blobs = append(blobs, c.Compress(nil, fx.frames[i], fx.frames[i+1]))
				}
				blobs = append(blobs, c.Compress(nil, fx.frames[len(fx.frames)-1], nil))
				return blobs, c.Stats()
			}
			batched, batchedStats := encodeChain()
			var scalar [][]byte
			var scalarStats Stats
			withScalarPaths(func() { scalar, scalarStats = encodeChain() })

			for i := range batched {
				if !bytes.Equal(batched[i], scalar[i]) {
					t.Fatalf("blob %d: batched encode diverged from scalar (%d vs %d bytes)",
						i, len(batched[i]), len(scalar[i]))
				}
			}
			if batchedStats != scalarStats {
				t.Fatalf("stats diverged:\nbatched: %+v\nscalar:  %+v", batchedStats, scalarStats)
			}

			decodeChain := func(blobs [][]byte) [][]float64 {
				d := New(fx.p, fx.opt)
				var got [][]float64
				for i := range blobs {
					var ref []float64
					if i < len(fx.frames)-1 {
						ref = fx.frames[i+1]
					}
					out := make([]float64, fx.p.NNZ())
					if err := d.Decompress(out, blobs[i], ref); err != nil {
						t.Fatalf("blob %d: %v", i, err)
					}
					got = append(got, out)
				}
				return got
			}
			// Batched decoder over scalar-encoded blobs (and vice versa —
			// the blobs are identical, so one decode per mode covers both).
			fromBatched := decodeChain(scalar)
			var fromScalar [][]float64
			withScalarPaths(func() { fromScalar = decodeChain(batched) })
			for i := range fromBatched {
				for k := range fromBatched[i] {
					want := math.Float64bits(fx.frames[i][k])
					if g := math.Float64bits(fromBatched[i][k]); g != want {
						t.Fatalf("batched decode blob %d value %d: got %x want %x", i, k, g, want)
					}
					if g := math.Float64bits(fromScalar[i][k]); g != want {
						t.Fatalf("scalar decode blob %d value %d: got %x want %x", i, k, g, want)
					}
				}
			}
		})
	}
}

// TestBatchedTruncatedAgreesWithScalar pins the error path: on truncated
// blobs both decoders must report an error through the same surface (no
// panics), keeping the hardened-decoder contract of the conformance matrix.
func TestBatchedTruncatedAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mnaPattern(rng, 14, 16)
	frames := runHeavyFrames(rng, p, 3)
	c := New(p, Options{})
	blob := c.Compress(nil, frames[0], frames[1])
	out := make([]float64, p.NNZ())
	for k := 0; k < len(blob); k++ {
		berr := New(p, Options{}).Decompress(out, blob[:k], frames[1])
		var serr error
		withScalarPaths(func() {
			serr = New(p, Options{}).Decompress(out, blob[:k], frames[1])
		})
		if (berr == nil) != (serr == nil) {
			t.Fatalf("prefix %d: batched err %v, scalar err %v", k, berr, serr)
		}
	}
}

// TestEncodeAllocsPinnedZero pins the steady-state compress/decompress hot
// path at zero allocations per call: a MASC run pushes thousands of frames
// through one Compressor, so a per-call allocation is a regression.
func TestEncodeAllocsPinnedZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := mnaPattern(rng, 24, 30)
	frames := runHeavyFrames(rng, p, 4)
	c := New(p, Options{})
	dst := make([]byte, 0, 1<<20)
	// Warm up scratch (first calls size the chunk state and zeros buffer).
	blob := c.Compress(dst, frames[0], frames[1])
	if avg := testing.AllocsPerRun(200, func() {
		dst = c.Compress(dst[:0], frames[0], frames[1])
	}); avg != 0 {
		t.Fatalf("Compress allocates %.1f per call, want 0", avg)
	}
	out := make([]float64, p.NNZ())
	if err := c.Decompress(out, blob, frames[1]); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := c.Decompress(out, blob, frames[1]); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Decompress allocates %.1f per call, want 0", avg)
	}
}
