package masczip

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"masc/internal/compress"
	"masc/internal/compress/bitstream"
	"masc/internal/compress/workpool"
	"masc/internal/obs/span"
	"masc/internal/sparse"
)

// Options configures a Compressor.
type Options struct {
	// Markov enables the Markov model-selection mode: most matrices carry
	// no per-element selector bits; every CalibEvery-th matrix runs
	// best-fit selection and refreshes the transition statistics.
	Markov bool
	// CalibEvery is the calibration period in Markov mode (default 16).
	CalibEvery int
	// Workers > 1 splits each matrix into row chunks compressed in
	// parallel goroutines.
	Workers int
	// CollectStats accumulates model-selection and residual statistics
	// (Figures 5b and 6 of the paper).
	CollectStats bool

	// Ablation switches.
	DisableStamp        bool // drop the stamp-based spatial candidates
	DisableLastValue    bool // drop the last-value candidate in region L
	DisableSharedWindow bool // always re-emit the residual window
}

// Stats aggregates encoder-side statistics across all compressed matrices.
type Stats struct {
	Elements int64
	// SelectorElements counts elements that actually went through model
	// selection (a nonzero temporal residual); the model-family counters
	// below partition it. Elements whose temporal prediction was bit-exact
	// take the 1-bit fast path and are not "selections" (Figure 6
	// semantics of the paper).
	SelectorElements int64
	Temporal         int64
	Stamp            int64
	LastValue        int64
	// LZHist[i] counts residuals whose leading-zero class is 8·i
	// (i = 0..7); LZHist[8] counts all-zero residuals.
	LZHist [9]int64
	// SelectorBits / PayloadBits split the stream cost.
	SelectorBits int64
	PayloadBits  int64
	// MarkovPredicted counts elements whose selector came from the frozen
	// Markov table (non-calibration matrices, no selector bits on the
	// wire); MarkovExact counts the subset whose predicted model
	// reproduced the value bit-exactly. Their ratio is the Markov hit
	// rate.
	MarkovPredicted int64
	MarkovExact     int64
}

// MarkovHitRate is MarkovExact/MarkovPredicted (0 when nothing was
// table-predicted).
func (s *Stats) MarkovHitRate() float64 {
	if s.MarkovPredicted == 0 {
		return 0
	}
	return float64(s.MarkovExact) / float64(s.MarkovPredicted)
}

func (s *Stats) merge(o *Stats) {
	s.Elements += o.Elements
	s.SelectorElements += o.SelectorElements
	s.Temporal += o.Temporal
	s.Stamp += o.Stamp
	s.LastValue += o.LastValue
	for i := range s.LZHist {
		s.LZHist[i] += o.LZHist[i]
	}
	s.SelectorBits += o.SelectorBits
	s.PayloadBits += o.PayloadBits
	s.MarkovPredicted += o.MarkovPredicted
	s.MarkovExact += o.MarkovExact
}

// Compressor implements compress.Compressor for one shared pattern.
// It is not safe for concurrent use by multiple goroutines (internally it
// parallelizes over chunks when Workers > 1).
type Compressor struct {
	plan  *plan
	opt   Options
	seq   int // matrices compressed so far
	cnt   markovCounts
	stats Stats
	zeros []float64

	// Per-chunk scratch reused across calls. A MASC run compresses the
	// Jacobian tensor thousands of times through one Compressor, so the
	// hot path must not allocate: writers/readers keep their buffers,
	// coders/counts/chStats are cleared in place, and the chunk fan-out
	// goes through the persistent workpool instead of fresh goroutines.
	encBounds []int32 // cached chunkRows(opt.Workers)
	curBounds []int32 // bounds of the call in flight (encode or decode)
	writers   []*bitstream.Writer
	readers   []*bitstream.Reader
	coders    []chunkCoder
	counts    []markovCounts
	chStats   []Stats
	decBounds []int32
	lens      []int
	starts    []int
	errs      []error

	// Call state shared with encFn/decFn, which are allocated once here
	// rather than as per-call closures.
	cur, ref []float64
	blob     []byte
	calib    bool
	tbl      markovTables
	encFn    func(int)
	decFn    func(int)

	// Codec-level span tracing. The owning store serializes all calls on
	// one Compressor, so these are set without synchronization between
	// calls; nil spanRec (the default) keeps the hot path untouched.
	spanRec    *span.Recorder
	spanParent span.ID
}

// New returns a MASC compressor bound to pattern p.
func New(p *sparse.Pattern, opt Options) *Compressor {
	if opt.CalibEvery <= 0 {
		opt.CalibEvery = 16
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	c := &Compressor{plan: newPlan(p), opt: opt}
	c.encFn = c.encodeChunk
	c.decFn = c.decodeChunk
	return c
}

// Restart cuts the prediction chain: the next Compress call behaves exactly
// as the first call on a fresh compressor would — it re-calibrates (so the
// emitted blob carries its own coding tables) and starts the Markov counts
// from scratch. Callers that pass ref=nil for the post-restart frame get a
// fully self-contained blob, which is how the compressed store opens a new
// window at an anchor step.
func (c *Compressor) Restart() {
	c.seq = 0
	c.cnt = markovCounts{}
}

// Fork returns an independent compressor over the same pattern and options.
// Decompress is driven entirely by per-blob headers (each blob carries or
// re-derives its tables), so a fork can decode any blob the original
// produced; windowed sweeps use forks as per-slice decoders.
func (c *Compressor) Fork() compress.Compressor {
	return New(c.plan.pat, c.opt)
}

// ensureChunks grows the per-chunk scratch to hold nchunks entries.
func (c *Compressor) ensureChunks(nchunks int) {
	for len(c.writers) < nchunks {
		c.writers = append(c.writers, bitstream.NewWriter(1024))
	}
	for len(c.readers) < nchunks {
		c.readers = append(c.readers, bitstream.NewReader(nil))
	}
	if cap(c.coders) < nchunks {
		c.coders = make([]chunkCoder, nchunks)
	}
	c.coders = c.coders[:cap(c.coders)]
	if cap(c.counts) < nchunks {
		c.counts = make([]markovCounts, nchunks)
	}
	c.counts = c.counts[:cap(c.counts)]
	if cap(c.chStats) < nchunks {
		c.chStats = make([]Stats, nchunks)
	}
	c.chStats = c.chStats[:cap(c.chStats)]
	if cap(c.errs) < nchunks {
		c.errs = make([]error, nchunks)
	}
	c.errs = c.errs[:cap(c.errs)]
}

// SetSpans installs a span recorder: each Compress/Decompress call then
// records an encode/decode span under the parent set by SetSpanParent.
func (c *Compressor) SetSpans(rec *span.Recorder) { c.spanRec = rec }

// SetSpanParent sets the parent span for subsequent codec spans. The owning
// store calls it right before Compress/Decompress so codec work nests under
// the store's compress/decompress span.
func (c *Compressor) SetSpanParent(id span.ID) { c.spanParent = id }

// Name implements compress.Compressor.
func (c *Compressor) Name() string {
	if c.opt.Markov {
		return "masc+markov"
	}
	return "masc"
}

// Lossless implements compress.Compressor.
func (c *Compressor) Lossless() bool { return true }

// Stats returns the accumulated encoder statistics.
func (c *Compressor) Stats() Stats { return c.stats }

// ResetStats clears the accumulated statistics.
func (c *Compressor) ResetStats() { c.stats = Stats{} }

// header flag bits.
const (
	flagCalib = 1 << 0
)

func (c *Compressor) refOrZeros(ref []float64) []float64 {
	if ref != nil {
		return ref
	}
	if len(c.zeros) != c.plan.nnz {
		c.zeros = make([]float64, c.plan.nnz)
	}
	return c.zeros
}

// encodeChunk encodes chunk ci of the call in flight into its persistent
// writer. It is c.encFn, dispatched through the workpool.
func (c *Compressor) encodeChunk(ci int) {
	w := c.writers[ci]
	w.Reset()
	ec := &c.coders[ci]
	*ec = chunkCoder{
		plan: c.plan, opt: &c.opt,
		cur: c.cur, ref: c.ref,
		rowLo: c.curBounds[ci], rowHi: c.curBounds[ci+1],
		calib: c.calib, tables: &c.tbl,
		counts: &c.counts[ci],
	}
	// The stats sink is never nil: with collection off it points at the
	// coder's own discard field (zeroed by the assignment above, never
	// merged), so the per-element hot path carries no nil checks.
	ec.stats = &ec.discard
	if c.opt.CollectStats {
		ec.stats = &c.chStats[ci]
		ec.statsOn = true
	}
	ec.encode(w)
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(dst []byte, cur, ref []float64) []byte {
	if len(cur) != c.plan.nnz {
		panic(fmt.Sprintf("masczip: value count %d does not match pattern nnz %d", len(cur), c.plan.nnz))
	}
	var sp span.Span
	if c.spanRec != nil {
		sp = c.spanRec.Start(c.spanParent, span.Encode, -1)
	}
	base := len(dst)
	ref = c.refOrZeros(ref)
	calib := !c.opt.Markov || c.seq%c.opt.CalibEvery == 0
	c.seq++

	if c.encBounds == nil {
		c.encBounds = c.plan.chunkRows(c.opt.Workers)
	}
	bounds := c.encBounds
	nchunks := len(bounds) - 1

	var flags byte
	if calib {
		flags |= flagCalib
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(cur)))
	// The chunk row boundaries travel in the header: re-deriving them from
	// the chunk count alone is not a fixed point of the partitioner when
	// boundary collisions drop segments.
	dst = binary.AppendUvarint(dst, uint64(nchunks))
	for i := 1; i < nchunks; i++ {
		dst = binary.AppendUvarint(dst, uint64(bounds[i]-bounds[i-1]))
	}
	c.tbl = c.cnt.tables()
	if !calib {
		tb := c.tbl.pack()
		dst = append(dst, tb[:]...)
	}

	c.ensureChunks(nchunks)
	c.cur, c.ref, c.calib, c.curBounds = cur, ref, calib, bounds
	if calib {
		for i := 0; i < nchunks; i++ {
			c.counts[i] = markovCounts{}
		}
	}
	if c.opt.CollectStats {
		for i := 0; i < nchunks; i++ {
			c.chStats[i] = Stats{}
		}
	}
	workpool.Do(nchunks, c.encFn)
	c.cur, c.ref = nil, nil
	if calib {
		for i := 0; i < nchunks; i++ {
			c.cnt.merge(&c.counts[i])
		}
	}
	if c.opt.CollectStats {
		for i := 0; i < nchunks; i++ {
			c.stats.merge(&c.chStats[i])
		}
	}
	for ci := 0; ci < nchunks; ci++ {
		dst = binary.AppendUvarint(dst, uint64(c.writers[ci].Len()))
	}
	for ci := 0; ci < nchunks; ci++ {
		dst = c.writers[ci].AppendTo(dst)
	}
	if c.spanRec != nil {
		sp.Attr("elems", int64(len(cur)))
		sp.Attr("bytes", int64(len(dst)-base))
		sp.Attr("calib", boolInt(calib))
		sp.End()
	}
	return dst
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// decodeChunk decodes chunk ci of the call in flight, recording any error
// in c.errs[ci]. It is c.decFn, dispatched through the workpool.
func (c *Compressor) decodeChunk(ci int) {
	r := c.readers[ci]
	r.Reset(c.blob[c.starts[ci] : c.starts[ci]+c.lens[ci]])
	dc := &c.coders[ci]
	*dc = chunkCoder{
		plan: c.plan, opt: &c.opt,
		cur: c.cur, ref: c.ref,
		rowLo: c.decBounds[ci], rowHi: c.decBounds[ci+1],
		calib: c.calib, tables: &c.tbl,
	}
	dc.stats = &dc.discard
	if err := dc.decode(r); err != nil {
		c.errs[ci] = fmt.Errorf("masczip: chunk %d: %w", ci, err)
	} else {
		c.errs[ci] = nil
	}
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(cur []float64, blob []byte, ref []float64) error {
	if c.spanRec != nil {
		sp := c.spanRec.Start(c.spanParent, span.Decode, -1)
		sp.Attr("elems", int64(len(cur)))
		sp.Attr("bytes", int64(len(blob)))
		defer sp.End()
	}
	if len(cur) != c.plan.nnz {
		return fmt.Errorf("masczip: value count %d does not match pattern nnz %d", len(cur), c.plan.nnz)
	}
	if ref != nil && len(ref) != c.plan.nnz {
		return fmt.Errorf("masczip: reference count %d does not match pattern nnz %d", len(ref), c.plan.nnz)
	}
	ref = c.refOrZeros(ref)
	if len(blob) < 1 {
		return fmt.Errorf("masczip: empty blob")
	}
	flags := blob[0]
	off := 1
	n, k := binary.Uvarint(blob[off:])
	if k <= 0 {
		return fmt.Errorf("masczip: bad element count")
	}
	off += k
	if n != uint64(len(cur)) {
		return fmt.Errorf("masczip: blob holds %d elements, want %d", n, len(cur))
	}
	nchunks64, k := binary.Uvarint(blob[off:])
	if k <= 0 {
		return fmt.Errorf("masczip: bad chunk count")
	}
	off += k
	if nchunks64 < 1 || nchunks64 > uint64(c.plan.pat.N) {
		return fmt.Errorf("masczip: implausible chunk count %d", nchunks64)
	}
	nchunks := int(nchunks64)
	if cap(c.decBounds) < nchunks+1 {
		c.decBounds = make([]int32, nchunks+1)
	}
	bounds := c.decBounds[:nchunks+1]
	bounds[0] = 0
	for i := 1; i < nchunks; i++ {
		d, k := binary.Uvarint(blob[off:])
		if k <= 0 {
			return fmt.Errorf("masczip: truncated chunk boundary %d", i)
		}
		off += k
		// Bound the delta before the int32 conversion: an adversarial
		// uvarint can exceed 2^31 and wrap negative, sneaking past the
		// monotonicity check below.
		if d == 0 || d > uint64(c.plan.pat.N) {
			return fmt.Errorf("masczip: implausible chunk boundary delta %d", d)
		}
		bounds[i] = bounds[i-1] + int32(d)
		if bounds[i] <= bounds[i-1] || bounds[i] >= int32(c.plan.pat.N) {
			return fmt.Errorf("masczip: invalid chunk boundary %d", bounds[i])
		}
	}
	bounds[nchunks] = int32(c.plan.pat.N)
	calib := flags&flagCalib != 0
	var tables markovTables
	if !calib {
		if len(blob) < off+3 {
			return fmt.Errorf("masczip: truncated markov table")
		}
		tables = unpackTables([3]byte{blob[off], blob[off+1], blob[off+2]})
		off += 3
	}
	if cap(c.lens) < nchunks {
		c.lens = make([]int, nchunks)
		c.starts = make([]int, nchunks)
	}
	lens := c.lens[:nchunks]
	starts := c.starts[:nchunks]
	for i := range lens {
		l, k := binary.Uvarint(blob[off:])
		if k <= 0 {
			return fmt.Errorf("masczip: bad chunk length %d", i)
		}
		off += k
		if l > uint64(len(blob)) {
			return fmt.Errorf("masczip: chunk %d length %d exceeds blob", i, l)
		}
		lens[i] = int(l)
	}
	for i := range lens {
		starts[i] = off
		off += lens[i]
		// Check inside the loop: the summed lengths of many maximal
		// chunks could overflow off if left unchecked until the end.
		if off > len(blob) {
			return fmt.Errorf("masczip: truncated payload")
		}
	}
	c.ensureChunks(nchunks)
	c.cur, c.ref, c.calib, c.tbl, c.blob = cur, ref, calib, tables, blob
	workpool.Do(nchunks, c.decFn)
	c.cur, c.ref, c.blob = nil, nil, nil
	for ci := 0; ci < nchunks; ci++ {
		if c.errs[ci] != nil {
			return c.errs[ci]
		}
	}
	return nil
}

// chunkCoder encodes or decodes the rows [rowLo, rowHi) of one matrix.
type chunkCoder struct {
	plan   *plan
	opt    *Options
	cur    []float64 // encoder: input; decoder: output
	ref    []float64
	rowLo  int32
	rowHi  int32
	calib  bool
	tables *markovTables
	counts *markovCounts // calibration output (encoder only)

	// stats is never nil: it points at chStats when collection is on and at
	// discard otherwise, so the hot loops increment unconditionally instead
	// of branching per element. statsOn guards only the counters whose
	// computation itself costs something (the Markov exactness probe).
	stats   *Stats
	statsOn bool
	discard Stats

	win   window
	prevU uint8 // Markov chain states per region
	prevL uint8
	prevD uint8
}

// window is the shared leading-zero window of the residual coder.
type window struct {
	lz8 uint // leading-zero class (multiple of 8)
	len uint // meaningful bit count
}

// inChunk reports whether slot k's row belongs to this chunk, i.e. whether
// its current-matrix value is available during chunked decoding.
func (cc *chunkCoder) inChunk(k int32) bool {
	r := cc.plan.rowOf[k]
	return r >= cc.rowLo && r < cc.rowHi
}

// candsU computes the region-U candidate predictions for slot k.
func (cc *chunkCoder) candsU(k int32, out *[4]float64) int {
	pl := cc.plan
	ref := cc.ref
	out[0] = ref[k]
	if cc.opt.DisableStamp {
		out[1], out[2], out[3] = out[0], out[0], out[0]
		return 4
	}
	if t := pl.tr[k]; t >= 0 {
		out[1] = ref[t]
	} else {
		out[1] = out[0]
	}
	i := pl.rowOf[k]
	j := pl.pat.ColIdx[k]
	if d := pl.diag[i]; d >= 0 {
		out[2] = -ref[d]
	} else {
		out[2] = out[0]
	}
	if d := pl.diag[j]; d >= 0 {
		out[3] = -ref[d]
	} else {
		out[3] = out[0]
	}
	return 4
}

// candsL computes the region-L candidates; lastVal is the previously coded
// value in the same row (NaN when none).
func (cc *chunkCoder) candsL(k int32, lastVal float64, haveLast bool, out *[4]float64) int {
	pl := cc.plan
	ref := cc.ref
	out[0] = ref[k]
	if cc.opt.DisableStamp {
		out[1], out[2] = out[0], out[0]
	} else {
		if t := pl.tr[k]; t >= 0 {
			// The symmetric mate lives in region U of row ColIdx[k]; its
			// decoded current value is available only within this chunk.
			if cc.inChunk(t) {
				out[1] = cc.cur[t]
			} else {
				out[1] = ref[t]
			}
		} else {
			out[1] = out[0]
		}
		if d := pl.diag[pl.rowOf[k]]; d >= 0 {
			out[2] = -ref[d]
		} else {
			out[2] = out[0]
		}
	}
	if !cc.opt.DisableLastValue && haveLast {
		out[3] = lastVal
	} else {
		out[3] = out[0]
	}
	return 4
}

// candsD computes the region-D candidates: temporal and the negated sum of
// the row's decoded off-diagonal values (the MNA row-conservation stamp).
func (cc *chunkCoder) candsD(row int32, k int32, out *[4]float64) int {
	out[0] = cc.ref[k]
	if cc.opt.DisableStamp {
		out[1] = out[0]
		return 2
	}
	pl := cc.plan
	sum := 0.0
	for s := pl.pat.RowPtr[row]; s < pl.pat.RowPtr[row+1]; s++ {
		if s != k {
			sum += cc.cur[s]
		}
	}
	out[1] = -sum
	return 2
}

// bestSym picks the candidate closest to val (bit-exact match wins
// immediately; ties prefer the lowest symbol).
//
// The bit-pattern pass runs first so the common case — some candidate
// reproduces val exactly — costs n integer compares with val's bits hoisted
// out of the loop. The distance pass needs no explicit NaN guard: a NaN
// distance compares false against bestDist, which is exactly the "treat as
// infinitely far" behavior, and when every distance is NaN the initial
// best=0 matches the old fallback.
func bestSym(val float64, cands *[4]float64, n int) uint8 {
	vb := math.Float64bits(val)
	for s := 0; s < n; s++ {
		if math.Float64bits(cands[s]) == vb {
			return uint8(s)
		}
	}
	best := 0
	bestDist := math.Inf(1)
	for s := 0; s < n; s++ {
		if d := math.Abs(cands[s] - val); d < bestDist {
			bestDist = d
			best = s
		}
	}
	return uint8(best)
}

// encodeResidual writes the XOR residual with the window code.
func (cc *chunkCoder) encodeResidual(w *bitstream.Writer, val, pred float64) {
	x := math.Float64bits(val) ^ math.Float64bits(pred)
	if x == 0 {
		w.WriteBit(1)
		cc.stats.LZHist[8]++
		cc.stats.PayloadBits++
		return
	}
	before := w.BitLen()
	w.WriteBit(0)
	lz := uint(bits.LeadingZeros64(x))
	// Branch-free byte-class: x != 0 bounds lz at 63, so lz&^7 is already
	// capped at 56 — no clamp needed.
	lz8 := lz &^ 7
	tz := uint(bits.TrailingZeros64(x))
	length := 64 - lz8 - tz
	prevShift := 64 - cc.win.lz8 - cc.win.len
	// Share the previous window only when the residual fits it AND the
	// shared form is no longer than re-describing a tight window (1+len
	// shared vs 10+len fresh): a stale wide window wastes bits.
	fits := !cc.opt.DisableSharedWindow && cc.win.len > 0 &&
		lz >= cc.win.lz8 && tz >= prevShift && cc.win.len <= length+9
	if fits {
		w.WriteBit(1)
		w.WriteBits(x>>prevShift, cc.win.len)
	} else {
		w.WriteBit(0)
		w.WriteBits(uint64(lz8>>3), 3)
		w.WriteBits(uint64(length-1), 6)
		w.WriteBits(x>>tz, length)
		cc.win.lz8 = lz8
		cc.win.len = length
	}
	cc.stats.LZHist[lz8>>3]++
	cc.stats.PayloadBits += int64(w.BitLen() - before)
}

// decodeResidual mirrors encodeResidual and returns the value. This is the
// sequential reference path; the batched decoder fuses these reads into the
// single-peek field extraction of decodeMissAt.
func (cc *chunkCoder) decodeResidual(r *bitstream.Reader, pred float64) float64 {
	if r.ReadBit() == 1 {
		return pred
	}
	var x uint64
	if r.ReadBit() == 1 {
		prevShift := 64 - cc.win.lz8 - cc.win.len
		x = r.ReadBits(cc.win.len) << prevShift
	} else {
		lz8 := uint(r.ReadBits(3)) << 3
		length := uint(r.ReadBits(6)) + 1
		x = r.ReadBits(length) << (64 - lz8 - length)
		cc.win.lz8 = lz8
		cc.win.len = length
	}
	return math.Float64frombits(math.Float64bits(pred) ^ x)
}

// codeElement encodes or decodes one element (exactly one of w, r is
// non-nil) and returns the decoded value (decoder) or val (encoder), plus
// the selected model symbol for statistics.
//
// Wire format per element:
//
//	'1'                         — the temporal prediction is bit-exact
//	                              (the dominant case in idle circuit
//	                              regions; the paper's 1-bit scenario)
//	'0' + selector + residual   — best-fit mode: 1 (D) or 2 (U/L) selector
//	                              bits, then the window-coded XOR residual
//	'0' + residual              — Markov mode: the selector is predicted
//	                              from the decision history, no bits
func (cc *chunkCoder) codeElement(w *bitstream.Writer, r *bitstream.Reader,
	val float64, cands *[4]float64, nSyms int, prev *uint8,
	table []uint8, counts func(prev, sym uint8)) (float64, uint8) {

	if w != nil { // encode
		if math.Float64bits(val) == math.Float64bits(cands[0]) {
			w.WriteBit(1)
			cc.stats.Elements++
			cc.stats.PayloadBits++
			cc.stats.LZHist[8]++
			*prev = 0
			return val, 0
		}
		w.WriteBit(0)
		var sym uint8
		if cc.calib {
			sym = bestSym(val, cands, nSyms)
			bitsN := uint(2)
			if nSyms == 2 {
				bitsN = 1
			}
			w.WriteBits(uint64(sym), bitsN)
			if counts != nil {
				counts(*prev, sym)
			}
			cc.stats.SelectorBits += int64(bitsN)
		} else {
			sym = table[*prev]
			if cc.statsOn {
				cc.stats.MarkovPredicted++
				if math.Float64bits(val) == math.Float64bits(cands[sym]) {
					cc.stats.MarkovExact++
				}
			}
		}
		*prev = sym
		cc.encodeResidual(w, val, cands[sym])
		return val, sym
	}
	// decode
	if r.ReadBit() == 1 {
		*prev = 0
		return cands[0], 0
	}
	var sym uint8
	if cc.calib {
		bitsN := uint(2)
		if nSyms == 2 {
			bitsN = 1
		}
		sym = uint8(r.ReadBits(bitsN))
	} else {
		sym = table[*prev]
	}
	*prev = sym
	return cc.decodeResidual(r, cands[sym]), sym
}

// useBatched selects the word-parallel region coders. The element-at-a-time
// path in runRegions is kept as the reference implementation; the
// batched-wire-identity property test flips this off to prove both paths
// produce byte-identical streams.
var useBatched = true

// encode writes the chunk's three regions (U, L, D) to w.
func (cc *chunkCoder) encode(w *bitstream.Writer) {
	if useBatched {
		cc.encodeRegions(w)
		return
	}
	cc.runRegions(w, nil)
}

// decode fills cc.cur for the chunk's rows from r.
func (cc *chunkCoder) decode(r *bitstream.Reader) error {
	if useBatched {
		cc.decodeRegions(r)
	} else {
		cc.runRegions(nil, r)
	}
	return r.Err()
}

// runRegions drives the shared encode/decode control flow. Exactly one of
// w and r is non-nil.
func (cc *chunkCoder) runRegions(w *bitstream.Writer, r *bitstream.Reader) {
	pl := cc.plan
	var cands [4]float64

	countU := func(p, s uint8) { cc.counts.u[p][s]++ }
	countL := func(p, s uint8) { cc.counts.l[p][s]++ }
	countD := func(p, s uint8) { cc.counts.d[p][s]++ }
	if cc.counts == nil {
		countU, countL, countD = nil, nil, nil
	}

	// Region U.
	cc.win = window{}
	for k := pl.uRowPtr[cc.rowLo]; k < pl.uRowPtr[cc.rowHi]; k++ {
		slot := pl.uSlots[k]
		n := cc.candsU(slot, &cands)
		var val float64
		if w != nil {
			val = cc.cur[slot]
		}
		v, sym := cc.codeElement(w, r, val, &cands, n, &cc.prevU, cc.tables.u[:], countU)
		if r != nil {
			cc.cur[slot] = v
		} else if math.Float64bits(val) != math.Float64bits(cands[0]) {
			cc.note(sym, regionU)
		}
	}

	// Region L: per-row last-value chaining.
	cc.win = window{}
	for row := cc.rowLo; row < cc.rowHi; row++ {
		lastVal := 0.0
		haveLast := false
		for k := pl.lRowPtr[row]; k < pl.lRowPtr[row+1]; k++ {
			slot := pl.lSlots[k]
			n := cc.candsL(slot, lastVal, haveLast, &cands)
			var val float64
			if w != nil {
				val = cc.cur[slot]
			}
			v, sym := cc.codeElement(w, r, val, &cands, n, &cc.prevL, cc.tables.l[:], countL)
			if r != nil {
				cc.cur[slot] = v
			} else if math.Float64bits(val) != math.Float64bits(cands[0]) {
				cc.note(sym, regionL)
			}
			lastVal, haveLast = v, true
		}
	}

	// Region D.
	cc.win = window{}
	for row := cc.rowLo; row < cc.rowHi; row++ {
		slot := pl.diag[row]
		if slot < 0 {
			continue
		}
		n := cc.candsD(row, slot, &cands)
		var val float64
		if w != nil {
			val = cc.cur[slot]
		}
		v, sym := cc.codeElement(w, r, val, &cands, n, &cc.prevD, cc.tables.d[:], countD)
		if r != nil {
			cc.cur[slot] = v
		} else if math.Float64bits(val) != math.Float64bits(cands[0]) {
			cc.note(sym, regionD)
		}
	}
}

type region int

const (
	regionU region = iota
	regionL
	regionD
)

// note maps a selector symbol to the paper's three model families for the
// Figure-6 statistics. It is called only for selector-coded elements (the
// temporal-exact fast path is tallied separately in codeElement).
func (cc *chunkCoder) note(sym uint8, rg region) {
	cc.stats.Elements++
	cc.stats.SelectorElements++
	switch rg {
	case regionU, regionD:
		if sym == 0 {
			cc.stats.Temporal++
		} else {
			cc.stats.Stamp++
		}
	case regionL:
		switch sym {
		case 0:
			cc.stats.Temporal++
		case 3:
			cc.stats.LastValue++
		default:
			cc.stats.Stamp++
		}
	}
}
