package masczip

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the decoder: it must never panic
// or over-allocate, only return an error or garbage values.
func FuzzDecompress(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 24, 30)
	c := New(p, Options{})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-5)
	f.Add(c.Compress(nil, cur, ref))
	cm := New(p, Options{Markov: true, CalibEvery: 1, Workers: 2})
	f.Add(cm.Compress(nil, cur, ref))
	// Run-heavy seeds: blobs dominated by long '1'-bit hit runs and
	// window-shared residual streaks, steering the fuzzer at the batched
	// RunOfOnes/bulk-copy decode paths.
	rf := runHeavyFrames(rng, p, 4)
	cr := New(p, Options{})
	f.Add(cr.Compress(nil, rf[1], rf[2]))
	crm := New(p, Options{Markov: true, CalibEvery: 2})
	crm.Compress(nil, rf[0], rf[1]) // advance past calibration
	f.Add(crm.Compress(nil, rf[1], rf[2]))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	// Adversarial headers for the hardened parser: a chunk-boundary delta
	// past 2^31 (would wrap negative through the int32 conversion) and
	// near-maximal chunk lengths (whose sum would overflow the payload
	// offset if accumulated unchecked).
	wrapDelta := []byte{flagCalib}
	wrapDelta = binary.AppendUvarint(wrapDelta, uint64(p.NNZ()))
	wrapDelta = binary.AppendUvarint(wrapDelta, 3)
	wrapDelta = binary.AppendUvarint(wrapDelta, 1<<33)
	wrapDelta = binary.AppendUvarint(wrapDelta, 1)
	f.Add(wrapDelta)
	hugeLens := []byte{flagCalib}
	hugeLens = binary.AppendUvarint(hugeLens, uint64(p.NNZ()))
	hugeLens = binary.AppendUvarint(hugeLens, 2)
	hugeLens = binary.AppendUvarint(hugeLens, 1) // valid boundary delta
	hugeLens = binary.AppendUvarint(hugeLens, math.MaxUint64)
	hugeLens = binary.AppendUvarint(hugeLens, math.MaxUint64)
	f.Add(hugeLens)
	f.Fuzz(func(t *testing.T, blob []byte) {
		out := make([]float64, p.NNZ())
		_ = c.Decompress(out, blob, ref)
		_ = c.Decompress(out, blob, nil)
	})
}

// FuzzRoundTrip mutates the value stream: whatever the bits, a
// compress/decompress cycle must be the identity.
func FuzzRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	p := mnaPattern(rng, 12, 12)
	nnz := p.NNZ()
	seed := make([]byte, 8*nnz)
	rng.Read(seed)
	f.Add(seed, true)
	f.Add(seed, false)
	f.Fuzz(func(t *testing.T, raw []byte, markov bool) {
		if len(raw) < 8*nnz {
			t.Skip()
		}
		cur := make([]float64, nnz)
		ref := make([]float64, nnz)
		for i := range cur {
			bits := uint64(0)
			for b := 0; b < 8; b++ {
				bits = bits<<8 | uint64(raw[8*i+b])
			}
			cur[i] = math.Float64frombits(bits)
			ref[i] = math.Float64frombits(bits ^ 0xFF)
		}
		c := New(p, Options{Markov: markov, CalibEvery: 2})
		blob := c.Compress(nil, cur, ref)
		got := make([]float64, nnz)
		if err := c.Decompress(got, blob, ref); err != nil {
			t.Fatalf("decompress own blob: %v", err)
		}
		for i := range cur {
			if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
				t.Fatalf("roundtrip mismatch at %d", i)
			}
		}
	})
}
