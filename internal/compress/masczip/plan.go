// Package masczip implements the MASC spatiotemporal compressor for sparse
// Jacobian tensors (Li et al., DAC 2024). One Compressor instance is bound
// to a sparsity Pattern — the paper's shared indices — and compresses the
// per-timestep value arrays with three prediction models (temporal,
// MNA-stamp spatial, last-value), best-fit or Markov model selection, and a
// leading-zero-window XOR residual code.
package masczip

import (
	"masc/internal/sparse"
)

// plan is the per-pattern precomputation shared by every matrix of a
// tensor: region slot lists, stamp-mate tables and chunk balancing data.
// Building it once per simulation is the computational realization of the
// shared-indices idea.
type plan struct {
	pat   *sparse.Pattern
	nnz   int
	rowOf []int32 // row of each slot
	tr    []int32 // slot of the transposed entry, -1 if absent
	diag  []int32 // slot of (r,r) per row, -1 if absent

	// Strictly-upper and strictly-lower slots in row-major order, with
	// per-row pointers so any row range maps to contiguous subslices.
	uSlots, lSlots   []int32
	uRowPtr, lRowPtr []int32 // length n+1

	// Diagonal slots packed contiguously (rows without a diagonal entry are
	// absent), with the owning row alongside and per-row pointers, so the
	// batched region-D coder walks one dense slice exactly like U and L.
	dSlots  []int32
	dRows   []int32
	dRowPtr []int32 // length n+1
}

func newPlan(p *sparse.Pattern) *plan {
	n := int32(p.N)
	pl := &plan{
		pat:     p,
		nnz:     p.NNZ(),
		rowOf:   make([]int32, p.NNZ()),
		tr:      p.TransposeSlots(),
		diag:    p.DiagSlots(),
		uRowPtr: make([]int32, n+1),
		lRowPtr: make([]int32, n+1),
		dRowPtr: make([]int32, n+1),
	}
	for i := int32(0); i < n; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			pl.rowOf[k] = i
			switch c := p.ColIdx[k]; {
			case c > i:
				pl.uSlots = append(pl.uSlots, k)
			case c < i:
				pl.lSlots = append(pl.lSlots, k)
			}
		}
		if d := pl.diag[i]; d >= 0 {
			pl.dSlots = append(pl.dSlots, d)
			pl.dRows = append(pl.dRows, i)
		}
		pl.uRowPtr[i+1] = int32(len(pl.uSlots))
		pl.lRowPtr[i+1] = int32(len(pl.lSlots))
		pl.dRowPtr[i+1] = int32(len(pl.dSlots))
	}
	return pl
}

// chunkRows partitions rows into at most w contiguous ranges of roughly
// equal nnz. The result has len ≤ w+1 boundaries and is deterministic, so
// encoder and decoder derive identical chunks from (pattern, w).
func (pl *plan) chunkRows(w int) []int32 {
	n := int32(pl.pat.N)
	if w < 1 {
		w = 1
	}
	if int32(w) > n {
		w = int(n)
	}
	bounds := []int32{0}
	total := int64(pl.nnz)
	for c := 1; c < w; c++ {
		target := total * int64(c) / int64(w)
		// First row whose cumulative nnz passes the target.
		row := bounds[len(bounds)-1]
		for row < n && int64(pl.pat.RowPtr[row]) < target {
			row++
		}
		if row > bounds[len(bounds)-1] {
			bounds = append(bounds, row)
		}
	}
	bounds = append(bounds, n)
	return bounds
}

// Model-selector symbol spaces. Per region:
//
//	U: 0 temporal, 1 transpose (stamp), 2 -diag(row) (stamp), 3 -diag(col) (stamp)
//	L: 0 temporal, 1 symmetric current transpose (stamp), 2 -diag(row) (stamp), 3 last value
//	D: 0 temporal, 1 negated off-diagonal row sum (stamp)
const (
	uSyms = 4
	lSyms = 4
	dSyms = 2
)

// markovCounts is the decision-history table populated during best-fit
// (calibration) matrices: counts[prev][next] transition frequencies.
type markovCounts struct {
	u [uSyms][uSyms]uint32
	l [lSyms][lSyms]uint32
	d [dSyms][dSyms]uint32
}

func (m *markovCounts) merge(o *markovCounts) {
	for i := range m.u {
		for j := range m.u[i] {
			m.u[i][j] += o.u[i][j]
		}
	}
	for i := range m.l {
		for j := range m.l[i] {
			m.l[i][j] += o.l[i][j]
		}
	}
	for i := range m.d {
		for j := range m.d[i] {
			m.d[i][j] += o.d[i][j]
		}
	}
}

// markovTables is the frozen argmax policy derived from counts; 18 bits
// are stored in every Markov-mode blob so the decoder (which runs in
// reverse order) needs no encoder-side state.
type markovTables struct {
	u [uSyms]uint8
	l [lSyms]uint8
	d [dSyms]uint8
}

func argmaxRow(row []uint32) uint8 {
	best, bi := uint32(0), 0
	for i, v := range row {
		if v > best {
			best = v
			bi = i
		}
	}
	return uint8(bi)
}

func (m *markovCounts) tables() markovTables {
	var t markovTables
	for i := range m.u {
		t.u[i] = argmaxRow(m.u[i][:])
	}
	for i := range m.l {
		t.l[i] = argmaxRow(m.l[i][:])
	}
	for i := range m.d {
		t.d[i] = argmaxRow(m.d[i][:])
	}
	return t
}

// pack/unpack move the 18-bit policy through a byte header.
func (t *markovTables) pack() [3]byte {
	var b [3]byte
	b[0] = t.u[0] | t.u[1]<<2 | t.u[2]<<4 | t.u[3]<<6
	b[1] = t.l[0] | t.l[1]<<2 | t.l[2]<<4 | t.l[3]<<6
	b[2] = t.d[0] | t.d[1]<<1
	return b
}

func unpackTables(b [3]byte) markovTables {
	var t markovTables
	for i := 0; i < 4; i++ {
		t.u[i] = (b[0] >> (2 * i)) & 3
		t.l[i] = (b[1] >> (2 * i)) & 3
	}
	t.d[0] = b[2] & 1
	t.d[1] = (b[2] >> 1) & 1
	return t
}
