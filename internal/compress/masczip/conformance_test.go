package masczip

import (
	"math/rand"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/codectest"
)

// TestConformanceMatrix runs the shared codec matrix against masczip. The
// codec is pattern-bound — every value array must have exactly the
// pattern's nonzero count — so the fixed-length profile is used.
func TestConformanceMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := mnaPattern(rng, 20, 25)
	profiles := map[string]Options{
		"plain":  {},
		"markov": {Markov: true, CalibEvery: 4, Workers: 3},
	}
	for name, opt := range profiles {
		opt := opt
		t.Run(name, func(t *testing.T) {
			codectest.RunMatrix(t, codectest.Config{
				New:      func() compress.Compressor { return New(p, opt) },
				FixedLen: p.NNZ(),
			})
		})
	}
}
