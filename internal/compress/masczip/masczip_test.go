package masczip

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"masc/internal/sparse"
)

// mnaPattern builds an MNA-like symmetric-structure pattern: a ring of
// two-terminal stamps plus random extra stamps, all with diagonals.
func mnaPattern(rng *rand.Rand, n, extraStamps int) *sparse.Pattern {
	b := sparse.NewBuilder(n)
	stamp := func(i, j int32) {
		b.Add(i, i)
		b.Add(j, j)
		b.Add(i, j)
		b.Add(j, i)
	}
	for i := 0; i < n; i++ {
		stamp(int32(i), int32((i+1)%n))
	}
	for e := 0; e < extraStamps; e++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i != j {
			stamp(i, j)
		}
	}
	return b.Build()
}

// mnaValues fills a value array with MNA-like structure: symmetric
// off-diagonal values, diagonals ≈ negated row sums, plus noise.
func mnaValues(rng *rand.Rand, p *sparse.Pattern, noise float64) []float64 {
	v := make([]float64, p.NNZ())
	tr := p.TransposeSlots()
	diag := p.DiagSlots()
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.ColIdx[k]
			if j <= i {
				continue
			}
			g := -(1 + rng.Float64()*9) // off-diagonal conductance, negative
			v[k] = g
			if t := tr[k]; t >= 0 {
				v[t] = g * (1 + noise*rng.NormFloat64())
			}
		}
	}
	for i := int32(0); i < int32(p.N); i++ {
		d := diag[i]
		if d < 0 {
			continue
		}
		sum := 0.0
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			if k != d {
				sum += v[k]
			}
		}
		v[d] = -sum * (1 + noise*rng.NormFloat64())
	}
	return v
}

// evolve perturbs values multiplicatively, mimicking a Newton-converged
// Jacobian at the next timestep.
func evolve(rng *rand.Rand, v []float64, eps float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * (1 + eps*rng.NormFloat64())
	}
	return out
}

func roundTrip(t *testing.T, c *Compressor, cur, ref []float64) []byte {
	t.Helper()
	blob := c.Compress(nil, cur, ref)
	got := make([]float64, len(cur))
	if err := c.Decompress(got, blob, ref); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range cur {
		if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
			t.Fatalf("value %d: got %x want %x", i, math.Float64bits(got[i]), math.Float64bits(cur[i]))
		}
	}
	return blob
}

func TestRoundTripBestFit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 60, 100)
	c := New(p, Options{})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-4)
	roundTrip(t, c, cur, ref)
}

func TestRoundTripNilRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := mnaPattern(rng, 40, 60)
	c := New(p, Options{})
	cur := mnaValues(rng, p, 0.05)
	roundTrip(t, c, cur, nil)
}

func TestRoundTripMarkovSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := mnaPattern(rng, 50, 80)
	c := New(p, Options{Markov: true, CalibEvery: 4})
	vals := mnaValues(rng, p, 0.02)
	var ref []float64
	// A chain of matrices exercises both calibration and markov blobs.
	for step := 0; step < 10; step++ {
		roundTrip(t, c, vals, ref)
		ref = vals
		vals = evolve(rng, vals, 1e-5)
	}
}

func TestRoundTripParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := mnaPattern(rng, 200, 400)
	for _, workers := range []int{1, 2, 3, 8, 64} {
		c := New(p, Options{Workers: workers})
		ref := mnaValues(rng, p, 0.01)
		cur := evolve(rng, ref, 1e-4)
		roundTrip(t, c, cur, ref)
	}
}

func TestParallelBlobDecodableBySerial(t *testing.T) {
	// The chunk layout is stored in the blob, so a compressor configured
	// with different Workers must still decode it.
	rng := rand.New(rand.NewSource(5))
	p := mnaPattern(rng, 100, 200)
	enc := New(p, Options{Workers: 7})
	dec := New(p, Options{Workers: 1})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-3)
	blob := enc.Compress(nil, cur, ref)
	got := make([]float64, len(cur))
	if err := dec.Decompress(got, blob, ref); err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		if got[i] != cur[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestAblationsStillLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := mnaPattern(rng, 60, 120)
	opts := []Options{
		{DisableStamp: true},
		{DisableLastValue: true},
		{DisableSharedWindow: true},
		{DisableStamp: true, DisableLastValue: true, DisableSharedWindow: true},
		{Markov: true, DisableStamp: true},
	}
	for oi, o := range opts {
		c := New(p, o)
		ref := mnaValues(rng, p, 0.02)
		cur := evolve(rng, ref, 1e-4)
		blob := c.Compress(nil, cur, ref)
		got := make([]float64, len(cur))
		if err := c.Decompress(got, blob, ref); err != nil {
			t.Fatalf("option %d: %v", oi, err)
		}
		for i := range cur {
			if got[i] != cur[i] {
				t.Fatalf("option %d: mismatch at %d", oi, i)
			}
		}
	}
}

func TestSpecialValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := mnaPattern(rng, 30, 40)
	c := New(p, Options{})
	cur := mnaValues(rng, p, 0.01)
	cur[0] = math.NaN()
	cur[1] = math.Inf(1)
	cur[2] = math.Inf(-1)
	cur[3] = 0
	cur[4] = math.Copysign(0, -1)
	cur[5] = math.SmallestNonzeroFloat64
	cur[6] = math.MaxFloat64
	ref := evolve(rng, cur, 1e-3)
	ref[0] = 1 // don't let the NaN leak into ref arithmetic checks
	blob := c.Compress(nil, cur, ref)
	got := make([]float64, len(cur))
	if err := c.Decompress(got, blob, ref); err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
			t.Fatalf("special value %d not bit-exact", i)
		}
	}
}

func TestCompressionRatioOnSmoothTensor(t *testing.T) {
	// Temporally smooth MNA tensors must compress far below 8 bytes/value.
	rng := rand.New(rand.NewSource(8))
	p := mnaPattern(rng, 300, 600)
	c := New(p, Options{})
	vals := mnaValues(rng, p, 0.0)
	var ref []float64
	var total, raw int
	for step := 0; step < 20; step++ {
		blob := c.Compress(nil, vals, ref)
		total += len(blob)
		raw += 8 * len(vals)
		ref = vals
		// Only a subset of entries move, and only slightly — like a
		// mildly nonlinear circuit between Newton-converged steps.
		vals = append([]float64(nil), vals...)
		for i := 0; i < len(vals)/10; i++ {
			k := rng.Intn(len(vals))
			vals[k] *= 1 + 1e-9*rng.NormFloat64()
		}
	}
	cr := float64(raw) / float64(total)
	if cr < 8 {
		t.Fatalf("compression ratio %.2f too low for a smooth tensor", cr)
	}
}

func TestMarkovSmallerThanBestFitOnStableData(t *testing.T) {
	// When the same model keeps winning, Markov mode should spend fewer
	// bits (no per-element selectors).
	rng := rand.New(rand.NewSource(9))
	p := mnaPattern(rng, 200, 300)
	base := mnaValues(rng, p, 0.0)
	seq := make([][]float64, 24)
	for i := range seq {
		seq[i] = evolve(rng, base, 1e-12)
	}
	size := func(opt Options) int {
		c := New(p, opt)
		total := 0
		var ref []float64
		for _, v := range seq {
			total += len(c.Compress(nil, v, ref))
			ref = v
		}
		return total
	}
	bf := size(Options{})
	mk := size(Options{Markov: true, CalibEvery: 8})
	if mk >= bf {
		t.Fatalf("markov (%d bytes) not smaller than best-fit (%d bytes)", mk, bf)
	}
}

func TestStatsCollected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := mnaPattern(rng, 80, 150)
	c := New(p, Options{CollectStats: true})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-6)
	c.Compress(nil, cur, ref)
	st := c.Stats()
	if st.Elements != int64(p.NNZ()) {
		t.Fatalf("stats cover %d elements, want %d", st.Elements, p.NNZ())
	}
	if st.Temporal+st.Stamp+st.LastValue != st.SelectorElements {
		t.Fatalf("model families don't add up: %+v", st)
	}
	if st.SelectorElements > st.Elements {
		t.Fatalf("selector elements exceed total: %+v", st)
	}
	var hist int64
	for _, h := range st.LZHist {
		hist += h
	}
	if hist != st.Elements {
		t.Fatalf("LZ histogram covers %d of %d", hist, st.Elements)
	}
	c.ResetStats()
	if c.Stats().Elements != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestDecompressErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := mnaPattern(rng, 20, 30)
	c := New(p, Options{})
	cur := mnaValues(rng, p, 0.01)
	blob := c.Compress(nil, cur, nil)
	got := make([]float64, len(cur))
	if err := c.Decompress(got, nil, nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
	if err := c.Decompress(got[:1], blob, nil); err == nil {
		t.Fatal("expected error on wrong length")
	}
	if err := c.Decompress(got, blob[:3], nil); err == nil {
		t.Fatal("expected error on truncated blob")
	}
	// A blob for a different pattern must be rejected by the sanity header.
	p2 := mnaPattern(rng, 21, 30)
	c2 := New(p2, Options{})
	got2 := make([]float64, p2.NNZ())
	if err := c2.Decompress(got2, blob, nil); err == nil {
		t.Fatal("expected error on foreign blob")
	}
}

// TestHeaderHardening feeds the decoder headers whose uvarints are
// individually plausible but adversarial in combination: chunk-boundary
// deltas past 2^31 (which would wrap negative through the int32 cast) and
// chunk lengths whose sum would overflow the payload offset.
func TestHeaderHardening(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := mnaPattern(rng, 30, 40)
	c := New(p, Options{})
	got := make([]float64, p.NNZ())

	hdr := func(nchunks uint64, extra ...uint64) []byte {
		b := []byte{flagCalib}
		b = binary.AppendUvarint(b, uint64(p.NNZ()))
		b = binary.AppendUvarint(b, nchunks)
		for _, v := range extra {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	cases := []struct {
		name string
		blob []byte
	}{
		{"delta wraps int32", hdr(3, 1<<33, 1)},
		{"delta zero", hdr(3, 0, 1)},
		{"delta past n", hdr(2, uint64(p.N)+7)},
		{"chunk count past n", hdr(uint64(p.N) + 1)},
		{"element count overflows int", append([]byte{flagCalib},
			binary.AppendUvarint(nil, math.MaxUint64)...)},
		{"max chunk lengths", hdr(2, 1, math.MaxUint64, math.MaxUint64)},
		{"summed lengths overflow", hdr(4, 1, 1, 1,
			1<<62, 1<<62, 1<<62, 1<<62)},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic: %v", tc.name, r)
				}
			}()
			if err := c.Decompress(got, tc.blob, nil); err == nil {
				t.Fatalf("%s: decoder accepted adversarial header", tc.name)
			}
		}()
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8, markov bool, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%50) + 4
		p := mnaPattern(rng, n, n)
		c := New(p, Options{Markov: markov, Workers: int(workers%5) + 1, CalibEvery: 3})
		var ref []float64
		for step := 0; step < 3; step++ {
			cur := mnaValues(rng, p, 0.1)
			blob := c.Compress(nil, cur, ref)
			got := make([]float64, len(cur))
			if err := c.Decompress(got, blob, ref); err != nil {
				return false
			}
			for i := range cur {
				if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
					return false
				}
			}
			ref = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 2000, 6000)
	c := New(p, Options{})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-6)
	var blob []byte
	b.SetBytes(int64(8 * len(cur)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob = c.Compress(blob[:0], cur, ref)
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 2000, 6000)
	c := New(p, Options{})
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-6)
	blob := c.Compress(nil, cur, ref)
	got := make([]float64, len(cur))
	b.SetBytes(int64(8 * len(cur)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decompress(got, blob, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts is the Workers sweep for the scaling benchmarks:
// serial, a fixed mid point, and the full machine.
func benchWorkerCounts() []int {
	ws := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		ws = append(ws, n)
	}
	return ws
}

func BenchmarkCompressWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 2000, 6000)
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-6)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c := New(p, Options{Workers: w})
			var blob []byte
			b.SetBytes(int64(8 * len(cur)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blob = c.Compress(blob[:0], cur, ref)
			}
		})
	}
}

func BenchmarkDecompressWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := mnaPattern(rng, 2000, 6000)
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-6)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c := New(p, Options{Workers: w})
			blob := c.Compress(nil, cur, ref)
			got := make([]float64, len(cur))
			b.SetBytes(int64(8 * len(cur)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Decompress(got, blob, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCorruptedBlobNoPanic flips random bits/truncates blobs and requires
// Decompress to fail cleanly or produce garbage — never panic or over-
// allocate.
func TestCorruptedBlobNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := mnaPattern(rng, 40, 60)
	c := New(p, Options{Markov: true, CalibEvery: 2, Workers: 3})
	ref := mnaValues(rng, p, 0.02)
	cur := evolve(rng, ref, 1e-4)
	c.Compress(nil, cur, ref) // advance to a markov matrix
	blob := c.Compress(nil, cur, ref)
	got := make([]float64, len(cur))
	for trial := 0; trial < 300; trial++ {
		mutated := append([]byte(nil), blob...)
		switch trial % 3 {
		case 0: // single bit flip
			i := rng.Intn(len(mutated))
			mutated[i] ^= 1 << uint(rng.Intn(8))
		case 1: // truncation
			mutated = mutated[:rng.Intn(len(mutated))]
		case 2: // byte scramble in the header region
			if len(mutated) > 4 {
				mutated[rng.Intn(4)] = byte(rng.Intn(256))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_ = c.Decompress(got, mutated, ref)
		}()
	}
}

// TestChunkLayoutIndependentOfDecoderWorkers: blobs carry their own chunk
// layout; the decoder's Workers option must not matter.
func TestChunkLayoutIndependentOfDecoderWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := mnaPattern(rng, 120, 200)
	ref := mnaValues(rng, p, 0.01)
	cur := evolve(rng, ref, 1e-5)
	enc := New(p, Options{Workers: 5})
	blob := enc.Compress(nil, cur, ref)
	for _, w := range []int{1, 2, 8, 99} {
		dec := New(p, Options{Workers: w})
		got := make([]float64, len(cur))
		if err := dec.Decompress(got, blob, ref); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range cur {
			if got[i] != cur[i] {
				t.Fatalf("workers=%d: mismatch at %d", w, i)
			}
		}
	}
}

// TestRestartMatchesFreshCompressor pins the chain-cut contract: after
// Restart, a compressor's output is byte-identical to a brand-new
// compressor's on the same sequence, and the blobs are decodable by a Fork
// with no shared mutable state.
func TestRestartMatchesFreshCompressor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := mnaPattern(rng, 50, 80)
	vals := mnaValues(rng, p, 0.02)
	seq := [][]float64{vals}
	for step := 0; step < 7; step++ {
		vals = evolve(rng, vals, 1e-5)
		seq = append(seq, vals)
	}
	for _, opt := range []Options{{}, {Markov: true, CalibEvery: 3}} {
		c := New(p, opt)
		// Warm the chain state past a calibration boundary.
		var ref []float64
		for _, v := range seq[:4] {
			c.Compress(nil, v, ref)
			ref = v
		}
		c.Restart()
		fresh := New(p, opt)
		ref = nil
		for i, v := range seq[4:] {
			a := c.Compress(nil, v, ref)
			b := fresh.Compress(nil, v, ref)
			if len(a) != len(b) {
				t.Fatalf("markov=%v step %d: restart blob %dB, fresh blob %dB", opt.Markov, i, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("markov=%v step %d: blobs diverge at byte %d", opt.Markov, i, k)
				}
			}
			// A forked decoder must decode any blob independently.
			got := make([]float64, len(v))
			fk := c.Fork().(*Compressor)
			if err := fk.Decompress(got, a, ref); err != nil {
				t.Fatalf("fork decompress: %v", err)
			}
			for k := range v {
				if math.Float64bits(got[k]) != math.Float64bits(v[k]) {
					t.Fatalf("markov=%v step %d: fork decode mismatch at %d", opt.Markov, i, k)
				}
			}
			ref = v
		}
	}
}
