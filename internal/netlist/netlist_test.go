package netlist

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"masc/internal/adjoint"
	"masc/internal/jactensor"
	"masc/internal/transient"
)

const rcDeck = `rc lowpass test
* a comment
Vin in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 2u 1m
.obj v(out)
.end
`

func TestParseRC(t *testing.T) {
	d, err := Parse(strings.NewReader(rcDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "rc lowpass test" {
		t.Fatalf("title = %q", d.Title)
	}
	if !d.HasTran || d.Tran.TStep != 2e-6 || d.Tran.TStop != 1e-3 {
		t.Fatalf("tran card parsed as %+v", d.Tran)
	}
	if len(d.Objectives) != 1 || d.Objectives[0].Name != "v(out)" {
		t.Fatalf("objectives: %+v", d.Objectives)
	}
	if d.Ckt.N != 3 { // in, out, branch
		t.Fatalf("unknowns = %d, want 3", d.Ckt.N)
	}
}

func TestParseAndSimulateEndToEnd(t *testing.T) {
	d, err := Parse(strings.NewReader(rcDeck))
	if err != nil {
		t.Fatal(err)
	}
	store := jactensor.NewMemStore()
	opt := d.Tran
	opt.Capture = nil
	res, err := transient.Run(d.Ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	_ = store
	// ~1 kHz through a 1k/1µ lowpass (fc ≈ 159 Hz): output attenuated.
	out := d.Objectives[0].Node
	peak := 0.0
	for i, tm := range res.Times {
		if tm > 5e-4 && math.Abs(res.States[i][out]) > peak {
			peak = math.Abs(res.States[i][out])
		}
	}
	if peak < 0.05 || peak > 0.4 {
		t.Fatalf("lowpass peak %g, want ≈0.157", peak)
	}
	// Sensitivity runs from the parsed deck.
	sens, err := adjoint.Sensitivities(d.Ckt, res, adjoint.NewRecomputeSource(d.Ckt, res), d.Objectives, adjoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sens.DOdp) != 1 || len(sens.DOdp[0]) != len(d.Ckt.Params()) {
		t.Fatal("bad sensitivity shape")
	}
}

func TestContinuationLines(t *testing.T) {
	deck := "title\nV1 a 0\n+ PULSE(0 5 0 1n 1n\n+ 10u 20u)\nR1 a 0 1k\n.tran 1u 10u\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Ckt.N != 2 {
		t.Fatalf("unknowns = %d", d.Ckt.N)
	}
}

func TestModelsAndDevices(t *testing.T) {
	deck := `full zoo
.model dfast D IS=2e-14 N=1.5
.model qn NPN BF=80 IS=1e-15
.model qp PNP BF=40
.model mn NMOS KP=2e-4 VTO=0.6
.model mp PMOS KP=1e-4 VTO=0.55
V1 vdd 0 DC 3
D1 a b dfast
D2 a b IS=5e-15
Q1 c a e qn
Q2 c a e qp
M1 d g s mn LAMBDA=0.02
M2 d g s mp
R1 vdd a 1k
R2 b 0 2.2k
R3 c 0 1meg
R4 e 0 470
R5 d 0 10k
R6 g 0 5k
R7 s 0 3k
L1 a d 1m
I1 a 0 DC 1m
.tran 1n 10n
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Ckt.Devices); got != 16 {
		t.Fatalf("device count = %d, want 16", got)
	}
}

func TestNumberSuffixes(t *testing.T) {
	cases := map[string]float64{
		"1k": 1e3, "2.2u": 2.2e-6, "3n": 3e-9, "4p": 4e-12, "5f": 5e-15,
		"1meg": 1e6, "2m": 2e-3, "7g": 7e9, "1.5t": 1.5e12, "42": 42,
		"-3k": -3000, "1e-9": 1e-9,
	}
	for in, want := range cases {
		got, err := number(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("%q = %g, want %g", in, got, want)
		}
	}
	if _, err := number("abc"); err == nil {
		t.Fatal("expected error for garbage number")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"t\nR1 a b\n",                      // missing value
		"t\nR1 a b 1k\n.frob\n",            // unknown card
		"t\nX1 a b 1k\n",                   // unknown element
		"t\nR1 a b 1k\n.obj foo\n",         // malformed objective
		"t\nR1 a b 1k\n.obj v(zzz)\n",      // unknown node
		"t\nR1 a b 1k\n.tran 1u\n",         // incomplete tran
		"t\nV1 a 0 SIN(1)\nR1 a 0 1\n",     // short SIN
		"t\nQ1 a b\nR1 a 0 1\n",            // BJT with 2 nodes
		"t\n.model m1 D IS=xx\nR1 a 0 1\n", // bad model param
	}
	for i, deck := range bad {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Fatalf("case %d: expected parse error", i)
		}
	}
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestPWLSource(t *testing.T) {
	deck := "t\nV1 a 0 PWL(0 0 1u 5 2u 5 3u 0)\nR1 a 0 1k\n.tran 0.1u 3u\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(d.Ckt, d.Tran)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Bld.NodeIndex("a")
	// At 1.5µs the PWL holds 5V.
	for i, tm := range res.Times {
		if tm > 1.4e-6 && tm < 1.6e-6 {
			if math.Abs(res.States[i][a]-5) > 1e-6 {
				t.Fatalf("v(a)=%g at t=%g, want 5", res.States[i][a], tm)
			}
		}
	}
}

func TestControlledSources(t *testing.T) {
	deck := `controlled
V1 in 0 DC 2
R1 in a 1k
G1 b 0 a 0 1m
R2 b 0 2k
E1 c 0 b 0 3
R3 c 0 1k
.tran 1u 5u
.obj v(c)
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(d.Ckt, d.Tran)
	if err != nil {
		t.Fatal(err)
	}
	// v(a)=2 (no load current), i = 1m·2 = 2mA into b: v(b) = -2m·2k = -4,
	// v(c) = 3·v(b) = -12.
	c, _ := d.Bld.NodeIndex("c")
	got := res.States[len(res.States)-1][c]
	if math.Abs(got+12) > 1e-6 {
		t.Fatalf("v(c) = %g, want -12", got)
	}
	if _, err := Parse(strings.NewReader("t\nG1 a 0 b\nR1 a 0 1\n")); err == nil {
		t.Fatal("expected error for short G card")
	}
}

func TestSubcircuits(t *testing.T) {
	deck := `hierarchical divider
.subckt half top bot
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 DC 8
X1 in q half
X2 q 0 half
.tran 1u 5u
.obj v(q)
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	// Two instances × 2 resistors + source = 5 devices.
	if len(d.Ckt.Devices) != 5 {
		t.Fatalf("device count %d, want 5", len(d.Ckt.Devices))
	}
	res, err := transient.Run(d.Ckt, d.Tran)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := d.Bld.NodeIndex("q")
	if got := res.States[len(res.States)-1][q]; math.Abs(got-4) > 1e-9 {
		t.Fatalf("v(q) = %g, want 4 (midpoint of two equal halves)", got)
	}
	// Internal node of X1 got a prefixed global name.
	if _, err := d.Bld.NodeIndex("X1.mid"); err != nil {
		t.Fatal("internal node X1.mid not created")
	}
}

func TestNestedSubcircuits(t *testing.T) {
	deck := `nested
.subckt unit a b
R1 a b 1k
.ends
.subckt pair p q
Xu1 p m unit
Xu2 m q unit
.ends
V1 in 0 DC 6
X1 in out pair
R9 out 0 1k
.tran 1u 3u
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(d.Ckt, d.Tran)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := d.Bld.NodeIndex("out")
	// 6V through 2k into 1k load: v(out) = 2.
	if got := res.States[len(res.States)-1][out]; math.Abs(got-2) > 1e-9 {
		t.Fatalf("v(out) = %g, want 2", got)
	}
	// Doubly-nested internal node name.
	if _, err := d.Bld.NodeIndex("X1.m"); err != nil {
		t.Fatal("internal node X1.m missing")
	}
}

func TestSubcircuitErrors(t *testing.T) {
	bad := []string{
		"t\n.subckt s a\nR1 a 0 1\n",                                                // missing .ends
		"t\n.ends\nR1 a 0 1\n",                                                      // stray .ends
		"t\n.subckt s a\nR1 a 0 1\n.ends\nX1 b c s\nR2 b 0 1\n",                     // port count
		"t\nX1 a b nosuch\nR1 a 0 1\n",                                              // unknown subckt
		"t\n.subckt s a\n.subckt t b\n.ends\n.ends\n",                               // nested definition
		"t\n.subckt s a\nR1 a 0 1\n.ends\n.subckt s a\nR1 a 0 1\n.ends\nR9 x 0 1\n", // duplicate
	}
	for i, deckTxt := range bad {
		if _, err := Parse(strings.NewReader(deckTxt)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Recursive instantiation must be rejected by the depth cap.
	rec := "t\n.subckt s a\nXr a s\nR1 a 0 1\n.ends\nX1 n s\nR2 n 0 1\n"
	if _, err := Parse(strings.NewReader(rec)); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestPrintCard(t *testing.T) {
	deck := "t\nV1 a 0 DC 1\nR1 a b 1k\nR2 b 0 1k\n.tran 1u 5u\n.print tran v(a) v(b)\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Prints) != 2 || d.Prints[0].Name != "v(a)" || d.Prints[1].Name != "v(b)" {
		t.Fatalf("prints: %+v", d.Prints)
	}
	if _, err := Parse(strings.NewReader("t\nR1 a 0 1\n.print foo\n")); err == nil {
		t.Fatal("expected error for malformed print var")
	}
	if _, err := Parse(strings.NewReader("t\nR1 a 0 1\n.print v(zzz)\n")); err == nil {
		t.Fatal("expected error for unknown print node")
	}
}

func TestOptionsCard(t *testing.T) {
	deck := "t\n.options method=trap reltol=1e-4 gmin=1e-11\nV1 a 0 DC 1\nR1 a b 1k\nC1 b 0 1u\n.tran 1u 10u\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Tran.Method != transient.MethodTrap {
		t.Fatalf("method = %q, want trap", d.Tran.Method)
	}
	if d.Tran.RelTol != 1e-4 || d.Tran.Gmin != 1e-11 {
		t.Fatalf("options not applied: %+v", d.Tran)
	}
	// .tran after .options must not reset them.
	if d.Tran.TStep != 1e-6 || math.Abs(d.Tran.TStop-1e-5) > 1e-18 {
		t.Fatalf("tran axis lost: %+v", d.Tran)
	}
	res, err := transient.Run(d.Ckt, d.Tran)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != transient.MethodTrap {
		t.Fatal("trajectory did not record trap method")
	}
	for _, bad := range []string{
		"t\n.options frobnicate=1\nR1 a 0 1\n",
		"t\n.options method=rk9\nR1 a 0 1\n",
		"t\n.options method\nR1 a 0 1\n",
		"t\n.options reltol=zz\nR1 a 0 1\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

// TestGoldenDecks parses and fully simulates the testdata decks, then runs
// a sensitivity analysis on each — the complete user workflow over real
// netlist text.
func TestGoldenDecks(t *testing.T) {
	expect := map[string]func(t *testing.T, d *Deck, res *transient.Result){
		"sallen_key.sp": func(t *testing.T, d *Deck, res *transient.Result) {
			out := d.Objectives[0].Node
			peak := 0.0
			for i, tm := range res.Times {
				if tm > 5e-4 && math.Abs(res.States[i][out]) > peak {
					peak = math.Abs(res.States[i][out])
				}
			}
			// 2 kHz is above the ≈720 Hz corner: clearly attenuated but alive.
			if peak < 0.01 || peak > 0.9 {
				t.Fatalf("filter peak %g", peak)
			}
			if len(d.Prints) != 2 {
				t.Fatalf("prints: %d", len(d.Prints))
			}
		},
		"bjt_amp.sp": func(t *testing.T, d *Deck, res *transient.Result) {
			if res.Method != transient.MethodTrap {
				t.Fatal("options method=trap not honoured")
			}
			out := d.Objectives[0].Node
			if v := res.States[len(res.States)-1][out]; v < 1 || v > 11.5 {
				t.Fatalf("output bias %g outside the rails", v)
			}
		},
		"mos_nand.sp": func(t *testing.T, d *Deck, res *transient.Result) {
			out := d.Objectives[0].Node
			// NAND: low only while both inputs are high (t ≈ 2.2–3 µs).
			lowSeen, highSeen := false, false
			for i, tm := range res.Times {
				v := res.States[i][out]
				if tm > 2.3e-6 && tm < 2.9e-6 && v < 0.7 {
					lowSeen = true
				}
				if tm > 0.2e-6 && tm < 0.9e-6 && v > 2.7 {
					highSeen = true
				}
			}
			if !lowSeen || !highSeen {
				t.Fatalf("NAND truth table violated (low=%v high=%v)", lowSeen, highSeen)
			}
		},
		"rectifier.sp": func(t *testing.T, d *Deck, res *transient.Result) {
			peakN := d.Objectives[0].Node
			snsN := d.Objectives[1].Node
			last := res.States[len(res.States)-1]
			if last[peakN] < 3 {
				t.Fatalf("rectified voltage %g too low", last[peakN])
			}
			// The VCCS sense output is -0.1m·v(peak)·1k = -0.1·v(peak).
			if math.Abs(last[snsN]+0.1*last[peakN]) > 1e-6*math.Abs(last[peakN])+1e-9 {
				t.Fatalf("sense output %g inconsistent with %g", last[snsN], last[peakN])
			}
		},
	}
	for name, check := range expect {
		name, check := name, check
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			d, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := transient.Run(d.Ckt, d.Tran)
			if err != nil {
				t.Fatal(err)
			}
			check(t, d, res)
			sens, err := adjoint.Sensitivities(d.Ckt, res,
				adjoint.NewRecomputeSource(d.Ckt, res), d.Objectives, adjoint.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for o := range sens.DOdp {
				for _, v := range sens.DOdp[o] {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatal("non-finite sensitivity")
					}
				}
			}
		})
	}
}
