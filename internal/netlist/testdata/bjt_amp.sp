* two-stage bjt amplifier with trapezoidal integration
.options method=trap reltol=1e-5
.model qfast NPN IS=2e-16 BF=150 CJE=2e-12 CJC=1e-12
VCC vcc 0 DC 12
VIN sig 0 SIN(0 5m 20k)
.subckt cestage in out vccp
RS in base 2.2k
RB1 vccp base 82k
RB2 base 0 15k
RC vccp out 4.7k
RE em 0 1k
CE em 0 4.7u
Q1 out base em qfast
.ends
X1 sig mid vcc cestage
CC1 mid in2 100n
X2 in2 outp vcc cestage
.tran 0.5u 100u
.obj v(outp)
.end
