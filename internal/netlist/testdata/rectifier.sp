* half-wave peak detector with controlled-source sensing
.model dsw D IS=5e-15 N=1.2
VIN in 0 SIN(0 6 500)
D1 in peak dsw
RP peak 0 22k
CP peak 0 2.2u
GSNS sns 0 peak 0 0.1m
RS sns 0 1k
.tran 20u 6m
.obj v(peak) v(sns)
.end
