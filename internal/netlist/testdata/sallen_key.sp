* sallen-key lowpass built from a subcircuit opamp (VCVS follower)
.subckt opamp inp inn out
Eamp out 0 inp inn 100k
.ends
Vin in 0 SIN(0 1 2k)
R1 in n1 4.7k
R2 n1 n2 4.7k
C1 n1 out 10n
C2 n2 0 10n
Xop n2 out out opamp
.tran 5u 1m
.obj v(out)
.print v(in) v(out)
.end
