* resistor-load nmos nand gate with pwl inputs
.model mn NMOS KP=5e-4 VTO=0.7 LAMBDA=0.02
VDD vdd 0 DC 3
VA a 0 PWL(0 0 1u 0 1.1u 3 3u 3 3.1u 0 6u 0)
VB b 0 PWL(0 0 2u 0 2.1u 3 4u 3 4.1u 0 6u 0)
RL vdd out 15k
M1 out a mid mn
M2 mid b 0 mn
CL out 0 50f
.tran 20n 6u
.obj v(out)
.end
