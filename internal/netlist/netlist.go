// Package netlist parses a SPICE-subset netlist into a simulatable
// circuit. Supported cards:
//
//	R/C/L<name> n1 n2 <value>
//	V/I<name> n+ n- [DC <v>] [SIN(vo va freq [td theta])]
//	                [PULSE(v1 v2 td tr tf pw per)] [PWL(t1 v1 t2 v2 ...)]
//	G<name> n+ n- nc+ nc- <gm>     (VCCS)
//	E<name> n+ n- nc+ nc- <gain>   (VCVS)
//	D<name> na nc [model] [IS=…] [N=…]
//	Q<name> nc nb ne [model]
//	M<name> nd ng ns [model] [KP=…] [VTO=…] [LAMBDA=…]
//	.subckt <name> <ports…> / .ends — subcircuit definitions
//	X<name> <nodes…> <subcktname>  — subcircuit instances (nestable)
//	.model <name> <D|NPN|PNP|NMOS|PMOS> [PARAM=…]...
//	.tran <tstep> <tstop>
//	.obj v(<node>) ...      — sensitivity objectives (final-state voltages)
//	.end
//
// Engineering suffixes (f p n u m k meg g t) are honoured on all numbers.
// Lines starting with '*' are comments; '+' continues the previous line;
// the first line is treated as the title, as in SPICE.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"masc/internal/adjoint"
	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/transient"
)

// Deck is the parsed netlist: an assembled circuit plus analysis cards.
type Deck struct {
	Title      string
	Ckt        *circuit.Circuit
	Bld        *circuit.Builder
	Tran       transient.Options
	HasTran    bool
	Objectives []adjoint.Objective
	// Prints lists the .print waveform outputs.
	Prints []PrintVar
}

// PrintVar is one .print output column.
type PrintVar struct {
	Name string
	Node int32
}

type model struct {
	kind   string
	params map[string]float64
}

// subckt is a captured .subckt definition.
type subckt struct {
	ports []string
	lines []string
}

// scope maps a subcircuit instance's local node names to global ones.
type scope struct {
	prefix string
	ports  map[string]string
	parent *scope
}

type parser struct {
	b      *circuit.Builder
	models map[string]*model
	deck   *Deck
	// objective node names, resolved after all devices are added
	objNodes []string

	subckts map[string]*subckt
	capture *subckt // non-nil while inside .subckt … .ends
	scope   *scope  // non-nil while expanding an X instance
	depth   int

	printNodes []string
}

// mapNode resolves a (possibly subcircuit-local) node name to its global
// name. Ground is global everywhere.
func (p *parser) mapNode(name string) string {
	if name == "0" || name == "gnd" || name == "GND" {
		return name
	}
	if p.scope == nil {
		return name
	}
	if g, ok := p.scope.ports[name]; ok {
		return g
	}
	return p.scope.prefix + name
}

// mapName prefixes a device name with the instance path.
func (p *parser) mapName(name string) string {
	if p.scope == nil {
		return name
	}
	return p.scope.prefix + name
}

// Parse reads a netlist from r.
func Parse(r io.Reader) (*Deck, error) {
	p := &parser{
		b:       circuit.NewBuilder(),
		models:  map[string]*model{},
		deck:    &Deck{},
		subckts: map[string]*subckt{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		raw := strings.TrimRight(sc.Text(), " \t\r")
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "+") && len(lines) > 0 {
			lines[len(lines)-1] += " " + strings.TrimPrefix(raw, "+")
			continue
		}
		lines = append(lines, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("netlist: empty input")
	}
	p.deck.Title = lines[0]
	for ln, raw := range lines[1:] {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("netlist: line %d (%q): %w", ln+2, raw, err)
		}
	}
	if p.capture != nil {
		return nil, fmt.Errorf("netlist: unterminated .subckt (missing .ends)")
	}
	ckt, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	p.deck.Ckt = ckt
	p.deck.Bld = p.b
	for _, name := range p.objNodes {
		idx, err := p.b.NodeIndex(name)
		if err != nil {
			return nil, fmt.Errorf("netlist: .obj: %w", err)
		}
		p.deck.Objectives = append(p.deck.Objectives, adjoint.Objective{
			Name: "v(" + name + ")", Node: idx, Weight: 1,
		})
	}
	for _, name := range p.printNodes {
		idx, err := p.b.NodeIndex(name)
		if err != nil {
			return nil, fmt.Errorf("netlist: .print: %w", err)
		}
		p.deck.Prints = append(p.deck.Prints, PrintVar{Name: "v(" + name + ")", Node: idx})
	}
	return p.deck, nil
}

// fields tokenizes a card, keeping function-call groups like SIN( … )
// together as one token.
func fields(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t' || r == ',') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// number parses a SPICE number with engineering suffix.
func number(tok string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(tok))
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "meg"):
		mult, t = 1e6, t[:len(t)-3]
	case strings.HasSuffix(t, "mil"):
		mult, t = 25.4e-6, t[:len(t)-3]
	default:
		if len(t) > 0 {
			switch t[len(t)-1] {
			case 'f':
				mult, t = 1e-15, t[:len(t)-1]
			case 'p':
				mult, t = 1e-12, t[:len(t)-1]
			case 'n':
				mult, t = 1e-9, t[:len(t)-1]
			case 'u':
				mult, t = 1e-6, t[:len(t)-1]
			case 'm':
				mult, t = 1e-3, t[:len(t)-1]
			case 'k':
				mult, t = 1e3, t[:len(t)-1]
			case 'g':
				mult, t = 1e9, t[:len(t)-1]
			case 't':
				mult, t = 1e12, t[:len(t)-1]
			}
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite number %q", tok)
	}
	return v * mult, nil
}

// kvParams parses NAME=VALUE tokens.
func kvParams(toks []string) (map[string]float64, []string, error) {
	params := map[string]float64{}
	var rest []string
	for _, t := range toks {
		if i := strings.IndexByte(t, '='); i > 0 {
			v, err := number(t[i+1:])
			if err != nil {
				return nil, nil, err
			}
			params[strings.ToUpper(t[:i])] = v
			continue
		}
		rest = append(rest, t)
	}
	return params, rest, nil
}

func (p *parser) line(raw string) error {
	if strings.HasPrefix(raw, "*") {
		return nil
	}
	toks := fields(raw)
	if len(toks) == 0 {
		return nil
	}
	head := strings.ToUpper(toks[0])
	// Inside a .subckt definition, capture lines verbatim until .ends.
	if p.capture != nil {
		if head == ".ENDS" {
			p.capture = nil
			return nil
		}
		if head == ".SUBCKT" {
			return fmt.Errorf("nested .subckt definitions are not supported")
		}
		p.capture.lines = append(p.capture.lines, raw)
		return nil
	}
	switch {
	case head == ".END":
		return nil
	case head == ".SUBCKT":
		return p.subcktCard(toks[1:])
	case head == ".ENDS":
		return fmt.Errorf(".ends without .subckt")
	case head == ".MODEL":
		return p.modelCard(toks[1:])
	case head == ".TRAN":
		return p.tranCard(toks[1:])
	case head == ".OBJ" || head == ".SENSOBJ":
		return p.objCard(toks[1:])
	case head == ".PRINT":
		return p.printCard(toks[1:])
	case head == ".OPTIONS":
		return p.optionsCard(toks[1:])
	case head[0] == '.':
		return fmt.Errorf("unsupported card %s", head)
	case head[0] == 'R':
		return p.twoTerm(toks, "R")
	case head[0] == 'C':
		return p.twoTerm(toks, "C")
	case head[0] == 'L':
		return p.twoTerm(toks, "L")
	case head[0] == 'V':
		return p.source(toks, true)
	case head[0] == 'I':
		return p.source(toks, false)
	case head[0] == 'X':
		return p.instance(toks)
	case head[0] == 'G':
		return p.controlled(toks, false)
	case head[0] == 'E':
		return p.controlled(toks, true)
	case head[0] == 'D':
		return p.diode(toks)
	case head[0] == 'Q':
		return p.bjt(toks)
	case head[0] == 'M':
		return p.mosfet(toks)
	default:
		return fmt.Errorf("unsupported element %q", toks[0])
	}
}

// subcktCard begins capturing a definition: .subckt NAME port1 port2 …
func (p *parser) subcktCard(toks []string) error {
	if len(toks) < 2 {
		return fmt.Errorf(".subckt needs a name and at least one port")
	}
	name := strings.ToUpper(toks[0])
	if _, dup := p.subckts[name]; dup {
		return fmt.Errorf("duplicate .subckt %s", toks[0])
	}
	def := &subckt{ports: append([]string(nil), toks[1:]...)}
	p.subckts[name] = def
	p.capture = def
	return nil
}

// instance expands an X card: X<name> n1 n2 … SUBNAME.
func (p *parser) instance(toks []string) error {
	if len(toks) < 3 {
		return fmt.Errorf("subcircuit instance needs nodes and a name")
	}
	def, ok := p.subckts[strings.ToUpper(toks[len(toks)-1])]
	if !ok {
		return fmt.Errorf("unknown subcircuit %q", toks[len(toks)-1])
	}
	conns := toks[1 : len(toks)-1]
	if len(conns) != len(def.ports) {
		return fmt.Errorf("instance %s connects %d nodes, subcircuit has %d ports",
			toks[0], len(conns), len(def.ports))
	}
	if p.depth >= 20 {
		return fmt.Errorf("subcircuit nesting deeper than 20 (recursive instance?)")
	}
	ports := make(map[string]string, len(conns))
	for i, port := range def.ports {
		ports[port] = p.mapNode(conns[i])
	}
	p.scope = &scope{
		prefix: p.mapName(toks[0]) + ".",
		ports:  ports,
		parent: p.scope,
	}
	p.depth++
	defer func() {
		p.scope = p.scope.parent
		p.depth--
	}()
	for _, l := range def.lines {
		if err := p.line(l); err != nil {
			return fmt.Errorf("in %s: %w", toks[0], err)
		}
	}
	return nil
}

func (p *parser) modelCard(toks []string) error {
	if len(toks) < 2 {
		return fmt.Errorf(".model needs a name and a type")
	}
	params, rest, err := kvParams(toks[2:])
	if err != nil {
		return err
	}
	if len(rest) > 0 {
		return fmt.Errorf("unexpected tokens %v in .model", rest)
	}
	p.models[strings.ToUpper(toks[0])] = &model{
		kind:   strings.ToUpper(toks[1]),
		params: params,
	}
	return nil
}

func (p *parser) tranCard(toks []string) error {
	if len(toks) < 2 {
		return fmt.Errorf(".tran needs <tstep> <tstop>")
	}
	step, err := number(toks[0])
	if err != nil {
		return err
	}
	stop, err := number(toks[1])
	if err != nil {
		return err
	}
	// Preserve any .options settings already parsed.
	p.deck.Tran.TStep = step
	p.deck.Tran.TStop = stop
	p.deck.HasTran = true
	return nil
}

func (p *parser) objCard(toks []string) error {
	for _, t := range toks {
		tl := strings.ToLower(t)
		if !strings.HasPrefix(tl, "v(") || !strings.HasSuffix(tl, ")") {
			return fmt.Errorf("objective %q must have the form v(node)", t)
		}
		p.objNodes = append(p.objNodes, t[2:len(t)-1])
	}
	return nil
}

// optionsCard handles the supported .options settings:
// method=trap|be, reltol=, abstol=, gmin=.
func (p *parser) optionsCard(toks []string) error {
	for _, t := range toks {
		i := strings.IndexByte(t, '=')
		if i <= 0 {
			return fmt.Errorf("option %q must have the form name=value", t)
		}
		key := strings.ToLower(t[:i])
		val := strings.ToLower(t[i+1:])
		switch key {
		case "method":
			switch val {
			case "trap", "trapezoidal":
				p.deck.Tran.Method = transient.MethodTrap
			case "be", "euler", "gear1":
				p.deck.Tran.Method = transient.MethodBE
			default:
				return fmt.Errorf("unknown integration method %q", val)
			}
		case "reltol":
			v, err := number(val)
			if err != nil {
				return err
			}
			p.deck.Tran.RelTol = v
		case "abstol":
			v, err := number(val)
			if err != nil {
				return err
			}
			p.deck.Tran.AbsTol = v
		case "gmin":
			v, err := number(val)
			if err != nil {
				return err
			}
			p.deck.Tran.Gmin = v
		default:
			return fmt.Errorf("unsupported option %q", key)
		}
	}
	return nil
}

// printCard records .print v(node) outputs; the SPICE "tran" type token is
// accepted and ignored.
func (p *parser) printCard(toks []string) error {
	for _, t := range toks {
		tl := strings.ToLower(t)
		if tl == "tran" {
			continue
		}
		if !strings.HasPrefix(tl, "v(") || !strings.HasSuffix(tl, ")") {
			return fmt.Errorf("print variable %q must have the form v(node)", t)
		}
		p.printNodes = append(p.printNodes, t[2:len(t)-1])
	}
	return nil
}

func (p *parser) twoTerm(toks []string, kind string) error {
	if len(toks) < 4 {
		return fmt.Errorf("%s card needs 2 nodes and a value", kind)
	}
	v, err := number(toks[3])
	if err != nil {
		return err
	}
	name, n1, n2 := p.mapName(toks[0]), p.mapNode(toks[1]), p.mapNode(toks[2])
	switch kind {
	case "R":
		p.b.AddResistor(name, n1, n2, v)
	case "C":
		p.b.AddCapacitor(name, n1, n2, v)
	case "L":
		p.b.AddInductor(name, n1, n2, v)
	}
	return nil
}

// waveform parses the source specification tokens after the node pair.
func waveform(toks []string) (device.Waveform, error) {
	if len(toks) == 0 {
		return device.DC(0), nil
	}
	up := strings.ToUpper(toks[0])
	switch {
	case up == "DC":
		if len(toks) < 2 {
			return nil, fmt.Errorf("DC needs a value")
		}
		v, err := number(toks[1])
		if err != nil {
			return nil, err
		}
		return device.DC(v), nil
	case strings.HasPrefix(up, "SIN("):
		args, err := fnArgs(toks[0])
		if err != nil || len(args) < 3 {
			return nil, fmt.Errorf("SIN needs (vo va freq [td theta])")
		}
		w := device.Sin{VO: args[0], VA: args[1], Freq: args[2]}
		if len(args) > 3 {
			w.TD = args[3]
		}
		if len(args) > 4 {
			w.Theta = args[4]
		}
		return w, nil
	case strings.HasPrefix(up, "PULSE("):
		args, err := fnArgs(toks[0])
		if err != nil || len(args) < 7 {
			return nil, fmt.Errorf("PULSE needs (v1 v2 td tr tf pw per)")
		}
		return device.Pulse{
			V1: args[0], V2: args[1], TD: args[2],
			TR: args[3], TF: args[4], PW: args[5], PE: args[6],
		}, nil
	case strings.HasPrefix(up, "PWL("):
		args, err := fnArgs(toks[0])
		if err != nil || len(args) < 2 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL needs (t1 v1 t2 v2 ...)")
		}
		w := device.PWL{}
		for i := 0; i < len(args); i += 2 {
			w.T = append(w.T, args[i])
			w.V = append(w.V, args[i+1])
		}
		for i := 1; i < len(w.T); i++ {
			if w.T[i] < w.T[i-1] {
				return nil, fmt.Errorf("PWL times must ascend")
			}
		}
		return w, nil
	default:
		// Bare value: DC level.
		v, err := number(toks[0])
		if err != nil {
			return nil, err
		}
		return device.DC(v), nil
	}
}

// fnArgs parses "NAME(a b c)" into numbers.
func fnArgs(tok string) ([]float64, error) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return nil, fmt.Errorf("malformed %q", tok)
	}
	inner := tok[open+1 : len(tok)-1]
	var out []float64
	for _, f := range strings.Fields(strings.ReplaceAll(inner, ",", " ")) {
		v, err := number(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (p *parser) source(toks []string, voltage bool) error {
	if len(toks) < 3 {
		return fmt.Errorf("source needs 2 nodes")
	}
	w, err := waveform(toks[3:])
	if err != nil {
		return err
	}
	name, np, nn := p.mapName(toks[0]), p.mapNode(toks[1]), p.mapNode(toks[2])
	if voltage {
		p.b.AddVSource(name, np, nn, w)
	} else {
		p.b.AddISource(name, np, nn, w)
	}
	return nil
}

// controlled parses the SPICE G (VCCS) and E (VCVS) cards:
// X<name> n+ n- nc+ nc- value.
func (p *parser) controlled(toks []string, vcvs bool) error {
	if len(toks) < 6 {
		return fmt.Errorf("controlled source needs 4 nodes and a value")
	}
	v, err := number(toks[5])
	if err != nil {
		return err
	}
	name := p.mapName(toks[0])
	np, nn := p.mapNode(toks[1]), p.mapNode(toks[2])
	cp, cn := p.mapNode(toks[3]), p.mapNode(toks[4])
	if vcvs {
		p.b.AddVCVS(name, np, nn, cp, cn, v)
	} else {
		p.b.AddVCCS(name, np, nn, cp, cn, v)
	}
	return nil
}

func (p *parser) findModel(rest []string, wantKinds ...string) (*model, error) {
	for _, t := range rest {
		if m, ok := p.models[strings.ToUpper(t)]; ok {
			for _, k := range wantKinds {
				if m.kind == k {
					return m, nil
				}
			}
			return nil, fmt.Errorf("model %s has type %s, want %v", t, m.kind, wantKinds)
		}
	}
	return nil, nil
}

func (p *parser) diode(toks []string) error {
	if len(toks) < 3 {
		return fmt.Errorf("diode needs 2 nodes")
	}
	params, rest, err := kvParams(toks[3:])
	if err != nil {
		return err
	}
	d := p.b.AddDiode(p.mapName(toks[0]), p.mapNode(toks[1]), p.mapNode(toks[2]))
	m, err := p.findModel(rest, "D")
	if err != nil {
		return err
	}
	apply := func(ps map[string]float64) {
		if v, ok := ps["IS"]; ok {
			d.Is = v
		}
		if v, ok := ps["N"]; ok {
			d.N = v
		}
	}
	if m != nil {
		apply(m.params)
	}
	apply(params)
	return nil
}

func (p *parser) bjt(toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("BJT needs 3 nodes (C B E)")
	}
	params, rest, err := kvParams(toks[4:])
	if err != nil {
		return err
	}
	q := p.b.AddBJT(p.mapName(toks[0]), p.mapNode(toks[1]), p.mapNode(toks[2]), p.mapNode(toks[3]))
	m, err := p.findModel(rest, "NPN", "PNP")
	if err != nil {
		return err
	}
	apply := func(ps map[string]float64) {
		if v, ok := ps["IS"]; ok {
			q.Is = v
		}
		if v, ok := ps["BF"]; ok {
			q.BF = v
		}
		if v, ok := ps["BR"]; ok {
			q.BR = v
		}
		if v, ok := ps["CJE"]; ok {
			q.CJE = v
		}
		if v, ok := ps["CJC"]; ok {
			q.CJC = v
		}
		if v, ok := ps["TF"]; ok {
			q.TF = v
		}
		if v, ok := ps["VAF"]; ok {
			q.VAF = v
		}
	}
	if m != nil {
		if m.kind == "PNP" {
			q.PNP = true
		}
		apply(m.params)
	}
	apply(params)
	return nil
}

func (p *parser) mosfet(toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("MOSFET needs 3 nodes (D G S)")
	}
	params, rest, err := kvParams(toks[4:])
	if err != nil {
		return err
	}
	mos := p.b.AddMOSFET(p.mapName(toks[0]), p.mapNode(toks[1]), p.mapNode(toks[2]), p.mapNode(toks[3]))
	m, err := p.findModel(rest, "NMOS", "PMOS")
	if err != nil {
		return err
	}
	apply := func(ps map[string]float64) {
		if v, ok := ps["KP"]; ok {
			mos.KP = v
		}
		if v, ok := ps["VTO"]; ok {
			mos.VTO = v
		}
		if v, ok := ps["LAMBDA"]; ok {
			mos.Lambda = v
		}
		if v, ok := ps["CGS"]; ok {
			mos.CGS = v
		}
		if v, ok := ps["CGD"]; ok {
			mos.CGD = v
		}
	}
	if m != nil {
		if m.kind == "PMOS" {
			mos.PMOS = true
		}
		apply(m.params)
	}
	apply(params)
	return nil
}
