package netlist

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the netlist parser: it must return a
// deck or an error, never panic.
func FuzzParse(f *testing.F) {
	f.Add(rcDeck)
	f.Add("t\n.subckt s a\nR1 a 0 1k\n.ends\nX1 n s\nR2 n 0 1\n.tran 1u 2u\n")
	f.Add("t\nV1 a 0 PULSE(0 1 0 1n 1n 1u 2u)\nR1 a 0 1k\n")
	f.Add("t\nM1 d g s mn\n.model mn NMOS KP=1e-4\nR1 d 0 1k\n")
	f.Add(".tran\n+ 1u")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(strings.NewReader(input))
		if err == nil && d.Ckt == nil {
			t.Fatal("nil circuit without error")
		}
	})
}
