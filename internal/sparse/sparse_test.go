package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildRandomPattern(rng *rand.Rand, n, entries int) *Pattern {
	b := NewBuilder(n)
	for k := 0; k < entries; k++ {
		b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	// Always include the diagonal so matrices are plausibly factorable.
	for i := 0; i < n; i++ {
		b.Add(int32(i), int32(i))
	}
	return b.Build()
}

func TestBuilderDedupAndOrder(t *testing.T) {
	b := NewBuilder(4)
	b.Add(2, 3)
	b.Add(0, 1)
	b.Add(2, 3) // duplicate
	b.Add(2, 0)
	b.Add(0, 0)
	p := b.Build()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", p.NNZ())
	}
	wantCols := []int32{0, 1, 0, 3}
	for i, c := range p.ColIdx {
		if c != wantCols[i] {
			t.Fatalf("colIdx = %v, want %v", p.ColIdx, wantCols)
		}
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewBuilder(3).Add(3, 0)
}

func TestFind(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := buildRandomPattern(rng, 30, 120)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every structural entry is found at its own slot.
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			if got := p.Find(i, p.ColIdx[k]); got != k {
				t.Fatalf("Find(%d,%d) = %d, want %d", i, p.ColIdx[k], got, k)
			}
		}
	}
	// A missing entry returns -1.
	for i := int32(0); i < int32(p.N); i++ {
		present := map[int32]bool{}
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			present[p.ColIdx[k]] = true
		}
		for j := int32(0); j < int32(p.N); j++ {
			if !present[j] {
				if got := p.Find(i, j); got != -1 {
					t.Fatalf("Find(%d,%d) = %d, want -1", i, j, got)
				}
			}
		}
	}
}

func TestDiagAndTransposeSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := buildRandomPattern(rng, 25, 100)
	diag := p.DiagSlots()
	for i := int32(0); i < int32(p.N); i++ {
		if diag[i] != p.Find(i, i) {
			t.Fatalf("diag slot mismatch at %d", i)
		}
	}
	tr := p.TransposeSlots()
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.ColIdx[k]
			want := p.Find(j, i)
			if tr[k] != want {
				t.Fatalf("transpose slot of (%d,%d): got %d, want %d", i, j, tr[k], want)
			}
			if tr[k] >= 0 {
				// Transposing twice returns to the original slot.
				if tr[tr[k]] != k {
					t.Fatalf("transpose not involutive at slot %d", k)
				}
			}
		}
	}
}

func TestRowOf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := buildRandomPattern(rng, 40, 200)
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			if got := p.RowOf(k); got != i {
				t.Fatalf("RowOf(%d) = %d, want %d", k, got, i)
			}
		}
	}
}

func TestMatrixAtAddAt(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0)
	b.Add(0, 2)
	b.Add(1, 1)
	b.Add(2, 0)
	b.Add(2, 2)
	p := b.Build()
	m := NewMatrix(p)
	m.AddAt(0, 2, 5)
	m.AddAt(0, 2, 2)
	m.AddAt(2, 0, -1)
	if got := m.At(0, 2); got != 7 {
		t.Fatalf("At(0,2) = %g, want 7", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %g, want 0 (absent)", got)
	}
	if got := m.At(2, 0); got != -1 {
		t.Fatalf("At(2,0) = %g, want -1", got)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(30)
		p := buildRandomPattern(rng, n, n*3)
		m := NewMatrix(p)
		for k := range m.Val {
			m.Val[k] = rng.NormFloat64()
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		yt := make([]float64, n)
		m.MulVec(x, y)
		m.MulVecT(x, yt)
		d := m.Dense()
		for i := 0; i < n; i++ {
			var want, wantT float64
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
				wantT += d[j][i] * x[j]
			}
			if diff := y[i] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want)
			}
			if diff := yt[i] - wantT; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("MulVecT[%d] = %g, want %g", i, yt[i], wantT)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(20)
		a := buildRandomPattern(rng, n, n*2)
		c := buildRandomPattern(rng, n, n*2)
		u, mapA, mapB := Union(a, c)
		if err := u.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every a-entry and c-entry lands on the matching union slot.
		for i := int32(0); i < int32(n); i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				slot := mapA[k]
				if u.ColIdx[slot] != a.ColIdx[k] || u.RowOf(slot) != i {
					t.Fatalf("mapA wrong for a slot %d", k)
				}
			}
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				slot := mapB[k]
				if u.ColIdx[slot] != c.ColIdx[k] || u.RowOf(slot) != i {
					t.Fatalf("mapB wrong for c slot %d", k)
				}
			}
		}
		// Union nnz is |A| + |C| - |A∩C|.
		inter := 0
		for i := int32(0); i < int32(n); i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if c.Find(i, a.ColIdx[k]) >= 0 {
					inter++
				}
			}
		}
		if u.NNZ() != a.NNZ()+c.NNZ()-inter {
			t.Fatalf("union nnz = %d, want %d", u.NNZ(), a.NNZ()+c.NNZ()-inter)
		}
	}
}

func TestAXPYInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 12
	a := buildRandomPattern(rng, n, 40)
	c := buildRandomPattern(rng, n, 40)
	u, mapA, mapB := Union(a, c)
	ma := NewMatrix(a)
	mc := NewMatrix(c)
	for k := range ma.Val {
		ma.Val[k] = rng.NormFloat64()
	}
	for k := range mc.Val {
		mc.Val[k] = rng.NormFloat64()
	}
	mu := NewMatrix(u)
	AXPYInto(mu, 2.0, ma, mapA)
	AXPYInto(mu, -3.0, mc, mapB)
	da, dc, du := ma.Dense(), mc.Dense(), mu.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 2*da[i][j] - 3*dc[i][j]
			if diff := du[i][j] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("union value (%d,%d) = %g, want %g", i, j, du[i][j], want)
			}
		}
	}
}

func TestQuickPatternInvariant(t *testing.T) {
	f := func(seed int64, sz uint8, ent uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%40) + 1
		p := buildRandomPattern(rng, n, int(ent%300))
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := buildRandomPattern(rng, 2000, 14000)
	m := NewMatrix(p)
	for k := range m.Val {
		m.Val[k] = rng.NormFloat64()
	}
	x := make([]float64, p.N)
	y := make([]float64, p.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}
