// Package sparse provides the compressed sparse row (CSR) structures used
// throughout the simulator. A Pattern is an immutable sparsity structure —
// the "shared indices" of the MASC paper — and a Matrix is a value array
// bound to a Pattern. Many matrices (one per Newton iteration per timestep)
// share a single Pattern, which is what makes index storage O(1) in the
// number of timesteps.
package sparse

import (
	"fmt"
	"sort"
)

// Pattern is an immutable CSR sparsity pattern of an N×N matrix.
// Column indices within each row are strictly ascending.
type Pattern struct {
	N      int
	RowPtr []int32 // length N+1
	ColIdx []int32 // length NNZ

	diag []int32 // slot of (i,i) per row, -1 if absent; built lazily
	tr   []int32 // slot of the transposed entry per slot, -1 if absent
	csc  *CSCView
}

// CSCView is a column-oriented view of a CSR pattern. Slot[k] maps the k-th
// CSC position back to the CSR slot holding the same entry, so a Matrix's
// values can be read column-wise without copying.
type CSCView struct {
	ColPtr []int32
	RowIdx []int32
	Slot   []int32
}

// CSC returns the cached column-oriented view, building it on first use.
// Callers must not modify the returned view.
func (p *Pattern) CSC() *CSCView {
	if p.csc != nil {
		return p.csc
	}
	nnz := p.NNZ()
	v := &CSCView{
		ColPtr: make([]int32, p.N+1),
		RowIdx: make([]int32, nnz),
		Slot:   make([]int32, nnz),
	}
	for _, c := range p.ColIdx {
		v.ColPtr[c+1]++
	}
	for j := 0; j < p.N; j++ {
		v.ColPtr[j+1] += v.ColPtr[j]
	}
	next := make([]int32, p.N)
	copy(next, v.ColPtr[:p.N])
	for i := int32(0); i < int32(p.N); i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			c := p.ColIdx[k]
			pos := next[c]
			next[c]++
			v.RowIdx[pos] = i
			v.Slot[pos] = k
		}
	}
	p.csc = v
	return v
}

// NNZ reports the number of structurally nonzero entries.
func (p *Pattern) NNZ() int { return len(p.ColIdx) }

// Find returns the slot index of entry (i,j), or -1 if the entry is not in
// the pattern. It binary-searches within row i.
func (p *Pattern) Find(i, j int32) int32 {
	lo, hi := p.RowPtr[i], p.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := p.ColIdx[mid]; {
		case c == j:
			return mid
		case c < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// Row returns the slot range [lo, hi) of row i.
func (p *Pattern) Row(i int32) (lo, hi int32) {
	return p.RowPtr[i], p.RowPtr[i+1]
}

// DiagSlots returns, for each row i, the slot of (i,i) or -1. The slice is
// computed once and cached; callers must not modify it.
func (p *Pattern) DiagSlots() []int32 {
	if p.diag == nil {
		d := make([]int32, p.N)
		for i := int32(0); i < int32(p.N); i++ {
			d[i] = p.Find(i, i)
		}
		p.diag = d
	}
	return p.diag
}

// TransposeSlots returns, for each slot k holding entry (i,j), the slot of
// (j,i) or -1. Cached; callers must not modify it.
func (p *Pattern) TransposeSlots() []int32 {
	if p.tr == nil {
		tr := make([]int32, p.NNZ())
		for i := int32(0); i < int32(p.N); i++ {
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				tr[k] = p.Find(p.ColIdx[k], i)
			}
		}
		p.tr = tr
	}
	return p.tr
}

// RowOf returns the row of slot k via binary search over RowPtr.
func (p *Pattern) RowOf(k int32) int32 {
	lo, hi := int32(0), int32(p.N)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.RowPtr[mid+1] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks structural invariants; it is intended for tests and for
// patterns decoded from external data.
func (p *Pattern) Validate() error {
	if len(p.RowPtr) != p.N+1 {
		return fmt.Errorf("sparse: rowPtr length %d, want %d", len(p.RowPtr), p.N+1)
	}
	if p.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: rowPtr[0] = %d, want 0", p.RowPtr[0])
	}
	if int(p.RowPtr[p.N]) != len(p.ColIdx) {
		return fmt.Errorf("sparse: rowPtr[N] = %d, want nnz %d", p.RowPtr[p.N], len(p.ColIdx))
	}
	for i := 0; i < p.N; i++ {
		if p.RowPtr[i] > p.RowPtr[i+1] {
			return fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			c := p.ColIdx[k]
			if c < 0 || int(c) >= p.N {
				return fmt.Errorf("sparse: column %d out of range in row %d", c, i)
			}
			if k > p.RowPtr[i] && p.ColIdx[k-1] >= c {
				return fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
		}
	}
	return nil
}

// Builder accumulates structural entries (duplicates allowed) and produces a
// Pattern. It is used during netlist setup to discover the MNA pattern.
type Builder struct {
	n    int
	rows []int32
	cols []int32
}

// NewBuilder returns a Builder for an n×n pattern.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Add records entry (i,j). Out-of-range entries panic: they indicate a
// stamping bug, not a data error.
func (b *Builder) Add(i, j int32) {
	if i < 0 || int(i) >= b.n || j < 0 || int(j) >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d×%d", i, j, b.n, b.n))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
}

// Len reports the number of recorded (possibly duplicate) entries.
func (b *Builder) Len() int { return len(b.rows) }

// Build sorts, deduplicates and freezes the recorded entries into a Pattern.
func (b *Builder) Build() *Pattern {
	type entry struct{ i, j int32 }
	ents := make([]entry, len(b.rows))
	for k := range b.rows {
		ents[k] = entry{b.rows[k], b.cols[k]}
	}
	sort.Slice(ents, func(a, c int) bool {
		if ents[a].i != ents[c].i {
			return ents[a].i < ents[c].i
		}
		return ents[a].j < ents[c].j
	})
	p := &Pattern{N: b.n, RowPtr: make([]int32, b.n+1)}
	var last entry = entry{-1, -1}
	for _, e := range ents {
		if e == last {
			continue
		}
		last = e
		p.ColIdx = append(p.ColIdx, e.j)
		p.RowPtr[e.i+1]++
	}
	for i := 0; i < b.n; i++ {
		p.RowPtr[i+1] += p.RowPtr[i]
	}
	return p
}

// Union merges two patterns over the same dimension and returns the merged
// pattern together with slot maps: mapA[k] is the slot in the union holding
// a's k-th entry (likewise mapB). It is used to assemble J = C/h + G on a
// single shared pattern.
func Union(a, c *Pattern) (u *Pattern, mapA, mapB []int32) {
	if a.N != c.N {
		panic("sparse: union of patterns with different dimensions")
	}
	n := a.N
	u = &Pattern{N: n, RowPtr: make([]int32, n+1)}
	mapA = make([]int32, a.NNZ())
	mapB = make([]int32, c.NNZ())
	for i := int32(0); i < int32(n); i++ {
		ka, ea := a.RowPtr[i], a.RowPtr[i+1]
		kb, eb := c.RowPtr[i], c.RowPtr[i+1]
		for ka < ea || kb < eb {
			var col int32
			takeA, takeB := false, false
			switch {
			case ka < ea && kb < eb:
				ca, cb := a.ColIdx[ka], c.ColIdx[kb]
				if ca < cb {
					col, takeA = ca, true
				} else if cb < ca {
					col, takeB = cb, true
				} else {
					col, takeA, takeB = ca, true, true
				}
			case ka < ea:
				col, takeA = a.ColIdx[ka], true
			default:
				col, takeB = c.ColIdx[kb], true
			}
			slot := int32(len(u.ColIdx))
			u.ColIdx = append(u.ColIdx, col)
			if takeA {
				mapA[ka] = slot
				ka++
			}
			if takeB {
				mapB[kb] = slot
				kb++
			}
		}
		u.RowPtr[i+1] = int32(len(u.ColIdx))
	}
	return u, mapA, mapB
}
