package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, n, entries int) *Matrix {
	m := NewMatrix(buildRandomPattern(rng, n, entries))
	for k := range m.Val {
		m.Val[k] = rng.NormFloat64()
	}
	return m
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(25)
		m := randomMatrix(rng, n, 3*n)
		tr := m.Transpose()
		if err := tr.P.Validate(); err != nil {
			t.Fatal(err)
		}
		d, dt := m.Dense(), tr.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] != dt[j][i] {
					t.Fatalf("transpose wrong at (%d,%d)", i, j)
				}
			}
		}
		// Double transpose is the identity (up to pattern equality).
		trtr := tr.Transpose()
		if !PatternsEqual(m.P, trtr.P) {
			t.Fatal("double transpose changed the pattern")
		}
		for k := range m.Val {
			if m.Val[k] != trtr.Val[k] {
				t.Fatal("double transpose changed values")
			}
		}
	}
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n, 2*n)
		b := randomMatrix(rng, n, 2*n)
		sum := Add(a, b)
		da, db, ds := a.Dense(), b.Dense(), sum.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := da[i][j] + db[i][j]
				if math.Abs(ds[i][j]-want) > 1e-14 {
					t.Fatalf("(%d,%d): %g, want %g", i, j, ds[i][j], want)
				}
			}
		}
	}
}

func TestScaleAndNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 15, 60)
	f0 := m.FrobeniusNorm()
	x0 := m.MaxNorm()
	i0 := m.InfNorm()
	m.Scale(-2.5)
	if math.Abs(m.FrobeniusNorm()-2.5*f0) > 1e-12*f0 {
		t.Fatal("Frobenius norm did not scale")
	}
	if math.Abs(m.MaxNorm()-2.5*x0) > 1e-12*x0 {
		t.Fatal("max norm did not scale")
	}
	if math.Abs(m.InfNorm()-2.5*i0) > 1e-12*i0 {
		t.Fatal("inf norm did not scale")
	}
	// Norm inequalities: max ≤ inf, max ≤ frobenius.
	if m.MaxNorm() > m.InfNorm()+1e-15 || m.MaxNorm() > m.FrobeniusNorm()+1e-15 {
		t.Fatal("norm ordering violated")
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := [][]float64{
		{1, 0, 2},
		{0, 0, -3},
		{4e-13, 5, 0},
	}
	m := FromDense(d, 1e-12)
	if m.P.NNZ() != 4 { // the 4e-13 entry is below tol
		t.Fatalf("nnz = %d, want 4", m.P.NNZ())
	}
	got := m.Dense()
	for i := range d {
		for j := range d[i] {
			want := d[i][j]
			if math.Abs(want) <= 1e-12 {
				want = 0
			}
			if got[i][j] != want {
				t.Fatalf("(%d,%d): %g, want %g", i, j, got[i][j], want)
			}
		}
	}
}

func TestQuickTransposeMulVec(t *testing.T) {
	// Aᵀx computed via MulVecT must equal Transpose().MulVec.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%20) + 1
		m := randomMatrix(rng, n, 3*n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		m.MulVecT(x, y1)
		m.Transpose().MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
