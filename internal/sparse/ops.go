package sparse

import "math"

// Transpose materializes Aᵀ as a new matrix with its own pattern.
func (m *Matrix) Transpose() *Matrix {
	p := m.P
	csc := p.CSC()
	tp := &Pattern{
		N:      p.N,
		RowPtr: append([]int32(nil), csc.ColPtr...),
		ColIdx: append([]int32(nil), csc.RowIdx...),
	}
	t := NewMatrix(tp)
	for k := range csc.Slot {
		t.Val[k] = m.Val[csc.Slot[k]]
	}
	return t
}

// Add returns A + B on the union pattern.
func Add(a, b *Matrix) *Matrix {
	u, mapA, mapB := Union(a.P, b.P)
	out := NewMatrix(u)
	AXPYInto(out, 1, a, mapA)
	AXPYInto(out, 1, b, mapB)
	return out
}

// Scale multiplies every stored value by alpha, in place.
func (m *Matrix) Scale(alpha float64) {
	for k := range m.Val {
		m.Val[k] *= alpha
	}
}

// MaxNorm returns max |a_ij| over stored entries.
func (m *Matrix) MaxNorm() float64 {
	worst := 0.0
	for _, v := range m.Val {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// FrobeniusNorm returns √Σ a_ij².
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// InfNorm returns the maximum absolute row sum.
func (m *Matrix) InfNorm() float64 {
	worst := 0.0
	for i := int32(0); i < int32(m.P.N); i++ {
		s := 0.0
		for k := m.P.RowPtr[i]; k < m.P.RowPtr[i+1]; k++ {
			s += math.Abs(m.Val[k])
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// FromDense builds a Matrix from a dense row-major array, keeping entries
// with |v| > tol as structural nonzeros. Intended for tests and examples.
func FromDense(d [][]float64, tol float64) *Matrix {
	n := len(d)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(d[i][j]) > tol {
				b.Add(int32(i), int32(j))
			}
		}
	}
	m := NewMatrix(b.Build())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(d[i][j]) > tol {
				m.Val[m.P.Find(int32(i), int32(j))] = d[i][j]
			}
		}
	}
	return m
}

// PatternsEqual reports whether two patterns are structurally identical.
func PatternsEqual(a, b *Pattern) bool {
	if a.N != b.N || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	return true
}
