package sparse

import "fmt"

// Matrix binds a value array to a shared Pattern. Many Matrix values may
// reference the same Pattern.
type Matrix struct {
	P   *Pattern
	Val []float64
}

// NewMatrix allocates a zero matrix over pattern p.
func NewMatrix(p *Pattern) *Matrix {
	return &Matrix{P: p, Val: make([]float64, p.NNZ())}
}

// Clear zeroes all values, keeping the pattern.
func (m *Matrix) Clear() {
	for i := range m.Val {
		m.Val[i] = 0
	}
}

// Clone returns a deep copy sharing the (immutable) pattern.
func (m *Matrix) Clone() *Matrix {
	v := make([]float64, len(m.Val))
	copy(v, m.Val)
	return &Matrix{P: m.P, Val: v}
}

// At returns the value at (i,j), zero if the entry is not in the pattern.
func (m *Matrix) At(i, j int32) float64 {
	k := m.P.Find(i, j)
	if k < 0 {
		return 0
	}
	return m.Val[k]
}

// AddAt adds v at (i,j). The entry must exist in the pattern.
func (m *Matrix) AddAt(i, j int32, v float64) {
	k := m.P.Find(i, j)
	if k < 0 {
		panic(fmt.Sprintf("sparse: AddAt(%d,%d) outside pattern", i, j))
	}
	m.Val[k] += v
}

// MulVec computes y = A·x. x and y must have length N and must not alias.
func (m *Matrix) MulVec(x, y []float64) {
	p := m.P
	for i := 0; i < p.N; i++ {
		var s float64
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[p.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecT computes y = Aᵀ·x. x and y must have length N and must not alias.
func (m *Matrix) MulVecT(x, y []float64) {
	p := m.P
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < p.N; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			y[p.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// Dense expands the matrix to a row-major dense [][]float64. For tests and
// debugging only.
func (m *Matrix) Dense() [][]float64 {
	p := m.P
	d := make([][]float64, p.N)
	for i := range d {
		d[i] = make([]float64, p.N)
	}
	for i := 0; i < p.N; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			d[i][p.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// AXPYInto scatters alpha·src into dst using slotMap (from Union): for each
// source slot k, dst.Val[slotMap[k]] += alpha·src.Val[k].
func AXPYInto(dst *Matrix, alpha float64, src *Matrix, slotMap []int32) {
	for k, v := range src.Val {
		dst.Val[slotMap[k]] += alpha * v
	}
}
