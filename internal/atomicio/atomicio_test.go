package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	want := []byte(`{"hello":"world"}` + "\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: got %q want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new contents"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new contents" {
		t.Fatalf("got %q", got)
	}
}

// A failed write must leave the original file untouched and no temp litter.
func TestWriteFileFailureLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-subdir", "out.txt")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

func TestNoTempLitterOnSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	if err := WriteFile(path, bytes.Repeat([]byte{7}, 1<<16), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a.bin" {
		t.Fatalf("directory not clean: %v", entries)
	}
}
