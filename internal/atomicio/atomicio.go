// Package atomicio writes files atomically: the bytes land in a temp file
// in the destination directory, are fsync'd, and only then renamed over the
// target. A crash — power loss, SIGKILL, OOM-kill — at any point leaves
// either the old complete file or the new complete file, never a torn one.
// Readers that open the path therefore never observe a partial write, which
// is the property the run journal's manifest/trace/golden outputs rely on.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temp file is created in
// path's directory (rename is only atomic within one filesystem), fsync'd
// before the rename so the bytes are durable under the new name, and the
// directory is fsync'd afterwards so the rename itself survives a crash.
// On any error the temp file is removed and the original path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename into it is durable. Best-effort:
// some filesystems (and all of Windows) reject directory fsync, and the
// rename's atomicity does not depend on it — only its durability window.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
