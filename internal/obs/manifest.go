package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"masc/internal/atomicio"
)

// Manifest is the skeleton of a run manifest: one JSON document holding
// everything needed to compare a run against another run — the tool and
// configuration that produced it, the aggregate statistics of every
// pipeline layer, and an optional metrics snapshot. Sections is the
// tool-specific payload; values marshal with encoding/json, so integer
// counters and time.Duration fields (nanoseconds) round-trip bit-exactly.
type Manifest struct {
	Tool       string                    `json:"tool"`
	CreatedAt  time.Time                 `json:"created_at"`
	Host       string                    `json:"host,omitempty"`
	Provenance Provenance                `json:"provenance"`
	Config     map[string]any            `json:"config,omitempty"`
	Sections   map[string]any            `json:"sections,omitempty"`
	MetricSnap map[string]map[string]any `json:"metrics,omitempty"`
}

// NewManifest returns a manifest stamped with the tool name, hostname,
// current time and build/runtime provenance.
func NewManifest(tool string) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		Tool:       tool,
		CreatedAt:  time.Now().UTC(),
		Host:       host,
		Provenance: CollectProvenance(),
		Config:     map[string]any{},
		Sections:   map[string]any{},
	}
}

// Section attaches a named payload (any json-marshalable value).
func (m *Manifest) Section(name string, v any) *Manifest {
	m.Sections[name] = v
	return m
}

// Set records one configuration key.
func (m *Manifest) Set(key string, v any) *Manifest {
	m.Config[key] = v
	return m
}

// AttachMetrics embeds a snapshot of reg (no-op when reg is nil).
func (m *Manifest) AttachMetrics(reg *Registry) *Manifest {
	if reg != nil {
		m.MetricSnap = reg.Snapshot()
	}
	return m
}

// Write serializes the manifest (indented JSON, trailing newline) to path.
// The provenance runtime snapshot is refreshed first so GC/heap counters
// describe the finished run rather than process startup. The write is
// atomic (temp file + fsync + rename): a crash mid-write leaves either the
// previous manifest or none, never a torn document.
func (m *Manifest) Write(path string) error {
	m.Provenance.refreshRuntime()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteJSON writes any value as an indented JSON document at path — the
// shared helper behind -stats-json style flags. Atomic like Manifest.Write.
func WriteJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest loads a manifest written by Write, rejecting torn or
// trailing-garbage documents: the file must be exactly one JSON object.
// Comparison tooling reads crash-site manifests through this, so a
// half-written document surfaces as an error instead of zeroed stats.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	m := &Manifest{}
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s is torn or invalid: %w", path, err)
	}
	if t, err := dec.Token(); err == nil {
		return nil, fmt.Errorf("obs: manifest %s has trailing content after the document: %v", path, t)
	}
	return m, nil
}
