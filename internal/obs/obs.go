// Package obs is the MASC pipeline's zero-dependency telemetry layer. It
// bundles orthogonal facilities behind one Observer handle:
//
//   - a concurrent metrics Registry (counters, gauges, histograms) that
//     renders in Prometheus text exposition format and as an expvar JSON
//     snapshot, optionally served over HTTP together with net/http/pprof;
//   - a structured per-timestep Tracer that streams one JSON object per
//     pipeline phase (solve, put, compress, fetch, adjoint solve, …) to a
//     JSONL file, with a zero-allocation no-op path when tracing is off;
//   - a causal span Recorder (internal/obs/span) that records the run's
//     phase tree — forward steps, jacobian put/compress, adjoint windows,
//     sweeps, fetches, tier decisions, disk retries — with nanosecond
//     timing, exportable as Chrome trace-event JSON or JSONL;
//   - an SSE Broadcaster that live-streams trace and span events to HTTP
//     clients on /events;
//   - a run-Manifest writer that serializes the configuration, provenance
//     and final aggregate statistics of a run as one JSON document, so
//     experiments can be compared across runs and machines.
//
// Every type is nil-safe: a nil *Observer, *Registry, *Tracer, *Recorder,
// *Broadcaster, *Counter, *Gauge or *Histogram turns the corresponding call
// into a no-op, so instrumented code needs no "is telemetry on?" branches
// of its own.
package obs

import "masc/internal/obs/span"

// Observer bundles the telemetry sinks threaded through the pipeline.
// A nil Observer (or nil fields) disables the corresponding facility.
type Observer struct {
	Reg    *Registry
	Trace  *Tracer
	Spans  *span.Recorder
	Events *Broadcaster
}

// Registry returns the metrics registry, or nil when o is nil.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the trace writer, or nil when o is nil.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// SpanRecorder returns the span recorder, or nil when o is nil.
func (o *Observer) SpanRecorder() *span.Recorder {
	if o == nil {
		return nil
	}
	return o.Spans
}

// Broadcaster returns the SSE event broadcaster, or nil when o is nil.
func (o *Observer) Broadcaster() *Broadcaster {
	if o == nil {
		return nil
	}
	return o.Events
}
