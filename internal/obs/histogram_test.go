package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the boundary semantics: bucket i
// counts v <= bounds[i] (Prometheus le), so an observation exactly on a
// bound lands in that bound's bucket, and anything above the last bound
// lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{1, 0},      // exactly on a bound: le is inclusive
		{1.0001, 1}, // just above: next bucket
		{10, 1},
		{99.9, 2},
		{100, 2},
		{100.1, 3}, // +Inf
		{math.Inf(1), 3},
	}
	for i, tc := range cases {
		before := make([]uint64, len(h.counts))
		for k := range h.counts {
			before[k] = h.counts[k].Load()
		}
		h.Observe(tc.v)
		for k := range h.counts {
			want := before[k]
			if k == tc.bucket {
				want++
			}
			if got := h.counts[k].Load(); got != want {
				t.Fatalf("case %d (v=%v): bucket %d = %d, want %d", i, tc.v, k, got, want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]float64{100, 1, 10})
	h.Observe(5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("5 landed outside the le=10 bucket (counts[1]=%d)", got)
	}
}

func TestDefaultBucketLadders(t *testing.T) {
	for _, tc := range []struct {
		name   string
		bs     []float64
		lo, hi float64
	}{
		{"timing", TimingBuckets(), 1e-6, 40},
		{"size", SizeBuckets(), 64, 64 << 20},
	} {
		if len(tc.bs) == 0 {
			t.Fatalf("%s: empty ladder", tc.name)
		}
		if tc.bs[0] != tc.lo {
			t.Fatalf("%s: first bound %v, want %v", tc.name, tc.bs[0], tc.lo)
		}
		last := tc.bs[len(tc.bs)-1]
		if last > tc.hi || last*4 <= tc.hi-1 {
			t.Fatalf("%s: last bound %v outside (%v/4, %v]", tc.name, last, tc.hi, tc.hi)
		}
		for i := 1; i < len(tc.bs); i++ {
			if tc.bs[i] != tc.bs[i-1]*4 {
				t.Fatalf("%s: not a ×4 ladder at %d: %v", tc.name, i, tc.bs[i])
			}
		}
	}
}
