package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"masc/internal/obs/span"
)

func TestBroadcasterNilSafe(t *testing.T) {
	var b *Broadcaster
	b.Publish("trace", []byte(`{}`))
	ch, cancel := b.Subscribe()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil broadcaster channel not closed")
	}
	b.Close()
	if b.Dropped() != 0 || b.Clients() != 0 {
		t.Fatal("nil broadcaster leaked state")
	}
}

func TestBroadcasterDelivery(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe()
	defer cancel()
	b.Publish("span", []byte(`{"id":1}`))
	select {
	case frame := <-ch:
		want := "event: span\ndata: {\"id\":1}\n\n"
		if string(frame) != want {
			t.Fatalf("frame = %q, want %q", frame, want)
		}
	case <-time.After(time.Second):
		t.Fatal("no frame delivered")
	}
}

func TestBroadcasterSlowClientDropsFrames(t *testing.T) {
	b := NewBroadcaster()
	_, cancel := b.Subscribe() // never read
	defer cancel()
	for i := 0; i < clientBuf+10; i++ {
		b.Publish("trace", []byte(`{}`))
	}
	if got := b.Dropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
}

func TestBroadcasterCloseIdempotent(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe()
	b.Close()
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed by Close")
	}
	cancel() // after Close: must not panic or double-close
	if ch2, _ := b.Subscribe(); func() bool { _, ok := <-ch2; return ok }() {
		t.Fatal("subscribe after close returned open channel")
	}
	b.Publish("trace", []byte(`{}`)) // inert
}

// TestBroadcasterChurnRace hammers the broadcaster from concurrent
// publishers (trace + span producers) while clients connect, read a little
// and disconnect mid-run. Run under -race this is the SSE thread-safety
// gate required by the span-layer test plan.
func TestBroadcasterChurnRace(t *testing.T) {
	b := NewBroadcaster()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf(`{"producer":%d}`, p))
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish("trace", payload)
				}
			}
		}(p)
	}

	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := b.Subscribe()
				for j := 0; j < 5; j++ {
					select {
					case _, ok := <-ch:
						if !ok {
							cancel()
							return
						}
					case <-time.After(10 * time.Millisecond):
					}
				}
				cancel()
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	b.Close()
}

func TestTracerBroadcastTee(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(&sink)
	b := NewBroadcaster()
	tr.SetBroadcast(b)
	ch, cancel := b.Subscribe()
	defer cancel()

	tr.Emit(Event{Step: 3, Phase: "solve", T: 1e-6})
	select {
	case frame := <-ch:
		s := string(frame)
		if !strings.HasPrefix(s, "event: trace\ndata: {") || !strings.Contains(s, `"phase":"solve"`) {
			t.Fatalf("unexpected frame %q", s)
		}
		if strings.Contains(strings.TrimSuffix(s, "\n\n"), "\n\n") {
			t.Fatalf("frame data spans lines: %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("no tee frame")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeObserverEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("masc_test_total", "test counter").Add(1)
	rec := span.NewRecorder(64)
	sp := rec.Start(0, span.Run, -1)
	child := rec.Start(sp.ID(), span.Step, 0)
	child.End()
	sp.End()
	b := NewBroadcaster()
	ob := &Observer{Reg: reg, Spans: rec, Events: b}

	srv, err := ServeObserver("127.0.0.1:0", ob)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	spans := get("/debug/spans")
	if !strings.Contains(spans, `"total":2`) || !strings.Contains(spans, `"kind":"run"`) {
		t.Fatalf("/debug/spans = %s", spans)
	}
	chrome := get("/debug/spans?format=chrome")
	if !strings.Contains(chrome, `"traceEvents"`) || !strings.Contains(chrome, `"name":"step"`) {
		t.Fatalf("chrome export = %s", chrome)
	}

	// /events: read the hello frame, then a published frame, then hang up.
	resp, err := http.Get("http://" + srv.Addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	readFrame := func() string {
		var sb strings.Builder
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("read frame: %v (so far %q)", err, sb.String())
			}
			sb.WriteString(line)
			if line == "\n" && sb.Len() > 1 {
				return sb.String()
			}
		}
	}
	// The stream opens with a comment block then the hello frame.
	hello := readFrame()
	if !strings.Contains(hello, "event: hello") {
		hello = readFrame()
	}
	if !strings.Contains(hello, "event: hello") {
		t.Fatalf("no hello frame, got %q", hello)
	}
	// Wait for the subscription to land before publishing.
	for i := 0; i < 100 && b.Clients() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	b.Publish("span", []byte(`{"id":9}`))
	if f := readFrame(); !strings.Contains(f, `data: {"id":9}`) {
		t.Fatalf("event frame %q", f)
	}
}
