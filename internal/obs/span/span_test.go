package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock yields deterministic, strictly increasing nanosecond stamps.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestSpanBasics(t *testing.T) {
	r := NewRecorder(16)
	r.SetClock(fakeClock(1000))

	run := r.Start(0, Run, -1)
	st := r.Start(run.ID(), Step, 3)
	st.Attr("newton", 4)
	st.End()
	run.End()

	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Push order: step ends first.
	if recs[0].Kind != Step || recs[1].Kind != Run {
		t.Fatalf("push order wrong: %v %v", recs[0].Kind, recs[1].Kind)
	}
	if recs[0].Parent != run.ID() {
		t.Fatalf("step parent = %d, want %d", recs[0].Parent, run.ID())
	}
	if recs[0].Step != 3 {
		t.Fatalf("step number = %d", recs[0].Step)
	}
	if got := recs[0].AttrList(); len(got) != 1 || got[0] != (Attr{"newton", 4}) {
		t.Fatalf("attrs = %v", got)
	}
	if recs[0].Dur() <= 0 || recs[1].Dur() <= 0 {
		t.Fatalf("non-positive durations: %d %d", recs[0].Dur(), recs[1].Dur())
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	r := NewRecorder(8)
	sp := r.Start(0, Fetch, 1)
	sp.End()
	sp.End() // deferred-End composition: second end must not push
	if n := r.Len(); n != 1 {
		t.Fatalf("Len = %d after double End, want 1", n)
	}
}

func TestRingOverflow(t *testing.T) {
	const capRecords = 8
	r := NewRecorder(capRecords)
	r.SetClock(fakeClock(1))
	for i := 0; i < 20; i++ {
		sp := r.Start(0, Solve, i)
		sp.End()
	}
	if got := r.Dropped(); got != 20-capRecords {
		t.Fatalf("dropped = %d, want %d", got, 20-capRecords)
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("total = %d, want 20", got)
	}
	recs := r.Snapshot()
	if len(recs) != capRecords {
		t.Fatalf("snapshot len = %d, want %d", len(recs), capRecords)
	}
	// Oldest are overwritten: retained steps are 12..19 in order.
	for i, rec := range recs {
		if want := int32(12 + i); rec.Step != want {
			t.Fatalf("snapshot[%d].Step = %d, want %d", i, rec.Step, want)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.SetClock(nil)
	r.SetSink(nil)
	r.SetScope(7)
	if r.Scope() != 0 || r.Now() != 0 || r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	sp := r.Start(0, Run, -1)
	if sp.ID() != 0 {
		t.Fatalf("nil-recorder span ID = %d", sp.ID())
	}
	sp.Attr("k", 1)
	sp.End()
	sp.EndAt(5)
}

func TestDisabledPathAllocs(t *testing.T) {
	var r *Recorder // disabled
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start(0, Step, 9)
		sp.Attr("bytes", 123)
		sp.End()
		r.SetScope(sp.ID())
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestEnabledPathAllocs(t *testing.T) {
	r := NewRecorder(1 << 10)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start(0, Step, 9)
		sp.Attr("bytes", 123)
		sp.Attr("newton", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled span path allocates %v per op, want 0", allocs)
	}
}

func TestScope(t *testing.T) {
	r := NewRecorder(8)
	if r.Scope() != 0 {
		t.Fatal("fresh scope nonzero")
	}
	r.SetScope(42)
	if r.Scope() != 42 {
		t.Fatalf("scope = %d", r.Scope())
	}
	r.SetScope(0)
	if r.Scope() != 0 {
		t.Fatal("scope not cleared")
	}
}

func TestSink(t *testing.T) {
	r := NewRecorder(8)
	var kinds []Kind
	r.SetSink(func(rec *Record) { kinds = append(kinds, rec.Kind) })
	a := r.Start(0, Put, 1)
	a.End()
	b := r.Start(0, Compress, 1)
	b.End()
	if len(kinds) != 2 || kinds[0] != Put || kinds[1] != Compress {
		t.Fatalf("sink saw %v", kinds)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	r := NewRecorder(8)
	sp := r.Start(0, Solve, 0)
	for i := 0; i < MaxAttrs+3; i++ {
		sp.Attr("k", int64(i))
	}
	sp.End()
	recs := r.Snapshot()
	if got := len(recs[0].AttrList()); got != MaxAttrs {
		t.Fatalf("attrs retained = %d, want %d", got, MaxAttrs)
	}
}

func TestJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(fakeClock(500))
	sp := r.Start(0, Demote, 12)
	sp.Attr("tier", 2)
	sp.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("invalid JSON %q: %v", lines[0], err)
	}
	if obj["kind"] != "demote" || obj["step"] != float64(12) {
		t.Fatalf("decoded %v", obj)
	}
	attrs, ok := obj["attrs"].(map[string]any)
	if !ok || attrs["tier"] != float64(2) {
		t.Fatalf("attrs decoded %v", obj["attrs"])
	}
}

// TestGoldenChromeTrace pins the exact Chrome trace-event export for a small
// causal tree: run → forward → {step0, step1} with a compress under step1,
// and a concurrent window overlapping step1 (forced onto its own lane).
func TestGoldenChromeTrace(t *testing.T) {
	recs := []Record{
		{ID: 1, Parent: 0, Kind: Run, Step: -1, Start: 0, End: 10_000},
		{ID: 2, Parent: 1, Kind: Forward, Step: -1, Start: 500, End: 6_000},
		{ID: 3, Parent: 2, Kind: Step, Step: 0, Start: 1_000, End: 2_000},
		{ID: 4, Parent: 2, Kind: Step, Step: 1, Start: 2_500, End: 4_500},
		{ID: 5, Parent: 4, Kind: Compress, Step: 0, Start: 3_000, End: 4_000,
			NAttr: 1, Attrs: [MaxAttrs]Attr{{Key: "bytes", Val: 256}}},
		{ID: 6, Parent: 1, Kind: Window, Step: -1, Start: 3_200, End: 7_000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"masc"}},
{"name":"run","cat":"masc","ph":"X","ts":0.000,"dur":10.000,"pid":1,"tid":1,"args":{"id":1,"parent":0,"step":-1}},
{"name":"forward","cat":"masc","ph":"X","ts":0.500,"dur":5.500,"pid":1,"tid":1,"args":{"id":2,"parent":1,"step":-1}},
{"name":"step","cat":"masc","ph":"X","ts":1.000,"dur":1.000,"pid":1,"tid":1,"args":{"id":3,"parent":2,"step":0}},
{"name":"step","cat":"masc","ph":"X","ts":2.500,"dur":2.000,"pid":1,"tid":1,"args":{"id":4,"parent":2,"step":1}},
{"name":"compress","cat":"masc","ph":"X","ts":3.000,"dur":1.000,"pid":1,"tid":1,"args":{"id":5,"parent":4,"step":0,"bytes":256}},
{"name":"window","cat":"masc","ph":"X","ts":3.200,"dur":3.800,"pid":1,"tid":2,"args":{"id":6,"parent":1,"step":-1}}
]}
`
	if got := buf.String(); got != want {
		t.Fatalf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The export must also be valid JSON.
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if evs := obj["traceEvents"].([]any); len(evs) != len(recs)+1 {
		t.Fatalf("traceEvents len = %d", len(evs))
	}
}

// TestChromeLaneReuse checks that a lane freed by a finished family is
// reused before a new lane is opened.
func TestChromeLaneReuse(t *testing.T) {
	recs := []Record{
		{ID: 1, Kind: Sweep, Start: 0, End: 100},              // lane 1
		{ID: 2, Kind: Sweep, Start: 50, End: 150},             // overlaps 1 → lane 2
		{ID: 3, Kind: Sweep, Start: 200, End: 300},            // both idle → lane 1
		{ID: 4, Parent: 3, Kind: Fetch, Start: 210, End: 220}, // nests in lane 1
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		TraceEvents []struct {
			Tid  int `json:"tid"`
			Args struct {
				ID int `json:"id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	tidOf := map[int]int{}
	for _, ev := range obj.TraceEvents[1:] {
		tidOf[ev.Args.ID] = ev.Tid
	}
	if tidOf[1] != 1 || tidOf[2] != 2 || tidOf[3] != 1 || tidOf[4] != 1 {
		t.Fatalf("lanes = %v", tidOf)
	}
}
