// Package span implements a causal span tree for the MASC pipeline: every
// phase of a run (forward step, jacobian put/compress, adjoint window/sweep,
// fetch, solve, tier decision, disk retry, …) records a Span with nanosecond
// start/end times, a parent link, and a handful of typed int64 attributes.
//
// The design follows the obs package's telemetry contract:
//
//   - nil-safe: a nil *Recorder turns Start/StartAt into a zero Span whose
//     methods are no-ops, so instrumented code needs no "is tracing on?"
//     branches;
//   - zero-alloc: a Span is a value type holding the Record being built; the
//     attribute array is fixed-size and keys are code-controlled constants,
//     so neither the enabled nor the disabled path touches the heap;
//   - bounded: finished spans land in a fixed-capacity ring buffer; when the
//     ring is full the oldest record is overwritten and a dropped counter is
//     bumped, so a long run can never exhaust memory through tracing.
//
// The wall clock is injectable (SetClock) so exports are golden-testable.
package span

import (
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one span. IDs are assigned from an atomic counter starting
// at 1; 0 means "no span" and is used as the root parent.
type ID uint64

// Kind classifies a span. The enum mirrors the causal tree of a MASC run:
// run → forward{step → put/compress} → adjoint{window → sweep →
// fetch/solve/param} → tier decision → disk retry, plus codec-level
// encode/decode underneath compress/decompress.
type Kind uint8

const (
	KindNone Kind = iota
	Run
	Forward
	DC
	Step
	Put
	Compress
	Decompress
	Adjoint
	Window
	Sweep
	Fetch
	Solve
	ParamEval
	ParamShard
	TierDecision
	Demote
	Promote
	Spill
	Recompute
	Quarantine
	Repair
	DiskRetry
	Encode
	Decode
	numKinds
)

var kindNames = [numKinds]string{
	KindNone:     "none",
	Run:          "run",
	Forward:      "forward",
	DC:           "dc",
	Step:         "step",
	Put:          "put",
	Compress:     "compress",
	Decompress:   "decompress",
	Adjoint:      "adjoint",
	Window:       "window",
	Sweep:        "sweep",
	Fetch:        "fetch",
	Solve:        "solve",
	ParamEval:    "param_eval",
	ParamShard:   "param_shard",
	TierDecision: "tier_decision",
	Demote:       "demote",
	Promote:      "promote",
	Spill:        "spill",
	Recompute:    "recompute",
	Quarantine:   "quarantine",
	Repair:       "repair",
	DiskRetry:    "disk_retry",
	Encode:       "encode",
	Decode:       "decode",
}

// String returns the snake_case name of the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// MaxAttrs is the fixed attribute capacity of a Record; Attr calls past it
// are silently dropped (span records must never allocate).
const MaxAttrs = 6

// Attr is one typed key/value attribute. Values are int64 only: byte
// counts, nanosecond durations, step numbers, tier enums, booleans as 0/1.
type Attr struct {
	Key string
	Val int64
}

// Record is one finished span as stored in the ring buffer.
type Record struct {
	ID     ID
	Parent ID
	Kind   Kind
	NAttr  uint8
	Step   int32 // pipeline step the span belongs to, -1 when not step-scoped
	Start  int64 // clock nanoseconds
	End    int64
	Attrs  [MaxAttrs]Attr
}

// AttrList returns the populated attributes.
func (r *Record) AttrList() []Attr { return r.Attrs[:r.NAttr] }

// Dur returns End-Start in nanoseconds.
func (r *Record) Dur() int64 { return r.End - r.Start }

// DefaultCapacity is the ring size used when NewRecorder is given cap <= 0:
// a scale-0.1 run emits a few thousand spans, so 16Ki keeps whole runs while
// bounding the recorder at a few MiB.
const DefaultCapacity = 1 << 14

// Recorder collects finished spans into a bounded ring buffer. All methods
// are safe for concurrent use and nil-safe.
type Recorder struct {
	now    func() int64
	nextID atomic.Uint64
	scope  atomic.Uint64

	mu      sync.Mutex
	ring    []Record
	total   uint64 // records ever pushed
	dropped uint64 // records overwritten before being read
	sink    func(*Record)
}

// NewRecorder returns a recorder with the given ring capacity
// (DefaultCapacity when cap <= 0), reading time.Now.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		now:  func() int64 { return time.Now().UnixNano() },
		ring: make([]Record, capacity),
	}
}

// SetClock replaces the nanosecond wall clock. Call before recording; tests
// use it to produce deterministic exports.
func (r *Recorder) SetClock(now func() int64) {
	if r == nil || now == nil {
		return
	}
	r.now = now
}

// SetSink installs a hook invoked (under the recorder mutex, in push order)
// for every finished span; the SSE broadcaster uses it to live-stream spans.
// The record pointer is only valid for the duration of the call. The sink
// must be fast and must not call back into the recorder.
func (r *Recorder) SetSink(fn func(*Record)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// Now returns the recorder's clock reading (0 when r is nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.now()
}

// SetScope publishes a dynamic parent scope (typically the current forward
// step span) that stores use to parent their put/compress spans. Only one
// goroutine — the forward loop — writes it; readers fall back to their fixed
// scope when it is 0.
func (r *Recorder) SetScope(id ID) {
	if r == nil {
		return
	}
	r.scope.Store(uint64(id))
}

// Scope returns the current dynamic parent scope (0 when unset or r nil).
func (r *Recorder) Scope() ID {
	if r == nil {
		return 0
	}
	return ID(r.scope.Load())
}

// Start opens a span under parent. step is the pipeline step (-1 when not
// applicable). A nil recorder returns an inert zero Span.
func (r *Recorder) Start(parent ID, kind Kind, step int) Span {
	if r == nil {
		return Span{}
	}
	return r.StartAt(parent, kind, step, r.now())
}

// StartAt is Start with an explicit start time, for spans whose duration was
// measured elsewhere (e.g. a fetch timed on the fetcher goroutine).
func (r *Recorder) StartAt(parent ID, kind Kind, step int, t0 int64) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, rec: Record{
		ID:     ID(r.nextID.Add(1)),
		Parent: parent,
		Kind:   kind,
		Step:   int32(step),
		Start:  t0,
	}}
}

// Span is a handle on an in-flight span. The zero value is inert: every
// method is a no-op and ID returns 0, so code instrumented against a
// disabled recorder costs a couple of predictable branches and no memory.
// A Span must be ended at most once and not copied after Attr/End.
type Span struct {
	r   *Recorder
	rec Record
}

// ID returns the span's ID (0 for an inert span), used to parent children.
func (s *Span) ID() ID { return s.rec.ID }

// Attr attaches a typed attribute. Calls beyond MaxAttrs are dropped.
func (s *Span) Attr(key string, v int64) {
	if s.r == nil || int(s.rec.NAttr) >= MaxAttrs {
		return
	}
	s.rec.Attrs[s.rec.NAttr] = Attr{Key: key, Val: v}
	s.rec.NAttr++
}

// End closes the span now and pushes it into the ring. Subsequent End calls
// are no-ops, so "defer sp.End()" composes with early explicit ends.
func (s *Span) End() {
	if s.r == nil {
		return
	}
	s.EndAt(s.r.now())
}

// EndAt is End with an explicit end time.
func (s *Span) EndAt(t1 int64) {
	if s.r == nil {
		return
	}
	s.rec.End = t1
	s.r.push(s.rec)
	s.r = nil
}

// push takes the record by value so an ending Span never escapes to the
// heap (the sink sees a pointer into the ring, which is heap-resident
// already); this is what keeps the enabled path at 0 allocs/op.
func (r *Recorder) push(rec Record) {
	r.mu.Lock()
	i := r.total % uint64(len(r.ring))
	if r.total >= uint64(len(r.ring)) {
		r.dropped++
	}
	r.ring[i] = rec
	r.total++
	if r.sink != nil {
		r.sink(&r.ring[i])
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records in push order (oldest first).
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := uint64(len(r.ring))
	if r.total > capacity {
		out := make([]Record, capacity)
		start := r.total % capacity
		n := copy(out, r.ring[start:])
		copy(out[n:], r.ring[:start])
		return out
	}
	return append([]Record(nil), r.ring[:r.total]...)
}

// Len returns the number of retained records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total > uint64(len(r.ring)) {
		return len(r.ring)
	}
	return int(r.total)
}

// Total returns the number of spans ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many records were overwritten before export.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
