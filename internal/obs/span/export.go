package span

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// AppendJSON appends one record as a single-line JSON object:
//
//	{"id":3,"parent":1,"kind":"step","step":12,"start_ns":100,"end_ns":250,
//	 "dur_ns":150,"attrs":{"newton":3}}
//
// The encoding is hand-built (keys are code-controlled identifiers, values
// are integers) so it is deterministic and allocation-light; the same bytes
// feed the JSONL export, /debug/spans, and the SSE "span" event.
func AppendJSON(dst []byte, r *Record) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, uint64(r.ID), 10)
	dst = append(dst, `,"parent":`...)
	dst = strconv.AppendUint(dst, uint64(r.Parent), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, r.Kind.String()...)
	dst = append(dst, `","step":`...)
	dst = strconv.AppendInt(dst, int64(r.Step), 10)
	dst = append(dst, `,"start_ns":`...)
	dst = strconv.AppendInt(dst, r.Start, 10)
	dst = append(dst, `,"end_ns":`...)
	dst = strconv.AppendInt(dst, r.End, 10)
	dst = append(dst, `,"dur_ns":`...)
	dst = strconv.AppendInt(dst, r.Dur(), 10)
	if r.NAttr > 0 {
		dst = append(dst, `,"attrs":{`...)
		for i, a := range r.AttrList() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '"')
			dst = append(dst, a.Key...)
			dst = append(dst, `":`...)
			dst = strconv.AppendInt(dst, a.Val, 10)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// WriteJSONL writes one JSON object per record, in the given order.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range recs {
		buf = AppendJSON(buf[:0], &recs[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes the records as Chrome trace-event JSON ("X"
// complete events, ts/dur in microseconds), loadable in Perfetto and
// chrome://tracing.
//
// Trace viewers infer nesting per thread lane (tid) from time containment,
// so records are assigned to lanes greedily such that every lane holds a
// laminar family: processing records sorted by (start asc, end desc), a
// record goes into its parent's lane only if the lane's innermost open span
// is exactly the parent, else into an idle lane, else into a new lane.
// Concurrent siblings (window sweeps, workers) therefore land on separate
// lanes while sequential children nest under their parent. The assignment
// is deterministic, which keeps the export golden-testable; the causal
// parent is also recorded in args for tools that read the data directly.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &recs[order[a]], &recs[order[b]]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		if ra.End != rb.End {
			return ra.End > rb.End
		}
		return ra.ID < rb.ID
	})

	var epoch int64
	if len(order) > 0 {
		epoch = recs[order[0]].Start
	}

	type open struct {
		id  ID
		end int64
	}
	var lanes [][]open
	laneOf := func(r *Record) int {
		for li := range lanes {
			st := lanes[li]
			for len(st) > 0 && st[len(st)-1].end <= r.Start {
				st = st[:len(st)-1]
			}
			lanes[li] = st
		}
		for li, st := range lanes {
			if len(st) > 0 && st[len(st)-1].id == r.Parent {
				return li
			}
		}
		for li, st := range lanes {
			if len(st) == 0 {
				return li
			}
		}
		lanes = append(lanes, nil)
		return len(lanes) - 1
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[` + "\n" +
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"masc"}}`); err != nil {
		return err
	}
	var buf []byte
	for _, idx := range order {
		r := &recs[idx]
		li := laneOf(r)
		lanes[li] = append(lanes[li], open{id: r.ID, end: r.End})

		buf = append(buf[:0], ",\n"...)
		buf = append(buf, `{"name":"`...)
		buf = append(buf, r.Kind.String()...)
		buf = append(buf, `","cat":"masc","ph":"X","ts":`...)
		buf = appendMicros(buf, r.Start-epoch)
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, r.Dur())
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(li+1), 10)
		buf = append(buf, `,"args":{"id":`...)
		buf = strconv.AppendUint(buf, uint64(r.ID), 10)
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendUint(buf, uint64(r.Parent), 10)
		buf = append(buf, `,"step":`...)
		buf = strconv.AppendInt(buf, int64(r.Step), 10)
		for _, a := range r.AttrList() {
			buf = append(buf, `,"`...)
			buf = append(buf, a.Key...)
			buf = append(buf, `":`...)
			buf = strconv.AppendInt(buf, a.Val, 10)
		}
		buf = append(buf, `}}`...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendMicros formats ns as microseconds with millisecond-of-a-microsecond
// precision (three decimals), the unit Chrome trace events use.
func appendMicros(dst []byte, ns int64) []byte {
	neg := ns < 0
	if neg {
		ns = -ns
		dst = append(dst, '-')
	}
	dst = strconv.AppendInt(dst, ns/1000, 10)
	frac := ns % 1000
	dst = append(dst, '.')
	dst = append(dst, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return dst
}
