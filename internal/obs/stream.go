package obs

import (
	"io"
	"net/http"
	"sync"
)

// Broadcaster fans pre-formatted Server-Sent-Events frames out to any
// number of HTTP clients. It is the live side of the telemetry layer: the
// Tracer tees each JSONL line into it as an "event: trace" frame and the
// span recorder's sink publishes "event: span" frames, so `curl -N /events`
// follows a run in real time (the masc-serve progress-stream schema).
//
// Delivery is best-effort by design: Publish never blocks the pipeline.
// Each client has a bounded buffer; when a client falls behind, frames are
// dropped for that client (counted in Dropped) rather than stalling the
// run. A nil Broadcaster ignores every call, and Publish with no clients
// connected returns without allocating, so always-on instrumentation is
// free until somebody is actually listening.
type Broadcaster struct {
	mu      sync.Mutex
	clients map[chan []byte]struct{}
	closed  bool
	dropped uint64
}

// clientBuf is the per-client frame buffer; a burst larger than this drops
// frames for that client only.
const clientBuf = 256

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{clients: make(map[chan []byte]struct{})}
}

// Publish sends one SSE frame ("event: <event>\ndata: <data>\n\n") to every
// connected client. data must be a single line (the JSON encodings used by
// the tracer and span recorder are). The frame is built once and shared;
// clients must treat received slices as read-only.
func (b *Broadcaster) Publish(event string, data []byte) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed || len(b.clients) == 0 {
		b.mu.Unlock()
		return
	}
	frame := make([]byte, 0, len(event)+len(data)+16)
	frame = append(frame, "event: "...)
	frame = append(frame, event...)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	for ch := range b.clients {
		select {
		case ch <- frame:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a client and returns its frame channel plus a cancel
// function. The channel is closed by cancel or by Close. Subscribing to a
// closed (or nil) broadcaster yields an already-closed channel.
func (b *Broadcaster) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, clientBuf)
	if b == nil {
		close(ch)
		return ch, func() {}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	b.clients[ch] = struct{}{}
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.clients[ch]; ok {
			delete(b.clients, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// Dropped returns how many frames were discarded for slow clients.
func (b *Broadcaster) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Clients returns the number of connected clients.
func (b *Broadcaster) Clients() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Close disconnects every client and makes further Publish/Subscribe calls
// inert. It is idempotent.
func (b *Broadcaster) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.clients {
		close(ch)
	}
	b.clients = make(map[chan []byte]struct{})
}

// ServeHTTP implements the /events SSE endpoint. It greets each client
// with a hello frame (so probes get bytes even on an idle run), then
// streams frames until the client disconnects or the broadcaster closes.
func (b *Broadcaster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, ": masc event stream\n\nevent: hello\ndata: {\"stream\":\"masc\",\"events\":[\"trace\",\"span\"]}\n\n")
	fl.Flush()
	if b == nil {
		return
	}
	ch, cancel := b.Subscribe()
	defer cancel()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
