package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// Provenance identifies the build and runtime that produced a manifest, so
// baselines recorded on one machine can be compared honestly against runs
// from another: a bench regression means little without knowing the commit,
// toolchain, core count and GC behavior behind each side.
type Provenance struct {
	GitCommit  string `json:"git_commit,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Runtime snapshot (refreshed when the manifest is written, so the
	// numbers reflect the run, not process startup).
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseTotalSec   float64 `json:"gc_pause_total_sec"`
	GCCPUSec          float64 `json:"gc_cpu_sec"`
	HeapObjectBytes   uint64  `json:"heap_object_bytes"`
	RuntimeTotalBytes uint64  `json:"runtime_total_bytes"`
}

// CollectProvenance gathers build identity (via debug.ReadBuildInfo's
// embedded VCS stamps — no git exec) plus a runtime/metrics snapshot.
func CollectProvenance() Provenance {
	p := Provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitCommit = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
	}
	p.refreshRuntime()
	return p
}

// refreshRuntime re-reads the GC/heap counters.
func (p *Provenance) refreshRuntime() {
	samples := []metrics.Sample{
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		p.GCCycles = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindFloat64 {
		p.GCCPUSec = samples[1].Value.Float64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		p.HeapObjectBytes = samples[2].Value.Uint64()
	}
	if samples[3].Value.Kind() == metrics.KindUint64 {
		p.RuntimeTotalBytes = samples[3].Value.Uint64()
	}
	// Total STW pause time comes from MemStats; runtime/metrics exposes
	// pauses only as a distribution.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.GCPauseTotalSec = float64(ms.PauseTotalNs) / 1e9
}
