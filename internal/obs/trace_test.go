package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTracerEmitsOrderedJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Step: 0, Phase: "dc", T: 0, Dur: 5 * time.Microsecond, Key: "iters", N: 6})
	tr.Emit(Event{Step: 1, Phase: "solve", T: 1e-6})
	tr.Emit(Event{Step: 1, Phase: "put", Key: "queue", N: 2})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	type rec struct {
		Seq    int64   `json:"seq"`
		WallUs float64 `json:"wall_us"`
		Step   int     `json:"step"`
		Phase  string  `json:"phase"`
		T      float64 `json:"t"`
		DurUs  float64 `json:"dur_us"`
		Iters  int64   `json:"iters"`
		Queue  int64   `json:"queue"`
	}
	var recs []rec
	lastWall := -1.0
	for i, ln := range lines {
		var r rec
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		if r.Seq != int64(i+1) {
			t.Fatalf("line %d: seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.WallUs < lastWall {
			t.Fatalf("wall clock went backwards: %v after %v", r.WallUs, lastWall)
		}
		lastWall = r.WallUs
		recs = append(recs, r)
	}
	if recs[0].Phase != "dc" || recs[0].Iters != 6 || recs[0].DurUs <= 0 {
		t.Fatalf("dc record wrong: %+v", recs[0])
	}
	if recs[1].Phase != "solve" || recs[1].T != 1e-6 {
		t.Fatalf("solve record wrong: %+v", recs[1])
	}
	if recs[2].Queue != 2 {
		t.Fatalf("put record wrong: %+v", recs[2])
	}
}

func TestTracerConcurrentSeq(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{Step: i, Phase: "solve"})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != workers*per {
		t.Fatalf("got %d lines, want %d", len(lines), workers*per)
	}
	// Seq must be a permutation-free 1..N sequence in file order: the lock
	// assigns it and writes the line in the same critical section.
	for i, ln := range lines {
		var r struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Seq != int64(i+1) {
			t.Fatalf("line %d has seq %d", i, r.Seq)
		}
	}
}

func TestOpenTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{Step: 3, Phase: "fetch", Key: "bytes", N: 64})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(b), &r); err != nil {
		t.Fatalf("file is not JSONL: %v\n%s", err, b)
	}
	if r["phase"] != "fetch" || r["bytes"] != 64.0 {
		t.Fatalf("record = %v", r)
	}
}

// TestDisabledPathZeroAlloc is the "near-zero overhead when disabled"
// acceptance check: with telemetry off every hook must be a nil-receiver
// no-op that allocates nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var (
		tr *Tracer
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
	)
	ev := Event{Step: 7, Phase: "solve", T: 1e-6, Dur: time.Microsecond, Key: "iters", N: 3}
	if n := testing.AllocsPerRun(100, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("nil Tracer.Emit allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		c.AddDuration(time.Millisecond)
		g.Set(1)
		g.SetMax(2)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("nil handles allocate %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = r.Counter("x_total", "")
		_ = r.Gauge("y", "")
	}); n != 0 {
		t.Fatalf("nil Registry lookups allocate %v/op", n)
	}
}

// TestEnabledEmitSteadyStateAlloc pins the hot-path allocation budget of an
// active tracer: after warm-up the append buffer is reused, so Emit itself
// is allocation-free (the bufio flush only allocates on the first fill).
func TestEnabledEmitSteadyStateAlloc(t *testing.T) {
	tr := NewTracer(&countingWriter{})
	ev := Event{Step: 7, Phase: "solve", T: 1e-6, Dur: time.Microsecond, Key: "iters", N: 3}
	tr.Emit(ev) // warm the buffer
	if n := testing.AllocsPerRun(200, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("steady-state Emit allocates %v/op", n)
	}
}

// countingWriter swallows writes without retaining them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
