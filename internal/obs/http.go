package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"masc/internal/obs/span"
)

// Server is the telemetry HTTP endpoint: /metrics (Prometheus text),
// /debug/vars (expvar JSON), /debug/pprof (profiling) and — when served
// from a full Observer — /events (SSE live stream) and /debug/spans
// (span-tree JSON, ?format=chrome for a Chrome trace-event document).
type Server struct {
	// Addr is the bound address (useful with ":0" listen specs).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// registry's telemetry endpoints in a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeObserver(addr, &Observer{Reg: reg})
}

// ServeObserver is Serve for a full Observer: in addition to the registry
// endpoints it exposes the observer's span recorder on /debug/spans and its
// event broadcaster on /events when those are present.
func ServeObserver(addr string, ob *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	reg := ob.Registry()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/spans", SpansHandler(ob.SpanRecorder()))
	mux.Handle("/events", ob.Broadcaster())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "masc telemetry: /metrics /debug/vars /debug/pprof /debug/spans /events\n")
	})
	reg.PublishExpvar("masc_metrics")
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// MetricsHandler returns the Prometheus text-format handler for reg.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(reg.WritePrometheus(nil))
	})
}

// SpansHandler serves the recorder's retained spans. The default response
// is {"total":N,"dropped":N,"spans":[…]} with one object per span (the
// JSONL record schema); ?format=chrome returns a Chrome trace-event
// document loadable in Perfetto.
func SpansHandler(rec *span.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := rec.Snapshot()
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = span.WriteChromeTrace(w, recs)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		buf := make([]byte, 0, 256+128*len(recs))
		buf = append(buf, `{"total":`...)
		buf = strconv.AppendUint(buf, rec.Total(), 10)
		buf = append(buf, `,"dropped":`...)
		buf = strconv.AppendUint(buf, rec.Dropped(), 10)
		buf = append(buf, `,"spans":[`...)
		for i := range recs {
			if i > 0 {
				buf = append(buf, ',', '\n')
			}
			buf = span.AppendJSON(buf, &recs[i])
		}
		buf = append(buf, `]}`...)
		buf = append(buf, '\n')
		w.Write(buf)
	})
}
