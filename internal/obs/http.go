package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the telemetry HTTP endpoint: /metrics (Prometheus text),
// /debug/vars (expvar JSON) and /debug/pprof (profiling).
type Server struct {
	// Addr is the bound address (useful with ":0" listen specs).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// registry's telemetry endpoints in a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "masc telemetry: /metrics /debug/vars /debug/pprof\n")
	})
	reg.PublishExpvar("masc_metrics")
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// MetricsHandler returns the Prometheus text-format handler for reg.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(reg.WritePrometheus(nil))
	})
}
