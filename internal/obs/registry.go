package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Registry holds named metric families and hands out handles to their
// member time series. All methods are safe for concurrent use; the handed
// out Counter/Gauge/Histogram handles are lock-free on the hot path.
//
// Metric names follow the Prometheus convention (snake_case, unit-suffixed,
// `_total` for counters). Labels are passed as alternating key, value
// strings; requesting the same (name, labels) pair twice returns the same
// handle.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fam: map[string]*family{}} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name with its help text and label-keyed series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram
	order  []string       // label signatures in creation order
}

// labelSig renders alternating key, value pairs as a stable Prometheus
// label block ("" for none). Keys keep caller order: instrumented code
// passes them consistently, and creation order is what the text format
// preserves anyway.
func labelSig(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series registered under (name, labels), creating it
// with mk on first use. A nil registry returns the zero handle.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, mk func() any) any {
	if r == nil {
		return nil
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]any{}}
		r.fam[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = mk()
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter registered under name and the optional
// alternating key, value label pairs, creating it on first use. Counters
// are monotonically non-decreasing. A nil registry returns a nil handle
// whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func() any { return &Counter{} })
	if s == nil {
		return nil
	}
	return s.(*Counter)
}

// Gauge returns the gauge registered under name/labels, creating it on
// first use. A nil registry returns a nil handle.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func() any { return &Gauge{} })
	if s == nil {
		return nil
	}
	return s.(*Gauge)
}

// Histogram returns the histogram registered under name/labels with the
// given bucket upper bounds (ascending; a trailing +Inf bucket is implied),
// creating it on first use. A nil registry returns a nil handle.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func() any { return newHistogram(buckets) })
	if s == nil {
		return nil
	}
	return s.(*Histogram)
}

// atomicFloat is a lock-free float64 cell.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically non-decreasing metric. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct{ v atomicFloat }

// Add increases the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.v.add(v)
}

// Inc increases the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration adds d expressed in seconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current value (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge is a no-op.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// SetMax raises the gauge to v when v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.v.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families sorted by name, series in creation
// order.
func (r *Registry) WritePrometheus(b []byte) []byte {
	if r == nil {
		return b
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fam))
	for n := range r.fam {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fam[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, f.name...)
			b = append(b, ' ')
			b = append(b, f.help...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind.String()...)
		b = append(b, '\n')
		for _, sig := range f.order {
			switch m := f.series[sig].(type) {
			case *Counter:
				b = appendSample(b, f.name, sig, m.Value())
			case *Gauge:
				b = appendSample(b, f.name, sig, m.Value())
			case *Histogram:
				b = m.writePrometheus(b, f.name, sig)
			}
		}
	}
	return b
}

// appendSample writes one "name{labels} value" line.
func appendSample(b []byte, name, sig string, v float64) []byte {
	b = append(b, name...)
	b = append(b, sig...)
	b = append(b, ' ')
	b = appendFloat(b, v)
	return append(b, '\n')
}

// appendFloat formats v the way Prometheus expects (shortest round-trip
// representation; +Inf/-Inf/NaN spelled out).
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Snapshot returns a point-in-time copy of every series as nested maps:
// family name -> label signature ("" for none) -> value. Histograms map to
// {"count": n, "sum": s, "buckets": {le: cumulative}}. The result is used
// by the expvar export and may be embedded in run manifests.
func (r *Registry) Snapshot() map[string]map[string]any {
	if r == nil {
		return nil
	}
	out := map[string]map[string]any{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.fam {
		sm := map[string]any{}
		for sig, s := range f.series {
			switch m := s.(type) {
			case *Counter:
				sm[sig] = m.Value()
			case *Gauge:
				sm[sig] = m.Value()
			case *Histogram:
				sm[sig] = m.snapshot()
			}
		}
		out[name] = sm
	}
	return out
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (shown on /debug/vars). Publishing the same name twice is a no-op
// rather than the panic expvar.Publish would raise, so tests and repeated
// Serve calls stay safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
