package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer must expose nil sinks")
	}
	o2 := &Observer{}
	if o2.Registry() != nil || o2.Tracer() != nil {
		t.Fatal("empty observer must expose nil sinks")
	}
	o3 := &Observer{Reg: NewRegistry()}
	if o3.Registry() == nil {
		t.Fatal("observer dropped its registry")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Test counter.").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "test_requests_total 5") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	resp.Body.Close()

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["masc_metrics"]; !ok {
		t.Fatal("/debug/vars missing masc_metrics")
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("root help = %d: %s", code, body)
	}
}

func TestManifestWrite(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("steps_total", "").Add(42)

	path := filepath.Join(t.TempDir(), "run.json")
	man := NewManifest("masc-test")
	man.Set("storage", "masc").Set("workers", 4)
	man.Section("tensor", map[string]int64{"RawBytes": 1000, "StoredBytes": 250})
	man.AttachMetrics(reg)
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tool     string         `json:"tool"`
		Config   map[string]any `json:"config"`
		Sections map[string]any `json:"sections"`
		Metrics  map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if doc.Tool != "masc-test" {
		t.Fatalf("tool = %q", doc.Tool)
	}
	if doc.Config["storage"] != "masc" || doc.Config["workers"] != 4.0 {
		t.Fatalf("config = %v", doc.Config)
	}
	tensor := doc.Sections["tensor"].(map[string]any)
	if tensor["RawBytes"] != 1000.0 || tensor["StoredBytes"] != 250.0 {
		t.Fatalf("tensor section = %v", tensor)
	}
	if doc.Metrics["steps_total"].(map[string]any)[""] != 42.0 {
		t.Fatalf("metrics snapshot = %v", doc.Metrics)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	if err := WriteJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int
	if err := json.Unmarshal(b, &m); err != nil || m["a"] != 1 {
		t.Fatalf("bad stats file: %v %v", err, m)
	}
}

func TestReadManifestRejectsTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	man := NewManifest("masc-test")
	man.Set("storage", "masc")
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil || got.Tool != "masc-test" {
		t.Fatalf("round-trip: %v, %+v", err, got)
	}
	// The atomic writer must leave no temp files behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("manifest dir has %d entries, want 1", len(ents))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn manifest — cut anywhere strictly inside the document — must be
	// rejected, not decoded into zeroed stats.
	for _, cut := range []int{1, len(raw) / 4, len(raw) / 2, len(raw) - 3} {
		torn := filepath.Join(dir, "torn.json")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(torn); err == nil {
			t.Fatalf("torn manifest (cut %d) accepted", cut)
		}
	}
	// So must trailing garbage after the document.
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, append(append([]byte(nil), raw...), []byte("{}")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(junk); err == nil {
		t.Fatal("manifest with trailing garbage accepted")
	}
}
