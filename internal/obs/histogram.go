package obs

import (
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: bucket i counts observations <= bounds[i], with an implicit +Inf
// bucket holding everything else. Observe is lock-free. A nil Histogram is
// a no-op.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are small (≤ ~20) and the scan beats a
	// binary search at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// writePrometheus renders the cumulative _bucket/_sum/_count series.
func (h *Histogram) writePrometheus(b []byte, name, sig string) []byte {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLE(b, sig, h.boundLabel(i))
		b = append(b, ' ')
		b = appendFloat(b, float64(cum))
		b = append(b, '\n')
	}
	b = appendSample(b, name+"_sum", sig, h.Sum())
	b = appendSample(b, name+"_count", sig, float64(h.Count()))
	return b
}

// boundLabel returns the le label value of bucket i.
func (h *Histogram) boundLabel(i int) string {
	if i == len(h.bounds) {
		return "+Inf"
	}
	return string(appendFloat(nil, h.bounds[i]))
}

// appendLE merges the le="..." label into an existing label signature.
func appendLE(b []byte, sig, le string) []byte {
	if sig == "" {
		b = append(b, `{le="`...)
		b = append(b, le...)
		return append(b, `"}`...)
	}
	// sig is "{...}": splice before the closing brace.
	b = append(b, sig[:len(sig)-1]...)
	b = append(b, `,le="`...)
	b = append(b, le...)
	return append(b, `"}`...)
}

// snapshot returns the histogram state for Registry.Snapshot.
func (h *Histogram) snapshot() map[string]any {
	buckets := map[string]uint64{}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		buckets[h.boundLabel(i)] = cum
	}
	return map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
}

// TimingBuckets is the default bucket ladder for phase durations in
// seconds: 1µs … ~34s in powers of 4.
func TimingBuckets() []float64 {
	out := make([]float64, 0, 13)
	for v := 1e-6; v < 40; v *= 4 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets is the default bucket ladder for byte sizes: 64 B … 64 MB in
// powers of 4.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 11)
	for v := 64.0; v <= 64<<20; v *= 4 {
		out = append(out, v)
	}
	return out
}
