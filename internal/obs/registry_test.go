package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Requests.")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("reqs_total", "Requests."); again != c {
		t.Fatal("same (name, labels) must return the same handle")
	}

	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %v, want 9", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "Ops.", "kind", "a")
	b := r.Counter("ops_total", "Ops.", "kind", "b")
	if a == b {
		t.Fatal("different label values must be different series")
	}
	a.Add(1)
	b.Add(2)
	if a.Value() != 1 || b.Value() != 2 {
		t.Fatalf("series bled into each other: %v, %v", a.Value(), b.Value())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", TimingBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All no-ops, no panics:
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if out := r.WritePrometheus(nil); out != nil {
		t.Fatalf("nil registry rendered %q", out)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering one name under two kinds")
		}
	}()
	r.Gauge("m_total", "")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix of same-series and per-worker-series traffic, plus
			// concurrent renders, to drive the race detector through every
			// path.
			c := r.Counter("shared_total", "x")
			h := r.Histogram("lat", "x", TimingBuckets())
			own := r.Gauge("worker", "x", "id", string(rune('a'+w)))
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				own.Set(float64(i))
				if i%100 == 0 {
					_ = r.WritePrometheus(nil)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "x").Value(); got != workers*iters {
		t.Fatalf("shared counter = %v, want %v", got, workers*iters)
	}
	if got := r.Histogram("lat", "x", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %v, want %v", got, workers*iters)
	}
}

// TestPrometheusGolden pins the exact text exposition output: HELP/TYPE
// ordering, family name sort, series creation order, label rendering, and
// the cumulative histogram encoding.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b_gauge", "A gauge.").Set(2.5)
	c := r.Counter("a_total", "A counter.", "kind", "x")
	c.Add(3)
	r.Counter("a_total", "A counter.", "kind", "y").Add(1)
	h := r.Histogram("c_hist", "A histogram.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	want := strings.Join([]string{
		`# HELP a_total A counter.`,
		`# TYPE a_total counter`,
		`a_total{kind="x"} 3`,
		`a_total{kind="y"} 1`,
		`# HELP b_gauge A gauge.`,
		`# TYPE b_gauge gauge`,
		`b_gauge 2.5`,
		`# HELP c_hist A histogram.`,
		`# TYPE c_hist histogram`,
		`c_hist_bucket{le="1"} 1`,
		`c_hist_bucket{le="10"} 2`,
		`c_hist_bucket{le="+Inf"} 3`,
		`c_hist_sum 105.5`,
		`c_hist_count 3`,
		``,
	}, "\n")
	if got := string(r.WritePrometheus(nil)); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz", "", []float64{4}, "store", "mem")
	h.Observe(2)
	got := string(r.WritePrometheus(nil))
	for _, line := range []string{
		`sz_bucket{store="mem",le="4"} 1`,
		`sz_bucket{store="mem",le="+Inf"} 1`,
		`sz_sum{store="mem"} 2`,
		`sz_count{store="mem"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("output missing %q:\n%s", line, got)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "path", "a\"b\\c\nd").Inc()
	got := string(r.WritePrometheus(nil))
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(got, want+"\n") {
		t.Fatalf("escaped label missing %q:\n%s", want, got)
	}
}

func TestAppendFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	}
	for v, want := range cases {
		if got := string(appendFloat(nil, v)); got != want {
			t.Fatalf("appendFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := string(appendFloat(nil, math.NaN())); got != "NaN" {
		t.Fatalf("appendFloat(NaN) = %q", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "", "k", "v").Set(7)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	snap := r.Snapshot()
	if got := snap["c_total"][""]; got != 2.0 {
		t.Fatalf("snapshot counter = %v", got)
	}
	if got := snap["g"][`{k="v"}`]; got != 7.0 {
		t.Fatalf("snapshot gauge = %v", got)
	}
	hs := snap["h"][""].(map[string]any)
	if hs["count"] != uint64(2) || hs["sum"] != 3.5 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	buckets := hs["buckets"].(map[string]uint64)
	if buckets["1"] != 1 || buckets["+Inf"] != 2 {
		t.Fatalf("snapshot buckets = %+v", buckets)
	}
}
