package obs

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Event is one structured trace record. Step is the timestep the event
// belongs to (-1 when not step-scoped), Phase names the pipeline phase
// ("solve", "put", "compress", "fetch", "adjoint_solve", …), T is the
// simulation time in seconds when known, Dur the phase duration, and
// Key/N an optional extra integer field (Newton iterations, queue depth,
// byte counts) emitted as "Key": N.
type Event struct {
	Step  int
	Phase string
	T     float64
	Dur   time.Duration
	Key   string
	N     int64
}

// Tracer streams Events as JSON Lines: one object per event, in emission
// order, with a monotonically increasing "seq" field assigned under the
// tracer's lock. A nil Tracer ignores Emit with zero allocations, so
// instrumented code calls it unconditionally.
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	bc    *Broadcaster
	start time.Time
	seq   int64
	buf   []byte
	err   error
}

// NewTracer wraps w; if w is also an io.Closer, Close closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriterSize(w, 1<<16), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// OpenTrace creates (truncating) the JSONL trace file at path.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Emit appends one event. It is safe for concurrent use; a nil tracer
// returns immediately without allocating.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"wall_us":`...)
	b = strconv.AppendFloat(b, float64(time.Since(t.start))/1e3, 'f', 1, 64)
	b = append(b, `,"step":`...)
	b = strconv.AppendInt(b, int64(ev.Step), 10)
	b = append(b, `,"phase":"`...)
	b = append(b, ev.Phase...) // phases are code-controlled identifiers
	b = append(b, '"')
	b = append(b, `,"t":`...)
	b = strconv.AppendFloat(b, ev.T, 'g', -1, 64)
	if ev.Dur > 0 {
		b = append(b, `,"dur_us":`...)
		b = strconv.AppendFloat(b, float64(ev.Dur)/1e3, 'f', 1, 64)
	}
	if ev.Key != "" {
		b = append(b, ',', '"')
		b = append(b, ev.Key...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, ev.N, 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
	}
	if t.bc != nil {
		t.bc.Publish("trace", b[:len(b)-1]) // strip the newline; Publish copies
	}
}

// SetBroadcast tees every emitted line into b as an SSE "trace" event
// (nil detaches). Safe to call concurrently with Emit.
func (t *Tracer) SetBroadcast(b *Broadcaster) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.bc = b
	t.mu.Unlock()
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush pushes buffered events to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes and closes the underlying file (when the tracer owns one).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		if cerr := t.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		t.c = nil
	}
	return err
}
