package tiersched

import (
	"testing"
	"time"
)

func TestFakeClockDeterministic(t *testing.T) {
	a := NewFakeClock(time.Millisecond)
	b := NewFakeClock(time.Millisecond)
	for i := 0; i < 10; i++ {
		if !a.Now().Equal(b.Now()) {
			t.Fatalf("clocks diverged at call %d", i)
		}
	}
	start := a.Now()
	if d := a.Now().Sub(start); d != time.Millisecond {
		t.Fatalf("tick = %v, want 1ms", d)
	}
	a.Advance(time.Second)
	if d := a.Now().Sub(start); d != time.Second+2*time.Millisecond {
		t.Fatalf("advance: got %v", d)
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{Hot: "hot", Compressed: "compressed", Disk: "disk", Dropped: "dropped"}
	for tier, s := range want {
		if tier.String() != s {
			t.Fatalf("Tier(%d).String() = %q, want %q", tier, tier.String(), s)
		}
	}
	if Tier(99).String() != "unknown" {
		t.Fatalf("unknown tier string: %q", Tier(99).String())
	}
}

func TestModelRates(t *testing.T) {
	m := NewModel(NewFakeClock(time.Microsecond))
	m.ObserveCompress(1000, time.Millisecond)
	m.ObserveCompress(1000, 3*time.Millisecond)
	snap := m.Snapshot()
	// 4ms over 2000 bytes = 2µs/byte.
	if got, want := snap.CompressSecPerByte, 2e-6; !close(got, want) {
		t.Fatalf("compress rate = %g, want %g", got, want)
	}
	if snap.CompressSamples != 2 {
		t.Fatalf("samples = %d", snap.CompressSamples)
	}
	if snap.DecompressSecPerByte != 0 || snap.RecomputeSecPerStep != 0 {
		t.Fatalf("unmeasured rates should be zero: %+v", snap)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12+1e-9*b
}

func TestFetchCost(t *testing.T) {
	m := NewModel(nil)
	m.ObserveDecompress(1000, time.Millisecond)  // 1µs/byte
	m.ObserveDiskWrite(1000, 2*time.Millisecond) // 2µs/byte
	m.ObserveRecompute(5 * time.Millisecond)

	if c := m.FetchCost(Hot, 100, 800); c != 0 {
		t.Fatalf("hot fetch cost = %v", c)
	}
	if c := m.FetchCost(Compressed, 100, 800); !durClose(c, 800*time.Microsecond) {
		t.Fatalf("compressed fetch cost = %v", c)
	}
	// Disk with no read samples falls back to the write rate:
	// 100B·2µs + 800B·1µs = 1000µs.
	if c := m.FetchCost(Disk, 100, 800); !durClose(c, 1000*time.Microsecond) {
		t.Fatalf("disk fetch cost = %v", c)
	}
	if c := m.FetchCost(Dropped, 100, 800); !durClose(c, 5*time.Millisecond) {
		t.Fatalf("dropped fetch cost = %v", c)
	}
	// A read sample replaces the write-rate fallback.
	m.ObserveDiskRead(1000, 10*time.Millisecond) // 10µs/byte
	if c := m.FetchCost(Disk, 100, 800); !durClose(c, 1800*time.Microsecond) {
		t.Fatalf("disk fetch cost after read sample = %v", c)
	}
}

func durClose(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= b/1000+time.Nanosecond
}

// TestSpillTargetDecisions locks down the demotion decision table: the
// conservative default is Disk, the model flips to Dropped only when a
// measured recomputation is cheaper than the measured spill round-trip, and
// losing the spill device forces Dropped regardless.
func TestSpillTargetDecisions(t *testing.T) {
	m := NewModel(nil)
	if got := m.SpillTarget(100, 800, true); got != Disk {
		t.Fatalf("unmeasured model: %v, want disk", got)
	}
	if got := m.SpillTarget(100, 800, false); got != Dropped {
		t.Fatalf("no disk: %v, want dropped", got)
	}

	// Disk round-trip: write+read 100B at 2µs/byte each = 400µs, decompress
	// 800B at 1µs/byte = 800µs → 1200µs total.
	m.ObserveDiskWrite(1000, 2*time.Millisecond)
	m.ObserveDiskRead(1000, 2*time.Millisecond)
	m.ObserveDecompress(1000, time.Millisecond)

	m.ObserveRecompute(5 * time.Millisecond) // 5000µs > 1200µs → keep disk
	if got := m.SpillTarget(100, 800, true); got != Disk {
		t.Fatalf("expensive recompute: %v, want disk", got)
	}

	cheap := NewModel(nil)
	cheap.ObserveDiskWrite(1000, 2*time.Millisecond)
	cheap.ObserveDiskRead(1000, 2*time.Millisecond)
	cheap.ObserveDecompress(1000, time.Millisecond)
	cheap.ObserveRecompute(100 * time.Microsecond) // 100µs < 1200µs → drop
	if got := cheap.SpillTarget(100, 800, true); got != Dropped {
		t.Fatalf("cheap recompute: %v, want dropped", got)
	}
}

// TestDecisionsReproducible drives two models through the same sequence of
// injected-clock measurements and asserts they reach identical decisions —
// the acceptance criterion that cost-model choices are deterministic under
// the injected clock.
func TestDecisionsReproducible(t *testing.T) {
	build := func() *Model {
		clk := NewFakeClock(50 * time.Microsecond)
		m := NewModel(clk)
		for i := 0; i < 8; i++ {
			t0 := m.Now()
			m.ObserveCompress(4096, m.Now().Sub(t0))
			t0 = m.Now()
			m.ObserveDecompress(4096, m.Now().Sub(t0))
			t0 = m.Now()
			m.ObserveDiskWrite(512, m.Now().Sub(t0))
			m.ObserveRecompute(m.Now().Sub(t0))
		}
		return m
	}
	a, b := build(), build()
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots diverged:\n%+v\n%+v", a.Snapshot(), b.Snapshot())
	}
	for _, blob := range []int{64, 512, 4096} {
		for _, diskOK := range []bool{true, false} {
			if ga, gb := a.SpillTarget(blob, 8*blob, diskOK), b.SpillTarget(blob, 8*blob, diskOK); ga != gb {
				t.Fatalf("SpillTarget(%d, %v) diverged: %v vs %v", blob, diskOK, ga, gb)
			}
		}
		for tier := Hot; tier <= Dropped; tier++ {
			if ca, cb := a.FetchCost(tier, blob, 8*blob), b.FetchCost(tier, blob, 8*blob); ca != cb {
				t.Fatalf("FetchCost(%v, %d) diverged: %v vs %v", tier, blob, ca, cb)
			}
		}
	}
}
