// Package tiersched is the schedule/cost-model layer of the tiered Jacobian
// store. It decides, per captured timestep, which rung of the placement
// ladder — hot RAM, compressed RAM, disk spill, or deliberate
// drop-and-recompute — a step should occupy so the store's modelled resident
// bytes stay under a hard budget, and it prices the rungs with *measured*
// per-operation timings sampled from the first steps of the run (compress,
// decompress, spill write/read, forward-solve cost as the recompute proxy).
//
// The model never influences the numbers a sweep produces — every tier is
// lossless (recomputation is bit-exact from the trajectory), so placement
// only moves cost between memory and time. That is what lets the tiered
// store promise bit-identical sensitivities for any budget while the
// schedule itself adapts to the machine it runs on.
//
// Time is injected through the Clock interface so tests can drive the model
// with a deterministic FakeClock: identical fed samples produce identical
// decisions, which the reproducibility tests assert.
package tiersched

import (
	"sync"
	"time"
)

// Tier is one rung of the placement ladder, ordered hot to cold.
type Tier uint8

const (
	// Hot keeps the step as raw plaintext frames in RAM (CRC sidecars).
	Hot Tier = iota
	// Compressed keeps the step as self-contained sealed blobs in RAM.
	Compressed
	// Disk keeps the sealed blobs on the spill device; RAM holds offsets.
	Disk
	// Dropped keeps nothing: the step is deliberately recomputed from the
	// trajectory during the reverse sweep.
	Dropped

	// NumTiers is the rung count, for per-tier accounting arrays.
	NumTiers = 4
)

// String returns the metric-label spelling of the tier.
func (t Tier) String() string {
	switch t {
	case Hot:
		return "hot"
	case Compressed:
		return "compressed"
	case Disk:
		return "disk"
	case Dropped:
		return "dropped"
	}
	return "unknown"
}

// Clock abstracts wall time so cost-model measurements are injectable.
type Clock interface{ Now() time.Time }

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

// FakeClock is a deterministic clock for tests: every Now call advances it
// by a fixed tick, so "measured" durations are pure functions of the call
// sequence. Safe for concurrent use.
type FakeClock struct {
	mu   sync.Mutex
	now  time.Time
	tick time.Duration
}

// NewFakeClock returns a clock that advances by tick per Now call.
func NewFakeClock(tick time.Duration) *FakeClock {
	return &FakeClock{now: time.Unix(0, 0), tick: tick}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.tick)
	return c.now
}

// Advance moves the clock forward without an observation.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// RateMeter accumulates (bytes, duration) samples of one operation class —
// the cost-model primitive behind the tier ladder, also reused by the codec
// autopilot to score compression trials. The zero value is an empty meter.
// Not safe for concurrent use on its own; Model serializes access under its
// mutex.
type RateMeter struct {
	ns    float64
	bytes float64
	n     int
}

// Observe feeds one sample.
func (r *RateMeter) Observe(bytes int, d time.Duration) {
	r.ns += float64(d)
	r.bytes += float64(bytes)
	r.n++
}

// PerByte returns seconds per byte, or 0 with no usable samples.
func (r *RateMeter) PerByte() float64 {
	if r.n == 0 || r.bytes <= 0 {
		return 0
	}
	return r.ns / 1e9 / r.bytes
}

// Samples returns the number of fed samples.
func (r *RateMeter) Samples() int { return r.n }

// Bytes returns the total bytes observed.
func (r *RateMeter) Bytes() float64 { return r.bytes }

// Seconds returns the total wall time observed.
func (r *RateMeter) Seconds() float64 { return r.ns / 1e9 }

// Model prices the tier ladder with measured per-op timings. The zero-value
// rates make every unmeasured cost read as 0 — callers resolve those with
// the conservative defaults documented on SpillTarget. All methods are safe
// for concurrent use.
type Model struct {
	mu    sync.Mutex
	clock Clock

	compress   RateMeter
	decompress RateMeter
	diskWrite  RateMeter
	diskRead   RateMeter

	recomputeNS float64
	recomputeN  int
}

// NewModel returns an empty model over the given clock (nil = wall clock).
func NewModel(clock Clock) *Model {
	if clock == nil {
		clock = Wall()
	}
	return &Model{clock: clock}
}

// Now reads the model's clock — stores time their operations through this
// so tests can make "measured" durations deterministic.
func (m *Model) Now() time.Time { return m.clock.Now() }

// ObserveCompress feeds one compression sample (raw bytes in, wall time).
func (m *Model) ObserveCompress(bytes int, d time.Duration) {
	m.mu.Lock()
	m.compress.Observe(bytes, d)
	m.mu.Unlock()
}

// ObserveDecompress feeds one decompression sample (raw bytes out).
func (m *Model) ObserveDecompress(bytes int, d time.Duration) {
	m.mu.Lock()
	m.decompress.Observe(bytes, d)
	m.mu.Unlock()
}

// ObserveDiskWrite feeds one spill-append sample (blob bytes written).
func (m *Model) ObserveDiskWrite(bytes int, d time.Duration) {
	m.mu.Lock()
	m.diskWrite.Observe(bytes, d)
	m.mu.Unlock()
}

// ObserveDiskRead feeds one spill-read sample (blob bytes read).
func (m *Model) ObserveDiskRead(bytes int, d time.Duration) {
	m.mu.Lock()
	m.diskRead.Observe(bytes, d)
	m.mu.Unlock()
}

// ObserveRecompute feeds one per-step recomputation-cost sample: either a
// forward integration step's solve time (the capture-side proxy the facade
// wires in) or an actual reverse-sweep recomputation.
func (m *Model) ObserveRecompute(d time.Duration) {
	m.mu.Lock()
	m.recomputeNS += float64(d)
	m.recomputeN++
	m.mu.Unlock()
}

// recomputeSec returns the mean measured per-step recompute cost in
// seconds, or 0 with no samples. Callers hold m.mu.
func (m *Model) recomputeSec() float64 {
	if m.recomputeN == 0 {
		return 0
	}
	return m.recomputeNS / 1e9 / float64(m.recomputeN)
}

// FetchCost estimates the reverse-sweep cost of re-materializing one step
// from the given tier: zero for hot, decompression for compressed RAM, a
// spill read plus decompression for disk, and the mean measured step solve
// for a dropped step. blobBytes is the step's sealed blob size (J+C),
// rawBytes its plaintext size.
func (m *Model) FetchCost(t Tier, blobBytes, rawBytes int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	sec := 0.0
	switch t {
	case Compressed:
		sec = m.decompress.PerByte() * float64(rawBytes)
	case Disk:
		readPB := m.diskRead.PerByte()
		if readPB == 0 {
			readPB = m.diskWrite.PerByte() // no reads yet: assume symmetric
		}
		sec = readPB*float64(blobBytes) + m.decompress.PerByte()*float64(rawBytes)
	case Dropped:
		sec = m.recomputeSec()
	}
	return time.Duration(sec * 1e9)
}

// SpillDecision is one spill placement together with the cost-model inputs
// that produced it, so every demotion is auditable after the fact (the
// tiered store records them as tier_decision span attributes). Costs are
// nanoseconds; 0 means the corresponding side was unmeasured.
type SpillDecision struct {
	Target      Tier
	RecomputeNS int64 // estimated cost of recomputing the step once
	DiskNS      int64 // estimated spill round-trip (write + read + decompress)
	Measured    bool  // both sides were measured; false forced the default
}

// SpillTarget decides where a compressed-RAM blob goes when the budget
// forces it out of memory: Disk when the measured spill round-trip
// (write + read + decompress) is cheaper than one recomputation — or when
// either side is still unmeasured, since spilling is the conservative
// choice that preserves the blob — and Dropped otherwise. diskOK reports
// whether the spill device is usable at all; without it the only way down
// is Dropped. The decision is a pure function of the fed samples, so runs
// with identical (injected-clock) measurements demote identically.
func (m *Model) SpillTarget(blobBytes, rawBytes int, diskOK bool) Tier {
	return m.ExplainSpill(blobBytes, rawBytes, diskOK).Target
}

// ExplainSpill is SpillTarget plus the priced inputs behind the choice.
func (m *Model) ExplainSpill(blobBytes, rawBytes int, diskOK bool) SpillDecision {
	if !diskOK {
		return SpillDecision{Target: Dropped}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.recomputeSec()
	d := SpillDecision{RecomputeNS: int64(rec * 1e9)}
	if rec == 0 || m.diskWrite.n == 0 {
		d.Target = Disk
		return d
	}
	readPB := m.diskRead.PerByte()
	if readPB == 0 {
		readPB = m.diskWrite.PerByte()
	}
	diskSec := (m.diskWrite.PerByte()+readPB)*float64(blobBytes) +
		m.decompress.PerByte()*float64(rawBytes)
	d.DiskNS = int64(diskSec * 1e9)
	d.Measured = true
	if rec < diskSec {
		d.Target = Dropped
	} else {
		d.Target = Disk
	}
	return d
}

// Snapshot is a point-in-time view of the measured rates, for manifests and
// debugging.
type Snapshot struct {
	CompressSecPerByte   float64
	DecompressSecPerByte float64
	DiskWriteSecPerByte  float64
	DiskReadSecPerByte   float64
	RecomputeSecPerStep  float64
	CompressSamples      int
	DecompressSamples    int
	DiskWriteSamples     int
	DiskReadSamples      int
	RecomputeSamples     int
}

// Snapshot returns the current measured rates.
func (m *Model) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		CompressSecPerByte:   m.compress.PerByte(),
		DecompressSecPerByte: m.decompress.PerByte(),
		DiskWriteSecPerByte:  m.diskWrite.PerByte(),
		DiskReadSecPerByte:   m.diskRead.PerByte(),
		RecomputeSecPerStep:  m.recomputeSec(),
		CompressSamples:      m.compress.n,
		DecompressSamples:    m.decompress.n,
		DiskWriteSamples:     m.diskWrite.n,
		DiskReadSamples:      m.diskRead.n,
		RecomputeSamples:     m.recomputeN,
	}
}
