package device

// BJT is an Ebers–Moll bipolar transistor (EM3 form) with constant junction
// capacitances. NPN polarity by default; PNP mirrors all junction voltages
// and terminal currents.
//
//	iC =  Is·(e_be - e_bc) - (Is/BR)·(e_bc - 1)
//	iB =  (Is/BF)·(e_be - 1) + (Is/BR)·(e_bc - 1)
//	iE = -(iC + iB)
//
// where e_be = exp(v_be/Vt), e_bc = exp(v_bc/Vt), with Gmin in parallel
// with both junctions and the exponentials continued linearly.
type BJT struct {
	Name    string
	C, B, E int32
	PNP     bool
	Is      float64
	BF, BR  float64
	CJE     float64 // zero-bias B-E depletion capacitance
	CJC     float64 // zero-bias B-C depletion capacitance
	TF      float64 // forward transit time (B-E diffusion charge)
	VAF     float64 // forward Early voltage; 0 disables the Early effect
	Gmin    float64

	// G slots: rows {C,B,E} × cols {C,B,E}.
	gs [9]int32
	// C slots for the two junction caps.
	be, bc pairStamp
}

// NewBJT returns an NPN transistor with textbook defaults.
func NewBJT(name string, c, b, e int32) *BJT {
	return &BJT{
		Name: name, C: c, B: b, E: e,
		Is: 1e-16, BF: 100, BR: 1,
		CJE: 1e-12, CJC: 0.5e-12, TF: 4e-10, Gmin: 1e-12,
	}
}

// Label implements Device.
func (q *BJT) Label() string { return q.Name }

func (q *BJT) nodes() [3]int32 { return [3]int32{q.C, q.B, q.E} }

// Collect implements Device.
func (q *BJT) Collect(pc *PatternCollector) {
	n := q.nodes()
	for _, r := range n {
		for _, c := range n {
			pc.AddG(r, c)
		}
	}
	q.be.collectC(pc, q.B, q.E)
	q.bc.collectC(pc, q.B, q.C)
}

// Bind implements Device.
func (q *BJT) Bind(sb *SlotBinder) {
	n := q.nodes()
	for ri, r := range n {
		for ci, c := range n {
			q.gs[ri*3+ci] = sb.G(r, c)
		}
	}
	q.be.bindC(sb, q.B, q.E)
	q.bc.bindC(sb, q.B, q.C)
}

// sign returns +1 for NPN, -1 for PNP.
func (q *BJT) sign() float64 {
	if q.PNP {
		return -1
	}
	return 1
}

// junctions evaluates both junction exponentials at the present state.
func (q *BJT) junctions(ev *EvalState) (vbe, vbc, ef, def, er, der float64) {
	s := q.sign()
	vbe = s * (ev.V(q.B) - ev.V(q.E))
	vbc = s * (ev.V(q.B) - ev.V(q.C))
	ef, def = limexp(vbe / Vt)
	er, der = limexp(vbc / Vt)
	return
}

// Eval implements Device.
func (q *BJT) Eval(ev *EvalState) {
	s := q.sign()
	vbe, vbc, ef, def, er, der := q.junctions(ev)

	// Early effect: the transport current scales with κ = 1 − vbc/VAF
	// (base-width modulation); VAF = 0 disables it.
	kap, dKap := 1.0, 0.0
	if q.VAF != 0 {
		kap = 1 - vbc/q.VAF
		dKap = -1 / q.VAF
	}
	iT := q.Is * (ef - er) * kap
	iC := iT - (q.Is/q.BR)*(er-1) + q.Gmin*(-vbc)
	iB := (q.Is/q.BF)*(ef-1) + (q.Is/q.BR)*(er-1) + q.Gmin*(vbe+vbc)
	// Derivatives w.r.t. vbe and vbc.
	dICdVbe := q.Is * def / Vt * kap
	dICdVbc := -q.Is*der/Vt*kap + q.Is*(ef-er)*dKap -
		(q.Is/q.BR)*der/Vt - q.Gmin
	dIBdVbe := (q.Is/q.BF)*def/Vt + q.Gmin
	dIBdVbc := (q.Is/q.BR)*der/Vt + q.Gmin

	ev.AddF(q.C, s*iC)
	ev.AddF(q.B, s*iB)
	ev.AddF(q.E, -s*(iC+iB))

	// Chain rule: vbe = s(vB - vE), vbc = s(vB - vC); terminal current
	// rows are also scaled by s, so the s² factors cancel in G.
	// d(s·iC)/dvX and friends, for X ∈ {C,B,E}:
	diC := [3]float64{-dICdVbc, dICdVbe + dICdVbc, -dICdVbe} // cols C,B,E
	diB := [3]float64{-dIBdVbc, dIBdVbe + dIBdVbc, -dIBdVbe}
	for ci := 0; ci < 3; ci++ {
		ev.AddG(q.gs[0*3+ci], diC[ci])              // row C
		ev.AddG(q.gs[1*3+ci], diB[ci])              // row B
		ev.AddG(q.gs[2*3+ci], -(diC[ci] + diB[ci])) // row E
	}

	// Junction charges: depletion capacitance on both junctions plus the
	// forward diffusion charge TF·iF on B-E. Charges are evaluated in the
	// polarity frame and mirrored through s; the capacitance stamps are
	// polarity-independent (the s factors cancel).
	je := Junction{CJ0: q.CJE, VJ: 0.75, M: 0.33, FC: 0.5, TT: q.TF}
	jc := Junction{CJ0: q.CJC, VJ: 0.75, M: 0.33, FC: 0.5}
	iF := q.Is * (ef - 1)
	gF := q.Is * def / Vt
	qbe, cbe := je.Charge(vbe, iF, gF)
	qbc, cbc := jc.Charge(vbc, 0, 0)
	ev.AddQ(q.B, s*(qbe+qbc))
	ev.AddQ(q.E, -s*qbe)
	ev.AddQ(q.C, -s*qbc)
	q.be.addC(ev, cbe)
	q.bc.addC(ev, cbc)
}

// Params implements Device: saturation current and forward beta.
func (q *BJT) Params() []ParamInfo {
	return []ParamInfo{
		{
			Name: q.Name + ".is",
			Get:  func() float64 { return q.Is },
			Set:  func(v float64) { q.Is = v },
		},
		{
			Name: q.Name + ".bf",
			Get:  func() float64 { return q.BF },
			Set:  func(v float64) { q.BF = v },
		},
	}
}

// AddParamSens implements Device.
func (q *BJT) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	s := q.sign()
	_, _, ef, _, er, _ := q.junctions(ev)
	kap := 1.0
	if q.VAF != 0 {
		_, vbc, _, _, _, _ := q.junctions(ev)
		kap = 1 - vbc/q.VAF
	}
	switch pi {
	case 0: // Is
		diC := (ef-er)*kap - (er-1)/q.BR
		diB := (ef-1)/q.BF + (er-1)/q.BR
		acc.AddDF(q.C, s*diC)
		acc.AddDF(q.B, s*diB)
		acc.AddDF(q.E, -s*(diC+diB))
		// Diffusion charge: ∂(TF·Is(ef-1))/∂Is.
		dq := q.TF * (ef - 1)
		acc.AddDQ(q.B, s*dq)
		acc.AddDQ(q.E, -s*dq)
	case 1: // BF
		diB := -q.Is * (ef - 1) / (q.BF * q.BF)
		acc.AddDF(q.B, s*diB)
		acc.AddDF(q.E, -s*diB)
	}
}
