package device

// VCCS is a voltage-controlled current source (SPICE G element): a current
// Gm·(v(CP) - v(CN)) flows from P through the source into N.
type VCCS struct {
	Name   string
	P, N   int32 // output terminals
	CP, CN int32 // controlling node pair
	Gm     float64

	sPCP, sPCN, sNCP, sNCN int32
}

// Label implements Device.
func (g *VCCS) Label() string { return g.Name }

// Collect implements Device.
func (g *VCCS) Collect(pc *PatternCollector) {
	pc.AddG(g.P, g.CP)
	pc.AddG(g.P, g.CN)
	pc.AddG(g.N, g.CP)
	pc.AddG(g.N, g.CN)
}

// Bind implements Device.
func (g *VCCS) Bind(sb *SlotBinder) {
	g.sPCP = sb.G(g.P, g.CP)
	g.sPCN = sb.G(g.P, g.CN)
	g.sNCP = sb.G(g.N, g.CP)
	g.sNCN = sb.G(g.N, g.CN)
}

// Eval implements Device.
func (g *VCCS) Eval(ev *EvalState) {
	vc := ev.V(g.CP) - ev.V(g.CN)
	i := g.Gm * vc
	ev.AddF(g.P, i)
	ev.AddF(g.N, -i)
	ev.AddG(g.sPCP, g.Gm)
	ev.AddG(g.sPCN, -g.Gm)
	ev.AddG(g.sNCP, -g.Gm)
	ev.AddG(g.sNCN, g.Gm)
}

// Params implements Device: the transconductance.
func (g *VCCS) Params() []ParamInfo {
	return []ParamInfo{{
		Name: g.Name + ".gm",
		Get:  func() float64 { return g.Gm },
		Set:  func(v float64) { g.Gm = v },
	}}
}

// AddParamSens implements Device: ∂i/∂Gm = v(CP) - v(CN).
func (g *VCCS) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	vc := ev.V(g.CP) - ev.V(g.CN)
	acc.AddDF(g.P, vc)
	acc.AddDF(g.N, -vc)
}

// VCVS is a voltage-controlled voltage source (SPICE E element) with a
// branch-current unknown: row Br enforces v(P)-v(N) = Gain·(v(CP)-v(CN)).
type VCVS struct {
	Name   string
	P, N   int32
	CP, CN int32
	Br     int32
	Gain   float64

	sPBr, sNBr, sBrP, sBrN, sBrCP, sBrCN, sBrBr int32
}

// Label implements Device.
func (e *VCVS) Label() string { return e.Name }

// Collect implements Device.
func (e *VCVS) Collect(pc *PatternCollector) {
	pc.AddG(e.P, e.Br)
	pc.AddG(e.N, e.Br)
	pc.AddG(e.Br, e.P)
	pc.AddG(e.Br, e.N)
	pc.AddG(e.Br, e.CP)
	pc.AddG(e.Br, e.CN)
	pc.AddG(e.Br, e.Br)
}

// Bind implements Device.
func (e *VCVS) Bind(sb *SlotBinder) {
	e.sPBr = sb.G(e.P, e.Br)
	e.sNBr = sb.G(e.N, e.Br)
	e.sBrP = sb.G(e.Br, e.P)
	e.sBrN = sb.G(e.Br, e.N)
	e.sBrCP = sb.G(e.Br, e.CP)
	e.sBrCN = sb.G(e.Br, e.CN)
	e.sBrBr = sb.G(e.Br, e.Br)
}

// Eval implements Device.
func (e *VCVS) Eval(ev *EvalState) {
	i := ev.X[e.Br]
	ev.AddF(e.P, i)
	ev.AddF(e.N, -i)
	ev.AddF(e.Br, (ev.V(e.P)-ev.V(e.N))-e.Gain*(ev.V(e.CP)-ev.V(e.CN)))
	ev.AddG(e.sPBr, 1)
	ev.AddG(e.sNBr, -1)
	ev.AddG(e.sBrP, 1)
	ev.AddG(e.sBrN, -1)
	ev.AddG(e.sBrCP, -e.Gain)
	ev.AddG(e.sBrCN, e.Gain)
}

// Params implements Device: the voltage gain.
func (e *VCVS) Params() []ParamInfo {
	return []ParamInfo{{
		Name: e.Name + ".gain",
		Get:  func() float64 { return e.Gain },
		Set:  func(v float64) { e.Gain = v },
	}}
}

// AddParamSens implements Device: ∂f[Br]/∂Gain = -(v(CP) - v(CN)).
func (e *VCVS) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	acc.AddDF(e.Br, -(ev.V(e.CP) - ev.V(e.CN)))
}
