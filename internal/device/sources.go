package device

// VSource is an independent voltage source with a branch-current unknown.
// Row Br enforces vP - vN = W(t); the branch current closes KCL at P and N.
type VSource struct {
	Name string
	P, N int32
	Br   int32
	W    Waveform
	// Scale multiplies the waveform; it is the adjustable parameter (a
	// relative source-magnitude sensitivity, the usual netlist knob).
	Scale float64

	sPBr, sNBr, sBrP, sBrN, sBrBr int32
}

// NewVSource returns a source with unit Scale.
func NewVSource(name string, p, n, br int32, w Waveform) *VSource {
	return &VSource{Name: name, P: p, N: n, Br: br, W: w, Scale: 1}
}

// Label implements Device.
func (v *VSource) Label() string { return v.Name }

// Collect implements Device.
func (v *VSource) Collect(pc *PatternCollector) {
	pc.AddG(v.P, v.Br)
	pc.AddG(v.N, v.Br)
	pc.AddG(v.Br, v.P)
	pc.AddG(v.Br, v.N)
	pc.AddG(v.Br, v.Br) // structural diagonal for pivoting robustness
}

// Bind implements Device.
func (v *VSource) Bind(sb *SlotBinder) {
	v.sPBr = sb.G(v.P, v.Br)
	v.sNBr = sb.G(v.N, v.Br)
	v.sBrP = sb.G(v.Br, v.P)
	v.sBrN = sb.G(v.Br, v.N)
	v.sBrBr = sb.G(v.Br, v.Br)
}

// Eval implements Device.
func (v *VSource) Eval(ev *EvalState) {
	i := ev.X[v.Br]
	ev.AddF(v.P, i)
	ev.AddF(v.N, -i)
	ev.AddF(v.Br, (ev.V(v.P)-ev.V(v.N))-v.Scale*v.W.Value(ev.T))
	ev.AddG(v.sPBr, 1)
	ev.AddG(v.sNBr, -1)
	ev.AddG(v.sBrP, 1)
	ev.AddG(v.sBrN, -1)
}

// Params implements Device: the waveform scale.
func (v *VSource) Params() []ParamInfo {
	return []ParamInfo{{
		Name: v.Name + ".scale",
		Get:  func() float64 { return v.Scale },
		Set:  func(x float64) { v.Scale = x },
	}}
}

// AddParamSens implements Device: ∂f[Br]/∂Scale = -W(t).
func (v *VSource) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	acc.AddDF(v.Br, -v.W.Value(ev.T))
}

// ISource is an independent current source driving current Scale·W(t) from
// node P through itself into node N.
type ISource struct {
	Name  string
	P, N  int32
	W     Waveform
	Scale float64
}

// NewISource returns a source with unit Scale.
func NewISource(name string, p, n int32, w Waveform) *ISource {
	return &ISource{Name: name, P: p, N: n, W: w, Scale: 1}
}

// Label implements Device.
func (s *ISource) Label() string { return s.Name }

// Collect implements Device: a current source stamps no Jacobian entries.
func (s *ISource) Collect(pc *PatternCollector) {}

// Bind implements Device.
func (s *ISource) Bind(sb *SlotBinder) {}

// Eval implements Device.
func (s *ISource) Eval(ev *EvalState) {
	i := s.Scale * s.W.Value(ev.T)
	ev.AddF(s.P, i)
	ev.AddF(s.N, -i)
}

// Params implements Device: the waveform scale.
func (s *ISource) Params() []ParamInfo {
	return []ParamInfo{{
		Name: s.Name + ".scale",
		Get:  func() float64 { return s.Scale },
		Set:  func(x float64) { s.Scale = x },
	}}
}

// AddParamSens implements Device.
func (s *ISource) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	w := s.W.Value(ev.T)
	acc.AddDF(s.P, w)
	acc.AddDF(s.N, -w)
}
