package device

import "math"

// Junction models a pn-junction charge: SPICE depletion capacitance
//
//	Cj(v) = CJ0 / (1 - v/VJ)^M            v <  FC·VJ
//	Cj(v) = CJ0/(1-FC)^M · (1 + M·(v - FC·VJ)/(VJ·(1-FC)))   v ≥ FC·VJ
//
// (the standard linear continuation past FC·VJ) plus a diffusion term
// TT·i(v). The zero value is a no-op junction.
type Junction struct {
	CJ0 float64 // zero-bias depletion capacitance
	VJ  float64 // built-in potential
	M   float64 // grading coefficient
	FC  float64 // forward-bias depletion formula cutover
	TT  float64 // transit time (diffusion charge = TT·i)
}

// Charge returns the junction charge and capacitance at voltage v, given
// the junction current i and conductance g (for the diffusion term).
func (j *Junction) Charge(v, i, g float64) (q, c float64) {
	if j.CJ0 != 0 {
		fcv := j.FC * j.VJ
		if v < fcv {
			u := 1 - v/j.VJ
			um := math.Pow(u, -j.M)
			c = j.CJ0 * um
			// q = CJ0·VJ/(1-M)·(1 - u^{1-M})
			q = j.CJ0 * j.VJ / (1 - j.M) * (1 - u*um)
		} else {
			u0 := 1 - j.FC
			um0 := math.Pow(u0, -j.M)
			q0 := j.CJ0 * j.VJ / (1 - j.M) * (1 - u0*um0)
			dv := v - fcv
			slope := j.M / (j.VJ * u0)
			c = j.CJ0 * um0 * (1 + j.M*dv/(j.VJ*u0))
			q = q0 + j.CJ0*um0*(dv+slope*dv*dv/2)
		}
	}
	q += j.TT * i
	c += j.TT * g
	return q, c
}

// defaultDiodeJunction returns typical small-signal diode junction values.
func defaultDiodeJunction() Junction {
	return Junction{CJ0: 1e-12, VJ: 1.0, M: 0.5, FC: 0.5, TT: 5e-9}
}

// defaultBEJunction and defaultBCJunction return typical BJT junction
// values (forward transit time on the emitter side only).
func defaultBEJunction() Junction {
	return Junction{CJ0: 1e-12, VJ: 0.75, M: 0.33, FC: 0.5, TT: 4e-10}
}

func defaultBCJunction() Junction {
	return Junction{CJ0: 0.5e-12, VJ: 0.75, M: 0.33, FC: 0.5}
}

// defaultDrainJunction returns the MOSFET drain-bulk junction (bulk tied
// to source in this level-1 model).
func defaultDrainJunction() Junction {
	return Junction{CJ0: 1e-14, VJ: 0.8, M: 0.5, FC: 0.5}
}
