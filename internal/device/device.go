// Package device implements the circuit element models of the simulator:
// linear R/C/L, independent sources with standard SPICE waveforms, and the
// nonlinear diode, BJT (Ebers–Moll) and level-1 MOSFET models. Every device
// contributes to the MNA system
//
//	d/dt q(x,p) + f(x,t,p) = 0
//
// through three hooks: Collect reports which (i,j) Jacobian entries the
// device touches (the shared-indices pattern of the MASC paper is the union
// of all stamps), Bind resolves those entries to value-array slots once, and
// Eval adds the device's f, q, G=∂f/∂x and C=∂q/∂x contributions. Analytic
// parameter derivatives (∂f/∂p, ∂q/∂p) are exposed for sensitivity analysis.
//
// Node index conventions: indices are global unknown indices; -1 is ground.
// All stamping helpers silently drop ground rows and columns.
package device

import (
	"math"

	"masc/internal/sparse"
)

// Ground is the node index of the reference node; its row and column are
// not part of the MNA system.
const Ground int32 = -1

// Vt is the thermal voltage kT/q at 300 K, in volts.
const Vt = 0.025852

// expLimit is the junction-voltage/Vt ratio beyond which exponentials are
// continued linearly to keep Newton iterations finite.
const expLimit = 40.0

// limexp is exp(u) with a C¹ linear continuation above expLimit, the
// standard SPICE trick for taming junction exponentials.
func limexp(u float64) (e, de float64) {
	if u <= expLimit {
		e = math.Exp(u)
		return e, e
	}
	em := math.Exp(expLimit)
	return em * (1 + (u - expLimit)), em
}

// PatternCollector gathers structural Jacobian entries during setup.
type PatternCollector struct {
	G *sparse.Builder // entries of ∂f/∂x
	C *sparse.Builder // entries of ∂q/∂x
}

// AddG records a ∂f/∂x entry, ignoring ground.
func (pc *PatternCollector) AddG(i, j int32) {
	if i >= 0 && j >= 0 {
		pc.G.Add(i, j)
	}
}

// AddC records a ∂q/∂x entry, ignoring ground.
func (pc *PatternCollector) AddC(i, j int32) {
	if i >= 0 && j >= 0 {
		pc.C.Add(i, j)
	}
}

// SlotBinder resolves structural entries to value slots after the patterns
// are frozen.
type SlotBinder struct {
	GPat, CPat *sparse.Pattern
}

// G returns the slot of entry (i,j) in the G pattern, or -1 for ground.
func (sb *SlotBinder) G(i, j int32) int32 {
	if i < 0 || j < 0 {
		return -1
	}
	return sb.GPat.Find(i, j)
}

// C returns the slot of entry (i,j) in the C pattern, or -1 for ground.
func (sb *SlotBinder) C(i, j int32) int32 {
	if i < 0 || j < 0 {
		return -1
	}
	return sb.CPat.Find(i, j)
}

// EvalState carries the inputs and accumulation targets of a device
// evaluation. F/Q/Gv/Cv are cleared by the caller before the device sweep.
type EvalState struct {
	X  []float64 // current state (node voltages, branch currents)
	T  float64   // simulation time
	F  []float64 // += f(x,t)
	Q  []float64 // += q(x)
	Gv []float64 // += ∂f/∂x values on the shared G pattern
	Cv []float64 // += ∂q/∂x values on the shared C pattern
}

// V returns the state entry for node n (0 for ground).
func (ev *EvalState) V(n int32) float64 {
	if n < 0 {
		return 0
	}
	return ev.X[n]
}

// AddF accumulates into f, ignoring ground rows.
func (ev *EvalState) AddF(n int32, v float64) {
	if n >= 0 {
		ev.F[n] += v
	}
}

// AddQ accumulates into q, ignoring ground rows.
func (ev *EvalState) AddQ(n int32, v float64) {
	if n >= 0 {
		ev.Q[n] += v
	}
}

// AddG accumulates a Jacobian value; slot -1 (ground) is dropped.
func (ev *EvalState) AddG(slot int32, v float64) {
	if slot >= 0 {
		ev.Gv[slot] += v
	}
}

// AddC accumulates a ∂q/∂x value; slot -1 (ground) is dropped.
func (ev *EvalState) AddC(slot int32, v float64) {
	if slot >= 0 {
		ev.Cv[slot] += v
	}
}

// SensAccum accumulates a parameter's ∂f/∂p and ∂q/∂p vectors sparsely:
// devices touch only their own terminals, so tracking the touched indices
// keeps the per-(step, parameter) sensitivity cost independent of circuit
// size. Reset clears only what was touched.
type SensAccum struct {
	DFdp, DQdp []float64
	Touched    []int32
	mark       []bool
}

// NewSensAccum returns an accumulator for an n-unknown circuit.
func NewSensAccum(n int) *SensAccum {
	return &SensAccum{
		DFdp: make([]float64, n),
		DQdp: make([]float64, n),
		mark: make([]bool, n),
	}
}

func (a *SensAccum) touch(n int32) {
	if !a.mark[n] {
		a.mark[n] = true
		a.Touched = append(a.Touched, n)
	}
}

// AddDF accumulates into ∂f/∂p, ignoring ground.
func (a *SensAccum) AddDF(n int32, v float64) {
	if n >= 0 {
		a.touch(n)
		a.DFdp[n] += v
	}
}

// AddDQ accumulates into ∂q/∂p, ignoring ground.
func (a *SensAccum) AddDQ(n int32, v float64) {
	if n >= 0 {
		a.touch(n)
		a.DQdp[n] += v
	}
}

// Reset zeroes the touched entries, leaving the accumulator reusable.
func (a *SensAccum) Reset() {
	for _, n := range a.Touched {
		a.DFdp[n] = 0
		a.DQdp[n] = 0
		a.mark[n] = false
	}
	a.Touched = a.Touched[:0]
}

// ParamInfo describes one adjustable device parameter.
type ParamInfo struct {
	Name string
	Get  func() float64
	Set  func(float64)
}

// Device is the contract every element implements.
type Device interface {
	// Label returns the netlist name, e.g. "R12".
	Label() string
	// Collect reports the device's structural Jacobian entries.
	Collect(pc *PatternCollector)
	// Bind resolves the collected entries to slots. Called once after
	// pattern freeze and before the first Eval.
	Bind(sb *SlotBinder)
	// Eval adds the device contribution at ev.X, ev.T.
	Eval(ev *EvalState)
	// Params lists the device's adjustable parameters (may be empty).
	Params() []ParamInfo
	// AddParamSens adds ∂f/∂p and ∂q/∂p for local parameter pi into the
	// accumulator at the state in ev.
	AddParamSens(pi int, ev *EvalState, acc *SensAccum)
}

// pairStamp holds the four slots of a two-terminal conductance-like stamp
// {(a,a),(a,b),(b,a),(b,b)}.
type pairStamp struct {
	aa, ab, ba, bb int32
}

func (s *pairStamp) collectG(pc *PatternCollector, a, b int32) {
	pc.AddG(a, a)
	pc.AddG(a, b)
	pc.AddG(b, a)
	pc.AddG(b, b)
}

func (s *pairStamp) collectC(pc *PatternCollector, a, b int32) {
	pc.AddC(a, a)
	pc.AddC(a, b)
	pc.AddC(b, a)
	pc.AddC(b, b)
}

func (s *pairStamp) bindG(sb *SlotBinder, a, b int32) {
	s.aa, s.ab, s.ba, s.bb = sb.G(a, a), sb.G(a, b), sb.G(b, a), sb.G(b, b)
}

func (s *pairStamp) bindC(sb *SlotBinder, a, b int32) {
	s.aa, s.ab, s.ba, s.bb = sb.C(a, a), sb.C(a, b), sb.C(b, a), sb.C(b, b)
}

// addG stamps +g on the diagonal slots and -g on the off-diagonal slots.
func (s *pairStamp) addG(ev *EvalState, g float64) {
	ev.AddG(s.aa, g)
	ev.AddG(s.ab, -g)
	ev.AddG(s.ba, -g)
	ev.AddG(s.bb, g)
}

// addC is addG for the C matrix.
func (s *pairStamp) addC(ev *EvalState, c float64) {
	ev.AddC(s.aa, c)
	ev.AddC(s.ab, -c)
	ev.AddC(s.ba, -c)
	ev.AddC(s.bb, c)
}
