package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLimexpContinuity(t *testing.T) {
	// Value and first derivative are continuous at the switch point.
	eps := 1e-9
	lo, dlo := limexp(expLimit - eps)
	hi, dhi := limexp(expLimit + eps)
	if math.Abs(hi-lo)/lo > 1e-6 {
		t.Fatalf("limexp value jump at boundary: %g vs %g", lo, hi)
	}
	if math.Abs(dhi-dlo)/dlo > 1e-6 {
		t.Fatalf("limexp derivative jump at boundary: %g vs %g", dlo, dhi)
	}
	// Beyond the limit growth is linear, not exponential.
	v1, _ := limexp(expLimit + 1)
	v2, _ := limexp(expLimit + 2)
	em := math.Exp(expLimit)
	if math.Abs((v2-v1)-em) > 1e-6*em {
		t.Fatalf("linear continuation slope wrong: %g, want %g", v2-v1, em)
	}
}

func TestLimexpDerivative(t *testing.T) {
	for _, u := range []float64{-30, -1, 0, 1, 10, 39.9, 40.1, 80} {
		h := 1e-6
		p, _ := limexp(u + h)
		m, _ := limexp(u - h)
		_, d := limexp(u)
		fd := (p - m) / (2 * h)
		if math.Abs(fd-d) > 1e-4*math.Max(1, math.Abs(d)) {
			t.Fatalf("limexp'(%g) = %g, FD %g", u, d, fd)
		}
	}
}

func TestJunctionChargeConsistency(t *testing.T) {
	// C(v) must be dq/dv everywhere, including across the FC·VJ cutover.
	j := Junction{CJ0: 2e-12, VJ: 0.8, M: 0.4, FC: 0.5, TT: 0}
	for _, v := range []float64{-5, -1, 0, 0.2, 0.39, 0.41, 0.7, 1.5, 3} {
		h := 1e-7
		qp, _ := j.Charge(v+h, 0, 0)
		qm, _ := j.Charge(v-h, 0, 0)
		_, c := j.Charge(v, 0, 0)
		fd := (qp - qm) / (2 * h)
		if math.Abs(fd-c) > 1e-4*math.Max(1e-15, math.Abs(c)) {
			t.Fatalf("junction C(%g) = %g, dq/dv = %g", v, c, fd)
		}
	}
}

func TestJunctionChargeContinuity(t *testing.T) {
	j := defaultDiodeJunction()
	cut := j.FC * j.VJ
	eps := 1e-10
	qlo, clo := j.Charge(cut-eps, 0, 0)
	qhi, chi := j.Charge(cut+eps, 0, 0)
	if math.Abs(qhi-qlo) > 1e-6*math.Abs(qlo)+1e-30 {
		t.Fatalf("charge jump at cutover: %g vs %g", qlo, qhi)
	}
	if math.Abs(chi-clo) > 1e-6*math.Abs(clo) {
		t.Fatalf("capacitance jump at cutover: %g vs %g", clo, chi)
	}
}

func TestJunctionZeroValue(t *testing.T) {
	var j Junction
	q, c := j.Charge(0.5, 1e-3, 1e-2)
	if q != 0 || c != 0 {
		t.Fatalf("zero junction produced q=%g c=%g", q, c)
	}
	j.TT = 1e-9
	q, c = j.Charge(0.5, 2e-3, 3e-2)
	if math.Abs(q-2e-12) > 1e-27 || math.Abs(c-3e-11) > 1e-26 {
		t.Fatalf("diffusion-only junction wrong: q=%g c=%g", q, c)
	}
}

func TestWaveformDC(t *testing.T) {
	w := DC(3.3)
	if w.Value(0) != 3.3 || w.Value(1e9) != 3.3 {
		t.Fatal("DC waveform not constant")
	}
}

func TestWaveformSin(t *testing.T) {
	w := Sin{VO: 1, VA: 2, Freq: 1e3, TD: 1e-3}
	if got := w.Value(0.5e-3); got != 1 {
		t.Fatalf("before delay: %g, want VO", got)
	}
	if got := w.Value(1e-3 + 0.25e-3); math.Abs(got-3) > 1e-9 {
		t.Fatalf("quarter period: %g, want 3", got)
	}
	damped := Sin{VA: 1, Freq: 1e3, Theta: 1e3}
	a := math.Abs(damped.Value(0.25e-3))
	b := math.Abs(damped.Value(0.25e-3 + 5e-3))
	if b >= a {
		t.Fatal("theta damping not applied")
	}
}

func TestWaveformPulse(t *testing.T) {
	p := Pulse{V1: 0, V2: 5, TD: 1e-6, TR: 1e-7, TF: 2e-7, PW: 1e-6, PE: 5e-6}
	cases := map[float64]float64{
		0:       0,
		1e-6:    0,
		1.05e-6: 2.5, // mid rise
		1.5e-6:  5,
		2.2e-6:  2.5, // mid fall
		3e-6:    0,
		6.05e-6: 2.5, // second period mid rise
	}
	for tm, want := range cases {
		if got := p.Value(tm); math.Abs(got-want) > 1e-9 {
			t.Fatalf("pulse(%g) = %g, want %g", tm, got, want)
		}
	}
	sharp := Pulse{V1: 0, V2: 1, TR: 0, TF: 0, PW: 1e-6, PE: 2e-6}
	if got := sharp.Value(0.5e-6); got != 1 {
		t.Fatalf("zero-rise pulse mid-width = %g", got)
	}
}

func TestWaveformPWL(t *testing.T) {
	w := PWL{T: []float64{0, 1, 3}, V: []float64{0, 10, -10}}
	cases := map[float64]float64{
		-1:  0,
		0:   0,
		0.5: 5,
		1:   10,
		2:   0,
		3:   -10,
		9:   -10,
	}
	for tm, want := range cases {
		if got := w.Value(tm); math.Abs(got-want) > 1e-12 {
			t.Fatalf("pwl(%g) = %g, want %g", tm, got, want)
		}
	}
	if (PWL{}).Value(1) != 0 {
		t.Fatal("empty PWL should be 0")
	}
}

func TestQuickPWLMonotoneSegments(t *testing.T) {
	// Within any segment the value stays between its endpoints.
	f := func(seed int64) bool {
		w := PWL{T: []float64{0, 1, 2, 5}, V: []float64{float64(seed % 7), 3, -2, 8}}
		for i := 0; i+1 < len(w.T); i++ {
			lo, hi := w.V[i], w.V[i+1]
			if lo > hi {
				lo, hi = hi, lo
			}
			mid := w.Value((w.T[i] + w.T[i+1]) / 2)
			if mid < lo-1e-12 || mid > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMOSFETReversalSymmetry checks i(vgs, vds) = -i(vgd, -vds), the
// physical drain-source exchange symmetry the reversal handling implements.
func TestMOSFETReversalSymmetry(t *testing.T) {
	m := NewMOSFET("m", 0, 1, 2)
	for _, vg := range []float64{0.5, 1.0, 2.0} {
		for _, vd := range []float64{0.1, 0.5, 1.5} {
			fwd, _, _ := m.ids(vg, vd)
			rev, _, _ := m.ids(vg-vd, -vd)
			if math.Abs(fwd+rev) > 1e-15 {
				t.Fatalf("reversal asymmetry at vgs=%g vds=%g: %g vs %g", vg, vd, fwd, -rev)
			}
		}
	}
}

func TestMOSFETRegions(t *testing.T) {
	m := NewMOSFET("m", 0, 1, 2)
	m.Lambda = 0
	// Cutoff.
	if i, gm, gds := m.ids(0.2, 1); i != 0 || gm != 0 || gds != 0 {
		t.Fatal("not cut off below threshold")
	}
	// Saturation current = KP/2·vov².
	i, _, _ := m.ids(1.7, 5)
	want := m.KP / 2 * 1.0
	if math.Abs(i-want) > 1e-12 {
		t.Fatalf("saturation current %g, want %g", i, want)
	}
	// Linear region slope at tiny vds ≈ KP·vov.
	i2, _, _ := m.ids(1.7, 1e-6)
	if g := i2 / 1e-6; math.Abs(g-m.KP*1.0) > 1e-3*m.KP {
		t.Fatalf("triode conductance %g, want %g", g, m.KP)
	}
}

// TestPNPMirrorsNPN: a PNP with all terminal voltages negated must produce
// exactly negated terminal currents.
func TestPNPMirrorsNPN(t *testing.T) {
	npn := NewBJT("n", 0, 1, 2)
	pnp := NewBJT("p", 0, 1, 2)
	pnp.PNP = true
	x := []float64{2.0, 0.7, 0.0}
	xneg := []float64{-2.0, -0.7, 0.0}
	fN := make([]float64, 3)
	fP := make([]float64, 3)
	gv := make([]float64, 16)
	cv := make([]float64, 16)
	evalInto := func(dev *BJT, state, f []float64) {
		ev := &EvalState{X: state, F: f, Q: make([]float64, 3), Gv: gv, Cv: cv}
		// Bypass Bind: slots are -1 (dropped), we only check F.
		for i := range dev.gs {
			dev.gs[i] = -1
		}
		dev.be = pairStamp{-1, -1, -1, -1}
		dev.bc = pairStamp{-1, -1, -1, -1}
		dev.Eval(ev)
	}
	evalInto(npn, x, fN)
	evalInto(pnp, xneg, fP)
	for i := range fN {
		if math.Abs(fN[i]+fP[i]) > 1e-12*math.Max(1, math.Abs(fN[i])) {
			t.Fatalf("terminal %d: NPN %g vs PNP %g", i, fN[i], fP[i])
		}
	}
}
