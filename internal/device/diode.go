package device

// Diode is a junction diode between anode A and cathode B:
//
//	i = Is·(exp(v/(N·Vt)) - 1) + Gmin·v
//
// with the exponential continued linearly above expLimit·N·Vt. A parallel
// Gmin keeps the Jacobian nonsingular when the junction is off.
type Diode struct {
	Name string
	A, B int32
	Is   float64 // saturation current
	N    float64 // emission coefficient
	Gmin float64
	Jn   Junction // depletion + diffusion charge model

	g pairStamp
	c pairStamp
}

// NewDiode returns a diode with standard defaults (Is=1e-14, N=1,
// Gmin=1e-12, typical junction capacitance).
func NewDiode(name string, a, b int32) *Diode {
	return &Diode{Name: name, A: a, B: b, Is: 1e-14, N: 1, Gmin: 1e-12,
		Jn: defaultDiodeJunction()}
}

// Label implements Device.
func (d *Diode) Label() string { return d.Name }

// Collect implements Device.
func (d *Diode) Collect(pc *PatternCollector) {
	d.g.collectG(pc, d.A, d.B)
	d.c.collectC(pc, d.A, d.B)
}

// Bind implements Device.
func (d *Diode) Bind(sb *SlotBinder) {
	d.g.bindG(sb, d.A, d.B)
	d.c.bindC(sb, d.A, d.B)
}

// current returns the junction current and conductance at voltage v.
func (d *Diode) current(v float64) (i, g float64) {
	nvt := d.N * Vt
	e, de := limexp(v / nvt)
	i = d.Is*(e-1) + d.Gmin*v
	g = d.Is*de/nvt + d.Gmin
	return i, g
}

// Eval implements Device.
func (d *Diode) Eval(ev *EvalState) {
	v := ev.V(d.A) - ev.V(d.B)
	i, g := d.current(v)
	ev.AddF(d.A, i)
	ev.AddF(d.B, -i)
	d.g.addG(ev, g)
	// Junction charge: the diffusion term tracks the junction current
	// without the gmin leak.
	qj, cj := d.Jn.Charge(v, i-d.Gmin*v, g-d.Gmin)
	ev.AddQ(d.A, qj)
	ev.AddQ(d.B, -qj)
	d.c.addC(ev, cj)
}

// Params implements Device: the saturation current.
func (d *Diode) Params() []ParamInfo {
	return []ParamInfo{{
		Name: d.Name + ".is",
		Get:  func() float64 { return d.Is },
		Set:  func(v float64) { d.Is = v },
	}}
}

// AddParamSens implements Device: ∂i/∂Is = exp(v/(N·Vt)) - 1, and the
// diffusion charge contributes ∂q/∂Is = TT·(exp(v/(N·Vt)) - 1).
func (d *Diode) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	v := ev.V(d.A) - ev.V(d.B)
	e, _ := limexp(v / (d.N * Vt))
	s := e - 1
	acc.AddDF(d.A, s)
	acc.AddDF(d.B, -s)
	acc.AddDQ(d.A, d.Jn.TT*s)
	acc.AddDQ(d.B, -d.Jn.TT*s)
}
