package device

import "math"

// MOSFET is a level-1 (Shichman–Hodges) transistor with the bulk tied to
// the source and constant gate capacitances. NMOS by default; PMOS mirrors
// voltages and currents.
//
//	cutoff:   id = 0                            (vgs ≤ VTO)
//	linear:   id = KP·((vgs-VTO)·vds - vds²/2)·(1+λ·vds)
//	sat:      id = KP/2·(vgs-VTO)²·(1+λ·vds)
//
// with KP already including W/L. Drain-source reversal (vds < 0) swaps the
// roles of D and S, as in SPICE.
type MOSFET struct {
	Name    string
	D, G, S int32
	PMOS    bool
	KP      float64 // transconductance KP·W/L
	VTO     float64
	Lambda  float64
	CGS     float64
	CGD     float64
	CBD     float64 // zero-bias drain-bulk depletion capacitance (bulk = source)
	Gmin    float64

	// UseMeyer adds a Meyer-style intrinsic gate-source charge on top of
	// the constant overlap capacitances: q = (2/3)·Cox·max(vgs-VTO, 0)
	// with the max smoothed over MeyerDelta volts, giving the classic
	// 0 → (2/3)Cox capacitance transition from cutoff to saturation.
	UseMeyer   bool
	Cox        float64
	MeyerDelta float64

	// G slots: rows {D,S} × cols {D,G,S}.
	gs [6]int32
	// Gate and drain-junction capacitance stamps.
	cgs, cgd, cdb pairStamp
}

// NewMOSFET returns an NMOS with generic defaults.
func NewMOSFET(name string, d, g, s int32) *MOSFET {
	return &MOSFET{
		Name: name, D: d, G: g, S: s,
		KP: 2e-4, VTO: 0.7, Lambda: 0.01,
		CGS: 1e-14, CGD: 0.5e-14, CBD: 1e-14, Gmin: 1e-12,
		Cox: 3e-14, MeyerDelta: 0.05,
	}
}

// Label implements Device.
func (m *MOSFET) Label() string { return m.Name }

// Collect implements Device.
func (m *MOSFET) Collect(pc *PatternCollector) {
	rows := [2]int32{m.D, m.S}
	cols := [3]int32{m.D, m.G, m.S}
	for _, r := range rows {
		for _, c := range cols {
			pc.AddG(r, c)
		}
	}
	m.cgs.collectC(pc, m.G, m.S)
	m.cgd.collectC(pc, m.G, m.D)
	m.cdb.collectC(pc, m.D, m.S)
}

// Bind implements Device.
func (m *MOSFET) Bind(sb *SlotBinder) {
	rows := [2]int32{m.D, m.S}
	cols := [3]int32{m.D, m.G, m.S}
	for ri, r := range rows {
		for ci, c := range cols {
			m.gs[ri*3+ci] = sb.G(r, c)
		}
	}
	m.cgs.bindC(sb, m.G, m.S)
	m.cgd.bindC(sb, m.G, m.D)
	m.cdb.bindC(sb, m.D, m.S)
}

// sign returns +1 for NMOS, -1 for PMOS.
func (m *MOSFET) sign() float64 {
	if m.PMOS {
		return -1
	}
	return 1
}

// ids evaluates the drain current and its partial derivatives in the
// *electrical* frame where vds ≥ 0 (after polarity and reversal handling).
// It returns values in the device frame: id is the current into terminal D,
// gm = ∂id/∂vG, gds = ∂id/∂vD, gms = ∂id/∂vS implied by -(gm+gds).
func (m *MOSFET) ids(vgsRaw, vdsRaw float64) (id, dIdVgs, dIdVds float64) {
	reversed := vdsRaw < 0
	vgs, vds := vgsRaw, vdsRaw
	if reversed {
		// Swap D and S: vgd becomes the controlling voltage.
		vgs = vgsRaw - vdsRaw // = vgd
		vds = -vdsRaw
	}
	vov := vgs - m.VTO
	var i, gm, gds float64
	switch {
	case vov <= 0:
		i, gm, gds = 0, 0, 0
	case vds < vov: // linear region
		lam := 1 + m.Lambda*vds
		core := vov*vds - vds*vds/2
		i = m.KP * core * lam
		gm = m.KP * vds * lam
		gds = m.KP * ((vov-vds)*lam + core*m.Lambda)
	default: // saturation
		lam := 1 + m.Lambda*vds
		i = m.KP / 2 * vov * vov * lam
		gm = m.KP * vov * lam
		gds = m.KP / 2 * vov * vov * m.Lambda
	}
	if reversed {
		// id flows out of (the original) D; translate derivatives back:
		// i' = -i(vgd, -vds'), with vgd = vgs - vds in original variables.
		// ∂i'/∂vgs = -gm·∂vgd/∂vgs ... vgd depends on vgs and vds:
		// original frame: i_D = -i(vgs - vds, -vds).
		id = -i
		dIdVgs = -gm
		dIdVds = gm + gds
		return
	}
	return i, gm, gds
}

// Eval implements Device.
func (m *MOSFET) Eval(ev *EvalState) {
	s := m.sign()
	vgs := s * (ev.V(m.G) - ev.V(m.S))
	vds := s * (ev.V(m.D) - ev.V(m.S))
	id, gm, gds := m.ids(vgs, vds)
	id += m.Gmin * vds
	gds += m.Gmin

	ev.AddF(m.D, s*id)
	ev.AddF(m.S, -s*id)

	// Columns D, G, S; the s² factors cancel as in the BJT.
	di := [3]float64{gds, gm, -(gm + gds)}
	for ci := 0; ci < 3; ci++ {
		ev.AddG(m.gs[0*3+ci], di[ci])
		ev.AddG(m.gs[1*3+ci], -di[ci])
	}

	qgs := m.CGS * (ev.V(m.G) - ev.V(m.S))
	qgd := m.CGD * (ev.V(m.G) - ev.V(m.D))
	cgs := m.CGS
	if m.UseMeyer {
		// Smooth max(vgs - VTO, 0): vgt = ½(u + √(u² + δ²)).
		u := vgs - m.VTO
		r := math.Sqrt(u*u + m.MeyerDelta*m.MeyerDelta)
		vgt := 0.5 * (u + r)
		qm := (2.0 / 3.0) * m.Cox * vgt
		cm := (2.0 / 3.0) * m.Cox * 0.5 * (1 + u/r)
		// The intrinsic charge sits on the G-S branch; s maps the
		// polarity-frame charge back to node charges (PMOS mirrors).
		qgs += s * qm
		cgs += cm
	}
	ev.AddQ(m.G, qgs+qgd)
	ev.AddQ(m.S, -qgs)
	ev.AddQ(m.D, -qgd)
	m.cgs.addC(ev, cgs)
	m.cgd.addC(ev, m.CGD)
	// Drain-bulk depletion junction (bulk tied to source): the junction
	// sees v = -vds in the polarity frame; its charge sits on the source
	// (bulk/anode) plate, mirrored through s for PMOS.
	jdb := Junction{CJ0: m.CBD, VJ: 0.8, M: 0.5, FC: 0.5}
	qj, cj := jdb.Charge(-vds, 0, 0)
	ev.AddQ(m.S, s*qj)
	ev.AddQ(m.D, -s*qj)
	m.cdb.addC(ev, cj)
}

// Params implements Device: transconductance and threshold.
func (m *MOSFET) Params() []ParamInfo {
	return []ParamInfo{
		{
			Name: m.Name + ".kp",
			Get:  func() float64 { return m.KP },
			Set:  func(v float64) { m.KP = v },
		},
		{
			Name: m.Name + ".vto",
			Get:  func() float64 { return m.VTO },
			Set:  func(v float64) { m.VTO = v },
		},
	}
}

// AddParamSens implements Device.
func (m *MOSFET) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	s := m.sign()
	vgs := s * (ev.V(m.G) - ev.V(m.S))
	vds := s * (ev.V(m.D) - ev.V(m.S))
	switch pi {
	case 0: // KP: id is proportional to KP.
		id, _, _ := m.ids(vgs, vds)
		if m.KP != 0 {
			d := id / m.KP
			acc.AddDF(m.D, s*d)
			acc.AddDF(m.S, -s*d)
		}
	case 1: // VTO: ∂id/∂VTO = -∂id/∂vgs.
		_, gm, _ := m.ids(vgs, vds)
		acc.AddDF(m.D, -s*gm)
		acc.AddDF(m.S, s*gm)
		if m.UseMeyer {
			// The Meyer gate charge also shifts with VTO:
			// ∂q/∂VTO = -(2/3)·Cox·½(1 + u/r).
			u := vgs - m.VTO
			r := math.Sqrt(u*u + m.MeyerDelta*m.MeyerDelta)
			cm := (2.0 / 3.0) * m.Cox * 0.5 * (1 + u/r)
			acc.AddDQ(m.G, -s*cm)
			acc.AddDQ(m.S, s*cm)
		}
	}
}
