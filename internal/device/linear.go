package device

// Resistor is a linear two-terminal resistor between nodes A and B.
type Resistor struct {
	Name string
	A, B int32
	R    float64

	g pairStamp
}

// Label implements Device.
func (r *Resistor) Label() string { return r.Name }

// Collect implements Device.
func (r *Resistor) Collect(pc *PatternCollector) { r.g.collectG(pc, r.A, r.B) }

// Bind implements Device.
func (r *Resistor) Bind(sb *SlotBinder) { r.g.bindG(sb, r.A, r.B) }

// Eval implements Device: f_A += (vA-vB)/R, f_B -= (vA-vB)/R.
func (r *Resistor) Eval(ev *EvalState) {
	g := 1 / r.R
	v := ev.V(r.A) - ev.V(r.B)
	i := g * v
	ev.AddF(r.A, i)
	ev.AddF(r.B, -i)
	r.g.addG(ev, g)
}

// Params implements Device: the resistance value.
func (r *Resistor) Params() []ParamInfo {
	return []ParamInfo{{
		Name: r.Name + ".r",
		Get:  func() float64 { return r.R },
		Set:  func(v float64) { r.R = v },
	}}
}

// AddParamSens implements Device: ∂f/∂R = -(vA-vB)/R².
func (r *Resistor) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	v := ev.V(r.A) - ev.V(r.B)
	d := -v / (r.R * r.R)
	acc.AddDF(r.A, d)
	acc.AddDF(r.B, -d)
}

// Capacitor is a linear two-terminal capacitor between nodes A and B.
type Capacitor struct {
	Name string
	A, B int32
	C    float64

	c pairStamp
}

// Label implements Device.
func (c *Capacitor) Label() string { return c.Name }

// Collect implements Device.
func (c *Capacitor) Collect(pc *PatternCollector) { c.c.collectC(pc, c.A, c.B) }

// Bind implements Device.
func (c *Capacitor) Bind(sb *SlotBinder) { c.c.bindC(sb, c.A, c.B) }

// Eval implements Device: q_A += C(vA-vB), q_B -= C(vA-vB).
func (c *Capacitor) Eval(ev *EvalState) {
	v := ev.V(c.A) - ev.V(c.B)
	q := c.C * v
	ev.AddQ(c.A, q)
	ev.AddQ(c.B, -q)
	c.c.addC(ev, c.C)
}

// Params implements Device: the capacitance value.
func (c *Capacitor) Params() []ParamInfo {
	return []ParamInfo{{
		Name: c.Name + ".c",
		Get:  func() float64 { return c.C },
		Set:  func(v float64) { c.C = v },
	}}
}

// AddParamSens implements Device: ∂q/∂C = vA - vB.
func (c *Capacitor) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	v := ev.V(c.A) - ev.V(c.B)
	acc.AddDQ(c.A, v)
	acc.AddDQ(c.B, -v)
}

// Inductor is a linear inductor with an explicit branch-current unknown Br:
// row Br enforces L·di/dt = vA - vB via q[Br] = L·i, f[Br] = -(vA-vB).
type Inductor struct {
	Name string
	A, B int32
	Br   int32 // branch-current unknown index
	L    float64

	sAB, sBA, sBrA, sBrB, sBrBr int32 // G slots
	cBr                         int32 // C slot (Br,Br)
}

// Label implements Device.
func (l *Inductor) Label() string { return l.Name }

// Collect implements Device.
func (l *Inductor) Collect(pc *PatternCollector) {
	pc.AddG(l.A, l.Br)
	pc.AddG(l.B, l.Br)
	pc.AddG(l.Br, l.A)
	pc.AddG(l.Br, l.B)
	pc.AddC(l.Br, l.Br)
	// Reserve the (Br,Br) G entry too so the J=G+C/h union always has a
	// structural diagonal for the branch row.
	pc.AddG(l.Br, l.Br)
}

// Bind implements Device.
func (l *Inductor) Bind(sb *SlotBinder) {
	l.sAB = sb.G(l.A, l.Br)
	l.sBA = sb.G(l.B, l.Br)
	l.sBrA = sb.G(l.Br, l.A)
	l.sBrB = sb.G(l.Br, l.B)
	l.sBrBr = sb.G(l.Br, l.Br)
	l.cBr = sb.C(l.Br, l.Br)
}

// Eval implements Device.
func (l *Inductor) Eval(ev *EvalState) {
	i := ev.X[l.Br]
	ev.AddF(l.A, i)
	ev.AddF(l.B, -i)
	ev.AddF(l.Br, -(ev.V(l.A) - ev.V(l.B)))
	ev.AddQ(l.Br, l.L*i)
	ev.AddG(l.sAB, 1)
	ev.AddG(l.sBA, -1)
	ev.AddG(l.sBrA, -1)
	ev.AddG(l.sBrB, 1)
	ev.AddC(l.cBr, l.L)
}

// Params implements Device: the inductance value.
func (l *Inductor) Params() []ParamInfo {
	return []ParamInfo{{
		Name: l.Name + ".l",
		Get:  func() float64 { return l.L },
		Set:  func(v float64) { l.L = v },
	}}
}

// AddParamSens implements Device: ∂q[Br]/∂L = i.
func (l *Inductor) AddParamSens(pi int, ev *EvalState, acc *SensAccum) {
	acc.AddDQ(l.Br, ev.X[l.Br])
}
