package device

import "math"

// Waveform is a time-dependent source value.
type Waveform interface {
	Value(t float64) float64
}

// DC is a constant waveform.
type DC float64

// Value implements Waveform.
func (d DC) Value(float64) float64 { return float64(d) }

// Sin is the SPICE SIN(VO VA FREQ TD THETA) waveform.
type Sin struct {
	VO, VA, Freq float64
	TD, Theta    float64
}

// Value implements Waveform.
func (s Sin) Value(t float64) float64 {
	if t < s.TD {
		return s.VO
	}
	dt := t - s.TD
	damp := 1.0
	if s.Theta != 0 {
		damp = math.Exp(-dt * s.Theta)
	}
	return s.VO + s.VA*damp*math.Sin(2*math.Pi*s.Freq*dt)
}

// Pulse is the SPICE PULSE(V1 V2 TD TR TF PW PER) waveform.
type Pulse struct {
	V1, V2             float64
	TD, TR, TF, PW, PE float64
}

// Value implements Waveform.
func (p Pulse) Value(t float64) float64 {
	if t < p.TD {
		return p.V1
	}
	tt := t - p.TD
	if p.PE > 0 {
		tt = math.Mod(tt, p.PE)
	}
	switch {
	case tt < p.TR:
		if p.TR == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.TR
	case tt < p.TR+p.PW:
		return p.V2
	case tt < p.TR+p.PW+p.TF:
		if p.TF == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.TR-p.PW)/p.TF
	default:
		return p.V1
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points. Times must
// be ascending; the waveform is constant outside the covered range.
type PWL struct {
	T, V []float64
}

// Value implements Waveform.
func (w PWL) Value(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - w.T[lo]) / (w.T[hi] - w.T[lo])
	return w.V[lo] + frac*(w.V[hi]-w.V[lo])
}
