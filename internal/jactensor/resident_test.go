package jactensor

import (
	"fmt"
	"testing"
	"time"

	"masc/internal/compress/masczip"
	"masc/internal/tiersched"
)

// TestPeakResidentModel pins the resident-memory accounting the three
// strategies share: every store reports a nonzero peak after a full
// forward+reverse pass, the peak uses the same byte model (so the values
// are comparable in benchmark tables), and the strategy ordering the
// paper's Figure 7 relies on holds — raw memory retains everything,
// disk retains only stream buffers, compression sits in between.
func TestPeakResidentModel(t *testing.T) {
	const n, steps = 60, 18
	jp, cp, js, cs := tensorFixture(50, n, steps)
	stepBytes := int64(8 * (len(js[0]) + len(cs[0])))
	raw := stepBytes * int64(steps)

	cases := []struct {
		name  string
		mk    func(t *testing.T) Store
		check func(t *testing.T, peak int64)
	}{
		{
			name: "memory",
			mk:   func(t *testing.T) Store { return NewMemStore() },
			check: func(t *testing.T, peak int64) {
				// Nothing is released until the reverse sweep, so the peak
				// is exactly the raw tensor.
				if peak != raw {
					t.Fatalf("memory peak = %d, want raw %d", peak, raw)
				}
			},
		},
		{
			name: "disk",
			mk: func(t *testing.T) Store {
				st, err := NewDiskStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			check: func(t *testing.T, peak int64) {
				// Resident state is one encode scratch plus one fetch
				// buffer pair — independent of the step count.
				if peak > 3*stepBytes {
					t.Fatalf("disk peak = %d, want <= 3 steps (%d)", peak, 3*stepBytes)
				}
			},
		},
		{
			name: "compressed",
			mk: func(t *testing.T) Store {
				return NewCompressedStore(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
			},
			check: func(t *testing.T, peak int64) {
				if peak >= raw {
					t.Fatalf("compressed peak = %d, not below raw %d", peak, raw)
				}
				// The reference chain alone keeps one plaintext step
				// resident, so the peak cannot undercut it either.
				if peak < stepBytes {
					t.Fatalf("compressed peak = %d, below one step (%d)", peak, stepBytes)
				}
			},
		},
		{
			name: "compressed-anchored",
			mk: func(t *testing.T) Store {
				st := NewCompressedStore(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
				st.SetAnchorEvery(5) // anchors at 5, 10, 15 → 3 retained frames
				return st
			},
			check: func(t *testing.T, peak int64) {
				// Anchor frames are real resident memory: the peak must
				// cover the three retained frames plus the chain head, or
				// `-mem-budget`-style reporting would lie when W > 1.
				if peak < 4*stepBytes {
					t.Fatalf("anchored peak = %d, misses anchor frames (want >= %d)", peak, 4*stepBytes)
				}
				if peak >= raw {
					t.Fatalf("anchored peak = %d, not below raw %d", peak, raw)
				}
			},
		},
		{
			name: "compressed-async-anchored",
			mk: func(t *testing.T) Store {
				st := NewCompressedStoreAsync(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
				st.SetAnchorEvery(5)
				return st
			},
			check: func(t *testing.T, peak int64) {
				if peak < 4*stepBytes {
					t.Fatalf("async anchored peak = %d, misses anchor frames (want >= %d)", peak, 4*stepBytes)
				}
			},
		},
		{
			name: "compressed-async",
			mk: func(t *testing.T) Store {
				return NewCompressedStoreAsync(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
			},
			check: func(t *testing.T, peak int64) {
				if peak >= raw {
					t.Fatalf("async peak = %d, not below raw %d", peak, raw)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.mk(t)
			fillAndVerify(t, st, js, cs)
			peak := st.Stats().PeakResident
			if peak <= 0 {
				t.Fatalf("PeakResident = %d, want > 0", peak)
			}
			tc.check(t, peak)
		})
	}
}

// TestTieredBudgetEnforced is the budget half of the -mem-budget contract:
// for every budget on the ladder, PeakResident never exceeds the budget
// plus the documented slack — the in-flight frame a Put or Fetch is
// admitting, one sealed blob held alongside its plaintext mid-demotion, the
// spill-read scratch, and the frames the sweep itself holds fetched (the
// serial pattern keeps two in flight). The absurdly tiny budget must
// degrade to deliberate drops (and stay exact through recompute), never
// overrun the model silently.
func TestTieredBudgetEnforced(t *testing.T) {
	const n, steps = 60, 20
	jp, cp, js, cs := tensorFixture(55, n, steps)
	frame := int64(8 * (len(js[0]) + len(cs[0])))
	raw := frame * steps

	// Slack: up to three live frames (fetched step, the not-yet-released
	// step above it, the one being admitted) plus a blob alongside its
	// plaintext during one demotion plus the spill scratch — all bounded by
	// a frame each.
	slack := 5 * frame

	for _, tc := range []struct {
		budget int64
		noDisk bool
	}{
		{raw / 2, false},
		{raw / 4, false},
		{raw / 8, false},
		{raw / 8, true},
		{4 << 10, false},
		{4 << 10, true}, // absurdly tiny and diskless: recompute rung only
	} {
		name := fmt.Sprintf("budget=%d/disk=%v", tc.budget, !tc.noDisk)
		t.Run(name, func(t *testing.T) {
			st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{
				BudgetBytes: tc.budget,
				DisableDisk: tc.noDisk,
			})
			for i := range js {
				if err := st.Put(i, js[i], cs[i]); err != nil {
					t.Fatal(err)
				}
				if got := st.Stats().PeakResident; got > tc.budget+slack {
					t.Fatalf("forward peak %d exceeds budget %d + slack %d", got, tc.budget, slack)
				}
			}
			if err := st.EndForward(); err != nil {
				t.Fatal(err)
			}
			for i := len(js) - 1; i >= 0; i-- {
				if _, _, err := st.Fetch(i); err != nil {
					t.Fatalf("fetch %d: %v", i, err)
				}
				if i < len(js)-1 {
					st.Release(i + 1)
				}
			}
			stats := st.Stats()
			if stats.PeakResident > tc.budget+slack {
				t.Fatalf("peak %d exceeds budget %d + slack %d (%+v)", stats.PeakResident, tc.budget, slack, stats)
			}
			if tc.budget <= 4<<10 && tc.noDisk {
				if stats.TierDroppedSteps == 0 && stats.TierRecomputes == 0 {
					t.Fatalf("tiny diskless budget never reached the recompute rung: %+v", stats)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTieredUnlimitedBudgetStaysHot: budget 0 disables the ladder — the
// store must behave exactly like MemStore's footprint (everything hot, no
// demotions), so "tiered with no budget" costs nothing over the default.
func TestTieredUnlimitedBudgetStaysHot(t *testing.T) {
	jp, cp, js, cs := tensorFixture(56, 40, 10)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{})
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	raw := int64(8*(len(js[0])+len(cs[0]))) * int64(len(js))
	if stats.PeakResident != raw {
		t.Fatalf("unlimited peak = %d, want raw %d", stats.PeakResident, raw)
	}
	if stats.TierHotSteps != len(js) || stats.TierDemotions != 0 {
		t.Fatalf("unlimited budget still demoted: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredModelDecisionsReproducible drives two stores through the same
// capture with the same injected clock and checks they reach identical
// placements — the jactensor-level face of the tiersched reproducibility
// criterion.
func TestTieredModelDecisionsReproducible(t *testing.T) {
	jp, cp, js, cs := tensorFixture(57, 40, 16)
	run := func() ([]tiersched.Tier, tiersched.Snapshot) {
		st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{
			BudgetBytes: 8 << 10,
			Model:       tiersched.NewModel(tiersched.NewFakeClock(3 * time.Microsecond)),
		})
		for i := range js {
			if err := st.Put(i, js[i], cs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.EndForward(); err != nil {
			t.Fatal(err)
		}
		tiers := make([]tiersched.Tier, len(js))
		for i, step := range st.steps {
			tiers[i] = step.tier
		}
		snap := st.Model().Snapshot()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return tiers, snap
	}
	tiersA, snapA := run()
	tiersB, snapB := run()
	if snapA != snapB {
		t.Fatalf("model snapshots diverged:\n%+v\n%+v", snapA, snapB)
	}
	for i := range tiersA {
		if tiersA[i] != tiersB[i] {
			t.Fatalf("step %d placement diverged: %v vs %v", i, tiersA[i], tiersB[i])
		}
	}
}

// TestMemStoreResidentFallsOnRelease checks the live resident model (not
// just the peak): releasing steps during the reverse sweep must not move
// the recorded peak, and the peak must predate the releases.
func TestMemStoreResidentFallsOnRelease(t *testing.T) {
	_, _, js, cs := tensorFixture(51, 30, 8)
	st := NewMemStore()
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	peakBefore := st.Stats().PeakResident
	for i := len(js) - 1; i >= 0; i-- {
		st.Release(i)
	}
	if got := st.Stats().PeakResident; got != peakBefore {
		t.Fatalf("peak moved across releases: %d -> %d", peakBefore, got)
	}
	if st.resident != 0 {
		t.Fatalf("resident = %d after releasing every step, want 0", st.resident)
	}
}

// TestDiskStorePeakCoversFetchBuffers pins the regression the resident
// model fix addressed: the disk store's peak must include the reverse
// sweep's fetch buffers, not just the forward encode scratch.
func TestDiskStorePeakCoversFetchBuffers(t *testing.T) {
	_, _, js, cs := tensorFixture(52, 40, 6)
	st, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	forwardPeak := st.Stats().PeakResident
	if _, _, err := st.Fetch(len(js) - 1); err != nil {
		t.Fatal(err)
	}
	reversePeak := st.Stats().PeakResident
	// Fetch materializes jBuf/cBuf on top of the scratch, so the peak
	// must grow by exactly one decoded step.
	want := forwardPeak + int64(8*(len(js[0])+len(cs[0])))
	if reversePeak != want {
		t.Fatalf("post-fetch peak = %d, want %d (forward %d + one step)", reversePeak, want, forwardPeak)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
