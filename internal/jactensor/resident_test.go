package jactensor

import (
	"testing"

	"masc/internal/compress/masczip"
)

// TestPeakResidentModel pins the resident-memory accounting the three
// strategies share: every store reports a nonzero peak after a full
// forward+reverse pass, the peak uses the same byte model (so the values
// are comparable in benchmark tables), and the strategy ordering the
// paper's Figure 7 relies on holds — raw memory retains everything,
// disk retains only stream buffers, compression sits in between.
func TestPeakResidentModel(t *testing.T) {
	const n, steps = 60, 18
	jp, cp, js, cs := tensorFixture(50, n, steps)
	stepBytes := int64(8 * (len(js[0]) + len(cs[0])))
	raw := stepBytes * int64(steps)

	cases := []struct {
		name  string
		mk    func(t *testing.T) Store
		check func(t *testing.T, peak int64)
	}{
		{
			name: "memory",
			mk:   func(t *testing.T) Store { return NewMemStore() },
			check: func(t *testing.T, peak int64) {
				// Nothing is released until the reverse sweep, so the peak
				// is exactly the raw tensor.
				if peak != raw {
					t.Fatalf("memory peak = %d, want raw %d", peak, raw)
				}
			},
		},
		{
			name: "disk",
			mk: func(t *testing.T) Store {
				st, err := NewDiskStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			check: func(t *testing.T, peak int64) {
				// Resident state is one encode scratch plus one fetch
				// buffer pair — independent of the step count.
				if peak > 3*stepBytes {
					t.Fatalf("disk peak = %d, want <= 3 steps (%d)", peak, 3*stepBytes)
				}
			},
		},
		{
			name: "compressed",
			mk: func(t *testing.T) Store {
				return NewCompressedStore(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
			},
			check: func(t *testing.T, peak int64) {
				if peak >= raw {
					t.Fatalf("compressed peak = %d, not below raw %d", peak, raw)
				}
				// The reference chain alone keeps one plaintext step
				// resident, so the peak cannot undercut it either.
				if peak < stepBytes {
					t.Fatalf("compressed peak = %d, below one step (%d)", peak, stepBytes)
				}
			},
		},
		{
			name: "compressed-anchored",
			mk: func(t *testing.T) Store {
				st := NewCompressedStore(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
				st.SetAnchorEvery(5) // anchors at 5, 10, 15 → 3 retained frames
				return st
			},
			check: func(t *testing.T, peak int64) {
				// Anchor frames are real resident memory: the peak must
				// cover the three retained frames plus the chain head, or
				// `-mem-budget`-style reporting would lie when W > 1.
				if peak < 4*stepBytes {
					t.Fatalf("anchored peak = %d, misses anchor frames (want >= %d)", peak, 4*stepBytes)
				}
				if peak >= raw {
					t.Fatalf("anchored peak = %d, not below raw %d", peak, raw)
				}
			},
		},
		{
			name: "compressed-async-anchored",
			mk: func(t *testing.T) Store {
				st := NewCompressedStoreAsync(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
				st.SetAnchorEvery(5)
				return st
			},
			check: func(t *testing.T, peak int64) {
				if peak < 4*stepBytes {
					t.Fatalf("async anchored peak = %d, misses anchor frames (want >= %d)", peak, 4*stepBytes)
				}
			},
		},
		{
			name: "compressed-async",
			mk: func(t *testing.T) Store {
				return NewCompressedStoreAsync(
					masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
			},
			check: func(t *testing.T, peak int64) {
				if peak >= raw {
					t.Fatalf("async peak = %d, not below raw %d", peak, raw)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.mk(t)
			fillAndVerify(t, st, js, cs)
			peak := st.Stats().PeakResident
			if peak <= 0 {
				t.Fatalf("PeakResident = %d, want > 0", peak)
			}
			tc.check(t, peak)
		})
	}
}

// TestMemStoreResidentFallsOnRelease checks the live resident model (not
// just the peak): releasing steps during the reverse sweep must not move
// the recorded peak, and the peak must predate the releases.
func TestMemStoreResidentFallsOnRelease(t *testing.T) {
	_, _, js, cs := tensorFixture(51, 30, 8)
	st := NewMemStore()
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	peakBefore := st.Stats().PeakResident
	for i := len(js) - 1; i >= 0; i-- {
		st.Release(i)
	}
	if got := st.Stats().PeakResident; got != peakBefore {
		t.Fatalf("peak moved across releases: %d -> %d", peakBefore, got)
	}
	if st.resident != 0 {
		t.Fatalf("resident = %d after releasing every step, want 0", st.resident)
	}
}

// TestDiskStorePeakCoversFetchBuffers pins the regression the resident
// model fix addressed: the disk store's peak must include the reverse
// sweep's fetch buffers, not just the forward encode scratch.
func TestDiskStorePeakCoversFetchBuffers(t *testing.T) {
	_, _, js, cs := tensorFixture(52, 40, 6)
	st, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	forwardPeak := st.Stats().PeakResident
	if _, _, err := st.Fetch(len(js) - 1); err != nil {
		t.Fatal(err)
	}
	reversePeak := st.Stats().PeakResident
	// Fetch materializes jBuf/cBuf on top of the scratch, so the peak
	// must grow by exactly one decoded step.
	want := forwardPeak + int64(8*(len(js[0])+len(cs[0])))
	if reversePeak != want {
		t.Fatalf("post-fetch peak = %d, want %d (forward %d + one step)", reversePeak, want, forwardPeak)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
