package jactensor

import (
	"math"
	"sync"
	"testing"

	"masc/internal/compress/masczip"
	"masc/internal/sparse"
)

func anchoredStore(jp, cp *sparse.Pattern, every int, async bool) *CompressedStore {
	var st *CompressedStore
	if async {
		st = NewCompressedStoreAsync(
			masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
	} else {
		st = NewCompressedStore(
			masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	}
	st.SetAnchorEvery(every)
	return st
}

func TestAnchoredStoreSerialRoundTrip(t *testing.T) {
	jp, cp, js, cs := tensorFixture(60, 40, 17)
	for _, async := range []bool{false, true} {
		st := anchoredStore(jp, cp, 5, async)
		fillAndVerify(t, st, js, cs)
	}
}

func TestAnchorStepsLayout(t *testing.T) {
	jp, cp, js, cs := tensorFixture(61, 30, 13)
	st := anchoredStore(jp, cp, 4, false)
	if got := st.AnchorSteps(); got != nil {
		t.Fatalf("AnchorSteps before EndForward = %v, want nil", got)
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	// 13 steps (0..12), every 4: anchors 4 and 8 (12 is the head, and the
	// last compressed interior step is 11 — step 12's blob is the head).
	got := st.AnchorSteps()
	want := []int{4, 8, 12}
	if len(got) != len(want) {
		t.Fatalf("AnchorSteps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnchorSteps = %v, want %v", got, want)
		}
	}
	if ab := st.Stats().AnchorBytes; ab != int64(8*2*(len(js[0])+len(cs[0]))) {
		t.Fatalf("AnchorBytes = %d, want two frames", ab)
	}
}

// TestAnchorBlobStreamIdenticalSyncAsync pins that the async worker cuts
// the chain at the same points the sync path does: byte counts match.
func TestAnchorBlobStreamIdenticalSyncAsync(t *testing.T) {
	jp, cp, js, cs := tensorFixture(62, 35, 21)
	put := func(async bool) Stats {
		st := anchoredStore(jp, cp, 6, async)
		for i := range js {
			if err := st.Put(i, js[i], cs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.EndForward(); err != nil {
			t.Fatal(err)
		}
		return st.Stats()
	}
	sync, async := put(false), put(true)
	if sync.StoredBytes != async.StoredBytes {
		t.Fatalf("stored bytes diverge: sync %d async %d", sync.StoredBytes, async.StoredBytes)
	}
	if sync.AnchorBytes != async.AnchorBytes {
		t.Fatalf("anchor bytes diverge: sync %d async %d", sync.AnchorBytes, async.AnchorBytes)
	}
}

// TestStoreSlicesConcurrentSweeps runs one slice per window concurrently,
// each fetching its range in reverse, and bit-compares everything against
// the fixture — the access pattern of the windowed adjoint engine.
func TestStoreSlicesConcurrentSweeps(t *testing.T) {
	const steps = 23
	jp, cp, js, cs := tensorFixture(63, 40, steps)
	for _, async := range []bool{false, true} {
		st := anchoredStore(jp, cp, 5, async)
		for i := range js {
			if err := st.Put(i, js[i], cs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.EndForward(); err != nil {
			t.Fatal(err)
		}
		tops := st.AnchorSteps() // 5, 10, 15, 20, 22
		var wg sync.WaitGroup
		errs := make([]error, len(tops))
		lo := 0
		for w, hi := range tops {
			sl, err := st.Slice(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(w, lo, hi int, sl *StoreSlice) {
				defer wg.Done()
				for i := hi; i >= lo; i-- {
					jv, cv, err := sl.Fetch(i)
					if err != nil {
						errs[w] = err
						return
					}
					for k := range jv {
						if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
							t.Errorf("window %d step %d: J[%d] mismatch", w, i, k)
							return
						}
					}
					for k := range cv {
						if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
							t.Errorf("window %d step %d: C[%d] mismatch", w, i, k)
							return
						}
					}
					if i < hi {
						sl.Release(i + 1)
					}
				}
				sl.Release(lo)
			}(w, lo, hi, sl)
			lo = hi + 1
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("async=%v window %d: %v", async, w, err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptAnchorFallsBackToBlob pins the degradation contract: a rotted
// anchor frame is dropped and the fetch silently decodes the step's
// self-contained blob instead — same values, one corruption counted.
func TestCorruptAnchorFallsBackToBlob(t *testing.T) {
	jp, cp, js, cs := tensorFixture(64, 30, 16)
	st := anchoredStore(jp, cp, 5, false)
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	st.anchorJ[10][3] += 1 // rot after the sidecar was recorded

	// Direct fetch path.
	jv, _, err := st.Fetch(15)
	_ = jv
	if err != nil {
		t.Fatal(err)
	}
	for i := 14; i >= 10; i-- {
		jv, cv, err := st.Fetch(i)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		for k := range jv {
			if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
				t.Fatalf("step %d: J[%d] mismatch after anchor rot", i, k)
			}
		}
		for k := range cv {
			if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
				t.Fatalf("step %d: C[%d] mismatch after anchor rot", i, k)
			}
		}
		st.Release(i + 1)
	}
	stats := st.Stats()
	if stats.CorruptBlobs != 1 {
		t.Fatalf("CorruptBlobs = %d, want 1", stats.CorruptBlobs)
	}
	// Anchors were {5, 10}; the rotted one at 10 was dropped.
	if stats.AnchorBytes != int64(8*(len(js[0])+len(cs[0]))) {
		t.Fatalf("AnchorBytes = %d, want one surviving frame", stats.AnchorBytes)
	}

	// Slice path: the same rot on another anchor, seen through a slice.
	st.anchorJ[5][0] += 1
	sl, err := st.Slice(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	jv2, _, err := sl.Fetch(5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range jv2 {
		if math.Float64bits(jv2[k]) != math.Float64bits(js[5][k]) {
			t.Fatalf("slice: J[%d] mismatch after anchor rot", k)
		}
	}
}

// TestSliceValidation pins the Slice preconditions.
func TestSliceValidation(t *testing.T) {
	jp, cp, js, cs := tensorFixture(65, 25, 9)
	st := anchoredStore(jp, cp, 3, false)
	if _, err := st.Slice(0, 4); err == nil {
		t.Fatal("expected error before EndForward")
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Slice(0, 99); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := st.Slice(5, 2); err == nil {
		t.Fatal("expected inverted-range error")
	}
	if _, err := st.Slice(0, 8); err != nil {
		t.Fatal(err)
	}
}
