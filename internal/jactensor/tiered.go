package jactensor

// The tiered Jacobian store: per-step placement across the four-rung ladder
//
//	hot RAM → compressed RAM → disk spill → deliberate drop-and-recompute
//
// under a hard resident-byte budget. Capture-side, every Put admits the new
// step as a hot frame and then demotes the cheapest victims down the ladder
// until the modelled resident bytes fit the budget again; reverse-side,
// Fetch promotes steps back to hot frames (and prefetches the next step in
// the background when the budget has slack). The tiersched cost model —
// fed with measured compress/decompress/spill/recompute timings through an
// injectable clock — decides whether an evicted blob is worth spilling or
// cheaper to recompute.
//
// Every rung is lossless, so the sensitivities a sweep reads through this
// store are bit-identical to the all-RAM run for any budget: hot frames are
// exact plaintext, blobs are lossless codec output, the spill file holds
// those same sealed blobs, and a dropped step is recomputed bit-exactly
// from the in-memory trajectory. Placement moves cost between memory and
// time — never into the numbers.
//
// Unlike CompressedStore's reverse-sequential prediction chain, every blob
// here is self-contained (the codecs are restarted around each step), so
// the store is random-access: any fetch order works, which is what lets
// windowed reverse sweeps share it through the adjoint engine's
// copy-on-fetch sharedSource wrapper. SetAnchorEvery pins the window-anchor
// steps against dropping (and demotes them last), so a window's first fetch
// never lands on the recompute rung.
//
// Integrity mirrors the other stores: hot frames carry CRC32C sidecars
// (verified at fetch AND before a demotion re-encodes them, so in-RAM rot
// cannot be laundered into a validly-sealed blob), blobs are blobframe
// sealed, and the spill device sits behind the diskio retry policy. Any
// verification failure quarantines the step and surfaces as a degradable
// StepError for the adjoint recompute ladder. A spill write that still
// fails after retries degrades the demotion to a drop instead of aborting
// the forward pass.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"masc/internal/blobframe"
	"masc/internal/compress"
	"masc/internal/diskio"
	"masc/internal/faultinject"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/tiersched"
)

// TieredConfig configures a TieredStore.
type TieredConfig struct {
	// BudgetBytes caps the modelled resident bytes (hot frames plus
	// compressed-RAM blobs plus I/O scratch). <= 0 means unlimited: every
	// step stays hot and the store behaves like MemStore with sidecars.
	// The cap is enforced up to one in-flight frame plus one blob of slack
	// (a demotion briefly holds both representations).
	BudgetBytes int64
	// Model prices the ladder; nil builds a wall-clock model.
	Model *tiersched.Model
	// DiskDir and DiskBytesPerSec configure the spill tier (empty dir =
	// system temp, 0 bps = unthrottled), like DiskStore.
	DiskDir         string
	DiskBytesPerSec float64
	// DisableDisk removes the spill rung: evicted blobs are dropped and
	// recomputed. (Also the degraded mode after a spill-device failure.)
	DisableDisk bool
	// DisablePrefetch turns off the reverse-sweep background promotion of
	// step-1 while the sweep consumes step.
	DisablePrefetch bool
}

// tierStep is the per-step placement state.
type tierStep struct {
	tier       tiersched.Tier
	j, c       []float64 // hot plaintext (tier == Hot)
	jSum, cSum uint32    // CRC32C sidecars of the hot plaintext
	jBlob      []byte    // sealed self-contained blob (tier == Compressed)
	cBlob      []byte
	jOff, cOff int64 // spill offsets (tier == Disk)
	jbN, cbN   int   // sealed blob lengths, kept for spill reads
	pinned     bool  // window anchor: demoted last, never dropped to recompute
	inUse      bool  // fetched and not yet released: not evictable
	prefetched bool  // materialized by the background prefetch
	released   bool
}

// RecomputeFunc re-derives one step's (J values, C values) from the forward
// trajectory. The returned slices may alias callee scratch; the store
// copies them. It must be bit-exact with what Put recorded for the step —
// adjoint.NewRecomputeSource satisfies this.
type RecomputeFunc func(step int) (jVals, cVals []float64, err error)

// TieredStore places steps across the hot/compressed/disk/recompute ladder
// under TieredConfig.BudgetBytes. It implements Store and Repairer and is
// safe for concurrent use (windowed sweeps fetch through the adjoint
// engine's sharedSource, the prefetch runs on a background goroutine).
type TieredStore struct {
	mu     sync.Mutex
	jc, cc compress.Compressor
	cfg    TieredConfig
	model  *tiersched.Model

	steps      []*tierStep
	jLen, cLen int
	frameBytes int64 // 8*(jLen+cLen), known after the first Put

	spill     *diskio.Store   // lazily created on the first disk demotion
	spillDead bool            // creation failed or disabled: drop instead
	ctx       context.Context // forwarded to the spill device's retry loop

	anchorEvery  int
	recompute    RecomputeFunc
	forwardDone  bool
	closed       bool
	hintJ, hintC int // last sealed blob sizes, sizing the next dst

	quarantined map[int]bool
	resident    int64
	scratch     []byte // spill read staging

	prefetchBusy bool
	prefetchWG   sync.WaitGroup

	stats Stats
	fault *faultinject.Injector
	ob    storeObs
	tob   tierObs

	// Codec-level span hooks (masczip), cached in SetSpanScope; nil when
	// the codecs don't trace or spans are off. All codec calls run under
	// s.mu, so re-pointing the parent between calls is race-free.
	spanJC, spanCC spanCodec
}

// setCodecParent points the codecs' next encode/decode span at id.
func (s *TieredStore) setCodecParent(id span.ID) {
	if s.spanJC != nil {
		s.spanJC.SetSpanParent(id)
	}
	if s.spanCC != nil {
		s.spanCC.SetSpanParent(id)
	}
}

// NewTieredStore builds a tiered store over the given J and C codecs
// (masczip in production; any lossless Compressor works — codecs that keep
// cross-call prediction state should implement Restart() so per-step blobs
// stay self-contained).
func NewTieredStore(jc, cc compress.Compressor, cfg TieredConfig) *TieredStore {
	m := cfg.Model
	if m == nil {
		m = tiersched.NewModel(nil)
	}
	return &TieredStore{
		jc:          jc,
		cc:          cc,
		cfg:         cfg,
		model:       m,
		spillDead:   cfg.DisableDisk,
		quarantined: map[int]bool{},
	}
}

// SetFault installs a fault injector: float rot on hot frames after their
// sidecars are recorded, blob corruption after sealing (which covers a
// demotion in flight), op failures on the spill device. nil injects
// nothing.
func (s *TieredStore) SetFault(in *faultinject.Injector) {
	s.fault = in
	if s.spill != nil {
		s.spill.SetFault(in)
	}
}

// SetContext attaches a cancellation context forwarded to the spill
// device's retry loop (including one created by a later lazy demotion).
func (s *TieredStore) SetContext(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctx = ctx
	if s.spill != nil {
		s.spill.SetContext(ctx)
	}
}

// SyncSpill fsyncs the spill file, if one exists, so every demoted blob a
// journal checkpoint references is durable before the checkpoint record is.
// A store that never demoted to disk (or runs diskless) syncs nothing.
func (s *TieredStore) SyncSpill() error {
	s.mu.Lock()
	sp := s.spill
	s.mu.Unlock()
	if sp == nil {
		return nil
	}
	return sp.Sync()
}

// SetRecompute installs the deliberate-drop recovery path: a dropped step's
// Fetch re-derives its tensors through fn instead of returning an error.
// Without it a dropped step surfaces as a degradable StepError, which the
// adjoint sweep's recompute ladder also handles — the hook just keeps
// planned drops out of the run's DegradedSteps accounting. Call any time
// before the first Fetch (the facade wires it after the forward pass, when
// the trajectory exists).
func (s *TieredStore) SetRecompute(fn RecomputeFunc) {
	s.mu.Lock()
	s.recompute = fn
	s.mu.Unlock()
}

// SetAnchorEvery pins every k-th step (k > 0; step 0 excluded) as a window
// anchor: anchors are demoted after every non-anchor and never dropped to
// the recompute rung while the spill device lives, so window-boundary
// fetches stay cheap. Mirrors CompressedStore.SetAnchorEvery's spacing
// contract. Call before the first Put.
func (s *TieredStore) SetAnchorEvery(k int) {
	s.mu.Lock()
	s.anchorEvery = k
	s.mu.Unlock()
}

// AnchorSteps returns the ascending pinned anchor steps plus the head step,
// or nil when no anchors were requested or the forward pass is still
// running. The adjoint engine uses this menu to align window boundaries
// with tier anchors.
func (s *TieredStore) AnchorSteps() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.forwardDone || s.anchorEvery <= 0 || len(s.steps) == 0 {
		return nil
	}
	var out []int
	head := len(s.steps) - 1
	for i, st := range s.steps {
		// The head is appended below; skip it here so a trajectory whose
		// length is an exact multiple of anchorEvery doesn't list it twice
		// (duplicate tops would degenerate the window split).
		if st.pinned && i != head {
			out = append(out, i)
		}
	}
	return append(out, head)
}

// Model exposes the cost model (tests feed it deterministic samples;
// the facade feeds forward-step timings as the recompute cost proxy).
func (s *TieredStore) Model() *tiersched.Model { return s.model }

// ObserveStepCost feeds one forward integration step's wall time into the
// cost model as the recompute-cost proxy — the capture-side sampling hook
// the transient loop drives.
func (s *TieredStore) ObserveStepCost(d time.Duration) {
	s.model.ObserveRecompute(d)
}

// bumpResident adjusts the resident model and peak, shared accounting with
// the other stores.
func (s *TieredStore) bumpResident(delta int64) {
	s.resident += delta
	if s.resident > s.stats.PeakResident {
		s.stats.PeakResident = s.resident
	}
	s.ob.observeResident(s.resident)
}

// Put implements Store: admit the step as a hot frame, then demote victims
// until the budget holds again.
func (s *TieredStore) Put(step int, jVals, cVals []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forwardDone {
		return &StepError{Step: step, Op: "put", Err: errors.New("Put after EndForward")}
	}
	if step != len(s.steps) {
		return fmt.Errorf("jactensor: put step %d out of order (have %d)", step, len(s.steps))
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
		s.frameBytes = int64(8 * (s.jLen + s.cLen))
	}
	st := &tierStep{
		tier:   tiersched.Hot,
		j:      append([]float64(nil), jVals...),
		c:      append([]float64(nil), cVals...),
		pinned: s.anchorEvery > 0 && step > 0 && step%s.anchorEvery == 0,
	}
	st.jSum = blobframe.ChecksumFloat64(st.j)
	st.cSum = blobframe.ChecksumFloat64(st.c)
	// Hot-tier rot window: after the sidecar, before any re-encode.
	s.fault.MutateFloats(step, st.j)
	s.fault.MutateFloats(step, st.c)
	s.steps = append(s.steps, st)
	s.stats.Steps++
	s.stats.RawBytes += s.frameBytes
	s.bumpResident(s.frameBytes)
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(s.frameBytes))
	s.enforceBudget(step)
	return nil
}

// enforceBudget demotes steps down the ladder until resident <= budget.
// protect (>= 0) exempts one step — the frame the caller is admitting or
// returning. Victims are taken lowest-step-first: the reverse sweep reads
// n→0, so the lowest live step is the one touched furthest in the future
// (the Belady choice for this access pattern). Non-pinned steps go before
// anchors.
func (s *TieredStore) enforceBudget(protect int) {
	if s.cfg.BudgetBytes <= 0 {
		return
	}
	for s.resident > s.cfg.BudgetBytes {
		if v := s.victim(tiersched.Hot, protect); v >= 0 {
			s.demoteHot(v)
			continue
		}
		if v := s.victim(tiersched.Compressed, protect); v >= 0 {
			s.demoteCompressed(v)
			continue
		}
		return // only protected/in-use frames remain: budget + slack covers them
	}
}

// victim picks the lowest evictable step currently on the given tier,
// preferring non-pinned steps; -1 when none qualifies.
func (s *TieredStore) victim(tier tiersched.Tier, protect int) int {
	pinned := -1
	for i, st := range s.steps {
		if st.tier != tier || st.inUse || st.released || i == protect || s.quarantined[i] {
			continue
		}
		if !st.pinned {
			return i
		}
		if pinned < 0 {
			pinned = i
		}
	}
	return pinned
}

// restart cuts any cross-call codec prediction state so the next
// Compress/Decompress round-trips as a self-contained blob.
func (s *TieredStore) restart() {
	type restarter interface{ Restart() }
	if r, ok := s.jc.(restarter); ok {
		r.Restart()
	}
	if r, ok := s.cc.(restarter); ok {
		r.Restart()
	}
}

// demoteHot re-encodes step i's hot frame as sealed self-contained blobs
// (hot → compressed RAM). The sidecars are verified first: plaintext that
// rotted in RAM must quarantine, not be laundered into a freshly sealed
// blob the fetch path would trust.
func (s *TieredStore) demoteHot(i int) {
	st := s.steps[i]
	if blobframe.ChecksumFloat64(st.j) != st.jSum || blobframe.ChecksumFloat64(st.c) != st.cSum {
		s.quarantineLocked(i)
		s.freeHot(st)
		return
	}
	dsp := s.ob.rec.Start(s.ob.spanParent(), span.Demote, i)
	s.setCodecParent(dsp.ID())
	t0 := s.model.Now()
	s.restart()
	jb := s.jc.Compress(frameDst(s.hintJ), st.j, nil)
	cb := s.cc.Compress(frameDst(s.hintC), st.c, nil)
	d := s.model.Now().Sub(t0)
	s.model.ObserveCompress(int(s.frameBytes), d)
	s.stats.CompressTime += d
	s.ob.compressSec.AddDuration(d)
	blobframe.Seal(jb, 'J', i)
	blobframe.Seal(cb, 'C', i)
	// Corruption during the demotion itself: the sealed blob is the target.
	jb, _ = s.fault.MutateBlob(i, jb)
	cb, _ = s.fault.MutateBlob(i, cb)
	st.jBlob, st.cBlob = jb, cb
	st.jbN, st.cbN = len(jb), len(cb)
	s.hintJ, s.hintC = st.jbN, st.cbN
	st.tier = tiersched.Compressed
	s.bumpResident(int64(len(jb) + len(cb)))
	s.freeHot(st)
	s.noteDemote(i, tiersched.Compressed, int64(st.jbN+st.cbN))
	s.ob.blobBytes.Observe(float64(st.jbN + st.cbN))
	dsp.Attr("tier", int64(tiersched.Compressed))
	dsp.Attr("bytes", int64(st.jbN+st.cbN))
	dsp.End()
}

// demoteCompressed pushes step i's blobs off-RAM: to the spill device when
// the cost model prefers it (and it works), otherwise dropping the step for
// deliberate recomputation. Spill failures after retries degrade to a drop
// rather than aborting the forward pass.
func (s *TieredStore) demoteCompressed(i int) {
	st := s.steps[i]
	diskOK := !s.spillDead
	dec := s.model.ExplainSpill(st.jbN+st.cbN, int(s.frameBytes), diskOK)
	target := dec.Target
	if st.pinned && diskOK {
		target = tiersched.Disk // anchors never drop while the spill lives
	}
	// Record the cost-model inputs behind the placement, so every demotion
	// is auditable from the span stream after the fact.
	tsp := s.ob.rec.Start(s.ob.spanParent(), span.TierDecision, i)
	tsp.Attr("tier", int64(target))
	tsp.Attr("blob_bytes", int64(st.jbN+st.cbN))
	tsp.Attr("raw_bytes", s.frameBytes)
	tsp.Attr("recompute_ns", dec.RecomputeNS)
	tsp.Attr("disk_ns", dec.DiskNS)
	tsp.Attr("measured", boolAttr(dec.Measured))
	tsp.End()
	if target == tiersched.Disk {
		if err := s.spillStep(i); err == nil {
			return
		}
		// Spill device gone: degrade this and future demotions to drops.
		s.spillDead = true
	}
	dsp := s.ob.rec.Start(s.ob.spanParent(), span.Demote, i)
	s.bumpResident(-int64(st.jbN + st.cbN))
	st.jBlob, st.cBlob = nil, nil
	st.tier = tiersched.Dropped
	s.noteDemote(i, tiersched.Dropped, 0)
	dsp.Attr("tier", int64(tiersched.Dropped))
	dsp.End()
}

// spillStep appends step i's sealed blobs to the spill file.
func (s *TieredStore) spillStep(i int) error {
	st := s.steps[i]
	if s.spill == nil {
		sp, err := diskio.Create(s.cfg.DiskDir, s.cfg.DiskBytesPerSec)
		if err != nil {
			return err
		}
		sp.SetFault(s.fault)
		sp.SetSpans(s.ob.rec, s.ob.scope)
		if s.ctx != nil {
			sp.SetContext(s.ctx)
		}
		s.spill = sp
	}
	ssp := s.ob.rec.Start(s.ob.spanParent(), span.Spill, i)
	t0 := s.model.Now()
	jOff, err := s.spill.Append(st.jBlob)
	if err != nil {
		ssp.Attr("ok", 0)
		ssp.End()
		return err
	}
	cOff, err := s.spill.Append(st.cBlob)
	if err != nil {
		ssp.Attr("ok", 0)
		ssp.End()
		return err
	}
	d := s.model.Now().Sub(t0)
	s.model.ObserveDiskWrite(st.jbN+st.cbN, d)
	s.ob.ioSec.AddDuration(d)
	st.jOff, st.cOff = jOff, cOff
	s.bumpResident(-int64(st.jbN + st.cbN))
	st.jBlob, st.cBlob = nil, nil
	st.tier = tiersched.Disk
	s.noteDemote(i, tiersched.Disk, int64(st.jbN+st.cbN))
	ssp.Attr("bytes", int64(st.jbN+st.cbN))
	ssp.Attr("off", jOff)
	ssp.Attr("ok", 1)
	ssp.End()
	return nil
}

// freeHot drops a step's plaintext frame from the resident model.
func (s *TieredStore) freeHot(st *tierStep) {
	if st.j != nil {
		s.bumpResident(-s.frameBytes)
		st.j, st.c = nil, nil
	}
}

func (s *TieredStore) noteDemote(step int, to tiersched.Tier, bytes int64) {
	s.stats.TierDemotions++
	s.tob.demote(to)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "demote", Key: to.String(), N: bytes})
	}
}

func (s *TieredStore) notePromote(step int, from tiersched.Tier) {
	s.stats.TierPromotions++
	s.tob.promote(from)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "promote", Key: from.String(), N: s.frameBytes})
	}
}

func (s *TieredStore) quarantineLocked(i int) {
	qsp := s.ob.rec.Start(s.ob.spanParent(), span.Quarantine, i)
	qsp.End()
	s.quarantined[i] = true
	s.stats.CorruptBlobs++
	s.ob.corrupt.Inc()
}

// EndForward implements Store: one final budget pass, then the per-tier
// placement snapshot.
func (s *TieredStore) EndForward() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forwardDone = true
	s.enforceBudget(-1)
	s.snapshotTiersLocked()
	s.stats.StoredBytes = s.stats.TierHotBytes + s.stats.TierCompressedBytes + s.stats.TierDiskBytes
	s.ob.storedBytes.Add(float64(s.stats.StoredBytes))
	return nil
}

// snapshotTiersLocked refreshes the per-tier step/byte accounting in stats
// and mirrors it to the tier gauges.
func (s *TieredStore) snapshotTiersLocked() {
	var steps [tiersched.NumTiers]int
	var bytes [tiersched.NumTiers]int64
	for _, st := range s.steps {
		if st.released {
			continue
		}
		steps[st.tier]++
		switch st.tier {
		case tiersched.Hot:
			bytes[tiersched.Hot] += s.frameBytes
		case tiersched.Compressed:
			bytes[tiersched.Compressed] += int64(st.jbN + st.cbN)
		case tiersched.Disk:
			bytes[tiersched.Disk] += int64(st.jbN + st.cbN)
		}
	}
	s.stats.TierHotSteps = steps[tiersched.Hot]
	s.stats.TierCompressedSteps = steps[tiersched.Compressed]
	s.stats.TierDiskSteps = steps[tiersched.Disk]
	s.stats.TierDroppedSteps = steps[tiersched.Dropped]
	s.stats.TierHotBytes = bytes[tiersched.Hot]
	s.stats.TierCompressedBytes = bytes[tiersched.Compressed]
	s.stats.TierDiskBytes = bytes[tiersched.Disk]
	s.tob.observe(steps, bytes)
}

// Fetch implements Store. Random access: every step is self-contained, so
// any order works (the serial sweep reads n→0, windowed sweeps interleave).
func (s *TieredStore) Fetch(step int) ([]float64, []float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.forwardDone {
		return nil, nil, &StepError{Step: step, Op: "fetch", Err: errors.New("Fetch before EndForward")}
	}
	if step < 0 || step >= len(s.steps) {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, len(s.steps))
	}
	st := s.steps[step]
	if st.released {
		return nil, nil, fmt.Errorf("jactensor: step %d already released", step)
	}
	hit := st.tier == tiersched.Hot
	if err := s.materialize(step); err != nil {
		return nil, nil, err
	}
	if st.prefetched {
		st.prefetched = false
		s.ob.prefetchHits.Inc()
	} else if !hit && !s.cfg.DisablePrefetch {
		s.ob.prefetchMiss.Inc()
	}
	st.inUse = true
	s.ob.fetches.Inc()
	s.maybePrefetch(step - 1)
	return st.j, st.c, nil
}

// materialize promotes step to a verified hot frame, whatever rung it sits
// on. Caller holds s.mu.
func (s *TieredStore) materialize(step int) error {
	if s.quarantined[step] {
		return corruptErr(step, "fetch", "", errors.New("step is quarantined"))
	}
	st := s.steps[step]
	if st.tier == tiersched.Hot {
		// Verify the sidecars on every fetch, like MemStore: rot between
		// Put/promote and now must degrade, not propagate.
		if got := blobframe.ChecksumFloat64(st.j); got != st.jSum {
			s.quarantineLocked(step)
			return corruptErr(step, "fetch", "J", fmt.Errorf("checksum %#08x, want %#08x", got, st.jSum))
		}
		if got := blobframe.ChecksumFloat64(st.c); got != st.cSum {
			s.quarantineLocked(step)
			return corruptErr(step, "fetch", "C", fmt.Errorf("checksum %#08x, want %#08x", got, st.cSum))
		}
		return nil
	}
	from := st.tier
	psp := s.ob.rec.Start(s.ob.spanParent(), span.Promote, step)
	s.setCodecParent(psp.ID())
	err := s.promoteCold(step, st, psp.ID())
	psp.Attr("from", int64(from))
	psp.Attr("ok", boolAttr(err == nil))
	psp.End()
	if err != nil {
		return err
	}
	st.tier = tiersched.Hot
	s.notePromote(step, from)
	s.enforceBudget(step)
	return nil
}

// promoteCold re-derives a non-hot step's plaintext frame from whatever
// rung holds it. parent is the enclosing promote span. Caller holds s.mu.
func (s *TieredStore) promoteCold(step int, st *tierStep, parent span.ID) error {
	switch st.tier {
	case tiersched.Compressed:
		if err := s.decodeBlobs(step, st.jBlob, st.cBlob); err != nil {
			return err
		}
		s.bumpResident(-int64(st.jbN + st.cbN))
		st.jBlob, st.cBlob = nil, nil
	case tiersched.Disk:
		jb, cb, err := s.readSpill(step)
		if err != nil {
			return err
		}
		if err := s.decodeBlobs(step, jb, cb); err != nil {
			return err
		}
	case tiersched.Dropped:
		if s.recompute == nil {
			return &StepError{Step: step, Op: "fetch", Degradable: true,
				Err: errors.New("step deliberately dropped under the memory budget (no recompute hook)")}
		}
		rsp := s.ob.rec.Start(parent, span.Recompute, step)
		t0 := s.model.Now()
		jv, cv, err := s.recompute(step)
		if err != nil {
			rsp.Attr("ok", 0)
			rsp.End()
			return &StepError{Step: step, Op: "fetch", Degradable: true,
				Err: fmt.Errorf("recompute dropped step: %w", err)}
		}
		d := s.model.Now().Sub(t0)
		s.model.ObserveRecompute(d)
		s.stats.TierRecomputes++
		s.installHot(step, jv, cv)
		rsp.Attr("ok", 1)
		rsp.End()
	}
	return nil
}

// decodeBlobs opens and decompresses a step's sealed blobs into a fresh hot
// frame; failures quarantine the step.
func (s *TieredStore) decodeBlobs(step int, jb, cb []byte) error {
	open := func(frame []byte, kind byte, tensor string) ([]byte, error) {
		payload, err := blobframe.Open(frame, kind, step)
		if err != nil {
			s.quarantineLocked(step)
			return nil, corruptErr(step, "fetch", tensor, err)
		}
		return payload, nil
	}
	jp, err := open(jb, 'J', "J")
	if err != nil {
		return err
	}
	cp, err := open(cb, 'C', "C")
	if err != nil {
		return err
	}
	jv := make([]float64, s.jLen)
	cv := make([]float64, s.cLen)
	t0 := s.model.Now()
	s.restart()
	if err := s.jc.Decompress(jv, jp, nil); err != nil {
		s.quarantineLocked(step)
		return corruptErr(step, "fetch", "J", err)
	}
	if err := s.cc.Decompress(cv, cp, nil); err != nil {
		s.quarantineLocked(step)
		return corruptErr(step, "fetch", "C", err)
	}
	d := s.model.Now().Sub(t0)
	s.model.ObserveDecompress(int(s.frameBytes), d)
	s.stats.DecompressTime += d
	s.ob.decompressSec.AddDuration(d)
	s.installHot(step, jv, cv)
	return nil
}

// installHot copies jv/cv into step's hot frame (reusing any freed buffer)
// and refreshes the sidecars.
func (s *TieredStore) installHot(step int, jv, cv []float64) {
	st := s.steps[step]
	st.j = append(st.j[:0], jv...)
	st.c = append(st.c[:0], cv...)
	st.jSum = blobframe.ChecksumFloat64(st.j)
	st.cSum = blobframe.ChecksumFloat64(st.c)
	s.bumpResident(s.frameBytes)
}

// readSpill reads a step's sealed blobs back from the spill device. Read
// failures after retries are degradable (the record cannot be produced),
// mirroring DiskStore.
func (s *TieredStore) readSpill(step int) (jb, cb []byte, err error) {
	st := s.steps[step]
	need := st.jbN + st.cbN
	if cap(s.scratch) < need {
		s.bumpResident(int64(need - cap(s.scratch))) // scratch is real resident memory
		s.scratch = make([]byte, need)
	}
	t0 := s.model.Now()
	jb = s.scratch[:st.jbN]
	cb = s.scratch[st.jbN:need]
	read := func(dst []byte, off int64, tensor string) error {
		if rerr := s.spill.ReadAt(dst, off); rerr != nil {
			s.quarantineLocked(step)
			return &StepError{Step: step, Op: "fetch", Tensor: tensor, Degradable: true, Err: rerr}
		}
		return nil
	}
	if err = read(jb, st.jOff, "J"); err != nil {
		return nil, nil, err
	}
	if err = read(cb, st.cOff, "C"); err != nil {
		return nil, nil, err
	}
	d := s.model.Now().Sub(t0)
	s.model.ObserveDiskRead(need, d)
	s.ob.ioSec.AddDuration(d)
	return jb, cb, nil
}

// maybePrefetch promotes the given step on a background goroutine when the
// budget has a frame of slack — the reverse sweep's next fetch then finds a
// hot frame. At most one prefetch is in flight; errors are left for the
// foreground fetch to re-derive deterministically (a quarantined step stays
// quarantined). Caller holds s.mu.
func (s *TieredStore) maybePrefetch(step int) {
	if s.cfg.DisablePrefetch || s.prefetchBusy || s.closed || step < 0 || step >= len(s.steps) {
		return
	}
	st := s.steps[step]
	if st.released || st.tier == tiersched.Hot {
		return
	}
	if s.cfg.BudgetBytes > 0 && s.resident+s.frameBytes > s.cfg.BudgetBytes {
		return
	}
	s.prefetchBusy = true
	s.prefetchWG.Add(1)
	go func() {
		defer s.prefetchWG.Done()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.prefetchBusy = false
		if s.closed || st.released || st.inUse || st.tier == tiersched.Hot {
			return
		}
		if s.materialize(step) == nil {
			st.prefetched = true
		}
	}()
}

// Repair implements Repairer: install recomputed plaintext as the step's
// hot frame and lift the quarantine.
func (s *TieredStore) Repair(step int, jVals, cVals []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if step < 0 || step >= len(s.steps) {
		return
	}
	rsp := s.ob.rec.Start(s.ob.spanParent(), span.Repair, step)
	defer rsp.End()
	st := s.steps[step]
	from := st.tier
	switch st.tier {
	case tiersched.Compressed:
		s.bumpResident(-int64(st.jbN + st.cbN))
		st.jBlob, st.cBlob = nil, nil
	case tiersched.Hot:
		s.freeHot(st)
	}
	st.tier = tiersched.Hot
	s.installHot(step, jVals, cVals)
	// A released step may be healed and refetched by the degradation
	// ladder (sharedSource releases the base copy immediately): repair
	// revives it.
	st.released = false
	delete(s.quarantined, step)
	s.stats.Repairs++
	if from != tiersched.Hot {
		s.notePromote(step, from)
	}
	s.enforceBudget(step)
}

// Release implements Store: the step is dead — free every representation.
func (s *TieredStore) Release(step int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if step < 0 || step >= len(s.steps) {
		return
	}
	st := s.steps[step]
	if st.released {
		return
	}
	s.freeHot(st)
	if st.tier == tiersched.Compressed {
		s.bumpResident(-int64(st.jbN + st.cbN))
	}
	st.jBlob, st.cBlob = nil, nil
	st.released = true
	st.inUse = false
}

// Stats implements Store.
func (s *TieredStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotTiersLocked()
	st := s.stats
	st.BudgetBytes = s.cfg.BudgetBytes
	if s.spill != nil {
		st.IOTime = s.spill.IOTime()
		st.DiskRetries = s.spill.Retries()
		st.FsyncTime = s.spill.FsyncTime()
		st.Fsyncs = s.spill.Fsyncs()
	}
	return st
}

// Close implements Store: drain the prefetch, then drop everything and
// remove the spill file. Idempotent.
func (s *TieredStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.prefetchWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.steps = nil
	s.scratch = nil
	if s.spill != nil {
		return s.spill.Close()
	}
	return nil
}
