package jactensor

import (
	"fmt"
	"time"

	"masc/internal/compress"
	"masc/internal/obs"
)

// StoreSlice is a window-local view of a CompressedStore: an independent
// reverse-sequential fetcher over the step range [Lo, Hi]. Each slice owns
// forked decoder instances and a private plaintext cache, so W slices can
// run concurrent reverse sweeps over the same blob sequence with no decode
// serialization. The slice's top step must be self-contained — an anchor
// or the head step — which is exactly how the windowed adjoint engine
// picks its boundaries (from AnchorSteps).
//
// Shared parent state (blob quarantine, stats, the resident-byte model,
// anchor frames) is touched only under the parent's mutex; the blobs
// themselves are immutable once the forward pass has ended.
type StoreSlice struct {
	p      *CompressedStore
	lo, hi int
	jc, cc compress.Compressor // forked decoders, private to this slice

	plainJ, plainC map[int][]float64
}

// Slice returns a window-local fetcher over steps [lo, hi]. It requires a
// finished forward pass and codecs that support Fork (masczip does; its
// blobs are self-describing, so a fork can decode any of them). hi should
// be an anchor step or the head step n: the slice decodes its top blob
// with no reference when the plaintext is not already retained.
func (s *CompressedStore) Slice(lo, hi int) (*StoreSlice, error) {
	s.mu.Lock()
	done := s.forwardDone && (!s.async || s.drained)
	n := s.n
	s.mu.Unlock()
	if !done {
		return nil, fmt.Errorf("jactensor: Slice before EndForward")
	}
	if lo < 0 || hi > n || lo > hi {
		return nil, fmt.Errorf("jactensor: slice [%d,%d] out of range [0,%d]", lo, hi, n)
	}
	type forker interface{ Fork() compress.Compressor }
	jf, okJ := s.jc.(forker)
	cf, okC := s.cc.(forker)
	if !okJ || !okC {
		return nil, fmt.Errorf("jactensor: codec %s does not support forked decoders", s.jc.Name())
	}
	return &StoreSlice{
		p: s, lo: lo, hi: hi,
		jc: jf.Fork(), cc: cf.Fork(),
		plainJ: map[int][]float64{},
		plainC: map[int][]float64{},
	}, nil
}

// sharedPlainLocked looks step up in the parent's shared plaintext
// sources: the reverse-sweep cache (which holds the retained head frame
// and any repairs) first, then the anchor frames (CRC-verified). mu must
// be held. The returned slices are the parent's own — callers copy.
func (s *CompressedStore) sharedPlainLocked(step int) (jv, cv []float64, ok bool) {
	if j, hit := s.plainJ[step]; hit {
		return j, s.plainC[step], true
	}
	return s.anchorPlainLocked(step)
}

// Fetch implements the adjoint package's JacobianSource. Steps must be
// fetched in descending order from Hi: each decode references the
// slice-local plaintext of step+1, except self-contained steps (the slice
// top, anchors) which decode with no reference.
func (sl *StoreSlice) Fetch(step int) ([]float64, []float64, error) {
	if step < sl.lo || step > sl.hi {
		return nil, nil, fmt.Errorf("jactensor: slice fetch step %d outside [%d,%d]", step, sl.lo, sl.hi)
	}
	if j, ok := sl.plainJ[step]; ok {
		sl.p.ob.fetches.Inc()
		return j, sl.plainC[step], nil
	}
	p := sl.p
	selfContained := step == sl.hi || p.isAnchorStep(step)

	p.mu.Lock()
	if aj, ac, ok := p.sharedPlainLocked(step); ok {
		jv := append([]float64(nil), aj...)
		cv := append([]float64(nil), ac...)
		p.bumpResident(int64(8 * (len(jv) + len(cv))))
		p.mu.Unlock()
		sl.plainJ[step] = jv
		sl.plainC[step] = cv
		p.ob.fetches.Inc()
		return jv, cv, nil
	}
	if p.quarantined[step] {
		p.mu.Unlock()
		return nil, nil, corruptErr(step, "fetch", "", errAlreadyQuarantined)
	}
	jBlob, cBlob := p.jBlobs[step], p.cBlobs[step]
	p.mu.Unlock()

	var refJ, refC []float64
	if !selfContained {
		var ok bool
		refJ, ok = sl.plainJ[step+1]
		if !ok {
			return nil, nil, fmt.Errorf("%w: slice step %d needs step %d resident", ErrOutOfOrder, step, step+1)
		}
		refC = sl.plainC[step+1]
	}
	jPayload, err := p.openBlob(jBlob, 'J', step, "J")
	if err != nil {
		return nil, nil, err
	}
	cPayload, err := p.openBlob(cBlob, 'C', step, "C")
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	jv := make([]float64, p.jLen)
	cv := make([]float64, p.cLen)
	if err := sl.jc.Decompress(jv, jPayload, refJ); err != nil {
		return nil, nil, p.decodeFailed(step, "J", err)
	}
	if err := sl.cc.Decompress(cv, cPayload, refC); err != nil {
		return nil, nil, p.decodeFailed(step, "C", err)
	}
	elapsed := time.Since(start)
	sl.plainJ[step] = jv
	sl.plainC[step] = cv
	p.mu.Lock()
	p.stats.DecompressTime += elapsed
	p.bumpResident(int64(8 * (len(jv) + len(cv))))
	p.mu.Unlock()
	p.ob.fetches.Inc()
	p.ob.decompressSec.AddDuration(elapsed)
	if p.ob.tr != nil {
		p.ob.tr.Emit(obs.Event{Step: step, Phase: "decompress", Dur: elapsed,
			Key: "bytes", N: int64(len(jBlob) + len(cBlob))})
	}
	return jv, cv, nil
}

// Release implements JacobianSource: it frees only the slice-local copy;
// anchor frames and the parent's shared cache are untouched, so the same
// store can be sliced and swept again.
func (sl *StoreSlice) Release(step int) {
	jv, ok := sl.plainJ[step]
	if !ok {
		return
	}
	cv := sl.plainC[step]
	delete(sl.plainJ, step)
	delete(sl.plainC, step)
	p := sl.p
	p.mu.Lock()
	p.bumpResident(-int64(8 * (len(jv) + len(cv))))
	p.mu.Unlock()
}

// Repair implements Repairer: recomputed plaintext heals the step for this
// slice (serving the refetch and restoring the downward reference chain)
// and lifts the parent's quarantine so the accounting matches the serial
// engine's.
func (sl *StoreSlice) Repair(step int, jVals, cVals []float64) {
	if step < sl.lo || step > sl.hi {
		return
	}
	jv := append([]float64(nil), jVals...)
	cv := append([]float64(nil), cVals...)
	sl.plainJ[step] = jv
	sl.plainC[step] = cv
	p := sl.p
	p.mu.Lock()
	delete(p.quarantined, step)
	p.stats.Repairs++
	p.bumpResident(int64(8 * (len(jv) + len(cv))))
	p.mu.Unlock()
}
