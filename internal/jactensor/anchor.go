package jactensor

import (
	"sort"

	"masc/internal/blobframe"
)

// SetAnchorEvery makes every k-th step a window anchor: the prediction
// chain restarts there (the anchor's blob is compressed with no reference
// and, when the codec supports it, freshly re-calibrated tables) and the
// anchor's plaintext stays resident as a restart checkpoint for windowed
// reverse sweeps. k <= 0 disables anchoring (the default). Call before the
// first Put; anchoring an in-flight forward pass is not supported.
func (s *CompressedStore) SetAnchorEvery(k int) {
	if s.n >= 0 {
		return
	}
	if k < 0 {
		k = 0
	}
	s.anchorEvery = k
}

// isAnchorStep reports whether step is an interior chain cut. Step 0 and
// the head step n are never anchors: 0 has nothing below it and n's
// plaintext is already retained by EndForward.
func (s *CompressedStore) isAnchorStep(step int) bool {
	return s.anchorEvery > 0 && step > 0 && step%s.anchorEvery == 0
}

// restartCodecs cuts the codecs' prediction state (Markov counts,
// calibration phase) ahead of compressing an anchor frame. Codecs without
// an explicit restart still get a value-chain cut via the nil reference.
func (s *CompressedStore) restartCodecs() {
	type restarter interface{ Restart() }
	if r, ok := s.jc.(restarter); ok {
		r.Restart()
	}
	if r, ok := s.cc.(restarter); ok {
		r.Restart()
	}
}

// retainAnchorLocked records jv/cv as step's resident anchor plaintext,
// taking ownership of the slices. The CRC sidecars are computed first and
// the fault injector runs after — the same at-rest-rot window MemStore
// models. countResident is true when the slices are new memory (sync mode
// copies); async mode hands over buffers that are already counted.
// mu must be held in async mode.
func (s *CompressedStore) retainAnchorLocked(step int, jv, cv []float64, countResident bool) {
	s.anchorJSum[step] = blobframe.ChecksumFloat64(jv)
	s.anchorCSum[step] = blobframe.ChecksumFloat64(cv)
	s.fault.MutateFloats(step, jv)
	s.fault.MutateFloats(step, cv)
	s.anchorJ[step] = jv
	s.anchorC[step] = cv
	b := int64(8 * (len(jv) + len(cv)))
	s.stats.AnchorBytes += b
	if countResident {
		s.bumpResident(b)
	}
	s.ob.anchorBytes.Set(float64(s.stats.AnchorBytes))
}

// anchorPlainLocked verifies and returns step's retained anchor frame.
// A checksum mismatch drops the anchor (freeing its memory) and returns
// ok=false: the caller falls back to decoding the step's self-contained
// blob, so anchor rot degrades to a slower fetch, not an error.
// mu must be held.
func (s *CompressedStore) anchorPlainLocked(step int) (jv, cv []float64, ok bool) {
	jv, ok = s.anchorJ[step]
	if !ok {
		return nil, nil, false
	}
	cv = s.anchorC[step]
	if blobframe.ChecksumFloat64(jv) != s.anchorJSum[step] ||
		blobframe.ChecksumFloat64(cv) != s.anchorCSum[step] {
		s.dropAnchorLocked(step)
		return nil, nil, false
	}
	return jv, cv, true
}

// dropAnchorLocked discards a rotted anchor frame and accounts the loss.
// mu must be held.
func (s *CompressedStore) dropAnchorLocked(step int) {
	jv, cv := s.anchorJ[step], s.anchorC[step]
	b := int64(8 * (len(jv) + len(cv)))
	delete(s.anchorJ, step)
	delete(s.anchorC, step)
	delete(s.anchorJSum, step)
	delete(s.anchorCSum, step)
	s.stats.AnchorBytes -= b
	s.stats.CorruptBlobs++
	s.bumpResident(-b)
	if s.async {
		s.poolJ = append(s.poolJ, jv)
		s.poolC = append(s.poolC, cv)
	}
	s.ob.anchorBytes.Set(float64(s.stats.AnchorBytes))
	s.ob.corrupt.Inc()
}

// fetchAnchor serves a Fetch of an anchor step from the retained frame:
// the plaintext is copied into the reverse-sweep cache (so the usual
// Release semantics apply to the copy while the master frame stays for the
// next window or sweep). ok=false means the anchor is absent or rotted and
// the caller should decode the step's self-contained blob instead.
func (s *CompressedStore) fetchAnchor(step int) (jv, cv []float64, ok bool) {
	s.mu.Lock()
	aj, ac, ok := s.anchorPlainLocked(step)
	if !ok {
		s.mu.Unlock()
		return nil, nil, false
	}
	jv = takeBuf(&s.poolJ, len(aj))
	cv = takeBuf(&s.poolC, len(ac))
	copy(jv, aj)
	copy(cv, ac)
	s.plainJ[step] = jv
	s.plainC[step] = cv
	s.bumpResident(int64(8 * (len(jv) + len(cv))))
	s.mu.Unlock()
	s.ob.fetches.Inc()
	return jv, cv, true
}

// AnchorSteps returns the chain-cut layout of the finished forward pass:
// every interior anchor step in ascending order, with the head step n
// appended (the head's plaintext is retained by EndForward, so it behaves
// as the top anchor). Windowed sweeps slice the trajectory at exactly
// these steps. Returns nil before EndForward.
func (s *CompressedStore) AnchorSteps() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.forwardDone || s.n < 0 {
		return nil
	}
	steps := make([]int, 0, len(s.anchorJ)+1)
	for st := range s.anchorJ {
		// The head is appended below; when the trajectory length is an
		// exact multiple of the anchor spacing it is also a chain-cut step,
		// and listing it twice would degenerate the window split.
		if st != s.n {
			steps = append(steps, st)
		}
	}
	sort.Ints(steps)
	return append(steps, s.n)
}
