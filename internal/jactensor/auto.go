package jactensor

import (
	"fmt"

	"masc/internal/compress"
	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/sparse"
	"masc/internal/tiersched"
)

// AutoStore is the adaptive-codec front of the compressed store (the "auto"
// storage strategy): instead of committing the run to one codec up front, it
// buffers the first TrialSteps captured steps, trials every candidate codec
// pair on them, scores each on bytes saved per second of compression, and
// commits to the winner by building a CompressedStore with fresh winner
// codecs and replaying the buffered steps through it. From that point every
// call delegates to the inner store.
//
// Because the winner's codecs are rebuilt fresh and the replay re-issues the
// exact Put sequence, the inner store's blob stream is byte-identical to a
// run that had selected that codec from step 0 — the trial costs only the
// trial compressions plus one bounded plaintext buffer (TrialSteps frames of
// each tensor), never wire-format divergence. Lossy candidates (spicemate)
// are trialed for the scoreboard but never committed: the store's contract
// is bit-exact sensitivities.
type AutoStore struct {
	cfg AutoConfig

	bufJ, bufC [][]float64 // trial buffer: private copies of steps 0..K-1

	inner    *CompressedStore
	selected string
	trials   []compress.TrialResult

	// Wiring recorded before commit and applied to the inner store at build
	// time (the store's Set* hooks must run before its first Put).
	pendObs      *obs.Observer
	pendScope    span.ID
	hasScope     bool
	pendFault    *faultinject.Injector
	anchorEvery  int
	forwardEnded bool

	ob autoObs
}

// AutoCandidate is one codec entry of the autopilot's menu. New must return
// a fresh J/C compressor pair on every call: one pair is consumed by the
// trial (advancing its calibration state), and the winner gets another
// untouched pair for the committed store.
type AutoCandidate struct {
	Name string
	New  func() (jc, cc compress.Compressor)
}

// AutoConfig configures an AutoStore.
type AutoConfig struct {
	// Candidates is the trial menu, best-known-default first: ties and
	// unresolvable trials fall back to the earliest committable entry.
	Candidates []AutoCandidate
	// TrialSteps is the number of captured steps buffered and trialed before
	// committing (default 8). Short runs commit at EndForward with whatever
	// was buffered.
	TrialSteps int
	// Async / PipelineDepth build the committed store in pipelined mode.
	Async         bool
	PipelineDepth int
	// JPat/CPat contribute the shared-index footprint to the stats, as for
	// NewCompressedStore.
	JPat, CPat *sparse.Pattern
	// Clock injects trial timing (nil = wall clock) so tests can make
	// selection deterministic.
	Clock tiersched.Clock
}

// DefaultTrialSteps is the trial window used when AutoConfig.TrialSteps <= 0.
const DefaultTrialSteps = 8

// NewAutoStore returns an adaptive store over the candidate menu.
func NewAutoStore(cfg AutoConfig) (*AutoStore, error) {
	if len(cfg.Candidates) == 0 {
		return nil, fmt.Errorf("jactensor: auto store needs at least one candidate codec")
	}
	if cfg.TrialSteps <= 0 {
		cfg.TrialSteps = DefaultTrialSteps
	}
	return &AutoStore{cfg: cfg}, nil
}

// autoObs is the trial-telemetry handle bundle; zero value = disabled.
type autoObs struct {
	selected map[string]*obs.Gauge
	score    map[string]*obs.Gauge
	ratio    map[string]*obs.Gauge
	trialSec map[string]*obs.Counter
}

// SetObserver attaches telemetry: the masc_codec_trial_* and
// masc_codec_selected families are registered eagerly (one series per
// candidate), and the handle is forwarded to the committed store at build
// time. Call before the first Put.
func (s *AutoStore) SetObserver(o *obs.Observer) {
	s.pendObs = o
	reg := o.Registry()
	s.ob = autoObs{
		selected: map[string]*obs.Gauge{},
		score:    map[string]*obs.Gauge{},
		ratio:    map[string]*obs.Gauge{},
		trialSec: map[string]*obs.Counter{},
	}
	for _, cand := range s.cfg.Candidates {
		lbl := []string{"codec", cand.Name}
		s.ob.selected[cand.Name] = reg.Gauge("masc_codec_selected",
			"1 for the codec the auto storage committed the run to, 0 for the losers.", lbl...)
		s.ob.score[cand.Name] = reg.Gauge("masc_codec_trial_score",
			"Auto-selection trial score: bytes saved per second of compression.", lbl...)
		s.ob.ratio[cand.Name] = reg.Gauge("masc_codec_trial_ratio",
			"Compression ratio (raw/compressed) measured over the trial steps.", lbl...)
		s.ob.trialSec[cand.Name] = reg.Counter("masc_codec_trial_seconds_total",
			"Wall time spent in auto-selection trial compressions.", lbl...)
	}
}

// SetSpanScope records the fallback span parent for the committed store.
func (s *AutoStore) SetSpanScope(id span.ID) {
	s.pendScope, s.hasScope = id, true
	if s.inner != nil {
		s.inner.SetSpanScope(id)
	}
}

// SetFault forwards a fault injector to the committed store.
func (s *AutoStore) SetFault(in *faultinject.Injector) {
	s.pendFault = in
	if s.inner != nil {
		s.inner.SetFault(in)
	}
}

// SetAnchorEvery records the anchor cadence for the committed store; like
// the compressed store's, it must be called before the first Put.
func (s *AutoStore) SetAnchorEvery(k int) {
	s.anchorEvery = k
	if s.inner != nil {
		s.inner.SetAnchorEvery(k)
	}
}

// Async reports whether the committed store runs the pipelined mode.
func (s *AutoStore) Async() bool { return s.cfg.Async }

// Selected returns the committed codec's name and the per-candidate trial
// scorecards; ok is false before the selection has been made.
func (s *AutoStore) Selected() (name string, trials []compress.TrialResult, ok bool) {
	if s.inner == nil {
		return "", nil, false
	}
	return s.selected, s.trials, true
}

// PredictorStats delegates to the committed store (masczip winners only).
func (s *AutoStore) PredictorStats() (j, c masczip.Stats, ok bool) {
	if s.inner == nil {
		return j, c, false
	}
	return s.inner.PredictorStats()
}

// commit runs the trials, builds the winning store, and replays the
// buffered steps through it.
func (s *AutoStore) commit() error {
	results := make([]compress.TrialResult, 0, len(s.cfg.Candidates))
	for _, cand := range s.cfg.Candidates {
		jc, cc := cand.New()
		res := compress.RunTrial(compress.NewCandidate(cand.Name, jc, cc),
			s.bufJ, s.bufC, s.cfg.Clock)
		results = append(results, res)
	}
	win := compress.Pick(results)
	if win < 0 {
		// No committable candidate scored — impossible with the default
		// menu (masczip is lossless), but fail loudly rather than guess.
		return fmt.Errorf("jactensor: auto store has no committable codec candidate")
	}
	s.trials = results
	s.selected = results[win].Name

	for _, r := range results {
		if g := s.ob.selected[r.Name]; g != nil {
			if r.Name == s.selected {
				g.Set(1)
			} else {
				g.Set(0)
			}
			s.ob.score[r.Name].Set(r.Score)
			s.ob.ratio[r.Name].Set(r.Ratio())
			s.ob.trialSec[r.Name].AddDuration(r.CompressTime)
		}
	}

	// Fresh winner codecs: the trial pair's calibration state has advanced,
	// and the committed store must produce the same blob stream as a run
	// that used this codec from step 0.
	jc, cc := s.cfg.Candidates[win].New()
	if s.cfg.Async {
		s.inner = NewCompressedStoreAsync(jc, cc, s.cfg.JPat, s.cfg.CPat, s.cfg.PipelineDepth)
	} else {
		s.inner = NewCompressedStore(jc, cc, s.cfg.JPat, s.cfg.CPat)
	}
	if s.pendObs != nil {
		s.inner.SetObserver(s.pendObs)
	}
	if s.hasScope {
		s.inner.SetSpanScope(s.pendScope)
	}
	if s.pendFault != nil {
		s.inner.SetFault(s.pendFault)
	}
	if s.anchorEvery > 0 {
		s.inner.SetAnchorEvery(s.anchorEvery)
	}
	for i := range s.bufJ {
		if err := s.inner.Put(i, s.bufJ[i], s.bufC[i]); err != nil {
			return fmt.Errorf("jactensor: auto store replay step %d: %w", i, err)
		}
	}
	s.bufJ, s.bufC = nil, nil
	return nil
}

// Put implements Store: the first TrialSteps steps are buffered, the
// selection commits, and everything afterwards delegates.
func (s *AutoStore) Put(step int, jVals, cVals []float64) error {
	if s.inner != nil {
		return s.inner.Put(step, jVals, cVals)
	}
	if s.forwardEnded {
		return fmt.Errorf("jactensor: Put after EndForward")
	}
	if step != len(s.bufJ) {
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, len(s.bufJ))
	}
	if step > 0 && (len(jVals) != len(s.bufJ[0]) || len(cVals) != len(s.bufC[0])) {
		return fmt.Errorf("jactensor: step %d value counts changed (%d/%d vs %d/%d)",
			step, len(jVals), len(cVals), len(s.bufJ[0]), len(s.bufC[0]))
	}
	s.bufJ = append(s.bufJ, append([]float64(nil), jVals...))
	s.bufC = append(s.bufC, append([]float64(nil), cVals...))
	if len(s.bufJ) >= s.cfg.TrialSteps {
		return s.commit()
	}
	return nil
}

// EndForward implements Store. Runs shorter than the trial window commit
// here, on whatever steps were buffered.
func (s *AutoStore) EndForward() error {
	if s.inner == nil {
		s.forwardEnded = true
		if len(s.bufJ) == 0 {
			return fmt.Errorf("jactensor: EndForward with no steps")
		}
		if err := s.commit(); err != nil {
			return err
		}
	}
	return s.inner.EndForward()
}

// Fetch implements Store.
func (s *AutoStore) Fetch(step int) ([]float64, []float64, error) {
	if s.inner == nil {
		return nil, nil, fmt.Errorf("jactensor: Fetch before EndForward")
	}
	return s.inner.Fetch(step)
}

// Release implements Store.
func (s *AutoStore) Release(step int) {
	if s.inner != nil {
		s.inner.Release(step)
	}
}

// Repair implements the adjoint package's Repairer.
func (s *AutoStore) Repair(step int, jVals, cVals []float64) {
	if s.inner != nil {
		s.inner.Repair(step, jVals, cVals)
	}
}

// Stats implements Store. Before the selection commits it reports only the
// buffered footprint.
func (s *AutoStore) Stats() Stats {
	if s.inner != nil {
		return s.inner.Stats()
	}
	var st Stats
	st.Steps = len(s.bufJ)
	for i := range s.bufJ {
		st.RawBytes += int64(8 * (len(s.bufJ[i]) + len(s.bufC[i])))
	}
	st.PeakResident = st.RawBytes
	return st
}

// Close implements Store.
func (s *AutoStore) Close() error {
	s.bufJ, s.bufC = nil, nil
	if s.inner != nil {
		return s.inner.Close()
	}
	return nil
}

// AnchorSteps exposes the committed store's window-boundary menu so the
// windowed adjoint engine can slice an auto store like a plain compressed
// store.
func (s *AutoStore) AnchorSteps() []int {
	if s.inner == nil {
		return nil
	}
	return s.inner.AnchorSteps()
}

// Slice returns a window-local view over the committed store.
func (s *AutoStore) Slice(lo, hi int) (*StoreSlice, error) {
	if s.inner == nil {
		return nil, fmt.Errorf("jactensor: Slice before EndForward")
	}
	return s.inner.Slice(lo, hi)
}
