package jactensor

import (
	"testing"
	"time"

	"masc/internal/compress/masczip"
	"masc/internal/sparse"
)

// benchSolve stands in for the solver's Newton iterations between
// timesteps: the window an async store uses to hide compression. It
// sleeps rather than busy-spins so that on a single-CPU machine the
// background worker can actually run during the window — on multicore
// hardware the worker overlaps with real solver compute the same way.
func benchSolve(d time.Duration) { time.Sleep(d) }

// calibrateSolve returns the steady-state cost of compressing one (J, C)
// step, used as the simulated solve interval so the pipeline is neither
// starved nor saturated.
func calibrateSolve(jp, cp *sparse.Pattern, js, cs [][]float64) time.Duration {
	jc := masczip.New(jp, masczip.Options{})
	cc := masczip.New(cp, masczip.Options{})
	var d time.Duration
	for i := 0; i < 3; i++ { // first pass is cold: scratch allocation
		start := time.Now()
		jc.Compress(nil, js[0], js[1])
		cc.Compress(nil, cs[0], cs[1])
		d = time.Since(start)
	}
	return d
}

// BenchmarkStorePut measures the solver-visible latency of Put in sync vs
// async mode. Between Puts the benchmark idles for about one compression
// interval, mimicking a solve that gives the pipeline room to drain; the
// reported put-ns/op metric is time spent inside Put only. Sync mode pays
// full compression latency per Put; async mode should pay only the
// copy+enqueue cost.
func BenchmarkStorePut(b *testing.B) {
	jp, cp, js, cs := tensorFixture(90, 120, 2)
	solve := calibrateSolve(jp, cp, js, cs)

	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			opt := masczip.Options{}
			jc, cc := masczip.New(jp, opt), masczip.New(cp, opt)
			var st Store
			if mode == "async" {
				st = NewCompressedStoreAsync(jc, cc, jp, cp, 4)
			} else {
				st = NewCompressedStore(jc, cc, jp, cp)
			}
			var inPut time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := st.Put(i, js[i%2], cs[i%2]); err != nil {
					b.Fatal(err)
				}
				inPut += time.Since(t0)
				benchSolve(solve)
			}
			b.StopTimer()
			if err := st.EndForward(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(inPut.Nanoseconds())/float64(b.N), "put-ns/op")
		})
	}
}

// BenchmarkStoreForward measures the full forward phase (every Put plus
// EndForward plus the simulated solves) — the end-to-end overlap win.
func BenchmarkStoreForward(b *testing.B) {
	jp, cp, js, cs := tensorFixture(91, 120, 2)
	solve := calibrateSolve(jp, cp, js, cs)

	const steps = 64
	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				opt := masczip.Options{}
				jc, cc := masczip.New(jp, opt), masczip.New(cp, opt)
				var st Store
				if mode == "async" {
					st = NewCompressedStoreAsync(jc, cc, jp, cp, 4)
				} else {
					st = NewCompressedStore(jc, cc, jp, cp)
				}
				for i := 0; i < steps; i++ {
					if err := st.Put(i, js[i%2], cs[i%2]); err != nil {
						b.Fatal(err)
					}
					benchSolve(solve)
				}
				if err := st.EndForward(); err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreFetch measures the reverse sweep: fetch every step from
// last to first with a simulated adjoint solve between fetches, sync vs
// async (prefetching) mode.
func BenchmarkStoreFetch(b *testing.B) {
	jp, cp, js, cs := tensorFixture(92, 120, 2)
	solve := calibrateSolve(jp, cp, js, cs)

	const steps = 64
	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				b.StopTimer()
				opt := masczip.Options{}
				jc, cc := masczip.New(jp, opt), masczip.New(cp, opt)
				var st Store
				if mode == "async" {
					st = NewCompressedStoreAsync(jc, cc, jp, cp, 4)
				} else {
					st = NewCompressedStore(jc, cc, jp, cp)
				}
				for i := 0; i < steps; i++ {
					if err := st.Put(i, js[i%2], cs[i%2]); err != nil {
						b.Fatal(err)
					}
				}
				if err := st.EndForward(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for i := steps - 1; i >= 0; i-- {
					if _, _, err := st.Fetch(i); err != nil {
						b.Fatal(err)
					}
					benchSolve(solve)
					if i < steps-1 {
						st.Release(i + 1)
					}
				}
				b.StopTimer()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
