package jactensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"masc/internal/compress/varint"
	"masc/internal/sparse"
)

// File format for Jacobian tensors (the masc-compress interchange format):
//
//	magic "MASCTNSR" | u16 version | J pattern | C pattern | u32 steps |
//	steps × (J values, C values) as little-endian float64
//
// Patterns are stored as u32 dimension + delta/uvarint CSR indices (the
// shared-indices encoding). Values are raw: the format is a container for
// compressor experiments, not itself a compressed format.

const (
	fileMagic   = "MASCTNSR"
	fileVersion = 1
)

// WriteTensorFile streams a captured tensor to w.
func WriteTensorFile(w io.Writer, jPat, cPat *sparse.Pattern, js, cs [][]float64) error {
	if len(js) != len(cs) {
		return fmt.Errorf("jactensor: J/C step counts differ (%d vs %d)", len(js), len(cs))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], fileVersion)
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	writePat := func(p *sparse.Pattern) error {
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(p.N))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		enc := varint.EncodeCSRIndices(p.RowPtr, p.ColIdx)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(enc)))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		_, err := bw.Write(enc)
		return err
	}
	if err := writePat(jPat); err != nil {
		return err
	}
	if err := writePat(cPat); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(js)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	var scratch [8]byte
	writeVals := func(vals []float64, want int) error {
		if len(vals) != want {
			return fmt.Errorf("jactensor: step has %d values, pattern has %d", len(vals), want)
		}
		for _, v := range vals {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			if _, err := bw.Write(scratch[:]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range js {
		if err := writeVals(js[i], jPat.NNZ()); err != nil {
			return err
		}
		if err := writeVals(cs[i], cPat.NNZ()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTensorFile parses a tensor file produced by WriteTensorFile.
func ReadTensorFile(r io.Reader) (jPat, cPat *sparse.Pattern, js, cs [][]float64, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != fileMagic {
		return nil, nil, nil, nil, fmt.Errorf("jactensor: not a tensor file")
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, nil, nil, nil, err
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != fileVersion {
		return nil, nil, nil, nil, fmt.Errorf("jactensor: unsupported version %d", v)
	}
	readPat := func() (*sparse.Pattern, error) {
		var u32 [4]byte
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(u32[:]))
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, err
		}
		encLen := int(binary.LittleEndian.Uint32(u32[:]))
		if encLen > 1<<30 {
			return nil, fmt.Errorf("jactensor: implausible pattern size %d", encLen)
		}
		enc := make([]byte, encLen)
		if _, err := io.ReadFull(br, enc); err != nil {
			return nil, err
		}
		rowPtr, colIdx, err := varint.DecodeCSRIndices(enc)
		if err != nil {
			return nil, err
		}
		p := &sparse.Pattern{N: n, RowPtr: rowPtr, ColIdx: colIdx}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	if jPat, err = readPat(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("jactensor: J pattern: %w", err)
	}
	if cPat, err = readPat(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("jactensor: C pattern: %w", err)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, nil, nil, nil, err
	}
	steps := int(binary.LittleEndian.Uint32(u32[:]))
	if steps > 1<<28 {
		return nil, nil, nil, nil, fmt.Errorf("jactensor: implausible step count %d", steps)
	}
	readVals := func(n int) ([]float64, error) {
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		return out, nil
	}
	for s := 0; s < steps; s++ {
		jv, err := readVals(jPat.NNZ())
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("jactensor: step %d: %w", s, err)
		}
		cv, err := readVals(cPat.NNZ())
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("jactensor: step %d: %w", s, err)
		}
		js = append(js, jv)
		cs = append(cs, cv)
	}
	return jPat, cPat, js, cs, nil
}
