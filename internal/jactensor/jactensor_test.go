package jactensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"masc/internal/blobframe"
	"masc/internal/compress"
	"masc/internal/compress/chimpz"
	"masc/internal/compress/gzipz"
	"masc/internal/compress/masczip"
	"masc/internal/sparse"
)

// tensorFixture builds a steps-long sequence of (J,C) value arrays over an
// MNA-like pattern.
func tensorFixture(seed int64, n, steps int) (jp, cp *sparse.Pattern, js, cs [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	build := func(extra int) *sparse.Pattern {
		b := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(int32(i), int32(i))
			j := int32((i + 1) % n)
			b.Add(int32(i), j)
			b.Add(j, int32(i))
		}
		for e := 0; e < extra; e++ {
			b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		return b.Build()
	}
	jp = build(3 * n)
	cp = build(n)
	jv := make([]float64, jp.NNZ())
	cv := make([]float64, cp.NNZ())
	for i := range jv {
		jv[i] = rng.NormFloat64() * 100
	}
	for i := range cv {
		cv[i] = rng.NormFloat64() * 1e-9
	}
	for s := 0; s < steps; s++ {
		js = append(js, append([]float64(nil), jv...))
		cs = append(cs, append([]float64(nil), cv...))
		// Like a real circuit, only the nonlinear-device slots move
		// between timesteps; linear stamps are bit-identical.
		for i := 0; i < len(jv)/8; i++ {
			jv[rng.Intn(len(jv))] *= 1 + 1e-7*rng.NormFloat64()
		}
		for i := 0; i < len(cv)/7; i++ {
			cv[rng.Intn(len(cv))] *= 1 + 1e-9*rng.NormFloat64()
		}
	}
	return
}

// fillAndVerify pushes the fixture through the store and reads it back in
// reverse, comparing bit-exactly (unless lossy).
func fillAndVerify(t *testing.T, st Store, js, cs [][]float64) {
	t.Helper()
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	for i := len(js) - 1; i >= 0; i-- {
		jv, cv, err := st.Fetch(i)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		for k := range jv {
			if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
				t.Fatalf("step %d: J[%d] mismatch", i, k)
			}
		}
		for k := range cv {
			if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
				t.Fatalf("step %d: C[%d] mismatch", i, k)
			}
		}
		if i < len(js)-1 {
			st.Release(i + 1)
		}
	}
	stats := st.Stats()
	if stats.Steps != len(js) {
		t.Fatalf("stats.Steps = %d, want %d", stats.Steps, len(js))
	}
	if stats.RawBytes != int64(8*(len(js[0])+len(cs[0]))*len(js)) {
		t.Fatalf("stats.RawBytes = %d", stats.RawBytes)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	_, _, js, cs := tensorFixture(1, 40, 12)
	fillAndVerify(t, NewMemStore(), js, cs)
}

func TestCompressedStoreMASC(t *testing.T) {
	jp, cp, js, cs := tensorFixture(2, 40, 12)
	st := NewCompressedStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	fillAndVerify(t, st, js, cs)
}

func TestCompressedStoreMarkovParallel(t *testing.T) {
	jp, cp, js, cs := tensorFixture(3, 60, 20)
	opt := masczip.Options{Markov: true, CalibEvery: 5, Workers: 4}
	st := NewCompressedStore(masczip.New(jp, opt), masczip.New(cp, opt), jp, cp)
	fillAndVerify(t, st, js, cs)
}

func TestCompressedStoreGenericCodecs(t *testing.T) {
	_, _, js, cs := tensorFixture(4, 30, 8)
	for _, mk := range []func() compress.Compressor{
		func() compress.Compressor { return gzipz.New() },
		func() compress.Compressor { return chimpz.New() },
		func() compress.Compressor { return chimpz.NewTemporal() },
	} {
		st := NewCompressedStore(mk(), mk(), nil, nil)
		fillAndVerify(t, st, js, cs)
	}
}

func TestCompressedStoreShrinks(t *testing.T) {
	jp, cp, js, cs := tensorFixture(5, 80, 30)
	st := NewCompressedStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.StoredBytes*4 > stats.RawBytes {
		t.Fatalf("compression too weak: stored %d of %d raw", stats.StoredBytes, stats.RawBytes)
	}
	if stats.PeakResident >= stats.RawBytes {
		t.Fatalf("peak resident %d not below raw %d", stats.PeakResident, stats.RawBytes)
	}
}

func TestCompressedStoreOutOfOrderFetch(t *testing.T) {
	jp, cp, js, cs := tensorFixture(6, 20, 6)
	st := NewCompressedStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	// Jumping straight to step 2 must fail: step 3's plaintext is absent.
	if _, _, err := st.Fetch(2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("expected ErrOutOfOrder, got %v", err)
	}
	// Fetching in order works, including re-fetching a resident step.
	if _, _, err := st.Fetch(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Fetch(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Fetch(4); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedStorePutValidation(t *testing.T) {
	jp, cp, js, cs := tensorFixture(7, 20, 3)
	st := NewCompressedStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	if err := st.Put(1, js[1], cs[1]); err == nil {
		t.Fatal("expected out-of-order put error")
	}
	if err := st.Put(0, js[0], cs[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, js[1][:3], cs[1]); err == nil {
		t.Fatal("expected length-change error")
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, js[1], cs[1]); err == nil {
		t.Fatal("expected put-after-EndForward error")
	}
}

func TestAsyncStoreRoundTrip(t *testing.T) {
	jp, cp, js, cs := tensorFixture(30, 50, 16)
	for _, depth := range []int{1, 2, 8} {
		opt := masczip.Options{Workers: 2}
		st := NewCompressedStoreAsync(masczip.New(jp, opt), masczip.New(cp, opt), jp, cp, depth)
		if !st.Async() {
			t.Fatal("store not in async mode")
		}
		fillAndVerify(t, st, js, cs)
	}
}

func TestAsyncStoreMarkov(t *testing.T) {
	jp, cp, js, cs := tensorFixture(31, 60, 20)
	opt := masczip.Options{Markov: true, CalibEvery: 5, Workers: 4}
	st := NewCompressedStoreAsync(masczip.New(jp, opt), masczip.New(cp, opt), jp, cp, 3)
	fillAndVerify(t, st, js, cs)
}

// TestAsyncMatchesSyncBytes is the cross-mode equivalence invariant: the
// async pipeline performs exactly the sync sequence of Compress calls, so
// StoredBytes (and every fetched value) must be byte-identical.
func TestAsyncMatchesSyncBytes(t *testing.T) {
	jp, cp, js, cs := tensorFixture(32, 70, 25)
	mk := func(async bool) *CompressedStore {
		opt := masczip.Options{Markov: true, CalibEvery: 4}
		jc, cc := masczip.New(jp, opt), masczip.New(cp, opt)
		if async {
			return NewCompressedStoreAsync(jc, cc, jp, cp, 2)
		}
		return NewCompressedStore(jc, cc, jp, cp)
	}
	run := func(st *CompressedStore) (Stats, [][]float64) {
		var fetched [][]float64
		for i := range js {
			if err := st.Put(i, js[i], cs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.EndForward(); err != nil {
			t.Fatal(err)
		}
		for i := len(js) - 1; i >= 0; i-- {
			jv, cv, err := st.Fetch(i)
			if err != nil {
				t.Fatal(err)
			}
			fetched = append(fetched, append([]float64(nil), jv...), append([]float64(nil), cv...))
			if i < len(js)-1 {
				st.Release(i + 1)
			}
		}
		return st.Stats(), fetched
	}
	sStats, sVals := run(mk(false))
	aStats, aVals := run(mk(true))
	if sStats.StoredBytes != aStats.StoredBytes {
		t.Fatalf("StoredBytes diverge: sync %d, async %d", sStats.StoredBytes, aStats.StoredBytes)
	}
	if sStats.Steps != aStats.Steps || sStats.RawBytes != aStats.RawBytes {
		t.Fatalf("step accounting diverges: %+v vs %+v", sStats, aStats)
	}
	for k := range sVals {
		for i := range sVals[k] {
			if math.Float64bits(sVals[k][i]) != math.Float64bits(aVals[k][i]) {
				t.Fatalf("reverse-sweep values diverge at fetch %d index %d", k, i)
			}
		}
	}
}

func TestAsyncStoreValidation(t *testing.T) {
	jp, cp, js, cs := tensorFixture(33, 20, 3)
	opt := masczip.Options{}
	st := NewCompressedStoreAsync(masczip.New(jp, opt), masczip.New(cp, opt), jp, cp, 2)
	if err := st.Put(1, js[1], cs[1]); err == nil {
		t.Fatal("expected out-of-order put error")
	}
	if err := st.Put(0, js[0], cs[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, js[1][:3], cs[1]); err == nil {
		t.Fatal("expected length-change error")
	}
	if _, _, err := st.Fetch(0); err == nil {
		t.Fatal("expected Fetch-before-EndForward error")
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, js[1], cs[1]); err == nil {
		t.Fatal("expected put-after-EndForward error")
	}
	if _, _, err := st.Fetch(7); err == nil {
		t.Fatal("expected out-of-range fetch error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncWorkerErrorSurfaces forces a background compression panic (via
// a value-count change smuggled past Put's validation is impossible, so a
// poisoned codec stands in) and checks the error lands on a later Put or
// on EndForward — not as a panic on the solver thread.
func TestAsyncWorkerErrorSurfaces(t *testing.T) {
	jp, cp, js, cs := tensorFixture(34, 20, 6)
	jc := poisonCodec{Compressor: masczip.New(jp, masczip.Options{}), failOn: 2}
	st := NewCompressedStoreAsync(&jc, masczip.New(cp, masczip.Options{}), jp, cp, 1)
	var putErr error
	for i := range js {
		if putErr = st.Put(i, js[i], cs[i]); putErr != nil {
			break
		}
	}
	endErr := st.EndForward()
	if putErr == nil && endErr == nil {
		t.Fatal("background compression failure never surfaced")
	}
	if err := st.Close(); err == nil {
		t.Fatal("Close must report the pipeline error")
	}
}

// poisonCodec panics on its failOn-th Compress call.
type poisonCodec struct {
	compress.Compressor
	calls, failOn int
}

func (p *poisonCodec) Compress(dst []byte, cur, ref []float64) []byte {
	p.calls++
	if p.calls == p.failOn {
		panic("poisoned compress")
	}
	return p.Compressor.Compress(dst, cur, ref)
}

func TestAsyncCloseWithoutEndForward(t *testing.T) {
	jp, cp, js, cs := tensorFixture(35, 20, 4)
	opt := masczip.Options{}
	st := NewCompressedStoreAsync(masczip.New(jp, opt), masczip.New(cp, opt), jp, cp, 2)
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoning the run must shut the worker down cleanly.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncStallTimeAccounted(t *testing.T) {
	jp, cp, js, cs := tensorFixture(36, 80, 30)
	// slowCodec makes compression the bottleneck so the depth-1 queue
	// must stall the producer.
	jc := slowCodec{Compressor: masczip.New(jp, masczip.Options{}), delay: time.Millisecond}
	st := NewCompressedStoreAsync(&jc, masczip.New(cp, masczip.Options{}), jp, cp, 1)
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().StallTime <= 0 {
		t.Fatal("expected nonzero StallTime with a saturated queue")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// slowCodec adds a fixed delay to every Compress.
type slowCodec struct {
	compress.Compressor
	delay time.Duration
}

func (s *slowCodec) Compress(dst []byte, cur, ref []float64) []byte {
	time.Sleep(s.delay)
	return s.Compressor.Compress(dst, cur, ref)
}

func TestDiskStoreRoundTrip(t *testing.T) {
	_, _, js, cs := tensorFixture(8, 40, 10)
	st, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fillAndVerify(t, st, js, cs)
}

func TestDiskStoreThrottleAccounting(t *testing.T) {
	_, _, js, cs := tensorFixture(9, 40, 6)
	// 10 MB/s: small data, but the simulated time must register.
	st, err := NewDiskStore(t.TempDir(), 10e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	// Each step spills two blobframe records (J and C), each carrying a
	// fixed header on top of the raw payload.
	wantStored := stats.RawBytes + int64(stats.Steps*2*blobframe.HeaderSize)
	if stats.StoredBytes != wantStored {
		t.Fatalf("disk store stored %d, want raw+frames %d", stats.StoredBytes, wantStored)
	}
	wantMin := float64(stats.RawBytes) / 10e6
	if stats.IOTime.Seconds() < wantMin*0.9 {
		t.Fatalf("throttled IO time %v below the bandwidth model's %vs", stats.IOTime, wantMin)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreReleaseFrees(t *testing.T) {
	_, _, js, cs := tensorFixture(10, 20, 4)
	st := NewMemStore()
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	st.Release(2)
	if _, _, err := st.Fetch(2); err == nil {
		t.Fatal("expected error fetching a released step")
	}
	if _, _, err := st.Fetch(1); err != nil {
		t.Fatal(err)
	}
}

func TestTensorFileRoundTrip(t *testing.T) {
	jp, cp, js, cs := tensorFixture(42, 30, 7)
	var buf bytes.Buffer
	if err := WriteTensorFile(&buf, jp, cp, js, cs); err != nil {
		t.Fatal(err)
	}
	jp2, cp2, js2, cs2, err := ReadTensorFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if jp2.N != jp.N || jp2.NNZ() != jp.NNZ() || cp2.N != cp.N || cp2.NNZ() != cp.NNZ() {
		t.Fatal("pattern shape mismatch")
	}
	for i := range jp.ColIdx {
		if jp2.ColIdx[i] != jp.ColIdx[i] {
			t.Fatal("J pattern mismatch")
		}
	}
	if len(js2) != len(js) {
		t.Fatalf("step count %d, want %d", len(js2), len(js))
	}
	for s := range js {
		for k := range js[s] {
			if math.Float64bits(js2[s][k]) != math.Float64bits(js[s][k]) {
				t.Fatalf("J value mismatch at step %d", s)
			}
		}
		for k := range cs[s] {
			if math.Float64bits(cs2[s][k]) != math.Float64bits(cs[s][k]) {
				t.Fatalf("C value mismatch at step %d", s)
			}
		}
	}
}

func TestTensorFileErrors(t *testing.T) {
	jp, cp, js, cs := tensorFixture(43, 10, 3)
	var buf bytes.Buffer
	if err := WriteTensorFile(&buf, jp, cp, js, cs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, _, _, _, err := ReadTensorFile(bytes.NewReader(full[:10])); err == nil {
		t.Fatal("expected error on truncated header")
	}
	if _, _, _, _, err := ReadTensorFile(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Fatal("expected error on truncated payload")
	}
	bad := append([]byte("NOTMAGIC"), full[8:]...)
	if _, _, _, _, err := ReadTensorFile(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if err := WriteTensorFile(&buf, jp, cp, js, cs[:2]); err == nil {
		t.Fatal("expected error on mismatched step counts")
	}
}
