package jactensor

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"masc/internal/blobframe"
	"masc/internal/diskio"
	"masc/internal/faultinject"
	"masc/internal/obs"
)

// DiskStore spills every step to a (bandwidth-throttled) spill file — the
// "save Jacobians to disk" strategy the paper's Figure 7 shows losing to
// in-memory compression by ~6×. Each tensor is written as a blobframe
// record (versioned header + CRC32C), so a flipped bit on the device, a
// truncated write, or a read at the wrong offset surfaces as a typed,
// degradable corruption error at fetch time instead of silently wrong
// sensitivities.
type DiskStore struct {
	spill        *diskio.Store
	jOffs, cOffs []int64
	jLen, cLen   int
	forwardDone  bool
	quarantined  map[int]bool
	repJ, repC   map[int][]float64 // repaired plaintext, keyed by step
	stats        Stats
	scratch      []byte
	jBuf, cBuf   []float64
	fault        *faultinject.Injector
	ob           storeObs
}

// trackResident recomputes the resident-byte model — the streaming encode
// scratch plus the fetch buffers, the only state the spill store keeps in
// RAM — and folds it into the running peak, mirroring the accounting of
// MemStore and CompressedStore.
func (s *DiskStore) trackResident() {
	resident := int64(cap(s.scratch)) + int64(8*(len(s.jBuf)+len(s.cBuf)))
	if resident > s.stats.PeakResident {
		s.stats.PeakResident = resident
	}
	s.ob.observeResident(resident)
}

// NewDiskStore creates a spill-backed store. dir may be empty (temp dir);
// bytesPerSec of 0 disables the bandwidth model.
func NewDiskStore(dir string, bytesPerSec float64) (*DiskStore, error) {
	sp, err := diskio.Create(dir, bytesPerSec)
	if err != nil {
		return nil, err
	}
	return &DiskStore{
		spill:       sp,
		quarantined: map[int]bool{},
		repJ:        map[int][]float64{},
		repC:        map[int][]float64{},
	}, nil
}

// SetFault installs a fault injector. Blob corruption applies to framed
// records after sealing (modelling at-rest rot); op faults apply to the
// underlying spill device, where the retry policy fights them first.
func (s *DiskStore) SetFault(in *faultinject.Injector) {
	s.fault = in
	s.spill.SetFault(in)
}

// SetRetryPolicy forwards to the spill device.
func (s *DiskStore) SetRetryPolicy(p diskio.RetryPolicy) { s.spill.SetRetryPolicy(p) }

// SetContext forwards a cancellation context to the spill device's retry
// loop, so a canceled run is not held up by backoff against a dying disk.
func (s *DiskStore) SetContext(ctx context.Context) { s.spill.SetContext(ctx) }

// SyncSpill fsyncs the spill file. The run journal calls it before marking
// the steps referencing those spill bytes durable, ordering data ahead of
// the checkpoint record that points at it.
func (s *DiskStore) SyncSpill() error { return s.spill.Sync() }

// SpillPath exposes the spill file location for tests that damage it.
func (s *DiskStore) SpillPath() string { return s.spill.Path() }

// encode frames vals as a sealed blobframe record in the scratch buffer.
func (s *DiskStore) encode(vals []float64, kind byte, step int) []byte {
	need := blobframe.HeaderSize + 8*len(vals)
	if cap(s.scratch) < need {
		s.scratch = make([]byte, need)
	}
	buf := s.scratch[:need]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[blobframe.HeaderSize+8*i:], math.Float64bits(v))
	}
	blobframe.Seal(buf, kind, step)
	return buf
}

// Put implements Store.
func (s *DiskStore) Put(step int, jVals, cVals []float64) error {
	if s.forwardDone {
		return &StepError{Step: step, Op: "put", Err: errors.New("Put after EndForward")}
	}
	if step != len(s.jOffs) {
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, len(s.jOffs))
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
	}
	start := time.Now()
	write := func(vals []float64, kind byte, tensor string) (int64, error) {
		rec := s.encode(vals, kind, step)
		rec, _ = s.fault.MutateBlob(step, rec)
		off, err := s.spill.Append(rec)
		if err != nil {
			return 0, &StepError{Step: step, Op: "put", Tensor: tensor, Err: err}
		}
		return off, nil
	}
	off, err := write(jVals, 'J', "J")
	if err != nil {
		return err
	}
	s.jOffs = append(s.jOffs, off)
	off, err = write(cVals, 'C', "C")
	if err != nil {
		return err
	}
	s.cOffs = append(s.cOffs, off)
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.trackResident()
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(8 * (len(jVals) + len(cVals))))
	if s.ob.tr != nil || s.ob.ioSec != nil {
		d := time.Since(start)
		s.ob.ioSec.AddDuration(d)
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "put", Dur: d,
			Key: "bytes", N: int64(8 * (len(jVals) + len(cVals)))})
	}
	return nil
}

// EndForward implements Store.
func (s *DiskStore) EndForward() error {
	s.forwardDone = true
	s.stats.StoredBytes = s.spill.Size()
	s.trackResident()
	s.ob.storedBytes.Add(float64(s.stats.StoredBytes))
	return nil
}

// Fetch implements Store. Every record is verified against its frame
// (magic, kind, step, length, CRC32C) before decoding; verification or
// read failures quarantine the step and return a degradable *StepError.
func (s *DiskStore) Fetch(step int) ([]float64, []float64, error) {
	if !s.forwardDone {
		return nil, nil, &StepError{Step: step, Op: "fetch", Err: errors.New("Fetch before EndForward")}
	}
	if step < 0 || step >= len(s.jOffs) {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, len(s.jOffs))
	}
	if j, ok := s.repJ[step]; ok {
		s.ob.fetches.Inc()
		return j, s.repC[step], nil
	}
	if s.quarantined[step] {
		return nil, nil, corruptErr(step, "fetch", "", errors.New("step is quarantined"))
	}
	start := time.Now()
	if len(s.jBuf) != s.jLen {
		s.jBuf = make([]float64, s.jLen)
		s.cBuf = make([]float64, s.cLen)
	}
	read := func(dst []float64, off int64, kind byte, tensor string) error {
		need := blobframe.HeaderSize + 8*len(dst)
		if cap(s.scratch) < need {
			s.scratch = make([]byte, need)
		}
		raw := s.scratch[:need]
		if err := s.spill.ReadAt(raw, off); err != nil {
			// A read failure here (after retries) means the record cannot
			// be produced — degradable, like corruption.
			s.quarantined[step] = true
			s.stats.CorruptBlobs++
			s.ob.corrupt.Inc()
			return &StepError{Step: step, Op: "fetch", Tensor: tensor, Degradable: true, Err: err}
		}
		payload, err := blobframe.Open(raw, kind, step)
		if err != nil {
			s.quarantined[step] = true
			s.stats.CorruptBlobs++
			s.ob.corrupt.Inc()
			return corruptErr(step, "fetch", tensor, err)
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return nil
	}
	if err := read(s.jBuf, s.jOffs[step], 'J', "J"); err != nil {
		return nil, nil, err
	}
	if err := read(s.cBuf, s.cOffs[step], 'C', "C"); err != nil {
		return nil, nil, err
	}
	d := time.Since(start)
	s.stats.IOTime += d
	s.trackResident()
	s.ob.fetches.Inc()
	s.ob.ioSec.AddDuration(d)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "fetch", Dur: d,
			Key: "bytes", N: int64(8 * (s.jLen + s.cLen))})
	}
	return s.jBuf, s.cBuf, nil
}

// Repair implements Repairer: the recomputed plaintext shadows the damaged
// on-disk record for any later fetch of the step.
func (s *DiskStore) Repair(step int, jVals, cVals []float64) {
	if step < 0 || step >= len(s.jOffs) {
		return
	}
	s.repJ[step] = append([]float64(nil), jVals...)
	s.repC[step] = append([]float64(nil), cVals...)
	delete(s.quarantined, step)
	s.stats.Repairs++
}

// Release implements Store; the disk store reuses one fetch buffer, and
// drops any repaired plaintext for the step.
func (s *DiskStore) Release(step int) {
	delete(s.repJ, step)
	delete(s.repC, step)
}

// Stats implements Store.
func (s *DiskStore) Stats() Stats {
	st := s.stats
	st.IOTime = s.spill.IOTime()
	st.DiskRetries = s.spill.Retries()
	st.FsyncTime = s.spill.FsyncTime()
	st.Fsyncs = s.spill.Fsyncs()
	return st
}

// Close implements Store, removing the spill file. Idempotent, like the
// spill store underneath.
func (s *DiskStore) Close() error { return s.spill.Close() }
