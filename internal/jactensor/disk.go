package jactensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"masc/internal/diskio"
	"masc/internal/obs"
)

// DiskStore spills every step to a (bandwidth-throttled) spill file — the
// "save Jacobians to disk" strategy the paper's Figure 7 shows losing to
// in-memory compression by ~6×.
type DiskStore struct {
	spill        *diskio.Store
	jOffs, cOffs []int64
	jLen, cLen   int
	forwardDone  bool
	stats        Stats
	scratch      []byte
	jBuf, cBuf   []float64
	ob           storeObs
}

// trackResident recomputes the resident-byte model — the streaming encode
// scratch plus the fetch buffers, the only state the spill store keeps in
// RAM — and folds it into the running peak, mirroring the accounting of
// MemStore and CompressedStore.
func (s *DiskStore) trackResident() {
	resident := int64(cap(s.scratch)) + int64(8*(len(s.jBuf)+len(s.cBuf)))
	if resident > s.stats.PeakResident {
		s.stats.PeakResident = resident
	}
	s.ob.observeResident(resident)
}

// NewDiskStore creates a spill-backed store. dir may be empty (temp dir);
// bytesPerSec of 0 disables the bandwidth model.
func NewDiskStore(dir string, bytesPerSec float64) (*DiskStore, error) {
	sp, err := diskio.Create(dir, bytesPerSec)
	if err != nil {
		return nil, err
	}
	return &DiskStore{spill: sp}, nil
}

func (s *DiskStore) encode(vals []float64) []byte {
	need := 8 * len(vals)
	if cap(s.scratch) < need {
		s.scratch = make([]byte, need)
	}
	buf := s.scratch[:need]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// Put implements Store.
func (s *DiskStore) Put(step int, jVals, cVals []float64) error {
	if s.forwardDone {
		return fmt.Errorf("jactensor: Put after EndForward")
	}
	if step != len(s.jOffs) {
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, len(s.jOffs))
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
	}
	start := time.Now()
	off, err := s.spill.Append(s.encode(jVals))
	if err != nil {
		return err
	}
	s.jOffs = append(s.jOffs, off)
	off, err = s.spill.Append(s.encode(cVals))
	if err != nil {
		return err
	}
	s.cOffs = append(s.cOffs, off)
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.trackResident()
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(8 * (len(jVals) + len(cVals))))
	if s.ob.tr != nil || s.ob.ioSec != nil {
		d := time.Since(start)
		s.ob.ioSec.AddDuration(d)
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "put", Dur: d,
			Key: "bytes", N: int64(8 * (len(jVals) + len(cVals)))})
	}
	return nil
}

// EndForward implements Store.
func (s *DiskStore) EndForward() error {
	s.forwardDone = true
	s.stats.StoredBytes = s.spill.Size()
	s.trackResident()
	s.ob.storedBytes.Add(float64(s.stats.StoredBytes))
	return nil
}

// Fetch implements Store.
func (s *DiskStore) Fetch(step int) ([]float64, []float64, error) {
	if step < 0 || step >= len(s.jOffs) {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, len(s.jOffs))
	}
	start := time.Now()
	if len(s.jBuf) != s.jLen {
		s.jBuf = make([]float64, s.jLen)
		s.cBuf = make([]float64, s.cLen)
	}
	read := func(dst []float64, off int64) error {
		need := 8 * len(dst)
		if cap(s.scratch) < need {
			s.scratch = make([]byte, need)
		}
		raw := s.scratch[:need]
		if err := s.spill.ReadAt(raw, off); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		return nil
	}
	if err := read(s.jBuf, s.jOffs[step]); err != nil {
		return nil, nil, err
	}
	if err := read(s.cBuf, s.cOffs[step]); err != nil {
		return nil, nil, err
	}
	d := time.Since(start)
	s.stats.IOTime += d
	s.trackResident()
	s.ob.fetches.Inc()
	s.ob.ioSec.AddDuration(d)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "fetch", Dur: d,
			Key: "bytes", N: int64(8 * (s.jLen + s.cLen))})
	}
	return s.jBuf, s.cBuf, nil
}

// Release implements Store; the disk store reuses one fetch buffer.
func (s *DiskStore) Release(int) {}

// Stats implements Store.
func (s *DiskStore) Stats() Stats {
	st := s.stats
	st.IOTime = s.spill.IOTime()
	return st
}

// Close implements Store, removing the spill file.
func (s *DiskStore) Close() error { return s.spill.Close() }
