package jactensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/sparse"
	"masc/internal/tiersched"
)

// newTieredFixture builds a tiered store over masczip codecs with a
// deterministic injected clock and a bit-exact recompute hook backed by the
// fixture itself (standing in for adjoint.NewRecomputeSource).
func newTieredFixture(t *testing.T, jp, cp *sparse.Pattern, js, cs [][]float64, cfg TieredConfig) *TieredStore {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = tiersched.NewModel(tiersched.NewFakeClock(time.Microsecond))
	}
	if cfg.DiskDir == "" && !cfg.DisableDisk {
		cfg.DiskDir = t.TempDir()
	}
	st := NewTieredStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), cfg)
	st.SetRecompute(func(step int) ([]float64, []float64, error) {
		return js[step], cs[step], nil
	})
	return st
}

// TestTieredMatchesMemStore is the store-level half of the tier-equivalence
// property suite: for every budget on the ladder — unlimited, fractions of
// the measured all-RAM peak, and an absurdly tiny one that degrades to
// recompute — the tiered store must hand back the fixture bit-for-bit, with
// and without the spill rung and the prefetch. fillAndVerify does the
// bit-exact comparison.
func TestTieredMatchesMemStore(t *testing.T) {
	const n, steps = 60, 20
	jp, cp, js, cs := tensorFixture(60, n, steps)
	peak := int64(8 * (len(js[0]) + len(cs[0])) * steps) // the MemStore peak

	for _, budget := range []int64{0, peak / 2, peak / 4, peak / 8, 4 << 10} {
		for _, noDisk := range []bool{false, true} {
			for _, noPrefetch := range []bool{false, true} {
				name := fmt.Sprintf("budget=%d/disk=%v/prefetch=%v", budget, !noDisk, !noPrefetch)
				t.Run(name, func(t *testing.T) {
					st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{
						BudgetBytes:     budget,
						DisableDisk:     noDisk,
						DisablePrefetch: noPrefetch,
					})
					fillAndVerify(t, st, js, cs)
				})
			}
		}
	}
}

// TestTieredRandomAccess checks the contract the windowed sweep depends on:
// every step's blobs are self-contained, so fetch order is free — unlike
// the chained CompressedStore.
func TestTieredRandomAccess(t *testing.T) {
	jp, cp, js, cs := tensorFixture(61, 40, 16)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: 16 << 10})
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	order := rand.New(rand.NewSource(61)).Perm(len(js))
	for _, i := range order {
		jv, cv, err := st.Fetch(i)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		for k := range jv {
			if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
				t.Fatalf("step %d: J[%d] mismatch", i, k)
			}
		}
		for k := range cv {
			if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
				t.Fatalf("step %d: C[%d] mismatch", i, k)
			}
		}
		st.Release(i)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredAnchorsRespected pins the window-boundary contract: anchors are
// reported only after EndForward, include the head step, and — while the
// spill device lives — an anchor is never demoted onto the recompute rung,
// so a window's first fetch cannot trigger a deliberate recomputation.
func TestTieredAnchorsRespected(t *testing.T) {
	jp, cp, js, cs := tensorFixture(62, 40, 20)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: 8 << 10})
	st.SetAnchorEvery(5)
	if got := st.AnchorSteps(); got != nil {
		t.Fatalf("AnchorSteps before EndForward = %v, want nil", got)
	}
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	want := []int{5, 10, 15, 19}
	got := st.AnchorSteps()
	if len(got) != len(want) {
		t.Fatalf("AnchorSteps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnchorSteps = %v, want %v", got, want)
		}
	}
	for _, a := range []int{5, 10, 15} {
		if tier := st.steps[a].tier; tier == tiersched.Dropped {
			t.Fatalf("anchor %d landed on the recompute rung with a live spill device", a)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredAnchorStepsDivisibleLength: when the trajectory length is an
// exact multiple of the anchor spacing the head step is itself pinned, and
// AnchorSteps must still be strictly increasing — listing the head twice
// once degenerated the windowed engine's boundary split into empty windows
// with silently wrong sensitivities.
func TestTieredAnchorStepsDivisibleLength(t *testing.T) {
	jp, cp, js, cs := tensorFixture(64, 40, 21) // steps 0..20, head 20
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: 8 << 10})
	st.SetAnchorEvery(5) // 20 % 5 == 0: the head is a pinned step
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	want := []int{5, 10, 15, 20}
	got := st.AnchorSteps()
	if len(got) != len(want) {
		t.Fatalf("AnchorSteps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnchorSteps = %v, want %v", got, want)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredNoAnchorsMeansNilMenu: without SetAnchorEvery the boundary menu
// must stay nil so the windowed sweep falls back to arithmetic splits.
func TestTieredNoAnchorsMeansNilMenu(t *testing.T) {
	jp, cp, js, cs := tensorFixture(63, 30, 8)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{})
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if got := st.AnchorSteps(); got != nil {
		t.Fatalf("AnchorSteps = %v, want nil without anchors", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredDroppedWithoutHookDegrades: a deliberately dropped step with no
// recompute hook must surface as a degradable StepError (the adjoint
// sweep's recompute ladder handles it), never a silent wrong answer.
func TestTieredDroppedWithoutHookDegrades(t *testing.T) {
	jp, cp, js, cs := tensorFixture(64, 40, 12)
	st := NewTieredStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), TieredConfig{
		BudgetBytes: 4 << 10,
		DisableDisk: true,
		Model:       tiersched.NewModel(tiersched.NewFakeClock(time.Microsecond)),
	})
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().TierDroppedSteps == 0 {
		t.Fatal("tiny diskless budget dropped nothing")
	}
	var sawDegradable bool
	for i := len(js) - 1; i >= 0; i-- {
		_, _, err := st.Fetch(i)
		if err == nil {
			continue
		}
		var se *StepError
		if !errors.As(err, &se) || !se.Degradable {
			t.Fatalf("fetch %d: %v, want degradable StepError", i, err)
		}
		sawDegradable = true
	}
	if !sawDegradable {
		t.Fatal("no dropped step surfaced during the sweep")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredHotRotQuarantinesAtDemotion pins the laundering hazard: a hot
// frame that rots in RAM after its sidecar was recorded must be quarantined
// when the budget demotes it — re-encoding it would seal the rotted bytes
// under a fresh, valid blob CRC that the fetch path would then trust.
func TestTieredHotRotQuarantinesAtDemotion(t *testing.T) {
	jp, cp, js, cs := tensorFixture(65, 40, 12)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: 8 << 10})
	st.SetFault(faultinject.New(faultinject.Profile{Name: "rot", Seed: 7, BitFlipOneIn: 3}))
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().CorruptBlobs == 0 {
		t.Fatal("no rotted frame was quarantined during capture-side demotion")
	}
	// Every fetch either returns pristine bits or degrades loudly; then the
	// Repair path heals the quarantined steps like the other stores.
	for i := len(js) - 1; i >= 0; i-- {
		jv, cv, err := st.Fetch(i)
		if err != nil {
			var se *StepError
			if !errors.As(err, &se) || !se.Degradable {
				t.Fatalf("fetch %d: %v, want degradable StepError", i, err)
			}
			st.Repair(i, js[i], cs[i])
			if jv, cv, err = st.Fetch(i); err != nil {
				t.Fatalf("fetch %d after repair: %v", i, err)
			}
		}
		for k := range jv {
			if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
				t.Fatalf("step %d: J[%d] mismatch", i, k)
			}
		}
		for k := range cv {
			if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
				t.Fatalf("step %d: C[%d] mismatch", i, k)
			}
		}
		st.Release(i)
	}
	if st.Stats().Repairs == 0 {
		t.Fatal("no step went through the repair path")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredSpillFailureFallsBackToDrop: a spill device that hard-fails
// must degrade the demotion to a deliberate drop — the forward pass keeps
// going, and the reverse sweep recomputes.
func TestTieredSpillFailureFallsBackToDrop(t *testing.T) {
	jp, cp, js, cs := tensorFixture(66, 40, 14)
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: 6 << 10})
	// Fail every spill op with a long burst: retries are exhausted and the
	// device is declared dead.
	st.SetFault(faultinject.New(faultinject.Profile{Name: "eio", Seed: 3, FailOpEvery: 1, FailOpBurst: 1 << 20}))
	fillAndVerify(t, st, js, cs)
}

// TestTieredStatsAccounting sanity-checks the per-tier snapshot: tier steps
// partition the live steps, demotions happened under a binding budget, and
// the configured budget is echoed back for manifests.
func TestTieredStatsAccounting(t *testing.T) {
	jp, cp, js, cs := tensorFixture(67, 40, 16)
	const budget = 8 << 10
	st := newTieredFixture(t, jp, cp, js, cs, TieredConfig{BudgetBytes: budget})
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.BudgetBytes != budget {
		t.Fatalf("BudgetBytes = %d, want %d", stats.BudgetBytes, budget)
	}
	total := stats.TierHotSteps + stats.TierCompressedSteps + stats.TierDiskSteps + stats.TierDroppedSteps
	if total != len(js) {
		t.Fatalf("tier steps sum to %d, want %d (%+v)", total, len(js), stats)
	}
	if stats.TierDemotions == 0 {
		t.Fatal("binding budget recorded no demotions")
	}
	if stats.TierHotSteps == len(js) {
		t.Fatal("binding budget left every step hot")
	}
	for i := len(js) - 1; i >= 0; i-- {
		if _, _, err := st.Fetch(i); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		st.Release(i)
	}
	if got := st.Stats().TierPromotions; got == 0 {
		t.Fatal("reverse sweep recorded no promotions")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
