package jactensor

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"masc/internal/compress/chimpz"
	"masc/internal/compress/gzipz"
	"masc/internal/compress/masczip"
	"masc/internal/sparse"
)

// storePair builds a sync and an async store over fresh codec instances of
// the same profile, so both see identical compression state machines.
func storePair(rng *rand.Rand, jp, cp *sparse.Pattern, depth int) (*CompressedStore, *CompressedStore) {
	switch rng.Intn(3) {
	case 0:
		mo := masczip.Options{Workers: 1 + rng.Intn(3), Markov: rng.Intn(2) == 0, CalibEvery: 1 + rng.Intn(4)}
		return NewCompressedStore(masczip.New(jp, mo), masczip.New(cp, mo), jp, cp),
			NewCompressedStoreAsync(masczip.New(jp, mo), masczip.New(cp, mo), jp, cp, depth)
	case 1:
		return NewCompressedStore(chimpz.NewTemporal(), chimpz.NewTemporal(), jp, cp),
			NewCompressedStoreAsync(chimpz.NewTemporal(), chimpz.NewTemporal(), jp, cp, depth)
	default:
		return NewCompressedStore(gzipz.New(), gzipz.New(), jp, cp),
			NewCompressedStoreAsync(gzipz.New(), gzipz.New(), jp, cp, depth)
	}
}

// TestSyncAsyncEquivalence is the pipeline-equivalence property test: under
// random codecs, queue depths and scheduling perturbations, the async store
// must be observationally identical to the sync store — byte-identical blob
// sequences, identical step accounting, and bit-identical fetches.
func TestSyncAsyncEquivalence(t *testing.T) {
	for trial := 0; trial < 24; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			n := 4 + rng.Intn(12)
			steps := 1 + rng.Intn(40)
			jp, cp, js, cs := tensorFixture(int64(trial), n, steps)
			depth := 1 + rng.Intn(4)
			sync, async := storePair(rng, jp, cp, depth)
			defer sync.Close()
			defer async.Close()

			for s := 0; s < steps; s++ {
				if err := sync.Put(s, js[s], cs[s]); err != nil {
					t.Fatalf("sync put %d: %v", s, err)
				}
				if err := async.Put(s, js[s], cs[s]); err != nil {
					t.Fatalf("async put %d: %v", s, err)
				}
				// Perturb the pipeline's interleaving: yields, sleeps, and
				// premature fetches (which must fail without disturbing the
				// forward state).
				switch rng.Intn(8) {
				case 0:
					runtime.Gosched()
				case 1:
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				case 2:
					if _, _, err := async.Fetch(0); err == nil {
						t.Fatal("async Fetch before EndForward must fail")
					}
				}
			}
			if err := sync.EndForward(); err != nil {
				t.Fatalf("sync EndForward: %v", err)
			}
			if err := async.EndForward(); err != nil {
				t.Fatalf("async EndForward: %v", err)
			}

			if len(sync.jBlobs) != len(async.jBlobs) || len(sync.cBlobs) != len(async.cBlobs) {
				t.Fatalf("blob counts diverge: sync %d/%d async %d/%d",
					len(sync.jBlobs), len(sync.cBlobs), len(async.jBlobs), len(async.cBlobs))
			}
			for i := range sync.jBlobs {
				if !bytes.Equal(sync.jBlobs[i], async.jBlobs[i]) {
					t.Fatalf("J blob %d differs (%d vs %d bytes)", i, len(sync.jBlobs[i]), len(async.jBlobs[i]))
				}
				if !bytes.Equal(sync.cBlobs[i], async.cBlobs[i]) {
					t.Fatalf("C blob %d differs (%d vs %d bytes)", i, len(sync.cBlobs[i]), len(async.cBlobs[i]))
				}
			}
			ss, as := sync.Stats(), async.Stats()
			if ss.Steps != as.Steps || ss.RawBytes != as.RawBytes || ss.StoredBytes != as.StoredBytes {
				t.Fatalf("stats diverge: sync {steps %d raw %d stored %d} vs async {steps %d raw %d stored %d}",
					ss.Steps, ss.RawBytes, ss.StoredBytes, as.Steps, as.RawBytes, as.StoredBytes)
			}

			// Reverse sweep: every fetch bit-identical to the original values
			// from both stores.
			for i := steps - 1; i >= 0; i-- {
				jw, cw, err := sync.Fetch(i)
				if err != nil {
					t.Fatalf("sync fetch %d: %v", i, err)
				}
				ja, ca, err := async.Fetch(i)
				if err != nil {
					t.Fatalf("async fetch %d: %v", i, err)
				}
				for k := range jw {
					if math.Float64bits(jw[k]) != math.Float64bits(js[i][k]) ||
						math.Float64bits(ja[k]) != math.Float64bits(js[i][k]) {
						t.Fatalf("step %d J[%d] corrupted", i, k)
					}
				}
				for k := range cw {
					if math.Float64bits(cw[k]) != math.Float64bits(cs[i][k]) ||
						math.Float64bits(ca[k]) != math.Float64bits(cs[i][k]) {
						t.Fatalf("step %d C[%d] corrupted", i, k)
					}
				}
				if i < steps-1 {
					sync.Release(i + 1)
					async.Release(i + 1)
				}
			}
		})
	}
}

// TestAsyncEarlyClose closes the async store at every forward progress
// point without EndForward: the pipeline must drain cleanly, Close must be
// idempotent, and no in-flight job may deadlock or panic the process.
func TestAsyncEarlyClose(t *testing.T) {
	jp, cp, js, cs := tensorFixture(5, 8, 12)
	for k := 0; k <= len(js); k++ {
		st := NewCompressedStoreAsync(chimpz.NewTemporal(), chimpz.NewTemporal(), jp, cp, 2)
		for s := 0; s < k; s++ {
			if err := st.Put(s, js[s], cs[s]); err != nil {
				t.Fatalf("close-at-%d: put %d: %v", k, s, err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close-at-%d: %v", k, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close-at-%d: second Close: %v", k, err)
		}
		if err := st.Put(k, js[0], cs[0]); err == nil {
			t.Fatalf("close-at-%d: Put after Close must fail", k)
		}
	}
}

// TestAsyncWorkerErrorEveryPosition injects a panic into the k-th
// background compression for every early queue position: some later Put or
// EndForward must return the failure, Close must report it too, and the
// worker goroutine must still shut down.
func TestAsyncWorkerErrorEveryPosition(t *testing.T) {
	jp, cp, js, cs := tensorFixture(9, 8, 20)
	for k := 1; k <= 6; k++ {
		st := NewCompressedStoreAsync(&poisonCodec{Compressor: gzipz.New(), failOn: k}, gzipz.New(), jp, cp, 2)
		var err error
		for s := 0; s < len(js); s++ {
			if err = st.Put(s, js[s], cs[s]); err != nil {
				break
			}
		}
		if err == nil {
			err = st.EndForward()
		}
		var se *StepError
		if err == nil || !errors.As(err, &se) {
			t.Fatalf("k=%d: injected worker failure did not surface as *StepError: %v", k, err)
		}
		if se.Step != k-1 || !strings.Contains(se.Error(), "panic") {
			t.Fatalf("k=%d: failure does not name the poisoned step: %v", k, err)
		}
		if cerr := st.Close(); cerr == nil {
			t.Fatalf("k=%d: Close must report the recorded failure", k)
		}
	}
}
