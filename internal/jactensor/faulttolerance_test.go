package jactensor

import (
	"errors"
	"math"
	"os"
	"testing"

	"masc/internal/blobframe"
	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/sparse"
)

// faultCase describes one store kind plus a way to damage one stored step
// after the forward pass completed.
type faultCase struct {
	name    string
	mk      func(t *testing.T) Store
	corrupt func(t *testing.T, st Store, step int)
}

func allStoreFaultCases(jp *patternPair) []faultCase {
	mkCompressed := func(async bool) func(t *testing.T) Store {
		return func(t *testing.T) Store {
			opt := masczip.Options{}
			jc, cc := masczip.New(jp.j, opt), masczip.New(jp.c, opt)
			if async {
				return NewCompressedStoreAsync(jc, cc, jp.j, jp.c, 2)
			}
			return NewCompressedStore(jc, cc, jp.j, jp.c)
		}
	}
	flipBlob := func(t *testing.T, st Store, step int) {
		cs := st.(*CompressedStore)
		cs.mu.Lock()
		cs.jBlobs[step][len(cs.jBlobs[step])/2] ^= 0x10
		cs.mu.Unlock()
	}
	return []faultCase{
		{
			name: "mem-bitflip-J",
			mk:   func(t *testing.T) Store { return NewMemStore() },
			corrupt: func(t *testing.T, st Store, step int) {
				blobframe.FlipBit(st.(*MemStore).j[step], 0, 13)
			},
		},
		{
			name: "mem-bitflip-C",
			mk:   func(t *testing.T) Store { return NewMemStore() },
			corrupt: func(t *testing.T, st Store, step int) {
				ms := st.(*MemStore)
				blobframe.FlipBit(ms.c[step], len(ms.c[step])-1, 51)
			},
		},
		{
			name: "disk-bitflip",
			mk: func(t *testing.T) Store {
				st, err := NewDiskStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			corrupt: func(t *testing.T, st Store, step int) {
				ds := st.(*DiskStore)
				f, err := os.OpenFile(ds.SpillPath(), os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				// Flip one payload byte of the step's J record on disk.
				if _, err := f.WriteAt([]byte{0xFF}, ds.jOffs[step]+blobframe.HeaderSize+2); err != nil {
					t.Fatal(err)
				}
			},
		},
		{name: "compressed-sync-bitflip", mk: mkCompressed(false), corrupt: flipBlob},
		{name: "compressed-async-bitflip", mk: mkCompressed(true), corrupt: flipBlob},
		{
			name: "compressed-sync-truncated",
			mk:   mkCompressed(false),
			corrupt: func(t *testing.T, st Store, step int) {
				cs := st.(*CompressedStore)
				cs.cBlobs[step] = cs.cBlobs[step][:len(cs.cBlobs[step])-3]
			},
		},
	}
}

// patternPair keeps the fixture's two sparsity patterns together.
type patternPair struct{ j, c *sparse.Pattern }

func TestFetchBeforeEndForwardAllStores(t *testing.T) {
	jp, cp, js, cs := tensorFixture(77, 20, 4)
	for _, fc := range allStoreFaultCases(&patternPair{jp, cp}) {
		t.Run(fc.name, func(t *testing.T) {
			st := fc.mk(t)
			defer st.Close()
			for i := range js {
				if err := st.Put(i, js[i], cs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, err := st.Fetch(len(js) - 1); err == nil {
				t.Fatal("Fetch before EndForward must fail")
			}
		})
	}
}

// TestCorruptStepDegradesAndRepairs is the heart of the degradation
// contract, table-driven across all three store kinds: after the forward
// pass, one step's stored bytes are damaged. The reverse sweep must (1)
// fail that step's fetch with a degradable *StepError naming the step, (2)
// keep failing while quarantined, (3) accept recomputed plaintext via
// Repair, and (4) deliver every remaining step bit-identically — including
// the steps below the damaged one, whose decompression chains through the
// repaired plaintext.
func TestCorruptStepDegradesAndRepairs(t *testing.T) {
	jp, cp, js, cs := tensorFixture(78, 30, 10)
	const bad = 4
	for _, fc := range allStoreFaultCases(&patternPair{jp, cp}) {
		t.Run(fc.name, func(t *testing.T) {
			st := fc.mk(t)
			defer st.Close()
			for i := range js {
				if err := st.Put(i, js[i], cs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.EndForward(); err != nil {
				t.Fatal(err)
			}
			fc.corrupt(t, st, bad)

			for i := len(js) - 1; i >= 0; i-- {
				jv, cv, err := st.Fetch(i)
				if i == bad {
					var se *StepError
					if err == nil || !errors.As(err, &se) {
						t.Fatalf("corrupt step fetch returned %v, want *StepError", err)
					}
					if !se.Degradable || se.Step != bad || se.FailedStep() != bad {
						t.Fatalf("error not degradable at step %d: %+v", bad, se)
					}
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("corruption not classified ErrCorrupt: %v", err)
					}
					// Still quarantined until repaired.
					if _, _, err2 := st.Fetch(bad); err2 == nil {
						t.Fatal("quarantined step must keep failing before Repair")
					}
					st.(Repairer).Repair(bad, js[bad], cs[bad])
					jv, cv, err = st.Fetch(bad)
				}
				if err != nil {
					t.Fatalf("fetch %d: %v", i, err)
				}
				for k := range jv {
					if math.Float64bits(jv[k]) != math.Float64bits(js[i][k]) {
						t.Fatalf("step %d: J[%d] not bit-identical after degradation", i, k)
					}
				}
				for k := range cv {
					if math.Float64bits(cv[k]) != math.Float64bits(cs[i][k]) {
						t.Fatalf("step %d: C[%d] not bit-identical after degradation", i, k)
					}
				}
				if i < len(js)-1 {
					st.Release(i + 1)
				}
			}
			stats := st.Stats()
			if stats.CorruptBlobs < 1 {
				t.Fatalf("CorruptBlobs = %d, want ≥ 1", stats.CorruptBlobs)
			}
			if stats.Repairs != 1 {
				t.Fatalf("Repairs = %d, want 1", stats.Repairs)
			}
		})
	}
}

// TestDiskStoreTruncatedSpill models a spill file cut short (crash, full
// disk): the last step's fetch must degrade with a typed error, and Repair
// must restore the sweep.
func TestDiskStoreTruncatedSpill(t *testing.T) {
	_, _, js, cs := tensorFixture(79, 20, 6)
	st, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	// Chop the tail: the last step's C record (and part of its J record)
	// are gone.
	if err := os.Truncate(st.SpillPath(), st.jOffs[len(js)-1]+8); err != nil {
		t.Fatal(err)
	}
	last := len(js) - 1
	_, _, err = st.Fetch(last)
	var se *StepError
	if err == nil || !errors.As(err, &se) || !se.Degradable || se.Step != last {
		t.Fatalf("truncated spill fetch: %v, want degradable *StepError for step %d", err, last)
	}
	st.Repair(last, js[last], cs[last])
	for i := last; i >= 0; i-- {
		jv, _, err := st.Fetch(i)
		if err != nil {
			t.Fatalf("fetch %d after repair: %v", i, err)
		}
		if math.Float64bits(jv[0]) != math.Float64bits(js[i][0]) {
			t.Fatalf("step %d J[0] mismatch after repair", i)
		}
	}
}

// TestInjectedPanicAtStepNamesStep drives the injector end-to-end through
// the async pipeline: a worker panic at step k must surface as a typed
// error naming k from a later Put/EndForward, and again from Close.
func TestInjectedPanicAtStepNamesStep(t *testing.T) {
	jp, cp, js, cs := tensorFixture(80, 20, 12)
	for _, k := range []int{1, 3, 7} {
		st := NewCompressedStoreAsync(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp, 2)
		st.SetFault(faultinject.New(faultinject.Profile{Seed: 1, PanicAtStep: k}))
		var err error
		for i := range js {
			if err = st.Put(i, js[i], cs[i]); err != nil {
				break
			}
		}
		if err == nil {
			err = st.EndForward()
		}
		var se *StepError
		if err == nil || !errors.As(err, &se) || se.Step != k {
			t.Fatalf("k=%d: want *StepError naming the step, got %v", k, err)
		}
		if cerr := st.Close(); cerr == nil {
			t.Fatalf("k=%d: Close must report the failure", k)
		}
	}
}

// TestInjectedBitRotAllBlobs turns every stored blob bad via the injector:
// the first non-resident fetch must fail loudly (never silently wrong).
func TestInjectedBitRotAllBlobs(t *testing.T) {
	jp, cp, js, cs := tensorFixture(81, 20, 8)
	st := NewCompressedStore(masczip.New(jp, masczip.Options{}), masczip.New(cp, masczip.Options{}), jp, cp)
	st.SetFault(faultinject.New(faultinject.Profile{Seed: 2, BitFlipOneIn: 1}))
	for i := range js {
		if err := st.Put(i, js[i], cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	last := len(js) - 1
	if _, _, err := st.Fetch(last); err != nil {
		t.Fatal(err) // chain head is resident plaintext, unaffected
	}
	if _, _, err := st.Fetch(last - 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("universal bit rot must surface as ErrCorrupt, got %v", err)
	}
	if st.Stats().CorruptBlobs < 1 {
		t.Fatal("corruption not counted")
	}
}
