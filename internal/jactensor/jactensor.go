// Package jactensor manages the Jacobian tensor — the sequence of J and C
// matrices produced by forward integration and consumed in reverse by the
// adjoint sweep. It provides the four storage strategies the MASC paper
// compares: raw in-memory, disk spill, compressed in-memory (MASC or any
// baseline codec), and — via the adjoint package — full recomputation.
package jactensor

import (
	"errors"
	"fmt"
	"time"

	"masc/internal/blobframe"
	"masc/internal/faultinject"
)

// ErrOutOfOrder reports a Fetch that violates the reverse-sequential
// contract of a chained (compressed) store.
var ErrOutOfOrder = errors.New("jactensor: compressed store must be fetched in reverse step order")

// Stats describes a store's footprint and time costs.
type Stats struct {
	Steps          int
	RawBytes       int64 // total uncompressed payload (the paper's S_NZ)
	StoredBytes    int64 // bytes held by the store after EndForward
	PeakResident   int64 // peak resident memory bytes during the run
	CompressTime   time.Duration
	DecompressTime time.Duration
	IOTime         time.Duration
	// StallTime is the solver-visible time Put spent blocked on a full
	// compression queue (async stores only): the residue of compression
	// cost that the pipeline failed to hide behind the solve.
	StallTime time.Duration
	// CorruptBlobs counts fetches that failed integrity verification and
	// were quarantined; Repairs counts quarantined steps later healed with
	// recomputed plaintext.
	CorruptBlobs int
	Repairs      int
	// DiskRetries counts transient spill-I/O attempts absorbed by the
	// retry policy (disk store only).
	DiskRetries int64
	// FsyncTime is the cumulative wall time spent fsync'ing spill files via
	// SyncSpill (disk and tiered stores); Fsyncs counts those calls. Both are
	// zero unless a run journal is forcing spill durability.
	FsyncTime time.Duration
	Fsyncs    int64
	// AnchorBytes is the plaintext bytes currently retained as window
	// anchor frames (compressed store with SetAnchorEvery). Anchors count
	// toward PeakResident: they are real resident memory the windowed
	// sweep pays for.
	AnchorBytes int64

	// Tiered-store placement accounting (TieredStore only). The per-tier
	// step/byte gauges snapshot the live placement at the last Stats or
	// EndForward call; the counters accumulate over the run. BudgetBytes
	// echoes the configured budget (0 = unlimited) so manifests record the
	// constraint PeakResident was held to.
	BudgetBytes         int64
	TierHotSteps        int
	TierCompressedSteps int
	TierDiskSteps       int
	TierDroppedSteps    int
	TierHotBytes        int64
	TierCompressedBytes int64
	TierDiskBytes       int64
	// TierDemotions counts steps pushed down the ladder under budget
	// pressure; TierPromotions counts re-materializations during the
	// reverse sweep; TierRecomputes counts deliberately-dropped steps
	// re-derived from the trajectory (distinct from Repairs, which heal
	// corruption).
	TierDemotions  int64
	TierPromotions int64
	TierRecomputes int64
}

// Store retains per-step (J values, C values) pairs written forward and
// read back in reverse. All implementations also satisfy the adjoint
// package's JacobianSource interface.
type Store interface {
	// Put records step i's tensors. Steps arrive in increasing order
	// starting at 0. The slices are owned by the caller and copied.
	Put(step int, jVals, cVals []float64) error
	// EndForward marks the end of forward integration; it must be called
	// before the first Fetch.
	EndForward() error
	// Fetch returns step i's tensors. Compressed stores require strictly
	// decreasing fetch order from the last step down to 0.
	Fetch(step int) (jVals, cVals []float64, err error)
	// Release declares step i dead; stores may free its memory.
	Release(step int)
	Stats() Stats
	Close() error
}

// MemStore keeps every step uncompressed in memory — the fastest and most
// memory-hungry strategy (the paper's Figure 1 overhead). Each stored slice
// carries a CRC32C sidecar computed at Put and verified at Fetch, so in-RAM
// bit rot (or a fault injector standing in for it) is detected instead of
// silently propagated into the sensitivities.
type MemStore struct {
	j, c         [][]float64
	jSums, cSums []uint32
	forwardDone  bool
	quarantined  map[int]bool
	stats        Stats
	resident     int64
	fault        *faultinject.Injector
	ob           storeObs
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{quarantined: map[int]bool{}} }

// SetFault installs a fault injector that corrupts stored tensors after
// their checksums are recorded. nil injects nothing.
func (s *MemStore) SetFault(in *faultinject.Injector) { s.fault = in }

// bumpResident adjusts the resident-byte model and its running peak —
// the same accounting CompressedStore and DiskStore use, so PeakResident
// is comparable across the three strategies.
func (s *MemStore) bumpResident(delta int64) {
	s.resident += delta
	if s.resident > s.stats.PeakResident {
		s.stats.PeakResident = s.resident
	}
	s.ob.observeResident(s.resident)
}

// Put implements Store.
func (s *MemStore) Put(step int, jVals, cVals []float64) error {
	if s.forwardDone {
		return &StepError{Step: step, Op: "put", Err: errors.New("Put after EndForward")}
	}
	if step != len(s.j) {
		return fmt.Errorf("jactensor: put step %d out of order (have %d)", step, len(s.j))
	}
	jCopy := append([]float64(nil), jVals...)
	cCopy := append([]float64(nil), cVals...)
	s.jSums = append(s.jSums, blobframe.ChecksumFloat64(jCopy))
	s.cSums = append(s.cSums, blobframe.ChecksumFloat64(cCopy))
	// Fault injection models bit rot that happens after the checksum was
	// recorded — exactly the window the sidecar exists to cover.
	s.fault.MutateFloats(step, jCopy)
	s.fault.MutateFloats(step, cCopy)
	s.j = append(s.j, jCopy)
	s.c = append(s.c, cCopy)
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.bumpResident(int64(8 * (len(jVals) + len(cVals))))
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(8 * (len(jVals) + len(cVals))))
	return nil
}

// EndForward implements Store.
func (s *MemStore) EndForward() error {
	s.forwardDone = true
	s.stats.StoredBytes = s.stats.RawBytes
	s.ob.storedBytes.Add(float64(s.stats.StoredBytes))
	return nil
}

// Fetch implements Store. Each fetch re-verifies the step's CRC32C sidecar;
// a mismatch quarantines the step and returns a degradable *StepError so
// the adjoint sweep can fall back to recomputation.
func (s *MemStore) Fetch(step int) ([]float64, []float64, error) {
	if !s.forwardDone {
		return nil, nil, &StepError{Step: step, Op: "fetch", Err: errors.New("Fetch before EndForward")}
	}
	if step < 0 || step >= len(s.j) {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, len(s.j))
	}
	if s.j[step] == nil {
		return nil, nil, fmt.Errorf("jactensor: step %d already released", step)
	}
	if s.quarantined[step] {
		return nil, nil, corruptErr(step, "fetch", "", errors.New("step is quarantined"))
	}
	if got := blobframe.ChecksumFloat64(s.j[step]); got != s.jSums[step] {
		return nil, nil, s.quarantine(step, "J", got, s.jSums[step])
	}
	if got := blobframe.ChecksumFloat64(s.c[step]); got != s.cSums[step] {
		return nil, nil, s.quarantine(step, "C", got, s.cSums[step])
	}
	s.ob.fetches.Inc()
	return s.j[step], s.c[step], nil
}

// quarantine marks a step corrupt, counts it, and builds the typed error.
func (s *MemStore) quarantine(step int, tensor string, got, want uint32) error {
	s.quarantined[step] = true
	s.stats.CorruptBlobs++
	s.ob.corrupt.Inc()
	return corruptErr(step, "fetch", tensor,
		fmt.Errorf("checksum %#08x, want %#08x", got, want))
}

// Repair implements Repairer: it installs recomputed plaintext for a
// quarantined step and refreshes the sidecar.
func (s *MemStore) Repair(step int, jVals, cVals []float64) {
	if step < 0 || step >= len(s.j) {
		return
	}
	s.j[step] = append([]float64(nil), jVals...)
	s.c[step] = append([]float64(nil), cVals...)
	s.jSums[step] = blobframe.ChecksumFloat64(s.j[step])
	s.cSums[step] = blobframe.ChecksumFloat64(s.c[step])
	delete(s.quarantined, step)
	s.stats.Repairs++
}

// Release implements Store.
func (s *MemStore) Release(step int) {
	if step >= 0 && step < len(s.j) {
		if s.j[step] != nil {
			s.bumpResident(-int64(8 * (len(s.j[step]) + len(s.c[step]))))
		}
		s.j[step] = nil
		s.c[step] = nil
	}
}

// Stats implements Store.
func (s *MemStore) Stats() Stats { return s.stats }

// Close implements Store.
func (s *MemStore) Close() error {
	s.j, s.c = nil, nil
	return nil
}
