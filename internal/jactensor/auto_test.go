package jactensor

import (
	"math"
	"testing"

	"masc/internal/compress"
	"masc/internal/compress/gzipz"
	"masc/internal/compress/masczip"
	"masc/internal/compress/spicemate"
)

func TestAutoStoreCommitsByteIdenticalToDirect(t *testing.T) {
	jp, cp, js, cs := tensorFixture(7, 8, 30)
	mo := masczip.Options{Workers: 2}
	cands := []AutoCandidate{{
		Name: "masc",
		New: func() (compress.Compressor, compress.Compressor) {
			return masczip.New(jp, mo), masczip.New(cp, mo)
		},
	}}

	auto, err := NewAutoStore(AutoConfig{Candidates: cands, TrialSteps: 8, JPat: jp, CPat: cp})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	direct := NewCompressedStore(masczip.New(jp, mo), masczip.New(cp, mo), jp, cp)
	defer direct.Close()

	for s := range js {
		if err := auto.Put(s, js[s], cs[s]); err != nil {
			t.Fatalf("auto put %d: %v", s, err)
		}
		if err := direct.Put(s, js[s], cs[s]); err != nil {
			t.Fatalf("direct put %d: %v", s, err)
		}
	}
	if err := auto.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := direct.EndForward(); err != nil {
		t.Fatal(err)
	}

	name, trials, ok := auto.Selected()
	if !ok || name != "masc" || len(trials) != 1 {
		t.Fatalf("Selected() = %q, %d trials, ok=%v; want masc/1/true", name, len(trials), ok)
	}

	// The committed store must hold the byte stream of a run that used the
	// winner from step 0: the trial must not leak codec state into it.
	as, ds := auto.Stats(), direct.Stats()
	if as.StoredBytes != ds.StoredBytes || as.Steps != ds.Steps {
		t.Fatalf("auto stored %d B / %d steps, direct %d B / %d steps",
			as.StoredBytes, as.Steps, ds.StoredBytes, ds.Steps)
	}

	for s := len(js) - 1; s >= 0; s-- {
		aj, ac, err := auto.Fetch(s)
		if err != nil {
			t.Fatalf("auto fetch %d: %v", s, err)
		}
		dj, dc, err := direct.Fetch(s)
		if err != nil {
			t.Fatalf("direct fetch %d: %v", s, err)
		}
		for i := range aj {
			if math.Float64bits(aj[i]) != math.Float64bits(dj[i]) {
				t.Fatalf("step %d J[%d]: auto %x vs direct %x", s, i,
					math.Float64bits(aj[i]), math.Float64bits(dj[i]))
			}
		}
		for i := range ac {
			if math.Float64bits(ac[i]) != math.Float64bits(dc[i]) {
				t.Fatalf("step %d C[%d]: auto %x vs direct %x", s, i,
					math.Float64bits(ac[i]), math.Float64bits(dc[i]))
			}
		}
		// The reverse-order contract: step s+1 must stay resident while s
		// decompresses against it, so the release trails by one.
		if s+1 < len(js) {
			auto.Release(s + 1)
			direct.Release(s + 1)
		}
	}
}

func TestAutoStoreShortRunCommitsAtEndForward(t *testing.T) {
	jp, cp, js, cs := tensorFixture(11, 6, 3) // 3 steps < TrialSteps=8
	mo := masczip.Options{}
	auto, err := NewAutoStore(AutoConfig{
		Candidates: []AutoCandidate{{
			Name: "masc",
			New: func() (compress.Compressor, compress.Compressor) {
				return masczip.New(jp, mo), masczip.New(cp, mo)
			},
		}},
		JPat: jp, CPat: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()

	for s := range js {
		if err := auto.Put(s, js[s], cs[s]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := auto.Selected(); ok {
		t.Fatal("selection committed before EndForward on a short run")
	}
	if _, _, err := auto.Fetch(0); err == nil {
		t.Fatal("Fetch before EndForward must fail")
	}
	if err := auto.EndForward(); err != nil {
		t.Fatal(err)
	}
	if name, _, ok := auto.Selected(); !ok || name != "masc" {
		t.Fatalf("short run Selected() = %q, ok=%v", name, ok)
	}
	j, _, err := auto.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range j {
		if math.Float64bits(j[i]) != math.Float64bits(js[2][i]) {
			t.Fatalf("J[%d] = %x, want %x", i, math.Float64bits(j[i]), math.Float64bits(js[2][i]))
		}
	}
}

func TestAutoStoreNeverCommitsLossy(t *testing.T) {
	jp, cp, js, cs := tensorFixture(13, 6, 12)
	auto, err := NewAutoStore(AutoConfig{
		Candidates: []AutoCandidate{
			{Name: "gzip", New: func() (compress.Compressor, compress.Compressor) {
				return gzipz.New(), gzipz.New()
			}},
			{Name: "spicemate", New: func() (compress.Compressor, compress.Compressor) {
				return spicemate.New(), spicemate.New()
			}},
		},
		TrialSteps: 4, JPat: jp, CPat: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	for s := range js {
		if err := auto.Put(s, js[s], cs[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := auto.EndForward(); err != nil {
		t.Fatal(err)
	}
	name, trials, ok := auto.Selected()
	if !ok || name != "gzip" {
		t.Fatalf("Selected() = %q, ok=%v; lossy spicemate must never win", name, ok)
	}
	// The lossy candidate is still on the scoreboard.
	if len(trials) != 2 || trials[1].Name != "spicemate" || trials[1].Committable {
		t.Fatalf("trials = %+v; want spicemate present and not committable", trials)
	}
	// Everything round-trips bit-exact through the lossless winner.
	j, _, err := auto.Fetch(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range j {
		if math.Float64bits(j[i]) != math.Float64bits(js[11][i]) {
			t.Fatalf("lossy leak: J[%d] = %x, want %x", i,
				math.Float64bits(j[i]), math.Float64bits(js[11][i]))
		}
	}
}

func TestAutoStoreAllLossyErrors(t *testing.T) {
	jp, cp, js, cs := tensorFixture(17, 4, 6)
	auto, err := NewAutoStore(AutoConfig{
		Candidates: []AutoCandidate{
			{Name: "spicemate", New: func() (compress.Compressor, compress.Compressor) {
				return spicemate.New(), spicemate.New()
			}},
		},
		TrialSteps: 2, JPat: jp, CPat: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	var commitErr error
	for s := range js {
		if commitErr = auto.Put(s, js[s], cs[s]); commitErr != nil {
			break
		}
	}
	if commitErr == nil {
		t.Fatal("an all-lossy menu must refuse to commit")
	}
}

func TestAutoStoreAnchorsAndSlices(t *testing.T) {
	jp, cp, js, cs := tensorFixture(19, 6, 24)
	mo := masczip.Options{}
	auto, err := NewAutoStore(AutoConfig{
		Candidates: []AutoCandidate{{
			Name: "masc",
			New: func() (compress.Compressor, compress.Compressor) {
				return masczip.New(jp, mo), masczip.New(cp, mo)
			},
		}},
		TrialSteps: 4, JPat: jp, CPat: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	auto.SetAnchorEvery(6)
	for s := range js {
		if err := auto.Put(s, js[s], cs[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := auto.EndForward(); err != nil {
		t.Fatal(err)
	}
	anchors := auto.AnchorSteps()
	if len(anchors) < 3 {
		t.Fatalf("AnchorSteps() = %v, want ≥3 anchors with cadence 6 over 24 steps", anchors)
	}
	lo, hi := anchors[1], anchors[2]
	sl, err := auto.Slice(lo, hi)
	if err != nil {
		t.Fatalf("Slice(%d,%d): %v", lo, hi, err)
	}
	for s := hi; s >= lo; s-- {
		j, _, err := sl.Fetch(s)
		if err != nil {
			t.Fatalf("slice fetch %d: %v", s, err)
		}
		for i := range j {
			if math.Float64bits(j[i]) != math.Float64bits(js[s][i]) {
				t.Fatalf("slice step %d J[%d] mismatch", s, i)
			}
		}
		if s+1 <= hi {
			sl.Release(s + 1)
		}
	}
}

func TestAutoStorePutValidation(t *testing.T) {
	jp, cp, js, cs := tensorFixture(23, 4, 4)
	mo := masczip.Options{}
	auto, err := NewAutoStore(AutoConfig{
		Candidates: []AutoCandidate{{
			Name: "masc",
			New: func() (compress.Compressor, compress.Compressor) {
				return masczip.New(jp, mo), masczip.New(cp, mo)
			},
		}},
		TrialSteps: 8, JPat: jp, CPat: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if err := auto.Put(1, js[1], cs[1]); err == nil {
		t.Fatal("out-of-order Put accepted during the trial buffer phase")
	}
	if err := auto.Put(0, js[0], cs[0]); err != nil {
		t.Fatal(err)
	}
	if err := auto.Put(1, js[1][:2], cs[1]); err == nil {
		t.Fatal("changed value count accepted")
	}
	if _, err := NewAutoStore(AutoConfig{}); err == nil {
		t.Fatal("empty candidate menu accepted")
	}
}
