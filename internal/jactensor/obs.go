package jactensor

import (
	"fmt"

	"masc/internal/compress/masczip"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/tiersched"
)

// storeObs is the resolved telemetry handle bundle of a store. The zero
// value (all-nil handles) makes every hook a cheap no-op, so the hot
// paths carry no "is telemetry on?" branching of their own.
type storeObs struct {
	tr *obs.Tracer

	// rec records store-internal spans (put/compress/decompress, tier
	// moves); scope is the fixed fallback parent (the run root span) used
	// whenever the recorder's dynamic scope — the forward step span, set
	// only by the single-threaded forward loop — is clear, e.g. for
	// reverse-sweep decompressions and prefetches.
	rec   *span.Recorder
	scope span.ID

	puts          *obs.Counter
	fetches       *obs.Counter
	rawBytes      *obs.Counter
	storedBytes   *obs.Counter
	compressSec   *obs.Counter
	decompressSec *obs.Counter
	ioSec         *obs.Counter
	stallSec      *obs.Counter
	prefetchHits  *obs.Counter
	prefetchMiss  *obs.Counter
	corrupt       *obs.Counter
	queueDepth    *obs.Gauge
	resident      *obs.Gauge
	peakResident  *obs.Gauge
	anchorBytes   *obs.Gauge
	blobBytes     *obs.Histogram
}

// newStoreObs resolves the masc_store_* metric families, labelled with the
// store kind ("memory", "disk", "compressed"). All families are registered
// eagerly so /metrics exposes them from the first scrape, before any
// traffic.
func newStoreObs(o *obs.Observer, kind string) storeObs {
	reg := o.Registry()
	lbl := []string{"store", kind}
	return storeObs{
		tr:            o.Tracer(),
		rec:           o.SpanRecorder(),
		puts:          reg.Counter("masc_store_put_total", "Steps written to the Jacobian store.", lbl...),
		fetches:       reg.Counter("masc_store_fetch_total", "Steps fetched from the Jacobian store.", lbl...),
		rawBytes:      reg.Counter("masc_store_raw_bytes_total", "Uncompressed payload bytes written (the paper's S_NZ).", lbl...),
		storedBytes:   reg.Counter("masc_store_stored_bytes_total", "Bytes held by the store (compressed/spilled).", lbl...),
		compressSec:   reg.Counter("masc_store_compress_seconds_total", "Time spent compressing tensors.", lbl...),
		decompressSec: reg.Counter("masc_store_decompress_seconds_total", "Time spent decompressing tensors.", lbl...),
		ioSec:         reg.Counter("masc_store_io_seconds_total", "Time spent on spill-file I/O.", lbl...),
		stallSec:      reg.Counter("masc_store_stall_seconds_total", "Solver-visible time Put blocked on a full compression queue.", lbl...),
		prefetchHits:  reg.Counter("masc_store_prefetch_hits_total", "Reverse-sweep fetches served by the background prefetch.", lbl...),
		prefetchMiss:  reg.Counter("masc_store_prefetch_misses_total", "Reverse-sweep fetches that decompressed in the foreground.", lbl...),
		corrupt:       reg.Counter("masc_store_corrupt_total", "Fetches that failed blob integrity verification and were quarantined.", lbl...),
		queueDepth:    reg.Gauge("masc_store_queue_depth", "Jobs waiting in the async compression queue.", lbl...),
		resident:      reg.Gauge("masc_store_resident_bytes", "Modelled resident bytes held by the store right now.", lbl...),
		peakResident:  reg.Gauge("masc_store_peak_resident_bytes", "Peak modelled resident bytes over the run.", lbl...),
		anchorBytes:   reg.Gauge("masc_store_anchor_bytes", "Plaintext bytes retained as window anchor frames.", lbl...),
		blobBytes:     reg.Histogram("masc_store_blob_bytes", "Per-step compressed blob sizes (J+C).", obs.SizeBuckets(), lbl...),
	}
}

// spanParent resolves the parent for a store-internal span: the forward
// loop's current step span when one is published, else the fixed scope.
func (so *storeObs) spanParent() span.ID {
	if sc := so.rec.Scope(); sc != 0 {
		return sc
	}
	return so.scope
}

// boolAttr encodes a bool as the 0/1 span-attribute convention.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// observeResident mirrors a resident-byte model change into the gauges.
func (so *storeObs) observeResident(resident int64) {
	so.resident.Set(float64(resident))
	so.peakResident.SetMax(float64(resident))
}

// tierObs is the tier-ladder telemetry bundle of the tiered store: live
// per-tier placement gauges plus demotion/promotion counters labelled with
// the destination/origin tier. Zero value = disabled, like storeObs.
type tierObs struct {
	steps     [tiersched.NumTiers]*obs.Gauge
	bytes     [tiersched.NumTiers]*obs.Gauge
	demotions [tiersched.NumTiers]*obs.Counter
	promotes  [tiersched.NumTiers]*obs.Counter
}

// newTierObs registers the masc_store_tier_* families, one series per tier.
func newTierObs(o *obs.Observer) tierObs {
	reg := o.Registry()
	var t tierObs
	for tier := tiersched.Hot; tier <= tiersched.Dropped; tier++ {
		lbl := []string{"tier", tier.String()}
		t.steps[tier] = reg.Gauge("masc_store_tier_steps",
			"Live steps currently placed on each tier of the tiered store.", lbl...)
		t.bytes[tier] = reg.Gauge("masc_store_tier_bytes",
			"Resident bytes currently held on each tier of the tiered store.", lbl...)
		t.demotions[tier] = reg.Counter("masc_store_tier_demotions_total",
			"Steps demoted onto each tier under memory-budget pressure.", lbl...)
		t.promotes[tier] = reg.Counter("masc_store_tier_promotions_total",
			"Steps promoted back to hot RAM from each tier during the reverse sweep.", lbl...)
	}
	return t
}

func (t *tierObs) demote(to tiersched.Tier)    { t.demotions[to].Inc() }
func (t *tierObs) promote(from tiersched.Tier) { t.promotes[from].Inc() }

// observe mirrors a placement snapshot into the per-tier gauges.
func (t *tierObs) observe(steps [tiersched.NumTiers]int, bytes [tiersched.NumTiers]int64) {
	for tier := tiersched.Hot; tier <= tiersched.Dropped; tier++ {
		t.steps[tier].Set(float64(steps[tier]))
		t.bytes[tier].Set(float64(bytes[tier]))
	}
}

// SetObserver attaches telemetry to the store. Call it before the first
// Put; a nil observer detaches.
func (s *MemStore) SetObserver(o *obs.Observer) { s.ob = newStoreObs(o, "memory") }

// SetObserver attaches telemetry to the store (store=tiered series plus the
// masc_store_tier_* placement families). Call it before the first Put; a
// nil observer detaches.
func (s *TieredStore) SetObserver(o *obs.Observer) {
	s.ob = newStoreObs(o, "tiered")
	s.tob = newTierObs(o)
}

// SetObserver attaches telemetry to the store. Call it before the first
// Put; a nil observer detaches.
func (s *DiskStore) SetObserver(o *obs.Observer) { s.ob = newStoreObs(o, "disk") }

// SetObserver attaches telemetry to the store. Call it before the first
// Put; a nil observer detaches. Safe in async mode only before the first
// Put (the worker reads the handles unlocked afterwards).
func (s *CompressedStore) SetObserver(o *obs.Observer) { s.ob = newStoreObs(o, "compressed") }

// SetSpanScope fixes the fallback parent (normally the run root span) for
// store-internal spans, and — when the codecs support it — wires them to the
// same recorder so each compress/decompress span encloses the codec's own
// encode/decode span. Call it after SetObserver and before the first Put.
func (s *MemStore) SetSpanScope(id span.ID) { s.ob.scope = id }

// SetSpanScope fixes the fallback span parent; see (*MemStore).SetSpanScope.
func (s *DiskStore) SetSpanScope(id span.ID) {
	s.ob.scope = id
	if s.spill != nil {
		s.spill.SetSpans(s.ob.rec, id)
	}
}

// SetSpanScope fixes the fallback span parent; see (*MemStore).SetSpanScope.
func (s *TieredStore) SetSpanScope(id span.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ob.scope = id
	if s.ob.rec == nil {
		return
	}
	if sc, ok := s.jc.(spanCodec); ok {
		sc.SetSpans(s.ob.rec)
		s.spanJC = sc
	}
	if sc, ok := s.cc.(spanCodec); ok {
		sc.SetSpans(s.ob.rec)
		s.spanCC = sc
	}
	if s.spill != nil {
		s.spill.SetSpans(s.ob.rec, id)
	}
}

// SetSpanScope fixes the fallback span parent; see (*MemStore).SetSpanScope.
func (s *CompressedStore) SetSpanScope(id span.ID) {
	s.ob.scope = id
	if s.ob.rec == nil {
		return
	}
	if sc, ok := s.jc.(spanCodec); ok {
		sc.SetSpans(s.ob.rec)
		s.spanJC = sc
	}
	if sc, ok := s.cc.(spanCodec); ok {
		sc.SetSpans(s.ob.rec)
		s.spanCC = sc
	}
}

// PredictorStats returns the predictor-selection statistics accumulated by
// the J and C codecs, when the store was built over masczip compressors
// with Options.CollectStats enabled (ok reports both conditions). In async
// mode call it only after EndForward or Close, once the worker has
// drained.
func (s *CompressedStore) PredictorStats() (j, c masczip.Stats, ok bool) {
	type statser interface{ Stats() masczip.Stats }
	js, okJ := s.jc.(statser)
	cs, okC := s.cc.(statser)
	if !okJ || !okC {
		return j, c, false
	}
	j, c = js.Stats(), cs.Stats()
	// CollectStats off leaves the counters at zero; report !ok so callers
	// can distinguish "no data" from "all-zero data".
	if j.Elements == 0 && c.Elements == 0 {
		return j, c, false
	}
	return j, c, true
}

// PublishCodecStats mirrors one codec's predictor-selection statistics
// into the masc_codec_* metric families, labelled with the tensor name
// ("j" or "c"). The counters are set once, from the encoder's final
// accumulated totals.
func PublishCodecStats(reg *obs.Registry, tensor string, st masczip.Stats) {
	if reg == nil {
		return
	}
	sel := func(model string) *obs.Counter {
		return reg.Counter("masc_codec_predictor_selections_total",
			"Model-selection outcomes of selector-coded elements by predictor family.",
			"tensor", tensor, "model", model)
	}
	sel("temporal").Add(float64(st.Temporal))
	sel("stamp").Add(float64(st.Stamp))
	sel("last_value").Add(float64(st.LastValue))
	reg.Counter("masc_codec_elements_total", "Matrix elements pushed through the MASC coder.",
		"tensor", tensor).Add(float64(st.Elements))
	reg.Counter("masc_codec_selector_elements_total", "Elements that went through model selection (nonzero temporal residual).",
		"tensor", tensor).Add(float64(st.SelectorElements))
	reg.Counter("masc_codec_selector_bits_total", "Selector bits on the wire.",
		"tensor", tensor).Add(float64(st.SelectorBits))
	reg.Counter("masc_codec_payload_bits_total", "Residual payload bits on the wire.",
		"tensor", tensor).Add(float64(st.PayloadBits))
	reg.Counter("masc_codec_markov_predicted_total", "Elements whose selector came from the frozen Markov table.",
		"tensor", tensor).Add(float64(st.MarkovPredicted))
	reg.Counter("masc_codec_markov_exact_total", "Markov-predicted elements reproduced bit-exactly.",
		"tensor", tensor).Add(float64(st.MarkovExact))
	for i, n := range st.LZHist {
		class := fmt.Sprintf("%d", i*8)
		if i == len(st.LZHist)-1 {
			class = "zero"
		}
		reg.Counter("masc_codec_residual_lz_class_total", "Residuals by leading-zero class (bits); class=zero is an all-zero residual.",
			"tensor", tensor, "class", class).Add(float64(n))
	}
}
