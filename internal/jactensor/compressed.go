package jactensor

import (
	"fmt"
	"time"

	"masc/internal/compress"
	"masc/internal/compress/varint"
	"masc/internal/sparse"
)

// CompressedStore holds the tensor in memory as per-step compressed blobs,
// following Algorithm 2 of the paper: during forward integration step t's
// Put compresses step t-1 using step t as the prediction reference; during
// the reverse sweep step i is decompressed using the already-materialized
// step i+1, whose memory is freed by Release.
type CompressedStore struct {
	jc, cc compress.Compressor

	jBlobs, cBlobs [][]byte
	lastJ, lastC   []float64 // plaintext of the highest Put step
	jLen, cLen     int       // per-step value counts
	n              int       // highest step put; -1 before first Put
	forwardDone    bool

	// Reverse-sweep plaintext cache: at most two live steps.
	plainJ, plainC map[int][]float64

	stats    Stats
	resident int64
}

// NewCompressedStore builds a store over the given codecs (one for the J
// tensor, one for C). jPat/cPat, when non-nil, contribute the one-off
// shared-index footprint to the stats, matching the paper's accounting.
func NewCompressedStore(jc, cc compress.Compressor, jPat, cPat *sparse.Pattern) *CompressedStore {
	s := &CompressedStore{
		jc: jc, cc: cc,
		n:      -1,
		plainJ: map[int][]float64{},
		plainC: map[int][]float64{},
	}
	if jPat != nil {
		s.stats.StoredBytes += int64(len(varint.EncodeCSRIndices(jPat.RowPtr, jPat.ColIdx)))
	}
	if cPat != nil {
		s.stats.StoredBytes += int64(len(varint.EncodeCSRIndices(cPat.RowPtr, cPat.ColIdx)))
	}
	return s
}

func (s *CompressedStore) bumpResident(delta int64) {
	s.resident += delta
	if s.resident > s.stats.PeakResident {
		s.stats.PeakResident = s.resident
	}
}

// Put implements Store.
func (s *CompressedStore) Put(step int, jVals, cVals []float64) error {
	if s.forwardDone {
		return fmt.Errorf("jactensor: Put after EndForward")
	}
	if step != s.n+1 {
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, s.n+1)
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
	} else if len(jVals) != s.jLen || len(cVals) != s.cLen {
		return fmt.Errorf("jactensor: step %d value counts changed (%d/%d vs %d/%d)",
			step, len(jVals), len(cVals), s.jLen, s.cLen)
	}
	start := time.Now()
	if step > 0 {
		// Compress M_{t-1} with M_t as the prediction reference.
		jb := s.jc.Compress(nil, s.lastJ, jVals)
		cb := s.cc.Compress(nil, s.lastC, cVals)
		s.jBlobs = append(s.jBlobs, jb)
		s.cBlobs = append(s.cBlobs, cb)
		s.stats.StoredBytes += int64(len(jb) + len(cb))
		s.bumpResident(int64(len(jb) + len(cb)))
	} else {
		s.lastJ = make([]float64, len(jVals))
		s.lastC = make([]float64, len(cVals))
		s.bumpResident(int64(8 * (len(jVals) + len(cVals))))
	}
	copy2 := func(dst *[]float64, src []float64) {
		if len(*dst) != len(src) {
			*dst = make([]float64, len(src))
		}
		copy(*dst, src)
	}
	copy2(&s.lastJ, jVals)
	copy2(&s.lastC, cVals)
	s.n = step
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.stats.CompressTime += time.Since(start)
	return nil
}

// EndForward implements Store: the final step is compressed with no
// reference so the reverse chain has a self-contained head.
func (s *CompressedStore) EndForward() error {
	if s.forwardDone {
		return nil
	}
	if s.n < 0 {
		return fmt.Errorf("jactensor: EndForward with no steps")
	}
	start := time.Now()
	jb := s.jc.Compress(nil, s.lastJ, nil)
	cb := s.cc.Compress(nil, s.lastC, nil)
	s.jBlobs = append(s.jBlobs, jb)
	s.cBlobs = append(s.cBlobs, cb)
	s.stats.StoredBytes += int64(len(jb) + len(cb))
	s.stats.CompressTime += time.Since(start)
	// The plaintext of the last step stays resident as the chain head.
	s.plainJ[s.n] = s.lastJ
	s.plainC[s.n] = s.lastC
	s.lastJ, s.lastC = nil, nil
	s.bumpResident(int64(len(jb) + len(cb)))
	s.forwardDone = true
	return nil
}

// Fetch implements Store. Steps must be fetched in reverse order; each
// decompression uses the plaintext of step i+1 as its reference.
func (s *CompressedStore) Fetch(step int) ([]float64, []float64, error) {
	if !s.forwardDone {
		return nil, nil, fmt.Errorf("jactensor: Fetch before EndForward")
	}
	if step < 0 || step > s.n {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, s.n)
	}
	if j, ok := s.plainJ[step]; ok {
		return j, s.plainC[step], nil
	}
	var refJ, refC []float64
	if step < s.n {
		var ok bool
		refJ, ok = s.plainJ[step+1]
		if !ok {
			return nil, nil, fmt.Errorf("%w: step %d needs step %d resident", ErrOutOfOrder, step, step+1)
		}
		refC = s.plainC[step+1]
	}
	start := time.Now()
	jv := make([]float64, s.jLen)
	cv := make([]float64, s.cLen)
	if err := s.jc.Decompress(jv, s.jBlobs[step], refJ); err != nil {
		return nil, nil, fmt.Errorf("jactensor: step %d J: %w", step, err)
	}
	if err := s.cc.Decompress(cv, s.cBlobs[step], refC); err != nil {
		return nil, nil, fmt.Errorf("jactensor: step %d C: %w", step, err)
	}
	s.stats.DecompressTime += time.Since(start)
	s.plainJ[step] = jv
	s.plainC[step] = cv
	s.bumpResident(int64(8 * (len(jv) + len(cv))))
	return jv, cv, nil
}

// Release implements Store.
func (s *CompressedStore) Release(step int) {
	if v, ok := s.plainJ[step]; ok {
		s.bumpResident(-int64(8 * len(v)))
		delete(s.plainJ, step)
	}
	if v, ok := s.plainC[step]; ok {
		s.bumpResident(-int64(8 * len(v)))
		delete(s.plainC, step)
	}
}

// Stats implements Store.
func (s *CompressedStore) Stats() Stats { return s.stats }

// Close implements Store.
func (s *CompressedStore) Close() error {
	s.jBlobs, s.cBlobs = nil, nil
	s.plainJ, s.plainC = nil, nil
	return nil
}
