package jactensor

import (
	"fmt"
	"sync"
	"time"

	"masc/internal/blobframe"
	"masc/internal/compress"
	"masc/internal/compress/varint"
	"masc/internal/faultinject"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/sparse"
)

// CompressedStore holds the tensor in memory as per-step compressed blobs,
// following Algorithm 2 of the paper: during forward integration step t's
// Put compresses step t-1 using step t as the prediction reference; during
// the reverse sweep step i is decompressed using the already-materialized
// step i+1, whose memory is freed by Release.
//
// In async mode (NewCompressedStoreAsync) the compression runs on a
// persistent background worker behind a bounded queue, so Put returns as
// soon as the incoming values are copied and the solver proceeds to step
// t+1 while step t-1 compresses; symmetrically, the reverse sweep
// prefetches step i-1 on a background goroutine while the adjoint solve
// consumes step i. The blob sequence is byte-identical to sync mode: the
// worker performs exactly the same Compress calls in the same order.
type CompressedStore struct {
	jc, cc compress.Compressor

	jBlobs, cBlobs [][]byte
	lastJ, lastC   []float64 // plaintext of the highest Put step
	jLen, cLen     int       // per-step value counts
	hintJ, hintC   int       // last sealed blob sizes, sizing the next dst
	n              int       // highest step put; -1 before first Put
	forwardDone    bool

	// Reverse-sweep plaintext cache: at most two live steps (plus one
	// in-flight prefetch in async mode).
	plainJ, plainC map[int][]float64

	// Window anchors: steps at which the prediction chain was cut. Each
	// anchor's plaintext stays resident (CRC-checked like MemStore frames)
	// so a window-local reverse sweep can start there without decoding the
	// whole chain above it; its blob is compressed with no reference, so a
	// rotted anchor degrades to a self-contained blob decode instead of an
	// error.
	anchorEvery            int
	anchorJ, anchorC       map[int][]float64
	anchorJSum, anchorCSum map[int]uint32

	stats    Stats
	resident int64

	// Async pipeline state. mu guards every field above that the worker
	// or prefetch goroutine touches (blobs, stats, resident, plain maps,
	// pools, ferr); the sync code path never contends on it.
	async   bool
	mu      sync.Mutex
	jobs    chan fwdJob
	wkDone  chan struct{}
	drained bool  // worker joined (EndForward or Close ran)
	ferr    error // first background error; surfaces on Put/EndForward

	poolJ, poolC [][]float64 // recycled plaintext buffers

	pf *prefetch // at most one in-flight reverse prefetch

	quarantined map[int]bool          // steps whose blobs failed verification
	fault       *faultinject.Injector // nil = fault-free
	ob          storeObs              // telemetry handles; zero value = disabled

	// Codec-level span hooks (masczip), cached from a type assertion in
	// SetSpanScope; nil when the codecs don't trace or spans are off.
	spanJC, spanCC spanCodec
}

// spanCodec is implemented by codecs (masczip) that can record
// encode/decode spans under a per-call parent. The store serializes all
// codec calls, so setting the parent between calls is race-free.
type spanCodec interface {
	SetSpans(*span.Recorder)
	SetSpanParent(span.ID)
}

// setCodecParent points the codecs' next encode/decode span at id.
func (s *CompressedStore) setCodecParent(id span.ID) {
	if s.spanJC != nil {
		s.spanJC.SetSpanParent(id)
	}
	if s.spanCC != nil {
		s.spanCC.SetSpanParent(id)
	}
}

// fwdJob asks the worker to compress step t-1 (cur) against step t (ref).
type fwdJob struct {
	step       int // the step being compressed (t-1)
	curJ, curC []float64
	refJ, refC []float64
	parent     span.ID // span scope snapshotted at Put time (causal trigger)
}

// prefetch is one in-flight background decompression of step `step`.
type prefetch struct {
	step int
	j, c []float64
	err  error
	done chan struct{}
}

// NewCompressedStore builds a synchronous store over the given codecs (one
// for the J tensor, one for C). jPat/cPat, when non-nil, contribute the
// one-off shared-index footprint to the stats, matching the paper's
// accounting.
func NewCompressedStore(jc, cc compress.Compressor, jPat, cPat *sparse.Pattern) *CompressedStore {
	s := &CompressedStore{
		jc: jc, cc: cc,
		n:           -1,
		plainJ:      map[int][]float64{},
		plainC:      map[int][]float64{},
		anchorJ:     map[int][]float64{},
		anchorC:     map[int][]float64{},
		anchorJSum:  map[int]uint32{},
		anchorCSum:  map[int]uint32{},
		quarantined: map[int]bool{},
	}
	if jPat != nil {
		s.stats.StoredBytes += int64(len(varint.EncodeCSRIndices(jPat.RowPtr, jPat.ColIdx)))
	}
	if cPat != nil {
		s.stats.StoredBytes += int64(len(varint.EncodeCSRIndices(cPat.RowPtr, cPat.ColIdx)))
	}
	return s
}

// NewCompressedStoreAsync builds a pipelined store: Put hands compression
// jobs to a persistent background worker through a queue of the given
// depth (the number of timesteps the solver may run ahead of the
// compressor; <1 selects the default of 2), and the reverse sweep
// prefetches the next step in the background. Stats gain a StallTime
// entry: the time Put spent blocked on a full queue.
func NewCompressedStoreAsync(jc, cc compress.Compressor, jPat, cPat *sparse.Pattern, depth int) *CompressedStore {
	s := NewCompressedStore(jc, cc, jPat, cPat)
	if depth < 1 {
		depth = 2
	}
	s.async = true
	s.jobs = make(chan fwdJob, depth)
	s.wkDone = make(chan struct{})
	go s.worker()
	return s
}

// Async reports whether the store runs the pipelined (background
// compression) mode.
func (s *CompressedStore) Async() bool { return s.async }

// SetFault installs a fault injector: blob corruption applies after frames
// are sealed (at-rest rot, caught by the CRC at fetch time) and worker
// panics fire when the async pipeline compresses the configured step. Call
// it before the first Put.
func (s *CompressedStore) SetFault(in *faultinject.Injector) { s.fault = in }

// frameDst returns the dst prefix a Compress call appends its payload to:
// HeaderSize reserved bytes that Seal later fills in place. Capacity is
// sized from the previous blob of the same tensor (blob sizes are stable
// across steps), so the compressor's appends stay within one allocation —
// the same count as the unframed path. hint is only touched on the
// compression path, which is serialized per store (the caller in sync
// mode, the single worker in async mode, EndForward after the drain).
func frameDst(hint int) []byte {
	return make([]byte, blobframe.HeaderSize, blobframe.HeaderSize+hint+hint/8+64)
}

// sealBlob seals the frame around the compressor's appended payload,
// records the blob size as the next frameDst hint, and applies any
// injected at-rest corruption.
func (s *CompressedStore) sealBlob(frame []byte, kind byte, step int) []byte {
	blobframe.Seal(frame, kind, step)
	if kind == 'J' {
		s.hintJ = len(frame)
	} else {
		s.hintC = len(frame)
	}
	frame, _ = s.fault.MutateBlob(step, frame)
	return frame
}

// openBlob verifies a stored frame and returns its payload; failures
// quarantine the step (mu must not be held).
func (s *CompressedStore) openBlob(frame []byte, kind byte, step int, tensor string) ([]byte, error) {
	payload, err := blobframe.Open(frame, kind, step)
	if err == nil {
		return payload, nil
	}
	s.mu.Lock()
	s.quarantined[step] = true
	s.stats.CorruptBlobs++
	s.mu.Unlock()
	s.noteQuarantine(step)
	return nil, corruptErr(step, "fetch", tensor, err)
}

// noteQuarantine mirrors one quarantined step into the telemetry handles:
// the corruption counter plus an instant quarantine span.
func (s *CompressedStore) noteQuarantine(step int) {
	s.ob.corrupt.Inc()
	qsp := s.ob.rec.Start(s.ob.spanParent(), span.Quarantine, step)
	qsp.End()
}

// bumpResident adjusts the resident-byte model; callers in async mode must
// hold mu.
func (s *CompressedStore) bumpResident(delta int64) {
	s.resident += delta
	if s.resident > s.stats.PeakResident {
		s.stats.PeakResident = s.resident
	}
	s.ob.observeResident(s.resident)
}

// takeBuf returns a length-n plaintext buffer, recycling a pooled one when
// available. mu must be held. The checked-out buffer counts as resident
// until it is recycled.
func takeBuf(pool *[][]float64, n int) []float64 {
	if k := len(*pool); k > 0 {
		b := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		if len(b) == n {
			return b
		}
	}
	return make([]float64, n)
}

// worker drains the forward compression queue. It is the only goroutine
// calling s.jc.Compress / s.cc.Compress, so the (stateful, non-thread-safe)
// codecs see exactly the sync-mode call sequence.
func (s *CompressedStore) worker() {
	defer close(s.wkDone)
	for job := range s.jobs {
		s.runJob(job)
	}
}

func (s *CompressedStore) runJob(job fwdJob) {
	defer func() {
		if r := recover(); r != nil {
			// A worker panic is recorded as a typed error naming the step
			// and surfaces from the next Put, EndForward, Fetch, or Close —
			// never swallowed.
			s.mu.Lock()
			if s.ferr == nil {
				s.ferr = &StepError{Step: job.step, Op: "compress",
					Err: fmt.Errorf("async worker panic: %v", r)}
			}
			s.mu.Unlock()
		}
	}()
	s.mu.Lock()
	failed := s.ferr != nil
	s.mu.Unlock()
	if failed {
		s.recycle(job.curJ, job.curC)
		return
	}
	if s.fault.PanicNow(job.step) {
		panic(fmt.Sprintf("injected worker panic at step %d", job.step))
	}
	// Anchor steps cut the chain exactly as the sync path does: the worker
	// is the only goroutine calling Compress, so the restart lands at the
	// same point in the codec's call sequence and the blob stream stays
	// byte-identical to sync mode.
	cut := s.isAnchorStep(job.step)
	refJ, refC := job.refJ, job.refC
	if cut {
		s.restartCodecs()
		refJ, refC = nil, nil
	}
	csp := s.ob.rec.Start(job.parent, span.Compress, job.step)
	s.setCodecParent(csp.ID())
	start := time.Now()
	jb := s.sealBlob(s.jc.Compress(frameDst(s.hintJ), job.curJ, refJ), 'J', job.step)
	cb := s.sealBlob(s.cc.Compress(frameDst(s.hintC), job.curC, refC), 'C', job.step)
	elapsed := time.Since(start)
	csp.Attr("bytes", int64(len(jb)+len(cb)))
	csp.Attr("anchor", boolAttr(cut))
	csp.End()
	s.mu.Lock()
	s.jBlobs = append(s.jBlobs, jb)
	s.cBlobs = append(s.cBlobs, cb)
	s.stats.StoredBytes += int64(len(jb) + len(cb))
	s.stats.CompressTime += elapsed
	s.bumpResident(int64(len(jb) + len(cb)))
	if cut {
		// Retain the buffers as the anchor frame instead of recycling
		// them; they are already counted resident from putAsync's
		// checkout.
		s.retainAnchorLocked(job.step, job.curJ, job.curC, false)
	}
	s.mu.Unlock()
	s.observeCompress(job.step, elapsed, len(jb)+len(cb))
	s.ob.queueDepth.Set(float64(len(s.jobs)))
	if !cut {
		s.recycle(job.curJ, job.curC)
	}
}

// observeCompress mirrors one compressed step into the telemetry handles
// (no-op when detached).
func (s *CompressedStore) observeCompress(step int, d time.Duration, bytes int) {
	s.ob.compressSec.AddDuration(d)
	s.ob.storedBytes.Add(float64(bytes))
	s.ob.blobBytes.Observe(float64(bytes))
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "compress", Dur: d, Key: "bytes", N: int64(bytes)})
	}
}

// recycle returns a consumed plaintext pair to the buffer pool.
func (s *CompressedStore) recycle(j, c []float64) {
	s.mu.Lock()
	s.poolJ = append(s.poolJ, j)
	s.poolC = append(s.poolC, c)
	s.bumpResident(-int64(8 * (len(j) + len(c))))
	s.mu.Unlock()
}

// Put implements Store.
func (s *CompressedStore) Put(step int, jVals, cVals []float64) error {
	if s.async {
		return s.putAsync(step, jVals, cVals)
	}
	if s.forwardDone {
		return fmt.Errorf("jactensor: Put after EndForward")
	}
	if step != s.n+1 {
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, s.n+1)
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
	} else if len(jVals) != s.jLen || len(cVals) != s.cLen {
		return fmt.Errorf("jactensor: step %d value counts changed (%d/%d vs %d/%d)",
			step, len(jVals), len(cVals), s.jLen, s.cLen)
	}
	psp := s.ob.rec.Start(s.ob.spanParent(), span.Put, step)
	start := time.Now()
	if step > 0 {
		// Compress M_{t-1} with M_t as the prediction reference — unless
		// t-1 is an anchor, where the chain cuts: the blob is
		// self-contained and the plaintext is retained for windowed
		// sweeps.
		refJ, refC := jVals, cVals
		if s.isAnchorStep(step - 1) {
			s.restartCodecs()
			refJ, refC = nil, nil
		}
		csp := s.ob.rec.Start(psp.ID(), span.Compress, step-1)
		s.setCodecParent(csp.ID())
		jb := s.sealBlob(s.jc.Compress(frameDst(s.hintJ), s.lastJ, refJ), 'J', step-1)
		cb := s.sealBlob(s.cc.Compress(frameDst(s.hintC), s.lastC, refC), 'C', step-1)
		csp.Attr("bytes", int64(len(jb)+len(cb)))
		csp.End()
		s.jBlobs = append(s.jBlobs, jb)
		s.cBlobs = append(s.cBlobs, cb)
		s.stats.StoredBytes += int64(len(jb) + len(cb))
		s.bumpResident(int64(len(jb) + len(cb)))
		if s.isAnchorStep(step - 1) {
			s.retainAnchorLocked(step-1,
				append([]float64(nil), s.lastJ...),
				append([]float64(nil), s.lastC...), true)
		}
		s.observeCompress(step-1, time.Since(start), len(jb)+len(cb))
	} else {
		s.lastJ = make([]float64, len(jVals))
		s.lastC = make([]float64, len(cVals))
		s.bumpResident(int64(8 * (len(jVals) + len(cVals))))
	}
	copy2 := func(dst *[]float64, src []float64) {
		if len(*dst) != len(src) {
			*dst = make([]float64, len(src))
		}
		copy(*dst, src)
	}
	copy2(&s.lastJ, jVals)
	copy2(&s.lastC, cVals)
	s.n = step
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.stats.CompressTime += time.Since(start)
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(8 * (len(jVals) + len(cVals))))
	psp.End()
	return nil
}

// putAsync double-buffers the incoming values and hands the "compress
// M_{t-1} against M_t" job to the worker, so the caller immediately
// proceeds to the next timestep. Worker errors surface here (and on
// EndForward), one Put late at worst.
func (s *CompressedStore) putAsync(step int, jVals, cVals []float64) error {
	s.mu.Lock()
	if err := s.ferr; err != nil {
		s.mu.Unlock()
		return err
	}
	if s.forwardDone {
		s.mu.Unlock()
		return fmt.Errorf("jactensor: Put after EndForward")
	}
	if step != s.n+1 {
		s.mu.Unlock()
		return fmt.Errorf("jactensor: put step %d out of order (expected %d)", step, s.n+1)
	}
	if step == 0 {
		s.jLen, s.cLen = len(jVals), len(cVals)
	} else if len(jVals) != s.jLen || len(cVals) != s.cLen {
		s.mu.Unlock()
		return fmt.Errorf("jactensor: step %d value counts changed (%d/%d vs %d/%d)",
			step, len(jVals), len(cVals), s.jLen, s.cLen)
	}
	jb := takeBuf(&s.poolJ, len(jVals))
	cb := takeBuf(&s.poolC, len(cVals))
	s.bumpResident(int64(8 * (len(jVals) + len(cVals))))
	s.mu.Unlock()

	psp := s.ob.rec.Start(s.ob.spanParent(), span.Put, step)
	copy(jb, jVals)
	copy(cb, cVals)
	if step > 0 {
		// The put span is the causal trigger for compressing step-1, so
		// the worker parents its compress span under it.
		job := fwdJob{step: step - 1, curJ: s.lastJ, curC: s.lastC, refJ: jb, refC: cb, parent: psp.ID()}
		select {
		case s.jobs <- job:
		default:
			// Queue full: the compressor is the bottleneck right now.
			// Account the wait so the overlap experiment can report how
			// much compression latency leaked back onto the solver.
			start := time.Now()
			s.jobs <- job
			stall := time.Since(start)
			s.mu.Lock()
			s.stats.StallTime += stall
			s.mu.Unlock()
			s.ob.stallSec.AddDuration(stall)
			psp.Attr("stall_ns", int64(stall))
			if s.ob.tr != nil {
				s.ob.tr.Emit(obs.Event{Step: step, Phase: "stall", Dur: stall})
			}
		}
	}
	s.lastJ, s.lastC = jb, cb

	s.mu.Lock()
	s.n = step
	s.stats.Steps++
	s.stats.RawBytes += int64(8 * (len(jVals) + len(cVals)))
	s.mu.Unlock()
	s.ob.puts.Inc()
	s.ob.rawBytes.Add(float64(8 * (len(jVals) + len(cVals))))
	depth := len(s.jobs)
	s.ob.queueDepth.Set(float64(depth))
	psp.Attr("queue", int64(depth))
	psp.End()
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "put", Key: "queue", N: int64(depth)})
	}
	return nil
}

// EndForward implements Store: the final step is compressed with no
// reference so the reverse chain has a self-contained head. In async mode
// it first drains the compression queue.
func (s *CompressedStore) EndForward() error {
	if s.async {
		return s.endForwardAsync()
	}
	if s.forwardDone {
		return nil
	}
	if s.n < 0 {
		return fmt.Errorf("jactensor: EndForward with no steps")
	}
	csp := s.ob.rec.Start(s.ob.spanParent(), span.Compress, s.n)
	s.setCodecParent(csp.ID())
	start := time.Now()
	jb := s.sealBlob(s.jc.Compress(frameDst(s.hintJ), s.lastJ, nil), 'J', s.n)
	cb := s.sealBlob(s.cc.Compress(frameDst(s.hintC), s.lastC, nil), 'C', s.n)
	csp.Attr("bytes", int64(len(jb)+len(cb)))
	csp.End()
	s.jBlobs = append(s.jBlobs, jb)
	s.cBlobs = append(s.cBlobs, cb)
	s.stats.StoredBytes += int64(len(jb) + len(cb))
	s.stats.CompressTime += time.Since(start)
	// The plaintext of the last step stays resident as the chain head.
	s.plainJ[s.n] = s.lastJ
	s.plainC[s.n] = s.lastC
	s.lastJ, s.lastC = nil, nil
	s.bumpResident(int64(len(jb) + len(cb)))
	s.forwardDone = true
	s.observeCompress(s.n, time.Since(start), len(jb)+len(cb))
	return nil
}

func (s *CompressedStore) endForwardAsync() error {
	s.mu.Lock()
	if s.forwardDone {
		s.mu.Unlock()
		return nil
	}
	if s.n < 0 {
		s.mu.Unlock()
		return fmt.Errorf("jactensor: EndForward with no steps")
	}
	// Block further Puts before the queue closes.
	s.forwardDone = true
	s.mu.Unlock()

	close(s.jobs)
	<-s.wkDone

	s.mu.Lock()
	defer s.mu.Unlock()
	s.drained = true
	if s.ferr != nil {
		return s.ferr
	}
	csp := s.ob.rec.Start(s.ob.spanParent(), span.Compress, s.n)
	s.setCodecParent(csp.ID())
	start := time.Now()
	jb := s.sealBlob(s.jc.Compress(frameDst(s.hintJ), s.lastJ, nil), 'J', s.n)
	cb := s.sealBlob(s.cc.Compress(frameDst(s.hintC), s.lastC, nil), 'C', s.n)
	csp.Attr("bytes", int64(len(jb)+len(cb)))
	csp.End()
	s.jBlobs = append(s.jBlobs, jb)
	s.cBlobs = append(s.cBlobs, cb)
	s.stats.StoredBytes += int64(len(jb) + len(cb))
	s.stats.CompressTime += time.Since(start)
	s.plainJ[s.n] = s.lastJ
	s.plainC[s.n] = s.lastC
	s.lastJ, s.lastC = nil, nil
	s.bumpResident(int64(len(jb) + len(cb)))
	s.observeCompress(s.n, time.Since(start), len(jb)+len(cb))
	return nil
}

// decompressStep inflates step's blobs against the given references into
// freshly checked-out buffers. At most one call runs at a time (Fetch joins
// any in-flight prefetch first), so the codecs' scratch state is safe.
// phase names the trace event ("decompress" foreground, "prefetch"
// background).
func (s *CompressedStore) decompressStep(step int, refJ, refC []float64, phase string) ([]float64, []float64, error) {
	s.mu.Lock()
	if s.quarantined[step] {
		s.mu.Unlock()
		return nil, nil, corruptErr(step, "fetch", "", errAlreadyQuarantined)
	}
	jv := takeBuf(&s.poolJ, s.jLen)
	cv := takeBuf(&s.poolC, s.cLen)
	jBlob, cBlob := s.jBlobs[step], s.cBlobs[step]
	s.mu.Unlock()
	jPayload, err := s.openBlob(jBlob, 'J', step, "J")
	if err != nil {
		return nil, nil, err
	}
	cPayload, err := s.openBlob(cBlob, 'C', step, "C")
	if err != nil {
		return nil, nil, err
	}
	dsp := s.ob.rec.Start(s.ob.spanParent(), span.Decompress, step)
	s.setCodecParent(dsp.ID())
	start := time.Now()
	if err := s.jc.Decompress(jv, jPayload, refJ); err != nil {
		dsp.End()
		return nil, nil, s.decodeFailed(step, "J", err)
	}
	if err := s.cc.Decompress(cv, cPayload, refC); err != nil {
		dsp.End()
		return nil, nil, s.decodeFailed(step, "C", err)
	}
	elapsed := time.Since(start)
	dsp.Attr("bytes", int64(len(jBlob)+len(cBlob)))
	dsp.Attr("prefetch", boolAttr(phase == "prefetch"))
	dsp.End()
	s.mu.Lock()
	s.stats.DecompressTime += elapsed
	s.mu.Unlock()
	s.ob.decompressSec.AddDuration(elapsed)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: phase, Dur: elapsed,
			Key: "bytes", N: int64(len(jBlob) + len(cBlob))})
	}
	return jv, cv, nil
}

var errAlreadyQuarantined = fmt.Errorf("step is quarantined")

// decodeFailed records a decode failure (the frame verified, but the codec
// rejected the payload) as a quarantined, degradable corruption.
func (s *CompressedStore) decodeFailed(step int, tensor string, err error) error {
	s.mu.Lock()
	s.quarantined[step] = true
	s.stats.CorruptBlobs++
	s.mu.Unlock()
	s.noteQuarantine(step)
	return corruptErr(step, "fetch", tensor, err)
}

// maybePrefetch schedules a background decompression of step-1 using
// step's (resident) plaintext as reference. mu must be held.
func (s *CompressedStore) maybePrefetch(step int) {
	if !s.async || s.pf != nil || step <= 0 {
		return
	}
	prev := step - 1
	if _, ok := s.plainJ[prev]; ok {
		return
	}
	// Anchor steps are served from their retained plaintext, and their
	// blobs want a nil reference anyway — skip the prefetch.
	if s.isAnchorStep(prev) {
		return
	}
	refJ, refC := s.plainJ[step], s.plainC[step]
	pf := &prefetch{step: prev, done: make(chan struct{})}
	s.pf = pf
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// A prefetch panic becomes a typed error the owning Fetch
				// reports, naming the step.
				pf.err = &StepError{Step: pf.step, Op: "prefetch",
					Err: fmt.Errorf("panic: %v", r)}
			}
			close(pf.done)
		}()
		pf.j, pf.c, pf.err = s.decompressStep(pf.step, refJ, refC, "prefetch")
	}()
}

// joinPrefetch waits for the in-flight prefetch (if any) and materializes
// its result. It reports the prefetch error for `step` when that is the
// step the caller wants.
func (s *CompressedStore) joinPrefetch(step int) error {
	s.mu.Lock()
	pf := s.pf
	s.mu.Unlock()
	if pf == nil {
		return nil
	}
	<-pf.done
	s.mu.Lock()
	s.pf = nil
	if pf.err == nil {
		s.plainJ[pf.step] = pf.j
		s.plainC[pf.step] = pf.c
		s.bumpResident(int64(8 * (len(pf.j) + len(pf.c))))
	}
	s.mu.Unlock()
	if pf.step == step {
		return pf.err
	}
	return nil
}

// Fetch implements Store. Steps must be fetched in reverse order; each
// decompression uses the plaintext of step i+1 as its reference. In async
// mode the common case is a hit on the background prefetch, and fetching
// step i kicks off the prefetch of step i-1.
func (s *CompressedStore) Fetch(step int) ([]float64, []float64, error) {
	if s.async {
		return s.fetchAsync(step)
	}
	if !s.forwardDone {
		return nil, nil, fmt.Errorf("jactensor: Fetch before EndForward")
	}
	if step < 0 || step > s.n {
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, s.n)
	}
	if j, ok := s.plainJ[step]; ok {
		s.ob.fetches.Inc()
		return j, s.plainC[step], nil
	}
	anchored := s.isAnchorStep(step)
	if anchored {
		if jv, cv, ok := s.fetchAnchor(step); ok {
			return jv, cv, nil
		}
		// Rotted anchor: fall through to its self-contained blob.
	}
	var refJ, refC []float64
	if step < s.n && !anchored {
		var ok bool
		refJ, ok = s.plainJ[step+1]
		if !ok {
			return nil, nil, fmt.Errorf("%w: step %d needs step %d resident", ErrOutOfOrder, step, step+1)
		}
		refC = s.plainC[step+1]
	}
	if s.quarantined[step] {
		return nil, nil, corruptErr(step, "fetch", "", errAlreadyQuarantined)
	}
	jPayload, err := s.openBlob(s.jBlobs[step], 'J', step, "J")
	if err != nil {
		return nil, nil, err
	}
	cPayload, err := s.openBlob(s.cBlobs[step], 'C', step, "C")
	if err != nil {
		return nil, nil, err
	}
	dsp := s.ob.rec.Start(s.ob.spanParent(), span.Decompress, step)
	s.setCodecParent(dsp.ID())
	start := time.Now()
	jv := make([]float64, s.jLen)
	cv := make([]float64, s.cLen)
	if err := s.jc.Decompress(jv, jPayload, refJ); err != nil {
		dsp.End()
		return nil, nil, s.decodeFailed(step, "J", err)
	}
	if err := s.cc.Decompress(cv, cPayload, refC); err != nil {
		dsp.End()
		return nil, nil, s.decodeFailed(step, "C", err)
	}
	elapsed := time.Since(start)
	dsp.Attr("bytes", int64(len(s.jBlobs[step])+len(s.cBlobs[step])))
	dsp.End()
	s.stats.DecompressTime += elapsed
	s.plainJ[step] = jv
	s.plainC[step] = cv
	s.bumpResident(int64(8 * (len(jv) + len(cv))))
	s.ob.fetches.Inc()
	s.ob.decompressSec.AddDuration(elapsed)
	if s.ob.tr != nil {
		s.ob.tr.Emit(obs.Event{Step: step, Phase: "decompress", Dur: elapsed,
			Key: "bytes", N: int64(len(s.jBlobs[step]) + len(s.cBlobs[step]))})
	}
	return jv, cv, nil
}

func (s *CompressedStore) fetchAsync(step int) ([]float64, []float64, error) {
	s.mu.Lock()
	if err := s.ferr; err != nil {
		s.mu.Unlock()
		return nil, nil, err
	}
	if !s.forwardDone || !s.drained {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("jactensor: Fetch before EndForward")
	}
	if step < 0 || step > s.n {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("jactensor: fetch step %d of %d", step, s.n)
	}
	wasPrefetched := s.pf != nil && s.pf.step == step
	s.mu.Unlock()

	// Join any in-flight prefetch first: it is either our step (the hit
	// path) or must finish before we may run another decompression.
	if err := s.joinPrefetch(step); err != nil {
		return nil, nil, err
	}

	s.mu.Lock()
	if j, ok := s.plainJ[step]; ok {
		c := s.plainC[step]
		s.maybePrefetch(step)
		s.mu.Unlock()
		s.ob.fetches.Inc()
		if wasPrefetched {
			s.ob.prefetchHits.Inc()
			if s.ob.tr != nil {
				s.ob.tr.Emit(obs.Event{Step: step, Phase: "prefetch_hit"})
			}
		}
		return j, c, nil
	}
	anchored := s.isAnchorStep(step)
	var refJ, refC []float64
	if step < s.n && !anchored {
		var ok bool
		refJ, ok = s.plainJ[step+1]
		if !ok {
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: step %d needs step %d resident", ErrOutOfOrder, step, step+1)
		}
		refC = s.plainC[step+1]
	}
	s.mu.Unlock()

	if anchored {
		if jv, cv, ok := s.fetchAnchor(step); ok {
			return jv, cv, nil
		}
		// Rotted anchor: decode its self-contained blob instead.
	}
	s.ob.fetches.Inc()
	s.ob.prefetchMiss.Inc()
	jv, cv, err := s.decompressStep(step, refJ, refC, "decompress")
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.plainJ[step] = jv
	s.plainC[step] = cv
	s.bumpResident(int64(8 * (len(jv) + len(cv))))
	s.maybePrefetch(step)
	s.mu.Unlock()
	return jv, cv, nil
}

// Repair implements Repairer: it installs recomputed plaintext for a
// quarantined step, which both serves later fetches of the step and — the
// part that keeps the chained store alive — restores the decompression
// reference step-1 needs.
func (s *CompressedStore) Repair(step int, jVals, cVals []float64) {
	rsp := s.ob.rec.Start(s.ob.spanParent(), span.Repair, step)
	defer rsp.End()
	// Locked unconditionally: windowed sweeps repair through their slices
	// concurrently even over a sync store.
	s.mu.Lock()
	defer s.mu.Unlock()
	var jv, cv []float64
	if s.async {
		jv = takeBuf(&s.poolJ, len(jVals))
		cv = takeBuf(&s.poolC, len(cVals))
	} else {
		jv = make([]float64, len(jVals))
		cv = make([]float64, len(cVals))
	}
	copy(jv, jVals)
	copy(cv, cVals)
	s.plainJ[step] = jv
	s.plainC[step] = cv
	s.bumpResident(int64(8 * (len(jv) + len(cv))))
	delete(s.quarantined, step)
	s.stats.Repairs++
}

// Release implements Store.
func (s *CompressedStore) Release(step int) {
	if s.async {
		s.mu.Lock()
		defer s.mu.Unlock()
		if v, ok := s.plainJ[step]; ok {
			s.bumpResident(-int64(8 * len(v)))
			s.poolJ = append(s.poolJ, v)
			delete(s.plainJ, step)
		}
		if v, ok := s.plainC[step]; ok {
			s.bumpResident(-int64(8 * len(v)))
			s.poolC = append(s.poolC, v)
			delete(s.plainC, step)
		}
		return
	}
	if v, ok := s.plainJ[step]; ok {
		s.bumpResident(-int64(8 * len(v)))
		delete(s.plainJ, step)
	}
	if v, ok := s.plainC[step]; ok {
		s.bumpResident(-int64(8 * len(v)))
		delete(s.plainC, step)
	}
}

// Stats implements Store.
func (s *CompressedStore) Stats() Stats {
	// Locked unconditionally: slice fetches mutate stats under mu even
	// when the store itself is synchronous.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Store. In async mode it shuts the pipeline down, even
// when the forward pass was abandoned before EndForward.
func (s *CompressedStore) Close() error {
	if s.async {
		s.mu.Lock()
		needDrain := !s.drained
		s.forwardDone = true
		s.mu.Unlock()
		if needDrain {
			close(s.jobs)
			<-s.wkDone
			s.mu.Lock()
			s.drained = true
			s.mu.Unlock()
		}
		_ = s.joinPrefetch(-1)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.jBlobs, s.cBlobs = nil, nil
		s.plainJ, s.plainC = nil, nil
		s.anchorJ, s.anchorC = nil, nil
		s.poolJ, s.poolC = nil, nil
		return s.ferr
	}
	s.jBlobs, s.cBlobs = nil, nil
	s.plainJ, s.plainC = nil, nil
	s.anchorJ, s.anchorC = nil, nil
	return nil
}
