package jactensor

import (
	"errors"
	"fmt"
)

// ErrCorrupt classifies integrity failures: a stored blob whose checksum,
// frame header, or decode no longer matches what was written. Match with
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("jactensor: stored blob failed integrity verification")

// StepError is a storage failure attributed to one step of the tensor, so a
// multi-hour run that dies (or degrades) names exactly which step went bad.
type StepError struct {
	Step   int
	Op     string // "put", "fetch", "compress", "prefetch"
	Tensor string // "J", "C", or "" when not tensor-specific
	// Corrupt marks an integrity failure (errors.Is(err, ErrCorrupt)).
	Corrupt bool
	// Degradable marks errors the reverse sweep may recover from by
	// recomputing the step (fetch-side corruption or read failures).
	// Put-side failures are not degradable: the forward pass must abort.
	Degradable bool
	Err        error
}

func (e *StepError) Error() string {
	tensor := ""
	if e.Tensor != "" {
		tensor = " tensor " + e.Tensor
	}
	return fmt.Sprintf("jactensor: %s step %d%s: %v", e.Op, e.Step, tensor, e.Err)
}

func (e *StepError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrCorrupt) match corruption without a sentinel in
// the wrap chain.
func (e *StepError) Is(target error) bool { return target == ErrCorrupt && e.Corrupt }

// FailedStep returns the step the failure is attributed to; the chaos
// harness uses it (via an interface) to assert that every loud failure is
// diagnosable.
func (e *StepError) FailedStep() int { return e.Step }

// corruptErr builds the degradable integrity-failure form of StepError.
func corruptErr(step int, op, tensor string, err error) *StepError {
	return &StepError{Step: step, Op: op, Tensor: tensor, Corrupt: true, Degradable: true, Err: err}
}

// Repairer is the optional store capability the adjoint sweep uses after
// recomputing a damaged step: Repair installs known-good plaintext for the
// step so later fetches (and, for the chained compressed store, step-1's
// decompression reference) come from the repaired values instead of the
// quarantined blob.
type Repairer interface {
	Repair(step int, jVals, cVals []float64)
}
