package diskio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"masc/internal/faultinject"
)

func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		OpDeadline:  time.Second,
	}
}

// scanSpills returns the masc spill files currently present in dir.
func scanSpills(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var spills []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "masc-spill-") {
			spills = append(spills, filepath.Join(dir, e.Name()))
		}
	}
	return spills
}

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetRetryPolicy(fastPolicy(4))
	// Every 3rd attempt fails once: a single retry always recovers it.
	s.SetFault(faultinject.New(faultinject.Profile{Seed: 1, FailOpEvery: 3}))

	data := []byte("twelve bytes")
	var offs []int64
	for i := 0; i < 30; i++ {
		off, err := s.Append(data)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		offs = append(offs, off)
	}
	buf := make([]byte, len(data))
	for i, off := range offs {
		if err := s.ReadAt(buf, off); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if s.Retries() == 0 {
		t.Fatal("injector fired but no retries were recorded")
	}
}

func TestHardBurstExhaustsRetriesWithTypedError(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetRetryPolicy(fastPolicy(3))
	// A burst longer than the retry budget: the device stays broken.
	s.SetFault(faultinject.New(faultinject.Profile{Seed: 1, FailOpEvery: 1, FailOpBurst: 10}))

	_, err = s.Append([]byte("x"))
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OpError, got %T: %v", err, err)
	}
	if oe.Op != "write" || oe.Attempts != 3 {
		t.Fatalf("OpError = %+v, want write after 3 attempts", oe)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("underlying cause lost: %v", err)
	}
}

func TestShortReadIsNotRetried(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetRetryPolicy(fastPolicy(4))
	if _, err := s.Append([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	err = s.ReadAt(make([]byte, 64), 0)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OpError, got %T: %v", err, err)
	}
	if oe.Attempts != 1 {
		t.Fatalf("EOF was retried %d times; it is deterministic and must not be", oe.Attempts)
	}
	if s.Retries() != 0 {
		t.Fatalf("retries = %d, want 0", s.Retries())
	}
}

func TestOpsAfterCloseReturnErrClosed(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := s.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after Close: %v, want ErrClosed", err)
	}
	// Close stays idempotent after failed ops.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpDeadlineBoundsRetries(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OpDeadline:  20 * time.Millisecond,
	})
	s.SetFault(faultinject.New(faultinject.Profile{Seed: 1, FailOpEvery: 1, FailOpBurst: 1 << 30}))
	start := time.Now()
	_, err = s.Append([]byte("x"))
	if err == nil {
		t.Fatal("permanently broken device must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the op (took %v)", elapsed)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Attempts >= 1000 {
		t.Fatalf("expected deadline to cut attempts short: %v", err)
	}
}

// TestNoSpillLeakOnErrorPaths scans the temp dir: however an op sequence
// ends — clean, failed write, double close — no spill file may remain.
func TestNoSpillLeakOnErrorPaths(t *testing.T) {
	dir := t.TempDir()

	// Clean lifecycle.
	s, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Failing lifecycle: writes die on a stuck device, then Close.
	s, err = Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetryPolicy(fastPolicy(2))
	s.SetFault(faultinject.New(faultinject.Profile{Seed: 9, FailOpEvery: 1, FailOpBurst: 1 << 30}))
	if _, err := s.Append([]byte("doomed")); err == nil {
		t.Fatal("expected injected failure")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// File already gone before Close (e.g. the OS cleaned /tmp): Close must
	// still succeed and stay idempotent.
	s, err = Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.Path()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if left := scanSpills(t, dir); len(left) != 0 {
		t.Fatalf("spill files leaked: %v", left)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	delays := func() []time.Duration {
		s, err := Create(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.SetRetryPolicy(RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
		var ds []time.Duration
		for attempt := 1; attempt <= 8; attempt++ {
			ds = append(ds, s.backoff(attempt))
		}
		return ds
	}
	d1, d2 := delays(), delays()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("backoff not deterministic: %v vs %v", d1, d2)
		}
		if d1[i] > 4*time.Millisecond {
			t.Fatalf("backoff %v exceeds MaxDelay", d1[i])
		}
		if d1[i] <= 0 {
			t.Fatalf("backoff attempt %d not positive: %v", i+1, d1[i])
		}
	}
}
