package diskio

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestAppendReadRoundTrip(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	type rec struct {
		off  int64
		data []byte
	}
	var recs []rec
	for i := 0; i < 40; i++ {
		data := make([]byte, 1+rng.Intn(4096))
		rng.Read(data)
		off, err := s.Append(data)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{off, data})
	}
	// Random-access reads in shuffled order.
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	for _, r := range recs {
		buf := make([]byte, len(r.data))
		if err := s.ReadAt(buf, r.off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, r.data) {
			t.Fatal("readback mismatch")
		}
	}
	var total int64
	for _, r := range recs {
		total += int64(len(r.data))
	}
	if s.Size() != total {
		t.Fatalf("size %d, want %d", s.Size(), total)
	}
}

func TestThrottleModelsBandwidth(t *testing.T) {
	// 1 MB at 10 MB/s must register ≥ ~0.1 s of simulated I/O time.
	s, err := Create(t.TempDir(), 10e6)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, 1<<20)
	start := time.Now()
	if _, err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if s.IOTime() < 90*time.Millisecond {
		t.Fatalf("simulated IO time %v, want ≥ ~100ms", s.IOTime())
	}
	if wall < 90*time.Millisecond {
		t.Fatalf("throttle did not actually block (wall %v)", wall)
	}
}

func TestReadPastEnd(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := s.ReadAt(buf, 0); err == nil {
		t.Fatal("expected error reading past end")
	}
}

func TestCloseRemovesFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
