// Package diskio provides the append-only spill file used by the disk-based
// Jacobian store, with an optional bandwidth throttle that models the
// paper's measurement SSD (~0.5 GB/s) deterministically on any host, so the
// Figure-7 disk-vs-compression crossover reproduces regardless of how fast
// the local filesystem actually is.
package diskio

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Store is an append-only spill file with random-access reads.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	off     int64
	bps     float64 // simulated bytes/second; 0 disables throttling
	ioTime  time.Duration
	ioBytes int64
}

// Create opens a spill file in dir (os.TempDir() if empty). bytesPerSec of
// zero disables the bandwidth simulation.
func Create(dir string, bytesPerSec float64) (*Store, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "masc-spill-*.bin")
	if err != nil {
		return nil, fmt.Errorf("diskio: %w", err)
	}
	return &Store{f: f, path: filepath.Join(dir, filepath.Base(f.Name())), bps: bytesPerSec}, nil
}

// throttle blocks until the operation of n bytes would have completed on
// the simulated device, given it actually took `actual`.
func (s *Store) throttle(n int, actual time.Duration) time.Duration {
	if s.bps <= 0 {
		return actual
	}
	want := time.Duration(float64(n) / s.bps * float64(time.Second))
	if actual < want {
		time.Sleep(want - actual)
		return want
	}
	return actual
}

// Append writes p at the end of the file and returns its offset.
func (s *Store) Append(p []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	off := s.off
	if _, err := s.f.WriteAt(p, off); err != nil {
		return 0, fmt.Errorf("diskio: write: %w", err)
	}
	s.off += int64(len(p))
	s.ioTime += s.throttle(len(p), time.Since(start))
	s.ioBytes += int64(len(p))
	return off, nil
}

// ReadAt fills p from the given offset.
func (s *Store) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	if _, err := s.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("diskio: read: %w", err)
	}
	s.ioTime += s.throttle(len(p), time.Since(start))
	s.ioBytes += int64(len(p))
	return nil
}

// Size returns the bytes written so far.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// IOTime returns the cumulative (simulated) I/O time.
func (s *Store) IOTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ioTime
}

// Close closes and removes the spill file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	if rmErr := os.Remove(s.f.Name()); err == nil {
		err = rmErr
	}
	s.f = nil
	return err
}
