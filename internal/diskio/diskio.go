// Package diskio provides the append-only spill file used by the disk-based
// Jacobian store, with an optional bandwidth throttle that models the
// paper's measurement SSD (~0.5 GB/s) deterministically on any host, so the
// Figure-7 disk-vs-compression crossover reproduces regardless of how fast
// the local filesystem actually is.
//
// Every operation runs under a bounded retry policy with exponential
// backoff, deterministic jitter and a per-op deadline, so a transient
// device error (EINTR, a flaky network mount, an injected EIO) costs a few
// milliseconds instead of a multi-hour run. Errors that survive the retry
// budget come back as *OpError naming the operation, offset and attempt
// count.
package diskio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"masc/internal/faultinject"
	"masc/internal/obs/span"
)

// ErrClosed is returned by operations on a store after Close.
var ErrClosed = errors.New("diskio: store is closed")

// RetryPolicy bounds how hard a store fights transient I/O errors.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (min 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. 0 means uncapped.
	MaxDelay time.Duration
	// OpDeadline bounds the wall-clock time of one operation including
	// retries and backoff; once exceeded, no further attempts are made.
	// 0 disables the deadline.
	OpDeadline time.Duration
}

// DefaultRetryPolicy absorbs short transient faults (a handful of
// milliseconds) without letting a dead device stall a step for more than a
// couple of seconds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		OpDeadline:  2 * time.Second,
	}
}

// OpError is a disk operation failure after retries were exhausted (or
// skipped, for non-retryable conditions such as ErrClosed).
type OpError struct {
	Op       string // "write" or "read"
	Off      int64  // file offset of the operation
	Attempts int    // attempts made before giving up
	Err      error  // the last underlying error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("diskio: %s at offset %d failed after %d attempt(s): %v",
		e.Op, e.Off, e.Attempts, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// Store is an append-only spill file with random-access reads.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	off     int64
	bps     float64 // simulated bytes/second; 0 disables throttling
	ioTime  time.Duration
	ioBytes int64
	retry   RetryPolicy
	retries int64
	jrng    *rand.Rand // deterministic backoff jitter
	fault   *faultinject.Injector
	ctx     context.Context // optional; cancels retry backoff
	fsyncT  time.Duration
	fsyncs  int64

	spans      *span.Recorder
	spanParent span.ID
}

// Create opens a spill file in dir (os.TempDir() if empty). bytesPerSec of
// zero disables the bandwidth simulation. The store starts with
// DefaultRetryPolicy.
func Create(dir string, bytesPerSec float64) (*Store, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "masc-spill-*.bin")
	if err != nil {
		return nil, fmt.Errorf("diskio: %w", err)
	}
	return &Store{
		f:     f,
		path:  filepath.Join(dir, filepath.Base(f.Name())),
		bps:   bytesPerSec,
		retry: DefaultRetryPolicy(),
		jrng:  rand.New(rand.NewSource(0x6d617363)), // deterministic across runs
	}, nil
}

// SetRetryPolicy replaces the retry policy (a zero policy means one attempt,
// no backoff, no deadline).
func (s *Store) SetRetryPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
}

// SetContext attaches a cancellation context consulted by the retry loop:
// once ctx is done, in-flight backoff is abandoned and the operation fails
// with an *OpError wrapping ctx's error, so a per-run deadline is not
// stretched by a dying device's full retry budget. nil (the default)
// disables the check.
func (s *Store) SetContext(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctx = ctx
}

// SetFault installs a fault injector consulted before every physical disk
// attempt. nil (the default) injects nothing.
func (s *Store) SetFault(in *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = in
}

// SetSpans installs a span recorder and the parent span retry spans attach
// under. Only operations that actually retried emit a span (kind
// disk_retry), so the fault-free fast path stays untouched.
func (s *Store) SetSpans(rec *span.Recorder, parent span.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = rec
	s.spanParent = parent
}

// Path returns the spill file's location (for tests that audit cleanup).
func (s *Store) Path() string { return s.path }

// Retries returns how many retry attempts the store has performed.
func (s *Store) Retries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// backoff returns the sleep before retry number `attempt` (1-based):
// exponential growth from BaseDelay, capped at MaxDelay, with deterministic
// jitter in [d/2, d] so concurrent stores don't retry in lockstep while
// runs stay reproducible.
func (s *Store) backoff(attempt int) time.Duration {
	d := s.retry.BaseDelay << uint(attempt-1)
	if s.retry.MaxDelay > 0 && (d > s.retry.MaxDelay || d <= 0) {
		d = s.retry.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(s.jrng.Int63n(int64(half)+1))
}

// withRetry runs one physical operation under the retry policy. The caller
// holds s.mu (the store is fully serialized, so sleeping under the lock
// does not change concurrency behavior, only op latency).
func (s *Store) withRetry(op string, off int64, f func() error) error {
	maxAttempts := s.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var deadline time.Time
	if s.retry.OpDeadline > 0 {
		deadline = time.Now().Add(s.retry.OpDeadline)
	}
	var err error
	var retryT0 int64 // span clock at the first failure; 0 = no retries yet
	finish := func(attempt int, ok bool) {
		if retryT0 == 0 || s.spans == nil {
			return
		}
		sp := s.spans.StartAt(s.spanParent, span.DiskRetry, -1, retryT0)
		sp.Attr("attempts", int64(attempt))
		sp.Attr("off", off)
		sp.Attr("write", boolInt(op == "write"))
		sp.Attr("ok", boolInt(ok))
		sp.End()
	}
	for attempt := 1; ; attempt++ {
		if s.ctx != nil && s.ctx.Err() != nil {
			finish(attempt-1, false)
			return &OpError{Op: op, Off: off, Attempts: attempt - 1, Err: s.ctx.Err()}
		}
		if err = s.fault.OpError(op); err == nil {
			err = f()
		}
		if err == nil {
			finish(attempt, true)
			return nil
		}
		if retryT0 == 0 && s.spans != nil {
			retryT0 = s.spans.Now()
		}
		// EOF is deterministic (the bytes are not there), not a transient
		// device fault: retrying it only delays the typed failure.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			finish(attempt, false)
			return &OpError{Op: op, Off: off, Attempts: attempt, Err: err}
		}
		if attempt >= maxAttempts {
			finish(attempt, false)
			return &OpError{Op: op, Off: off, Attempts: attempt, Err: err}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			finish(attempt, false)
			return &OpError{Op: op, Off: off, Attempts: attempt,
				Err: fmt.Errorf("op deadline %v exceeded: %w", s.retry.OpDeadline, err)}
		}
		if !s.sleep(s.backoff(attempt)) {
			return &OpError{Op: op, Off: off, Attempts: attempt, Err: s.ctx.Err()}
		}
		s.retries++
	}
}

// sleep blocks for d or until the store's context is canceled. It reports
// whether the full backoff elapsed (true when no context is attached).
func (s *Store) sleep(d time.Duration) bool {
	if s.ctx == nil {
		time.Sleep(d)
		return true
	}
	if d <= 0 {
		return s.ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.ctx.Done():
		return false
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// throttle blocks until the operation of n bytes would have completed on
// the simulated device, given it actually took `actual`.
func (s *Store) throttle(n int, actual time.Duration) time.Duration {
	if s.bps <= 0 {
		return actual
	}
	want := time.Duration(float64(n) / s.bps * float64(time.Second))
	if actual < want {
		time.Sleep(want - actual)
		return want
	}
	return actual
}

// Append writes p at the end of the file and returns its offset.
func (s *Store) Append(p []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, &OpError{Op: "write", Off: s.off, Attempts: 0, Err: ErrClosed}
	}
	start := time.Now()
	off := s.off
	err := s.withRetry("write", off, func() error {
		_, werr := s.f.WriteAt(p, off)
		return werr
	})
	if err != nil {
		return 0, err
	}
	s.off += int64(len(p))
	s.ioTime += s.throttle(len(p), time.Since(start))
	s.ioBytes += int64(len(p))
	return off, nil
}

// ReadAt fills p from the given offset. A short read (EOF before len(p)
// bytes) is an error, like io.ReaderAt demands.
func (s *Store) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return &OpError{Op: "read", Off: off, Attempts: 0, Err: ErrClosed}
	}
	start := time.Now()
	err := s.withRetry("read", off, func() error {
		_, rerr := s.f.ReadAt(p, off)
		return rerr
	})
	if err != nil {
		return err
	}
	s.ioTime += s.throttle(len(p), time.Since(start))
	s.ioBytes += int64(len(p))
	return nil
}

// Sync fsyncs the spill file so every appended byte is durable before the
// caller journals a record referencing it. fsync failures are not retried —
// on Linux a failed fsync may drop the dirty pages, so retrying can report
// durability that does not exist; the error surfaces as a typed *OpError.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return &OpError{Op: "fsync", Off: s.off, Attempts: 0, Err: ErrClosed}
	}
	start := time.Now()
	err := s.f.Sync()
	s.fsyncT += time.Since(start)
	s.fsyncs++
	if err != nil {
		return &OpError{Op: "fsync", Off: s.off, Attempts: 1, Err: err}
	}
	return nil
}

// FsyncTime returns the cumulative wall time spent in Sync.
func (s *Store) FsyncTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fsyncT
}

// Fsyncs returns how many Sync calls the store has performed.
func (s *Store) Fsyncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fsyncs
}

// Size returns the bytes written so far.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// IOTime returns the cumulative (simulated) I/O time.
func (s *Store) IOTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ioTime
}

// Close closes and removes the spill file. It is idempotent: the second and
// later calls return nil, and the temp file is removed exactly once even
// when the underlying close fails.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	if rmErr := os.Remove(s.path); err == nil && !os.IsNotExist(rmErr) {
		err = rmErr
	}
	s.f = nil
	return err
}
