package runstate

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"masc/internal/blobframe"
)

// ErrNoConfig reports a journal whose very first frame is missing or
// invalid: nothing can be recovered from it.
var ErrNoConfig = errors.New("runstate: journal has no valid config record")

// Recovered is the trusted prefix of a journal: every frame up to (not
// including) the first torn, corrupt, or semantically inconsistent one.
type Recovered struct {
	Config Config
	// Steps holds the contiguous forward checkpoints 0..len(Steps)-1.
	Steps []StepRec
	// ForwardDone reports whether the forward phase completed; ForwardSteps
	// is the final step index it recorded.
	ForwardDone  bool
	ForwardSteps int
	// Windows maps completed adjoint window index -> its journaled progress.
	Windows map[int]*WindowRec
	// Done is non-nil when the run finished.
	Done *DoneRec
	// Offset is the file offset just past the last valid frame — the append
	// point for a resumed run (everything beyond it is a torn tail).
	Offset int64
}

// LastStep returns the newest forward checkpoint, or nil when only the
// config record survived.
func (r *Recovered) LastStep() *StepRec {
	if len(r.Steps) == 0 {
		return nil
	}
	return &r.Steps[len(r.Steps)-1]
}

// Recover scans a journal to its last valid frame. The scan stops — without
// error — at the first frame that is incomplete (torn tail), fails its
// CRC32C, or violates the record grammar (a step out of order, a second
// config, a checkpoint after forward-done): everything after a bad frame is
// untrusted by construction, because append order is the only order. Only a
// missing or invalid leading config record is a hard error.
func Recover(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: read journal: %w", err)
	}
	rec := &Recovered{Windows: map[int]*WindowRec{}}
	off := 0
	for {
		if len(data)-off < blobframe.HeaderSize {
			break
		}
		kind, step, plen, perr := blobframe.Peek(data[off:])
		if perr != nil {
			break
		}
		end := off + blobframe.HeaderSize + plen
		if plen < 0 || end > len(data) {
			break // torn tail: the payload never finished writing
		}
		payload, oerr := blobframe.Open(data[off:end], kind, step)
		if oerr != nil {
			break
		}
		if off == 0 {
			if kind != KindConfig {
				return nil, ErrNoConfig
			}
		} else if kind == KindConfig {
			break // a second config mid-stream is nonsense
		}
		if !rec.apply(kind, step, payload) {
			break
		}
		off = end
	}
	if off == 0 {
		return nil, ErrNoConfig
	}
	rec.Offset = int64(off)
	return rec, nil
}

// apply folds one verified frame into the recovered state; false means the
// frame is semantically inconsistent and the scan must stop before it.
func (r *Recovered) apply(kind byte, step int, payload []byte) bool {
	switch kind {
	case KindConfig:
		// The frame step is a fixed 0 for config records; checking it closes
		// the one header field the payload CRC cannot vouch for.
		if step != 0 {
			return false
		}
		if err := json.Unmarshal(payload, &r.Config); err != nil {
			return false
		}
		if r.Config.FormatVersion != FormatVersion {
			return false
		}
		return true
	case KindStep:
		if r.ForwardDone || step != len(r.Steps) {
			return false
		}
		sr, ok := decodeStep(step, payload)
		if !ok || (r.Config.N > 0 && len(sr.X) != r.Config.N) {
			return false
		}
		r.Steps = append(r.Steps, sr)
		return true
	case KindForwardDone:
		if r.ForwardDone || len(payload) != 4 {
			return false
		}
		n := int(binary.LittleEndian.Uint32(payload))
		if n != step || n != len(r.Steps)-1 {
			return false
		}
		r.ForwardDone = true
		r.ForwardSteps = n
		return true
	case KindWindow:
		if !r.ForwardDone {
			return false
		}
		wr, ok := decodeWindow(payload)
		if !ok || wr.J != step {
			return false
		}
		r.Windows[wr.J] = wr
		return true
	case KindDone:
		if step != 0 || !r.ForwardDone || r.Done != nil {
			return false
		}
		dr, ok := decodeDone(payload)
		if !ok {
			return false
		}
		r.Done = dr
		return true
	default:
		return false // unknown kind: written by a future version
	}
}

func decodeStep(step int, p []byte) (StepRec, bool) {
	if len(p) < 32 {
		return StepRec{}, false
	}
	n := int(binary.LittleEndian.Uint32(p[28:]))
	if len(p) != 32+8*n {
		return StepRec{}, false
	}
	sr := StepRec{
		Step:  step,
		T:     math.Float64frombits(binary.LittleEndian.Uint64(p[0:])),
		H:     math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		NextH: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
		Cuts:  int(binary.LittleEndian.Uint32(p[24:])),
		X:     make([]float64, n),
	}
	for i := range sr.X {
		sr.X[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[32+8*i:]))
	}
	return sr, true
}

func decodeWindow(p []byte) (*WindowRec, bool) {
	if len(p) < 20 {
		return nil, false
	}
	wr := &WindowRec{
		J:      int(binary.LittleEndian.Uint32(p[0:])),
		Lo:     int(binary.LittleEndian.Uint32(p[4:])),
		Hi:     int(binary.LittleEndian.Uint32(p[8:])),
		RowLen: int(binary.LittleEndian.Uint32(p[12:])),
	}
	deg := int(binary.LittleEndian.Uint32(p[16:]))
	steps := wr.Hi - wr.Lo + 1
	if steps < 0 || wr.RowLen < 0 || len(p) != 20+4*deg+8*steps*wr.RowLen {
		return nil, false
	}
	off := 20
	if deg > 0 {
		wr.Degraded = make([]int, deg)
		for i := range wr.Degraded {
			wr.Degraded[i] = int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
		}
	}
	wr.Rows = make([][]float64, steps)
	for i := range wr.Rows {
		row := make([]float64, wr.RowLen)
		for k := range row {
			row[k] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
		wr.Rows[i] = row
	}
	return wr, true
}

func decodeDone(p []byte) (*DoneRec, bool) {
	if len(p) < 12 {
		return nil, false
	}
	K := int(binary.LittleEndian.Uint32(p[0:]))
	P := int(binary.LittleEndian.Uint32(p[4:]))
	deg := int(binary.LittleEndian.Uint32(p[8:]))
	if K < 0 || P < 0 || len(p) != 12+4*deg+8*K*P {
		return nil, false
	}
	dr := &DoneRec{}
	off := 12
	if deg > 0 {
		dr.Degraded = make([]int, deg)
		for i := range dr.Degraded {
			dr.Degraded[i] = int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
		}
	}
	dr.DOdp = make([][]float64, K)
	for o := range dr.DOdp {
		row := make([]float64, P)
		for k := range row {
			row[k] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
		dr.DOdp[o] = row
	}
	return dr, true
}
