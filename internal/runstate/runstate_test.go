package runstate

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func testConfig() *Config {
	return &Config{
		CircuitHash: 0xdeadbeefcafe,
		N:           3,
		Storage:     "masc",
		Workers:     1,
		Windows:     2,
		AnchorEvery: 5,
		TStep:       1e-6,
		TStop:       1e-3,
		Method:      "be",
		Objectives:  []ObjectiveRec{{Name: "v(out)", Node: 1, Weight: 1}},
		Params:      []int{0, 1, 2},
		FsyncEvery:  4,
	}
}

func writeSample(t *testing.T, path string) {
	t.Helper()
	w, err := Create(path, testConfig())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 6; i++ {
		rec := &StepRec{Step: i, T: float64(i) * 1e-6, H: 1e-6, NextH: 1e-6,
			Cuts: i % 2, X: []float64{float64(i), -float64(i), math.Pi * float64(i)}}
		if i == 0 {
			rec.H = 0
		}
		if err := w.AppendStep(rec); err != nil {
			t.Fatalf("AppendStep %d: %v", i, err)
		}
	}
	if err := w.ForwardDone(5); err != nil {
		t.Fatalf("ForwardDone: %v", err)
	}
	if err := w.WindowDone(&WindowRec{J: 0, Lo: 0, Hi: 2, RowLen: 3,
		Rows: [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, Degraded: []int{2}}); err != nil {
		t.Fatalf("WindowDone: %v", err)
	}
	if err := w.WindowDone(&WindowRec{J: 1, Lo: 3, Hi: 5, RowLen: 3,
		Rows: [][]float64{{-1, -2, -3}, {0, 0, 0.5}, {9, 9, 9}}}); err != nil {
		t.Fatalf("WindowDone: %v", err)
	}
	if err := w.Done([][]float64{{0.25, -1.5, 1e-30}}, []int{2}); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	writeSample(t, path)
	r, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if r.Config.CircuitHash != 0xdeadbeefcafe || r.Config.Storage != "masc" || r.Config.Windows != 2 {
		t.Fatalf("config mismatch: %+v", r.Config)
	}
	if len(r.Steps) != 6 {
		t.Fatalf("steps = %d, want 6", len(r.Steps))
	}
	if !r.ForwardDone || r.ForwardSteps != 5 {
		t.Fatalf("forward done = %v/%d", r.ForwardDone, r.ForwardSteps)
	}
	s3 := r.Steps[3]
	if s3.Step != 3 || s3.T != 3e-6 || s3.Cuts != 1 || s3.X[2] != math.Pi*3 {
		t.Fatalf("step 3 mismatch: %+v", s3)
	}
	if len(r.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(r.Windows))
	}
	w0 := r.Windows[0]
	if w0.Lo != 0 || w0.Hi != 2 || w0.Rows[2][1] != 8 || len(w0.Degraded) != 1 || w0.Degraded[0] != 2 {
		t.Fatalf("window 0 mismatch: %+v", w0)
	}
	if r.Done == nil || r.Done.DOdp[0][2] != 1e-30 || r.Done.Degraded[0] != 2 {
		t.Fatalf("done mismatch: %+v", r.Done)
	}
	fi, _ := os.Stat(path)
	if r.Offset != fi.Size() {
		t.Fatalf("offset %d != file size %d", r.Offset, fi.Size())
	}
}

// Truncating the journal at every possible byte length must either recover
// a strictly shorter valid prefix or (below the config record) fail with
// ErrNoConfig — never an invented record, never a crash.
func TestRecoverTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal")
	writeSample(t, path)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.journal")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(trunc)
		if err != nil {
			continue // no config survived: correct for small cuts
		}
		if r.Offset > int64(cut) {
			t.Fatalf("cut %d: offset %d beyond file", cut, r.Offset)
		}
		if len(r.Steps) > len(ref.Steps) {
			t.Fatalf("cut %d: more steps than the full journal", cut)
		}
		// Recovered steps must be a prefix of the true trajectory.
		for i, s := range r.Steps {
			if s.T != ref.Steps[i].T || s.X[0] != ref.Steps[i].X[0] {
				t.Fatalf("cut %d: step %d differs from reference", cut, i)
			}
		}
		if r.Done != nil && cut < len(full) {
			// The Done record is the last frame; any cut strictly before the
			// end must drop it.
			t.Fatalf("cut %d: Done record survived truncation", cut)
		}
	}
}

// Flipping any single byte of the file must never yield a record the full
// journal does not contain (the CRC catches it and the scan stops).
func TestRecoverCorruptionStopsScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal")
	writeSample(t, path)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(dir, "mut.journal")
	// Sample a spread of offsets (every 7th byte keeps the test fast).
	for off := 0; off < len(full); off += 7 {
		data := append([]byte(nil), full...)
		data[off] ^= 0x40
		if err := os.WriteFile(mut, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(mut)
		if err != nil {
			continue // config destroyed — correct hard failure
		}
		if r.Offset > int64(off) {
			// The scan accepted bytes at or past the flipped one: the flip
			// must then be inside a frame the CRC did not catch — impossible.
			t.Fatalf("flip at %d: scan trusted offset %d", off, r.Offset)
		}
	}
}

func TestAppendAfterRecover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal")
	w, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.AppendStep(&StepRec{Step: i, T: float64(i), NextH: 1, X: []float64{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail: chop 5 bytes off the last record.
	full, _ := os.ReadFile(path)
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 2 {
		t.Fatalf("recovered %d steps, want 2", len(r.Steps))
	}
	w2, err := Append(path, r.Offset, &r.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendStep(&StepRec{Step: 2, T: 2, NextH: 1, X: []float64{4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	if err := w2.ForwardDone(2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Steps) != 3 || !r2.ForwardDone || r2.Steps[2].X[0] != 4 {
		t.Fatalf("after append: %d steps, done=%v", len(r2.Steps), r2.ForwardDone)
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.journal")
	if err := os.WriteFile(path, []byte("this is not a journal at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("expected ErrNoConfig for garbage")
	}
}
