// Package runstate implements the write-ahead run journal that makes a MASC
// sensitivity run crash-durable: an append-only stream of CRC32C-framed
// records (reusing the blobframe format the Jacobian stores already trust)
// holding the run configuration, one checkpoint per accepted forward step —
// the solution vector and the integrator restart state — and the adjoint
// engine's per-window progress. A process death at any byte leaves a journal
// that recovers by scanning to the last valid frame; the torn tail is
// truncated and never trusted.
//
// The journal deliberately stores solver *states*, not Jacobian blobs: the
// recompute source rebuilds every J/C tensor bit-exactly from
// (x_i, t_i, h_i), so on resume the store is re-populated from the journaled
// trajectory prefix and the forward integration restarts from the last
// checkpoint. That keeps the journal an order of magnitude smaller than the
// tensor stream, uniform across every storage strategy, and cheap enough to
// fsync on a short cadence.
//
// Record kinds (the blobframe kind byte):
//
//	'R'  run config, JSON payload — always the first record
//	'S'  forward checkpoint: step index, t, accepted h, next h, cut count,
//	     and the converged solution vector (bit-exact float64 images)
//	'F'  forward integration complete (payload: the final step index)
//	'W'  one adjoint window folded: its step range, the parked per-step
//	     contribution rows, and the steps it degraded to recomputation
//	'D'  run complete: the final dO/dp matrix and degraded-step list
package runstate

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"masc/internal/blobframe"
)

// FormatVersion is bumped whenever a record layout changes incompatibly;
// Recover rejects journals written by a different version.
const FormatVersion = 1

// Record kind bytes.
const (
	KindConfig      byte = 'R'
	KindStep        byte = 'S'
	KindForwardDone byte = 'F'
	KindWindow      byte = 'W'
	KindDone        byte = 'D'
)

// DefaultFsyncEvery is the default fsync cadence: one fsync per this many
// step records (plus one at every phase boundary). The crash window — work
// lost on a kill — is at most this many steps.
const DefaultFsyncEvery = 32

// Config pins everything a resumed run must replay identically: the circuit
// identity, the time axis and solver knobs, the storage strategy, and the
// *resolved* parallelism (window count and anchor cadence are chosen from
// runtime.NumCPU at Simulate time, so the original run's choice is recorded
// rather than re-derived on a possibly different machine).
type Config struct {
	FormatVersion int    `json:"format_version"`
	CircuitHash   uint64 `json:"circuit_hash"`
	N             int    `json:"n"`

	Storage         string  `json:"storage"`
	Workers         int     `json:"workers"`
	AdjointWorkers  int     `json:"adjoint_workers"`
	Windows         int     `json:"windows"`      // resolved window count (>= 1)
	AnchorEvery     int     `json:"anchor_every"` // resolved anchor cadence, 0 = none
	Async           bool    `json:"async,omitempty"`
	PipelineDepth   int     `json:"pipeline_depth,omitempty"`
	DiskBytesPerSec float64 `json:"disk_bps,omitempty"`
	DiskDir         string  `json:"disk_dir,omitempty"`
	MemBudgetBytes  int64   `json:"mem_budget_bytes,omitempty"`
	DisableDegrade  bool    `json:"disable_degrade,omitempty"`

	// Forward solver knobs (unresolved, exactly as passed to Simulate; the
	// resume applies the same defaulting the original run did).
	TStart    float64 `json:"t_start"`
	TStep     float64 `json:"t_step"`
	TStop     float64 `json:"t_stop"`
	MaxNewton int     `json:"max_newton,omitempty"`
	AbsTol    float64 `json:"abs_tol,omitempty"`
	RelTol    float64 `json:"rel_tol,omitempty"`
	Gmin      float64 `json:"gmin,omitempty"`
	MaxCuts   int     `json:"max_cuts,omitempty"`
	DampLimit float64 `json:"damp_limit,omitempty"`
	Method    string  `json:"method"`
	Adaptive  bool    `json:"adaptive,omitempty"`
	MinStep   float64 `json:"min_step,omitempty"`
	MaxStep   float64 `json:"max_step,omitempty"`
	LTETol    float64 `json:"lte_tol,omitempty"`

	Objectives []ObjectiveRec `json:"objectives"`
	Params     []int          `json:"params"` // resolved parameter indices

	FsyncEvery int `json:"fsync_every"`
}

// ObjectiveRec mirrors adjoint.Objective without importing it (runstate
// stays a leaf package under blobframe only).
type ObjectiveRec struct {
	Name     string  `json:"name"`
	Node     int32   `json:"node"`
	Weight   float64 `json:"weight"`
	Step     int     `json:"step,omitempty"`
	Integral bool    `json:"integral,omitempty"`
}

// StepRec is one forward checkpoint: everything the integrator needs to
// restart bit-exactly after this accepted step.
type StepRec struct {
	Step  int
	T     float64   // time of the accepted state
	H     float64   // step size that produced it (0 for the DC point)
	NextH float64   // step size the loop would try next
	Cuts  int       // halving counter carried into the next attempt
	X     []float64 // converged solution vector
}

// WindowRec is one completed adjoint window: the contribution rows it owns
// (flat [K*P] per step, exactly as parked by the windowed engine) and the
// steps it degraded to recomputation. Replaying the rows through the global
// descending-step fold reproduces the serial accumulation bit for bit.
type WindowRec struct {
	J        int // window index (W-1 = the seeding sweep / topmost window)
	Lo, Hi   int // owned step range, inclusive
	RowLen   int // K*P
	Rows     [][]float64
	Degraded []int
}

// DoneRec is the terminal record: the finished sensitivities.
type DoneRec struct {
	DOdp     [][]float64
	Degraded []int
}

// Writer appends records to a journal file through a buffered writer,
// fsync'ing on a configurable step cadence and at every phase boundary.
// Safe for concurrent use (window completions race on resume-less runs).
type Writer struct {
	mu         sync.Mutex
	f          *os.File
	bw         *bufio.Writer
	path       string
	fsyncEvery int
	pending    int // step records since the last fsync
	preSync    func() error
	fsyncT     time.Duration
	fsyncs     int64
	scratch    []byte
}

// Create starts a fresh journal at path (truncating any prior file), writes
// the config record and fsyncs it, so even a step-0 crash leaves a
// recoverable journal.
func Create(path string, cfg *Config) (*Writer, error) {
	cfg.FormatVersion = FormatVersion
	if cfg.FsyncEvery == 0 {
		cfg.FsyncEvery = DefaultFsyncEvery
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: create journal: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, fsyncEvery: cfg.FsyncEvery}
	payload, err := json.Marshal(cfg)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: encode config: %w", err)
	}
	if err := w.appendFrameLocked(KindConfig, 0, payload); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.syncLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append reopens an existing journal for appending after recovery: the torn
// tail past offset is truncated (never trusted), and new records continue
// from there. cfg must be the recovered config (it carries the cadence).
func Append(path string, offset int64, cfg *Config) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("runstate: reopen journal: %w", err)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: seek: %w", err)
	}
	every := cfg.FsyncEvery
	if every == 0 {
		every = DefaultFsyncEvery
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, fsyncEvery: every}
	// Make the truncation itself durable before appending past it.
	if err := w.syncLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Path returns the journal file location.
func (w *Writer) Path() string { return w.path }

// SetPreSync installs a hook that runs before every journal fsync — the
// facade points it at the Jacobian store's spill fsync, so any disk blob a
// durable checkpoint logically covers is on stable storage *before* the
// checkpoint record is.
func (w *Writer) SetPreSync(fn func() error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.preSync = fn
}

// FsyncTime returns the cumulative wall time spent in journal fsyncs
// (excluding the preSync hook's own accounting).
func (w *Writer) FsyncTime() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncT
}

// Fsyncs returns the number of journal fsyncs performed.
func (w *Writer) Fsyncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncs
}

// appendFrameLocked seals payload into a blobframe and writes it. Caller
// holds w.mu (or is the constructor).
func (w *Writer) appendFrameLocked(kind byte, step int, payload []byte) error {
	need := blobframe.HeaderSize + len(payload)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	frame := w.scratch[:need]
	copy(frame[blobframe.HeaderSize:], payload)
	blobframe.Seal(frame, kind, step)
	if _, err := w.bw.Write(frame); err != nil {
		return fmt.Errorf("runstate: append %q record: %w", kind, err)
	}
	return nil
}

// syncLocked flushes and fsyncs. Caller holds w.mu (or is the constructor).
func (w *Writer) syncLocked() error {
	if w.preSync != nil {
		if err := w.preSync(); err != nil {
			return fmt.Errorf("runstate: pre-sync (spill fsync): %w", err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("runstate: flush journal: %w", err)
	}
	start := time.Now()
	err := w.f.Sync()
	w.fsyncT += time.Since(start)
	w.fsyncs++
	w.pending = 0
	if err != nil {
		return fmt.Errorf("runstate: fsync journal: %w", err)
	}
	return nil
}

// Sync forces the journal durable now — the facade calls it on every exit
// path (including error returns), so the journal reflects all accepted work
// even when the run fails.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// AppendStep journals one forward checkpoint, fsync'ing when the cadence
// comes due.
func (w *Writer) AppendStep(rec *StepRec) error {
	payload := make([]byte, 8*3+4+4+8*len(rec.X))
	binary.LittleEndian.PutUint64(payload[0:], math.Float64bits(rec.T))
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(rec.H))
	binary.LittleEndian.PutUint64(payload[16:], math.Float64bits(rec.NextH))
	binary.LittleEndian.PutUint32(payload[24:], uint32(rec.Cuts))
	binary.LittleEndian.PutUint32(payload[28:], uint32(len(rec.X)))
	for i, v := range rec.X {
		binary.LittleEndian.PutUint64(payload[32+8*i:], math.Float64bits(v))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendFrameLocked(KindStep, rec.Step, payload); err != nil {
		return err
	}
	w.pending++
	if w.fsyncEvery > 0 && w.pending >= w.fsyncEvery {
		return w.syncLocked()
	}
	return nil
}

// ForwardDone journals the end of forward integration (n = final step
// index) and makes everything so far durable.
func (w *Writer) ForwardDone(n int) error {
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, uint32(n))
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendFrameLocked(KindForwardDone, n, payload); err != nil {
		return err
	}
	return w.syncLocked()
}

// WindowDone journals one completed adjoint window and fsyncs: a resumed
// run replays the parked rows instead of re-sweeping the window.
func (w *Writer) WindowDone(rec *WindowRec) error {
	steps := rec.Hi - rec.Lo + 1
	if steps < 0 || len(rec.Rows) != steps {
		return fmt.Errorf("runstate: window %d rows %d != range [%d,%d]", rec.J, len(rec.Rows), rec.Lo, rec.Hi)
	}
	payload := make([]byte, 4*5+4*len(rec.Degraded)+8*steps*rec.RowLen)
	binary.LittleEndian.PutUint32(payload[0:], uint32(rec.J))
	binary.LittleEndian.PutUint32(payload[4:], uint32(rec.Lo))
	binary.LittleEndian.PutUint32(payload[8:], uint32(rec.Hi))
	binary.LittleEndian.PutUint32(payload[12:], uint32(rec.RowLen))
	binary.LittleEndian.PutUint32(payload[16:], uint32(len(rec.Degraded)))
	off := 20
	for _, d := range rec.Degraded {
		binary.LittleEndian.PutUint32(payload[off:], uint32(d))
		off += 4
	}
	for _, row := range rec.Rows {
		if len(row) != rec.RowLen {
			return fmt.Errorf("runstate: window %d row length %d != %d", rec.J, len(row), rec.RowLen)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
			off += 8
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendFrameLocked(KindWindow, rec.J, payload); err != nil {
		return err
	}
	return w.syncLocked()
}

// Done journals the finished sensitivities and fsyncs. A journal ending in
// a Done record resumes instantly: the result is rebuilt without replaying
// anything.
func (w *Writer) Done(dodp [][]float64, degraded []int) error {
	K := len(dodp)
	P := 0
	if K > 0 {
		P = len(dodp[0])
	}
	payload := make([]byte, 4*3+4*len(degraded)+8*K*P)
	binary.LittleEndian.PutUint32(payload[0:], uint32(K))
	binary.LittleEndian.PutUint32(payload[4:], uint32(P))
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(degraded)))
	off := 12
	for _, d := range degraded {
		binary.LittleEndian.PutUint32(payload[off:], uint32(d))
		off += 4
	}
	for _, row := range dodp {
		if len(row) != P {
			return fmt.Errorf("runstate: ragged DOdp (%d != %d)", len(row), P)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
			off += 8
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendFrameLocked(KindDone, 0, payload); err != nil {
		return err
	}
	return w.syncLocked()
}

// Close flushes, fsyncs and closes the journal file (the file is kept: it
// is the durable artifact). Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	serr := w.syncLocked()
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
