// Package circuit assembles device models into the MNA system the
// simulator solves:
//
//	d/dt q(x,p) + f(x,t,p) = 0,   x ∈ ℝᴰ
//
// Assembly discovers the shared sparsity patterns of G = ∂f/∂x and
// C = ∂q/∂x once (the MASC "shared indices"), binds every device stamp to a
// value slot, and precomputes the slot maps that scatter G and C into the
// union pattern of the system Jacobian J = G + C/h.
package circuit

import (
	"fmt"
	"sync"

	"masc/internal/device"
	"masc/internal/lu"
	"masc/internal/sparse"
)

// Circuit is an assembled circuit ready for evaluation.
type Circuit struct {
	N       int // number of unknowns (node voltages + branch currents)
	Devices []device.Device

	// Unknown names, index-aligned; branch unknowns are "i(name)".
	Names []string
	// VoltageUnknown[i] reports whether unknown i is a node voltage (true)
	// or a branch current (false). Newton damping applies to voltages only.
	VoltageUnknown []bool

	GPat, CPat, JPat *sparse.Pattern
	gToJ, cToJ       []int32

	params []Param

	jPermOnce sync.Once
	jPerm     []int32
}

// JPerm returns the fill-reducing RCM column ordering of the union Jacobian
// pattern, computed once per circuit and shared by every factorization
// (transient solves, adjoint sweeps, direct sensitivities). Callers must
// not modify the returned slice.
func (c *Circuit) JPerm() []int32 {
	c.jPermOnce.Do(func() { c.jPerm = lu.RCM(c.JPat) })
	return c.jPerm
}

// Param is one adjustable parameter of the assembled circuit.
type Param struct {
	Name  string
	Dev   device.Device
	Local int // index into Dev.Params()
	info  device.ParamInfo
}

// Get returns the current parameter value.
func (p *Param) Get() float64 { return p.info.Get() }

// Set assigns the parameter value.
func (p *Param) Set(v float64) { p.info.Set(v) }

// Params returns the flattened parameter list of all devices, in device
// order. The slice is shared; callers must not modify it.
func (c *Circuit) Params() []Param { return c.params }

// Assemble builds the shared patterns and binds every device. It must be
// called once before Eval.
func assemble(c *Circuit) error {
	pc := &device.PatternCollector{
		G: sparse.NewBuilder(c.N),
		C: sparse.NewBuilder(c.N),
	}
	for _, d := range c.Devices {
		d.Collect(pc)
	}
	// Every unknown gets a structural G diagonal: it carries gmin in DC
	// analysis and guarantees a pivot candidate for floating rows.
	for i := int32(0); i < int32(c.N); i++ {
		pc.G.Add(i, i)
	}
	c.GPat = pc.G.Build()
	c.CPat = pc.C.Build()
	sb := &device.SlotBinder{GPat: c.GPat, CPat: c.CPat}
	for _, d := range c.Devices {
		d.Bind(sb)
	}
	c.JPat, c.gToJ, c.cToJ = sparse.Union(c.GPat, c.CPat)
	for _, d := range c.Devices {
		for li, pi := range d.Params() {
			c.params = append(c.params, Param{Name: pi.Name, Dev: d, Local: li, info: pi})
		}
	}
	return nil
}

// Eval holds the reusable evaluation buffers for one circuit.
type Eval struct {
	ckt *Circuit
	// Outputs of the most recent Run.
	F, Q []float64
	G, C *sparse.Matrix
	st   device.EvalState
}

// NewEval allocates evaluation buffers for c.
func NewEval(c *Circuit) *Eval {
	return &Eval{
		ckt: c,
		F:   make([]float64, c.N),
		Q:   make([]float64, c.N),
		G:   sparse.NewMatrix(c.GPat),
		C:   sparse.NewMatrix(c.CPat),
	}
}

// Run evaluates f, q, G and C at state x and time t.
func (e *Eval) Run(x []float64, t float64) {
	for i := range e.F {
		e.F[i] = 0
		e.Q[i] = 0
	}
	e.G.Clear()
	e.C.Clear()
	e.st = device.EvalState{X: x, T: t, F: e.F, Q: e.Q, Gv: e.G.Val, Cv: e.C.Val}
	for _, d := range e.ckt.Devices {
		d.Eval(&e.st)
	}
}

// ParamSens adds ∂f/∂p and ∂q/∂p of parameter p (by global index) at state
// x, time t into the accumulator (which is NOT reset first).
func (e *Eval) ParamSens(p int, x []float64, t float64, acc *device.SensAccum) {
	pr := &e.ckt.params[p]
	st := device.EvalState{X: x, T: t}
	pr.Dev.AddParamSens(pr.Local, &st, acc)
}

// BuildJ assembles J = G + invH·C into j (which must be on JPat), from the
// most recent Run.
func (e *Eval) BuildJ(j *sparse.Matrix, invH float64) {
	e.BuildJWeighted(j, 1, invH)
}

// BuildJWeighted assembles J = gw·G + cw·C into j: gw=1, cw=1/h is the
// backward-Euler Jacobian; gw=1/2, cw=1/h the trapezoidal one.
func (e *Eval) BuildJWeighted(j *sparse.Matrix, gw, cw float64) {
	if j.P != e.ckt.JPat {
		panic("circuit: BuildJ target not on the union pattern")
	}
	j.Clear()
	if gw != 0 {
		sparse.AXPYInto(j, gw, e.G, e.ckt.gToJ)
	}
	if cw != 0 {
		sparse.AXPYInto(j, cw, e.C, e.ckt.cToJ)
	}
}

// AddGmin adds g to every structural diagonal of j's G-part. Used by the DC
// solver's gmin stepping.
func (c *Circuit) AddGmin(j *sparse.Matrix, g float64) {
	d := j.P.DiagSlots()
	for i := 0; i < c.N; i++ {
		if d[i] >= 0 {
			j.Val[d[i]] += g
		}
	}
}

// String summarizes the circuit for logs.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{unknowns=%d devices=%d gnnz=%d cnnz=%d jnnz=%d params=%d}",
		c.N, len(c.Devices), c.GPat.NNZ(), c.CPat.NNZ(), c.JPat.NNZ(), len(c.params))
}
