package circuit

import (
	"math"
	"math/rand"
	"testing"

	"masc/internal/device"
	"masc/internal/sparse"
)

func newJ(c *Circuit) *sparse.Matrix { return sparse.NewMatrix(c.JPat) }

// buildKitchenSink returns a circuit containing every device type.
func buildKitchenSink(t testing.TB) *Circuit {
	b := NewBuilder()
	b.AddVSource("v1", "in", "0", device.Sin{VA: 1, Freq: 1e3})
	b.AddResistor("r1", "in", "a", 1e3)
	b.AddCapacitor("c1", "a", "0", 1e-9)
	b.AddInductor("l1", "a", "b", 1e-3)
	b.AddResistor("r2", "b", "0", 2e3)
	b.AddDiode("d1", "a", "c")
	b.AddResistor("r3", "c", "0", 1e4)
	q1 := b.AddBJT("q1", "b", "a", "e")
	q1.VAF = 80 // exercise the Early effect in the FD checks
	b.AddResistor("r4", "e", "0", 500)
	b.AddMOSFET("m1", "b", "a", "s")
	m2 := b.AddMOSFET("m2", "c", "b", "s")
	m2.UseMeyer = true
	b.AddResistor("r5", "s", "0", 800)
	b.AddISource("i1", "c", "0", device.DC(1e-4))
	b.AddVCCS("g1", "c", "0", "a", "0", 1e-3)
	b.AddVCVS("e1", "f", "0", "b", "0", 2.0)
	b.AddResistor("r6", "f", "0", 1e3)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

func TestAssembleShapes(t *testing.T) {
	ckt := buildKitchenSink(t)
	if ckt.N != 10 { // in,a,b,c,e,s,f + 3 branches (v1, l1, e1)
		t.Fatalf("unknown count = %d, want 10 (%v)", ckt.N, ckt.Names)
	}
	if ckt.GPat.NNZ() == 0 || ckt.CPat.NNZ() == 0 || ckt.JPat.NNZ() < ckt.GPat.NNZ() {
		t.Fatalf("suspicious patterns: %s", ckt)
	}
	if err := ckt.GPat.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ckt.CPat.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ckt.JPat.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ckt.Params()) == 0 {
		t.Fatal("no parameters registered")
	}
}

// evalAt evaluates f and q at state x (fresh buffers).
func evalAt(ckt *Circuit, x []float64, tm float64) (f, q []float64) {
	e := NewEval(ckt)
	e.Run(x, tm)
	f = append([]float64(nil), e.F...)
	q = append([]float64(nil), e.Q...)
	return
}

// TestJacobianMatchesFiniteDifference verifies G = ∂f/∂x and C = ∂q/∂x for
// the full device zoo at random operating points.
func TestJacobianMatchesFiniteDifference(t *testing.T) {
	ckt := buildKitchenSink(t)
	rng := rand.New(rand.NewSource(12))
	e := NewEval(ckt)
	for trial := 0; trial < 12; trial++ {
		x := make([]float64, ckt.N)
		for i := range x {
			x[i] = 0.8 * rng.NormFloat64() // keep junctions in a sane range
		}
		tm := rng.Float64() * 1e-3
		e.Run(x, tm)
		gd := e.G.Dense()
		cd := e.C.Dense()
		const h = 1e-7
		for j := 0; j < ckt.N; j++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[j] += h
			xm[j] -= h
			fp, qp := evalAt(ckt, xp, tm)
			fm, qm := evalAt(ckt, xm, tm)
			for i := 0; i < ckt.N; i++ {
				dfd := (fp[i] - fm[i]) / (2 * h)
				dqd := (qp[i] - qm[i]) / (2 * h)
				scale := math.Max(1, math.Abs(dfd))
				if diff := math.Abs(gd[i][j] - dfd); diff > 2e-4*scale {
					t.Fatalf("trial %d: G[%d][%d] = %g, FD %g (diff %g)", trial, i, j, gd[i][j], dfd, diff)
				}
				scaleQ := math.Max(1e-9, math.Abs(dqd))
				if diff := math.Abs(cd[i][j] - dqd); diff > 1e-3*scaleQ {
					t.Fatalf("trial %d: C[%d][%d] = %g, FD %g", trial, i, j, cd[i][j], dqd)
				}
			}
		}
	}
}

// TestParamSensMatchesFiniteDifference verifies ∂f/∂p and ∂q/∂p for every
// registered parameter against central differences.
func TestParamSensMatchesFiniteDifference(t *testing.T) {
	ckt := buildKitchenSink(t)
	rng := rand.New(rand.NewSource(99))
	e := NewEval(ckt)
	x := make([]float64, ckt.N)
	for i := range x {
		x[i] = 0.6 * rng.NormFloat64()
	}
	tm := 3e-4
	acc := device.NewSensAccum(ckt.N)
	for pi, p := range ckt.Params() {
		acc.Reset()
		e.ParamSens(pi, x, tm, acc)
		dfdp := acc.DFdp
		dqdp := acc.DQdp

		v0 := p.Get()
		// Relative step: large enough to beat cancellation for tiny
		// parameters (Is ~ 1e-14 enters f linearly, so a big relative
		// step is harmless there).
		h := math.Abs(v0) * 1e-4
		if math.Abs(v0) < 1e-6 {
			// Tiny parameters (Is, junction caps) enter f and q linearly,
			// so a huge relative step is exact and beats cancellation.
			h = math.Abs(v0) * 1e3
		}
		if h == 0 {
			h = 1e-9
		}
		p.Set(v0 + h)
		fp, qp := evalAt(ckt, x, tm)
		p.Set(v0 - h)
		fm, qm := evalAt(ckt, x, tm)
		p.Set(v0)
		for i := 0; i < ckt.N; i++ {
			dfd := (fp[i] - fm[i]) / (2 * h)
			dqd := (qp[i] - qm[i]) / (2 * h)
			scale := math.Max(math.Abs(dfd), 1e-12)
			if diff := math.Abs(dfdp[i] - dfd); diff > 1e-3*scale+1e-12 {
				t.Fatalf("param %s: dfdp[%d] = %g, FD %g", p.Name, i, dfdp[i], dfd)
			}
			scaleQ := math.Max(math.Abs(dqd), 1e-15)
			if diff := math.Abs(dqdp[i] - dqd); diff > 1e-3*scaleQ+1e-15 {
				t.Fatalf("param %s: dqdp[%d] = %g, FD %g", p.Name, i, dqdp[i], dqd)
			}
		}
	}
}

func TestBuildJ(t *testing.T) {
	ckt := buildKitchenSink(t)
	e := NewEval(ckt)
	x := make([]float64, ckt.N)
	for i := range x {
		x[i] = 0.1 * float64(i)
	}
	e.Run(x, 0)
	j := newJ(ckt)
	invH := 1e6
	e.BuildJ(j, invH)
	gd := e.G.Dense()
	cd := e.C.Dense()
	jd := j.Dense()
	for r := 0; r < ckt.N; r++ {
		for c := 0; c < ckt.N; c++ {
			want := gd[r][c] + invH*cd[r][c]
			if diff := math.Abs(jd[r][c] - want); diff > math.Abs(want)*1e-12+1e-12 {
				t.Fatalf("J[%d][%d] = %g, want %g", r, c, jd[r][c], want)
			}
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error building empty circuit")
	}
	b2 := NewBuilder()
	b2.AddResistor("r1", "a", "0", -5)
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for negative resistance")
	}
	b3 := NewBuilder()
	b3.AddResistor("r1", "a", "b", 10)
	if _, err := b3.NodeIndex("zzz"); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if idx, err := b3.NodeIndex("a"); err != nil || idx != 0 {
		t.Fatalf("NodeIndex(a) = %d, %v", idx, err)
	}
	if idx, _ := b3.NodeIndex("gnd"); idx != device.Ground {
		t.Fatal("gnd should map to ground")
	}
}

func TestGroundHandling(t *testing.T) {
	// A device entirely to ground must produce a well-formed 1-unknown
	// system when paired with something else.
	b := NewBuilder()
	b.AddResistor("r1", "a", "0", 1e3)
	b.AddCapacitor("c1", "a", "0", 1e-9)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ckt.N != 1 {
		t.Fatalf("N = %d, want 1", ckt.N)
	}
	e := NewEval(ckt)
	e.Run([]float64{2}, 0)
	if got := e.F[0]; math.Abs(got-2e-3) > 1e-12 {
		t.Fatalf("f[0] = %g, want 2e-3", got)
	}
	if got := e.Q[0]; math.Abs(got-2e-9) > 1e-21 {
		t.Fatalf("q[0] = %g, want 2e-9", got)
	}
}
