package circuit

import (
	"fmt"

	"masc/internal/device"
)

// Builder constructs a Circuit from named nodes. Node "0" (or "gnd") is
// ground. Devices needing branch-current unknowns allocate them through the
// builder.
type Builder struct {
	nodes   map[string]int32
	names   []string
	isVolt  []bool
	devices []device.Device
	errs    []error
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{nodes: make(map[string]int32)}
}

// Node returns (allocating if needed) the unknown index for a node name.
func (b *Builder) Node(name string) int32 {
	if name == "0" || name == "gnd" || name == "GND" {
		return device.Ground
	}
	if idx, ok := b.nodes[name]; ok {
		return idx
	}
	idx := int32(len(b.names))
	b.nodes[name] = idx
	b.names = append(b.names, "v("+name+")")
	b.isVolt = append(b.isVolt, true)
	return idx
}

// Branch allocates a branch-current unknown for the named device.
func (b *Builder) Branch(devName string) int32 {
	idx := int32(len(b.names))
	b.names = append(b.names, "i("+devName+")")
	b.isVolt = append(b.isVolt, false)
	return idx
}

// NodeIndex returns the unknown index of an existing node name, or an error
// if the node was never mentioned.
func (b *Builder) NodeIndex(name string) (int32, error) {
	if name == "0" || name == "gnd" || name == "GND" {
		return device.Ground, nil
	}
	idx, ok := b.nodes[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return idx, nil
}

// Add registers an already-constructed device.
func (b *Builder) Add(d device.Device) {
	b.devices = append(b.devices, d)
}

// AddResistor adds a resistor between named nodes.
func (b *Builder) AddResistor(name, n1, n2 string, r float64) *device.Resistor {
	if r <= 0 {
		b.errs = append(b.errs, fmt.Errorf("circuit: %s: non-positive resistance %g", name, r))
		r = 1
	}
	d := &device.Resistor{Name: name, A: b.Node(n1), B: b.Node(n2), R: r}
	b.Add(d)
	return d
}

// AddCapacitor adds a capacitor between named nodes.
func (b *Builder) AddCapacitor(name, n1, n2 string, c float64) *device.Capacitor {
	if c <= 0 {
		b.errs = append(b.errs, fmt.Errorf("circuit: %s: non-positive capacitance %g", name, c))
		c = 1e-12
	}
	d := &device.Capacitor{Name: name, A: b.Node(n1), B: b.Node(n2), C: c}
	b.Add(d)
	return d
}

// AddInductor adds an inductor between named nodes.
func (b *Builder) AddInductor(name, n1, n2 string, l float64) *device.Inductor {
	d := &device.Inductor{Name: name, A: b.Node(n1), B: b.Node(n2), Br: b.Branch(name), L: l}
	b.Add(d)
	return d
}

// AddVSource adds an independent voltage source (positive node first).
func (b *Builder) AddVSource(name, np, nn string, w device.Waveform) *device.VSource {
	d := device.NewVSource(name, b.Node(np), b.Node(nn), b.Branch(name), w)
	b.Add(d)
	return d
}

// AddISource adds an independent current source (current flows P→N inside).
func (b *Builder) AddISource(name, np, nn string, w device.Waveform) *device.ISource {
	d := device.NewISource(name, b.Node(np), b.Node(nn), w)
	b.Add(d)
	return d
}

// AddVCCS adds a voltage-controlled current source (output pair, then
// controlling pair).
func (b *Builder) AddVCCS(name, np, nn, ncp, ncn string, gm float64) *device.VCCS {
	d := &device.VCCS{Name: name, P: b.Node(np), N: b.Node(nn),
		CP: b.Node(ncp), CN: b.Node(ncn), Gm: gm}
	b.Add(d)
	return d
}

// AddVCVS adds a voltage-controlled voltage source (output pair, then
// controlling pair).
func (b *Builder) AddVCVS(name, np, nn, ncp, ncn string, gain float64) *device.VCVS {
	d := &device.VCVS{Name: name, P: b.Node(np), N: b.Node(nn),
		CP: b.Node(ncp), CN: b.Node(ncn), Br: b.Branch(name), Gain: gain}
	b.Add(d)
	return d
}

// AddDiode adds a junction diode (anode first).
func (b *Builder) AddDiode(name, na, nb string) *device.Diode {
	d := device.NewDiode(name, b.Node(na), b.Node(nb))
	b.Add(d)
	return d
}

// AddBJT adds an NPN transistor (collector, base, emitter).
func (b *Builder) AddBJT(name, nc, nb, ne string) *device.BJT {
	d := device.NewBJT(name, b.Node(nc), b.Node(nb), b.Node(ne))
	b.Add(d)
	return d
}

// AddMOSFET adds an NMOS transistor (drain, gate, source).
func (b *Builder) AddMOSFET(name, nd, ng, ns string) *device.MOSFET {
	d := device.NewMOSFET(name, b.Node(nd), b.Node(ng), b.Node(ns))
	b.Add(d)
	return d
}

// Build assembles the circuit. It fails if any device was added with
// invalid arguments or if the circuit is empty.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.devices) == 0 {
		return nil, fmt.Errorf("circuit: no devices")
	}
	if len(b.names) == 0 {
		return nil, fmt.Errorf("circuit: no unknowns (everything grounded?)")
	}
	c := &Circuit{
		N:              len(b.names),
		Devices:        b.devices,
		Names:          b.names,
		VoltageUnknown: b.isVolt,
	}
	if err := assemble(c); err != nil {
		return nil, err
	}
	return c, nil
}
