package adjoint

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"masc/internal/circuit"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// cancellingSource cancels a context after a fixed number of fetches — the
// reverse-sweep analogue of a deadline firing mid-run.
type cancellingSource struct {
	base    JacobianSource
	cancel  context.CancelFunc
	after   int32
	fetches int32
}

func (c *cancellingSource) Fetch(i int) ([]float64, []float64, error) {
	if atomic.AddInt32(&c.fetches, 1) == c.after {
		c.cancel()
	}
	return c.base.Fetch(i)
}

func (c *cancellingSource) Release(i int) { c.base.Release(i) }

// stallingSource blocks one step's fetch until the gate closes — a wedged
// disk read, from the sweep's point of view.
type stallingSource struct {
	base  JacobianSource
	stall int
	gate  chan struct{}
}

func (s *stallingSource) Fetch(i int) ([]float64, []float64, error) {
	if i == s.stall {
		<-s.gate
	}
	return s.base.Fetch(i)
}

func (s *stallingSource) Release(i int) { s.base.Release(i) }

// runForward integrates the rc_ladder fixture into a fresh memory store.
func runForward(t *testing.T) (ckt *circuit.Circuit, res *transient.Result, src JacobianSource, objs []Objective) {
	t.Helper()
	tc := cases()[0]
	c, b := tc.build(t)
	opt := tc.opt
	mem := jactensor.NewMemStore()
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		return mem.Put(step, J.Val, C.Val)
	}
	r, err := transient.Run(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.EndForward(); err != nil {
		t.Fatal(err)
	}
	node, err := b.NodeIndex(tc.obj)
	if err != nil {
		t.Fatal(err)
	}
	objs = []Objective{
		{Name: "final", Node: node, Weight: 1},
		{Name: "integral", Node: node, Weight: 2, Integral: true},
	}
	return c, r, keepAll{mem}, objs
}

// TestCancelDuringWindowedSweep is the satellite-3 regression: cancellation
// that fires while a windowed, overlapped (fetcher-goroutine) sweep is in
// flight must surface as the context error from Sensitivities and tear every
// worker down cleanly — run under -race in CI.
func TestCancelDuringWindowedSweep(t *testing.T) {
	ckt, res, src, objs := runForward(t)
	for _, cfg := range []Options{
		{Windows: 3},
		{Windows: 3, Workers: 2},
		{Workers: 2},
		{},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		cs := &cancellingSource{base: src, cancel: cancel, after: 10}
		cfg.Ctx = ctx
		_, err := Sensitivities(ckt, res, cs, objs, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("windows=%d workers=%d: want context.Canceled, got %v",
				cfg.Windows, cfg.Workers, err)
		}
	}
}

// TestPreCanceledContext: a context dead on arrival aborts before any work.
func TestPreCanceledContext(t *testing.T) {
	ckt, res, src, objs := runForward(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sensitivities(ckt, res, src, objs, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestFetchStallTimeout: a fetch that never returns must trip the watchdog
// instead of hanging the sweep.
func TestFetchStallTimeout(t *testing.T) {
	ckt, res, src, objs := runForward(t)
	gate := make(chan struct{})
	defer close(gate) // let the abandoned fetcher goroutine exit
	ss := &stallingSource{base: src, stall: res.Steps() / 2, gate: gate}
	done := make(chan error, 1)
	go func() {
		_, err := Sensitivities(ckt, res, ss, objs, Options{Workers: 2, FetchStallTimeout: 100 * time.Millisecond})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFetchStalled) {
			t.Fatalf("want ErrFetchStalled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep hung despite FetchStallTimeout")
	}
}

// TestWindowDoneReplayBitIdentical is the adjoint half of the resume
// property: journaling every window's contribution rows via WindowDone and
// replaying any subset of them through Completed must reproduce the
// uninterrupted DOdp bits exactly — including the all-complete case, which
// folds without sweeping.
func TestWindowDoneReplayBitIdentical(t *testing.T) {
	ckt, res, src, objs := runForward(t)
	const W = 3

	want, err := Sensitivities(ckt, res, src, objs, Options{Windows: W})
	if err != nil {
		t.Fatal(err)
	}

	// Journal every window.
	records := map[int]*WindowProgress{}
	_, err = Sensitivities(ckt, res, src, objs, Options{Windows: W,
		WindowDone: func(j, lo, hi int, rows [][]float64, degraded []int) error {
			wp := &WindowProgress{Lo: lo, Hi: hi, Degraded: append([]int(nil), degraded...)}
			for _, row := range rows {
				wp.Rows = append(wp.Rows, append([]float64(nil), row...))
			}
			records[j] = wp
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != W {
		t.Fatalf("WindowDone fired for %d windows, want %d", len(records), W)
	}
	// Owned ranges must tile [0, n] exactly.
	covered := 0
	for _, wp := range records {
		covered += wp.Hi - wp.Lo + 1
	}
	if covered != res.Steps()+1 {
		t.Fatalf("owned ranges cover %d steps, trajectory has %d", covered, res.Steps()+1)
	}

	subset := func(js ...int) map[int]*WindowProgress {
		m := map[int]*WindowProgress{}
		for _, j := range js {
			m[j] = records[j]
		}
		return m
	}
	cases := []map[int]*WindowProgress{
		subset(0),
		subset(W - 1),     // completed seeder, others re-swept
		subset(0, 1),      // all but the seeder
		subset(0, 1, W-1), // everything: fold directly
	}
	for ci, completed := range cases {
		got, err := Sensitivities(ckt, res, src, objs, Options{Windows: W, Completed: completed})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for o := range want.DOdp {
			for pk := range want.DOdp[o] {
				if math.Float64bits(got.DOdp[o][pk]) != math.Float64bits(want.DOdp[o][pk]) {
					t.Fatalf("case %d: DOdp[%d][%d] = %x, want %x", ci, o, pk,
						math.Float64bits(got.DOdp[o][pk]), math.Float64bits(want.DOdp[o][pk]))
				}
			}
		}
	}

	// Stale geometry must be dropped, not folded: shift one record's range.
	bad := subset(0)
	bad[0] = &WindowProgress{Lo: bad[0].Lo + 1, Hi: bad[0].Hi + 1, Rows: records[0].Rows}
	got, err := Sensitivities(ckt, res, src, objs, Options{Windows: W, Completed: bad})
	if err != nil {
		t.Fatal(err)
	}
	for o := range want.DOdp {
		for pk := range want.DOdp[o] {
			if math.Float64bits(got.DOdp[o][pk]) != math.Float64bits(want.DOdp[o][pk]) {
				t.Fatalf("stale progress perturbed DOdp[%d][%d]", o, pk)
			}
		}
	}
}
