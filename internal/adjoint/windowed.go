package adjoint

// Parallel-in-time windowed reverse sweeps. The trajectory [0, n] is cut
// into W windows at ascending "top" boundaries t_0 < t_1 < … < t_{W-1} = n
// (window j owns steps [t_{j-1}+1, t_j]; window 0 owns [0, t_0]) and the W
// window-local reverse sweeps run concurrently.
//
// The adjoint recurrence is sequential in time, so windows below the top
// cannot start cold: a *seeding sweep* descends from n performing only the
// fetch + factorize + solve chain (no parameter-gradient accumulation below
// its own window) and, as it crosses each boundary, hands the window a seed
// — deep copies of λ_{t_j+1} and the pend carries, plus a clone of the LU
// factorization state — which is exactly the serial sweep's state at that
// point. The seeding sweep doubles as the topmost window (it accumulates
// parameter gradients for steps above t_{W-2}), so its fetch/factor/solve
// work is never duplicated there.
//
// Bit identity for every W (the tentpole contract) rests on three pillars:
//
//  1. Seeds are bit-exact serial state: the seeding sweep executes the
//     identical per-step operation sequence the serial engine would, and
//     lu.Clone copies the numeric factorization state verbatim, so each
//     window's first Refactor sees exactly what the serial sweep's would.
//  2. Parameter-gradient contributions are parked per (step, objective,
//     parameter) in flat buffers and folded into DOdp afterwards in global
//     descending-step order — the serial accumulation sequence. (Summing
//     per window and merging would reorder float additions.)
//  3. Each window fetches through its own view of the store — a StoreSlice
//     with forked decoders for anchored compressed stores, a copy-on-fetch
//     sharedSource for random-access sources — so concurrent sweeps decode
//     the same bytes the serial sweep would, independently.
//
// Degraded runs stay bit-identical too: recomputation is a pure function of
// the trajectory, and the ladder heals each corrupt step with the same
// plaintext regardless of which sweep hits it first.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"masc/internal/circuit"
	"masc/internal/jactensor"
	"masc/internal/lu"
	"masc/internal/obs/span"
	"masc/internal/transient"
)

// windowSeed is the adjoint state a window sweep starts from: the state the
// serial sweep would have after processing step t_j+1, captured by the
// seeding sweep as it crosses the boundary.
type windowSeed struct {
	lamNext [][]float64 // λ_{t_j+1} per objective
	pendQ   [][]float64
	pendF   [][]float64
	fact    *lu.LU // factorization state entering step t_j
}

// captureSeed deep-copies the sweep's boundary state. Must run between
// processStep calls (the windowed engine calls it from afterStep).
func captureSeed(s *sweep) *windowSeed {
	seed := &windowSeed{
		lamNext: make([][]float64, len(s.objs)),
		pendQ:   make([][]float64, len(s.objs)),
		pendF:   make([][]float64, len(s.objs)),
	}
	for o := range s.objs {
		seed.lamNext[o] = append([]float64(nil), s.lamNext[o]...)
		seed.pendQ[o] = append([]float64(nil), s.pendQ[o]...)
		if s.trap {
			seed.pendF[o] = append([]float64(nil), s.pendF[o]...)
		}
	}
	if s.fact != nil {
		seed.fact = s.fact.Clone()
	}
	return seed
}

// applySeed installs a boundary seed into a freshly constructed sweep.
func (s *sweep) applySeed(seed *windowSeed) {
	s.seed = seed
	for o := range s.objs {
		copy(s.lamNext[o], seed.lamNext[o])
		copy(s.pendQ[o], seed.pendQ[o])
		if s.trap {
			copy(s.pendF[o], seed.pendF[o])
		}
	}
	s.fact = seed.fact
}

// sliceableSource is a JacobianSource that supports independent concurrent
// window views: anchored jactensor.CompressedStores. AnchorSteps doubles as
// the boundary menu — every anchor is a self-contained restart point of the
// compressed prediction chain.
type sliceableSource interface {
	AnchorSteps() []int
	Slice(lo, hi int) (*jactensor.StoreSlice, error)
}

// anchoredSource is a random-access source that nonetheless publishes
// preferred window boundaries: the tiered store pins its anchor steps
// against the drop-and-recompute rung, so cutting windows at those anchors
// keeps every window's first fetch off the recompute path. It needs no
// Slice views — window sweeps share it through sharedSource.
type anchoredSource interface{ AnchorSteps() []int }

// anchorTops selects ascending window tops from an anchor menu (the last
// entry is the head step n): all of them when there are at most W-1, evenly
// spaced picks otherwise.
func anchorTops(anchors []int, n, W int) []int {
	// Keep only strictly-increasing interior anchors in (0, n): an anchor
	// menu that repeats the head (or lists it among the interior entries)
	// would otherwise yield duplicate tops — degenerate empty windows whose
	// param contributions are silently skipped.
	interior := make([]int, 0, len(anchors))
	for _, a := range anchors[:len(anchors)-1] {
		if a > 0 && a < n && (len(interior) == 0 || a > interior[len(interior)-1]) {
			interior = append(interior, a)
		}
	}
	tops := make([]int, 0, W)
	if len(interior) <= W-1 {
		tops = append(tops, interior...)
	} else {
		// Evenly spaced picks; strictly increasing because
		// len(interior) >= W.
		for k := 0; k < W-1; k++ {
			tops = append(tops, interior[(k+1)*len(interior)/W])
		}
	}
	tops = append(tops, n)
	if len(tops) < 2 {
		return nil
	}
	return tops
}

// windowBoundaries picks the ascending window tops for a W-way split of
// [0, n]; the last top is always n. Anchored compressed stores constrain
// boundaries to their anchor steps (a window top must be self-contained to
// decode without the upper window's chain); random-access sources split
// arithmetically. Returns nil when no usable split exists — the caller
// falls back to the serial engine.
func windowBoundaries(src JacobianSource, n, W int) []int {
	if W > n+1 {
		W = n + 1 // at most one step per window
	}
	if W < 2 {
		return nil
	}
	if as, ok := src.(sliceableSource); ok {
		anchors := as.AnchorSteps()
		if len(anchors) == 0 {
			return nil // forward pass not finished — cannot window
		}
		return anchorTops(anchors, n, W)
	}
	if as, ok := src.(anchoredSource); ok {
		if anchors := as.AnchorSteps(); len(anchors) > 0 {
			return anchorTops(anchors, n, W)
		}
		// No anchors requested: the source is random-access, so the
		// arithmetic split below is fine.
	}
	tops := make([]int, 0, W)
	for j := 1; j <= W; j++ {
		t := j*(n+1)/W - 1
		if len(tops) == 0 || t > tops[len(tops)-1] {
			tops = append(tops, t)
		}
	}
	if len(tops) < 2 {
		return nil
	}
	return tops
}

// sharedSource adapts a random-access JacobianSource (MemStore, DiskStore,
// RecomputeSource) for concurrent window sweeps: every Fetch is serialized
// under one mutex and copied into an owned buffer on first access (sources
// may alias internal scratch, and MemStore frees on Release), after which
// the base step is released immediately. Per-step refcounts — one per sweep
// that will fetch the step — free the copy on the last Release, keeping the
// resident footprint at the serial sweep's level plus the in-flight window
// frontier.
type sharedSource struct {
	base JacobianSource
	mu   sync.Mutex
	refs []int
	js   [][]float64
	cs   [][]float64
}

// newSharedSource sizes the refcounts for the windowed fetch plan over the
// given tops: the seeding sweep covers (t_0, n], window j covers its own
// range, so steps in (t_0, t_{W-2}] are fetched twice and the rest once.
func newSharedSource(base JacobianSource, tops []int) *sharedSource {
	n := tops[len(tops)-1]
	t0 := tops[0]
	tPen := tops[len(tops)-2]
	ss := &sharedSource{
		base: base,
		refs: make([]int, n+1),
		js:   make([][]float64, n+1),
		cs:   make([][]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		if i > t0 && i <= tPen {
			ss.refs[i] = 2
		} else {
			ss.refs[i] = 1
		}
	}
	return ss
}

func (ss *sharedSource) Fetch(i int) ([]float64, []float64, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.js[i] != nil {
		return ss.js[i], ss.cs[i], nil
	}
	jv, cv, err := ss.base.Fetch(i)
	if err != nil {
		return nil, nil, err // not cached: the ladder may heal and refetch
	}
	ss.js[i] = append([]float64(nil), jv...)
	ss.cs[i] = append([]float64(nil), cv...)
	ss.base.Release(i)
	return ss.js[i], ss.cs[i], nil
}

func (ss *sharedSource) Release(i int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if i < 0 || i >= len(ss.refs) {
		return
	}
	ss.refs[i]--
	if ss.refs[i] <= 0 {
		ss.js[i], ss.cs[i] = nil, nil
	}
}

// Repair forwards healed plaintext to the base store so the degradation
// accounting matches the serial engine's. (The failed step was never
// cached, so there is nothing to invalidate here.)
func (ss *sharedSource) Repair(i int, jVals, cVals []float64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if rp, ok := ss.base.(jactensor.Repairer); ok {
		rp.Repair(i, jVals, cVals)
	}
}

// runWindowed executes the windowed reverse sweep. handled reports whether
// the windowed engine ran at all; (nil, false, nil) means no usable
// boundaries and the caller should fall back to the serial path.
func runWindowed(ckt *circuit.Circuit, tr *transient.Result, src JacobianSource, objs []Objective, params []int, trap bool, opt Options) (res *Result, handled bool, err error) {
	n := tr.Steps()
	tops := windowBoundaries(src, n, opt.Windows)
	if len(tops) < 2 {
		return nil, false, nil
	}
	W := len(tops)

	// Per-window store views. views[j] belongs to window j; the last is the
	// seeding sweep's, spanning everything above window 0.
	views := make([]JacobianSource, 0, W)
	if sl, ok := src.(sliceableSource); ok {
		lo := 0
		for j := 0; j < W-1; j++ {
			v, serr := sl.Slice(lo, tops[j])
			if serr != nil {
				return nil, false, nil
			}
			views = append(views, v)
			lo = tops[j] + 1
		}
		sv, serr := sl.Slice(tops[0]+1, n)
		if serr != nil {
			return nil, false, nil
		}
		views = append(views, sv)
	} else {
		ss := newSharedSource(src, tops)
		for j := 0; j < W; j++ {
			views = append(views, ss)
		}
	}

	// One flat contribution row per step: fold order, not compute order,
	// determines the float accumulation sequence.
	K, P := len(objs), len(params)
	contribs := make([][]float64, n+1)
	for i := range contribs {
		contribs[i] = make([]float64, K*P)
	}

	// Ownership ranges: window j < W-1 owns [lows[j], tops[j]]; the seeding
	// sweep owns (t_{W-2}, n].
	windowAt := make(map[int]int, W-1) // step t_j+1 -> window index j
	lows := make([]int, W-1)
	for j := 0; j < W-1; j++ {
		if j > 0 {
			lows[j] = tops[j-1] + 1
		}
		windowAt[tops[j]+1] = j
	}

	// Journaled progress replay: a completed window's rows are copied into
	// the contribution buffers and its sweep skipped. Geometry must match
	// the freshly computed boundaries exactly — anything stale is dropped
	// wholesale, degrading to a full re-sweep, never to a wrong fold.
	completed := map[int]*WindowProgress{}
	if len(opt.Completed) > 0 {
		valid := true
	validate:
		for j, wp := range opt.Completed {
			var lo, hi int
			switch {
			case j >= 0 && j < W-1:
				lo, hi = lows[j], tops[j]
			case j == W-1:
				lo, hi = tops[W-2]+1, n
			default:
				valid = false
				break validate
			}
			if wp == nil || wp.Lo != lo || wp.Hi != hi || len(wp.Rows) != hi-lo+1 {
				valid = false
				break validate
			}
			for _, row := range wp.Rows {
				if len(row) != K*P {
					valid = false
					break validate
				}
			}
		}
		if valid {
			completed = opt.Completed
		}
	}

	tWall := time.Now()
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stopCh) }) }

	var mu sync.Mutex
	var firstErr error
	var degraded []int
	var timing Timing
	sweepSec := make([]float64, W)

	for _, wp := range completed {
		for i, row := range wp.Rows {
			copy(contribs[wp.Lo+i], row)
		}
		degraded = append(degraded, wp.Degraded...)
	}

	finish := func(j int, ws *sweep, wall time.Duration, werr error) {
		mu.Lock()
		if _, done := completed[j]; !done && werr == nil && opt.WindowDone != nil {
			// Inside the engine lock: hooks observe windows one at a time,
			// in completion order. The owned range excludes the seeding
			// sweep's param-free descent below t_{W-2}.
			lo := max(ws.loStep, ws.skipParamsAtOrBelow+1)
			if herr := opt.WindowDone(j, lo, ws.hiStep, contribs[lo:ws.hiStep+1], ws.res.DegradedSteps); herr != nil {
				werr = fmt.Errorf("adjoint: window %d completion hook: %w", j, herr)
			}
		}
		sweepSec[j] = wall.Seconds()
		degraded = append(degraded, ws.res.DegradedSteps...)
		timing.Fetch += ws.res.Timing.Fetch
		timing.FactorSolve += ws.res.Timing.FactorSolve
		timing.ParamEval += ws.res.Timing.ParamEval
		if werr != nil && firstErr == nil && !errors.Is(werr, errSweepStopped) {
			firstErr = werr
		}
		mu.Unlock()
		if werr != nil {
			abort()
		}
	}

	if len(completed) < W {
		rec := opt.Obs.SpanRecorder()
		var wg sync.WaitGroup
		launch := func(j, lo, hi int, view JacobianSource, seed *windowSeed) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wsp := rec.Start(opt.SpanParent, span.Window, -1)
				wsp.Attr("win", int64(j))
				wsp.Attr("lo", int64(lo))
				wsp.Attr("hi", int64(hi))
				defer wsp.End()
				ws := newSweep(ckt, tr, view, objs, params, trap, opt)
				defer ws.pool.close()
				ws.spanParent = wsp.ID()
				ws.hiStep, ws.loStep = hi, lo
				ws.stepContrib = contribs[lo : hi+1]
				ws.stop = stopCh
				ws.applySeed(seed)
				t := time.Now()
				var werr error
				if ws.workers > 1 {
					werr = ws.runOverlapped()
				} else {
					werr = ws.runSerialFetch()
				}
				finish(j, ws, time.Since(t), werr)
			}()
		}

		// The seeding sweep runs on the calling goroutine: full engine above
		// t_{W-2} (it IS the topmost window), seed generation below. A
		// journaled-complete seeder still descends — seeds are LU state,
		// which the journal cannot hold — but accumulates nothing.
		ssp := rec.Start(opt.SpanParent, span.Window, -1)
		ssp.Attr("win", int64(W-1))
		ssp.Attr("lo", int64(tops[0]+1))
		ssp.Attr("hi", int64(n))
		ssp.Attr("seeder", 1)
		seeder := newSweep(ckt, tr, views[W-1], objs, params, trap, opt)
		defer seeder.pool.close()
		seeder.spanParent = ssp.ID()
		seeder.hiStep, seeder.loStep = n, tops[0]+1
		seeder.skipParamsAtOrBelow = tops[W-2]
		if _, done := completed[W-1]; done {
			seeder.skipParamsAtOrBelow = n
		}
		seeder.stepContrib = contribs[tops[0]+1:]
		seeder.stop = stopCh
		seeder.afterStep = func(i int) {
			j, ok := windowAt[i]
			if !ok || seeder.checkStop() != nil {
				return
			}
			if _, done := completed[j]; done {
				return
			}
			launch(j, lows[j], tops[j], views[j], captureSeed(seeder))
		}
		tSeed := time.Now()
		var serr error
		if seeder.workers > 1 {
			serr = seeder.runOverlapped()
		} else {
			serr = seeder.runSerialFetch()
		}
		finish(W-1, seeder, time.Since(tSeed), serr)
		ssp.End()
		wg.Wait()
	}

	if firstErr != nil {
		return nil, true, firstErr
	}

	res = &Result{
		DOdp:           make([][]float64, K),
		Params:         params,
		Timing:         timing,
		Windows:        W,
		WindowSweepSec: sweepSec,
	}
	// Fold: the global descending-step replay of the serial accumulation.
	for o := 0; o < K; o++ {
		res.DOdp[o] = make([]float64, P)
	}
	for i := n; i >= 0; i-- {
		row := contribs[i]
		for o := 0; o < K; o++ {
			base := o * P
			dst := res.DOdp[o]
			for pk := 0; pk < P; pk++ {
				dst[pk] -= row[base+pk]
			}
		}
	}
	// Degraded steps: windows may observe the same corrupt step the seeding
	// sweep already healed (slice caches are private) — dedupe to the
	// serial sweep's descending-order list.
	if len(degraded) > 0 {
		sort.Sort(sort.Reverse(sort.IntSlice(degraded)))
		dd := degraded[:0]
		for _, st := range degraded {
			if len(dd) == 0 || dd[len(dd)-1] != st {
				dd = append(dd, st)
			}
		}
		res.DegradedSteps = dd
	}
	res.Timing.Total = time.Since(tWall)
	so := newSweepObs(opt.Obs)
	if so.on {
		so.windows.Set(float64(W))
		for _, sec := range sweepSec {
			so.winSweep.Observe(sec)
		}
	}
	return res, true, nil
}
