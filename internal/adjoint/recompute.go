package adjoint

import (
	"masc/internal/circuit"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// RecomputeSource is the Xyce-style baseline JacobianSource: it rebuilds
// J_i and C_i from the stored trajectory by re-running the device
// evaluations — no tensor storage, maximal Jacobian time. The adjoint
// Timing.Fetch of a run over this source is exactly the paper's T_jac.
type RecomputeSource struct {
	ckt  *circuit.Circuit
	tr   *transient.Result
	ev   *circuit.Eval
	j    *sparse.Matrix
	gmin float64
}

// NewRecomputeSource returns a source over the trajectory tr.
func NewRecomputeSource(ckt *circuit.Circuit, tr *transient.Result) *RecomputeSource {
	return &RecomputeSource{
		ckt:  ckt,
		tr:   tr,
		ev:   circuit.NewEval(ckt),
		j:    sparse.NewMatrix(ckt.JPat),
		gmin: 1e-12,
	}
}

// SetGmin overrides the diagonal conductance floor applied to the step-0
// (DC) Jacobian re-derivation. It must match the Gmin of the transient run
// that produced tr, or the recomputed step-0 tensor diverges bit-wise from
// the captured one. The default matches the transient default (1e-12).
func (s *RecomputeSource) SetGmin(g float64) {
	if g > 0 {
		s.gmin = g
	}
}

// Fetch implements JacobianSource by re-evaluating the circuit at step i's
// converged state — mirroring exactly what transient.Run captured,
// including the integration method's Jacobian weighting.
func (s *RecomputeSource) Fetch(i int) ([]float64, []float64, error) {
	s.ev.Run(s.tr.States[i], s.tr.Times[i])
	switch {
	case i == 0:
		s.ev.BuildJ(s.j, 0)
		s.ckt.AddGmin(s.j, s.gmin)
	case s.tr.Method == transient.MethodTrap:
		s.ev.BuildJWeighted(s.j, 0.5, 1/s.tr.Hs[i])
	default:
		s.ev.BuildJ(s.j, 1/s.tr.Hs[i])
	}
	return s.j.Val, s.ev.C.Val, nil
}

// Release implements JacobianSource; recomputation holds no per-step state.
func (s *RecomputeSource) Release(int) {}
