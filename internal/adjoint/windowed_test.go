package adjoint

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// windowCounts is the windowed property-test sweep: serial, small, the
// machine width, and more windows than steps (which must clamp, not fail).
// stepsPlus is the trajectory step count for the oversubscribed entry.
// MASC_ADJOINT_WINDOWS=a,b,c extends the list (the CI race matrix does).
func windowCounts(tb testing.TB, stepsPlus int) []int {
	ws := []int{1, 2, 3, runtime.NumCPU(), stepsPlus + 5}
	if env := os.Getenv("MASC_ADJOINT_WINDOWS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				tb.Fatalf("MASC_ADJOINT_WINDOWS: bad entry %q", f)
			}
			ws = append(ws, n)
		}
	}
	return ws
}

// TestWindowedSweepBitIdentical is the tentpole property test: for every
// fixture × integrator × window count × store kind, the windowed sweep must
// reproduce the serial sweep's DOdp bits exactly — including W greater than
// the step count (clamped) and W = 1 (the serial degenerate case).
func TestWindowedSweepBitIdentical(t *testing.T) {
	type fixture struct {
		name string
		tc   testCase
		trap bool
	}
	fixtures := []fixture{
		{"rc_ladder_be", cases()[0], false},
		{"bjt_amp_trap", cases()[2], true},
		{"rlc_tank_trap", cases()[4], true},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			ckt, b := fx.tc.build(t)
			opt := fx.tc.opt
			if fx.trap {
				opt.Method = transient.MethodTrap
			}
			mem := jactensor.NewMemStore()
			// Anchors are declared before the forward pass; estimate the
			// step count from the time grid to cut ~8 windows' worth.
			estSteps := int(opt.TStop/opt.TStep + 0.5)
			anchorEvery := estSteps / 8
			if anchorEvery < 1 {
				anchorEvery = 1
			}
			mkAnchored := func(async bool) *jactensor.CompressedStore {
				var cs *jactensor.CompressedStore
				if async {
					cs = jactensor.NewCompressedStoreAsync(
						masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
						ckt.JPat, ckt.CPat, 2)
				} else {
					cs = jactensor.NewCompressedStore(
						masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
						ckt.JPat, ckt.CPat)
				}
				cs.SetAnchorEvery(anchorEvery)
				return cs
			}
			// One anchored compressed store per windowed run (separate
			// stores keep the runs independent), all filled by a single
			// forward pass.
			winList := windowCounts(t, estSteps)
			comps := make([]*jactensor.CompressedStore, len(winList))
			for i := range comps {
				comps[i] = mkAnchored(i%2 == 1) // alternate sync/async workers
			}
			opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
				if err := mem.Put(step, J.Val, C.Val); err != nil {
					return err
				}
				for _, cs := range comps {
					if err := cs.Put(step, J.Val, C.Val); err != nil {
						return err
					}
				}
				return nil
			}
			res, err := transient.Run(ckt, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := mem.EndForward(); err != nil {
				t.Fatal(err)
			}
			for _, cs := range comps {
				if err := cs.EndForward(); err != nil {
					t.Fatal(err)
				}
			}
			node, err := b.NodeIndex(fx.tc.obj)
			if err != nil {
				t.Fatal(err)
			}
			objs := []Objective{
				{Name: "final", Node: node, Weight: 1},
				{Name: "mid", Node: node, Weight: 0.5, Step: res.Steps() / 2},
				{Name: "integral", Node: node, Weight: 2, Integral: true},
				{Name: "quarter", Node: node, Weight: -1, Step: res.Steps() / 4},
			}
			src := keepAll{mem}
			want, err := Sensitivities(ckt, res, src, objs, Options{Workers: 1, SingleRHS: true})
			if err != nil {
				t.Fatal(err)
			}
			for wi, W := range winList {
				// Generic (sharedSource) path over the memory store.
				got, err := Sensitivities(ckt, res, src, objs, Options{Windows: W})
				if err != nil {
					t.Fatalf("windows=%d mem: %v", W, err)
				}
				requireBitIdentical(t, fmt.Sprintf("windows=%d,mem", W), want, got)
				if W > 1 && got.Windows < 2 {
					t.Fatalf("windows=%d mem: engine fell back to serial (ran %d)", W, got.Windows)
				}
				if got.Windows > res.Steps()+1 {
					t.Fatalf("windows=%d mem: ran %d windows for %d steps (no clamp)", W, got.Windows, res.Steps())
				}
				if got.Windows > 1 && len(got.WindowSweepSec) != got.Windows {
					t.Fatalf("windows=%d mem: %d sweep timings for %d windows", W, len(got.WindowSweepSec), got.Windows)
				}
				// Sliced path over an anchored compressed store.
				got, err = Sensitivities(ckt, res, comps[wi], objs, Options{Windows: W})
				if err != nil {
					t.Fatalf("windows=%d compressed: %v", W, err)
				}
				requireBitIdentical(t, fmt.Sprintf("windows=%d,compressed", W), want, got)
				// Windowed-with-workers composition on one representative W.
				if W == 3 {
					got, err = Sensitivities(ckt, res, src, objs, Options{Windows: W, Workers: 2})
					if err != nil {
						t.Fatalf("windows=%d workers=2: %v", W, err)
					}
					requireBitIdentical(t, "windows=3,workers=2", want, got)
				}
			}
		})
	}
}

// windowedDegradedRun builds fresh fault-injected fixtures and sweeps them
// with W windows, returning the clean serial reference, the degraded
// generic-source run, and the degraded anchored-compressed run.
func windowedDegradedRun(t *testing.T, W int) (want, gotMem, gotComp *Result) {
	t.Helper()
	ckt, b := rcLadder(t)
	node, err := b.NodeIndex("n6")
	if err != nil {
		t.Fatal(err)
	}
	inMem := faultinject.New(faultinject.Profile{Seed: 11, BitFlipOneIn: 10})
	inComp := faultinject.New(faultinject.Profile{Seed: 13, BitFlipOneIn: 10})
	faultyMem := jactensor.NewMemStore()
	faultyMem.SetFault(inMem)
	faultyComp := jactensor.NewCompressedStore(
		masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
		ckt.JPat, ckt.CPat)
	faultyComp.SetAnchorEvery(12)
	faultyComp.SetFault(inComp)
	clean := jactensor.NewMemStore()
	opt := transient.Options{TStop: 2e-4, TStep: 2e-6}
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		if err := clean.Put(step, J.Val, C.Val); err != nil {
			return err
		}
		if err := faultyMem.Put(step, J.Val, C.Val); err != nil {
			return err
		}
		return faultyComp.Put(step, J.Val, C.Val)
	}
	res, err := transient.Run(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []jactensor.Store{clean, faultyMem, faultyComp} {
		if err := st.EndForward(); err != nil {
			t.Fatal(err)
		}
	}
	objs := []Objective{
		{Node: node, Weight: 1},
		{Node: node, Weight: 1, Integral: true},
	}
	want, err = Sensitivities(ckt, res, clean, objs, Options{Workers: 1, SingleRHS: true})
	if err != nil {
		t.Fatal(err)
	}
	gotMem, err = Sensitivities(ckt, res, faultyMem, objs, Options{Windows: W})
	if err != nil {
		t.Fatalf("degraded mem sweep (windows=%d): %v", W, err)
	}
	gotComp, err = Sensitivities(ckt, res, faultyComp, objs, Options{Windows: W})
	if err != nil {
		t.Fatalf("degraded compressed sweep (windows=%d): %v", W, err)
	}
	if !inMem.Stats().Any() || !inComp.Stats().Any() {
		t.Fatal("injectors delivered no faults; test proves nothing")
	}
	if len(gotMem.DegradedSteps) == 0 {
		t.Fatal("mem faults were injected but no step degraded")
	}
	return want, gotMem, gotComp
}

// TestWindowedDegradedBitIdentical composes the windowed engine with the
// recompute-on-corruption ladder: with bit flips injected into both store
// kinds, every window count must still converge to the fault-free serial
// run's bits, and the degraded-step report must stay deduplicated and in
// sweep (descending) order even though several sweeps observe faults.
func TestWindowedDegradedBitIdentical(t *testing.T) {
	for _, W := range []int{2, 3, runtime.NumCPU() + 1} {
		want, gotMem, gotComp := windowedDegradedRun(t, W)
		requireBitIdentical(t, "degraded mem windows="+strconv.Itoa(W), want, gotMem)
		requireBitIdentical(t, "degraded compressed windows="+strconv.Itoa(W), want, gotComp)
		for _, r := range []*Result{gotMem, gotComp} {
			for i := 1; i < len(r.DegradedSteps); i++ {
				if r.DegradedSteps[i] >= r.DegradedSteps[i-1] {
					t.Fatalf("windows=%d: DegradedSteps %v not strictly descending", W, r.DegradedSteps)
				}
			}
		}
	}
}

// TestWindowedClampAndFallback pins the boundary edge cases: more windows
// than steps clamps to one step per window, and a compressed store without
// anchors cannot be sliced, so the engine falls back to the serial sweep
// instead of failing.
func TestWindowedClampAndFallback(t *testing.T) {
	ckt, b := rcLadder(t)
	node, _ := b.NodeIndex("n6")
	mem := jactensor.NewMemStore()
	plain := jactensor.NewCompressedStore( // no SetAnchorEvery: un-sliceable
		masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
		ckt.JPat, ckt.CPat)
	opt := transient.Options{TStop: 2e-5, TStep: 2e-6} // ~10 steps
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		if err := mem.Put(step, J.Val, C.Val); err != nil {
			return err
		}
		return plain.Put(step, J.Val, C.Val)
	}
	res, err := transient.Run(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := plain.EndForward(); err != nil {
		t.Fatal(err)
	}
	objs := []Objective{{Node: node, Weight: 1}}
	src := keepAll{mem}
	want, err := Sensitivities(ckt, res, src, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sensitivities(ckt, res, src, objs, Options{Windows: res.Steps() + 50})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "oversubscribed windows", want, got)
	if got.Windows > res.Steps()+1 {
		t.Fatalf("ran %d windows over %d steps: clamp failed", got.Windows, res.Steps())
	}
	if got.Windows < 2 {
		t.Fatalf("oversubscribed request fell back to serial (%d windows)", got.Windows)
	}
	got, err = Sensitivities(ckt, res, plain, objs, Options{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "un-anchored fallback", want, got)
	if got.Windows != 1 {
		t.Fatalf("un-anchored compressed store ran %d windows, want serial fallback", got.Windows)
	}
}

// failAt wraps a JacobianSource with a non-degradable error at one step —
// a mid-sweep interruption for the teardown test.
type failAt struct {
	JacobianSource
	step int
}

func (f failAt) Fetch(i int) ([]float64, []float64, error) {
	if i == f.step {
		return nil, nil, errors.New("synthetic mid-sweep failure")
	}
	return f.JacobianSource.Fetch(i)
}

func (f failAt) Release(int) {}

// TestWindowedInterruptTeardown pins the failure mode: a non-degradable
// fetch error in one window must abort every concurrent sweep, surface the
// root cause (not the casualties' abort sentinel), and leave no goroutine
// touching the store after return — the race detector enforces the latter.
func TestWindowedInterruptTeardown(t *testing.T) {
	ckt, b := rcLadder(t)
	node, _ := b.NodeIndex("n6")
	mem := jactensor.NewMemStore()
	res, err := transient.Run(ckt, captureInto(transient.Options{TStop: 2e-4, TStep: 2e-6}, mem))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.EndForward(); err != nil {
		t.Fatal(err)
	}
	objs := []Objective{{Node: node, Weight: 1}}
	// Fail inside window 0's range so the seeding sweep has finished its
	// own descent and sibling windows are mid-flight when the error lands.
	src := failAt{JacobianSource: keepAll{mem}, step: 2}
	_, err = Sensitivities(ckt, res, src, objs, Options{Windows: 4, DisableDegrade: true, Workers: 2})
	if err == nil {
		t.Fatal("windowed sweep over failing source succeeded")
	}
	if !strings.Contains(err.Error(), "synthetic mid-sweep failure") {
		t.Fatalf("error lost the root cause: %v", err)
	}
	// The engine must be reusable after the teardown: a healthy windowed
	// sweep over the same store still matches serial.
	want, err := Sensitivities(ckt, res, keepAll{mem}, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sensitivities(ckt, res, keepAll{mem}, objs, Options{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "post-teardown windowed", want, got)
}
