// Package adjoint implements discrete adjoint transient sensitivity
// analysis (the reverse pass of the MASC paper) together with the direct
// (forward) method used as a cross-check and baseline.
//
// For the backward-Euler residual chain
//
//	F_i(x_i, x_{i-1}, p) = (q(x_i) - q(x_{i-1}))/h_i + f(x_i, t_i, p) = 0
//
// and an objective O = Σ w·x_n[node] of the final state, the adjoint
// recurrence is
//
//	J_nᵀ λ_n = ∂O/∂x_nᵀ
//	J_iᵀ λ_i = (1/h_{i+1}) C_iᵀ λ_{i+1}      (i = n-1 … 0, J_0 = G_0)
//
// and the sensitivity accumulates as dO/dp = Σ_i λ_iᵀ ∂F_i/∂p. The
// Jacobians J_i = G_i + C_i/h_i and C_i = ∂q/∂x|_i are exactly the matrices
// the forward transient run already computed; JacobianSource abstracts
// where they come back from — recomputation (Xyce-style), raw memory, disk,
// or MASC-compressed memory.
package adjoint

import (
	"errors"
	"fmt"
	"time"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/jactensor"
	"masc/internal/lu"
	"masc/internal/obs"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// JacobianSource supplies the per-step Jacobian tensors during the reverse
// sweep. Fetch is called in strictly decreasing step order (n, n-1, …, 0);
// the returned slices are valid until the matching Release.
type JacobianSource interface {
	// Fetch returns the J values (on the circuit's JPat) and C values (on
	// CPat) of step i.
	Fetch(i int) (jVals, cVals []float64, err error)
	// Release indicates step i will not be fetched again.
	Release(i int)
}

// Objective selects one scalar objective: O = Weight · x_k[Node], where k
// is Step for positive Step and the final timestep when Step is zero (the
// common case). Objectives at many distinct time points are exactly the
// workload that makes Jacobian reuse worthwhile (Hu et al., DAC'20, cited
// by the MASC paper).
type Objective struct {
	Name   string
	Node   int32
	Weight float64
	Step   int // 0 = final step; otherwise the 1-based step index
	// Integral switches the objective to the time integral
	// O = Weight · Σ_i h_i·x_i[Node] ≈ Weight · ∫ x[Node] dt — the
	// "objective at many time points" class in its densest form. Step is
	// ignored when Integral is set.
	Integral bool
}

// effStep resolves the objective's step index for a trajectory of n steps.
func (o *Objective) effStep(n int) int {
	if o.Step <= 0 || o.Step > n {
		return n
	}
	return o.Step
}

// sourceAt returns the ∂O/∂x_i[Node] adjoint source weight at step i.
func (o *Objective) sourceAt(i, n int, h float64) float64 {
	if o.Integral {
		if i == 0 {
			return 0
		}
		return o.Weight * h
	}
	if o.effStep(n) == i {
		return o.Weight
	}
	return 0
}

// Options configures a sensitivity analysis.
type Options struct {
	// Params are indices into ckt.Params(); nil means all parameters.
	Params []int

	// Obs, if non-nil, receives per-step telemetry: the masc_adjoint_*
	// metric families and one trace event per reverse-sweep phase
	// ("adjoint_fetch", "adjoint_solve", "param_eval", "degrade").
	Obs *obs.Observer

	// DisableDegrade turns off the recompute-on-corruption fallback: any
	// degradable fetch error aborts the sweep instead. Used by tests and
	// by callers that prefer fail-fast over degraded completion.
	DisableDegrade bool
}

// DegradeError reports a step that could be neither fetched nor
// recomputed: the sweep cannot continue correctly, so it fails loudly,
// naming the step and both causes.
type DegradeError struct {
	Step      int
	Fetch     error // the original storage failure
	Recompute error // why the recomputation fallback also failed
}

func (e *DegradeError) Error() string {
	return fmt.Sprintf("adjoint: step %d unrecoverable: fetch failed (%v) and recompute failed (%v)",
		e.Step, e.Fetch, e.Recompute)
}

func (e *DegradeError) Unwrap() error { return e.Fetch }

// FailedStep names the step for diagnosability checks.
func (e *DegradeError) FailedStep() int { return e.Step }

// sweepObs is the resolved telemetry bundle of one reverse sweep; the
// zero value is a no-op.
type sweepObs struct {
	on       bool
	tr       *obs.Tracer
	steps    *obs.Counter
	fetchSec *obs.Counter
	solveSec *obs.Counter
	paramSec *obs.Counter
	degraded *obs.Counter
}

func newSweepObs(o *obs.Observer) sweepObs {
	if o == nil {
		return sweepObs{}
	}
	reg := o.Registry()
	return sweepObs{
		on:       true,
		tr:       o.Tracer(),
		steps:    reg.Counter("masc_adjoint_steps_total", "Reverse-sweep steps completed."),
		fetchSec: reg.Counter("masc_adjoint_fetch_seconds_total", "Jacobian acquisition time (recompute/decompress/IO)."),
		solveSec: reg.Counter("masc_adjoint_solve_seconds_total", "LU factorization and adjoint solve time."),
		paramSec: reg.Counter("masc_adjoint_param_seconds_total", "Parameter sensitivity (dF/dp) accumulation time."),
		degraded: reg.Counter("masc_store_degraded_total", "Reverse-sweep steps recovered by per-step recomputation after a storage failure."),
	}
}

// Timing is the wall-clock split of a sensitivity run.
type Timing struct {
	Total       time.Duration
	Fetch       time.Duration // Jacobian acquisition (recompute/decompress/IO)
	FactorSolve time.Duration // LU factorizations and adjoint solves
	ParamEval   time.Duration // ∂F/∂p accumulation
}

// Result carries the sensitivities dO/dp.
type Result struct {
	// DOdp[o][k] is the sensitivity of objectives[o] with respect to
	// parameter Params[k].
	DOdp   [][]float64
	Params []int
	Timing Timing
	// DegradedSteps lists the steps (in sweep order, descending) whose
	// stored Jacobians could not be fetched and were recomputed instead.
	// Empty on a healthy run.
	DegradedSteps []int
}

// Sensitivities runs the adjoint reverse sweep over the trajectory tr.
func Sensitivities(ckt *circuit.Circuit, tr *transient.Result, src JacobianSource, objs []Objective, opt Options) (*Result, error) {
	n := tr.Steps()
	if n < 1 {
		return nil, fmt.Errorf("adjoint: trajectory has no integration steps")
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("adjoint: no objectives")
	}
	params := opt.Params
	if params == nil {
		params = make([]int, len(ckt.Params()))
		for i := range params {
			params[i] = i
		}
	}
	t0 := time.Now()
	res := &Result{
		DOdp:   make([][]float64, len(objs)),
		Params: params,
	}
	for o := range res.DOdp {
		res.DOdp[o] = make([]float64, len(params))
	}

	N := ckt.N
	ev := circuit.NewEval(ckt)
	var fact *lu.LU
	perm := lu.RCM(ckt.JPat)

	trap, err := isTrap(tr)
	if err != nil {
		return nil, err
	}
	lam := make([][]float64, len(objs))     // λ_i per objective
	lamNext := make([][]float64, len(objs)) // λ_{i+1}
	pendQ := make([][]float64, len(objs))   // λ_{i+1}/h_{i+1} (dqdp regroup)
	pendF := make([][]float64, len(objs))   // ½λ_{i+1} (trapezoidal dfdp regroup)
	for o := range objs {
		lam[o] = make([]float64, N)
		lamNext[o] = make([]float64, N)
		pendQ[o] = make([]float64, N)
		if trap {
			pendF[o] = make([]float64, N)
		}
	}
	tmp := make([]float64, N)
	acc := device.NewSensAccum(N)
	so := newSweepObs(opt.Obs)

	factorize := func(j *sparse.Matrix) error {
		if fact != nil {
			if err := fact.Refactor(j); err == nil {
				return nil
			}
		}
		f, err := lu.Factor(j, lu.Options{ColPerm: perm})
		if err != nil {
			return err
		}
		fact = f
		return nil
	}

	var rec *RecomputeSource // lazy recompute fallback for degraded steps
	for i := n; i >= 0; i-- {
		tFetch := time.Now()
		jv, cv, err := src.Fetch(i)
		if err != nil {
			// Degradation ladder: a fetch-side integrity or read failure is
			// recoverable — the trajectory is still in memory, so the step's
			// Jacobians can be rebuilt bit-exactly from the converged state
			// (the Xyce-style recompute baseline, scoped to just this step).
			// Anything else, or a failed recomputation, aborts loudly.
			var se *jactensor.StepError
			if opt.DisableDegrade || !errors.As(err, &se) || !se.Degradable {
				return nil, fmt.Errorf("adjoint: fetch step %d: %w", i, err)
			}
			if rec == nil {
				rec = NewRecomputeSource(ckt, tr)
			}
			rj, rc, rerr := rec.Fetch(i)
			if rerr != nil {
				return nil, &DegradeError{Step: i, Fetch: err, Recompute: rerr}
			}
			// Hand the recomputed plaintext back to the store: it heals the
			// quarantined step and, for the chained compressed store,
			// restores the reference step i-1 decompresses against.
			if rp, ok := src.(jactensor.Repairer); ok {
				rp.Repair(i, rj, rc)
				if jv2, cv2, ferr := src.Fetch(i); ferr == nil {
					rj, rc = jv2, cv2
				}
			}
			jv, cv = rj, rc
			res.DegradedSteps = append(res.DegradedSteps, i)
			if so.on {
				so.degraded.Inc()
				so.tr.Emit(obs.Event{Step: i, Phase: "degrade", Dur: time.Since(tFetch)})
			}
		}
		if so.on {
			d := time.Since(tFetch)
			res.Timing.Fetch += d
			so.fetchSec.AddDuration(d)
			so.tr.Emit(obs.Event{Step: i, Phase: "adjoint_fetch", Dur: d})
		} else {
			res.Timing.Fetch += time.Since(tFetch)
		}
		// Step i+1 is no longer needed once step i has materialized —
		// mirroring Algorithm 2's "decompress M_{n-1} using M_n, then
		// free M_n". Releasing earlier would drop the decompression
		// reference chain of a compressed store.
		if i < n {
			src.Release(i + 1)
		}
		J := &sparse.Matrix{P: ckt.JPat, Val: jv}
		C := &sparse.Matrix{P: ckt.CPat, Val: cv}

		tSolve := time.Now()
		if err := factorize(J); err != nil {
			return nil, fmt.Errorf("adjoint: factor step %d: %w", i, err)
		}
		for o := range objs {
			if i == n {
				for k := range lam[o] {
					lam[o][k] = 0
				}
			} else if !trap {
				// Backward Euler: rhs = (1/h_{i+1}) C_iᵀ λ_{i+1}.
				C.MulVecT(lamNext[o], lam[o])
				invH := 1 / tr.Hs[i+1]
				for k := range lam[o] {
					lam[o][k] *= invH
				}
			} else {
				// Trapezoidal: ∂F_{i+1}/∂x_i = −C_i/h_{i+1} + ½G_i, with
				// ½G_i = J_i − C_i/h_i for i ≥ 1 and ½G_0 = ½J_0 at the
				// DC step. rhs = −(∂F_{i+1}/∂x_i)ᵀ λ_{i+1}.
				C.MulVecT(lamNext[o], lam[o])
				J.MulVecT(lamNext[o], tmp)
				if i >= 1 {
					coef := 1/tr.Hs[i+1] + 1/tr.Hs[i]
					for k := range lam[o] {
						lam[o][k] = coef*lam[o][k] - tmp[k]
					}
				} else {
					coef := 1 / tr.Hs[1]
					for k := range lam[o] {
						lam[o][k] = coef*lam[o][k] - 0.5*tmp[k]
					}
				}
			}
			// The objective's ∂O/∂x_i source enters at its own step(s).
			if w := objs[o].sourceAt(i, n, tr.Hs[i]); w != 0 {
				lam[o][objs[o].Node] += w
			}
			fact.SolveT(lam[o])
		}
		if so.on {
			d := time.Since(tSolve)
			res.Timing.FactorSolve += d
			so.solveSec.AddDuration(d)
			so.tr.Emit(obs.Event{Step: i, Phase: "adjoint_solve", Dur: d})
		} else {
			res.Timing.FactorSolve += time.Since(tSolve)
		}

		// Accumulate dO/dp contributions of step i. The sparse accumulator
		// keeps this O(device terminals), not O(N), per parameter.
		tPar := time.Now()
		xi, ti := tr.States[i], tr.Times[i]
		for pk, p := range params {
			acc.Reset()
			ev.ParamSens(p, xi, ti, acc)
			for o := range objs {
				contrib := 0.0
				if i >= 1 {
					invH := 1 / tr.Hs[i]
					for _, k := range acc.Touched {
						// dfdp_i weight: λ_i for BE, ½λ_i + ½λ_{i+1}
						// for the trapezoidal rule.
						fw := lam[o][k]
						if trap {
							fw = 0.5*lam[o][k] + pendF[o][k]
						}
						// dqdp_i weight: λ_i/h_i − λ_{i+1}/h_{i+1}.
						contrib += fw*acc.DFdp[k] +
							(invH*lam[o][k]-pendQ[o][k])*acc.DQdp[k]
					}
				} else {
					// At i=0 F_0 = f(x_0): full λ_0 weight on dfdp, plus
					// the carries from F_1.
					for _, k := range acc.Touched {
						fw := lam[o][k]
						if trap {
							fw += pendF[o][k]
						}
						contrib += fw*acc.DFdp[k] - pendQ[o][k]*acc.DQdp[k]
					}
				}
				// With the Lagrangian L = O − Σ λᵀF and the adjoint
				// equations satisfied, dO/dp = −Σ λ_iᵀ ∂F_i/∂p.
				res.DOdp[o][pk] -= contrib
			}
		}
		if so.on {
			d := time.Since(tPar)
			res.Timing.ParamEval += d
			so.paramSec.AddDuration(d)
			so.tr.Emit(obs.Event{Step: i, Phase: "param_eval", Dur: d})
			so.steps.Inc()
		} else {
			res.Timing.ParamEval += time.Since(tPar)
		}

		for o := range objs {
			if i >= 1 {
				invH := 1 / tr.Hs[i]
				for k, v := range lam[o] {
					pendQ[o][k] = invH * v
				}
				if trap {
					for k, v := range lam[o] {
						pendF[o][k] = 0.5 * v
					}
				}
			}
			lamNext[o], lam[o] = lam[o], lamNext[o]
		}
	}
	src.Release(0)
	res.Timing.Total = time.Since(t0)
	return res, nil
}

// isTrap resolves the trajectory's integration method (an empty Method is
// treated as backward Euler for manually assembled Results).
func isTrap(tr *transient.Result) (bool, error) {
	switch tr.Method {
	case "", transient.MethodBE:
		return false, nil
	case transient.MethodTrap:
		return true, nil
	default:
		return false, fmt.Errorf("adjoint: unsupported integration method %q", tr.Method)
	}
}

// DirectSensitivities computes the same dO/dp with the forward (direct)
// method: one sensitivity state s = ∂x/∂p propagated per parameter. It is
// O(#params) solves per step versus the adjoint's O(#objectives) and serves
// as an independent cross-check.
func DirectSensitivities(ckt *circuit.Circuit, tr *transient.Result, objs []Objective, opt Options) (*Result, error) {
	n := tr.Steps()
	if n < 1 {
		return nil, fmt.Errorf("adjoint: trajectory has no integration steps")
	}
	params := opt.Params
	if params == nil {
		params = make([]int, len(ckt.Params()))
		for i := range params {
			params[i] = i
		}
	}
	trap, err := isTrap(tr)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	N := ckt.N
	ev := circuit.NewEval(ckt)
	J := sparse.NewMatrix(ckt.JPat)
	var fact *lu.LU
	perm := lu.RCM(ckt.JPat)

	factorize := func() error {
		if fact != nil {
			if err := fact.Refactor(J); err == nil {
				return nil
			}
		}
		f, err := lu.Factor(J, lu.Options{ColPerm: perm})
		if err != nil {
			return err
		}
		fact = f
		return nil
	}

	s := make([][]float64, len(params)) // s_i per parameter
	for k := range s {
		s[k] = make([]float64, N)
	}
	acc := device.NewSensAccum(N)
	// prevQ holds the previous step's sparse ∂q/∂p pairs per parameter.
	type kv struct {
		k int32
		v float64
	}
	prevQ := make([][]kv, len(params))
	prevF := make([][]kv, len(params)) // trapezoidal dfdp_{i-1} carry
	rhs := make([]float64, N)
	gs := make([]float64, N) // G_{i-1}·s scratch (trapezoidal)
	cPrev := sparse.NewMatrix(ckt.CPat)
	gPrev := sparse.NewMatrix(ckt.GPat)

	// Step 0: DC sensitivity G_0 s_0 = -dfdp_0.
	ev.Run(tr.States[0], tr.Times[0])
	ev.BuildJ(J, 0)
	ckt.AddGmin(J, 1e-12)
	if err := factorize(); err != nil {
		return nil, fmt.Errorf("adjoint: direct DC factor: %w", err)
	}
	for pk, p := range params {
		acc.Reset()
		ev.ParamSens(p, tr.States[0], tr.Times[0], acc)
		for k := range rhs {
			rhs[k] = 0
		}
		for _, k := range acc.Touched {
			rhs[k] = -acc.DFdp[k]
			prevQ[pk] = append(prevQ[pk], kv{k, acc.DQdp[k]})
			if trap {
				prevF[pk] = append(prevF[pk], kv{k, acc.DFdp[k]})
			}
		}
		fact.Solve(rhs)
		copy(s[pk], rhs)
	}
	copy(cPrev.Val, ev.C.Val)
	copy(gPrev.Val, ev.G.Val)

	res := &Result{
		DOdp:   make([][]float64, len(objs)),
		Params: params,
	}
	for o := range objs {
		res.DOdp[o] = make([]float64, len(params))
	}
	for i := 1; i <= n; i++ {
		h := tr.Hs[i]
		invH := 1 / h
		ev.Run(tr.States[i], tr.Times[i])
		if trap {
			ev.BuildJWeighted(J, 0.5, invH)
		} else {
			ev.BuildJ(J, invH)
		}
		if err := factorize(); err != nil {
			return nil, fmt.Errorf("adjoint: direct factor step %d: %w", i, err)
		}
		for pk, p := range params {
			acc.Reset()
			ev.ParamSens(p, tr.States[i], tr.Times[i], acc)
			// BE:   rhs = C_{i-1}s/h − (dqdp_i − dqdp_{i-1})/h − dfdp_i.
			// Trap: rhs = C_{i-1}s/h − ½G_{i-1}s − (dqdp_i − dqdp_{i-1})/h
			//             − ½(dfdp_i + dfdp_{i-1}).
			cPrev.MulVec(s[pk], rhs)
			for k := range rhs {
				rhs[k] *= invH
			}
			if trap {
				gPrev.MulVec(s[pk], gs)
				for k := range rhs {
					rhs[k] -= 0.5 * gs[k]
				}
				for _, k := range acc.Touched {
					rhs[k] -= invH*acc.DQdp[k] + 0.5*acc.DFdp[k]
				}
				for _, e := range prevF[pk] {
					rhs[e.k] -= 0.5 * e.v
				}
				prevF[pk] = prevF[pk][:0]
				for _, k := range acc.Touched {
					prevF[pk] = append(prevF[pk], kv{k, acc.DFdp[k]})
				}
			} else {
				for _, k := range acc.Touched {
					rhs[k] -= invH*acc.DQdp[k] + acc.DFdp[k]
				}
			}
			for _, e := range prevQ[pk] {
				rhs[e.k] += invH * e.v
			}
			prevQ[pk] = prevQ[pk][:0]
			for _, k := range acc.Touched {
				prevQ[pk] = append(prevQ[pk], kv{k, acc.DQdp[k]})
			}
			fact.Solve(rhs)
			copy(s[pk], rhs)
		}
		copy(cPrev.Val, ev.C.Val)
		if trap {
			copy(gPrev.Val, ev.G.Val)
		}
		// Harvest objectives anchored at (or integrating over) this step.
		for o := range objs {
			if objs[o].Integral {
				for pk := range params {
					res.DOdp[o][pk] += objs[o].Weight * h * s[pk][objs[o].Node]
				}
			} else if objs[o].effStep(n) == i {
				for pk := range params {
					res.DOdp[o][pk] = objs[o].Weight * s[pk][objs[o].Node]
				}
			}
		}
	}
	res.Timing.Total = time.Since(t0)
	return res, nil
}

// XyceNaiveSensitivities reproduces the pre-MASC flow the paper's Table 1
// times: the adjoint is solved once per objective, and every sweep
// recomputes every per-step Jacobian from scratch. With stored (or
// compressed) tensors the same objectives share one sweep — that gap is
// the paper's motivation.
func XyceNaiveSensitivities(ckt *circuit.Circuit, tr *transient.Result, objs []Objective, opt Options) (*Result, error) {
	var total *Result
	for o := range objs {
		src := NewRecomputeSource(ckt, tr)
		r, err := Sensitivities(ckt, tr, src, objs[o:o+1], opt)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = r
			continue
		}
		total.DOdp = append(total.DOdp, r.DOdp[0])
		total.Timing.Total += r.Timing.Total
		total.Timing.Fetch += r.Timing.Fetch
		total.Timing.FactorSolve += r.Timing.FactorSolve
		total.Timing.ParamEval += r.Timing.ParamEval
	}
	return total, nil
}
