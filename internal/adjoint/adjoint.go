// Package adjoint implements discrete adjoint transient sensitivity
// analysis (the reverse pass of the MASC paper) together with the direct
// (forward) method used as a cross-check and baseline.
//
// For the backward-Euler residual chain
//
//	F_i(x_i, x_{i-1}, p) = (q(x_i) - q(x_{i-1}))/h_i + f(x_i, t_i, p) = 0
//
// and an objective O = Σ w·x_n[node] of the final state, the adjoint
// recurrence is
//
//	J_nᵀ λ_n = ∂O/∂x_nᵀ
//	J_iᵀ λ_i = (1/h_{i+1}) C_iᵀ λ_{i+1}      (i = n-1 … 0, J_0 = G_0)
//
// and the sensitivity accumulates as dO/dp = Σ_i λ_iᵀ ∂F_i/∂p. The
// Jacobians J_i = G_i + C_i/h_i and C_i = ∂q/∂x|_i are exactly the matrices
// the forward transient run already computed; JacobianSource abstracts
// where they come back from — recomputation (Xyce-style), raw memory, disk,
// or MASC-compressed memory.
package adjoint

import (
	"context"
	"fmt"
	"time"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/lu"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// JacobianSource supplies the per-step Jacobian tensors during the reverse
// sweep. Fetch is called in strictly decreasing step order (n, n-1, …, 0);
// the returned slices are valid until the matching Release.
type JacobianSource interface {
	// Fetch returns the J values (on the circuit's JPat) and C values (on
	// CPat) of step i.
	Fetch(i int) (jVals, cVals []float64, err error)
	// Release indicates step i will not be fetched again.
	Release(i int)
}

// Objective selects one scalar objective: O = Weight · x_k[Node], where k
// is Step for positive Step and the final timestep when Step is zero (the
// common case). Objectives at many distinct time points are exactly the
// workload that makes Jacobian reuse worthwhile (Hu et al., DAC'20, cited
// by the MASC paper).
type Objective struct {
	Name   string
	Node   int32
	Weight float64
	Step   int // 0 = final step; otherwise the 1-based step index
	// Integral switches the objective to the time integral
	// O = Weight · Σ_i h_i·x_i[Node] ≈ Weight · ∫ x[Node] dt — the
	// "objective at many time points" class in its densest form. Step is
	// ignored when Integral is set.
	Integral bool
}

// effStep resolves the objective's step index for a trajectory of n steps.
func (o *Objective) effStep(n int) int {
	if o.Step <= 0 || o.Step > n {
		return n
	}
	return o.Step
}

// sourceAt returns the ∂O/∂x_i[Node] adjoint source weight at step i.
func (o *Objective) sourceAt(i, n int, h float64) float64 {
	if o.Integral {
		if i == 0 {
			return 0
		}
		return o.Weight * h
	}
	if o.effStep(n) == i {
		return o.Weight
	}
	return 0
}

// Options configures a sensitivity analysis.
type Options struct {
	// Params are indices into ckt.Params(); nil means all parameters.
	Params []int

	// Obs, if non-nil, receives per-step telemetry: the masc_adjoint_*
	// metric families and one trace event per reverse-sweep phase
	// ("adjoint_fetch", "adjoint_solve", "param_eval", "degrade").
	Obs *obs.Observer

	// DisableDegrade turns off the recompute-on-corruption fallback: any
	// degradable fetch error aborts the sweep instead. Used by tests and
	// by callers that prefer fail-fast over degraded completion.
	DisableDegrade bool

	// Workers bounds the reverse sweep's parallelism. 0 and 1 both mean
	// fully serial (single goroutine, serial store-access order); W > 1
	// shards the parameter-gradient loop and the per-objective RHS builds
	// across W workers and overlaps the next step's Jacobian fetch with
	// the current step's compute. Results are bit-identical for every
	// value of Workers.
	Workers int

	// SingleRHS forces one triangular solve per objective instead of the
	// blocked multi-RHS kernel. Results are bit-identical either way; the
	// knob exists so benchmarks can isolate the multi-RHS win.
	SingleRHS bool

	// Windows splits the reverse sweep in time: the trajectory is cut into
	// W windows whose reverse sweeps run concurrently, each seeded with
	// the adjoint state at its top boundary by a parameter-free seeding
	// sweep (see windowed.go). 0 and 1 mean the plain single-sweep engine;
	// results are bit-identical for every value of Windows, including
	// degraded (recompute-on-corruption) runs. Composes with Workers: each
	// window sweep gets its own worker pool of opt.Workers.
	Windows int

	// SpanParent is the span the adjoint pass nests under (normally the
	// run root). Spans are recorded only when Obs carries a recorder.
	SpanParent span.ID

	// Ctx, if non-nil, cancels the reverse sweep cooperatively: every
	// engine (serial, overlapped, windowed) polls it at step boundaries
	// and aborts with an error wrapping the context's error. Unlike the
	// windowed teardown signal, cancellation is a root cause, not a
	// casualty — it surfaces from Sensitivities.
	Ctx context.Context

	// FetchStallTimeout, if positive, bounds how long the overlapped
	// engine waits for the fetch pipeline to deliver one step. A stall
	// beyond it — a wedged disk read, a dead recompute — aborts with an
	// error wrapping ErrFetchStalled instead of hanging the sweep. The
	// abandoned fetcher goroutine is drained asynchronously so a stuck
	// syscall cannot pin the caller.
	FetchStallTimeout time.Duration

	// WindowDone, if non-nil, runs as each window sweep completes without
	// error (on that sweep's goroutine, serialized by the engine lock),
	// receiving the window index, the inclusive step range the window
	// *owns* (for the seeding sweep this is its accumulation range above
	// the penultimate boundary, not its full descent), its per-step
	// contribution rows (flat [objectives×params], aliasing engine
	// buffers — copy to keep), and its degraded steps. This is the run
	// journal's adjoint checkpoint hook; a non-nil error aborts the
	// remaining windows.
	WindowDone func(j, lo, hi int, rows [][]float64, degraded []int) error

	// Completed injects journaled window progress into the windowed
	// engine: a window listed here has its contribution rows copied in
	// and its sweep skipped (a completed seeding sweep still descends to
	// generate seeds, but accumulates nothing). Progress whose geometry
	// does not match the freshly computed window boundaries is ignored
	// wholesale — stale journals degrade to a full re-sweep, never to a
	// wrong fold.
	Completed map[int]*WindowProgress
}

// WindowProgress is one completed window's journaled state: the inclusive
// owned step range, the per-step contribution rows (Rows[i] belongs to step
// Lo+i, flat [objectives×params]), and the steps the window healed through
// the degradation ladder.
type WindowProgress struct {
	Lo, Hi   int
	Rows     [][]float64
	Degraded []int
}

// DegradeError reports a step that could be neither fetched nor
// recomputed: the sweep cannot continue correctly, so it fails loudly,
// naming the step and both causes.
type DegradeError struct {
	Step      int
	Fetch     error // the original storage failure
	Recompute error // why the recomputation fallback also failed
}

func (e *DegradeError) Error() string {
	return fmt.Sprintf("adjoint: step %d unrecoverable: fetch failed (%v) and recompute failed (%v)",
		e.Step, e.Fetch, e.Recompute)
}

func (e *DegradeError) Unwrap() error { return e.Fetch }

// FailedStep names the step for diagnosability checks.
func (e *DegradeError) FailedStep() int { return e.Step }

// sweepObs is the resolved telemetry bundle of one reverse sweep; the
// zero value is a no-op.
type sweepObs struct {
	on        bool
	tr        *obs.Tracer
	rec       *span.Recorder
	steps     *obs.Counter
	fetchSec  *obs.Counter
	waitSec   *obs.Counter
	hiddenSec *obs.Counter
	solveSec  *obs.Counter
	paramSec  *obs.Counter
	degraded  *obs.Counter
	shards    *obs.Counter
	workers   *obs.Gauge
	windows   *obs.Gauge
	winSweep  *obs.Histogram
}

func newSweepObs(o *obs.Observer) sweepObs {
	if o == nil {
		return sweepObs{}
	}
	reg := o.Registry()
	return sweepObs{
		on:        true,
		tr:        o.Tracer(),
		rec:       o.SpanRecorder(),
		steps:     reg.Counter("masc_adjoint_steps_total", "Reverse-sweep steps completed."),
		fetchSec:  reg.Counter("masc_adjoint_fetch_seconds_total", "Jacobian acquisition time (recompute/decompress/IO)."),
		waitSec:   reg.Counter("masc_adjoint_fetch_wait_seconds_total", "Solver-visible fetch wait (time the sweep blocked on Jacobian acquisition)."),
		hiddenSec: reg.Counter("masc_adjoint_fetch_hidden_seconds_total", "Fetch time hidden behind compute by the fetch/solve overlap."),
		solveSec:  reg.Counter("masc_adjoint_solve_seconds_total", "LU factorization and adjoint solve time."),
		paramSec:  reg.Counter("masc_adjoint_param_seconds_total", "Parameter sensitivity (dF/dp) accumulation time."),
		degraded:  reg.Counter("masc_store_degraded_total", "Reverse-sweep steps recovered by per-step recomputation after a storage failure."),
		shards:    reg.Counter("masc_adjoint_param_shards_total", "Parameter-gradient shard tasks executed."),
		workers:   reg.Gauge("masc_adjoint_workers", "Worker count of the most recent adjoint sweep."),
		windows:   reg.Gauge("masc_adjoint_windows", "Window count of the most recent adjoint sweep (1 = serial)."),
		winSweep:  reg.Histogram("masc_adjoint_window_sweep_seconds", "Per-window reverse-sweep wall time.", obs.TimingBuckets()),
	}
}

// Timing is the wall-clock split of a sensitivity run.
type Timing struct {
	Total time.Duration
	// Fetch is the solver-visible Jacobian acquisition time. With
	// Workers ≤ 1 that is the full recompute/decompress/IO cost; with the
	// fetch/solve overlap it is only the time the sweep actually blocked
	// waiting for a step (the hidden remainder is reported through the
	// masc_adjoint_fetch_* metrics).
	Fetch       time.Duration
	FactorSolve time.Duration // LU factorizations and adjoint solves
	ParamEval   time.Duration // ∂F/∂p accumulation
}

// Result carries the sensitivities dO/dp.
type Result struct {
	// DOdp[o][k] is the sensitivity of objectives[o] with respect to
	// parameter Params[k].
	DOdp   [][]float64
	Params []int
	Timing Timing
	// DegradedSteps lists the steps (in sweep order, descending) whose
	// stored Jacobians could not be fetched and were recomputed instead.
	// Empty on a healthy run.
	DegradedSteps []int

	// Windows is the window count the sweep actually ran with: 1 for the
	// plain single-sweep engine, including Windows > 1 requests that fell
	// back for lack of usable boundaries. WindowSweepSec[j] is window j's
	// reverse-sweep wall time in ascending window order; the last entry is
	// the seeding sweep, which doubles as the topmost window. Empty for
	// single-sweep runs.
	Windows        int
	WindowSweepSec []float64
}

// Sensitivities runs the adjoint reverse sweep over the trajectory tr.
// opt.Workers > 1 shards the per-step work across a bounded pool and
// overlaps Jacobian fetches with compute; results are bit-identical for
// every worker count (see parallel.go for the engine and the argument).
func Sensitivities(ckt *circuit.Circuit, tr *transient.Result, src JacobianSource, objs []Objective, opt Options) (*Result, error) {
	if tr.Steps() < 1 {
		return nil, fmt.Errorf("adjoint: trajectory has no integration steps")
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("adjoint: no objectives")
	}
	params := opt.Params
	if params == nil {
		params = make([]int, len(ckt.Params()))
		for i := range params {
			params[i] = i
		}
	}
	trap, err := isTrap(tr)
	if err != nil {
		return nil, err
	}
	// The adjoint root span: every sweep/window/fetch/solve span of this
	// pass nests under it via opt.SpanParent.
	rec := opt.Obs.SpanRecorder()
	asp := rec.Start(opt.SpanParent, span.Adjoint, -1)
	asp.Attr("workers", int64(opt.Workers))
	asp.Attr("windows", int64(opt.Windows))
	asp.Attr("objs", int64(len(objs)))
	defer asp.End()
	opt.SpanParent = asp.ID()
	if opt.Windows > 1 {
		if res, handled, werr := runWindowed(ckt, tr, src, objs, params, trap, opt); handled {
			return res, werr
		}
		// No usable window boundaries (short trajectory, un-anchored
		// compressed store, …): the serial sweep is the W=1 degenerate
		// case, so fall through to it.
	}
	return newSweep(ckt, tr, src, objs, params, trap, opt).run()
}

// isTrap resolves the trajectory's integration method (an empty Method is
// treated as backward Euler for manually assembled Results).
func isTrap(tr *transient.Result) (bool, error) {
	switch tr.Method {
	case "", transient.MethodBE:
		return false, nil
	case transient.MethodTrap:
		return true, nil
	default:
		return false, fmt.Errorf("adjoint: unsupported integration method %q", tr.Method)
	}
}

// DirectSensitivities computes the same dO/dp with the forward (direct)
// method: one sensitivity state s = ∂x/∂p propagated per parameter. It is
// O(#params) solves per step versus the adjoint's O(#objectives) and serves
// as an independent cross-check. The per-parameter right-hand-side builds
// shard across opt.Workers and all per-step solves share one blocked
// multi-RHS kernel; as in the adjoint sweep, results are bit-identical for
// every worker count (each parameter's value stream is param-local, so
// reordering builds across parameters changes no per-parameter operation).
func DirectSensitivities(ckt *circuit.Circuit, tr *transient.Result, objs []Objective, opt Options) (*Result, error) {
	n := tr.Steps()
	if n < 1 {
		return nil, fmt.Errorf("adjoint: trajectory has no integration steps")
	}
	params := opt.Params
	if params == nil {
		params = make([]int, len(ckt.Params()))
		for i := range params {
			params[i] = i
		}
	}
	trap, err := isTrap(tr)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	N := ckt.N
	W := opt.Workers
	if W < 1 {
		W = 1
	}
	if W > len(params) && len(params) > 0 {
		W = len(params)
	}
	pool := newWorkerPool(W)
	defer pool.close()
	ev := circuit.NewEval(ckt)
	J := sparse.NewMatrix(ckt.JPat)
	var fact *lu.LU
	perm := ckt.JPerm()

	factorize := func() error {
		if fact != nil {
			if err := fact.Refactor(J); err == nil {
				return nil
			}
		}
		f, err := lu.Factor(J, lu.Options{ColPerm: perm})
		if err != nil {
			return err
		}
		fact = f
		return nil
	}

	// solveAll solves every system in rhsAll in place on the current
	// factorization: one blocked traversal unless SingleRHS pins the
	// one-at-a-time baseline.
	solveAll := func(rhsAll [][]float64) {
		if opt.SingleRHS {
			for _, r := range rhsAll {
				fact.Solve(r)
			}
		} else {
			fact.SolveMulti(rhsAll)
		}
	}

	s := make([][]float64, len(params))      // s_i per parameter
	rhsAll := make([][]float64, len(params)) // per-parameter right-hand sides
	for k := range s {
		s[k] = make([]float64, N)
		rhsAll[k] = make([]float64, N)
	}
	// Per-worker scratch: sparse accumulator and G_{i-1}·s workspace.
	// ParamSens itself is stateless (reads only the bound device tree), so
	// one Eval is shared read-only across workers.
	accs := make([]*device.SensAccum, W)
	gss := make([][]float64, W)
	for w := 0; w < W; w++ {
		accs[w] = device.NewSensAccum(N)
		gss[w] = make([]float64, N)
	}
	// prevQ holds the previous step's sparse ∂q/∂p pairs per parameter.
	type kv struct {
		k int32
		v float64
	}
	prevQ := make([][]kv, len(params))
	prevF := make([][]kv, len(params)) // trapezoidal dfdp_{i-1} carry
	cPrev := sparse.NewMatrix(ckt.CPat)
	gPrev := sparse.NewMatrix(ckt.GPat)

	// Step 0: DC sensitivity G_0 s_0 = -dfdp_0.
	ev.Run(tr.States[0], tr.Times[0])
	ev.BuildJ(J, 0)
	ckt.AddGmin(J, 1e-12)
	if err := factorize(); err != nil {
		return nil, fmt.Errorf("adjoint: direct DC factor: %w", err)
	}
	pool.run(func(w int) {
		lo, hi := shard(w, W, len(params))
		acc := accs[w]
		for pk := lo; pk < hi; pk++ {
			acc.Reset()
			ev.ParamSens(params[pk], tr.States[0], tr.Times[0], acc)
			rhs := rhsAll[pk]
			for k := range rhs {
				rhs[k] = 0
			}
			for _, k := range acc.Touched {
				rhs[k] = -acc.DFdp[k]
				prevQ[pk] = append(prevQ[pk], kv{k, acc.DQdp[k]})
				if trap {
					prevF[pk] = append(prevF[pk], kv{k, acc.DFdp[k]})
				}
			}
		}
	})
	solveAll(rhsAll)
	for pk := range params {
		s[pk], rhsAll[pk] = rhsAll[pk], s[pk]
	}
	copy(cPrev.Val, ev.C.Val)
	copy(gPrev.Val, ev.G.Val)

	res := &Result{
		DOdp:   make([][]float64, len(objs)),
		Params: params,
	}
	for o := range objs {
		res.DOdp[o] = make([]float64, len(params))
	}
	for i := 1; i <= n; i++ {
		h := tr.Hs[i]
		invH := 1 / h
		ev.Run(tr.States[i], tr.Times[i])
		if trap {
			ev.BuildJWeighted(J, 0.5, invH)
		} else {
			ev.BuildJ(J, invH)
		}
		if err := factorize(); err != nil {
			return nil, fmt.Errorf("adjoint: direct factor step %d: %w", i, err)
		}
		pool.run(func(w int) {
			lo, hi := shard(w, W, len(params))
			acc, gs := accs[w], gss[w]
			for pk := lo; pk < hi; pk++ {
				acc.Reset()
				ev.ParamSens(params[pk], tr.States[i], tr.Times[i], acc)
				// BE:   rhs = C_{i-1}s/h − (dqdp_i − dqdp_{i-1})/h − dfdp_i.
				// Trap: rhs = C_{i-1}s/h − ½G_{i-1}s − (dqdp_i − dqdp_{i-1})/h
				//             − ½(dfdp_i + dfdp_{i-1}).
				rhs := rhsAll[pk]
				cPrev.MulVec(s[pk], rhs)
				for k := range rhs {
					rhs[k] *= invH
				}
				if trap {
					gPrev.MulVec(s[pk], gs)
					for k := range rhs {
						rhs[k] -= 0.5 * gs[k]
					}
					for _, k := range acc.Touched {
						rhs[k] -= invH*acc.DQdp[k] + 0.5*acc.DFdp[k]
					}
					for _, e := range prevF[pk] {
						rhs[e.k] -= 0.5 * e.v
					}
					prevF[pk] = prevF[pk][:0]
					for _, k := range acc.Touched {
						prevF[pk] = append(prevF[pk], kv{k, acc.DFdp[k]})
					}
				} else {
					for _, k := range acc.Touched {
						rhs[k] -= invH*acc.DQdp[k] + acc.DFdp[k]
					}
				}
				for _, e := range prevQ[pk] {
					rhs[e.k] += invH * e.v
				}
				prevQ[pk] = prevQ[pk][:0]
				for _, k := range acc.Touched {
					prevQ[pk] = append(prevQ[pk], kv{k, acc.DQdp[k]})
				}
			}
		})
		solveAll(rhsAll)
		for pk := range params {
			s[pk], rhsAll[pk] = rhsAll[pk], s[pk]
		}
		copy(cPrev.Val, ev.C.Val)
		if trap {
			copy(gPrev.Val, ev.G.Val)
		}
		// Harvest objectives anchored at (or integrating over) this step.
		for o := range objs {
			if objs[o].Integral {
				for pk := range params {
					res.DOdp[o][pk] += objs[o].Weight * h * s[pk][objs[o].Node]
				}
			} else if objs[o].effStep(n) == i {
				for pk := range params {
					res.DOdp[o][pk] = objs[o].Weight * s[pk][objs[o].Node]
				}
			}
		}
	}
	res.Timing.Total = time.Since(t0)
	return res, nil
}

// XyceNaiveSensitivities reproduces the pre-MASC flow the paper's Table 1
// times: the adjoint is solved once per objective, and every sweep
// recomputes every per-step Jacobian from scratch. With stored (or
// compressed) tensors the same objectives share one sweep — that gap is
// the paper's motivation.
func XyceNaiveSensitivities(ckt *circuit.Circuit, tr *transient.Result, objs []Objective, opt Options) (*Result, error) {
	var total *Result
	for o := range objs {
		src := NewRecomputeSource(ckt, tr)
		r, err := Sensitivities(ckt, tr, src, objs[o:o+1], opt)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = r
			continue
		}
		total.DOdp = append(total.DOdp, r.DOdp[0])
		total.Timing.Total += r.Timing.Total
		total.Timing.Fetch += r.Timing.Fetch
		total.Timing.FactorSolve += r.Timing.FactorSolve
		total.Timing.ParamEval += r.Timing.ParamEval
	}
	return total, nil
}
