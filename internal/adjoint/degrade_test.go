package adjoint

import (
	"errors"
	"math"
	"testing"

	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// degradeFixture runs one forward transient on the RC ladder, capturing
// into both a clean MemStore (the reference) and the store under test.
func degradeFixture(t *testing.T, faulty jactensor.Store) (*Result, *Result, *transient.Result) {
	t.Helper()
	ckt, b := rcLadder(t)
	node, err := b.NodeIndex("n6")
	if err != nil {
		t.Fatal(err)
	}
	clean := jactensor.NewMemStore()
	opt := transient.Options{TStop: 2e-4, TStep: 2e-6}
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		if err := clean.Put(step, J.Val, C.Val); err != nil {
			return err
		}
		return faulty.Put(step, J.Val, C.Val)
	}
	res, err := transient.Run(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := faulty.EndForward(); err != nil {
		t.Fatal(err)
	}
	objs := []Objective{{Node: node, Weight: 1}}
	want, err := Sensitivities(ckt, res, clean, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sensitivities(ckt, res, faulty, objs, Options{})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	return want, got, res
}

// TestDegradedSweepBitIdentical corrupts stored blobs with the fault
// injector and asserts the tentpole guarantee: the reverse sweep degrades
// to per-step recomputation for the damaged steps and finishes with
// sensitivities BIT-IDENTICAL to the fault-free run.
func TestDegradedSweepBitIdentical(t *testing.T) {
	mk := map[string]func() (jactensor.Store, *faultinject.Injector){
		"mem": func() (jactensor.Store, *faultinject.Injector) {
			in := faultinject.New(faultinject.Profile{Seed: 11, BitFlipOneIn: 10})
			st := jactensor.NewMemStore()
			st.SetFault(in)
			return st, in
		},
		"compressed-sync": func() (jactensor.Store, *faultinject.Injector) {
			in := faultinject.New(faultinject.Profile{Seed: 12, BitFlipOneIn: 10})
			ckt, _ := rcLadder(t)
			st := jactensor.NewCompressedStore(
				masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
				ckt.JPat, ckt.CPat)
			st.SetFault(in)
			return st, in
		},
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			st, in := build()
			want, got, _ := degradeFixture(t, st)
			if !in.Stats().Any() {
				t.Fatal("injector delivered no faults; test proves nothing")
			}
			if len(got.DegradedSteps) == 0 {
				t.Fatal("faults were injected but no step degraded")
			}
			for k := range want.DOdp[0] {
				if math.Float64bits(want.DOdp[0][k]) != math.Float64bits(got.DOdp[0][k]) {
					t.Fatalf("param %d: degraded %g != clean %g (not bit-identical)",
						k, got.DOdp[0][k], want.DOdp[0][k])
				}
			}
			if st.Stats().Repairs != len(got.DegradedSteps) {
				t.Fatalf("repairs %d != degraded steps %d", st.Stats().Repairs, len(got.DegradedSteps))
			}
		})
	}
}

// TestDisableDegradeFailsFast pins the opt-out: with DisableDegrade the
// sweep aborts on the first corrupt step instead of recomputing.
func TestDisableDegradeFailsFast(t *testing.T) {
	ckt, b := rcLadder(t)
	node, err := b.NodeIndex("n6")
	if err != nil {
		t.Fatal(err)
	}
	st := jactensor.NewMemStore()
	st.SetFault(faultinject.New(faultinject.Profile{Seed: 3, BitFlipOneIn: 5}))
	res, err := transient.Run(ckt, captureInto(transient.Options{TStop: 2e-4, TStep: 2e-6}, st))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EndForward(); err != nil {
		t.Fatal(err)
	}
	_, err = Sensitivities(ckt, res, st, []Objective{{Node: node, Weight: 1}},
		Options{DisableDegrade: true})
	if !errors.Is(err, jactensor.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt with DisableDegrade, got %v", err)
	}
}
