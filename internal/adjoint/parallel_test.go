package adjoint

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"masc/internal/compress/masczip"
	"masc/internal/faultinject"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// workerCounts is the property-test sweep: serial, small, the machine
// width, and oversubscribed. MASC_ADJOINT_WORKERS=a,b,c extends the list.
func workerCounts(tb testing.TB) []int {
	ws := []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3}
	if env := os.Getenv("MASC_ADJOINT_WORKERS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				tb.Fatalf("MASC_ADJOINT_WORKERS: bad entry %q", f)
			}
			ws = append(ws, n)
		}
	}
	return ws
}

// requireBitIdentical asserts two DOdp matrices match bit for bit.
func requireBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.DOdp) != len(got.DOdp) {
		t.Fatalf("%s: objective count %d != %d", label, len(got.DOdp), len(want.DOdp))
	}
	for o := range want.DOdp {
		for k := range want.DOdp[o] {
			if math.Float64bits(want.DOdp[o][k]) != math.Float64bits(got.DOdp[o][k]) {
				t.Fatalf("%s: obj %d param %d: %g != serial %g (not bit-identical)",
					label, o, k, got.DOdp[o][k], want.DOdp[o][k])
			}
		}
	}
}

// TestParallelSweepBitIdentical is the tentpole property test: for every
// circuit family, integrator, objective mix, and worker count (including
// oversubscription), the parallel sweep must reproduce the serial
// single-RHS sweep's bits exactly, with and without the blocked multi-RHS
// kernel.
func TestParallelSweepBitIdentical(t *testing.T) {
	type fixture struct {
		name string
		tc   testCase
		trap bool
	}
	fixtures := []fixture{
		{"rc_ladder_be", cases()[0], false},
		{"diode_rectifier_be", cases()[1], false},
		{"bjt_amp_trap", cases()[2], true},
		{"mos_inverter_be", cases()[3], false},
		{"rlc_tank_trap", cases()[4], true},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			ckt, b := fx.tc.build(t)
			opt := fx.tc.opt
			if fx.trap {
				opt.Method = transient.MethodTrap
			}
			store := jactensor.NewMemStore()
			res, err := transient.Run(ckt, captureInto(opt, store))
			if err != nil {
				t.Fatal(err)
			}
			if err := store.EndForward(); err != nil {
				t.Fatal(err)
			}
			node, err := b.NodeIndex(fx.tc.obj)
			if err != nil {
				t.Fatal(err)
			}
			// Final-step, interior-step, and integral objectives: solving
			// several systems per step exercises the blocked kernel with
			// k > 1, and the interior anchors exercise sourceAt off the
			// final step.
			objs := []Objective{
				{Name: "final", Node: node, Weight: 1},
				{Name: "mid", Node: node, Weight: 0.5, Step: res.Steps() / 2},
				{Name: "integral", Node: node, Weight: 2, Integral: true},
				{Name: "quarter", Node: node, Weight: -1, Step: res.Steps() / 4},
			}
			src := keepAll{store}
			want, err := Sensitivities(ckt, res, src, objs, Options{Workers: 1, SingleRHS: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts(t) {
				for _, single := range []bool{false, true} {
					got, err := Sensitivities(ckt, res, src, objs, Options{Workers: w, SingleRHS: single})
					if err != nil {
						t.Fatalf("workers=%d singleRHS=%v: %v", w, single, err)
					}
					label := "workers=" + strconv.Itoa(w)
					if single {
						label += ",singleRHS"
					}
					requireBitIdentical(t, label, want, got)
				}
			}
		})
	}
}

// degradedRun builds a fresh fault-injected fixture and sweeps it with the
// given worker count, returning the clean serial reference and the
// degraded run. Fresh stores per call: the degradation ladder repairs the
// store it walks, so reuse would stop exercising it.
func degradedRun(t *testing.T, workers int, compressed bool) (*Result, *Result) {
	t.Helper()
	ckt, b := rcLadder(t)
	node, err := b.NodeIndex("n6")
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(faultinject.Profile{Seed: 11, BitFlipOneIn: 10})
	var faulty jactensor.Store
	if compressed {
		st := jactensor.NewCompressedStore(
			masczip.New(ckt.JPat, masczip.Options{}), masczip.New(ckt.CPat, masczip.Options{}),
			ckt.JPat, ckt.CPat)
		st.SetFault(in)
		faulty = st
	} else {
		st := jactensor.NewMemStore()
		st.SetFault(in)
		faulty = st
	}
	clean := jactensor.NewMemStore()
	opt := transient.Options{TStop: 2e-4, TStep: 2e-6}
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		if err := clean.Put(step, J.Val, C.Val); err != nil {
			return err
		}
		return faulty.Put(step, J.Val, C.Val)
	}
	res, err := transient.Run(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.EndForward(); err != nil {
		t.Fatal(err)
	}
	if err := faulty.EndForward(); err != nil {
		t.Fatal(err)
	}
	objs := []Objective{
		{Node: node, Weight: 1},
		{Node: node, Weight: 1, Integral: true},
	}
	want, err := Sensitivities(ckt, res, clean, objs, Options{Workers: 1, SingleRHS: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sensitivities(ckt, res, faulty, objs, Options{Workers: workers})
	if err != nil {
		t.Fatalf("degraded sweep (workers=%d) failed: %v", workers, err)
	}
	if !in.Stats().Any() {
		t.Fatal("injector delivered no faults; test proves nothing")
	}
	if len(got.DegradedSteps) == 0 {
		t.Fatal("faults were injected but no step degraded")
	}
	return want, got
}

// TestParallelDegradedBitIdentical composes the engine with the PR-4 fault
// tolerance: with bit flips injected into the store, the parallel sweep
// must still walk the degradation ladder (now on the fetcher goroutine)
// and finish bit-identical to the fault-free serial run.
func TestParallelDegradedBitIdentical(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		name := "mem"
		if compressed {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			for _, w := range workerCounts(t) {
				want, got := degradedRun(t, w, compressed)
				requireBitIdentical(t, "workers="+strconv.Itoa(w), want, got)
			}
		})
	}
}

// TestDirectParallelBitIdentical pins the same property for the forward
// method: sharded RHS builds plus the blocked SolveMulti must match the
// serial single-RHS baseline bit for bit.
func TestDirectParallelBitIdentical(t *testing.T) {
	for _, trap := range []bool{false, true} {
		name := "be"
		if trap {
			name = "trap"
		}
		t.Run(name, func(t *testing.T) {
			ckt, b := bjtAmp(t)
			opt := transient.Options{TStop: 5e-5, TStep: 1e-6}
			if trap {
				opt.Method = transient.MethodTrap
			}
			res, err := transient.Run(ckt, opt)
			if err != nil {
				t.Fatal(err)
			}
			node, err := b.NodeIndex("col")
			if err != nil {
				t.Fatal(err)
			}
			objs := []Objective{
				{Node: node, Weight: 1},
				{Node: node, Weight: 1, Integral: true},
			}
			want, err := DirectSensitivities(ckt, res, objs, Options{Workers: 1, SingleRHS: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts(t) {
				got, err := DirectSensitivities(ckt, res, objs, Options{Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				requireBitIdentical(t, "workers="+strconv.Itoa(w), want, got)
			}
		})
	}
}

// TestSweepErrorTeardown pins the overlap path's failure mode: a
// non-degradable fetch error must surface as an error (not a hang or a
// panic), with the fetcher goroutine fully drained.
func TestSweepErrorTeardown(t *testing.T) {
	ckt, b := rcLadder(t)
	node, _ := b.NodeIndex("n6")
	store := jactensor.NewMemStore()
	res, err := transient.Run(ckt, captureInto(transient.Options{TStop: 2e-4, TStep: 2e-6}, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	// Sweep once to exhaustion: every step is released, so a second sweep
	// fails its very first (non-degradable) fetch.
	objs := []Objective{{Node: node, Weight: 1}}
	if _, err := Sensitivities(ckt, res, store, objs, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sensitivities(ckt, res, store, objs, Options{Workers: 4, DisableDegrade: true}); err == nil {
		t.Fatal("second sweep over a released store should fail")
	}
}
