package adjoint

import (
	"math"
	"testing"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// captureInto wires a jactensor store into transient options.
func captureInto(opt transient.Options, store jactensor.Store) transient.Options {
	opt.Capture = func(step int, _ float64, _ []float64, J, C *sparse.Matrix) error {
		return store.Put(step, J.Val, C.Val)
	}
	return opt
}

type testCase struct {
	name  string
	build func(tb testing.TB) (*circuit.Circuit, *circuit.Builder)
	opt   transient.Options
	obj   string // node name for the objective
	// fdRelTol is the adjoint-vs-finite-difference tolerance; devices with
	// region boundaries (MOSFET) need looser checks.
	fdRelTol float64
}

func rcLadder(tb testing.TB) (*circuit.Circuit, *circuit.Builder) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", "n0", "0", device.Sin{VA: 2, Freq: 5e3})
	for i := 0; i < 6; i++ {
		from := nodeName(i)
		to := nodeName(i + 1)
		b.AddResistor(rname("r", i), from, to, 1e3*(1+0.2*float64(i)))
		b.AddCapacitor(rname("c", i), to, "0", 1e-8*(1+0.1*float64(i)))
	}
	ckt, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return ckt, b
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i))
}

func rname(p string, i int) string {
	return p + string(rune('0'+i))
}

func diodeRect(tb testing.TB) (*circuit.Circuit, *circuit.Builder) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Sin{VA: 3, Freq: 2e3})
	b.AddDiode("d1", "in", "out")
	b.AddResistor("rl", "out", "0", 2e3)
	b.AddCapacitor("cl", "out", "0", 5e-8)
	ckt, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return ckt, b
}

func bjtAmp(tb testing.TB) (*circuit.Circuit, *circuit.Builder) {
	b := circuit.NewBuilder()
	b.AddVSource("vcc", "vcc", "0", device.DC(9))
	b.AddVSource("vin", "sig", "0", device.Sin{VO: 0, VA: 0.05, Freq: 10e3})
	b.AddResistor("rs", "sig", "base", 1e3)
	b.AddResistor("rb1", "vcc", "base", 68e3)
	b.AddResistor("rb2", "base", "0", 12e3)
	b.AddResistor("rc", "vcc", "col", 3.3e3)
	b.AddResistor("re", "em", "0", 680)
	b.AddCapacitor("ce", "em", "0", 1e-7)
	b.AddBJT("q1", "col", "base", "em")
	b.AddCapacitor("cout", "col", "0", 1e-11)
	ckt, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return ckt, b
}

func mosInverter(tb testing.TB) (*circuit.Circuit, *circuit.Builder) {
	b := circuit.NewBuilder()
	b.AddVSource("vdd", "vdd", "0", device.DC(3))
	b.AddVSource("vin", "in", "0", device.Sin{VO: 1.5, VA: 1.0, Freq: 50e3})
	b.AddResistor("rd", "vdd", "out", 20e3)
	m := b.AddMOSFET("m1", "out", "in", "0")
	m.KP = 5e-4
	b.AddCapacitor("cl", "out", "0", 2e-12)
	ckt, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return ckt, b
}

func rlcTank(tb testing.TB) (*circuit.Circuit, *circuit.Builder) {
	b := circuit.NewBuilder()
	b.AddVSource("vin", "in", "0", device.Pulse{V1: 0, V2: 1, TR: 1e-9, PW: 1, PE: 2})
	b.AddResistor("r1", "in", "a", 50)
	b.AddInductor("l1", "a", "b", 1e-4)
	b.AddCapacitor("c1", "b", "0", 1e-8)
	b.AddResistor("r2", "b", "0", 10e3)
	ckt, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return ckt, b
}

func cases() []testCase {
	return []testCase{
		{"rc_ladder", rcLadder, transient.Options{TStop: 2e-4, TStep: 2e-6}, "n6", 2e-3},
		{"diode_rectifier", diodeRect, transient.Options{TStop: 5e-4, TStep: 5e-6}, "out", 5e-3},
		{"bjt_amp", bjtAmp, transient.Options{TStop: 1e-4, TStep: 1e-6}, "col", 5e-3},
		{"mos_inverter", mosInverter, transient.Options{TStop: 2e-5, TStep: 2e-7}, "out", 3e-2},
		// Short enough that the ringing is still alive — at 10 decay
		// constants dO/dL collapses to cancellation noise.
		{"rlc_tank", rlcTank, transient.Options{TStop: 1e-5, TStep: 5e-8}, "b", 2e-3},
	}
}

// finalStateObjective computes O = x_final[node] for the current parameter
// values by re-running the transient analysis.
func finalStateObjective(tb testing.TB, ckt *circuit.Circuit, opt transient.Options, node int32) float64 {
	res, err := transient.Run(ckt, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return res.States[len(res.States)-1][node]
}

func TestAdjointAgainstDirectAndFD(t *testing.T) {
	for _, tc := range cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ckt, b := tc.build(t)
			node, err := b.NodeIndex(tc.obj)
			if err != nil {
				t.Fatal(err)
			}
			store := jactensor.NewMemStore()
			res, err := transient.Run(ckt, captureInto(tc.opt, store))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.StepsCut != 0 {
				t.Fatalf("step cuts (%d) would break FD comparability", res.Stats.StepsCut)
			}
			if err := store.EndForward(); err != nil {
				t.Fatal(err)
			}
			objs := []Objective{{Name: "v(" + tc.obj + ")", Node: node, Weight: 1}}

			adj, err := Sensitivities(ckt, res, store, objs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			adjR, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), objs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dir, err := DirectSensitivities(ckt, res, objs, Options{})
			if err != nil {
				t.Fatal(err)
			}

			params := ckt.Params()
			// The two adjoint sources must agree to round-off.
			for k := range params {
				a, b2 := adj.DOdp[0][k], adjR.DOdp[0][k]
				if diff := math.Abs(a - b2); diff > 1e-9*math.Max(1, math.Abs(a)) {
					t.Fatalf("param %s: stored-adjoint %g vs recompute-adjoint %g", params[k].Name, a, b2)
				}
			}
			// Adjoint and direct must agree tightly (same discretization).
			for k := range params {
				a, d := adj.DOdp[0][k], dir.DOdp[0][k]
				scale := math.Max(math.Abs(a), math.Abs(d))
				if scale < 1e-15 {
					continue
				}
				if diff := math.Abs(a - d); diff > 1e-6*scale {
					t.Fatalf("param %s: adjoint %g vs direct %g (rel %g)", params[k].Name, a, d, math.Abs(a-d)/scale)
				}
			}
			// Adjoint vs central finite differences of the whole simulation.
			for k, p := range params {
				v0 := p.Get()
				// 1e-3 relative balances truncation against cancellation:
				// the objective is O(1), so ΔO quantization stays far below
				// the signal even for Is ~ 1e-14-scale parameters.
				h := math.Abs(v0) * 1e-3
				if h == 0 {
					h = 1e-9
				}
				// Skip derivatives FD cannot resolve: the induced ΔO must
				// clear the double-precision noise floor of the objective.
				if math.Abs(adj.DOdp[0][k])*h < 1e-13 {
					continue
				}
				p.Set(v0 + h)
				op := finalStateObjective(t, ckt, tc.opt, node)
				p.Set(v0 - h)
				om := finalStateObjective(t, ckt, tc.opt, node)
				p.Set(v0)
				fd := (op - om) / (2 * h)
				a := adj.DOdp[0][k]
				scale := math.Max(math.Abs(a), math.Abs(fd))
				if scale < 1e-12 {
					continue
				}
				if diff := math.Abs(a - fd); diff > tc.fdRelTol*scale+1e-12 {
					t.Fatalf("param %s: adjoint %g vs FD %g (rel %g)", p.Name, a, fd, math.Abs(a-fd)/scale)
				}
			}
		})
	}
}

func TestMultipleObjectives(t *testing.T) {
	ckt, b := rcLadder(t)
	store := jactensor.NewMemStore()
	opt := transient.Options{TStop: 1e-4, TStep: 2e-6}
	res, err := transient.Run(ckt, captureInto(opt, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	n3, _ := b.NodeIndex("n3")
	n6, _ := b.NodeIndex("n6")
	objs := []Objective{
		{Name: "v(n3)", Node: n3, Weight: 1},
		{Name: "v(n6)", Node: n6, Weight: 1},
		{Name: "2v(n6)", Node: n6, Weight: 2},
	}
	adj, err := Sensitivities(ckt, res, store, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Linearity: objective 2 = 2 × objective 1 element-wise.
	for k := range adj.DOdp[1] {
		if diff := math.Abs(adj.DOdp[2][k] - 2*adj.DOdp[1][k]); diff > 1e-12*math.Max(1, math.Abs(adj.DOdp[1][k])) {
			t.Fatalf("weighted objective not linear at param %d", k)
		}
	}
	// Objectives at different nodes must differ.
	same := true
	for k := range adj.DOdp[0] {
		if math.Abs(adj.DOdp[0][k]-adj.DOdp[1][k]) > 1e-15 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("objectives at different nodes produced identical sensitivities")
	}
}

func TestParamSubset(t *testing.T) {
	ckt, b := rcLadder(t)
	store := jactensor.NewMemStore()
	opt := transient.Options{TStop: 1e-4, TStep: 2e-6}
	res, err := transient.Run(ckt, captureInto(opt, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	n6, _ := b.NodeIndex("n6")
	objs := []Objective{{Node: n6, Weight: 1}}
	full, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), objs, Options{Params: []int{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.DOdp[0]) != 2 {
		t.Fatalf("subset result has %d params", len(sub.DOdp[0]))
	}
	if math.Abs(sub.DOdp[0][0]-full.DOdp[0][2]) > 1e-12 || math.Abs(sub.DOdp[0][1]-full.DOdp[0][5]) > 1e-12 {
		t.Fatal("subset sensitivities disagree with full run")
	}
}

func TestErrorsOnDegenerateInput(t *testing.T) {
	ckt, b := rcLadder(t)
	n6, _ := b.NodeIndex("n6")
	res := &transient.Result{Times: []float64{0}, Hs: []float64{0}, States: [][]float64{make([]float64, ckt.N)}}
	if _, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), []Objective{{Node: n6, Weight: 1}}, Options{}); err == nil {
		t.Fatal("expected error for empty trajectory")
	}
	goodRes, err := transient.Run(ckt, transient.Options{TStop: 1e-5, TStep: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sensitivities(ckt, goodRes, NewRecomputeSource(ckt, goodRes), nil, Options{}); err == nil {
		t.Fatal("expected error for no objectives")
	}
}

func BenchmarkAdjointRecompute(b *testing.B) {
	ckt, bld := bjtAmp(b)
	opt := transient.Options{TStop: 5e-5, TStep: 1e-6}
	res, err := transient.Run(ckt, opt)
	if err != nil {
		b.Fatal(err)
	}
	node, _ := bld.NodeIndex("col")
	objs := []Objective{{Node: node, Weight: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), objs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjointMemStore(b *testing.B) {
	ckt, bld := bjtAmp(b)
	store := jactensor.NewMemStore()
	opt := captureInto(transient.Options{TStop: 5e-5, TStep: 1e-6}, store)
	res, err := transient.Run(ckt, opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		b.Fatal(err)
	}
	node, _ := bld.NodeIndex("col")
	objs := []Objective{{Node: node, Weight: 1}}
	// The adjoint releases steps as it walks; a benchmark reusing one
	// store across iterations must ignore those releases.
	src := keepAll{store}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivities(ckt, res, src, objs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// keepAll wraps a JacobianSource, ignoring Release so the source can be
// swept repeatedly.
type keepAll struct{ JacobianSource }

func (keepAll) Release(int) {}

// TestMultiTimePointObjectives anchors objectives at interior steps and
// validates against finite differences of the state at those steps.
func TestMultiTimePointObjectives(t *testing.T) {
	ckt, b := rcLadder(t)
	opt := transient.Options{TStop: 1e-4, TStep: 1e-6}
	store := jactensor.NewMemStore()
	res, err := transient.Run(ckt, captureInto(opt, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	n3, _ := b.NodeIndex("n3")
	n6, _ := b.NodeIndex("n6")
	mid := res.Steps() / 2
	objs := []Objective{
		{Name: "v(n3)@mid", Node: n3, Weight: 1, Step: mid},
		{Name: "v(n6)@final", Node: n6, Weight: 1},
		{Name: "v(n6)@quarter", Node: n6, Weight: 1, Step: res.Steps() / 4},
	}
	adj, err := Sensitivities(ckt, res, store, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DirectSensitivities(ckt, res, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := XyceNaiveSensitivities(ckt, res, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := ckt.Params()
	for o := range objs {
		for k := range params {
			a, d, nv := adj.DOdp[o][k], dir.DOdp[o][k], naive.DOdp[o][k]
			scale := math.Max(1e-12, math.Max(math.Abs(a), math.Abs(d)))
			if math.Abs(a-d) > 1e-6*scale {
				t.Fatalf("obj %d param %s: adjoint %g vs direct %g", o, params[k].Name, a, d)
			}
			if math.Abs(a-nv) > 1e-9*scale {
				t.Fatalf("obj %d param %s: adjoint %g vs naive %g", o, params[k].Name, a, nv)
			}
		}
	}
	// FD spot-check on a couple of parameters for the mid-step objective.
	for _, k := range []int{0, 3} {
		p := params[k]
		v0 := p.Get()
		h := math.Abs(v0) * 1e-3
		objAt := func() float64 {
			r2, err := transient.Run(ckt, opt)
			if err != nil {
				t.Fatal(err)
			}
			return r2.States[mid][n3]
		}
		p.Set(v0 + h)
		op := objAt()
		p.Set(v0 - h)
		om := objAt()
		p.Set(v0)
		fd := (op - om) / (2 * h)
		a := adj.DOdp[0][k]
		scale := math.Max(math.Abs(a), math.Abs(fd))
		if scale < 1e-12 {
			continue
		}
		if math.Abs(a-fd) > 5e-3*scale {
			t.Fatalf("mid-step objective, param %s: adjoint %g vs FD %g", p.Name, a, fd)
		}
	}
}

// TestAdjointOnAdaptiveGrid validates the h-varying adjoint recurrence:
// the trajectory uses LTE-controlled non-uniform steps, and the adjoint
// must still match the direct method exactly (same discretization).
func TestAdjointOnAdaptiveGrid(t *testing.T) {
	ckt, b := diodeRect(t)
	opt := transient.Options{TStop: 3e-4, TStep: 2e-6, Adaptive: true}
	store := jactensor.NewMemStore()
	res, err := transient.Run(ckt, captureInto(opt, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	// Ensure the grid is genuinely non-uniform.
	uniform := true
	for i := 2; i < len(res.Hs); i++ {
		if math.Abs(res.Hs[i]-res.Hs[1]) > 1e-18 {
			uniform = false
			break
		}
	}
	if uniform {
		t.Skip("grid came out uniform; adaptive test has nothing to bite on")
	}
	node, _ := b.NodeIndex("out")
	objs := []Objective{{Node: node, Weight: 1}}
	adj, err := Sensitivities(ckt, res, store, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DirectSensitivities(ckt, res, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range adj.DOdp[0] {
		a, d := adj.DOdp[0][k], dir.DOdp[0][k]
		scale := math.Max(math.Abs(a), math.Abs(d))
		if scale < 1e-15 {
			continue
		}
		if math.Abs(a-d) > 1e-6*scale {
			t.Fatalf("param %d: adjoint %g vs direct %g on adaptive grid", k, a, d)
		}
	}
}

// TestTrapezoidalAdjoint validates the trapezoidal adjoint recurrence on a
// nonlinear circuit against both the direct method (same discretization,
// tight) and finite differences of trapezoidal simulations (loose).
func TestTrapezoidalAdjoint(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(tb testing.TB) (*circuit.Circuit, *circuit.Builder)
		opt   transient.Options
		obj   string
	}{
		{"rc", rcLadder, transient.Options{TStop: 2e-4, TStep: 2e-6, Method: transient.MethodTrap}, "n6"},
		{"diode", diodeRect, transient.Options{TStop: 4e-4, TStep: 4e-6, Method: transient.MethodTrap}, "out"},
		{"bjt", bjtAmp, transient.Options{TStop: 6e-5, TStep: 1e-6, Method: transient.MethodTrap}, "col"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ckt, b := tc.build(t)
			node, _ := b.NodeIndex(tc.obj)
			store := jactensor.NewMemStore()
			res, err := transient.Run(ckt, captureInto(tc.opt, store))
			if err != nil {
				t.Fatal(err)
			}
			if err := store.EndForward(); err != nil {
				t.Fatal(err)
			}
			objs := []Objective{{Node: node, Weight: 1}}
			adj, err := Sensitivities(ckt, res, store, objs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			adjR, err := Sensitivities(ckt, res, NewRecomputeSource(ckt, res), objs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dir, err := DirectSensitivities(ckt, res, objs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			params := ckt.Params()
			for k := range params {
				a, d, r2 := adj.DOdp[0][k], dir.DOdp[0][k], adjR.DOdp[0][k]
				scale := math.Max(math.Abs(a), math.Abs(d))
				if scale < 1e-15 {
					continue
				}
				// The absolute floor covers cancellation noise when a
				// tiny sensitivity is the difference of ~1e-5 terms.
				if math.Abs(a-d) > 1e-6*scale+1e-14 {
					t.Fatalf("param %s: trap adjoint %g vs direct %g", params[k].Name, a, d)
				}
				if math.Abs(a-r2) > 1e-9*math.Max(1, scale) {
					t.Fatalf("param %s: stored %g vs recompute %g", params[k].Name, a, r2)
				}
			}
			// FD spot checks.
			for _, k := range []int{0, 2} {
				p := params[k]
				v0 := p.Get()
				// Flat relative step: O is nonlinear in R/C-scale values, so
				// the huge-step trick for linear-entry parameters is wrong
				// here; detectability is guarded below instead.
				h := math.Abs(v0) * 1e-3
				if math.Abs(adj.DOdp[0][k])*h < 1e-13 {
					continue
				}
				obj := func() float64 {
					r2, err := transient.Run(ckt, tc.opt)
					if err != nil {
						t.Fatal(err)
					}
					return r2.States[len(r2.States)-1][node]
				}
				p.Set(v0 + h)
				op := obj()
				p.Set(v0 - h)
				om := obj()
				p.Set(v0)
				fd := (op - om) / (2 * h)
				a := adj.DOdp[0][k]
				scale := math.Max(math.Abs(a), math.Abs(fd))
				if scale < 1e-12 {
					continue
				}
				if math.Abs(a-fd) > 1e-2*scale {
					t.Fatalf("param %s: trap adjoint %g vs FD %g", p.Name, a, fd)
				}
			}
		})
	}
}

// TestIntegralObjective validates ∫x dt objectives against the direct
// method and finite differences of the integral itself.
func TestIntegralObjective(t *testing.T) {
	ckt, b := diodeRect(t)
	opt := transient.Options{TStop: 3e-4, TStep: 3e-6}
	store := jactensor.NewMemStore()
	res, err := transient.Run(ckt, captureInto(opt, store))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EndForward(); err != nil {
		t.Fatal(err)
	}
	node, _ := b.NodeIndex("out")
	objs := []Objective{{Name: "∫v(out)dt", Node: node, Weight: 1, Integral: true}}
	adj, err := Sensitivities(ckt, res, store, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DirectSensitivities(ckt, res, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := ckt.Params()
	for k := range params {
		a, d := adj.DOdp[0][k], dir.DOdp[0][k]
		scale := math.Max(math.Abs(a), math.Abs(d))
		if scale < 1e-15 {
			continue
		}
		if math.Abs(a-d) > 1e-6*scale+1e-14 {
			t.Fatalf("param %s: integral adjoint %g vs direct %g", params[k].Name, a, d)
		}
	}
	integral := func() float64 {
		r2, err := transient.Run(ckt, opt)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 1; i < len(r2.Times); i++ {
			sum += r2.Hs[i] * r2.States[i][node]
		}
		return sum
	}
	for _, k := range []int{1, 2} { // rl.r and cl.c
		p := params[k]
		v0 := p.Get()
		h := math.Abs(v0) * 1e-3
		if math.Abs(adj.DOdp[0][k])*h < 1e-15 {
			continue
		}
		p.Set(v0 + h)
		op := integral()
		p.Set(v0 - h)
		om := integral()
		p.Set(v0)
		fd := (op - om) / (2 * h)
		a := adj.DOdp[0][k]
		scale := math.Max(math.Abs(a), math.Abs(fd))
		if scale < 1e-15 {
			continue
		}
		if math.Abs(a-fd) > 1e-2*scale {
			t.Fatalf("param %s: integral adjoint %g vs FD %g", p.Name, a, fd)
		}
	}
}
