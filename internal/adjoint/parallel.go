package adjoint

// The parallel adjoint engine. Three independent levers, all preserving
// bit-identical results relative to the serial sweep:
//
//  1. Multi-RHS solves: all K objective systems J_iᵀλ = rhs share one
//     factorization, so lu.SolveTMulti traverses the factor columns once
//     and streams the K right-hand sides through each entry.
//  2. Worker sharding: the per-step parameter-gradient loop (and the
//     per-objective RHS builds feeding the solve) are split into disjoint
//     contiguous shards across a bounded pool. Each (objective, param)
//     cell is touched by exactly one worker with exactly the serial
//     operation sequence, and a per-step barrier keeps the cross-step
//     accumulation order identical to the serial sweep.
//  3. Fetch/solve overlap: a dedicated fetcher goroutine owns every
//     JacobianSource call and runs one step ahead of the solver, so
//     decompression / disk reads / recomputation hide behind the
//     factor+solve+accumulate of the previous step. The PR-4 degradation
//     ladder (quarantine → recompute → repair → refetch) runs unchanged
//     on the fetcher.
//
// Determinism notes. Shards are pure functions of (worker count, length),
// each worker writes only its own res.DOdp[o][pk] cells and lam rows, and
// floating-point accumulation never crosses a shard boundary — so results
// are bit-identical for every worker count, including 1. The fetcher copies
// fetched values into private rotating buffers before touching the next
// step, because sources (RecomputeSource in particular) may alias internal
// scratch that the next Fetch overwrites.

import (
	"errors"
	"fmt"
	"time"

	"masc/internal/circuit"
	"masc/internal/device"
	"masc/internal/jactensor"
	"masc/internal/lu"
	"masc/internal/obs"
	"masc/internal/obs/span"
	"masc/internal/sparse"
	"masc/internal/transient"
)

// shard returns the half-open range [lo, hi) of items worker w owns out of
// total, for a pool of the given size. Shards are contiguous, disjoint, and
// cover [0, total); they depend only on (w, workers, total).
func shard(w, workers, total int) (lo, hi int) {
	return w * total / workers, (w + 1) * total / workers
}

// workerPool runs identical closures on w workers: w-1 persistent
// background goroutines plus the calling goroutine as worker 0. With w = 1
// it degenerates to a plain function call — no goroutines, no channels.
type workerPool struct {
	w    int
	jobs []chan func()
	done chan struct{}
}

func newWorkerPool(w int) *workerPool {
	if w < 1 {
		w = 1
	}
	p := &workerPool{w: w}
	if w > 1 {
		p.done = make(chan struct{}, w-1)
		p.jobs = make([]chan func(), w-1)
		for i := range p.jobs {
			ch := make(chan func(), 1)
			p.jobs[i] = ch
			go func() {
				for fn := range ch {
					fn()
					p.done <- struct{}{}
				}
			}()
		}
	}
	return p
}

// run executes fn(w) for every worker and returns after all complete (a
// barrier). Worker 0 is the calling goroutine.
func (p *workerPool) run(fn func(w int)) {
	for i, ch := range p.jobs {
		w := i + 1
		ch <- func() { fn(w) }
	}
	fn(0)
	for range p.jobs {
		<-p.done
	}
}

// spawn hands fn to background worker w (1-based); the caller must pair it
// with a later drain of p.done via wait. Used to overlap main-thread work
// (factorization) with background shards (RHS builds).
func (p *workerPool) spawn(w int, fn func()) { p.jobs[w-1] <- fn }

// wait drains n completions issued via spawn.
func (p *workerPool) wait(n int) {
	for i := 0; i < n; i++ {
		<-p.done
	}
}

func (p *workerPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// fetchBuf is one slot of the fetch pipeline: a private copy of a step's
// Jacobian tensors plus the fetcher-side bookkeeping for that step.
type fetchBuf struct {
	step     int
	jv, cv   []float64
	degraded bool
	dur      time.Duration // fetcher-side acquisition time (incl. ladder)
}

// sweep is one adjoint reverse sweep in flight.
type sweep struct {
	ckt    *circuit.Circuit
	tr     *transient.Result
	src    JacobianSource
	objs   []Objective
	opt    Options
	params []int
	trap   bool
	n      int // last step of the trajectory (global, even for windows)

	// Window-local sweep range [loStep, hiStep]; newSweep initializes the
	// full [0, n] and the windowed engine narrows it. The recurrence at
	// hiStep < n starts from a seed captured by the seeding sweep instead
	// of the terminal condition.
	hiStep, loStep int
	seed           *windowSeed

	// stepContrib redirects the per-step dO/dp contributions into
	// per-step buffers (indexed [i-loStep][o*len(params)+pk]) instead of
	// accumulating into res.DOdp. The windowed engine folds the buffers in
	// global descending-step order afterwards, reproducing the serial
	// accumulation sequence bit for bit. (Per-window partial sums would
	// not: float addition is not associative.)
	stepContrib [][]float64

	// skipParamsAtOrBelow suppresses the parameter-gradient accumulation
	// for steps i <= the bound (-1 disables nothing): the seeding sweep
	// still fetches, factorizes, solves, and updates the λ carries —
	// exactly the state future windows seed from — without paying the
	// ParamEval its windows will perform.
	skipParamsAtOrBelow int

	// stop, when non-nil, aborts the sweep cooperatively at the next step
	// boundary (the windowed engine's shared teardown signal). afterStep
	// runs at the end of every processStep — the seed-capture hook.
	stop      <-chan struct{}
	afterStep func(i int)

	workers int
	pool    *workerPool

	fact *lu.LU
	perm []int32

	lam     [][]float64 // λ_i per objective
	lamNext [][]float64 // λ_{i+1}
	pendQ   [][]float64 // λ_{i+1}/h_{i+1} (dqdp regroup)
	pendF   [][]float64 // ½λ_{i+1} (trapezoidal dfdp regroup)

	evs  []*circuit.Eval // per-worker parameter-sensitivity evaluators
	accs []*device.SensAccum
	tmps [][]float64 // per-worker Jᵀλ scratch (trapezoidal RHS builds)

	rec *RecomputeSource // lazy recompute fallback for degraded steps
	res *Result
	so  sweepObs

	// spanParent is what this sweep's Sweep span nests under (the adjoint
	// root, or a Window span in windowed mode); sweepSpan is the live Sweep
	// span's ID, the parent of the per-step fetch/solve/param spans.
	spanParent span.ID
	sweepSpan  span.ID
}

func newSweep(ckt *circuit.Circuit, tr *transient.Result, src JacobianSource, objs []Objective, params []int, trap bool, opt Options) *sweep {
	w := opt.Workers
	if w < 1 {
		w = 1
	}
	s := &sweep{
		ckt:     ckt,
		tr:      tr,
		src:     src,
		objs:    objs,
		opt:     opt,
		params:  params,
		trap:    trap,
		n:       tr.Steps(),
		workers: w,
		pool:    newWorkerPool(w),
		perm:    ckt.JPerm(),
		so:      newSweepObs(opt.Obs),

		spanParent:          opt.SpanParent,
		skipParamsAtOrBelow: -1,
	}
	s.hiStep, s.loStep = s.n, 0
	N := ckt.N
	s.lam = make([][]float64, len(objs))
	s.lamNext = make([][]float64, len(objs))
	s.pendQ = make([][]float64, len(objs))
	s.pendF = make([][]float64, len(objs))
	for o := range objs {
		s.lam[o] = make([]float64, N)
		s.lamNext[o] = make([]float64, N)
		s.pendQ[o] = make([]float64, N)
		if trap {
			s.pendF[o] = make([]float64, N)
		}
	}
	s.evs = make([]*circuit.Eval, w)
	s.accs = make([]*device.SensAccum, w)
	s.tmps = make([][]float64, w)
	for i := 0; i < w; i++ {
		s.evs[i] = circuit.NewEval(ckt)
		s.accs[i] = device.NewSensAccum(N)
		s.tmps[i] = make([]float64, N)
	}
	s.res = &Result{
		DOdp:    make([][]float64, len(objs)),
		Params:  params,
		Windows: 1,
	}
	for o := range s.res.DOdp {
		s.res.DOdp[o] = make([]float64, len(params))
	}
	if s.so.on {
		s.so.workers.Set(float64(w))
	}
	return s
}

// run drives the sweep to completion. Workers ≤ 1 keeps everything on the
// calling goroutine (and in the serial store-access order); workers > 1
// additionally overlaps the next step's fetch with the current step's
// compute.
func (s *sweep) run() (*Result, error) {
	defer s.pool.close()
	var err error
	if s.workers > 1 {
		err = s.runOverlapped()
	} else {
		err = s.runSerialFetch()
	}
	if err != nil {
		return nil, err
	}
	return s.res, nil
}

// acquire materializes step i's Jacobian tensors, running the degradation
// ladder on any recoverable fetch failure: recompute the step bit-exactly
// from the in-memory trajectory, hand the plaintext back to the store
// (healing the quarantined step and the compressed reference chain), and
// prefer the healed store copy. The returned slices may alias source
// internals and are only valid until the next acquire/Release.
func (s *sweep) acquire(i int) (jv, cv []float64, degraded bool, err error) {
	jv, cv, err = s.src.Fetch(i)
	if err == nil {
		return jv, cv, false, nil
	}
	var se *jactensor.StepError
	if s.opt.DisableDegrade || !errors.As(err, &se) || !se.Degradable {
		return nil, nil, false, fmt.Errorf("adjoint: fetch step %d: %w", i, err)
	}
	if s.rec == nil {
		s.rec = NewRecomputeSource(s.ckt, s.tr)
	}
	rj, rc, rerr := s.rec.Fetch(i)
	if rerr != nil {
		return nil, nil, false, &DegradeError{Step: i, Fetch: err, Recompute: rerr}
	}
	if rp, ok := s.src.(jactensor.Repairer); ok {
		rp.Repair(i, rj, rc)
		if jv2, cv2, ferr := s.src.Fetch(i); ferr == nil {
			rj, rc = jv2, cv2
		}
	}
	return rj, rc, true, nil
}

// runSerialFetch is the workers ≤ 1 path: fetch, compute, and store
// bookkeeping all interleave on the calling goroutine exactly as in the
// original serial sweep.
func (s *sweep) runSerialFetch() error {
	swp := s.startSweepSpan()
	defer swp.End()
	t0 := time.Now()
	for i := s.hiStep; i >= s.loStep; i-- {
		if err := s.checkStop(); err != nil {
			return err
		}
		tFetch := time.Now()
		jv, cv, degraded, err := s.acquire(i)
		if err != nil {
			return err
		}
		d := time.Since(tFetch)
		s.noteFetch(i, d, d, degraded)
		// Step i+1 is no longer needed once step i has materialized —
		// mirroring Algorithm 2's "decompress M_{n-1} using M_n, then free
		// M_n". Releasing earlier would drop the decompression reference
		// chain of a compressed store.
		if i < s.hiStep {
			s.src.Release(i + 1)
		}
		if err := s.processStep(i, jv, cv); err != nil {
			return err
		}
	}
	s.src.Release(s.loStep)
	s.res.Timing.Total = time.Since(t0)
	return nil
}

// errSweepStopped is the cooperative-abort sentinel: a window sweep that saw
// the shared stop signal (because a sibling failed) returns it so the
// orchestrator can distinguish casualties from the root cause.
var errSweepStopped = errors.New("adjoint: sweep aborted")

// ErrFetchStalled is wrapped into the sweep's error when the overlapped
// engine's fetch pipeline fails to deliver a step within
// Options.FetchStallTimeout.
var ErrFetchStalled = errors.New("adjoint: fetch stalled")

// checkStop polls cancellation and the windowed engine's shared teardown
// signal. A canceled context is a root cause (a real error the orchestrator
// reports); the teardown signal is a casualty (errSweepStopped, filtered).
func (s *sweep) checkStop() error {
	if ctx := s.opt.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("adjoint: canceled: %w", err)
		}
	}
	if s.stop == nil {
		return nil
	}
	select {
	case <-s.stop:
		return errSweepStopped
	default:
		return nil
	}
}

// runOverlapped is the workers > 1 path: a fetcher goroutine owns every
// JacobianSource call (Fetch, the degradation ladder, Release) and keeps
// one step of lookahead in two rotating buffers, so acquisition cost hides
// behind the previous step's factor+solve+accumulate.
func (s *sweep) runOverlapped() error {
	swp := s.startSweepSpan()
	defer swp.End()
	t0 := time.Now()
	free := make(chan *fetchBuf, 2)
	results := make(chan *fetchBuf, 2)
	errCh := make(chan error, 1)
	stop := make(chan struct{})
	free <- &fetchBuf{}
	free <- &fetchBuf{}

	go func() {
		defer close(results)
		for i := s.hiStep; i >= s.loStep; i-- {
			if s.checkStop() != nil {
				return
			}
			var buf *fetchBuf
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			t := time.Now()
			jv, cv, degraded, err := s.acquire(i)
			if err != nil {
				errCh <- err
				return
			}
			// Copy before the next Fetch/Release: the source may reuse the
			// returned backing arrays (RecomputeSource always does).
			buf.jv = append(buf.jv[:0], jv...)
			buf.cv = append(buf.cv[:0], cv...)
			if i < s.hiStep {
				s.src.Release(i + 1)
			}
			buf.step = i
			buf.degraded = degraded
			buf.dur = time.Since(t)
			select {
			case results <- buf:
			case <-stop:
				return
			}
		}
		s.src.Release(s.loStep)
	}()

	// halt tears the pipeline down on an error: signal the fetcher, then
	// drain until it has closed results, so no goroutine touches the store
	// after run returns.
	halt := func() {
		close(stop)
		for range results {
		}
	}

	for i := s.hiStep; i >= s.loStep; i-- {
		if err := s.checkStop(); err != nil {
			halt()
			return err
		}
		tWait := time.Now()
		var buf *fetchBuf
		var ok bool
		if d := s.opt.FetchStallTimeout; d > 0 {
			timer := time.NewTimer(d)
			select {
			case buf, ok = <-results:
				timer.Stop()
			case <-timer.C:
				// The fetcher is wedged (hung syscall, dead recompute).
				// Signal it and drain asynchronously — waiting for a stuck
				// read to finish would just move the hang here.
				close(stop)
				go func() {
					for range results {
					}
				}()
				return fmt.Errorf("adjoint: step %d not delivered within %v: %w", i, d, ErrFetchStalled)
			}
		} else {
			buf, ok = <-results
		}
		wait := time.Since(tWait)
		if !ok {
			select {
			case err := <-errCh:
				return err
			default:
				if s.checkStop() != nil {
					return errSweepStopped
				}
				return fmt.Errorf("adjoint: fetch pipeline stopped before step %d", i)
			}
		}
		if buf.step != i {
			halt()
			return fmt.Errorf("adjoint: fetch pipeline delivered step %d, want %d", buf.step, i)
		}
		// Timing.Fetch is the solver-visible blocked wait; the true
		// fetcher-side acquisition time (buf.dur) and the portion hidden
		// behind compute go to the metrics registry.
		s.noteFetch(i, wait, buf.dur, buf.degraded)
		err := s.processStep(i, buf.jv, buf.cv)
		select {
		case free <- buf:
		default: // fetcher already gone; buffer no longer needed
		}
		if err != nil {
			halt()
			return err
		}
	}
	// The fetcher still owes Release(0); wait for it to finish and close
	// results so the store is quiescent when we return.
	if _, ok := <-results; ok {
		return fmt.Errorf("adjoint: fetch pipeline produced an extra step")
	}
	s.res.Timing.Total = time.Since(t0)
	return nil
}

// startSweepSpan opens this sweep's Sweep span (annotated with its step
// range and worker count) and publishes its ID as the parent of the
// per-step fetch/solve/param spans.
func (s *sweep) startSweepSpan() span.Span {
	swp := s.so.rec.Start(s.spanParent, span.Sweep, -1)
	swp.Attr("lo", int64(s.loStep))
	swp.Attr("hi", int64(s.hiStep))
	swp.Attr("workers", int64(s.workers))
	s.sweepSpan = swp.ID()
	return swp
}

// noteFetch records the acquisition of step i. wait is the solver-visible
// duration (== acq when fetching inline), acq the true acquisition time.
func (s *sweep) noteFetch(i int, wait, acq time.Duration, degraded bool) {
	s.res.Timing.Fetch += wait
	if degraded {
		s.res.DegradedSteps = append(s.res.DegradedSteps, i)
	}
	if rec := s.so.rec; rec != nil {
		// Backdated so the span covers the acquisition interval that just
		// finished (the fetcher-side time, not only the blocked wait).
		t1 := rec.Now()
		fsp := rec.StartAt(s.sweepSpan, span.Fetch, i, t1-int64(acq))
		fsp.Attr("wait_ns", int64(wait))
		fsp.Attr("degraded", boolInt(degraded))
		fsp.EndAt(t1)
	}
	if !s.so.on {
		return
	}
	s.so.fetchSec.AddDuration(acq)
	s.so.waitSec.AddDuration(wait)
	if hidden := acq - wait; hidden > 0 {
		s.so.hiddenSec.AddDuration(hidden)
	}
	if degraded {
		s.so.degraded.Inc()
		s.so.tr.Emit(obs.Event{Step: i, Phase: "degrade", Dur: acq})
	}
	s.so.tr.Emit(obs.Event{Step: i, Phase: "adjoint_fetch", Dur: wait})
}

// factorize reuses the recorded symbolic structure when the numeric
// refactorization succeeds and falls back to a fresh pivoting factorization
// when it does not.
func (s *sweep) factorize(j *sparse.Matrix) error {
	if s.fact != nil {
		if err := s.fact.Refactor(j); err == nil {
			return nil
		}
	}
	f, err := lu.Factor(j, lu.Options{ColPerm: s.perm})
	if err != nil {
		return err
	}
	s.fact = f
	return nil
}

// buildRHS forms the adjoint right-hand side of objective o at step i in
// s.lam[o] (including the objective's own ∂O/∂x source), using tmp as Jᵀλ
// scratch. Reads J/C values and s.lamNext only — safe to run concurrently
// across objectives, and concurrently with factorization (which reads J and
// writes only factor internals).
func (s *sweep) buildRHS(o, i int, J, C *sparse.Matrix, tmp []float64) {
	lam, lamNext := s.lam[o], s.lamNext[o]
	if i == s.n {
		for k := range lam {
			lam[k] = 0
		}
	} else if !s.trap {
		// Backward Euler: rhs = (1/h_{i+1}) C_iᵀ λ_{i+1}.
		C.MulVecT(lamNext, lam)
		invH := 1 / s.tr.Hs[i+1]
		for k := range lam {
			lam[k] *= invH
		}
	} else {
		// Trapezoidal: ∂F_{i+1}/∂x_i = −C_i/h_{i+1} + ½G_i, with
		// ½G_i = J_i − C_i/h_i for i ≥ 1 and ½G_0 = ½J_0 at the DC step.
		// rhs = −(∂F_{i+1}/∂x_i)ᵀ λ_{i+1}.
		C.MulVecT(lamNext, lam)
		J.MulVecT(lamNext, tmp)
		if i >= 1 {
			coef := 1/s.tr.Hs[i+1] + 1/s.tr.Hs[i]
			for k := range lam {
				lam[k] = coef*lam[k] - tmp[k]
			}
		} else {
			coef := 1 / s.tr.Hs[1]
			for k := range lam {
				lam[k] = coef*lam[k] - 0.5*tmp[k]
			}
		}
	}
	// The objective's ∂O/∂x_i source enters at its own step(s).
	if w := s.objs[o].sourceAt(i, s.n, s.tr.Hs[i]); w != 0 {
		lam[s.objs[o].Node] += w
	}
}

// processStep consumes step i's Jacobian tensors: factorize, build and
// solve the K adjoint systems, accumulate the parameter gradients, and
// update the pend carries.
func (s *sweep) processStep(i int, jv, cv []float64) error {
	J := &sparse.Matrix{P: s.ckt.JPat, Val: jv}
	C := &sparse.Matrix{P: s.ckt.CPat, Val: cv}

	ssp := s.so.rec.Start(s.sweepSpan, span.Solve, i)
	tSolve := time.Now()
	var factErr error
	if s.workers > 1 && len(s.objs) > 1 {
		// Background workers build their RHS shards while the calling
		// goroutine factorizes, then it builds shard 0 and joins.
		for w := 1; w < s.workers; w++ {
			w := w
			s.pool.spawn(w, func() {
				lo, hi := shard(w, s.workers, len(s.objs))
				for o := lo; o < hi; o++ {
					s.buildRHS(o, i, J, C, s.tmps[w])
				}
			})
		}
		factErr = s.factorize(J)
		lo, hi := shard(0, s.workers, len(s.objs))
		for o := lo; o < hi; o++ {
			s.buildRHS(o, i, J, C, s.tmps[0])
		}
		s.pool.wait(s.workers - 1)
	} else {
		factErr = s.factorize(J)
		for o := range s.objs {
			s.buildRHS(o, i, J, C, s.tmps[0])
		}
	}
	if factErr != nil {
		ssp.End()
		return fmt.Errorf("adjoint: factor step %d: %w", i, factErr)
	}
	if s.opt.SingleRHS {
		for o := range s.objs {
			s.fact.SolveT(s.lam[o])
		}
	} else {
		s.fact.SolveTMulti(s.lam)
	}
	ssp.Attr("objs", int64(len(s.objs)))
	ssp.End()
	if s.so.on {
		d := time.Since(tSolve)
		s.res.Timing.FactorSolve += d
		s.so.solveSec.AddDuration(d)
		s.so.tr.Emit(obs.Event{Step: i, Phase: "adjoint_solve", Dur: d})
	} else {
		s.res.Timing.FactorSolve += time.Since(tSolve)
	}

	// Accumulate dO/dp contributions of step i, sharded over parameters.
	// Each worker owns a disjoint contiguous pk range and its own
	// evaluator/accumulator scratch; the per-cell operation sequence is
	// exactly the serial one, and the barrier below keeps the cross-step
	// accumulation order serial too — so the merge is deterministic and the
	// result bit-identical for every worker count. A seeding sweep skips
	// this block below its bound (a window owns those steps); λ carries and
	// the swap below still run, because seeds depend on them.
	if i > s.skipParamsAtOrBelow {
		psp := s.so.rec.Start(s.sweepSpan, span.ParamEval, i)
		tPar := time.Now()
		xi, ti := s.tr.States[i], s.tr.Times[i]
		var row []float64
		if s.stepContrib != nil {
			row = s.stepContrib[i-s.loStep]
		}
		s.pool.run(func(w int) {
			var shsp span.Span
			if s.workers > 1 && s.so.rec != nil {
				shsp = s.so.rec.Start(psp.ID(), span.ParamShard, i)
				shsp.Attr("worker", int64(w))
				defer shsp.End()
			}
			lo, hi := shard(w, s.workers, len(s.params))
			if lo >= hi {
				return
			}
			ev, acc := s.evs[w], s.accs[w]
			for pk := lo; pk < hi; pk++ {
				acc.Reset()
				ev.ParamSens(s.params[pk], xi, ti, acc)
				for o := range s.objs {
					contrib := 0.0
					if i >= 1 {
						invH := 1 / s.tr.Hs[i]
						for _, k := range acc.Touched {
							// dfdp_i weight: λ_i for BE, ½λ_i + ½λ_{i+1} for
							// the trapezoidal rule.
							fw := s.lam[o][k]
							if s.trap {
								fw = 0.5*s.lam[o][k] + s.pendF[o][k]
							}
							// dqdp_i weight: λ_i/h_i − λ_{i+1}/h_{i+1}.
							contrib += fw*acc.DFdp[k] +
								(invH*s.lam[o][k]-s.pendQ[o][k])*acc.DQdp[k]
						}
					} else {
						// At i=0 F_0 = f(x_0): full λ_0 weight on dfdp, plus
						// the carries from F_1.
						for _, k := range acc.Touched {
							fw := s.lam[o][k]
							if s.trap {
								fw += s.pendF[o][k]
							}
							contrib += fw*acc.DFdp[k] - s.pendQ[o][k]*acc.DQdp[k]
						}
					}
					if row != nil {
						// Windowed mode: park the contribution; the fold
						// applies them in the serial accumulation order.
						row[o*len(s.params)+pk] = contrib
					} else {
						// With the Lagrangian L = O − Σ λᵀF and the adjoint
						// equations satisfied, dO/dp = −Σ λ_iᵀ ∂F_i/∂p.
						s.res.DOdp[o][pk] -= contrib
					}
				}
			}
		})
		psp.Attr("params", int64(len(s.params)))
		psp.End()
		if s.so.on {
			d := time.Since(tPar)
			s.res.Timing.ParamEval += d
			s.so.paramSec.AddDuration(d)
			s.so.shards.Add(float64(s.workers))
			s.so.tr.Emit(obs.Event{Step: i, Phase: "param_eval", Dur: d})
			s.so.steps.Inc()
		} else {
			s.res.Timing.ParamEval += time.Since(tPar)
		}
	}

	for o := range s.objs {
		if i >= 1 {
			invH := 1 / s.tr.Hs[i]
			for k, v := range s.lam[o] {
				s.pendQ[o][k] = invH * v
			}
			if s.trap {
				for k, v := range s.lam[o] {
					s.pendF[o][k] = 0.5 * v
				}
			}
		}
		s.lamNext[o], s.lam[o] = s.lam[o], s.lamNext[o]
	}
	if s.afterStep != nil {
		s.afterStep(i)
	}
	return nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
