// Package faultinject is a deterministic, seeded fault injector for the
// Jacobian storage pipeline. It simulates the failure modes a multi-hour
// production run actually meets — a flipped bit in a stored blob, a
// truncated record, a transient (or stuck) EIO from the spill device, an
// async compression worker that panics mid-run — so the chaos suite can
// prove the degradation machinery either recovers bit-exactly or fails
// loudly with a typed, step-attributed error.
//
// All methods are safe on a nil *Injector and cost one pointer comparison,
// so production code hooks the injector unconditionally; a nil injector is
// the (default) fault-free configuration. Given the same Profile and the
// same sequence of hook calls, an injector reproduces the same faults —
// every decision comes from a seeded PRNG and per-hook counters, never
// from time or scheduling.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ErrInjected is the root of every injected I/O error; retry layers treat
// it like any other transient device error.
var ErrInjected = errors.New("faultinject: injected I/O error")

// Profile declares which faults to inject and how often. The zero value
// injects nothing.
type Profile struct {
	// Name labels the profile in reports ("bitflip", "eio", …).
	Name string
	// Seed drives every probabilistic decision; runs with equal seeds and
	// equal call sequences inject identical faults.
	Seed int64

	// BitFlipOneIn flips one random bit in roughly 1-in-N stored blobs
	// (checked at store time, detected by checksum at fetch time).
	// 0 disables; 1 corrupts every blob.
	BitFlipOneIn int
	// TruncateOneIn chops a random tail off roughly 1-in-N stored blobs.
	// 0 disables.
	TruncateOneIn int

	// FailOpEvery injects an error on every Nth disk operation (1-based
	// count over the store's lifetime). 0 disables.
	FailOpEvery int
	// FailOpBurst is how many consecutive operations fail once triggered
	// (default 1). A burst larger than the retry budget turns a transient
	// EIO into a hard failure.
	FailOpBurst int

	// PanicAtStep makes the async compression worker panic when it
	// compresses the given step. Values < 1 disable (step 0 — the DC
	// point — cannot be targeted, which no chaos scenario needs).
	PanicAtStep int
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	BlobsCorrupted int // bit flips + truncations of stored blobs
	OpsFailed      int // injected disk-op errors
	Panics         int // injected worker panics
}

// Any reports whether at least one fault was delivered.
func (s Stats) Any() bool { return s.BlobsCorrupted+s.OpsFailed+s.Panics > 0 }

// Injector delivers the faults a Profile declares. The zero value and the
// nil pointer are inert.
type Injector struct {
	mu    sync.Mutex
	p     Profile
	rng   *rand.Rand
	ops   int // disk operations seen
	burst int // remaining consecutive op failures
	st    Stats
}

// New builds an injector for the profile.
func New(p Profile) *Injector {
	return &Injector{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Profile returns the injector's configuration (zero Profile when nil).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.p
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// OpError decides whether the current disk operation fails, returning a
// wrapped ErrInjected when it does. Consecutive failures within a burst
// model a device that stays broken across retries.
func (in *Injector) OpError(op string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.p.FailOpEvery <= 0 {
		return nil
	}
	if in.burst > 0 {
		in.burst--
		in.st.OpsFailed++
		return fmt.Errorf("%w: %s op (burst)", ErrInjected, op)
	}
	in.ops++
	if in.ops%in.p.FailOpEvery != 0 {
		return nil
	}
	burst := in.p.FailOpBurst
	if burst < 1 {
		burst = 1
	}
	in.burst = burst - 1
	in.st.OpsFailed++
	return fmt.Errorf("%w: %s op %d", ErrInjected, op, in.ops)
}

// MutateBlob possibly corrupts a stored blob: a single-bit flip, or a tail
// truncation (returning a shortened alias of b). It reports whether the
// blob was mutated. Call it after the blob's checksum has been computed so
// the corruption is detectable, exactly like real at-rest bit rot.
func (in *Injector) MutateBlob(step int, b []byte) ([]byte, bool) {
	if in == nil || len(b) == 0 {
		return b, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if n := in.p.BitFlipOneIn; n > 0 && in.rng.Intn(n) == 0 {
		i := in.rng.Intn(len(b))
		b[i] ^= 1 << uint(in.rng.Intn(8))
		in.st.BlobsCorrupted++
		return b, true
	}
	if n := in.p.TruncateOneIn; n > 0 && in.rng.Intn(n) == 0 {
		cut := 1 + in.rng.Intn(len(b))
		in.st.BlobsCorrupted++
		return b[:len(b)-cut], true
	}
	return b, false
}

// MutateFloats possibly flips one bit of a raw in-memory tensor (the
// uncompressed store's blob form), reporting whether it did. Call it after
// the slice's checksum has been recorded.
func (in *Injector) MutateFloats(step int, v []float64) bool {
	if in == nil || len(v) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if n := in.p.BitFlipOneIn; n > 0 && in.rng.Intn(n) == 0 {
		flipFloatBit(v, in.rng.Intn(len(v)), uint(in.rng.Intn(64)))
		in.st.BlobsCorrupted++
		return true
	}
	return false
}

// flipFloatBit flips one bit of v[i] through the float's bit pattern.
func flipFloatBit(v []float64, i int, bit uint) {
	v[i] = math.Float64frombits(math.Float64bits(v[i]) ^ (1 << (bit & 63)))
}

// PanicNow reports whether the compression worker should panic at this
// step; the caller performs the actual panic so the stack names its own
// code path.
func (in *Injector) PanicNow(step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.p.PanicAtStep >= 1 && step == in.p.PanicAtStep {
		in.st.Panics++
		return true
	}
	return false
}
