package faultinject

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.OpError("write"); err != nil {
		t.Fatal(err)
	}
	b := []byte{1, 2, 3}
	if _, mutated := in.MutateBlob(0, b); mutated {
		t.Fatal("nil injector mutated a blob")
	}
	if in.MutateFloats(0, []float64{1}) {
		t.Fatal("nil injector mutated floats")
	}
	if in.PanicNow(3) {
		t.Fatal("nil injector requested a panic")
	}
	if in.Stats().Any() {
		t.Fatal("nil injector reported stats")
	}
}

func TestOpErrorCadenceAndBurst(t *testing.T) {
	in := New(Profile{Seed: 1, FailOpEvery: 3, FailOpBurst: 2})
	var pattern []bool
	for i := 0; i < 10; i++ {
		err := in.OpError("write")
		pattern = append(pattern, err != nil)
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error not ErrInjected: %v", err)
		}
	}
	// Ops 1,2 ok; op 3 fails and opens a burst of 1 more; then the counter
	// resumes: 4,5 ok (ops 4,5), op 6 fails + burst, …
	want := []bool{false, false, true, true, false, false, true, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("op %d: failed=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
	if got := in.Stats().OpsFailed; got != 4 {
		t.Fatalf("OpsFailed = %d, want 4", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]byte, Stats) {
		in := New(Profile{Seed: 42, BitFlipOneIn: 2, TruncateOneIn: 3})
		var log []byte
		for step := 0; step < 200; step++ {
			b := bytes.Repeat([]byte{0x5A}, 32)
			nb, mutated := in.MutateBlob(step, b)
			if mutated {
				log = append(log, byte(step), byte(len(nb)))
				log = append(log, nb...)
			}
		}
		return log, in.Stats()
	}
	l1, s1 := run()
	l2, s2 := run()
	if !bytes.Equal(l1, l2) || s1 != s2 {
		t.Fatal("same seed + same call sequence produced different faults")
	}
	if s1.BlobsCorrupted == 0 {
		t.Fatal("aggressive profile corrupted nothing in 200 blobs")
	}
}

func TestMutateBlobChangesBytesOrLength(t *testing.T) {
	in := New(Profile{Seed: 7, BitFlipOneIn: 1})
	orig := bytes.Repeat([]byte{0xFF}, 16)
	b := append([]byte(nil), orig...)
	nb, mutated := in.MutateBlob(0, b)
	if !mutated || bytes.Equal(nb, orig) {
		t.Fatal("BitFlipOneIn=1 must flip a bit in every blob")
	}
	tr := New(Profile{Seed: 7, TruncateOneIn: 1})
	nb, mutated = tr.MutateBlob(0, append([]byte(nil), orig...))
	if !mutated || len(nb) >= len(orig) {
		t.Fatalf("TruncateOneIn=1 must shorten the blob (len %d of %d)", len(nb), len(orig))
	}
}

func TestMutateFloats(t *testing.T) {
	in := New(Profile{Seed: 3, BitFlipOneIn: 1})
	v := []float64{1, 2, 4, 8}
	orig := append([]float64(nil), v...)
	if !in.MutateFloats(0, v) {
		t.Fatal("BitFlipOneIn=1 must flip")
	}
	diff := 0
	for i := range v {
		if math.Float64bits(v[i]) != math.Float64bits(orig[i]) {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d values changed, want exactly 1", diff)
	}
}

func TestPanicAtStep(t *testing.T) {
	in := New(Profile{Seed: 1, PanicAtStep: 5})
	for step := 0; step < 10; step++ {
		if got, want := in.PanicNow(step), step == 5; got != want {
			t.Fatalf("step %d: PanicNow = %v, want %v", step, got, want)
		}
	}
	if in.Stats().Panics != 1 {
		t.Fatalf("Panics = %d, want 1", in.Stats().Panics)
	}
	off := New(Profile{Seed: 1})
	if off.PanicNow(0) || off.PanicNow(1) {
		t.Fatal("disabled profile panicked")
	}
}
