package bench

import (
	"fmt"

	"masc/internal/compress/chimpz"
	"masc/internal/compress/masczip"
)

// ablationPair builds the codec pair for a named MASC ablation variant.
func ablationPair(variant string, tn *Tensor) (codecPair, error) {
	opts := masczip.Options{}
	switch variant {
	case "full":
	case "markov":
		opts.Markov = true
	case "no-stamp":
		opts.DisableStamp = true
	case "no-lastvalue":
		opts.DisableLastValue = true
	case "no-shared-window":
		opts.DisableSharedWindow = true
	case "temporal-only(chimp)":
		c := chimpz.NewTemporal()
		return codecPair{name: variant, j: c, c: c}, nil
	default:
		return codecPair{}, fmt.Errorf("bench: unknown ablation variant %q", variant)
	}
	return codecPair{
		name: variant,
		j:    masczip.New(tn.JPat, opts),
		c:    masczip.New(tn.CPat, opts),
	}, nil
}
