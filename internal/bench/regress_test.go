package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// testManifest is a miniature -stats-json document with one section of
// two rows, shaped like the adjoint experiment's output.
const testManifest = `{
  "tool": "masc-bench",
  "sections": {
    "adjoint": [
      {"Dataset": "add20", "Unknowns": 82, "Steps": 150, "Workers": 1,
       "MultiRHS": false, "Sec": 0.5, "Speedup": 1},
      {"Dataset": "add20", "Unknowns": 82, "Steps": 150, "Workers": 4,
       "MultiRHS": true, "Sec": 0.25, "Speedup": 2.0}
    ],
    "memory": [
      {"Dataset": "add20", "Storage": "masc", "PeakResident": 1048576,
       "RawBytes": 8388608, "CR": 8.0}
    ]
  }
}`

// tightOpts disables the noise floor so the small synthetic timings above
// are actually gated.
var tightOpts = RegressOptions{TimeFrac: 0.25, MinTimeSec: 1e-9, BytesFrac: 0.10, RatioFrac: 0.20}

// doctor decodes the manifest, applies fn to every row of every section,
// and re-encodes it.
func doctor(t *testing.T, doc string, fn func(section string, row map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(doc), &m); err != nil {
		t.Fatal(err)
	}
	for name, sec := range m["sections"].(map[string]any) {
		for _, row := range sec.([]any) {
			fn(name, row.(map[string]any))
		}
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCleanRerunPasses(t *testing.T) {
	rep, err := CompareManifests([]byte(testManifest), []byte(testManifest), tightOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("identical manifests regressed: %v", rep.Regressions)
	}
	if rep.Compared == 0 {
		t.Fatal("no metrics compared — the gate is vacuous")
	}
	if rep.UnmatchedRows != 0 {
		t.Fatalf("unmatched rows on identical manifests: %d", rep.UnmatchedRows)
	}
}

func TestTwoXSlowdownFails(t *testing.T) {
	// A current run 2x slower than baseline == a baseline with halved
	// times; the gate must exit the comparison with regressions.
	cur := doctor(t, testManifest, func(_ string, row map[string]any) {
		if v, ok := row["Sec"].(float64); ok {
			row["Sec"] = v * 2
		}
	})
	rep, err := CompareManifests([]byte(testManifest), cur, tightOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("2x slowdown passed the gate")
	}
	for _, r := range rep.Regressions {
		if r.Field != "Sec" {
			t.Fatalf("unexpected regressed field %q", r.Field)
		}
		if r.Current <= r.Limit {
			t.Fatalf("reported regression under its own limit: %+v", r)
		}
	}
	if len(rep.Regressions) != 2 {
		t.Fatalf("want 2 Sec regressions, got %d", len(rep.Regressions))
	}
}

func TestSpeedupLossAndByteGrowthFail(t *testing.T) {
	cur := doctor(t, testManifest, func(_ string, row map[string]any) {
		if v, ok := row["Speedup"].(float64); ok {
			row["Speedup"] = v * 0.5
		}
		if v, ok := row["PeakResident"].(float64); ok {
			row["PeakResident"] = v * 2
		}
	})
	rep, err := CompareManifests([]byte(testManifest), cur, tightOpts)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]bool{}
	for _, r := range rep.Regressions {
		fields[r.Field] = true
	}
	if !fields["Speedup"] || !fields["PeakResident"] {
		t.Fatalf("want Speedup and PeakResident regressions, got %v", rep.Regressions)
	}
}

func TestNoiseFloorSkipsTinyTimes(t *testing.T) {
	// With the default 20 ms floor, doubling a 0.5 ms timing is jitter,
	// not a regression.
	base := strings.ReplaceAll(testManifest, `"Sec": 0.5`, `"Sec": 0.0005`)
	cur := strings.ReplaceAll(testManifest, `"Sec": 0.5`, `"Sec": 0.001`)
	rep, err := CompareManifests([]byte(base), []byte(cur), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Regressions {
		if r.Field == "Sec" && r.Baseline < 0.02 {
			t.Fatalf("sub-floor timing tripped the gate: %+v", r)
		}
	}
}

func TestUnmatchedRowsAreCountedNotFailed(t *testing.T) {
	cur := strings.ReplaceAll(testManifest, `"Workers": 4`, `"Workers": 8`)
	rep, err := CompareManifests([]byte(testManifest), []byte(cur), tightOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("identity change reported as regression: %v", rep.Regressions)
	}
	if rep.UnmatchedRows != 1 {
		t.Fatalf("want 1 unmatched row, got %d", rep.UnmatchedRows)
	}
}

func TestRepoBaselineSelfCompares(t *testing.T) {
	// The checked-in CI baseline must gate cleanly against itself.
	b, err := os.ReadFile("../../BENCH_adjoint_scale0.1.json")
	if err != nil {
		t.Skipf("no checked-in baseline: %v", err)
	}
	rep, err := CompareManifests(b, b, RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("baseline regressed against itself: %v", rep.Regressions)
	}
	if rep.Compared == 0 {
		t.Fatal("no metrics compared in the checked-in baseline")
	}
}
