package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// PipelineRow is one dataset's sync-vs-async comparison of the MASC
// compressed store: the forward phase (where Put-side compression either
// blocks the solver or overlaps with it) and the reverse phase (where the
// async store prefetches the next step during each adjoint solve).
type PipelineRow struct {
	Dataset     string
	SyncFwdSec  float64
	AsyncFwdSec float64
	SyncRevSec  float64
	AsyncRevSec float64
	// StallSec is the async run's residual Put blocking: compression cost
	// the pipeline failed to hide behind the solve.
	StallSec float64
	// FwdSpeedup is sync/async forward time.
	FwdSpeedup float64
}

// RunPipeline measures the pipelined (async) compressed store against the
// synchronous one on end-to-end sensitivity runs. Both variants must
// produce identical stored bytes and matching sensitivities — the
// pipeline changes scheduling, never results.
func RunPipeline(names []string, scale float64, workers, depth int) ([]PipelineRow, error) {
	if names == nil {
		names = []string{"add20", "smult20", "mem_plus"}
	}
	rows := make([]PipelineRow, 0, len(names))
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}

		runVariant := func(async bool) (fwd, rev float64, sens *adjoint.Result, st jactensor.Stats, err error) {
			opt := masczip.Options{Markov: true, Workers: workers}
			jc, cc := masczip.New(ds.Ckt.JPat, opt), masczip.New(ds.Ckt.CPat, opt)
			var store jactensor.Store
			if async {
				store = jactensor.NewCompressedStoreAsync(jc, cc, ds.Ckt.JPat, ds.Ckt.CPat, depth)
			} else {
				store = jactensor.NewCompressedStore(jc, cc, ds.Ckt.JPat, ds.Ckt.CPat)
			}
			defer store.Close()
			start := time.Now()
			tr, err := ds.RunForward(store) // includes EndForward (the drain)
			if err != nil {
				return 0, 0, nil, jactensor.Stats{}, err
			}
			fwd = time.Since(start).Seconds()
			start = time.Now()
			sens, err = adjoint.Sensitivities(ds.Ckt, tr, store, ds.Objectives,
				adjoint.Options{Params: ds.Params})
			if err != nil {
				return 0, 0, nil, jactensor.Stats{}, err
			}
			rev = time.Since(start).Seconds()
			return fwd, rev, sens, store.Stats(), nil
		}

		sf, sr, sSens, sSt, err := runVariant(false)
		if err != nil {
			return nil, fmt.Errorf("bench pipeline %s sync: %w", name, err)
		}
		af, ar, aSens, aSt, err := runVariant(true)
		if err != nil {
			return nil, fmt.Errorf("bench pipeline %s async: %w", name, err)
		}
		if err := compareSens(sSens, aSens); err != nil {
			return nil, fmt.Errorf("bench pipeline %s: %w", name, err)
		}
		if sSt.StoredBytes != aSt.StoredBytes {
			return nil, fmt.Errorf("bench pipeline %s: stored bytes diverge sync=%d async=%d",
				name, sSt.StoredBytes, aSt.StoredBytes)
		}
		rows = append(rows, PipelineRow{
			Dataset:     name,
			SyncFwdSec:  sf,
			AsyncFwdSec: af,
			SyncRevSec:  sr,
			AsyncRevSec: ar,
			StallSec:    aSt.StallTime.Seconds(),
			FwdSpeedup:  sf / af,
		})
	}
	return rows, nil
}

// FormatPipeline renders the overlap study. The host CPU count matters:
// on a single-core host the solver and the background compressor
// timeshare one CPU, so the async mode can only reorder work, not
// overlap it — expect speedups near 1.0 there.
func FormatPipeline(rows []PipelineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(host has %d CPU(s) — overlap needs a spare core)\n", runtime.NumCPU())
	fmt.Fprintf(&b, "%-10s %11s %12s %11s %12s %10s %9s\n",
		"Dataset", "SyncFwd(s)", "AsyncFwd(s)", "SyncRev(s)", "AsyncRev(s)", "Stall(s)", "FwdSpeed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %11.3f %12.3f %11.3f %12.3f %10.3f %8.2fx\n",
			r.Dataset, r.SyncFwdSec, r.AsyncFwdSec, r.SyncRevSec, r.AsyncRevSec,
			r.StallSec, r.FwdSpeedup)
	}
	return b.String()
}
