package bench

import (
	"testing"

	"masc/internal/adjoint"
	"masc/internal/jactensor"
	"masc/internal/transient"
	"masc/internal/workload"
)

// adjointFixture captures one forward trajectory of a multi-objective
// dataset into a memory store wrapped to ignore releases, so every
// benchmark iteration sweeps the same tensor.
func adjointFixture(b *testing.B, name string, scale float64) (*workload.Dataset, *transient.Result, adjoint.JacobianSource) {
	b.Helper()
	ds, err := workload.Build(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	store := jactensor.NewMemStore()
	tr, err := ds.RunForward(store)
	if err != nil {
		b.Fatal(err)
	}
	return ds, tr, retainAll{store}
}

// BenchmarkSensitivities sweeps the reverse-sweep engine configurations on
// a multi-objective workload: the pre-engine baseline (workers=1, one
// triangular solve per objective), the blocked multi-RHS kernel alone, and
// the sharded/overlapped engine at increasing worker counts.
func BenchmarkSensitivities(b *testing.B) {
	ds, tr, src := adjointFixture(b, "add20", 0.1)
	for _, cfg := range []struct {
		name    string
		workers int
		single  bool
	}{
		{"serial-singleRHS", 1, true},
		{"serial-multiRHS", 1, false},
		{"workers2", 2, false},
		{"workers4", 4, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := adjoint.Sensitivities(ds.Ckt, tr, src, ds.Objectives,
					adjoint.Options{Params: ds.Params, Workers: cfg.workers, SingleRHS: cfg.single})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectSensitivities does the same for the forward method, where
// the multi-RHS batch spans parameters instead of objectives.
func BenchmarkDirectSensitivities(b *testing.B) {
	ds, tr, _ := adjointFixture(b, "add20", 0.1)
	for _, cfg := range []struct {
		name    string
		workers int
		single  bool
	}{
		{"serial-singleRHS", 1, true},
		{"serial-multiRHS", 1, false},
		{"workers4", 4, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := adjoint.DirectSensitivities(ds.Ckt, tr, ds.Objectives,
					adjoint.Options{Params: ds.Params, Workers: cfg.workers, SingleRHS: cfg.single})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunAdjoint gates the experiment itself: it must run at a tiny scale
// and keep its bit-identity promise (divergence returns an error).
func TestRunAdjoint(t *testing.T) {
	rows, err := RunAdjoint([]string{"add20"}, 0.02, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows (baseline + 3 worker counts), got %d", len(rows))
	}
	for _, r := range rows {
		if r.Sec <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	s := FormatAdjoint(rows)
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	t.Log("\n" + s)
}
