package bench

import (
	"fmt"
	"strings"

	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// MemoryRow reports the measured tensor footprint of one dataset under one
// storage strategy — the measured counterpart of Figure 1's projections.
type MemoryRow struct {
	Dataset      string
	Strategy     string
	RawBytes     int64
	StoredBytes  int64
	PeakResident int64
	CR           float64
}

// RunMemory simulates each dataset once per storage strategy and records
// the store's own accounting.
func RunMemory(names []string, scale float64, workers int) ([]MemoryRow, error) {
	if names == nil {
		names = []string{"add20", "mem_plus", "MOS_T5"}
	}
	var rows []MemoryRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		stores := []struct {
			label string
			mk    func() (jactensor.Store, error)
		}{
			{"memory", func() (jactensor.Store, error) { return jactensor.NewMemStore(), nil }},
			{"disk", func() (jactensor.Store, error) { return jactensor.NewDiskStore("", 0) }},
			{"masc", func() (jactensor.Store, error) {
				opt := masczip.Options{Workers: workers}
				return jactensor.NewCompressedStore(
					masczip.New(ds.Ckt.JPat, opt), masczip.New(ds.Ckt.CPat, opt),
					ds.Ckt.JPat, ds.Ckt.CPat), nil
			}},
			{"masc+markov", func() (jactensor.Store, error) {
				opt := masczip.Options{Markov: true, Workers: workers}
				return jactensor.NewCompressedStore(
					masczip.New(ds.Ckt.JPat, opt), masczip.New(ds.Ckt.CPat, opt),
					ds.Ckt.JPat, ds.Ckt.CPat), nil
			}},
		}
		for _, sc := range stores {
			st, err := sc.mk()
			if err != nil {
				return nil, err
			}
			if _, err := ds.RunForward(st); err != nil {
				return nil, fmt.Errorf("bench memory %s/%s: %w", name, sc.label, err)
			}
			stats := st.Stats()
			rows = append(rows, MemoryRow{
				Dataset:      name,
				Strategy:     sc.label,
				RawBytes:     stats.RawBytes,
				StoredBytes:  stats.StoredBytes,
				PeakResident: stats.PeakResident,
				CR:           float64(stats.RawBytes) / float64(stats.StoredBytes),
			})
			if err := st.Close(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// FormatMemory renders the measured footprints.
func FormatMemory(rows []MemoryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %12s %12s %14s %8s\n",
		"Dataset", "Strategy", "Raw", "Stored", "PeakResident", "CR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %12s %12s %14s %8.2f\n",
			r.Dataset, r.Strategy, fmtBytes(r.RawBytes), fmtBytes(r.StoredBytes),
			fmtBytes(r.PeakResident), r.CR)
	}
	return b.String()
}
