// Package bench regenerates every table and figure of the MASC paper's
// evaluation (Section 6) plus the Table 1 / Figure 1 motivation data, on
// the laptop-scale workload analogues. Each experiment returns typed rows
// and has a text renderer used by cmd/masc-bench and EXPERIMENTS.md.
package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"masc/internal/compress"
	"masc/internal/jactensor"
	"masc/internal/sparse"
	"masc/internal/workload"
)

// Tensor is an in-memory Jacobian tensor captured from a simulation (or
// loaded from a tensor file): the raw material of the compression
// experiments.
type Tensor struct {
	Name       string
	JPat, CPat *sparse.Pattern
	JS         [][]float64 // J values per step
	CS         [][]float64 // C values per step
	Steps      int
}

// RawBytes is the value payload size (the paper's S_NZ).
func (t *Tensor) RawBytes() int64 {
	if t.Steps == 0 {
		return 0
	}
	return int64(8*(len(t.JS[0])+len(t.CS[0]))) * int64(t.Steps)
}

// CaptureTensor simulates the dataset and keeps every step's J and C
// values in memory.
func CaptureTensor(ds *workload.Dataset) (*Tensor, error) {
	st := jactensor.NewMemStore()
	if _, err := ds.RunForward(st); err != nil {
		return nil, err
	}
	tn := &Tensor{Name: ds.Name, JPat: ds.Ckt.JPat, CPat: ds.Ckt.CPat}
	for i := 0; ; i++ {
		j, c, err := st.Fetch(i)
		if err != nil {
			break
		}
		tn.JS = append(tn.JS, append([]float64(nil), j...))
		tn.CS = append(tn.CS, append([]float64(nil), c...))
	}
	tn.Steps = len(tn.JS)
	if tn.Steps == 0 {
		return nil, fmt.Errorf("bench: %s captured no steps", ds.Name)
	}
	return tn, nil
}

// CodecResult measures one codec over one tensor.
type CodecResult struct {
	Codec            string
	CompressedBytes  int64
	CR               float64
	CompressTime     time.Duration
	DecompressTime   time.Duration
	CompressMBps     float64
	DecompressMBps   float64
	RoundTripChecked bool
}

// codecPair supplies (possibly stateful) codecs for the J and C tensors.
type codecPair struct {
	name string
	j, c compress.Compressor
}

// MeasureCodec runs the Algorithm-2 chain over the tensor: step i is
// compressed with step i+1 as reference (the last step with none), then
// decompressed in reverse and verified (bit-exact for lossless codecs,
// skipped for lossy ones).
func MeasureCodec(p codecPair, tn *Tensor) (CodecResult, error) {
	res := CodecResult{Codec: p.name}
	n := tn.Steps
	jBlobs := make([][]byte, n)
	cBlobs := make([][]byte, n)

	start := time.Now()
	for i := 0; i < n; i++ {
		var refJ, refC []float64
		if i+1 < n {
			refJ, refC = tn.JS[i+1], tn.CS[i+1]
		}
		jBlobs[i] = p.j.Compress(nil, tn.JS[i], refJ)
		cBlobs[i] = p.c.Compress(nil, tn.CS[i], refC)
		res.CompressedBytes += int64(len(jBlobs[i]) + len(cBlobs[i]))
	}
	res.CompressTime = time.Since(start)

	lossless := p.j.Lossless() && p.c.Lossless()
	jBuf := make([]float64, len(tn.JS[0]))
	cBuf := make([]float64, len(tn.CS[0]))
	start = time.Now()
	for i := n - 1; i >= 0; i-- {
		var refJ, refC []float64
		if i+1 < n {
			refJ, refC = tn.JS[i+1], tn.CS[i+1]
		}
		if err := p.j.Decompress(jBuf, jBlobs[i], refJ); err != nil {
			return res, fmt.Errorf("bench: %s step %d J: %w", p.name, i, err)
		}
		if err := p.c.Decompress(cBuf, cBlobs[i], refC); err != nil {
			return res, fmt.Errorf("bench: %s step %d C: %w", p.name, i, err)
		}
		if lossless {
			for k := range jBuf {
				if math.Float64bits(jBuf[k]) != math.Float64bits(tn.JS[i][k]) {
					return res, fmt.Errorf("bench: %s step %d J[%d] roundtrip mismatch", p.name, i, k)
				}
			}
			for k := range cBuf {
				if math.Float64bits(cBuf[k]) != math.Float64bits(tn.CS[i][k]) {
					return res, fmt.Errorf("bench: %s step %d C[%d] roundtrip mismatch", p.name, i, k)
				}
			}
		}
	}
	res.DecompressTime = time.Since(start)
	res.RoundTripChecked = lossless

	raw := tn.RawBytes()
	res.CR = float64(raw) / float64(res.CompressedBytes)
	mb := float64(raw) / 1e6
	res.CompressMBps = mb / res.CompressTime.Seconds()
	res.DecompressMBps = mb / res.DecompressTime.Seconds()
	return res, nil
}

// fmtBytes renders a byte count with a binary-ish unit, mirroring the
// paper's GB columns.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// SaveFile writes the tensor to path in the masc tensor file format.
func (t *Tensor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := jactensor.WriteTensorFile(f, t.JPat, t.CPat, t.JS, t.CS); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTensor reads a tensor file produced by SaveFile (or any tool using
// jactensor.WriteTensorFile).
func LoadTensor(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	jp, cp, js, cs, err := jactensor.ReadTensorFile(f)
	if err != nil {
		return nil, err
	}
	return &Tensor{
		Name:  filepath.Base(path),
		JPat:  jp,
		CPat:  cp,
		JS:    js,
		CS:    cs,
		Steps: len(js),
	}, nil
}
