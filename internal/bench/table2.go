package bench

import (
	"fmt"
	"strings"

	"masc/internal/workload"
)

// Table2Row mirrors the paper's Table 2: dataset shape plus the gzip
// reference point.
type Table2Row struct {
	Name     string
	Elems    int
	Steps    int
	CSRBytes int64
	NZBytes  int64
	GzipCR   float64
	GzipSec  float64
}

// RunTable2 simulates the seven compression datasets and measures the gzip
// baseline over each captured tensor.
func RunTable2(names []string, scale float64) ([]Table2Row, error) {
	if names == nil {
		names = workload.Table2Names()
	}
	rows := make([]Table2Row, 0, len(names))
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		tn, err := CaptureTensor(ds)
		if err != nil {
			return nil, err
		}
		pair, err := NewCodecPair("gzip", tn, 1, false)
		if err != nil {
			return nil, err
		}
		cr, err := MeasureCodec(pair, tn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Name:     ds.Name,
			Elems:    ds.Elems,
			Steps:    tn.Steps,
			CSRBytes: ds.CSRBytes(tn.Steps),
			NZBytes:  tn.RawBytes(),
			GzipCR:   cr.CR,
			GzipSec:  cr.CompressTime.Seconds(),
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows in the paper's column layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %7s %12s %12s %10s %12s\n",
		"Dataset", "#CirElem", "#Steps", "S_CSR", "S_NZ", "CR(gzip)", "Tcomp(gzip)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9d %7d %12s %12s %10.2f %11.2fs\n",
			r.Name, r.Elems, r.Steps, fmtBytes(r.CSRBytes), fmtBytes(r.NZBytes),
			r.GzipCR, r.GzipSec)
	}
	return b.String()
}
