package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// WindowsRow is one (dataset, window count) measurement of the
// parallel-in-time windowed reverse sweep over an anchored compressed
// store. Speedup is vs the serial (one-window) sweep over the same store;
// MaxWindowSec/MinWindowSec expose the per-window wall-clock imbalance
// (the seeding sweep counts as the topmost window); AnchorBytes is the
// extra resident plaintext the forward pass retained to make the window
// boundaries self-contained.
type WindowsRow struct {
	Dataset      string
	Unknowns     int
	Steps        int
	Objs         int
	Params       int
	Windows      int
	Sec          float64
	Speedup      float64
	MaxWindowSec float64
	MinWindowSec float64
	AnchorBytes  int64
}

// RunWindows measures the windowed adjoint engine: for each dataset it
// captures one forward trajectory into an anchored compressed store
// (anchors spaced for the widest window count), then sweeps it serially
// and at every requested window count. Window sweeps read through store
// slices, so the same captured tensor serves every configuration; every
// configuration's sensitivities are checked BIT-IDENTICAL to the serial
// baseline.
func RunWindows(names []string, scale float64, windowsList []int) ([]WindowsRow, error) {
	if names == nil {
		names = []string{"add20", "CHIP_08"}
	}
	if windowsList == nil {
		windowsList = []int{2, 4, runtime.NumCPU()}
	}
	// Dedupe and keep W >= 2; the serial baseline is implicit.
	seen := map[int]bool{}
	var ws []int
	for _, w := range windowsList {
		if w >= 2 && !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	if len(ws) == 0 {
		return nil, fmt.Errorf("bench windows: no window count >= 2 requested")
	}
	maxW := ws[len(ws)-1]

	var rows []WindowsRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		cs := jactensor.NewCompressedStore(
			masczip.New(ds.Ckt.JPat, masczip.Options{}), masczip.New(ds.Ckt.CPat, masczip.Options{}),
			ds.Ckt.JPat, ds.Ckt.CPat)
		every := ds.Tran.EstimatedSteps() / maxW
		if every < 1 {
			every = 1
		}
		cs.SetAnchorEvery(every)
		tr, err := ds.RunForward(cs)
		if err != nil {
			return nil, err
		}
		n := tr.Steps()

		// Best-of-3 per configuration. The serial baseline reads through a
		// full-range slice — same decode path, and it leaves the parent
		// store intact for the next repetition.
		sweep := func(W int) (*adjoint.Result, float64, error) {
			var best float64
			var res *adjoint.Result
			for rep := 0; rep < 3; rep++ {
				var src adjoint.JacobianSource
				if W <= 1 {
					sl, err := cs.Slice(0, n)
					if err != nil {
						return nil, 0, err
					}
					src = sl
				} else {
					src = cs
				}
				start := time.Now()
				r, err := adjoint.Sensitivities(ds.Ckt, tr, src, ds.Objectives,
					adjoint.Options{Params: ds.Params, Windows: W})
				if err != nil {
					return nil, 0, err
				}
				if W > 1 && r.Windows < 2 {
					return nil, 0, fmt.Errorf("windows=%d fell back to serial (no usable boundaries)", W)
				}
				if sec := time.Since(start).Seconds(); rep == 0 || sec < best {
					best, res = sec, r
				}
			}
			return res, best, nil
		}

		base, baseSec, err := sweep(1)
		if err != nil {
			return nil, fmt.Errorf("bench windows %s baseline: %w", name, err)
		}
		anchorBytes := cs.Stats().AnchorBytes
		row := func(W int, sec float64, r *adjoint.Result) WindowsRow {
			out := WindowsRow{
				Dataset: name, Unknowns: ds.Ckt.N, Steps: n,
				Objs: len(ds.Objectives), Params: len(ds.Params),
				Windows: W, Sec: sec, Speedup: baseSec / sec,
				AnchorBytes: anchorBytes,
			}
			for i, s := range r.WindowSweepSec {
				if i == 0 || s > out.MaxWindowSec {
					out.MaxWindowSec = s
				}
				if i == 0 || s < out.MinWindowSec {
					out.MinWindowSec = s
				}
			}
			return out
		}
		rows = append(rows, row(1, baseSec, base))

		for _, W := range ws {
			res, sec, err := sweep(W)
			if err != nil {
				return nil, fmt.Errorf("bench windows %s W=%d: %w", name, W, err)
			}
			for o := range base.DOdp {
				for k := range base.DOdp[o] {
					if math.Float64bits(base.DOdp[o][k]) != math.Float64bits(res.DOdp[o][k]) {
						return nil, fmt.Errorf("bench windows %s W=%d: obj %d param %d diverges: %g vs %g",
							name, W, o, k, res.DOdp[o][k], base.DOdp[o][k])
					}
				}
			}
			rows = append(rows, row(res.Windows, sec, res))
		}
		cs.Close()
	}
	return rows, nil
}

// FormatWindows renders the parallel-in-time scaling study.
func FormatWindows(rows []WindowsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(host has %d CPU(s); speedup is vs one window over the same anchored store; results bit-identical)\n",
		runtime.NumCPU())
	fmt.Fprintf(&b, "%-10s %8s %6s %5s %7s %8s %9s %8s %10s %10s %11s\n",
		"Dataset", "Unknowns", "Steps", "Objs", "Params", "Windows", "Sweep(s)", "Speedup", "MaxWin(s)", "MinWin(s)", "AnchorKiB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %6d %5d %7d %8d %9.3f %7.2fx %10.3f %10.3f %11.1f\n",
			r.Dataset, r.Unknowns, r.Steps, r.Objs, r.Params,
			r.Windows, r.Sec, r.Speedup, r.MaxWindowSec, r.MinWindowSec,
			float64(r.AnchorBytes)/1024)
	}
	return b.String()
}
