package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/runstate"
	"masc/internal/transient"
	"masc/internal/workload"
)

// JournalRow is one (dataset, fsync cadence) measurement of write-ahead
// journal overhead on the forward phase. FsyncEvery 0 is the journal-off
// baseline; OverheadPct is the slowdown of the journaled run against it.
// Both sides pin FreshFactorPerStep (the pivot discipline every journaled
// run uses), so the overhead isolates the journal's own encode + write +
// fsync cost rather than the determinism tax.
type JournalRow struct {
	Dataset      string
	Unknowns     int
	Steps        int
	FsyncEvery   int
	Sec          float64
	StepRate     float64 // accepted forward steps per second
	OverheadPct  float64
	FsyncSec     float64 // wall time inside fsync — the part the cadence knob tunes
	JournalBytes int64
	Fsyncs       int64
}

// journalGateFloorSec is the noise floor of the overhead gate: a journaled
// run must be both >maxOverheadPct slower AND this much absolute wall time
// slower to fail. Mirrors RegressOptions.MinTimeSec — on sub-50ms forwards
// a couple of fsyncs exceed 10% without meaning anything.
const journalGateFloorSec = 0.025

// RunJournal measures forward-phase journal overhead: each dataset runs the
// capture loop (compressed store, fresh factorization per step) with the
// journal off and then at every requested fsync cadence, checkpointing the
// full solution vector per accepted step exactly as masc.Simulate does.
// Best-of-3 per configuration. If maxOverheadPct > 0, a cadence at or above
// the default (runstate.DefaultFsyncEvery) whose overhead exceeds it — by
// more than journalGateFloorSec of absolute wall time — fails the
// experiment: the "journaling is cheap" contract, gated.
func RunJournal(names []string, scale float64, cadences []int, maxOverheadPct float64) ([]JournalRow, error) {
	if names == nil {
		names = []string{"add20", "CHIP_08"}
	}
	if cadences == nil {
		cadences = []int{1, 8, runstate.DefaultFsyncEvery, 128}
	}
	dir, err := os.MkdirTemp("", "masc-bench-journal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []JournalRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}

		// forward runs one capture pass; cadence 0 = no journal. Returns
		// the best wall time of 3 plus the journal's size and fsync count.
		forward := func(cadence int) (JournalRow, error) {
			row := JournalRow{Dataset: name, Unknowns: ds.Ckt.N, FsyncEvery: cadence}
			for rep := 0; rep < 3; rep++ {
				cs := jactensor.NewCompressedStore(
					masczip.New(ds.Ckt.JPat, masczip.Options{}), masczip.New(ds.Ckt.CPat, masczip.Options{}),
					ds.Ckt.JPat, ds.Ckt.CPat)
				opt := ds.CaptureInto(cs)
				opt.FreshFactorPerStep = true
				var jw *runstate.Writer
				path := filepath.Join(dir, fmt.Sprintf("%s-c%d-r%d.wal", name, cadence, rep))
				if cadence > 0 {
					jw, err = runstate.Create(path, &runstate.Config{
						N: ds.Ckt.N, TStep: opt.TStep, TStop: opt.TStop,
						FsyncEvery: cadence,
					})
					if err != nil {
						return row, err
					}
					opt.AfterStep = func(step int, t, h, nextH float64, cuts int, x []float64) error {
						return jw.AppendStep(&runstate.StepRec{
							Step: step, T: t, H: h, NextH: nextH, Cuts: cuts, X: x})
					}
				}
				start := time.Now()
				tr, err := transient.Run(ds.Ckt, opt)
				if err != nil {
					return row, fmt.Errorf("bench journal %s cadence %d: %w", name, cadence, err)
				}
				sec := time.Since(start).Seconds()
				var fsyncSec float64
				if jw != nil {
					if err := jw.ForwardDone(tr.Steps()); err != nil {
						return row, err
					}
					row.Fsyncs = jw.Fsyncs()
					fsyncSec = jw.FsyncTime().Seconds()
					if err := jw.Close(); err != nil {
						return row, err
					}
					if fi, err := os.Stat(path); err == nil {
						row.JournalBytes = fi.Size()
					}
					os.Remove(path)
				}
				cs.Close()
				row.Steps = tr.Steps()
				if rep == 0 || sec < row.Sec {
					row.Sec = sec
					row.FsyncSec = fsyncSec
				}
			}
			row.StepRate = float64(row.Steps) / row.Sec
			return row, nil
		}

		base, err := forward(0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, base)
		for _, cadence := range cadences {
			if cadence < 1 {
				continue
			}
			row, err := forward(cadence)
			if err != nil {
				return nil, err
			}
			row.OverheadPct = (row.Sec/base.Sec - 1) * 100
			rows = append(rows, row)
			if maxOverheadPct > 0 && cadence >= runstate.DefaultFsyncEvery &&
				row.OverheadPct > maxOverheadPct &&
				row.Sec-base.Sec > journalGateFloorSec {
				return rows, fmt.Errorf(
					"bench journal %s: cadence %d costs %.1f%% of forward throughput (gate: %.0f%%)",
					name, cadence, row.OverheadPct, maxOverheadPct)
			}
		}
	}
	return rows, nil
}

// FormatJournal renders the journal-overhead study.
func FormatJournal(rows []JournalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(host has %d CPU(s); fsync=0 is the journal-off baseline; both sides pin fresh per-step factorization)\n",
		runtime.NumCPU())
	fmt.Fprintf(&b, "%-10s %8s %6s %6s %9s %9s %9s %9s %11s %7s\n",
		"Dataset", "Unknowns", "Steps", "Fsync", "Fwd(s)", "Steps/s", "Overhead", "Fsync(s)", "Journal", "Fsyncs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %6d %6d %9.3f %9.0f %8.1f%% %9.3f %10.1fK %7d\n",
			r.Dataset, r.Unknowns, r.Steps, r.FsyncEvery, r.Sec, r.StepRate,
			r.OverheadPct, r.FsyncSec, float64(r.JournalBytes)/1024, r.Fsyncs)
	}
	return b.String()
}
