package bench

import (
	"fmt"
	"strings"

	"masc/internal/compress"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// This file benchmarks the "auto" storage's codec autopilot: it replays the
// selection trial (first K captured steps, scored on bytes saved per second)
// against the ex-post answer — each committable codec measured over the FULL
// tensor — and reports how much of the best achievable score the trial's
// pick actually captured. The experiment's claim is that an 8-step prefix is
// enough to land within 10% of the codec a whole-run oracle would choose.

// autoSelectCandidates is the trial menu, mirroring the production "auto"
// storage: MASC first (the tie/fallback winner), spicemate lossy and
// therefore never committable.
var autoSelectCandidates = []string{"masc", "masc+markov", "gzip", "spicemate"}

// AutoSelectRow reports the autopilot's pick on one dataset against the
// ex-post best codec. SelEfficiencyRatio is pickedScore/bestScore over the
// full tensor (1.0 = the trial found the true optimum); its name carries
// "Ratio" so the -baseline gate treats it as higher-is-better. WithinTol
// is the experiment's acceptance verdict: efficiency ≥ 0.9.
type AutoSelectRow struct {
	Dataset            string
	Picked             string
	ExPostBest         string
	TrialSteps         int
	PickedScore        float64 // full-tensor bytes saved per second, picked codec
	BestScore          float64 // full-tensor bytes saved per second, best codec
	SelEfficiencyRatio float64
	WithinTol          bool
}

// RunAutoSelect scores the adaptive codec selection on every Table 3
// dataset (names nil = the Table 2 set).
func RunAutoSelect(names []string, scale float64, workers int) ([]AutoSelectRow, error) {
	if names == nil {
		names = workload.Table2Names()
	}
	var rows []AutoSelectRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		tn, err := CaptureTensor(ds)
		if err != nil {
			return nil, err
		}
		row, err := autoSelectOne(tn, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func autoSelectOne(tn *Tensor, workers int) (AutoSelectRow, error) {
	k := jactensor.DefaultTrialSteps
	if k > tn.Steps {
		k = tn.Steps
	}
	row := AutoSelectRow{Dataset: tn.Name, TrialSteps: k}

	// The trial, exactly as the AutoStore runs it: fresh codec pairs over
	// the first k frames, scored on bytes saved per second.
	trials := make([]compress.TrialResult, 0, len(autoSelectCandidates))
	for _, cn := range autoSelectCandidates {
		pair, err := NewCodecPair(cn, tn, workers, false)
		if err != nil {
			return row, err
		}
		trials = append(trials, compress.RunTrial(
			compress.NewCandidate(cn, pair.j, pair.c), tn.JS[:k], tn.CS[:k], nil))
	}
	win := compress.Pick(trials)
	if win < 0 {
		return row, fmt.Errorf("bench: auto trial picked no committable codec on %s", tn.Name)
	}
	row.Picked = trials[win].Name

	// The ex-post oracle: every committable candidate measured over the
	// whole tensor with fresh codecs, same score. Best of three full
	// measurements — the oracle must not be noisier than the trial it
	// judges.
	exPost := map[string]float64{}
	raw := float64(tn.RawBytes())
	for _, cn := range autoSelectCandidates {
		if !trials[indexOf(trials, cn)].Committable {
			continue
		}
		score := 0.0
		for rep := 0; rep < 3; rep++ {
			pair, err := NewCodecPair(cn, tn, workers, false)
			if err != nil {
				return row, err
			}
			r, err := MeasureCodec(pair, tn)
			if err != nil {
				return row, err
			}
			sec := r.CompressTime.Seconds()
			if sec <= 0 {
				sec = 1e-9
			}
			if s := (raw - float64(r.CompressedBytes)) / sec; s > score {
				score = s
			}
		}
		exPost[cn] = score
		if row.ExPostBest == "" || score > row.BestScore {
			row.ExPostBest, row.BestScore = cn, score
		}
	}
	row.PickedScore = exPost[row.Picked]
	if row.BestScore > 0 {
		row.SelEfficiencyRatio = row.PickedScore / row.BestScore
	}
	row.WithinTol = row.SelEfficiencyRatio >= 0.9
	return row, nil
}

func indexOf(trials []compress.TrialResult, name string) int {
	for i, t := range trials {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// FormatAutoSelect renders the selection scorecard.
func FormatAutoSelect(rows []AutoSelectRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-12s %6s %14s %14s %6s %s\n",
		"Dataset", "Picked", "ExPostBest", "K", "Picked MB/s", "Best MB/s", "Eff", "Verdict")
	for _, r := range rows {
		verdict := "OK (within 10% of ex-post best)"
		if !r.WithinTol {
			verdict = "OFF-BEST (>10% below ex-post best)"
		}
		fmt.Fprintf(&b, "%-10s %-12s %-12s %6d %14.1f %14.1f %6.3f %s\n",
			r.Dataset, r.Picked, r.ExPostBest, r.TrialSteps,
			r.PickedScore/1e6, r.BestScore/1e6, r.SelEfficiencyRatio, verdict)
	}
	return b.String()
}
