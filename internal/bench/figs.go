package bench

import (
	"fmt"
	"strings"

	"masc/internal/workload"
)

// Fig5bRow is one dataset's leading-zero distribution of MASC residuals
// (Figure 5b): Pct[i] for classes 0,8,…,56 leading zeros, Pct[8] for
// all-zero residuals.
type Fig5bRow struct {
	Dataset string
	Pct     [9]float64
}

// Fig6Row is one dataset's prediction-model selection rate (Figure 6).
type Fig6Row struct {
	Dataset   string
	Temporal  float64
	Stamp     float64
	LastValue float64
}

// RunFig5b6 collects both figures in one pass: MASC (best-fit mode, stats
// on) compresses each dataset's tensor and reports residual and selection
// statistics.
func RunFig5b6(names []string, scale float64) ([]Fig5bRow, []Fig6Row, error) {
	if names == nil {
		names = workload.Table2Names()
	}
	var f5 []Fig5bRow
	var f6 []Fig6Row
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, nil, err
		}
		tn, err := CaptureTensor(ds)
		if err != nil {
			return nil, nil, err
		}
		pair, err := NewCodecPair("masc", tn, 1, true)
		if err != nil {
			return nil, nil, err
		}
		if _, err := MeasureCodec(pair, tn); err != nil {
			return nil, nil, err
		}
		st, ok := mascStats(pair)
		if !ok || st.Elements == 0 {
			return nil, nil, fmt.Errorf("bench: no MASC stats for %s", name)
		}
		var r5 Fig5bRow
		r5.Dataset = name
		for i, h := range st.LZHist {
			r5.Pct[i] = 100 * float64(h) / float64(st.Elements)
		}
		f5 = append(f5, r5)
		// Figure 6 is over selector-coded elements: the model-selection
		// statistics of Algorithm 1's best-fit phase.
		sel := float64(st.SelectorElements)
		if sel == 0 {
			sel = 1
		}
		f6 = append(f6, Fig6Row{
			Dataset:   name,
			Temporal:  100 * float64(st.Temporal) / sel,
			Stamp:     100 * float64(st.Stamp) / sel,
			LastValue: 100 * float64(st.LastValue) / sel,
		})
	}
	return f5, f6, nil
}

// FormatFig5b renders the leading-zero histogram.
func FormatFig5b(rows []Fig5bRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Dataset")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("lz%d", i*8))
	}
	fmt.Fprintf(&b, " %6s\n", "zero")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Dataset)
		for _, p := range r.Pct {
			fmt.Fprintf(&b, " %5.1f%%", p)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig6 renders the model selection rates.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Dataset", "Temporal", "Stamp", "LastValue")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%% %9.1f%%\n", r.Dataset, r.Temporal, r.Stamp, r.LastValue)
	}
	return b.String()
}

// DebugMascStats exposes the raw MASC encoder statistics for one dataset;
// used by diagnostics and tests.
func DebugMascStats(name string, scale float64) (st mascStatsT, err error) {
	ds, err := workload.Build(name, scale)
	if err != nil {
		return st, err
	}
	tn, err := CaptureTensor(ds)
	if err != nil {
		return st, err
	}
	pair, err := NewCodecPair("masc", tn, 1, true)
	if err != nil {
		return st, err
	}
	if _, err := MeasureCodec(pair, tn); err != nil {
		return st, err
	}
	s, _ := mascStats(pair)
	return s, nil
}
