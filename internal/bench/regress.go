package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file is the perf-regression gate behind masc-bench -baseline: it
// diffs two -stats-json manifests metric by metric, with noise-aware
// per-metric thresholds, and reports every metric that moved past its
// allowance. Rows are matched by their identity fields (dataset, sizes,
// worker counts, budget knobs), so a baseline taken on one experiment
// sweep compares cleanly against a re-run of the same sweep.

// RegressOptions are the per-metric-class allowances of CompareManifests.
// The zero value picks the defaults noted on each field.
type RegressOptions struct {
	// TimeFrac is the allowed fractional slowdown of time-like metrics
	// (fields containing "Sec", "Time" or "Slowdown"): 0.25 permits a run
	// 25% slower than baseline. Default 0.25.
	TimeFrac float64
	// MinTimeSec is the noise floor for time metrics: the limit is computed
	// from max(baseline, MinTimeSec), so microbenchmark jitter on
	// sub-floor timings cannot trip the gate. Default 0.02 (20 ms).
	MinTimeSec float64
	// BytesFrac is the allowed fractional growth of size metrics (fields
	// containing "Bytes", "Resident" or "Alloc"). Default 0.10.
	BytesFrac float64
	// RatioFrac is the allowed fractional loss of higher-is-better metrics
	// (fields containing "Speedup", "CR", "Ratio" or "Rate"). Default 0.20.
	RatioFrac float64
}

func (o RegressOptions) withDefaults() RegressOptions {
	if o.TimeFrac == 0 {
		o.TimeFrac = 0.25
	}
	if o.MinTimeSec == 0 {
		o.MinTimeSec = 0.02
	}
	if o.BytesFrac == 0 {
		o.BytesFrac = 0.10
	}
	if o.RatioFrac == 0 {
		o.RatioFrac = 0.20
	}
	return o
}

// Regression is one metric that moved past its allowance.
type Regression struct {
	Section  string  // manifest section ("adjoint", "budget", ...)
	Row      string  // identity of the row within the section
	Field    string  // metric name
	Baseline float64 // baseline value
	Current  float64 // current value
	Limit    float64 // the threshold Current crossed
}

func (r Regression) String() string {
	dir := ">"
	if r.Current < r.Limit {
		dir = "<"
	}
	return fmt.Sprintf("%s[%s].%s: %.6g vs baseline %.6g (limit %s %.6g)",
		r.Section, r.Row, r.Field, r.Current, r.Baseline, dir, r.Limit)
}

// RegressReport summarizes one CompareManifests run.
type RegressReport struct {
	Compared      int // metrics checked against a threshold
	Skipped       int // metrics under the noise floor or without a counterpart
	UnmatchedRows int // baseline rows with no identity match in the current run
	Regressions   []Regression
}

// OK reports whether no metric regressed.
func (r *RegressReport) OK() bool { return len(r.Regressions) == 0 }

// metric classes, decided by field name.
const (
	clsIdentity     = iota // part of the row identity, never compared
	clsIgnore              // numeric but neither identity nor a gated metric
	clsTime                // higher is worse, noise floor applies
	clsSize                // higher is worse (bytes, allocations)
	clsHigherBetter        // lower is worse (speedups, compression ratios)
)

// identityNums are numeric fields that configure a row rather than
// measure it; together with every string/bool field they form the key
// rows are matched by across the two manifests.
var identityNums = map[string]bool{
	"Unknowns": true, "Steps": true, "Objs": true, "Params": true,
	"Workers": true, "Windows": true, "BudgetBytes": true,
	"Depth": true, "Scale": true, "NNZ": true, "FsyncEvery": true,
}

func classify(field string) int {
	switch {
	case identityNums[field]:
		return clsIdentity
	case strings.Contains(field, "Speedup"), strings.Contains(field, "CR"),
		strings.Contains(field, "Ratio"), strings.Contains(field, "Rate"):
		return clsHigherBetter
	case strings.Contains(field, "Sec"), strings.Contains(field, "Time"),
		strings.Contains(field, "Slowdown"):
		return clsTime
	case strings.Contains(field, "Bytes"), strings.Contains(field, "Resident"),
		strings.Contains(field, "Alloc"):
		return clsSize
	default:
		return clsIgnore
	}
}

// rowKey builds the identity string of one decoded row: every string and
// bool field plus the identityNums, in sorted field order.
func rowKey(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k, v := range row {
		switch v.(type) {
		case string, bool:
			keys = append(keys, k)
		case float64:
			if identityNums[k] {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, row[k])
	}
	return b.String()
}

// CompareManifests diffs two -stats-json manifest documents (raw JSON
// bytes) and returns every metric of the baseline that regressed past its
// allowance in the current run. Sections or rows present in only one
// document are skipped (counted, not failed), so a full "all" baseline
// gates a single-experiment re-run and vice versa.
func CompareManifests(baseline, current []byte, opt RegressOptions) (*RegressReport, error) {
	opt = opt.withDefaults()
	var base, cur struct {
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline manifest: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current manifest: %w", err)
	}
	rep := &RegressReport{}
	names := make([]string, 0, len(base.Sections))
	for name := range base.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		curRaw, ok := cur.Sections[name]
		if !ok {
			continue
		}
		bRows, err := decodeRows(base.Sections[name])
		if err != nil {
			return nil, fmt.Errorf("baseline section %s: %w", name, err)
		}
		cRows, err := decodeRows(curRaw)
		if err != nil {
			return nil, fmt.Errorf("current section %s: %w", name, err)
		}
		// Index current rows by identity; duplicate identities (repeated
		// measurements) are consumed in order.
		idx := make(map[string][]map[string]any, len(cRows))
		for _, r := range cRows {
			k := rowKey(r)
			idx[k] = append(idx[k], r)
		}
		for _, brow := range bRows {
			k := rowKey(brow)
			match := idx[k]
			if len(match) == 0 {
				rep.UnmatchedRows++
				continue
			}
			crow := match[0]
			idx[k] = match[1:]
			compareRow(rep, opt, name, k, brow, crow)
		}
	}
	return rep, nil
}

// decodeRows accepts either a JSON array of objects or a single object
// (single-object sections compare as one row with its own identity).
func decodeRows(raw json.RawMessage) ([]map[string]any, error) {
	var rows []map[string]any
	if err := json.Unmarshal(raw, &rows); err == nil {
		return rows, nil
	}
	var one map[string]any
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, err
	}
	return []map[string]any{one}, nil
}

func compareRow(rep *RegressReport, opt RegressOptions, section, key string, brow, crow map[string]any) {
	fields := make([]string, 0, len(brow))
	for f := range brow {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		bv, ok := brow[f].(float64)
		if !ok {
			continue
		}
		cv, ok := crow[f].(float64)
		if !ok {
			continue
		}
		var limit float64
		switch classify(f) {
		case clsTime:
			// The allowance grows from max(baseline, floor), so jitter on
			// timings below the noise floor cannot trip the gate.
			ref := bv
			if ref < opt.MinTimeSec {
				ref = opt.MinTimeSec
			}
			limit = ref * (1 + opt.TimeFrac)
			rep.Compared++
			if cv > limit {
				rep.Regressions = append(rep.Regressions, Regression{
					Section: section, Row: key, Field: f,
					Baseline: bv, Current: cv, Limit: limit,
				})
			}
		case clsSize:
			if bv < 1024 { // sub-KiB baselines are all jitter
				rep.Skipped++
				continue
			}
			limit = bv * (1 + opt.BytesFrac)
			rep.Compared++
			if cv > limit {
				rep.Regressions = append(rep.Regressions, Regression{
					Section: section, Row: key, Field: f,
					Baseline: bv, Current: cv, Limit: limit,
				})
			}
		case clsHigherBetter:
			if bv <= 0 {
				rep.Skipped++
				continue
			}
			limit = bv * (1 - opt.RatioFrac)
			rep.Compared++
			if cv < limit {
				rep.Regressions = append(rep.Regressions, Regression{
					Section: section, Row: key, Field: f,
					Baseline: bv, Current: cv, Limit: limit,
				})
			}
		default:
			// identity or unclassified numeric field: not gated.
		}
	}
}

// FormatRegressReport renders the report for terminal output: a one-line
// verdict, then one line per regression.
func FormatRegressReport(rep *RegressReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "regression gate: %d metrics compared, %d skipped, %d baseline rows unmatched, %d regressions\n",
		rep.Compared, rep.Skipped, rep.UnmatchedRows, len(rep.Regressions))
	for _, r := range rep.Regressions {
		fmt.Fprintf(&b, "  REGRESSION %s\n", r.String())
	}
	return b.String()
}
