package bench

import (
	"math"
	"strings"
	"testing"

	"masc/internal/workload"
)

// testScale keeps every experiment at smoke-test size.
const testScale = 0.04

func TestCaptureTensor(t *testing.T) {
	tn := mustTensor(t, "add20")
	if tn.Steps < 5 {
		t.Fatalf("captured only %d steps", tn.Steps)
	}
	if tn.RawBytes() <= 0 {
		t.Fatal("no payload")
	}
}

func mustTensor(t testing.TB, name string) *Tensor {
	t.Helper()
	ds, err := workload.Build(name, testScale)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := CaptureTensor(ds)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestTable1SmallRun(t *testing.T) {
	rows, err := RunTable1([]string{"CHIP_01", "RC_02"}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SensSec <= 0 || r.TranSec <= 0 {
			t.Fatalf("non-positive times: %+v", r)
		}
		if r.JacFrac <= 0 || r.JacFrac >= 1 {
			t.Fatalf("Jacobian fraction %g outside (0,1)", r.JacFrac)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "CHIP_01") || !strings.Contains(out, "Tjac/Tsens") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

func TestFig1(t *testing.T) {
	rows, err := RunFig1(nil, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CSRBytes <= r.NZBytes || r.NZBytes <= 0 {
			t.Fatalf("inconsistent sizes: %+v", r)
		}
	}
	if !strings.Contains(FormatFig1(rows), "S_CSR") {
		t.Fatal("bad rendering")
	}
}

func TestTable2(t *testing.T) {
	rows, err := RunTable2([]string{"add20", "MOS_T5"}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GzipCR < 1 {
			t.Fatalf("gzip expanded the data: %+v", r)
		}
	}
	if !strings.Contains(FormatTable2(rows), "CR(gzip)") {
		t.Fatal("bad rendering")
	}
}

func TestTable3OrderingHolds(t *testing.T) {
	// The paper's headline: MASC beats FPZIP, gzip and NDZIP on these
	// tensors; NDZIP is near 1.
	cells, err := RunTable3([]string{"add20", "MOS_T5"}, nil, testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cr := map[string]float64{}
	count := map[string]int{}
	for _, c := range cells {
		cr[c.Codec] += c.CR
		count[c.Codec]++
	}
	for k := range cr {
		cr[k] /= float64(count[k])
	}
	if cr["masc"] <= cr["fpzip"] {
		t.Fatalf("masc (%.2f) must beat fpzip (%.2f)", cr["masc"], cr["fpzip"])
	}
	if cr["masc"] <= cr["ndzip"] {
		t.Fatalf("masc (%.2f) must beat ndzip (%.2f)", cr["masc"], cr["ndzip"])
	}
	if cr["masc"] <= cr["spicemate"] {
		t.Fatalf("masc (%.2f) must beat spicemate (%.2f)", cr["masc"], cr["spicemate"])
	}
	if cr["ndzip"] > 2.5 {
		t.Fatalf("ndzip CR %.2f suspiciously high for this data family", cr["ndzip"])
	}
	out := FormatTable3(cells)
	if !strings.Contains(out, "Average") {
		t.Fatal("bad rendering")
	}
}

func TestFig5b6(t *testing.T) {
	f5, f6, err := RunFig5b6([]string{"add20"}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 1 || len(f6) != 1 {
		t.Fatal("wrong row counts")
	}
	var tot float64
	for _, p := range f5[0].Pct {
		tot += p
	}
	if math.Abs(tot-100) > 0.1 {
		t.Fatalf("Fig5b percentages sum to %g", tot)
	}
	s := f6[0].Temporal + f6[0].Stamp + f6[0].LastValue
	if math.Abs(s-100) > 0.1 {
		t.Fatalf("Fig6 percentages sum to %g", s)
	}
	if !strings.Contains(FormatFig5b(f5), "zero") || !strings.Contains(FormatFig6(f6), "Temporal") {
		t.Fatal("bad rendering")
	}
}

func TestFig7(t *testing.T) {
	rows, err := RunFig7([]string{"add20"}, testScale, 2, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MascSec <= 0 || r.RecomputeSec <= 0 || r.DiskSec <= 0 {
		t.Fatalf("non-positive times: %+v", r)
	}
	if r.MascCR < 2 {
		t.Fatalf("MASC CR %.2f too low end-to-end", r.MascCR)
	}
	if !strings.Contains(FormatFig7(rows), "vsDisk") {
		t.Fatal("bad rendering")
	}
}

func TestPipelineExperiment(t *testing.T) {
	// RunPipeline itself enforces the strong claims (byte-identical stored
	// bytes, matching sensitivities between sync and async).
	rows, err := RunPipeline([]string{"add20"}, testScale, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.SyncFwdSec <= 0 || r.AsyncFwdSec <= 0 || r.SyncRevSec <= 0 || r.AsyncRevSec <= 0 {
		t.Fatalf("non-positive times: %+v", r)
	}
	if !strings.Contains(FormatPipeline(rows), "FwdSpeed") {
		t.Fatal("bad rendering")
	}
}

func TestParallelScaling(t *testing.T) {
	rows, err := RunParallel("add20", testScale, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Speedup != 1 {
		t.Fatalf("bad rows: %+v", rows)
	}
	if !strings.Contains(FormatParallel(rows), "Speedup") {
		t.Fatal("bad rendering")
	}
}

func TestAblation(t *testing.T) {
	rows, err := RunAblation([]string{"add20"}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	crs := map[string]float64{}
	for _, r := range rows {
		if r.CR < 1 {
			t.Fatalf("variant %s expanded the data", r.Variant)
		}
		crs[r.Variant] = r.CR
	}
	if crs["full"] < crs["temporal-only(chimp)"] {
		t.Fatalf("full MASC (%.2f) should beat the temporal-only baseline (%.2f)",
			crs["full"], crs["temporal-only(chimp)"])
	}
	if !strings.Contains(FormatAblation(rows), "Variant") {
		t.Fatal("bad rendering")
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	tn := mustTensor(t, "add20")
	if _, err := NewCodecPair("nope", tn, 1, false); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ablationPair("nope", tn); err == nil {
		t.Fatal("expected error")
	}
}

func TestExtraCodecsOnTensor(t *testing.T) {
	tn := mustTensor(t, "add20")
	for _, name := range []string{"rans", "huffman", "chimp-temporal"} {
		pair, err := NewCodecPair(name, tn, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		r, err := MeasureCodec(pair, tn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.RoundTripChecked {
			t.Fatalf("%s: roundtrip not verified", name)
		}
	}
}

func TestMemoryExperiment(t *testing.T) {
	rows, err := RunMemory([]string{"add20"}, testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[string]MemoryRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
	}
	if len(byStrat) != 4 {
		t.Fatalf("got %d strategies", len(byStrat))
	}
	if byStrat["memory"].PeakResident != byStrat["memory"].RawBytes {
		t.Fatal("memory store peak must equal raw")
	}
	if byStrat["masc"].PeakResident >= byStrat["memory"].PeakResident {
		t.Fatal("masc peak not below raw memory")
	}
	if byStrat["disk"].PeakResident >= byStrat["memory"].PeakResident/4 {
		t.Fatal("disk store should hold almost nothing resident")
	}
	if !strings.Contains(FormatMemory(rows), "PeakResident") {
		t.Fatal("bad rendering")
	}
}
