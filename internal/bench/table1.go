package bench

import (
	"fmt"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/workload"
)

// Table1Row mirrors one row of the paper's Table 1: transient versus
// adjoint sensitivity time (Xyce-style, Jacobians recomputed in the
// reverse pass) and the share of sensitivity time spent on Jacobians.
type Table1Row struct {
	Name    string
	Kind    string
	Elems   int
	Params  int
	Objs    int
	Steps   int
	TranSec float64
	SensSec float64
	Ratio   float64 // T_sens / T_tran
	JacFrac float64 // T_jac / T_sens
}

// RunTable1 regenerates Table 1 over the given circuits (Table1Names() if
// nil) at the given workload scale.
func RunTable1(names []string, scale float64) ([]Table1Row, error) {
	if names == nil {
		names = workload.Table1Names()
	}
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := ds.RunForward(nil)
		if err != nil {
			return nil, err
		}
		tran := time.Since(start)

		// The Xyce-style baseline the paper times: one recompute-everything
		// reverse sweep per objective.
		sens, err := adjoint.XyceNaiveSensitivities(ds.Ckt, res, ds.Objectives,
			adjoint.Options{Params: ds.Params})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:    ds.Name,
			Kind:    ds.Kind,
			Elems:   ds.Elems,
			Params:  len(ds.Params),
			Objs:    len(ds.Objectives),
			Steps:   res.Steps(),
			TranSec: tran.Seconds(),
			SensSec: sens.Timing.Total.Seconds(),
			Ratio:   sens.Timing.Total.Seconds() / tran.Seconds(),
			JacFrac: sens.Timing.Fetch.Seconds() / sens.Timing.Total.Seconds(),
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %8s %7s %5s %7s %9s %9s %12s %12s\n",
		"Circuit", "Type", "#Elem", "#Param", "#Obj", "#Steps", "Tran(s)", "Sens(s)", "Tsens/Ttran", "Tjac/Tsens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %8d %7d %5d %7d %9.3f %9.3f %12.1f %11.1f%%\n",
			r.Name, r.Kind, r.Elems, r.Params, r.Objs, r.Steps,
			r.TranSec, r.SensSec, r.Ratio, 100*r.JacFrac)
	}
	return b.String()
}

// Fig1Row is one point of Figure 1: the memory needed to retain the
// Jacobian tensor of a whole transient run.
type Fig1Row struct {
	Name     string
	Elems    int
	Unknowns int
	Steps    int
	CSRBytes int64 // paper's S_CSR
	NZBytes  int64 // paper's S_NZ
}

// RunFig1 computes the Figure 1 storage ladder. No simulation is needed —
// the footprint follows from the shared pattern and the step count.
func RunFig1(names []string, scale float64) ([]Fig1Row, error) {
	if names == nil {
		names = workload.Table1Names()
	}
	rows := make([]Fig1Row, 0, len(names))
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		steps := int(ds.Tran.TStop/ds.Tran.TStep + 0.5)
		rows = append(rows, Fig1Row{
			Name:     ds.Name,
			Elems:    ds.Elems,
			Unknowns: ds.Ckt.N,
			Steps:    steps,
			CSRBytes: ds.CSRBytes(steps),
			NZBytes:  ds.NZBytes(steps),
		})
	}
	return rows, nil
}

// FormatFig1 renders the Figure 1 data as a table.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %9s %7s %12s %12s\n",
		"Circuit", "#Elem", "#Unknown", "#Steps", "S_CSR", "S_NZ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %9d %7d %12s %12s\n",
			r.Name, r.Elems, r.Unknowns, r.Steps, fmtBytes(r.CSRBytes), fmtBytes(r.NZBytes))
	}
	return b.String()
}
