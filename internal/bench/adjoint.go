package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// AdjointRow is one (dataset, configuration) measurement of the reverse
// sweep: a worker count, whether the blocked multi-RHS kernel was used, the
// wall-clock of the sweep, and its speedup over the serial single-RHS
// baseline (workers=1, one triangular solve per objective — the engine
// before this change).
type AdjointRow struct {
	Dataset  string
	Unknowns int
	Steps    int
	Objs     int
	Params   int
	Workers  int
	MultiRHS bool
	Sec      float64
	Speedup  float64
}

// retainAll wraps a JacobianSource and ignores Release, so one captured
// tensor can be swept once per configuration.
type retainAll struct{ adjoint.JacobianSource }

func (retainAll) Release(int) {}

// RunAdjoint measures the parallel adjoint engine: for each dataset it
// captures one forward trajectory into a raw memory store, then sweeps it
// with the serial single-RHS baseline, the blocked multi-RHS kernel at one
// worker, and the full engine across the workersList sweep. Every
// configuration's sensitivities are checked BIT-IDENTICAL to the baseline —
// the engine trades nothing for the speedup.
func RunAdjoint(names []string, scale float64, workersList []int) ([]AdjointRow, error) {
	if names == nil {
		// CHIP_08 is the many-objective end of Table 1 (40 objectives, 110
		// parameters) — the workload class the multi-RHS kernel targets.
		names = []string{"add20", "CHIP_08"}
	}
	if workersList == nil {
		workersList = []int{1, 2, 4}
	}
	var rows []AdjointRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		store := jactensor.NewMemStore()
		tr, err := ds.RunForward(store)
		if err != nil {
			return nil, err
		}
		src := retainAll{store}

		// Best-of-3: small scales finish a sweep in milliseconds, where a
		// single sample is mostly scheduler noise.
		sweep := func(workers int, single bool) (*adjoint.Result, float64, error) {
			var best float64
			var res *adjoint.Result
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				r, err := adjoint.Sensitivities(ds.Ckt, tr, src, ds.Objectives,
					adjoint.Options{Params: ds.Params, Workers: workers, SingleRHS: single})
				if err != nil {
					return nil, 0, err
				}
				if sec := time.Since(start).Seconds(); rep == 0 || sec < best {
					best, res = sec, r
				}
			}
			return res, best, nil
		}

		base, baseSec, err := sweep(1, true)
		if err != nil {
			return nil, fmt.Errorf("bench adjoint %s baseline: %w", name, err)
		}
		row := func(workers int, multi bool, sec float64) AdjointRow {
			return AdjointRow{
				Dataset: name, Unknowns: ds.Ckt.N, Steps: tr.Steps(),
				Objs: len(ds.Objectives), Params: len(ds.Params),
				Workers: workers, MultiRHS: multi, Sec: sec, Speedup: baseSec / sec,
			}
		}
		rows = append(rows, row(1, false, baseSec))

		for _, w := range workersList {
			res, sec, err := sweep(w, false)
			if err != nil {
				return nil, fmt.Errorf("bench adjoint %s workers=%d: %w", name, w, err)
			}
			for o := range base.DOdp {
				for k := range base.DOdp[o] {
					if math.Float64bits(base.DOdp[o][k]) != math.Float64bits(res.DOdp[o][k]) {
						return nil, fmt.Errorf("bench adjoint %s workers=%d: obj %d param %d diverges: %g vs %g",
							name, w, o, k, res.DOdp[o][k], base.DOdp[o][k])
					}
				}
			}
			rows = append(rows, row(w, true, sec))
		}
		store.Close()
	}
	return rows, nil
}

// FormatAdjoint renders the reverse-sweep scaling study.
func FormatAdjoint(rows []AdjointRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(host has %d CPU(s); speedup is vs workers=1 single-RHS; results bit-identical)\n",
		runtime.NumCPU())
	fmt.Fprintf(&b, "%-10s %8s %6s %5s %7s %8s %9s %9s %8s\n",
		"Dataset", "Unknowns", "Steps", "Objs", "Params", "Workers", "MultiRHS", "Sweep(s)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %6d %5d %7d %8d %9v %9.3f %7.2fx\n",
			r.Dataset, r.Unknowns, r.Steps, r.Objs, r.Params,
			r.Workers, r.MultiRHS, r.Sec, r.Speedup)
	}
	return b.String()
}
