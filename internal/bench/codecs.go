package bench

import (
	"fmt"

	"masc/internal/compress"
	"masc/internal/compress/ansz"
	"masc/internal/compress/chimpz"
	"masc/internal/compress/fpzipz"
	"masc/internal/compress/gzipz"
	"masc/internal/compress/huffz"
	"masc/internal/compress/masczip"
	"masc/internal/compress/ndzipz"
	"masc/internal/compress/spicemate"
)

// CodecNames lists the Table 3 codec columns in paper order, with the
// extra baselines this reproduction adds.
func CodecNames() []string {
	return []string{"fpzip", "ndzip", "spicemate", "gzip", "chimp", "masc", "masc+markov"}
}

// NewCodecPair instantiates a named codec bound (where needed) to the
// dataset's patterns. MASC variants receive the worker count; stats
// collection is enabled when collectStats is set.
func NewCodecPair(name string, tn *Tensor, workers int, collectStats bool) (codecPair, error) {
	single := func(c compress.Compressor) codecPair {
		return codecPair{name: name, j: c, c: c}
	}
	mascOpts := func(markov bool) masczip.Options {
		return masczip.Options{
			Markov:       markov,
			Workers:      workers,
			CollectStats: collectStats,
		}
	}
	switch name {
	case "fpzip":
		return single(fpzipz.New()), nil
	case "ndzip":
		return single(ndzipz.New()), nil
	case "spicemate":
		return single(spicemate.New()), nil
	case "gzip":
		return single(gzipz.New()), nil
	case "chimp":
		return single(chimpz.New()), nil
	case "chimp-temporal":
		return single(chimpz.NewTemporal()), nil
	case "rans":
		return single(ansz.New()), nil
	case "huffman":
		return single(huffz.New()), nil
	case "masc":
		return codecPair{
			name: name,
			j:    masczip.New(tn.JPat, mascOpts(false)),
			c:    masczip.New(tn.CPat, mascOpts(false)),
		}, nil
	case "masc+markov":
		return codecPair{
			name: name,
			j:    masczip.New(tn.JPat, mascOpts(true)),
			c:    masczip.New(tn.CPat, mascOpts(true)),
		}, nil
	default:
		return codecPair{}, fmt.Errorf("bench: unknown codec %q", name)
	}
}

// mascStats extracts the merged encoder statistics from a MASC codec pair.
func mascStats(p codecPair) (masczip.Stats, bool) {
	j, ok := p.j.(*masczip.Compressor)
	if !ok {
		return masczip.Stats{}, false
	}
	c, ok := p.c.(*masczip.Compressor)
	if !ok {
		return masczip.Stats{}, false
	}
	st := j.Stats()
	cst := c.Stats()
	st.Elements += cst.Elements
	st.SelectorElements += cst.SelectorElements
	st.Temporal += cst.Temporal
	st.Stamp += cst.Stamp
	st.LastValue += cst.LastValue
	for i := range st.LZHist {
		st.LZHist[i] += cst.LZHist[i]
	}
	st.SelectorBits += cst.SelectorBits
	st.PayloadBits += cst.PayloadBits
	return st, true
}

// mascStatsT aliases the masczip stats type for external diagnostics.
type mascStatsT = masczip.Stats
