package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/workload"
)

// Fig7Row is one dataset's end-to-end comparison (Figure 7): total
// sensitivity-simulation time (forward + reverse) under the three Jacobian
// strategies the paper compares.
type Fig7Row struct {
	Dataset      string
	RecomputeSec float64 // Xyce-style: recompute Jacobians in the reverse pass
	DiskSec      float64 // store raw tensors on the (throttled) disk
	MascSec      float64 // MASC in-memory compression
	MascCR       float64
	// Speedups of MASC over the two baselines.
	VsRecompute float64
	VsDisk      float64
}

// DefaultDiskBps is the paper's measurement SSD bandwidth (~0.5 GB/s).
const DefaultDiskBps = 0.5e9

// RunFig7 reproduces the end-to-end experiment. Sensitivities from all
// three strategies are verified to agree before times are reported.
func RunFig7(names []string, scale float64, workers int, diskBps float64) ([]Fig7Row, error) {
	if names == nil {
		names = []string{"add20", "smult20", "mem_plus"}
	}
	if diskBps == 0 {
		diskBps = DefaultDiskBps
	}
	rows := make([]Fig7Row, 0, len(names))
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Dataset: name}
		var ref *adjoint.Result

		runVariant := func(store jactensor.Store) (float64, *adjoint.Result, jactensor.Stats, error) {
			start := time.Now()
			tr, err := ds.RunForward(store)
			if err != nil {
				return 0, nil, jactensor.Stats{}, err
			}
			var sens *adjoint.Result
			if store != nil {
				sens, err = adjoint.Sensitivities(ds.Ckt, tr, store, ds.Objectives,
					adjoint.Options{Params: ds.Params})
			} else {
				// The recompute baseline is the Xyce-style flow: one
				// Jacobian-recomputing sweep per objective.
				sens, err = adjoint.XyceNaiveSensitivities(ds.Ckt, tr, ds.Objectives,
					adjoint.Options{Params: ds.Params})
			}
			if err != nil {
				return 0, nil, jactensor.Stats{}, err
			}
			total := time.Since(start).Seconds()
			var st jactensor.Stats
			if store != nil {
				st = store.Stats()
			}
			return total, sens, st, nil
		}

		// Xyce-style recomputation.
		sec, sens, _, err := runVariant(nil)
		if err != nil {
			return nil, fmt.Errorf("bench fig7 %s recompute: %w", name, err)
		}
		row.RecomputeSec = sec
		ref = sens

		// Raw tensors on throttled disk.
		disk, err := jactensor.NewDiskStore("", diskBps)
		if err != nil {
			return nil, err
		}
		sec, sens, _, err = runVariant(disk)
		if err != nil {
			return nil, fmt.Errorf("bench fig7 %s disk: %w", name, err)
		}
		if err := compareSens(ref, sens); err != nil {
			return nil, fmt.Errorf("bench fig7 %s disk: %w", name, err)
		}
		row.DiskSec = sec
		if err := disk.Close(); err != nil {
			return nil, err
		}

		// MASC in-memory compression (Markov mode, parallel).
		opt := masczip.Options{Markov: true, Workers: workers}
		cs := jactensor.NewCompressedStore(
			masczip.New(ds.Ckt.JPat, opt),
			masczip.New(ds.Ckt.CPat, opt),
			ds.Ckt.JPat, ds.Ckt.CPat)
		var st jactensor.Stats
		sec, sens, st, err = runVariant(cs)
		if err != nil {
			return nil, fmt.Errorf("bench fig7 %s masc: %w", name, err)
		}
		if err := compareSens(ref, sens); err != nil {
			return nil, fmt.Errorf("bench fig7 %s masc: %w", name, err)
		}
		row.MascSec = sec
		row.MascCR = float64(st.RawBytes) / float64(st.StoredBytes)

		row.VsRecompute = row.RecomputeSec / row.MascSec
		row.VsDisk = row.DiskSec / row.MascSec
		rows = append(rows, row)
	}
	return rows, nil
}

// compareSens checks that two sensitivity results agree to solver
// precision — the end-to-end losslessness claim of the paper.
func compareSens(a, b *adjoint.Result) error {
	for o := range a.DOdp {
		for k := range a.DOdp[o] {
			x, y := a.DOdp[o][k], b.DOdp[o][k]
			if d := math.Abs(x - y); d > 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
				return fmt.Errorf("sensitivities diverge at obj %d param %d: %g vs %g", o, k, x, y)
			}
		}
	}
	return nil
}

// FormatFig7 renders the end-to-end comparison.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %8s %13s %10s\n",
		"Dataset", "Recompute(s)", "Disk(s)", "MASC(s)", "CR", "vsRecompute", "vsDisk")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.3f %10.3f %10.3f %8.2f %12.2fx %9.2fx\n",
			r.Dataset, r.RecomputeSec, r.DiskSec, r.MascSec, r.MascCR, r.VsRecompute, r.VsDisk)
	}
	return b.String()
}

// ParallelRow is one point of the §6.4 thread-scaling study.
type ParallelRow struct {
	Workers        int
	CompressMBps   float64
	DecompressMBps float64
	Speedup        float64 // compress throughput vs 1 worker
}

// RunParallel measures MASC compression throughput versus worker count on
// one dataset's tensor.
func RunParallel(name string, scale float64, workerList []int) ([]ParallelRow, error) {
	if name == "" {
		name = "MOS_T10"
	}
	if workerList == nil {
		workerList = []int{1, 2, 4, 8, 16, 32}
	}
	ds, err := workload.Build(name, scale)
	if err != nil {
		return nil, err
	}
	tn, err := CaptureTensor(ds)
	if err != nil {
		return nil, err
	}
	rows := make([]ParallelRow, 0, len(workerList))
	var serial float64
	for _, w := range workerList {
		pair, err := NewCodecPair("masc", tn, w, false)
		if err != nil {
			return nil, err
		}
		r, err := MeasureCodec(pair, tn)
		if err != nil {
			return nil, err
		}
		if serial == 0 {
			serial = r.CompressMBps
		}
		rows = append(rows, ParallelRow{
			Workers:        w,
			CompressMBps:   r.CompressMBps,
			DecompressMBps: r.DecompressMBps,
			Speedup:        r.CompressMBps / serial,
		})
	}
	return rows, nil
}

// FormatParallel renders the thread-scaling study. The host CPU count is
// printed because the curve is meaningless beyond it: on a single-core
// host the study measures only chunking overhead.
func FormatParallel(rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(host has %d CPU(s) — speedup saturates there)\n", runtime.NumCPU())
	fmt.Fprintf(&b, "%8s %14s %16s %9s\n", "Workers", "Comp MB/s", "Decomp MB/s", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14.1f %16.1f %8.2fx\n",
			r.Workers, r.CompressMBps, r.DecompressMBps, r.Speedup)
	}
	return b.String()
}
