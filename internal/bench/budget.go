package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"masc/internal/adjoint"
	"masc/internal/compress/masczip"
	"masc/internal/jactensor"
	"masc/internal/transient"
	"masc/internal/workload"
)

// BudgetRow is one (dataset, memory budget) measurement of the tiered
// checkpoint/recompute store. Budget 0 is the unlimited baseline (every
// step stays hot, peak resident equals the raw tensor); smaller budgets
// force the scheduler down the ladder — compressed RAM, the disk spill,
// and deliberate drop-and-recompute — while the sweep's sensitivities stay
// bit-identical. Tier step counts are the placement at EndForward (the
// reverse sweep then drains every tier); Slowdown is sweep time vs the
// unlimited baseline, i.e. the time the budget buys its memory with.
type BudgetRow struct {
	Dataset      string
	Unknowns     int
	Steps        int
	Params       int
	BudgetBytes  int64
	PeakResident int64
	RawBytes     int64
	HotSteps     int
	CompSteps    int
	DiskSteps    int
	DropSteps    int
	Demotions    int64
	Recomputes   int64
	SweepSec     float64
	Slowdown     float64
}

// budgetCapture runs one forward pass into a fresh tiered store (wiring the
// solver's per-step cost into the store's recompute model), arms the
// recompute rung, and returns the store with its EndForward tier placement.
func budgetCapture(ds *workload.Dataset, budget int64, disableDisk bool) (*jactensor.TieredStore, *transient.Result, jactensor.Stats, error) {
	ts := jactensor.NewTieredStore(
		masczip.New(ds.Ckt.JPat, masczip.Options{}), masczip.New(ds.Ckt.CPat, masczip.Options{}),
		jactensor.TieredConfig{BudgetBytes: budget, DisableDisk: disableDisk})
	opt := ds.CaptureInto(ts)
	opt.StepCost = func(_ int, d time.Duration) { ts.ObserveStepCost(d) }
	tr, err := transient.Run(ds.Ckt, opt)
	if err != nil {
		ts.Close()
		return nil, nil, jactensor.Stats{}, fmt.Errorf("workload %s: %w", ds.Name, err)
	}
	if err := ts.EndForward(); err != nil {
		ts.Close()
		return nil, nil, jactensor.Stats{}, err
	}
	ts.SetRecompute(adjoint.NewRecomputeSource(ds.Ckt, tr).Fetch)
	return ts, tr, ts.Stats(), nil
}

// RunBudget measures the tiered store across a memory-budget ladder: the
// unlimited baseline, then 1/2, 1/4, and 1/8 of the measured all-hot peak,
// and finally a 64 KiB diskless budget that lives almost entirely on the
// recompute rung. Every configuration's sensitivities are checked
// BIT-IDENTICAL to the unlimited baseline. The sweep mutates (drains) the
// store, so each repetition recaptures the forward trajectory; best of 3
// sweeps is reported.
func RunBudget(names []string, scale float64) ([]BudgetRow, error) {
	if names == nil {
		names = []string{"add20", "CHIP_08"}
	}
	var rows []BudgetRow
	for _, name := range names {
		ds, err := workload.Build(name, scale)
		if err != nil {
			return nil, err
		}

		// One measurement per (budget, rep): capture, then timed sweep. The
		// tier placement reported is the best rep's (cost-model decisions
		// depend on measured wall time, so placements may vary per rep; the
		// sensitivities never do).
		measure := func(budget int64, disableDisk bool) (*adjoint.Result, jactensor.Stats, float64, error) {
			var best float64
			var res *adjoint.Result
			var stats jactensor.Stats
			for rep := 0; rep < 3; rep++ {
				ts, tr, st, err := budgetCapture(ds, budget, disableDisk)
				if err != nil {
					return nil, jactensor.Stats{}, 0, err
				}
				start := time.Now()
				r, err := adjoint.Sensitivities(ds.Ckt, tr, ts, ds.Objectives,
					adjoint.Options{Params: ds.Params})
				sec := time.Since(start).Seconds()
				// Cumulative counters (demotions, recomputes) include the
				// sweep's promotions; snapshot them before closing.
				st = mergeSweepStats(st, ts.Stats())
				ts.Close()
				if err != nil {
					return nil, jactensor.Stats{}, 0, err
				}
				if rep == 0 || sec < best {
					best, res, stats = sec, r, st
				}
			}
			return res, stats, best, nil
		}

		base, baseStats, baseSec, err := measure(0, false)
		if err != nil {
			return nil, fmt.Errorf("bench budget %s baseline: %w", name, err)
		}
		peak := baseStats.PeakResident

		row := func(budget int64, st jactensor.Stats, sec float64) BudgetRow {
			return BudgetRow{
				Dataset: name, Unknowns: ds.Ckt.N, Steps: st.Steps,
				Params: len(ds.Params), BudgetBytes: budget,
				PeakResident: st.PeakResident, RawBytes: st.RawBytes,
				HotSteps: st.TierHotSteps, CompSteps: st.TierCompressedSteps,
				DiskSteps: st.TierDiskSteps, DropSteps: st.TierDroppedSteps,
				Demotions: st.TierDemotions, Recomputes: st.TierRecomputes,
				SweepSec: sec, Slowdown: sec / baseSec,
			}
		}
		rows = append(rows, row(0, baseStats, baseSec))

		type cfg struct {
			budget      int64
			disableDisk bool
		}
		cfgs := []cfg{{peak / 2, false}, {peak / 4, false}, {peak / 8, false}, {64 << 10, true}}
		for _, c := range cfgs {
			res, st, sec, err := measure(c.budget, c.disableDisk)
			if err != nil {
				return nil, fmt.Errorf("bench budget %s budget=%d: %w", name, c.budget, err)
			}
			for o := range base.DOdp {
				for k := range base.DOdp[o] {
					if math.Float64bits(base.DOdp[o][k]) != math.Float64bits(res.DOdp[o][k]) {
						return nil, fmt.Errorf("bench budget %s budget=%d: obj %d param %d diverges: %g vs %g",
							name, c.budget, o, k, res.DOdp[o][k], base.DOdp[o][k])
					}
				}
			}
			if st.PeakResident > c.budget+6*st.RawBytes/int64(max(st.Steps, 1)) {
				return nil, fmt.Errorf("bench budget %s budget=%d: peak resident %d exceeds budget plus slack",
					name, c.budget, st.PeakResident)
			}
			rows = append(rows, row(c.budget, st, sec))
		}
	}
	return rows, nil
}

// mergeSweepStats combines the EndForward tier placement (forward) with the
// cumulative counters and peak as of the end of the sweep (final).
func mergeSweepStats(forward, final jactensor.Stats) jactensor.Stats {
	forward.PeakResident = final.PeakResident
	forward.TierDemotions = final.TierDemotions
	forward.TierPromotions = final.TierPromotions
	forward.TierRecomputes = final.TierRecomputes
	forward.IOTime = final.IOTime
	forward.DiskRetries = final.DiskRetries
	return forward
}

// FormatBudget renders the memory-budget ladder study.
func FormatBudget(rows []BudgetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(budget 0 = unlimited baseline; tier steps are the placement at EndForward; results bit-identical)\n")
	fmt.Fprintf(&b, "%-10s %8s %6s %10s %10s %5s %5s %5s %5s %7s %7s %9s %9s\n",
		"Dataset", "Unknowns", "Steps", "BudgetKiB", "PeakKiB", "Hot", "Comp", "Disk", "Drop", "Demote", "Recomp", "Sweep(s)", "Slowdown")
	for _, r := range rows {
		budget := "unlim"
		if r.BudgetBytes > 0 {
			budget = fmt.Sprintf("%.1f", float64(r.BudgetBytes)/1024)
		}
		fmt.Fprintf(&b, "%-10s %8d %6d %10s %10.1f %5d %5d %5d %5d %7d %7d %9.3f %8.2fx\n",
			r.Dataset, r.Unknowns, r.Steps, budget, float64(r.PeakResident)/1024,
			r.HotSteps, r.CompSteps, r.DiskSteps, r.DropSteps,
			r.Demotions, r.Recomputes, r.SweepSec, r.Slowdown)
	}
	return b.String()
}
